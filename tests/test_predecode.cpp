/**
 * @file
 * Predecode equivalence properties (docs/PERFORMANCE.md).
 *
 * The fast interpreter path over a shared `DecodedProgram` must be
 * observationally identical to the legacy decode-per-step path for
 * every kernel in src/kernels: bit-identical `LaneStats`, registers,
 * outputs, accepts, memory extracts, trace event streams, and profiler
 * aggregates.  Only host time may differ.
 *
 * Also pinned here: the resumable `step_once` entry (lockstep mode),
 * the content-keyed shared decode cache, and the thread-safety of one
 * DecodedProgram shared across concurrently simulated lanes (this file
 * runs under the CI ThreadSanitizer job).
 */
#include "assembler/builder.hpp"
#include "baselines/dictionary.hpp"
#include "baselines/histogram.hpp"
#include "baselines/huffman.hpp"
#include "baselines/snappy.hpp"
#include "core/decoded_program.hpp"
#include "core/machine.hpp"
#include "core/profile.hpp"
#include "core/trace.hpp"
#include "kernels/csv.hpp"
#include "kernels/dictionary.hpp"
#include "kernels/histogram.hpp"
#include "kernels/huffman.hpp"
#include "kernels/pattern.hpp"
#include "kernels/snappy.hpp"
#include "kernels/trigger.hpp"
#include "runtime/executor.hpp"
#include "runtime/kernel_spec.hpp"
#include "runtime/scheduler.hpp"
#include "workloads/generators.hpp"

#include <gtest/gtest.h>

#include <map>
#include <tuple>

namespace {

using namespace udp;
using namespace udp::kernels;

/// Restore the default interpreter path when a test exits early.
struct PredecodeGuard {
    ~PredecodeGuard() { set_predecode_enabled(true); }
};

/// Everything observable from one instrumented job run.
struct RunCapture {
    runtime::JobResult res;
    std::vector<TraceEvent> events;
    std::map<std::uint32_t,
             std::tuple<std::uint64_t, Cycles, std::uint64_t,
                        std::uint64_t>>
        states;
    std::map<Opcode, std::pair<std::uint64_t, Cycles>> actions;
};

RunCapture
run_path(const runtime::JobPlan &plan, bool predecode)
{
    PredecodeGuard guard;
    set_predecode_enabled(predecode);

    Machine m(AddressingMode::Restricted);
    Tracer tracer;
    Profiler prof;
    m.set_tracer(&tracer);
    m.set_profiler(&prof);

    RunCapture c;
    c.res = runtime::run_job_on(m, 0, 0, plan);
    EXPECT_EQ(m.lane(0).decoded() != nullptr, predecode);
    c.events = tracer.events(0);
    for (const auto &[base, sp] : prof.states())
        c.states[base] = {sp.visits, sp.cycles, sp.sig_misses,
                          sp.stall_cycles};
    for (const auto &[op, ap] : prof.actions())
        c.actions[op] = {ap.count, ap.cycles};
    return c;
}

void
expect_identical(const RunCapture &fast, const RunCapture &legacy)
{
    EXPECT_EQ(fast.res.status, legacy.res.status);
    EXPECT_EQ(fast.res.stats, legacy.res.stats);
    EXPECT_EQ(fast.res.regs, legacy.res.regs);
    EXPECT_EQ(fast.res.output, legacy.res.output);
    EXPECT_EQ(fast.res.extracts, legacy.res.extracts);

    ASSERT_EQ(fast.res.accepts.size(), legacy.res.accepts.size());
    for (std::size_t i = 0; i < fast.res.accepts.size(); ++i) {
        EXPECT_EQ(fast.res.accepts[i].stream_bit_pos,
                  legacy.res.accepts[i].stream_bit_pos);
        EXPECT_EQ(fast.res.accepts[i].id, legacy.res.accepts[i].id);
    }

    ASSERT_EQ(fast.events.size(), legacy.events.size());
    for (std::size_t i = 0; i < fast.events.size(); ++i) {
        const TraceEvent &a = fast.events[i];
        const TraceEvent &b = legacy.events[i];
        ASSERT_TRUE(a.kind == b.kind && a.cycle == b.cycle &&
                    a.a == b.a && a.b == b.b && a.lane == b.lane)
            << "trace diverges at event " << i;
    }

    EXPECT_EQ(fast.states, legacy.states);
    EXPECT_EQ(fast.actions, legacy.actions);
}

/// One named plan per kernel in src/kernels (all ten workloads).
std::vector<std::pair<std::string, runtime::JobPlan>>
kernel_plans()
{
    std::vector<std::pair<std::string, runtime::JobPlan>> plans;

    { // CSV parsing
        const std::string text = workloads::crimes_csv(40);
        plans.emplace_back(
            "csv", csv_kernel_spec().make_job(
                       Bytes(text.begin(), text.end())));
    }

    const Bytes corpus = workloads::text_corpus(8 * 1024, 0.5, 21);
    const auto code = baselines::build_huffman(corpus);
    { // Huffman encode
        plans.emplace_back("huffman_enc",
                           huffman_encoder_spec(code).make_job(corpus));
    }
    { // Huffman decode (variable-symbol dispatch)
        Bytes enc = baselines::huffman_encode(corpus, code);
        enc.push_back(0);
        enc.push_back(0);
        plans.emplace_back(
            "huffman_dec",
            huffman_decoder_spec(code, VarSymDesign::SsRef)
                .make_job(std::move(enc)));
    }

    { // Dictionary and dictionary-RLE
        const auto rows = workloads::zipf_attribute(800, 24);
        const auto base = baselines::dictionary_encode(rows);
        plans.emplace_back(
            "dictionary", dictionary_kernel_spec(base.dict, false)
                              .make_job(dict_input(rows)));

        const auto rle_rows = workloads::runny_attribute(800, 24, 5.0);
        const auto rle_base = baselines::dictionary_encode(rle_rows);
        plans.emplace_back(
            "dictionary_rle", dictionary_kernel_spec(rle_base.dict, true)
                                  .make_job(dict_input(rle_rows)));
    }

    { // Histogram (fp64 binning)
        const auto xs = workloads::fp_values(2000, 0);
        auto h = baselines::Histogram::uniform(10, 41.2, 42.5);
        plans.emplace_back("histogram",
                           histogram_kernel_spec(h.edges())
                               .make_job(pack_fp_stream(xs)));
    }

    { // Snappy compress + decompress
        const Bytes block = workloads::text_corpus(12 * 1024, 0.5, 22);
        plans.emplace_back("snappy_comp",
                           snappy_compress_spec().make_job(block));

        const Bytes comp = baselines::snappy_compress(block);
        std::size_t pos = 0;
        while (comp[pos] & 0x80)
            ++pos;
        ++pos; // skip the length varint, as the kernel ABI expects
        plans.emplace_back(
            "snappy_decomp",
            snappy_decompress_spec().make_job(
                Bytes(comp.begin() + pos, comp.end())));
    }

    { // Signal triggering
        const Bytes packed = workloads::waveform(20'000, 13);
        plans.emplace_back("trigger", trigger_kernel_spec(6).make_job(
                                          samples_from_bits(packed)));
    }

    { // Pattern matching: aDFA groups and NFA groups (run_nfa path)
        const auto pats = workloads::nids_patterns(16, false);
        const Bytes payload = workloads::packet_payloads(16 * 1024, pats);
        const auto adfa = pattern_group_specs(pats, FaModel::Adfa, 4);
        for (std::size_t g = 0; g < adfa.size(); ++g)
            plans.emplace_back("pattern_adfa_g" + std::to_string(g),
                               adfa[g].make_job(payload));

        const auto cpats = workloads::nids_patterns(8, true);
        const Bytes cpay = workloads::packet_payloads(8 * 1024, cpats);
        const auto nfa = pattern_group_specs(cpats, FaModel::Nfa, 2);
        for (std::size_t g = 0; g < nfa.size(); ++g)
            plans.emplace_back("pattern_nfa_g" + std::to_string(g),
                               nfa[g].make_job(cpay));
    }

    return plans;
}

TEST(Predecode, EveryKernelBitIdenticalToLegacyPath)
{
    for (const auto &[name, plan] : kernel_plans()) {
        SCOPED_TRACE(name);
        const RunCapture fast = run_path(plan, true);
        const RunCapture legacy = run_path(plan, false);
        expect_identical(fast, legacy);
        // Guard against degenerate plans that would vacuously pass.
        EXPECT_GT(fast.res.stats.cycles, 0u) << name;
    }
}

TEST(Predecode, UninstrumentedRunsMatchInstrumentedCounters)
{
    // The Instrumented/uninstrumented loop split must not leak into the
    // simulated counters: a bare run charges exactly what a fully
    // instrumented one does.
    for (const auto &[name, plan] : kernel_plans()) {
        SCOPED_TRACE(name);
        Machine bare(AddressingMode::Restricted);
        const auto res = runtime::run_job_on(bare, 0, 0, plan);
        const RunCapture instr = run_path(plan, true);
        EXPECT_EQ(res.stats, instr.res.stats);
        EXPECT_EQ(res.output, instr.res.output);
    }
}

TEST(Predecode, StepOnceMatchesRunSteps)
{
    // step_once carries the decoded state across calls (resume_ds_);
    // stepping a lane one dispatch at a time must track run_steps(1)
    // exactly, including interleaved use of both entries.
    const std::string text = workloads::crimes_csv(10);
    const Bytes data(text.begin(), text.end());
    const auto plan = csv_kernel_spec().make_job(data);

    Machine ma(AddressingMode::Restricted);
    Machine mb(AddressingMode::Restricted);
    runtime::stage_job(ma, 0, 0, plan);
    runtime::stage_job(mb, 0, 0, plan);
    Lane &a = ma.lane(0);
    Lane &b = mb.lane(0);

    LaneStatus sa = LaneStatus::Running;
    LaneStatus sb = LaneStatus::Running;
    std::uint64_t steps = 0;
    while (sa == LaneStatus::Running && steps < 1'000'000) {
        sa = a.step_once();
        // Interleave to exercise the resume cache invalidation.
        sb = (steps % 3 == 0) ? b.run_steps(1) : b.step_once();
        ASSERT_EQ(sa, sb) << "diverged at step " << steps;
        ASSERT_EQ(a.stats(), b.stats()) << "diverged at step " << steps;
        ++steps;
    }
    EXPECT_NE(sa, LaneStatus::Running);
    EXPECT_EQ(a.output(), b.output());
}

TEST(Predecode, LockstepBitIdenticalAcrossPaths)
{
    PredecodeGuard guard;
    const std::string text = workloads::crimes_csv(20);
    const Bytes data(text.begin(), text.end());
    const auto plan = csv_kernel_spec().make_job(data);

    const auto run_lockstep = [&](bool predecode) {
        set_predecode_enabled(predecode);
        Machine m(AddressingMode::Restricted);
        std::vector<JobSpec> jobs(4);
        for (unsigned i = 0; i < 4; ++i) {
            jobs[i].program = plan.program.get();
            jobs[i].input = plan.input;
            jobs[i].window_base =
                static_cast<ByteAddr>(i) * plan.window_bytes;
            jobs[i].init_regs = plan.init_regs;
        }
        m.assign(std::move(jobs));
        return m.run_lockstep();
    };

    const MachineResult fast = run_lockstep(true);
    const MachineResult legacy = run_lockstep(false);
    EXPECT_EQ(fast.wall_cycles, legacy.wall_cycles);
    EXPECT_EQ(fast.total, legacy.total);
    EXPECT_EQ(fast.status, legacy.status);
    EXPECT_GT(fast.total.stall_cycles, 0u)
        << "lockstep arbitration should see bank conflicts here";
}

TEST(Predecode, SharedCacheReturnsOneImagePerProgramContent)
{
    const Program prog = csv_parser_program();
    const auto a = shared_decoded(prog);
    const auto b = shared_decoded(prog);
    EXPECT_EQ(a.get(), b.get());

    // A content-identical copy maps to the same image; the cache is
    // keyed by fingerprint, not address.
    const Program copy = prog;
    EXPECT_EQ(shared_decoded(copy).get(), a.get());
    EXPECT_EQ(a->fingerprint(), program_fingerprint(copy));

    // Mutated content gets its own image.
    Program other = prog;
    other.dispatch[other.entry] ^= 1u;
    EXPECT_NE(shared_decoded(other).get(), a.get());
}

TEST(Predecode, ThreadedWavesShareOneDecodedImage)
{
    // Many lanes simulated by a thread pool, all running the same
    // read-only DecodedProgram: TSan (CI) proves the sharing is
    // race-free, and the totals must match a serial run bit for bit.
    const std::string text = workloads::crimes_csv(600);
    const Bytes data(text.begin(), text.end());

    const auto run_with_threads = [&](unsigned threads) {
        const auto jobs = runtime::chunk_jobs(
            csv_kernel_spec(), data, 4 * 1024,
            runtime::align_after_delim('\n'));
        runtime::SchedulerOptions opts;
        opts.threads = threads;
        runtime::Scheduler sched(opts);
        return sched.run(jobs);
    };

    const auto serial = run_with_threads(1);
    const auto pooled = run_with_threads(8);
    EXPECT_GT(serial.waves.size(), 0u);
    EXPECT_EQ(serial.total, pooled.total);
    EXPECT_EQ(serial.wall_cycles, pooled.wall_cycles);
    ASSERT_EQ(serial.jobs.size(), pooled.jobs.size());
    for (std::size_t i = 0; i < serial.jobs.size(); ++i) {
        EXPECT_EQ(serial.jobs[i].stats, pooled.jobs[i].stats);
        EXPECT_EQ(serial.jobs[i].extracts, pooled.jobs[i].extracts);
    }
}

TEST(Predecode, FaultCodesAgreeAcrossPaths)
{
    // A corrupt word on the *taken* path must trap with the same
    // terminal status and FaultCode on both interpreter paths
    // (docs/ROBUSTNESS.md).  Stats at the trap point may differ (the
    // legacy path decodes eagerly, the fast path faults at fetch), so
    // parity is status + code level.
    PredecodeGuard guard;
    const auto make = [] {
        ProgramBuilder b;
        const StateId s = b.add_state();
        b.on_symbol(s, 'a', s,
                    b.add_block({act_imm(Opcode::Addi, 1, 1, 1)}));
        b.set_entry(s);
        return b.build();
    };

    struct Case {
        const char *name;
        Program prog;
        FaultCode expect;
    };
    std::vector<Case> cases;
    { // Reserved transition type on the arc the input drives into.
        Program p = make();
        p.dispatch[p.entry + 'a'] = Word{7u} << 8;
        cases.push_back({"poisoned dispatch", std::move(p),
                         FaultCode::BadDispatch});
    }
    { // Undefined opcode in the taken arc's action block.
        Program p = make();
        const Transition t = decode_transition(p.dispatch[p.entry + 'a']);
        const std::size_t addr =
            t.attach_mode == AttachMode::Direct
                ? std::size_t{t.attach}
                : std::size_t{p.init_action_base} +
                      (std::size_t{t.attach} << p.init_action_scale);
        p.actions.at(addr) = Word{0x7Fu} << 25;
        cases.push_back({"poisoned actions", std::move(p),
                         FaultCode::BadAction});
    }

    const Bytes input(8, 'a');
    for (const auto &c : cases) {
        SCOPED_TRACE(c.name);
        for (const bool predecode : {true, false}) {
            SCOPED_TRACE(predecode ? "predecode" : "legacy");
            set_predecode_enabled(predecode);
            LocalMemory mem;
            Lane lane(0, mem);
            lane.load(c.prog);
            lane.set_input(input);
            EXPECT_EQ(lane.run(), LaneStatus::Faulted);
            EXPECT_EQ(lane.fault().code, c.expect);
        }
    }
}

TEST(Predecode, ToggleControlsThePathLanesTake)
{
    PredecodeGuard guard;
    const Program prog = csv_parser_program();
    LocalMemory mem;
    Lane lane(0, mem);

    set_predecode_enabled(true);
    lane.load(prog);
    EXPECT_NE(lane.decoded(), nullptr);

    set_predecode_enabled(false);
    lane.load(prog);
    EXPECT_EQ(lane.decoded(), nullptr);
}

} // namespace
