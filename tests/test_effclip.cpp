/**
 * @file
 * Tests for the EffCLiP packer: density vs the naive table layout, layout
 * failure reporting, and signature-safety of dense packings.
 */
#include "assembler/builder.hpp"

#include <gtest/gtest.h>

#include <random>

namespace udp {
namespace {

/// Random sparse automaton: `n` states, each with `k` random byte arcs.
ProgramBuilder
random_automaton(unsigned n, unsigned k, unsigned seed)
{
    std::mt19937 rng(seed);
    ProgramBuilder b;
    std::vector<StateId> ids;
    for (unsigned i = 0; i < n; ++i)
        ids.push_back(b.add_state());
    for (unsigned i = 0; i < n; ++i) {
        std::vector<Word> symbols;
        while (symbols.size() < k) {
            const Word s = rng() % 256;
            if (std::find(symbols.begin(), symbols.end(), s) ==
                symbols.end())
                symbols.push_back(s);
        }
        for (const Word s : symbols)
            b.on_symbol(ids[i], s, ids[rng() % n]);
        b.on_default(ids[i], ids[0]);
    }
    b.set_entry(ids[0]);
    b.set_initial_symbol_bits(8);
    return b;
}

TEST(EffClip, PacksSparseStatesDensely)
{
    const ProgramBuilder b = random_automaton(64, 8, 1);
    const Program p = b.build();
    // 64 states x 9 words = 576 used; dense packing should not blow up
    // the extent by more than ~2x.
    EXPECT_GE(p.layout.fill_ratio(), 0.5);
    EXPECT_LT(p.layout.dispatch_words, 2048u);
}

TEST(EffClip, NaiveTablesAreMuchLarger)
{
    const ProgramBuilder b = random_automaton(12, 8, 2);
    LayoutOptions packed;
    LayoutOptions naive;
    naive.naive_tables = true;
    const Program p1 = b.build(packed);
    const Program p2 = b.build(naive);
    // Naive: 12 x 256-word private tables (the BI dispatch-table model).
    EXPECT_GE(p2.layout.dispatch_words, 12u * 256u);
    EXPECT_LT(p1.layout.dispatch_words, p2.layout.dispatch_words / 3);
    // Both must still be valid programs.
    EXPECT_NO_THROW(p1.validate());
    EXPECT_NO_THROW(p2.validate());
}

TEST(EffClip, ReportsLayoutFailure)
{
    // 4096-word window cannot hold 40 dense byte states (40*256 words).
    ProgramBuilder b;
    std::vector<StateId> ids;
    for (unsigned i = 0; i < 40; ++i)
        ids.push_back(b.add_state());
    for (unsigned i = 0; i < 40; ++i)
        for (Word s = 0; s < 256; ++s)
            b.on_symbol(ids[i], s, ids[(i + 1) % 40]);
    b.set_entry(ids[0]);
    try {
        b.build();
        FAIL() << "expected layout failure";
    } catch (const UdpError &e) {
        EXPECT_NE(std::string(e.what()).find("layout failure"),
                  std::string::npos);
    }
}

TEST(EffClip, MultiWindowRaisesCapacity)
{
    ProgramBuilder b;
    std::vector<StateId> ids;
    for (unsigned i = 0; i < 40; ++i)
        ids.push_back(b.add_state());
    for (unsigned i = 0; i < 40; ++i)
        for (Word s = 0; s < 256; ++s)
            b.on_symbol(ids[i], s, ids[(i + 1) % 40]);
    b.set_entry(ids[0]);
    LayoutOptions opts;
    opts.max_windows = 4; // 4 banks of code
    const Program p = b.build(opts);
    EXPECT_GT(p.layout.dispatch_words, kDispatchWords);
    EXPECT_NO_THROW(p.validate());
}

/// Property: in any packed layout, probing any state with any symbol must
/// never hit a labeled-kind word of another state carrying the prober's
/// signature (the EffCLiP safety invariant).
TEST(EffClipProperty, NoFalseLabeledMatches)
{
    for (unsigned seed = 0; seed < 5; ++seed) {
        const ProgramBuilder b = random_automaton(48, 12, 100 + seed);
        const Program p = b.build();
        for (const auto &st : p.states) {
            const std::uint8_t sig = state_signature(st.base);
            // Gather this state's own labeled symbols.
            std::vector<bool> own(256, false);
            for (Word sym = 0; sym < 256; ++sym) {
                const std::size_t slot = std::size_t{st.base} + sym;
                if (slot >= p.dispatch.size())
                    break;
                const Transition t = decode_transition(p.dispatch[slot]);
                const bool labeled_kind =
                    t.type == TransitionType::Labeled ||
                    t.type == TransitionType::Refill ||
                    t.type == TransitionType::Flagged;
                if (labeled_kind && t.signature == sig)
                    own[sym] = true;
            }
            // `own` slots must exactly be the state's real arcs: verify
            // via metadata extent (no labeled match beyond max_symbol).
            for (Word sym = st.max_symbol + 1; sym < 256; ++sym)
                EXPECT_FALSE(own[sym])
                    << "state base " << st.base << " sym " << sym;
        }
    }
}

} // namespace
} // namespace udp
