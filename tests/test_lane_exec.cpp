/**
 * @file
 * Lane execution tests: multi-way dispatch semantics, the seven
 * transition types, the action unit, variable-size symbols with refill,
 * flagged (register) dispatch, NFA multi-state activation, and the cycle
 * model.
 */
#include "assembler/builder.hpp"
#include "core/lane.hpp"
#include "core/machine.hpp"

#include <gtest/gtest.h>

#include <string>

namespace udp {
namespace {

Bytes
bytes_of(const std::string &s)
{
    return Bytes(s.begin(), s.end());
}

struct LaneFixture : ::testing::Test {
    LocalMemory mem{AddressingMode::Restricted};
    Lane lane{0, mem};
};

/// "ab" occurrence counter over the byte alphabet using majority arcs.
Program
ab_counter()
{
    ProgramBuilder b;
    const StateId s0 = b.add_state();
    const StateId sa = b.add_state();
    const BlockId hit = b.add_block({act_imm(Opcode::Accept, 0, 0, 1, true)});
    b.on_symbol(s0, 'a', sa);
    b.on_majority(s0, s0);
    b.on_symbol(sa, 'a', sa);
    b.on_symbol(sa, 'b', s0, hit);
    b.on_majority(sa, s0);
    b.set_entry(s0);
    return b.build();
}

TEST_F(LaneFixture, CountsPatternOccurrences)
{
    const Program p = ab_counter();
    const Bytes input = bytes_of("abxxabab_aab");
    lane.load(p);
    lane.set_input(input);
    EXPECT_EQ(lane.run(), LaneStatus::Done);
    EXPECT_EQ(lane.accept_count(), 4u);
    EXPECT_EQ(lane.stats().dispatches, input.size());
}

TEST_F(LaneFixture, SignatureMissCostsOneExtraCycle)
{
    const Program p = ab_counter();
    // 'x' misses the labeled slot and falls back to majority: 2 cycles;
    // 'a' hits: 1 cycle.
    lane.load(p);
    const Bytes xs = bytes_of("xxxx");
    lane.set_input(xs);
    lane.run();
    EXPECT_EQ(lane.stats().cycles, 8u);
    EXPECT_EQ(lane.stats().sig_misses, 4u);

    lane.load(p); // reload resets stats
    const Bytes as = bytes_of("aaaa");
    lane.set_input(as);
    lane.run();
    EXPECT_EQ(lane.stats().cycles, 4u);
    EXPECT_EQ(lane.stats().sig_misses, 0u);
}

TEST_F(LaneFixture, RejectsWhenNoTransitionMatches)
{
    ProgramBuilder b;
    const StateId s = b.add_state();
    b.on_symbol(s, 'a', s);
    b.set_entry(s);
    const Program p = b.build();
    lane.load(p);
    const Bytes input = bytes_of("ab");
    lane.set_input(input);
    EXPECT_EQ(lane.run(), LaneStatus::Reject);
}

TEST_F(LaneFixture, CommonTransitionConsumesAndFires)
{
    // A state with only a common arc: every symbol takes it.
    ProgramBuilder b;
    const StateId s = b.add_state();
    const BlockId blk = b.add_block({act_imm(Opcode::Addi, 1, 1, 1, true)});
    b.on_any(s, s, blk);
    b.set_entry(s);
    const Program p = b.build();
    lane.load(p);
    const Bytes input = bytes_of("zzzz");
    lane.set_input(input);
    EXPECT_EQ(lane.run(), LaneStatus::Done);
    EXPECT_EQ(lane.reg(1), 4u);
    EXPECT_EQ(lane.stats().dispatches, 4u);
}

TEST_F(LaneFixture, ActionChainArithmeticAndMemory)
{
    ProgramBuilder b;
    const StateId s = b.add_state();
    const BlockId blk = b.add_block({
        act_imm(Opcode::Movi, 1, 0, 100),
        act_imm(Opcode::Addi, 2, 1, 23),      // r2 = 123
        act_reg(Opcode::Add, 3, 1, 2),        // r3 = 223
        act_imm(Opcode::Shli, 3, 3, 2),       // r3 = 892
        act_imm(Opcode::Stw, 3, 0, 0x40),     // mem[r0+0x40] = r3
        act_imm(Opcode::Ldw, 4, 0, 0x40),     // r4 = 892
        act_imm(Opcode::Halt, 0, 0, 0, true),
    });
    b.on_any(s, s, blk);
    b.set_entry(s);
    const Program p = b.build();
    lane.load(p);
    const Bytes input = bytes_of("x");
    lane.set_input(input);
    EXPECT_EQ(lane.run(), LaneStatus::Done);
    EXPECT_EQ(lane.reg(4), 892u);
    EXPECT_EQ(mem.read32(0x40), 892u);
    EXPECT_EQ(lane.stats().mem_writes, 1u);
    EXPECT_EQ(lane.stats().mem_reads, 1u);
}

TEST_F(LaneFixture, WindowBaseRelocatesMemoryAccesses)
{
    ProgramBuilder b;
    const StateId s = b.add_state();
    const BlockId blk = b.add_block({
        act_imm(Opcode::Movi, 1, 0, 77),
        act_imm(Opcode::Stb, 1, 0, 0),
        act_imm(Opcode::Halt, 0, 0, 0, true),
    });
    b.on_any(s, s, blk);
    b.set_entry(s);
    const Program p = b.build();
    lane.load(p);
    lane.set_window_base(5 * kBankBytes);
    const Bytes input = bytes_of("x");
    lane.set_input(input);
    lane.run();
    EXPECT_EQ(mem.read8(5 * kBankBytes), 77u);
}

TEST_F(LaneFixture, VariableSymbolsWithRefillDecodeHuffmanTree)
{
    // Figure 7 tree: codes 00->A, 01->B, 10->C, 110->D, 111->E.
    // Root dispatches 3 bits (SsRef); 2-bit codes refill 1 bit.
    ProgramBuilder b;
    const StateId root = b.add_state();
    auto emit = [&](char c) {
        return b.add_block({act_imm(Opcode::Outi, 0, 0, c, true)});
    };
    // Symbols are 3-bit values; 2-bit code 00 covers 000 and 001.
    b.on_symbol_refill(root, 0b000, root, 1, emit('A'));
    b.on_symbol_refill(root, 0b001, root, 1, emit('A'));
    b.on_symbol_refill(root, 0b010, root, 1, emit('B'));
    b.on_symbol_refill(root, 0b011, root, 1, emit('B'));
    b.on_symbol_refill(root, 0b100, root, 1, emit('C'));
    b.on_symbol_refill(root, 0b101, root, 1, emit('C'));
    b.on_symbol(root, 0b110, root, emit('D'));
    b.on_symbol(root, 0b111, root, emit('E'));
    b.set_entry(root);
    b.set_initial_symbol_bits(3);
    const Program p = b.build();

    // Encode "ABCDE" = 00 01 10 110 111 = 0001 1011 0111 (12 bits).
    const Bytes input{0b00011011, 0b01110000};
    lane.load(p);
    lane.set_input(input);
    lane.run();
    const std::string out(lane.output().begin(), lane.output().end());
    // After 12 bits, 4 zero-pad bits remain: 000 decodes one extra 'A',
    // then 1 bit remains (< 3) and the lane completes.
    EXPECT_EQ(out.substr(0, 5), "ABCDE");
    EXPECT_EQ(lane.run(), LaneStatus::Done);
}

TEST_F(LaneFixture, FlaggedDispatchBranchesOnRegister)
{
    // r0-driven three-way branch: r0=2 -> writes 22, else path unused.
    ProgramBuilder b;
    const StateId start = b.add_state();
    const StateId sw = b.add_state(/*reg_source=*/true);
    auto leaf = [&](int v) {
        const StateId s = b.add_state(/*reg_source=*/true);
        b.on_any(s, s,
                 b.add_block({act_imm(Opcode::Movi, 5, 0, v),
                              act_imm(Opcode::Halt, 0, 0, 0, true)}));
        return s;
    };
    // First consume one stream byte, computing r0 = byte - '0'.
    b.on_any(start, sw,
             b.add_block({act_imm(Opcode::Movi, 1, 0, '2'),
                          act_imm(Opcode::Movi, 0, 0, 2, true)}));
    b.on_symbol(sw, 0, leaf(10));
    b.on_symbol(sw, 1, leaf(11));
    b.on_symbol(sw, 2, leaf(22));
    b.set_entry(start);
    const Program p = b.build();
    lane.load(p);
    const Bytes input = bytes_of("2");
    lane.set_input(input);
    EXPECT_EQ(lane.run(), LaneStatus::Done);
    EXPECT_EQ(lane.reg(5), 22u);
}

TEST_F(LaneFixture, StreamActionsReadSkipTell)
{
    ProgramBuilder b;
    const StateId s = b.add_state();
    const BlockId blk = b.add_block({
        act_imm(Opcode::Read, 1, 0, 8),   // consume 8 bits into r1
        act_imm(Opcode::Tell, 2, 0, 0),   // r2 = bit position (16)
        act_imm(Opcode::Skip, 0, 0, 8),   // skip one byte
        act_imm(Opcode::Mov, 3, 0, 0),
        act_reg(Opcode::Mov, 3, 0, 15),   // r3 = stream byte index (3)
        act_imm(Opcode::Halt, 0, 0, 0, true),
    });
    b.on_any(s, s, blk);
    b.set_entry(s);
    const Program p = b.build();
    lane.load(p);
    const Bytes input = bytes_of("WXYZ");
    lane.set_input(input);
    lane.run();
    EXPECT_EQ(lane.reg(1), 'X');
    EXPECT_EQ(lane.reg(2), 16u);
    EXPECT_EQ(lane.reg(3), 3u);
}

TEST_F(LaneFixture, LoopCopyAndCompare)
{
    ProgramBuilder b;
    const StateId s = b.add_state();
    const BlockId blk = b.add_block({
        act_imm(Opcode::Movi, 1, 0, 0),      // src addr
        act_imm(Opcode::Movi, 2, 0, 64),     // dst addr
        act_imm(Opcode::Movi, 3, 0, 5),      // length
        act_reg(Opcode::Loopcpy, 3, 2, 1),   // mem[64..69) = mem[0..5)
        act_imm(Opcode::Movi, 4, 0, 16),     // bound
        act_reg(Opcode::Loopcmp, 4, 2, 1),   // r4 = match length
        act_imm(Opcode::Halt, 0, 0, 0, true),
    });
    b.on_any(s, s, blk);
    b.set_entry(s);
    const Program p = b.build();

    const Bytes src = bytes_of("hello world!");
    for (std::size_t i = 0; i < src.size(); ++i)
        mem.write8(static_cast<ByteAddr>(i), src[i]);
    lane.load(p);
    const Bytes input = bytes_of("x");
    lane.set_input(input);
    lane.run();
    EXPECT_EQ(mem.read8(64), 'h');
    EXPECT_EQ(mem.read8(68), 'o');
    // mem[64..69)=="hello" matches mem[0..5)=="hello", then mem[69]=0 vs
    // mem[5]==' ' stops: match length 5.
    EXPECT_EQ(lane.reg(4), 5u);
}

TEST_F(LaneFixture, OverlappingLoopCopyReplicates)
{
    // LZ77 semantics: copy with distance 1 replicates a byte.
    ProgramBuilder b;
    const StateId s = b.add_state();
    const BlockId blk = b.add_block({
        act_imm(Opcode::Movi, 1, 0, 0),
        act_imm(Opcode::Movi, 2, 0, 1),
        act_imm(Opcode::Movi, 3, 0, 7),
        act_reg(Opcode::Loopcpy, 3, 2, 1),
        act_imm(Opcode::Halt, 0, 0, 0, true),
    });
    b.on_any(s, s, blk);
    b.set_entry(s);
    const Program p = b.build();
    mem.write8(0, 'Q');
    lane.load(p);
    const Bytes input = bytes_of("x");
    lane.set_input(input);
    lane.run();
    for (unsigned i = 0; i <= 7; ++i)
        EXPECT_EQ(mem.read8(i), 'Q') << i;
}

TEST_F(LaneFixture, OutputBitstreamMsbFirst)
{
    ProgramBuilder b;
    const StateId s = b.add_state();
    const BlockId blk = b.add_block({
        act_imm(Opcode::Movi, 1, 0, 0b101),
        act_imm(Opcode::Outbits, 0, 1, 3),
        act_imm(Opcode::Outbits, 0, 1, 3),
        act_imm(Opcode::Outflush, 0, 0, 0),
        act_imm(Opcode::Halt, 0, 0, 0, true),
    });
    b.on_any(s, s, blk);
    b.set_entry(s);
    const Program p = b.build();
    lane.load(p);
    const Bytes input = bytes_of("x");
    lane.set_input(input);
    lane.run();
    ASSERT_EQ(lane.output().size(), 1u);
    EXPECT_EQ(lane.output()[0], 0b10110100u); // 101 101 + 00 pad
}

TEST_F(LaneFixture, HashActionIsDeterministicAndBounded)
{
    ProgramBuilder b;
    const StateId s = b.add_state();
    const BlockId blk = b.add_block({
        act_imm(Opcode::Movi, 1, 0, 12345),
        act_imm(Opcode::Hash, 2, 1, 10), // 10-bit table
        act_imm(Opcode::Halt, 0, 0, 0, true),
    });
    b.on_any(s, s, blk);
    b.set_entry(s);
    const Program p = b.build();
    lane.load(p);
    const Bytes input = bytes_of("x");
    lane.set_input(input);
    lane.run();
    EXPECT_LT(lane.reg(2), 1024u);
    const Word first = lane.reg(2);
    lane.load(p);
    lane.set_input(input);
    lane.run();
    EXPECT_EQ(lane.reg(2), first);
}

TEST_F(LaneFixture, NfaMultiStateActivation)
{
    // NFA for (a|b)*ab with an epsilon split start, counting accepts.
    ProgramBuilder b;
    const StateId start = b.add_state();
    const StateId q0 = b.add_state();
    const StateId q1 = b.add_state();
    const StateId acc = b.add_state();
    const BlockId hit = b.add_block({act_imm(Opcode::Accept, 0, 0, 7, true)});

    // start has epsilon to q0 (activation), and loops on anything.
    b.on_epsilon(start, q0);
    b.on_default(start, start);
    b.on_symbol(q0, 'a', q1);
    b.on_default(q0, q0);
    b.on_symbol(q1, 'b', acc, hit);
    b.on_default(q1, q0);
    b.on_default(acc, acc);
    b.set_entry(start);
    const Program p = b.build();

    lane.load(p);
    const Bytes input = bytes_of("aabab");
    lane.set_input(input);
    EXPECT_EQ(lane.run_nfa(), LaneStatus::Done);
    EXPECT_GE(lane.accept_count(), 2u); // "ab" seen at positions 2 and 4
    // Multiple states were active simultaneously.
    EXPECT_GT(lane.stats().dispatches, input.size());
}

TEST_F(LaneFixture, AcceptEventsRecordPositions)
{
    const Program p = ab_counter();
    lane.load(p);
    const Bytes input = bytes_of("ab--ab");
    lane.set_input(input);
    lane.run();
    ASSERT_EQ(lane.accepts().size(), 2u);
    EXPECT_EQ(lane.accepts()[0].stream_bit_pos, 16u);
    EXPECT_EQ(lane.accepts()[0].id, 1u);
    EXPECT_EQ(lane.accepts()[1].stream_bit_pos, 48u);
}

TEST_F(LaneFixture, MaxCyclesBoundsRunawayPrograms)
{
    // A register-source common self-loop never consumes input.
    ProgramBuilder b;
    const StateId s = b.add_state(/*reg_source=*/true);
    b.on_any(s, s);
    b.set_entry(s);
    const Program p = b.build();
    lane.load(p);
    const Bytes input = bytes_of("x");
    lane.set_input(input);
    // The watchdog cuts the runaway off and says so: TimedOut with a
    // WatchdogTimeout fault, never silently "Done" (docs/ROBUSTNESS.md).
    EXPECT_EQ(lane.run(10'000), LaneStatus::TimedOut);
    EXPECT_GE(lane.stats().cycles, 10'000u);
    EXPECT_EQ(lane.fault().code, FaultCode::WatchdogTimeout);
    EXPECT_EQ(lane.fault().cycle, lane.stats().cycles);
}

TEST(MachineTest, ParallelLanesProcessDisjointInputs)
{
    Machine m(AddressingMode::Restricted);
    const Program p = ab_counter();
    const Bytes input = bytes_of("abababxxab");

    std::vector<JobSpec> jobs(8);
    for (auto &j : jobs) {
        j.program = &p;
        j.input = input;
    }
    m.assign(std::move(jobs));
    const MachineResult r = m.run_parallel();
    EXPECT_EQ(r.active_lanes, 8u);
    EXPECT_EQ(r.total.accepts, 8u * 4u);
    // Wall time is one lane's time; total bytes is 8 lanes' worth.
    EXPECT_EQ(r.total.stream_bits, 8u * input.size() * 8u);
    EXPECT_GT(r.throughput_mbps(), 0.0);
    EXPECT_GT(m.last_run_energy_j(), 0.0);
}

TEST(MachineTest, LockstepMatchesParallelWhenDisjoint)
{
    Machine m(AddressingMode::Restricted);
    const Program p = ab_counter();
    const Bytes input = bytes_of("abcabcababab");

    std::vector<JobSpec> jobs(4);
    for (unsigned i = 0; i < 4; ++i) {
        jobs[i].program = &p;
        jobs[i].input = input;
        jobs[i].window_base = i * kBankBytes;
    }
    m.assign(jobs);
    const MachineResult a = m.run_parallel();

    m.assign(jobs);
    const MachineResult b = m.run_lockstep();
    EXPECT_EQ(a.total.accepts, b.total.accepts);
    EXPECT_EQ(a.total.dispatches, b.total.dispatches);
}

TEST(MachineTest, StageAndUnstageRoundTrip)
{
    Machine m;
    const Bytes data = bytes_of("staging-test");
    m.stage(1000, data);
    EXPECT_EQ(m.unstage(1000, data.size()), data);
    EXPECT_THROW(m.stage(kLocalMemBytes - 1, data), UdpError);
}

} // namespace
} // namespace udp
