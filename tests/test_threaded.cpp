/**
 * @file
 * Threaded-code backend equivalence properties (docs/PERFORMANCE.md).
 *
 * The threaded-code tier over a shared `CompiledProgram` must be
 * observationally identical to BOTH interpreter paths for every kernel
 * in src/kernels: bit-identical `LaneStats`, registers, outputs,
 * accepts, and memory extracts.  Only host time may differ.
 *
 * Fault behaviour is pinned against the FaultInjector corpus: the
 * threaded and predecode paths must agree on the *full* trap record
 * (stats at the trap cycle included); the legacy path decodes eagerly,
 * so parity against it is status + fault-code level at traps
 * (docs/ROBUSTNESS.md), and full on clean runs.
 *
 * Also pinned here: the resumable `step_once` entry, run_lockstep, the
 * `UDP_SIM_BACKEND` toggle across every run entry point (the PR's
 * satellite fix), the content-keyed shared compiled-image cache, and
 * the LaneBlock batch path Machine::run_parallel takes serially.  This
 * file runs under the CI sanitizer jobs.
 */
#include "assembler/builder.hpp"
#include "baselines/dictionary.hpp"
#include "baselines/histogram.hpp"
#include "baselines/huffman.hpp"
#include "baselines/snappy.hpp"
#include "core/decoded_program.hpp"
#include "core/machine.hpp"
#include "core/profile.hpp"
#include "core/threaded_program.hpp"
#include "core/trace.hpp"
#include "kernels/csv.hpp"
#include "kernels/dictionary.hpp"
#include "kernels/histogram.hpp"
#include "kernels/huffman.hpp"
#include "kernels/pattern.hpp"
#include "kernels/snappy.hpp"
#include "kernels/trigger.hpp"
#include "runtime/executor.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/kernel_spec.hpp"
#include "runtime/scheduler.hpp"
#include "workloads/generators.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using namespace udp;
using namespace udp::kernels;

/// Restore the process default (Threaded) when a test exits early.
struct BackendGuard {
    ~BackendGuard() { set_sim_backend(SimBackend::Threaded); }
};

runtime::JobResult
run_backend(const runtime::JobPlan &plan, SimBackend backend,
            std::uint64_t max_cycles = ~std::uint64_t{0})
{
    BackendGuard guard;
    set_sim_backend(backend);
    Machine m(AddressingMode::Restricted);
    runtime::JobResult res = runtime::run_job_on(m, 0, 0, plan,
                                                 max_cycles);
    // The toggle must control which images the lane actually bound.
    EXPECT_EQ(m.lane(0).compiled() != nullptr,
              backend == SimBackend::Threaded);
    EXPECT_EQ(m.lane(0).decoded() != nullptr,
              backend != SimBackend::Legacy);
    return res;
}

/// Full architectural equality: stats, registers, output, extracts,
/// accepts, and the complete trap record.
void
expect_identical(const runtime::JobResult &a, const runtime::JobResult &b)
{
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_EQ(a.regs, b.regs);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.extracts, b.extracts);
    EXPECT_EQ(a.fault.code, b.fault.code);
    EXPECT_EQ(a.fault.cycle, b.fault.cycle);
    EXPECT_EQ(a.fault.state_base, b.fault.state_base);
    ASSERT_EQ(a.accepts.size(), b.accepts.size());
    for (std::size_t i = 0; i < a.accepts.size(); ++i) {
        EXPECT_EQ(a.accepts[i].stream_bit_pos, b.accepts[i].stream_bit_pos);
        EXPECT_EQ(a.accepts[i].id, b.accepts[i].id);
    }
}

/// One named plan per kernel in src/kernels (all ten workloads).
std::vector<std::pair<std::string, runtime::JobPlan>>
kernel_plans()
{
    std::vector<std::pair<std::string, runtime::JobPlan>> plans;

    { // CSV parsing
        const std::string text = workloads::crimes_csv(40);
        plans.emplace_back(
            "csv", csv_kernel_spec().make_job(
                       Bytes(text.begin(), text.end())));
    }

    const Bytes corpus = workloads::text_corpus(8 * 1024, 0.5, 21);
    const auto code = baselines::build_huffman(corpus);
    { // Huffman encode
        plans.emplace_back("huffman_enc",
                           huffman_encoder_spec(code).make_job(corpus));
    }
    { // Huffman decode (variable-symbol dispatch)
        Bytes enc = baselines::huffman_encode(corpus, code);
        enc.push_back(0);
        enc.push_back(0);
        plans.emplace_back(
            "huffman_dec",
            huffman_decoder_spec(code, VarSymDesign::SsRef)
                .make_job(std::move(enc)));
    }

    { // Dictionary and dictionary-RLE
        const auto rows = workloads::zipf_attribute(800, 24);
        const auto base = baselines::dictionary_encode(rows);
        plans.emplace_back(
            "dictionary", dictionary_kernel_spec(base.dict, false)
                              .make_job(dict_input(rows)));

        const auto rle_rows = workloads::runny_attribute(800, 24, 5.0);
        const auto rle_base = baselines::dictionary_encode(rle_rows);
        plans.emplace_back(
            "dictionary_rle", dictionary_kernel_spec(rle_base.dict, true)
                                  .make_job(dict_input(rle_rows)));
    }

    { // Histogram (fp64 binning)
        const auto xs = workloads::fp_values(2000, 0);
        auto h = baselines::Histogram::uniform(10, 41.2, 42.5);
        plans.emplace_back("histogram",
                           histogram_kernel_spec(h.edges())
                               .make_job(pack_fp_stream(xs)));
    }

    { // Snappy compress + decompress
        const Bytes block = workloads::text_corpus(12 * 1024, 0.5, 22);
        plans.emplace_back("snappy_comp",
                           snappy_compress_spec().make_job(block));

        const Bytes comp = baselines::snappy_compress(block);
        std::size_t pos = 0;
        while (comp[pos] & 0x80)
            ++pos;
        ++pos; // skip the length varint, as the kernel ABI expects
        plans.emplace_back(
            "snappy_decomp",
            snappy_decompress_spec().make_job(
                Bytes(comp.begin() + pos, comp.end())));
    }

    { // Signal triggering
        const Bytes packed = workloads::waveform(20'000, 13);
        plans.emplace_back("trigger", trigger_kernel_spec(6).make_job(
                                          samples_from_bits(packed)));
    }

    { // Pattern matching: aDFA groups and NFA groups (run_nfa path)
        const auto pats = workloads::nids_patterns(16, false);
        const Bytes payload = workloads::packet_payloads(16 * 1024, pats);
        const auto adfa = pattern_group_specs(pats, FaModel::Adfa, 4);
        for (std::size_t g = 0; g < adfa.size(); ++g)
            plans.emplace_back("pattern_adfa_g" + std::to_string(g),
                               adfa[g].make_job(payload));

        const auto cpats = workloads::nids_patterns(8, true);
        const Bytes cpay = workloads::packet_payloads(8 * 1024, cpats);
        const auto nfa = pattern_group_specs(cpats, FaModel::Nfa, 2);
        for (std::size_t g = 0; g < nfa.size(); ++g)
            plans.emplace_back("pattern_nfa_g" + std::to_string(g),
                               nfa[g].make_job(cpay));
    }

    return plans;
}

TEST(ThreadedCode, EveryKernelBitIdenticalAcrossAllThreeBackends)
{
    for (const auto &[name, plan] : kernel_plans()) {
        SCOPED_TRACE(name);
        const auto threaded = run_backend(plan, SimBackend::Threaded);
        const auto predecode = run_backend(plan, SimBackend::Predecode);
        const auto legacy = run_backend(plan, SimBackend::Legacy);
        expect_identical(threaded, predecode);
        expect_identical(threaded, legacy);
        // Guard against degenerate plans that would vacuously pass.
        EXPECT_GT(threaded.stats.cycles, 0u) << name;
        EXPECT_EQ(threaded.status, LaneStatus::Done) << name;
    }
}

TEST(ThreadedCode, InstrumentedRunsMatchBareThreadedCounters)
{
    // Attaching a tracer/profiler reroutes the lane off the threaded
    // loop onto the instrumented predecode loop; the simulated counters
    // and the trace/profile streams must not change for it.
    BackendGuard guard;
    set_sim_backend(SimBackend::Threaded);
    for (const auto &[name, plan] : kernel_plans()) {
        SCOPED_TRACE(name);
        Machine bare(AddressingMode::Restricted);
        const auto res = runtime::run_job_on(bare, 0, 0, plan);

        Machine m(AddressingMode::Restricted);
        Tracer tracer;
        Profiler prof;
        m.set_tracer(&tracer);
        m.set_profiler(&prof);
        const auto instr = runtime::run_job_on(m, 0, 0, plan);

        EXPECT_EQ(res.stats, instr.stats);
        EXPECT_EQ(res.output, instr.output);
        if (!plan.nfa_mode) {
            EXPECT_GT(tracer.events(0).size(), 0u);
        }
    }
}

TEST(ThreadedCode, StepOnceTracksRunStepsAndPredecode)
{
    // step_once carries the compiled state across calls (resume_cs_);
    // stepping one dispatch at a time must track run_steps(1) exactly,
    // including interleaved use of both entries — and must track the
    // predecode path's step_once bit for bit.
    BackendGuard guard;
    const std::string text = workloads::crimes_csv(10);
    const Bytes data(text.begin(), text.end());
    const auto plan = csv_kernel_spec().make_job(data);

    set_sim_backend(SimBackend::Threaded);
    Machine ma(AddressingMode::Restricted);
    Machine mb(AddressingMode::Restricted);
    runtime::stage_job(ma, 0, 0, plan);
    runtime::stage_job(mb, 0, 0, plan);
    Lane &a = ma.lane(0);
    Lane &b = mb.lane(0);
    ASSERT_NE(a.compiled(), nullptr);

    set_sim_backend(SimBackend::Predecode);
    Machine mc(AddressingMode::Restricted);
    runtime::stage_job(mc, 0, 0, plan);
    Lane &c = mc.lane(0);
    ASSERT_EQ(c.compiled(), nullptr);

    LaneStatus sa = LaneStatus::Running;
    std::uint64_t steps = 0;
    while (sa == LaneStatus::Running && steps < 1'000'000) {
        sa = a.step_once();
        // Interleave to exercise the resume cache invalidation.
        const LaneStatus sb =
            (steps % 3 == 0) ? b.run_steps(1) : b.step_once();
        const LaneStatus sc = c.step_once();
        ASSERT_EQ(sa, sb) << "threaded entries diverged at step " << steps;
        ASSERT_EQ(sa, sc) << "backends diverged at step " << steps;
        ASSERT_EQ(a.stats(), b.stats()) << "diverged at step " << steps;
        ASSERT_EQ(a.stats(), c.stats()) << "diverged at step " << steps;
        ++steps;
    }
    EXPECT_NE(sa, LaneStatus::Running);
    EXPECT_EQ(a.output(), b.output());
    EXPECT_EQ(a.output(), c.output());
}

TEST(ThreadedCode, LockstepBitIdenticalAcrossAllThreeBackends)
{
    BackendGuard guard;
    const std::string text = workloads::crimes_csv(20);
    const Bytes data(text.begin(), text.end());
    const auto plan = csv_kernel_spec().make_job(data);

    const auto run_lockstep = [&](SimBackend backend) {
        set_sim_backend(backend);
        Machine m(AddressingMode::Restricted);
        std::vector<JobSpec> jobs(4);
        for (unsigned i = 0; i < 4; ++i) {
            jobs[i].program = plan.program.get();
            jobs[i].input = plan.input;
            jobs[i].window_base =
                static_cast<ByteAddr>(i) * plan.window_bytes;
            jobs[i].init_regs = plan.init_regs;
        }
        m.assign(std::move(jobs));
        return m.run_lockstep();
    };

    const MachineResult threaded = run_lockstep(SimBackend::Threaded);
    const MachineResult predecode = run_lockstep(SimBackend::Predecode);
    const MachineResult legacy = run_lockstep(SimBackend::Legacy);
    EXPECT_EQ(threaded.wall_cycles, predecode.wall_cycles);
    EXPECT_EQ(threaded.total, predecode.total);
    EXPECT_EQ(threaded.status, predecode.status);
    EXPECT_EQ(threaded.wall_cycles, legacy.wall_cycles);
    EXPECT_EQ(threaded.total, legacy.total);
    EXPECT_EQ(threaded.status, legacy.status);
    EXPECT_GT(threaded.total.stall_cycles, 0u)
        << "lockstep arbitration should see bank conflicts here";
}

TEST(ThreadedCode, SerialBlockPathMatchesPooledAndPredecode)
{
    // threads == 1 routes whole waves through ThreadedEngine::run_block
    // (the LaneBlock batch path); a thread pool runs per-lane.  Both
    // must agree with each other and with a predecode serial run.
    BackendGuard guard;
    const std::string text = workloads::crimes_csv(600);
    const Bytes data(text.begin(), text.end());

    const auto run_with = [&](SimBackend backend, unsigned threads) {
        set_sim_backend(backend);
        const auto jobs = runtime::chunk_jobs(
            csv_kernel_spec(), data, 4 * 1024,
            runtime::align_after_delim('\n'));
        runtime::SchedulerOptions opts;
        opts.threads = threads;
        runtime::Scheduler sched(opts);
        return sched.run(jobs);
    };

    const auto serial = run_with(SimBackend::Threaded, 1);
    const auto pooled = run_with(SimBackend::Threaded, 8);
    const auto reference = run_with(SimBackend::Predecode, 1);
    EXPECT_GT(serial.waves.size(), 0u);
    for (const auto *other : {&pooled, &reference}) {
        EXPECT_EQ(serial.total, other->total);
        EXPECT_EQ(serial.wall_cycles, other->wall_cycles);
        ASSERT_EQ(serial.jobs.size(), other->jobs.size());
        for (std::size_t i = 0; i < serial.jobs.size(); ++i) {
            EXPECT_EQ(serial.jobs[i].stats, other->jobs[i].stats);
            EXPECT_EQ(serial.jobs[i].extracts, other->jobs[i].extracts);
        }
    }
}

TEST(ThreadedCode, FaultCorpusBitIdenticalAcrossFastPaths)
{
    // A deterministic malformed-image corpus: every mutated plan must
    // produce the identical full trap record (stats included) on the
    // threaded and predecode paths, and the same terminal status +
    // fault code on the legacy path.
    const std::string text = workloads::crimes_csv(30);
    const Bytes data(text.begin(), text.end());
    const auto spec = csv_kernel_spec();

    std::vector<std::pair<std::string, runtime::JobPlan>> corpus;
    runtime::FaultInjector inj(0xC0FFEEu);
    {
        auto p = spec.make_job(data);
        inj.poison_program(p);
        corpus.emplace_back("poison_program", std::move(p));
    }
    {
        auto p = spec.make_job(data);
        inj.poison_dispatch_word(
            p, inj.next_below(p.program->dispatch.size()));
        corpus.emplace_back("poison_dispatch_word", std::move(p));
    }
    for (int i = 0; i < 4; ++i) {
        auto p = spec.make_job(data);
        inj.poison_action_word(p,
                               inj.next_below(p.program->actions.size()));
        corpus.emplace_back("poison_action_" + std::to_string(i),
                            std::move(p));
    }
    for (int i = 0; i < 8; ++i) {
        auto p = spec.make_job(data);
        inj.flip_program_bit(p);
        corpus.emplace_back("flip_bit_" + std::to_string(i),
                            std::move(p));
    }
    for (int i = 0; i < 3; ++i) {
        auto p = spec.make_job(data);
        inj.corrupt_input(p, 4);
        corpus.emplace_back("corrupt_input_" + std::to_string(i),
                            std::move(p));
    }
    {
        auto p = spec.make_job(data);
        inj.truncate_input(p, data.size() / 2);
        corpus.emplace_back("truncate_half", std::move(p));
    }
    {
        auto p = spec.make_job(data);
        inj.truncate_input(p, 1);
        corpus.emplace_back("truncate_one", std::move(p));
    }
    {
        auto p = spec.make_job(data);
        inj.force_trap(p, 100);
        corpus.emplace_back("force_trap_100", std::move(p));
    }

    // Bound runaway mutants: a flipped bit can loop; the watchdog cut
    // must land on the same cycle on every path.
    constexpr std::uint64_t kBudget = 2'000'000;
    bool saw_fault = false;
    for (const auto &[name, plan] : corpus) {
        SCOPED_TRACE(name);
        const auto threaded =
            run_backend(plan, SimBackend::Threaded, kBudget);
        const auto predecode =
            run_backend(plan, SimBackend::Predecode, kBudget);
        const auto legacy =
            run_backend(plan, SimBackend::Legacy, kBudget);
        expect_identical(threaded, predecode);
        EXPECT_EQ(threaded.fault.detail, predecode.fault.detail);
        // Legacy parity on malformed images is status + code level
        // (docs/ROBUSTNESS.md): the legacy path decodes state metadata
        // eagerly every step, so it can trap on a poisoned word the
        // lenient decoded-image tiers never fetch (they reject at the
        // miss walk instead).  That one divergence aside, the paths
        // must agree.
        if (threaded.status == LaneStatus::Faulted) {
            EXPECT_EQ(legacy.status, LaneStatus::Faulted);
            EXPECT_EQ(threaded.fault.code, legacy.fault.code);
        } else if (legacy.status == LaneStatus::Faulted) {
            EXPECT_EQ(threaded.status, LaneStatus::Reject)
                << "legacy may out-trap the lenient tiers only via its "
                   "eager metadata decode, which the fast paths reject";
            EXPECT_NE(legacy.fault.code, FaultCode::None);
        } else {
            expect_identical(threaded, legacy);
        }
        saw_fault |= threaded.status == LaneStatus::Faulted;
    }
    EXPECT_TRUE(saw_fault) << "corpus never trapped: not exercising "
                              "the fault paths at all";
}

TEST(ThreadedCode, WatchdogCutsEveryBackendAtTheSameCycle)
{
    BackendGuard guard;
    const std::string text = workloads::crimes_csv(40);
    const auto plan =
        csv_kernel_spec().make_job(Bytes(text.begin(), text.end()));

    const auto threaded = run_backend(plan, SimBackend::Threaded, 2'000);
    const auto predecode = run_backend(plan, SimBackend::Predecode, 2'000);
    const auto legacy = run_backend(plan, SimBackend::Legacy, 2'000);
    EXPECT_EQ(threaded.status, LaneStatus::TimedOut);
    expect_identical(threaded, predecode);
    expect_identical(threaded, legacy);
}

TEST(ThreadedCode, SharedCacheReturnsOneImagePerProgramContent)
{
    const Program prog = csv_parser_program();
    const auto a = shared_compiled(prog);
    const auto b = shared_compiled(prog);
    EXPECT_EQ(a.get(), b.get());

    // A content-identical copy maps to the same image; the cache is
    // keyed by fingerprint, not address.
    const Program copy = prog;
    EXPECT_EQ(shared_compiled(copy).get(), a.get());
    EXPECT_EQ(a->fingerprint(), program_fingerprint(copy));

    // The compiled image holds (and hands out) the one shared decoded
    // image, so the NFA/instrumented reroutes never rebuild it.
    EXPECT_EQ(a->decoded_shared().get(), shared_decoded(prog).get());

    // Mutated content gets its own image.
    Program other = prog;
    other.dispatch[other.entry] ^= 1u;
    EXPECT_NE(shared_compiled(other).get(), a.get());
}

TEST(ThreadedCode, WavesAndLanesShareOneCompiledImage)
{
    // Every lane the scheduler stages a chunk on must bind the exact
    // same CompiledProgram instance (resolved once in make_job).
    BackendGuard guard;
    set_sim_backend(SimBackend::Threaded);
    const std::string text = workloads::crimes_csv(80);
    const Bytes data(text.begin(), text.end());
    const auto jobs = runtime::chunk_jobs(
        csv_kernel_spec(), data, 1024, runtime::align_after_delim('\n'));
    ASSERT_GT(jobs.size(), 1u);
    const auto *first = jobs[0].compiled.get();
    ASSERT_NE(first, nullptr);
    for (const auto &j : jobs)
        EXPECT_EQ(j.compiled.get(), first);
    EXPECT_EQ(first, shared_compiled(*jobs[0].program).get());
}

TEST(ThreadedCode, ToggleControlsEveryRunEntryPoint)
{
    // The satellite fix: load/run/run_steps/step_once/run_lockstep must
    // all honor set_sim_backend consistently — no entry may silently
    // run a different tier than the toggle selects.
    BackendGuard guard;
    const Program prog = csv_parser_program();
    const std::string text = workloads::crimes_csv(5);
    const Bytes input(text.begin(), text.end());

    LocalMemory mem;
    Lane lane(0, mem);

    set_sim_backend(SimBackend::Legacy);
    lane.load(prog);
    EXPECT_EQ(lane.compiled(), nullptr);
    EXPECT_EQ(lane.decoded(), nullptr);

    set_sim_backend(SimBackend::Predecode);
    lane.load(prog);
    EXPECT_EQ(lane.compiled(), nullptr);
    EXPECT_NE(lane.decoded(), nullptr);

    set_sim_backend(SimBackend::Threaded);
    lane.load(prog);
    EXPECT_NE(lane.compiled(), nullptr);
    EXPECT_NE(lane.decoded(), nullptr); // kept for NFA/instrumented

    // The legacy aliases still steer the new enum.
    set_predecode_enabled(false);
    EXPECT_EQ(sim_backend(), SimBackend::Legacy);
    EXPECT_FALSE(predecode_enabled());
    set_predecode_enabled(true);
    EXPECT_EQ(sim_backend(), SimBackend::Predecode);
    EXPECT_TRUE(predecode_enabled());

    // Each entry point, each backend: identical architectural outcome.
    struct Outcome {
        LaneStats stats;
        Bytes output;
    };
    const auto run_entry = [&](SimBackend backend, int entry) {
        set_sim_backend(backend);
        LocalMemory lm;
        Lane ln(0, lm);
        ln.load(prog);
        ln.set_input(input);
        EXPECT_EQ(ln.compiled() != nullptr,
                  backend == SimBackend::Threaded);
        LaneStatus st = LaneStatus::Running;
        switch (entry) {
        case 0:
            st = ln.run();
            break;
        case 1:
            while (st == LaneStatus::Running)
                st = ln.run_steps(7);
            break;
        default:
            while (st == LaneStatus::Running)
                st = ln.step_once();
            break;
        }
        EXPECT_EQ(st, LaneStatus::Done);
        ln.finish_output();
        return Outcome{ln.stats(), ln.output()};
    };

    const Outcome ref = run_entry(SimBackend::Threaded, 0);
    EXPECT_GT(ref.stats.cycles, 0u);
    for (const SimBackend backend :
         {SimBackend::Legacy, SimBackend::Predecode, SimBackend::Threaded})
        for (int entry = 0; entry < 3; ++entry) {
            SCOPED_TRACE(std::string(sim_backend_name(backend)) +
                         " entry " + std::to_string(entry));
            const Outcome got = run_entry(backend, entry);
            EXPECT_EQ(got.stats, ref.stats);
            EXPECT_EQ(got.output, ref.output);
        }
}

TEST(ThreadedCode, DisassembleCompiledListsStatesArcsAndOps)
{
    const auto cp = shared_compiled(csv_parser_program());
    const std::string text = disassemble_compiled(*cp);
    // Eyeballable next to disassemble_state output: state headers with
    // full word addresses, per-symbol arc lines, and the op stream.
    EXPECT_NE(text.find("state @0x"), std::string::npos);
    EXPECT_NE(text.find("miss:"), std::string::npos);
    EXPECT_NE(text.find("ops:"), std::string::npos);
    EXPECT_NE(text.find("take -> @0x"), std::string::npos);
    EXPECT_NE(text.find("<trap: fetch out of range>"), std::string::npos);
    EXPECT_GT(cp->op_count(), 0u);
    EXPECT_GT(cp->num_states(), 0u);
}

} // namespace
