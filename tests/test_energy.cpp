/**
 * @file
 * Tests of the power/area/energy model (Table 3 calibration and the
 * derived metrics used by Figs 13-22).
 */
#include "core/energy.hpp"

#include <gtest/gtest.h>

namespace udp {
namespace {

TEST(CostModel, Table3SystemTotalsAreConsistent)
{
    const UdpCostModel m;
    // System power: components must sum to the reported total (Table 3).
    const double sum_mw = m.lanes64_mw + m.vector_regs_mw +
                          m.dlt_engine_mw + m.local_mem_mw;
    EXPECT_NEAR(sum_mw, m.system_mw, 0.01);
    const double sum_mm2 = m.lanes64_mm2 + m.vector_regs_mm2 +
                           m.dlt_engine_mm2 + m.local_mem_mm2;
    EXPECT_NEAR(sum_mm2, m.system_mm2, 0.01);
}

TEST(CostModel, LaneUnitsRoughlySumToLaneTotal)
{
    const UdpCostModel m;
    const double sum = m.dispatch_unit_mw + m.sbp_unit_mw +
                       m.stream_buffer_mw + m.action_unit_mw;
    EXPECT_NEAR(sum, m.lane_total_mw, 0.05);
    // 64 lanes must cost ~64x one lane.
    EXPECT_NEAR(64 * m.lane_total_mw, m.lanes64_mw, 1.0);
}

TEST(CostModel, MemoryDominatesSystemPower)
{
    // Paper: "Most of the power (82.8%) is consumed by local memory."
    const UdpCostModel m;
    EXPECT_NEAR(m.local_mem_mw / m.system_mw, 0.828, 0.005);
}

TEST(CostModel, UdpIsTinyNextToTheCpu)
{
    const UdpCostModel m;
    // One-tenth the power of a Westmere-EP core+L1 ...
    EXPECT_LT(m.system_mw, m.cpu_core_l1_mw / 10.0);
    // ... and half its area.
    EXPECT_LT(m.system_mm2, m.cpu_core_l1_mm2 / 2.0);
}

TEST(CostModel, TputPerWattRatioMatchesPowerRatio)
{
    const UdpCostModel m;
    const double t = 1000.0; // MB/s, arbitrary
    const double udp = tput_per_watt(m, t);
    const double cpu = cpu_tput_per_watt(m, t);
    // Same throughput => efficiency advantage equals the power ratio
    // (80 W / 0.864 W ~ 92.6x).
    EXPECT_NEAR(udp / cpu, m.cpu_tdp_w / m.system_power_w(), 1e-9);
    EXPECT_NEAR(udp / cpu, 92.6, 0.3);
}

TEST(RunEnergy, ScalesWithWorkAndMode)
{
    const UdpCostModel m;
    LaneStats s;
    s.cycles = 1'000'000;
    s.mem_reads = 500'000;
    s.mem_writes = 100'000;
    s.dispatch_reads = 1'000'000;

    const double local =
        run_energy_joules(m, s, s.cycles, 1, AddressingMode::Local);
    const double global =
        run_energy_joules(m, s, s.cycles, 1, AddressingMode::Global);
    EXPECT_GT(global, local);

    LaneStats s2 = s;
    s2.cycles *= 2;
    s2.mem_reads *= 2;
    const double more = run_energy_joules(m, s2, s2.cycles, 1,
                                          AddressingMode::Local);
    EXPECT_GT(more, local);
    EXPECT_EQ(run_energy_joules(m, s, 0, 0, AddressingMode::Local), 0.0);
}

} // namespace
} // namespace udp
