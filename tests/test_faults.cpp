/**
 * @file
 * Fault containment tests (docs/ROBUSTNESS.md).
 *
 * Three layers: the malformed-image corpus (corrupt programs must trap
 * with the right structured FaultCode, never escape as host exceptions,
 * down both interpreter paths); the lane-level watchdog and forced-trap
 * machinery; and end-to-end containment through the wave Scheduler with
 * the deterministic FaultInjector — serial and threaded backends (this
 * file runs under the CI ThreadSanitizer job).
 */
#include "assembler/builder.hpp"
#include "assembler/textasm.hpp"
#include "baselines/histogram.hpp"
#include "core/decoded_program.hpp"
#include "core/machine.hpp"
#include "kernels/histogram.hpp"
#include "runtime/executor.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/kernel_spec.hpp"
#include "runtime/scheduler.hpp"
#include "workloads/generators.hpp"

#include <gtest/gtest.h>

namespace udp {
namespace {

using namespace kernels;

/// Restore the default interpreter path when a test exits early.
struct PredecodeGuard {
    ~PredecodeGuard() { set_predecode_enabled(true); }
};

/// Run `prog` over `input` on a fresh lane and expect a trap with
/// `code`, on whichever interpreter path is currently enabled.
void
expect_fault(const Program &prog, const Bytes &input, FaultCode code)
{
    LocalMemory mem;
    Lane lane(0, mem);
    lane.load(prog);
    lane.set_input(input);
    ASSERT_EQ(lane.run(), LaneStatus::Faulted);
    EXPECT_EQ(lane.fault().code, code);
    EXPECT_EQ(lane.fault().cycle, lane.stats().cycles);
    EXPECT_FALSE(lane.fault().detail.empty());
}

/// A tiny self-looping program the corpus tests mutate.
Program
counting_program()
{
    ProgramBuilder b;
    const StateId s = b.add_state();
    b.on_symbol(s, 'a', s,
                b.add_block({act_imm(Opcode::Addi, 1, 1, 1)}));
    b.set_entry(s);
    return b.build();
}

// --- Malformed-image corpus ------------------------------------------------

TEST(Malformed, DecoderErrorsCarryFaultCodes)
{
    // The raw word decoders tag their rejections so the lane boundary
    // can classify them without string matching.
    try {
        decode_transition(Word{7u} << 8); // reserved transition type
        FAIL() << "expected decode_transition to reject type 7";
    } catch (const UdpFaultError &e) {
        EXPECT_EQ(e.code(), FaultCode::BadDispatch);
    }
    try {
        decode_action(Word{0x7Fu} << 25); // undefined opcode
        FAIL() << "expected decode_action to reject opcode 0x7f";
    } catch (const UdpFaultError &e) {
        EXPECT_EQ(e.code(), FaultCode::BadAction);
    }
}

TEST(Malformed, CorpusFaultsWithRightCodeOnBothPaths)
{
    PredecodeGuard guard;
    const Bytes input(16, 'a');

    struct Case {
        const char *name;
        Program prog;
        FaultCode expect;
    };
    std::vector<Case> corpus;

    { // Reserved transition type where the entry dispatch lands.
        Program p = counting_program();
        p.dispatch[p.entry + 'a'] = Word{7u} << 8;
        corpus.push_back({"reserved transition type", std::move(p),
                          FaultCode::BadDispatch});
    }
    { // Transition target that is no state's base.
        Program p = counting_program();
        Transition t = decode_transition(p.dispatch[p.entry + 'a']);
        t.target = static_cast<DispatchAddr>(p.entry + 97);
        p.dispatch[p.entry + 'a'] = encode_transition(t);
        corpus.push_back({"out-of-range state base", std::move(p),
                          FaultCode::BadDispatch});
    }
    { // Undefined opcode in the entry arc's action block.
        Program p = counting_program();
        const Transition t = decode_transition(p.dispatch[p.entry + 'a']);
        ASSERT_NE(t.attach, kNoActions);
        // Resolve the block address the way the lane will (Fig 5c).
        const std::size_t addr =
            t.attach_mode == AttachMode::Direct
                ? std::size_t{t.attach}
                : std::size_t{p.init_action_base} +
                      (std::size_t{t.attach} << p.init_action_scale);
        ASSERT_LT(addr, p.actions.size());
        p.actions[addr] = Word{0x7Fu} << 25;
        corpus.push_back({"undefined opcode", std::move(p),
                          FaultCode::BadAction});
    }
    { // Truncated program: the action chain runs off the image end.
        Program p = counting_program();
        // Drop the terminating word of the last block; the chain walk
        // continues past the truncated image.
        p.actions.resize(p.actions.size() - 1);
        corpus.push_back({"truncated action image", std::move(p),
                          FaultCode::FetchOutOfRange});
    }

    for (const auto &c : corpus) {
        SCOPED_TRACE(c.name);
        for (const bool predecode : {true, false}) {
            SCOPED_TRACE(predecode ? "predecode" : "legacy");
            set_predecode_enabled(predecode);
            expect_fault(c.prog, input, c.expect);
        }
    }
}

TEST(Malformed, OversizedEmitlutEntryFaults)
{
    // An EMITLUT table entry claiming more than 15 bytes is a corrupt
    // table, not a crash: BadAction on both paths.
    PredecodeGuard guard;
    ProgramBuilder b;
    const StateId s = b.add_state();
    b.on_symbol(s, 'a', s,
                b.add_block({act_imm(Opcode::Emitlut, 0, 0, 0)}));
    b.set_entry(s);
    const Program prog = b.build();
    const Bytes input(4, 'a');

    for (const bool predecode : {true, false}) {
        SCOPED_TRACE(predecode ? "predecode" : "legacy");
        set_predecode_enabled(predecode);
        LocalMemory mem;
        Lane lane(0, mem);
        lane.load(prog);
        lane.set_input(input);
        // entry = last_symbol * 16 = 'a' * 16; plant a count of 200.
        mem.write8(ByteAddr{'a'} * 16, 200);
        ASSERT_EQ(lane.run(), LaneStatus::Faulted);
        EXPECT_EQ(lane.fault().code, FaultCode::BadAction);
    }
}

TEST(Malformed, TextasmRejectsMalformedSourceAtTheHost)
{
    // Source-level malformation is host API misuse, caught before any
    // lane runs: a plain UdpError, never a LaneFault.
    EXPECT_THROW(assemble("state s: 'a' ->"), UdpError);
    EXPECT_THROW(assemble(".entry nowhere\nstate s:\n  'a' -> s\n"),
                 UdpError);
    EXPECT_THROW(assemble(R"(
        .symbits 99
        .entry s
        state s:
            'a' -> s
    )"),
                 UdpError);
}

// --- Watchdog and forced traps --------------------------------------------

TEST(LaneFault, WatchdogDistinguishesTimeoutFromDone)
{
    const Program prog = counting_program();
    const Bytes input(4096, 'a');
    LocalMemory mem;
    Lane lane(0, mem);
    lane.load(prog);
    lane.set_input(input);

    // Starved budget: the lane is cut off mid-stream, which used to be
    // indistinguishable from clean completion.
    ASSERT_EQ(lane.run(64), LaneStatus::TimedOut);
    EXPECT_EQ(lane.fault().code, FaultCode::WatchdogTimeout);
    EXPECT_NE(lane.fault().detail.find("cycle budget"), std::string::npos);

    // A full budget completes, and reset clears the fault record.
    lane.hard_reset();
    lane.load(prog);
    lane.set_input(input);
    EXPECT_EQ(lane.run(), LaneStatus::Done);
    EXPECT_EQ(lane.fault().code, FaultCode::None);
    EXPECT_FALSE(lane.fault());
}

TEST(LaneFault, ForcedTrapFiresAtTheArmedCycle)
{
    const Program prog = counting_program();
    const Bytes input(4096, 'a');
    LocalMemory mem;
    Lane lane(0, mem);
    lane.load(prog);
    lane.set_input(input);
    lane.set_forced_trap(100);

    ASSERT_EQ(lane.run(), LaneStatus::Faulted);
    EXPECT_EQ(lane.fault().code, FaultCode::ForcedTrap);
    EXPECT_GE(lane.fault().cycle, 100u);
    // Fires at the first dispatch-step boundary past the armed cycle.
    EXPECT_LT(lane.fault().cycle, 100u + 16u);

    // hard_reset disarms the trap; the rerun completes.
    lane.hard_reset();
    lane.load(prog);
    lane.set_input(input);
    EXPECT_EQ(lane.run(), LaneStatus::Done);
}

TEST(LaneFault, DescribePinsLaneStateAndCycle)
{
    const Program prog = counting_program();
    LocalMemory mem;
    Lane lane(7, mem);
    lane.load(prog);
    const Bytes input(64, 'a');
    lane.set_input(input);
    lane.set_forced_trap(10);
    ASSERT_EQ(lane.run(), LaneStatus::Faulted);

    const std::string d = lane.fault().describe();
    EXPECT_NE(d.find("lane 7"), std::string::npos);
    EXPECT_NE(d.find("forced-trap"), std::string::npos);
    EXPECT_EQ(LaneFault{}.describe(), "no fault");
    EXPECT_EQ(fault_code_name(FaultCode::WatchdogTimeout),
              "watchdog-timeout");
}

// --- End-to-end containment through the Scheduler --------------------------

namespace detail {

std::vector<runtime::JobPlan>
histogram_jobs(std::size_t count)
{
    const auto xs = workloads::fp_values(6'000, 5);
    const auto spec = histogram_kernel_spec(
        baselines::Histogram::uniform(10, 41.2, 42.5).edges());
    const Bytes packed = pack_fp_stream(xs);
    const std::size_t shard =
        std::max<std::size_t>(1, ceil_div(packed.size() / 8, count)) * 8;
    return runtime::chunk_jobs(spec, packed, shard);
}

void
expect_job_eq(const runtime::JobResult &a, const runtime::JobResult &b)
{
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_EQ(a.regs, b.regs);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.extracts, b.extracts);
}

} // namespace detail

TEST(FaultInjection, StreamIsDeterministic)
{
    runtime::FaultInjector a(42), b(42), c(43);
    for (int i = 0; i < 8; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        EXPECT_NE(va, c.next()); // different seed, different stream
    }
    EXPECT_THROW(a.next_below(0), UdpError);
}

TEST(FaultInjection, ProgramMutationsCopyOnWrite)
{
    auto jobs = detail::histogram_jobs(4);
    const auto shared_before = jobs[0].program;
    ASSERT_EQ(jobs[1].program.get(), shared_before.get());

    runtime::FaultInjector inj(1);
    inj.poison_program(jobs[0]);
    // Job 0 got its own mutated copy; job 1 still runs the clean image.
    EXPECT_NE(jobs[0].program.get(), shared_before.get());
    EXPECT_EQ(jobs[1].program.get(), shared_before.get());
    // The predecoded image was re-resolved for the mutated content.
    ASSERT_NE(jobs[0].decoded, nullptr);
    EXPECT_NE(jobs[0].decoded.get(), jobs[1].decoded.get());
    EXPECT_EQ(jobs[0].decoded->fingerprint(),
              program_fingerprint(*jobs[0].program));
}

TEST(FaultInjection, ContainmentAcrossBackendsAndPaths)
{
    PredecodeGuard guard;
    for (const bool predecode : {true, false}) {
        SCOPED_TRACE(predecode ? "predecode" : "legacy");
        set_predecode_enabled(predecode);
        for (const unsigned threads : {1u, 8u}) {
            SCOPED_TRACE("threads=" + std::to_string(threads));
            auto jobs = detail::histogram_jobs(16);
            runtime::SchedulerOptions opts;
            opts.threads = threads;
            runtime::Scheduler clean_sched(opts);
            const auto clean = clean_sched.run(jobs);

            runtime::FaultInjector inj(99);
            inj.poison_program(jobs[7]);
            opts.retry.max_attempts = 2;
            runtime::Scheduler sched(opts);
            const auto rep = sched.run(jobs);

            const auto &bad = rep.jobs[7];
            EXPECT_EQ(bad.status, LaneStatus::Faulted);
            EXPECT_EQ(bad.fault.code, FaultCode::BadDispatch);
            EXPECT_TRUE(bad.quarantined);
            EXPECT_EQ(bad.attempts, 2u);
            EXPECT_EQ(rep.quarantined, 1u);
            for (std::size_t i = 0; i < jobs.size(); ++i) {
                if (i == 7)
                    continue;
                SCOPED_TRACE("job " + std::to_string(i));
                detail::expect_job_eq(rep.jobs[i], clean.jobs[i]);
            }
        }
    }
}

TEST(FaultInjection, ContainmentUnderThreads)
{
    // Minimal threaded-backend containment case for the TSan job: a
    // poisoned lane trapping while 15 healthy lanes run concurrently.
    auto jobs = detail::histogram_jobs(16);
    runtime::FaultInjector inj(7);
    inj.poison_program(jobs[3]);
    inj.force_trap(jobs[11], 50);

    runtime::SchedulerOptions opts;
    opts.threads = 8;
    runtime::Scheduler sched(opts);
    const auto rep = sched.run(jobs);

    EXPECT_EQ(rep.jobs[3].fault.code, FaultCode::BadDispatch);
    EXPECT_EQ(rep.jobs[11].fault.code, FaultCode::ForcedTrap);
    unsigned done = 0;
    for (const auto &jr : rep.jobs)
        done += jr.status == LaneStatus::Done;
    EXPECT_EQ(done, unsigned(jobs.size()) - 2);
}

TEST(FaultInjection, TransientTrapRecoversThroughRunJobOn)
{
    // trap_attempts=0 disarms the plan's trap entirely for single-lane
    // harnesses; a plain armed trap faults.
    auto jobs = detail::histogram_jobs(2);
    runtime::FaultInjector inj(3);
    inj.force_trap(jobs[0], 40);

    Machine m(AddressingMode::Restricted);
    const auto faulted = runtime::run_job_on(m, 0, 0, jobs[0]);
    EXPECT_EQ(faulted.status, LaneStatus::Faulted);
    EXPECT_EQ(faulted.fault.code, FaultCode::ForcedTrap);
    EXPECT_THROW(runtime::require_done(faulted, "test"), UdpError);

    inj.force_trap(jobs[0], 40, /*attempts=*/0);
    const auto ok = runtime::run_job_on(m, 0, 0, jobs[0]);
    EXPECT_EQ(ok.status, LaneStatus::Done);
    EXPECT_EQ(ok.fault.code, FaultCode::None);
}

TEST(FaultInjection, InputCorruptionIsDeterministicAndContained)
{
    auto jobs_a = detail::histogram_jobs(4);
    auto jobs_b = detail::histogram_jobs(4);

    runtime::FaultInjector ia(1234), ib(1234);
    ia.corrupt_input(jobs_a[1], 5);
    ib.corrupt_input(jobs_b[1], 5);
    EXPECT_EQ(jobs_a[1].input, jobs_b[1].input); // same seed, same bytes
    EXPECT_NE(jobs_a[1].input, detail::histogram_jobs(4)[1].input);

    ia.truncate_input(jobs_a[2], 24);
    EXPECT_EQ(jobs_a[2].input.size(), 24u);

    // Corrupt or short input may change results, but never escapes the
    // job: the wave completes and no host exception crosses run().
    runtime::Scheduler sched;
    const auto rep = sched.run(jobs_a);
    EXPECT_EQ(rep.jobs.size(), jobs_a.size());
    for (const auto &jr : rep.jobs)
        EXPECT_TRUE(jr.status == LaneStatus::Done ||
                    jr.status == LaneStatus::Reject ||
                    jr.status == LaneStatus::Faulted);
}

TEST(FaultInjection, BitFlipsAreSeededAndSurvivable)
{
    // Whatever a random single-bit flip does to the image, the machine
    // survives: the job lands in a terminal state, never a crash.
    for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
        auto jobs = detail::histogram_jobs(2);
        runtime::FaultInjector inj(seed);
        const std::size_t slot = inj.flip_program_bit(jobs[0]);
        EXPECT_LT(slot, jobs[0].program->dispatch.size());

        runtime::FaultInjector again(seed);
        auto jobs2 = detail::histogram_jobs(2);
        EXPECT_EQ(again.flip_program_bit(jobs2[0]), slot);
        EXPECT_EQ(jobs2[0].program->dispatch, jobs[0].program->dispatch);

        runtime::Scheduler sched;
        const auto rep = sched.run(jobs);
        EXPECT_NE(rep.jobs[0].status, LaneStatus::Running);
        // The healthy sibling is untouched either way.
        EXPECT_EQ(rep.jobs[1].status, LaneStatus::Done);
    }
}

} // namespace
} // namespace udp
