/**
 * @file
 * Causal tracing tests: SpanTracer export (merged scheduler spans +
 * lane micro-events), FlightRecorder ring semantics under threads, and
 * post-mortem FaultReport capture (docs/OBSERVABILITY.md "Tracing &
 * post-mortems").  The SpanTrace and Postmortem suites run under TSan
 * and UBSan in CI.
 */
#include "assembler/disasm.hpp"
#include "baselines/histogram.hpp"
#include "core/metrics_json.hpp"
#include "core/trace.hpp"
#include "kernels/histogram.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/kernel_spec.hpp"
#include "runtime/postmortem.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/spantrace.hpp"
#include "runtime/telemetry.hpp"
#include "workloads/generators.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

using namespace udp;
using namespace udp::runtime;

namespace {

/// Histogram-kernel fleet sized to `jobs_wanted` jobs (the shape
/// test_telemetry uses; >64 jobs forces multiple waves).
std::vector<JobPlan>
trace_fleet(std::size_t jobs_wanted)
{
    const auto xs = workloads::fp_values(8'000, 21);
    static const auto spec = kernels::histogram_kernel_spec(
        baselines::Histogram::uniform(10, 41.2, 42.5).edges());
    const Bytes packed = kernels::pack_fp_stream(xs);
    const std::size_t values = packed.size() / 8;
    const std::size_t shard =
        std::max<std::size_t>(1, ceil_div(values, jobs_wanted)) * 8;
    return chunk_jobs(spec, packed, shard);
}

/// The exported Chrome trace as a string (must be a complete document).
std::string
exported(const SpanTracer &spans)
{
    std::ostringstream os;
    spans.write_chrome_trace(os);
    return os.str();
}

/// Complete architectural equality of two job results.
void
expect_results_eq(const JobResult &a, const JobResult &b)
{
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.dispatches, b.stats.dispatches);
    EXPECT_EQ(a.regs, b.regs);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.extracts, b.extracts);
    EXPECT_EQ(a.accepts.size(), b.accepts.size());
}

} // namespace

// --- Span export ----------------------------------------------------------

TEST(SpanTrace, EmptyExportIsValidJson)
{
    SpanTracer spans;
    const std::string text = exported(spans);
    EXPECT_TRUE(json_parse_ok(text)) << text;
    // Metadata-only: the fixed scheduler tracks are always named.
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("waves"), std::string::npos);
    EXPECT_NE(text.find("jobs"), std::string::npos);
    EXPECT_EQ(spans.timeline_end(), 0u);

    // Absorbing an empty tracer records nothing.
    Tracer t;
    spans.absorb_lane_events(t, 0);
    EXPECT_EQ(spans.lane_event_count(), 0u);
    EXPECT_TRUE(json_parse_ok(exported(spans)));
}

TEST(SpanTrace, SchedulerRunProducesNestedSpans)
{
    const auto jobs = trace_fleet(100);
    ASSERT_GT(jobs.size(), std::size_t{kNumLanes}); // 2+ waves

    Tracer tracer;
    SpanTracer spans;
    SchedulerOptions opts;
    opts.spans = &spans;
    opts.lane_tracer = &tracer;
    Scheduler sched(opts);
    const ScheduleReport rep = sched.run(jobs);

    // One attempt span per run, one wave span per wave.
    EXPECT_EQ(spans.attempts().size(), jobs.size() + rep.retries);
    EXPECT_EQ(spans.waves().size(), rep.waves.size());
    EXPECT_GT(spans.lane_event_count(), 0u);
    EXPECT_EQ(spans.dropped_spans(), 0u);

    // Span invariants on the shared timeline.
    std::set<std::uint64_t> ids;
    for (const AttemptSpan &a : spans.attempts()) {
        EXPECT_LE(a.submit, a.start);
        EXPECT_LE(a.start + a.service, a.end);
        EXPECT_EQ(a.job_name, jobs[a.job_index].name);
        EXPECT_EQ(a.trace_id, spans.trace_id(a.job_index));
        EXPECT_TRUE(a.final_disposition); // no faults in this fleet
        ids.insert(a.trace_id);
    }
    EXPECT_EQ(ids.size(), jobs.size()); // unique id per job
    Cycles wall = 0;
    for (const WaveSpan &w : spans.waves()) {
        EXPECT_EQ(w.start, wall); // waves tile the timeline
        wall += w.wall;
        EXPECT_GT(w.jobs, 0u);
        EXPECT_GE(w.host_seconds, 0.0);
    }
    EXPECT_EQ(wall, rep.wall_cycles);
    EXPECT_EQ(spans.timeline_end(), rep.wall_cycles);

    const std::string text = exported(spans);
    EXPECT_TRUE(json_parse_ok(text));
    for (const char *needle :
         {"udp.attempt", "udp.wave", "udp.job", "\"ph\":\"b\"",
          "\"ph\":\"e\"", "lane 0", "host_seconds"})
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
}

TEST(SpanTrace, SequentialRunsLayOutAfterEachOtherWithUniqueIds)
{
    const auto jobs = trace_fleet(16); // single wave per run
    SpanTracer spans;
    SchedulerOptions opts;
    opts.spans = &spans;

    Scheduler first(opts);
    first.run(jobs);
    const Cycles first_end = spans.timeline_end();
    const std::size_t first_attempts = spans.attempts().size();

    Scheduler second(opts);
    second.run(jobs);

    // Run 2 starts where run 1 ended; ids never collide across runs.
    std::set<std::uint64_t> ids;
    for (const AttemptSpan &a : spans.attempts())
        ids.insert(a.trace_id);
    EXPECT_EQ(ids.size(), spans.attempts().size());
    for (std::size_t i = first_attempts; i < spans.attempts().size(); ++i)
        EXPECT_GE(spans.attempts()[i].submit, first_end);
    EXPECT_EQ(spans.waves().back().run, 1u);
    EXPECT_TRUE(json_parse_ok(exported(spans)));

    spans.clear();
    EXPECT_EQ(spans.attempts().size(), 0u);
    EXPECT_EQ(spans.timeline_end(), 0u);
}

TEST(SpanTrace, RingWraparoundCountsDrops)
{
    // A tiny lane ring evicts oldest-first; the absorbed drop count
    // carries into the exported instant.
    Tracer tiny(8);
    for (unsigned i = 0; i < 20; ++i)
        tiny.record(0, TraceEventKind::Action, i, i, 0);
    EXPECT_EQ(tiny.total(0), 20u);
    EXPECT_EQ(tiny.dropped(0), 12u);

    SpanTracer spans;
    spans.absorb_lane_events(tiny, 0);
    EXPECT_EQ(spans.lane_event_count(), 8u);
    EXPECT_EQ(spans.dropped_lane_events(), 12u);
    const std::string text = exported(spans);
    EXPECT_TRUE(json_parse_ok(text));
    EXPECT_NE(text.find("trace data dropped"), std::string::npos);

    // The span-side caps drop keep-first as well.
    SpanTracer capped(/*max_spans=*/2, /*max_lane_events=*/4);
    for (unsigned i = 0; i < 5; ++i) {
        JobRunEvent ev;
        ev.job_name = "j";
        ev.job_index = i;
        ev.final_disposition = true;
        capped.on_job_run(ev);
    }
    EXPECT_EQ(capped.attempts().size(), 2u);
    EXPECT_EQ(capped.dropped_spans(), 3u);
    capped.absorb_lane_events(tiny, 0);
    EXPECT_EQ(capped.lane_event_count(), 4u);
    EXPECT_EQ(capped.dropped_lane_events(), 12u + 4u);
    EXPECT_TRUE(json_parse_ok(exported(capped)));
}

TEST(SpanTrace, HostileJobNamesAreEscaped)
{
    SpanTracer spans;
    spans.begin_schedule(3);
    const char *names[] = {"quote\"inside", "back\\slash",
                           "ctrl\x01\ttab\nnewline"};
    for (unsigned i = 0; i < 3; ++i) {
        JobRunEvent ev;
        ev.job_name = names[i];
        ev.job_index = i;
        ev.final_disposition = true;
        spans.on_job_run(ev);
    }
    const std::string text = exported(spans);
    EXPECT_TRUE(json_parse_ok(text)) << text;
    EXPECT_NE(text.find("quote\\\"inside"), std::string::npos);
    EXPECT_NE(text.find("back\\\\slash"), std::string::npos);
    EXPECT_NE(text.find("\\u0001"), std::string::npos);
    // No raw control bytes survive into the document.
    for (const char c : text)
        EXPECT_TRUE(c == '\n' || static_cast<unsigned char>(c) >= 0x20);
}

TEST(SpanTrace, SpanServiceSumMatchesTelemetryHistogram)
{
    // Both sinks watch one fault-injected run; the span view and the
    // aggregate view must describe the same cycles.
    auto jobs = trace_fleet(100);
    FaultInjector inj(7);
    inj.force_trap(jobs[2], 50, /*attempts=*/1);

    MetricRegistry reg;
    RegistryTelemetry sink(reg);
    SpanTracer spans;
    SchedulerOptions opts;
    opts.retry.max_attempts = 3;
    opts.telemetry = &sink;
    opts.spans = &spans;
    Scheduler sched(opts);
    const ScheduleReport rep = sched.run(jobs);
    EXPECT_GT(rep.retries, 0u);

    std::uint64_t service_sum = 0, e2e_final = 0;
    for (const AttemptSpan &a : spans.attempts()) {
        service_sum += a.service;
        if (a.final_disposition)
            ++e2e_final;
    }
    for (const auto &[name, snap] : reg.histograms()) {
        if (name == "job.service_cycles") {
            EXPECT_EQ(snap.sum, service_sum);
            EXPECT_EQ(snap.count, spans.attempts().size());
        }
        if (name == "job.e2e_cycles")
            EXPECT_EQ(snap.count, e2e_final);
    }
    EXPECT_EQ(e2e_final, jobs.size());
}

// --- The machine.hpp claim: per-lane Tracer rings under threads -----------

TEST(SpanTrace, TracerIsIdenticalUnderThreadedBackend)
{
    // Pin the documented claim that per-lane rings are race-free under
    // run_parallel because each worker writes only its own lane's ring:
    // the threaded backend must produce byte-identical rings (TSan
    // covers the access pattern in CI).
    const auto jobs = trace_fleet(16); // single wave: rings survive run

    Tracer serial_t;
    SchedulerOptions serial;
    serial.threads = 1;
    serial.lane_tracer = &serial_t;
    Scheduler a(serial);
    const ScheduleReport ra = a.run(jobs);

    Tracer pooled_t;
    SchedulerOptions pooled;
    pooled.threads = 8;
    pooled.lane_tracer = &pooled_t;
    Scheduler b(pooled);
    const ScheduleReport rb = b.run(jobs);

    EXPECT_EQ(ra.wall_cycles, rb.wall_cycles);
    EXPECT_EQ(serial_t.active_lanes(), pooled_t.active_lanes());
    for (const unsigned lane : serial_t.active_lanes()) {
        const auto ea = serial_t.events(lane);
        const auto eb = pooled_t.events(lane);
        ASSERT_EQ(ea.size(), eb.size()) << "lane " << lane;
        for (std::size_t i = 0; i < ea.size(); ++i) {
            EXPECT_EQ(ea[i].cycle, eb[i].cycle);
            EXPECT_EQ(ea[i].kind, eb[i].kind);
            EXPECT_EQ(ea[i].a, eb[i].a);
            EXPECT_EQ(ea[i].b, eb[i].b);
            // Every event in lane N's ring names lane N — no
            // cross-lane writes, the property that makes the
            // lock-free sharing sound.
            EXPECT_EQ(ea[i].lane, lane);
            EXPECT_EQ(eb[i].lane, lane);
        }
    }
}

TEST(SpanTrace, ResultsBitIdenticalWithAllSinksAttached)
{
    const auto jobs = trace_fleet(100);
    Scheduler plain;
    const ScheduleReport ref = plain.run(jobs);

    Tracer tracer;
    SpanTracer spans;
    FlightRecorder recorder;
    SchedulerOptions opts;
    opts.threads = 4;
    opts.spans = &spans;
    opts.recorder = &recorder;
    opts.lane_tracer = &tracer;
    opts.postmortem.keep_last = 4;
    Scheduler observed(opts);
    const ScheduleReport rep = observed.run(jobs);

    EXPECT_EQ(ref.wall_cycles, rep.wall_cycles);
    EXPECT_DOUBLE_EQ(ref.energy_j, rep.energy_j);
    ASSERT_EQ(ref.jobs.size(), rep.jobs.size());
    for (std::size_t i = 0; i < ref.jobs.size(); ++i)
        expect_results_eq(ref.jobs[i], rep.jobs[i]);
}

// --- Flight recorder ------------------------------------------------------

TEST(SpanTrace, FlightRecorderObservesSchedulerLifecycle)
{
    const auto jobs = trace_fleet(100);
    FlightRecorder rec(/*ring_capacity=*/4096);
    SchedulerOptions opts;
    opts.threads = 4;
    opts.recorder = &rec;
    Scheduler sched(opts);
    const ScheduleReport rep = sched.run(jobs);

    const auto events = rec.snapshot();
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(rec.total(), events.size() + rec.dropped());
    EXPECT_EQ(rec.dropped(), 0u); // ring big enough for this fleet

    std::uint64_t starts = 0, ends = 0, runs = 0, waves = 0;
    std::uint64_t last_seq = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const FlightEvent &e = events[i];
        if (i > 0)
            EXPECT_GT(e.seq, last_seq); // strict global order
        last_seq = e.seq;
        switch (e.kind) {
        case FlightEventKind::LaneStart: ++starts; break;
        case FlightEventKind::LaneEnd:
            ++ends;
            EXPECT_GT(e.b, 0u); // lane cycles
            break;
        case FlightEventKind::JobRun: ++runs; break;
        case FlightEventKind::WaveClose: ++waves; break;
        case FlightEventKind::Quarantine: break;
        }
    }
    // Worker-thread lane hooks fire once per run; harvest events once
    // per run; one close per wave.
    EXPECT_EQ(starts, jobs.size() + rep.retries);
    EXPECT_EQ(ends, starts);
    EXPECT_EQ(runs, starts);
    EXPECT_EQ(waves, rep.waves.size());
    EXPECT_FALSE(flight_event_kind_name(events[0].kind).empty());
}

TEST(SpanTrace, FlightRecorderRingKeepsMostRecent)
{
    FlightRecorder rec(/*ring_capacity=*/8);
    for (unsigned i = 0; i < 20; ++i)
        rec.record(FlightEventKind::JobRun, 0, /*a=*/i);
    EXPECT_EQ(rec.total(), 20u);
    EXPECT_EQ(rec.dropped(), 12u);
    const auto events = rec.snapshot();
    ASSERT_EQ(events.size(), 8u);
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].a, 12u + i); // oldest evicted first
}

TEST(SpanTrace, FlightRecorderConcurrentThreadsKeepExactTotals)
{
    // 8 threads, each overflowing its own ring: totals stay exact and
    // the merged snapshot is seq-sorted (TSan-exercised in CI).  The
    // barrier after the first record keeps all 8 slots claimed at once —
    // without it a fast thread can exit and donate its slot (and ring)
    // to a later thread, which is the intended reuse semantics but not
    // what this test measures.
    FlightRecorder rec(/*ring_capacity=*/64);
    constexpr unsigned kThreads = 8, kPer = 1'000;
    {
        std::atomic<unsigned> claimed{0};
        std::vector<std::jthread> pool;
        for (unsigned t = 0; t < kThreads; ++t)
            pool.emplace_back([&rec, &claimed, t] {
                rec.record(FlightEventKind::LaneEnd, t, 0, 1);
                claimed.fetch_add(1);
                while (claimed.load() < kThreads)
                    std::this_thread::yield();
                for (unsigned i = 1; i < kPer; ++i)
                    rec.record(FlightEventKind::LaneEnd, t, i, 1);
            });
    }
    EXPECT_EQ(rec.total(), std::uint64_t{kThreads} * kPer);
    const auto events = rec.snapshot();
    EXPECT_EQ(events.size(), std::size_t{kThreads} * 64);
    EXPECT_EQ(rec.dropped(), std::uint64_t{kThreads} * (kPer - 64));
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_GT(events[i].seq, events[i - 1].seq);
}

// --- Post-mortem fault reports --------------------------------------------

TEST(Postmortem, QuarantineCapturesOneReportPerAttempt)
{
    auto jobs = trace_fleet(8);
    FaultInjector inj(11);
    inj.poison_program(jobs[5]); // BadDispatch on every attempt

    Tracer tracer;
    SpanTracer spans;
    SchedulerOptions opts;
    opts.retry.max_attempts = 3;
    opts.spans = &spans;
    opts.lane_tracer = &tracer;
    opts.postmortem.keep_last = 8;
    Scheduler sched(opts);
    const ScheduleReport rep = sched.run(jobs);
    EXPECT_EQ(rep.quarantined, 1u);

    const auto &pms = sched.postmortems();
    ASSERT_EQ(pms.size(), 3u);
    for (unsigned i = 0; i < 3; ++i) {
        const FaultReport &fr = pms[i];
        EXPECT_EQ(fr.job_index, 5u);
        EXPECT_EQ(fr.attempt, i + 1);
        EXPECT_EQ(fr.max_attempts, 3u);
        EXPECT_EQ(fr.status, LaneStatus::Faulted);
        EXPECT_EQ(fr.fault.code, FaultCode::BadDispatch);
        EXPECT_EQ(fr.trace_id, spans.trace_id(5));
        // History holds exactly the prior attempts, oldest first.
        ASSERT_EQ(fr.attempt_history.size(), i);
        for (unsigned h = 0; h < i; ++h) {
            EXPECT_EQ(fr.attempt_history[h].attempt, h + 1);
            EXPECT_EQ(fr.attempt_history[h].fault,
                      FaultCode::BadDispatch);
        }
        EXPECT_EQ(fr.will_retry, i < 2);
        EXPECT_EQ(fr.quarantined, i == 2);
        // A poisoned program still disassembles (defensively).
        EXPECT_FALSE(fr.disassembly.empty());
    }
}

TEST(Postmortem, ForcedTrapCapturesRecentRingEvents)
{
    auto jobs = trace_fleet(8);
    FaultInjector inj(3);
    inj.force_trap(jobs[2], 500, /*attempts=*/1);

    Tracer tracer;
    SchedulerOptions opts;
    opts.retry.max_attempts = 2;
    opts.lane_tracer = &tracer;
    opts.postmortem.keep_last = 4;
    Scheduler sched(opts);
    const ScheduleReport rep = sched.run(jobs);
    EXPECT_EQ(rep.quarantined, 0u); // recovered on attempt 2

    const auto &pms = sched.postmortems();
    ASSERT_EQ(pms.size(), 1u);
    const FaultReport &fr = pms.front();
    EXPECT_EQ(fr.fault.code, FaultCode::ForcedTrap);
    EXPECT_TRUE(fr.will_retry);
    EXPECT_GT(fr.service_cycles, 0u);
    // 500 cycles of real execution before the trap leave micro-events
    // in the lane's ring, all stamped at or before the trap cycle.
    ASSERT_FALSE(fr.recent_events.empty());
    for (const TraceEvent &ev : fr.recent_events) {
        EXPECT_EQ(ev.lane, fr.lane);
        EXPECT_LE(ev.cycle, fr.fault.cycle);
    }
}

TEST(Postmortem, ReportSerializesToValidJsonFile)
{
    auto jobs = trace_fleet(8);
    FaultInjector inj(5);
    inj.poison_program(jobs[1]);

    const std::string dir =
        (std::filesystem::path(testing::TempDir()) / "pm_out").string();
    std::filesystem::remove_all(dir);
    Tracer tracer;
    SchedulerOptions opts;
    opts.retry.max_attempts = 2;
    opts.lane_tracer = &tracer;
    opts.postmortem.dir = dir;
    Scheduler sched(opts);
    sched.run(jobs);

    // keep_last stayed 0: files were written, memory kept nothing.
    EXPECT_TRUE(sched.postmortems().empty());
    unsigned files = 0;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        ++files;
        std::ifstream in(entry.path());
        std::stringstream ss;
        ss << in.rdbuf();
        EXPECT_TRUE(json_parse_ok(ss.str())) << entry.path();
        const std::string text = ss.str();
        EXPECT_NE(text.find("\"fault\""), std::string::npos);
        EXPECT_NE(text.find("\"disassembly\""), std::string::npos);
        EXPECT_NE(text.find("bad-dispatch"), std::string::npos);
    }
    EXPECT_EQ(files, 2u); // one per attempt

    FaultReport fr;
    fr.job_index = 7;
    fr.attempt = 3;
    EXPECT_EQ(postmortem_filename(fr), "postmortem-job7-attempt3.json");
}

TEST(Postmortem, KeepLastTrimsAndMaxFilesCapsWrites)
{
    // Starvation budget: all 8 jobs time out on both attempts — 16
    // faulted runs against keep_last 5 and max_files 3.
    auto jobs = trace_fleet(8);
    const std::string dir =
        (std::filesystem::path(testing::TempDir()) / "pm_cap").string();
    std::filesystem::remove_all(dir);
    SchedulerOptions opts;
    opts.max_cycles_per_lane = 64;
    opts.retry.max_attempts = 2;
    opts.postmortem.dir = dir;
    opts.postmortem.keep_last = 5;
    opts.postmortem.max_files = 3;
    Scheduler sched(opts);
    const ScheduleReport rep = sched.run(jobs);
    EXPECT_EQ(rep.faulted_runs, 2 * jobs.size());
    EXPECT_EQ(rep.quarantined, jobs.size());

    const auto &pms = sched.postmortems();
    ASSERT_EQ(pms.size(), 5u); // oldest evicted
    for (const FaultReport &fr : pms) {
        EXPECT_EQ(fr.status, LaneStatus::TimedOut);
        EXPECT_EQ(fr.attempt, 2u); // only final-wave reports survive
        EXPECT_TRUE(fr.quarantined);
    }
    unsigned files = 0;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        (void)entry;
        ++files;
    }
    EXPECT_EQ(files, 3u);
}

TEST(Postmortem, DisassemblyIsDefensiveOnHostileBases)
{
    const auto jobs = trace_fleet(2);
    const Program &prog = *jobs[0].program;
    // A base matching no state renders the raw-window fallback rather
    // than throwing.
    const std::string miss = disassemble_state(prog, 0x00FF'FFFF);
    EXPECT_NE(miss.find("no matching state table"), std::string::npos);

    // A poisoned program's victim state still renders, annotating the
    // undecodable words instead of propagating the decode error.
    auto poisoned = trace_fleet(2);
    FaultInjector inj(13);
    inj.poison_program(poisoned[0]);
    SchedulerOptions opts;
    opts.retry.max_attempts = 1;
    opts.postmortem.keep_last = 1;
    Scheduler sched(opts);
    sched.run(poisoned);
    ASSERT_EQ(sched.postmortems().size(), 1u);
    const FaultReport &fr = sched.postmortems().front();
    EXPECT_FALSE(fr.disassembly.empty());
    EXPECT_EQ(fr.fault.code, FaultCode::BadDispatch);
}
