/**
 * @file
 * Tests for the automata library: regex parsing, NFA/DFA/aDFA agreement,
 * minimization, and compilation to UDP programs whose match counts equal
 * the software models'.
 */
#include "automata/compile.hpp"
#include "core/lane.hpp"

#include <gtest/gtest.h>

#include <random>

namespace udp {
namespace {

Bytes
bytes_of(const std::string &s)
{
    return Bytes(s.begin(), s.end());
}

std::uint64_t
nfa_count(const std::string &pattern, const std::string &text)
{
    const auto ast = parse_regex(pattern);
    const Nfa nfa = build_nfa(*ast);
    const Bytes data = bytes_of(text);
    return nfa.count_matches(data);
}

TEST(Regex, LiteralAndClassesMatch)
{
    EXPECT_EQ(nfa_count("abc", "zzabczzabc"), 2u);
    EXPECT_EQ(nfa_count("[0-9]+x", "12x 9x x"), 2u);
    EXPECT_EQ(nfa_count("a.c", "abc adc a\nc"), 3u);
    EXPECT_EQ(nfa_count("\\d\\d", "07 9"), 1u);
    EXPECT_EQ(nfa_count("ho(t|use)", "hot house hose"), 2u);
    EXPECT_EQ(nfa_count("colou?r", "color colour colr"), 2u);
    EXPECT_EQ(nfa_count("(ab){2,3}", "abab"), 1u);
    EXPECT_EQ(nfa_count("[^a]b", "ab bb cb"), 3u); // " b", "bb", "cb"
    EXPECT_EQ(nfa_count("\\x41B", "AB aB"), 1u);
}

TEST(Regex, CountsOverlappingAndRepeated)
{
    // Unanchored counting: one count per end position that accepts.
    EXPECT_EQ(nfa_count("aa", "aaaa"), 3u);
    EXPECT_EQ(nfa_count("a+", "aaa"), 3u);
}

TEST(Regex, SyntaxErrorsThrow)
{
    EXPECT_THROW(parse_regex("a("), UdpError);
    EXPECT_THROW(parse_regex("[z-a]"), UdpError);
    EXPECT_THROW(parse_regex("a{5,2}"), UdpError);
    EXPECT_THROW(parse_regex("*a"), UdpError);
    EXPECT_THROW(parse_regex("a{100}"), UdpError);
    EXPECT_THROW(parse_regex("[]"), UdpError);
}

TEST(Dfa, AgreesWithNfa)
{
    const std::vector<std::string> patterns = {
        "abc", "[0-9]+", "a(b|c)*d", "x.{2}y", "(foo|bar|baz)qux?",
    };
    const std::string text =
        "abc0123 axbyczd abbbccd foobarqux x12y xABy bazqu 99";
    const Bytes data = bytes_of(text);
    for (const auto &p : patterns) {
        const auto ast = parse_regex(p);
        const Nfa nfa = build_nfa(*ast);
        const Dfa dfa = determinize(nfa);
        EXPECT_EQ(dfa.count_matches(data), nfa.count_matches(data))
            << "pattern " << p;
    }
}

TEST(Dfa, MinimizationPreservesLanguageAndShrinks)
{
    const auto ast = parse_regex("(ab|ac)+");
    const Nfa nfa = build_nfa(*ast);
    const Dfa dfa = determinize(nfa);
    const Dfa min = minimize(dfa);
    EXPECT_LE(min.size(), dfa.size());
    const Bytes data = bytes_of("abacab zabab acacac");
    EXPECT_EQ(min.count_matches(data), dfa.count_matches(data));
}

TEST(Dfa, MultiPatternIds)
{
    const auto a1 = parse_regex("cat");
    const auto a2 = parse_regex("dog");
    const Nfa nfa = build_multi_nfa({a1.get(), a2.get()});
    const Dfa dfa = minimize(determinize(nfa));
    const Bytes data = bytes_of("catdogcat");
    EXPECT_EQ(dfa.count_matches(data), 3u);
}

TEST(Adfa, MatchesDfaExactlyAndIsSmaller)
{
    const auto a1 = parse_regex("GET /[a-z]+");
    const auto a2 = parse_regex("POST /[a-z]+");
    const auto a3 = parse_regex("HTTP/1[.][01]");
    const Nfa nfa = build_multi_nfa({a1.get(), a2.get(), a3.get()});
    const Dfa dfa = minimize(determinize(nfa));
    const Adfa adfa = build_adfa(dfa);

    EXPECT_LT(adfa.arc_count(), dfa.size() * 256u);
    const Bytes data =
        bytes_of("GET /index HTTP/1.0 POST /form HTTP/1.1 GET /a");
    EXPECT_EQ(adfa.count_matches(data), dfa.count_matches(data));
    EXPECT_GT(adfa.count_matches(data), 0u);
}

struct CompiledMatch : ::testing::Test {
    LocalMemory mem{AddressingMode::Restricted};
    Lane lane{0, mem};

    std::uint64_t run_dfa_program(const Program &p, const Bytes &data) {
        lane.load(p);
        lane.set_input(data);
        const LaneStatus st = lane.run();
        EXPECT_EQ(st, LaneStatus::Done);
        return lane.accept_count();
    }
};

TEST_F(CompiledMatch, DfaProgramCountsMatchSoftware)
{
    const auto a1 = parse_regex("attack[0-9]+");
    const auto a2 = parse_regex("(root|admin)login");
    const Nfa nfa = build_multi_nfa({a1.get(), a2.get()});
    const Dfa dfa = minimize(determinize(nfa));
    const Program p = compile_dfa(dfa);

    const Bytes data = bytes_of(
        "xxattack99 rootlogin adminlogin attack1 guestlogin attack");
    EXPECT_EQ(run_dfa_program(p, data), dfa.count_matches(data));
    EXPECT_GT(lane.accept_count(), 0u);
}

TEST_F(CompiledMatch, MajorityCompressionShrinksCode)
{
    const auto ast = parse_regex("needle");
    const Nfa nfa = build_nfa(*ast);
    const Dfa dfa = minimize(determinize(nfa));

    DfaCompileOptions with;
    DfaCompileOptions without;
    without.majority_threshold = 0;
    const Program p1 = compile_dfa(dfa, with);
    const Program p2 = compile_dfa(dfa, without);
    EXPECT_LT(p1.layout.used_words, p2.layout.used_words / 4);

    const Bytes data = bytes_of("find the needle in the haystack needle");
    EXPECT_EQ(run_dfa_program(p1, data), 2u);
    lane.load(p2);
    lane.set_input(data);
    lane.run();
    EXPECT_EQ(lane.accept_count(), 2u);
}

TEST_F(CompiledMatch, AdfaProgramMatchesWithRefillDefaults)
{
    const auto a1 = parse_regex("evil(exe|dll)");
    const auto a2 = parse_regex("virus[a-z]{2}");
    const Nfa nfa = build_multi_nfa({a1.get(), a2.get()});
    const Dfa dfa = minimize(determinize(nfa));
    const Adfa adfa = build_adfa(dfa);
    const Program p = compile_adfa(adfa);

    const Bytes data = bytes_of("evilexe virusab evildll virus viruszz");
    lane.load(p);
    lane.set_input(data);
    EXPECT_EQ(lane.run(), LaneStatus::Done);
    EXPECT_EQ(lane.accept_count(), dfa.count_matches(data));
    // Default chains re-dispatch: dispatches exceed input length.
    EXPECT_GT(lane.stats().dispatches, data.size());
}

TEST_F(CompiledMatch, NfaProgramMatchesSoftwareNfa)
{
    const auto a1 = parse_regex("ab*c");
    const auto a2 = parse_regex("a[bc]d");
    const Nfa nfa0 = build_multi_nfa({a1.get(), a2.get()});
    const Nfa nfa = eliminate_epsilon(nfa0);
    const Program p = compile_nfa(nfa);

    const Bytes data = bytes_of("abbbc abd acd ac axd abc");
    lane.load(p);
    lane.set_input(data);
    EXPECT_EQ(lane.run_nfa(), LaneStatus::Done);
    EXPECT_EQ(lane.accept_count(), nfa0.count_matches(data));
}

/// Property: for random patterns and random text, the compiled UDP DFA
/// program and the software DFA agree on match counts.
TEST_F(CompiledMatch, PropertyRandomPatternsAgree)
{
    std::mt19937 rng(42);
    const std::vector<std::string> pool = {
        "ab+c", "x[yz]{1,2}", "(cat|car)s?", "[0-9][0-9]", "end$?",
        "w\\d+w", "[a-f]{3}", "q(u|v)*z",
    };
    const std::string alphabet = "abcxyz019qwue ";
    for (int trial = 0; trial < 8; ++trial) {
        const auto &pat = pool[rng() % pool.size()];
        std::string text;
        for (int i = 0; i < 400; ++i)
            text.push_back(alphabet[rng() % alphabet.size()]);
        const auto ast = parse_regex(pat);
        const Nfa nfa = build_nfa(*ast);
        const Dfa dfa = minimize(determinize(nfa));
        const Program p = compile_dfa(dfa);
        const Bytes data = bytes_of(text);
        lane.load(p);
        lane.set_input(data);
        lane.run();
        EXPECT_EQ(lane.accept_count(), dfa.count_matches(data))
            << "pattern " << pat << " text " << text;
    }
}

} // namespace
} // namespace udp
