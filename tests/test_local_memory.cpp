/**
 * @file
 * Unit tests for the banked local memory, addressing modes (Figure 10)
 * and the bank arbiter ("detect and stall" consistency).
 */
#include "core/local_memory.hpp"

#include <gtest/gtest.h>

namespace udp {
namespace {

TEST(LocalMemory, LocalModeConfinesLaneToOwnBank)
{
    LocalMemory mem(AddressingMode::Local);
    EXPECT_EQ(mem.translate(0, 0, 0), 0u);
    EXPECT_EQ(mem.translate(1, 0, 0), kBankBytes);
    EXPECT_EQ(mem.translate(63, kBankBytes - 1, 0), kLocalMemBytes - 1);
    EXPECT_THROW(mem.translate(0, kBankBytes, 0), UdpError);
}

TEST(LocalMemory, GlobalModeSpansWholeMemory)
{
    LocalMemory mem(AddressingMode::Global);
    EXPECT_EQ(mem.translate(5, 123456, 0), 123456u);
    EXPECT_THROW(mem.translate(0, kLocalMemBytes, 0), UdpError);
}

TEST(LocalMemory, RestrictedModeAddsWindowBase)
{
    LocalMemory mem(AddressingMode::Restricted);
    EXPECT_EQ(mem.translate(0, 100, 3 * kBankBytes),
              3 * kBankBytes + 100);
    // A lane may reach any bank by moving its base register.
    EXPECT_EQ(mem.translate(0, 0, 63 * kBankBytes), 63 * kBankBytes);
    EXPECT_THROW(mem.translate(0, kBankBytes, 63 * kBankBytes), UdpError);
}

TEST(LocalMemory, ReadWriteRoundTrip)
{
    LocalMemory mem;
    mem.write32(0x100, 0xDEADBEEF);
    EXPECT_EQ(mem.read32(0x100), 0xDEADBEEFu);
    EXPECT_EQ(mem.read8(0x100), 0xEFu); // little-endian
    mem.write8(0x103, 0x12);
    EXPECT_EQ(mem.read32(0x100), 0x12ADBEEFu);
    EXPECT_THROW(mem.read32(kLocalMemBytes - 2), UdpError);
}

TEST(LocalMemory, BankOfMatchesGeometry)
{
    EXPECT_EQ(LocalMemory::bank_of(0), 0u);
    EXPECT_EQ(LocalMemory::bank_of(kBankBytes), 1u);
    EXPECT_EQ(LocalMemory::bank_of(kLocalMemBytes - 1), kNumBanks - 1);
}

TEST(MemoryEnergy, GlobalCostsMoreThanDouble)
{
    // Fig 11c: 4.3 pJ/ref banked vs 8.8 pJ/ref global.
    EXPECT_DOUBLE_EQ(memory_ref_energy_pj(AddressingMode::Local), 4.3);
    EXPECT_DOUBLE_EQ(memory_ref_energy_pj(AddressingMode::Restricted), 4.3);
    EXPECT_DOUBLE_EQ(memory_ref_energy_pj(AddressingMode::Global), 8.8);
    EXPECT_GT(memory_ref_energy_pj(AddressingMode::Global),
              2 * memory_ref_energy_pj(AddressingMode::Local));
}

TEST(BankArbiter, FirstAccessIsFree)
{
    BankArbiter arb;
    arb.begin_cycle();
    EXPECT_EQ(arb.request(0, false), 0u);
    EXPECT_EQ(arb.request(1, false), 0u);
    EXPECT_EQ(arb.request(0, true), 0u); // separate write port
}

TEST(BankArbiter, ConflictsSerialize)
{
    BankArbiter arb;
    arb.begin_cycle();
    EXPECT_EQ(arb.request(7, false), 0u);
    EXPECT_EQ(arb.request(7, false), 1u);
    EXPECT_EQ(arb.request(7, false), 2u);
    EXPECT_EQ(arb.total_stalls(), 3u);
    arb.begin_cycle();
    EXPECT_EQ(arb.request(7, false), 0u); // new cycle, port free again
}

TEST(BankArbiter, RejectsBadBank)
{
    BankArbiter arb;
    arb.begin_cycle();
    EXPECT_THROW(arb.request(kNumBanks, false), UdpError);
}

} // namespace
} // namespace udp
