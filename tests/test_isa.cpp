/**
 * @file
 * Unit tests for the ISA encodings (paper Figure 6): round-trips, field
 * widths, and error behavior.
 */
#include "core/isa.hpp"

#include <gtest/gtest.h>

namespace udp {
namespace {

TEST(TransitionEncoding, RoundTripAllTypes)
{
    for (unsigned k = 0; k < kNumTransitionTypes; ++k) {
        Transition t;
        t.signature = 0xA5;
        t.target = 0xBCD;
        t.type = static_cast<TransitionType>(k);
        t.attach_mode = AttachMode::ScaledOffset;
        t.attach = 0x3C;
        const Word raw = encode_transition(t);
        EXPECT_EQ(decode_transition(raw), t)
            << "type=" << transition_type_name(t.type);
    }
}

TEST(TransitionEncoding, Is32BitsWithExactFields)
{
    Transition t;
    t.signature = 0xFF;
    t.target = 0xFFF;
    t.type = TransitionType::Refill;
    t.attach_mode = AttachMode::ScaledOffset;
    t.attach = 0xFF;
    const Word raw = encode_transition(t);
    EXPECT_EQ(raw, 0xFFFFFEFFu); // type field = 0b1110 (mode|refill=6)
}

TEST(TransitionEncoding, RejectsOversizedTarget)
{
    Transition t;
    t.target = 0x1000; // 13 bits
    EXPECT_THROW(encode_transition(t), UdpError);
}

TEST(TransitionEncoding, DefaultAttachMeansNoActions)
{
    Transition t;
    const Transition u = decode_transition(encode_transition(t));
    EXPECT_EQ(u.attach, kNoActions);
    EXPECT_EQ(u.attach_mode, AttachMode::Direct);
}

TEST(ActionEncoding, ImmRoundTripSignExtension)
{
    Action a = act_imm(Opcode::Addi, 3, 7, -1234, true);
    const Action b = decode_action(encode_action(a));
    EXPECT_EQ(b, a);
    EXPECT_EQ(b.imm, -1234);
}

TEST(ActionEncoding, LogicalImmediatesZeroExtend)
{
    Action a = act_imm(Opcode::Andi, 1, 2, 0xFFFF, false);
    const Action b = decode_action(encode_action(a));
    EXPECT_EQ(b.imm, 0xFFFF);
}

TEST(ActionEncoding, ImmOverflowThrows)
{
    EXPECT_THROW(encode_action(act_imm(Opcode::Addi, 0, 0, 40000)),
                 UdpError);
    EXPECT_THROW(encode_action(act_imm(Opcode::Andi, 0, 0, -1)), UdpError);
    EXPECT_THROW(encode_action(act_imm(Opcode::Movi, 0, 0, 1 << 16)),
                 UdpError);
}

TEST(ActionEncoding, RegFormatRoundTrip)
{
    Action a = act_reg(Opcode::Loopcmp, 4, 5, 6, true);
    EXPECT_EQ(decode_action(encode_action(a)), a);
}

TEST(ActionEncoding, Imm2FormatRoundTrip)
{
    Action a;
    a.op = Opcode::Setab;
    a.dst = 0;
    a.src = 2;
    a.imm1 = 3;    // scale
    a.imm = 2049;  // 12-bit base
    a.last = true;
    EXPECT_EQ(decode_action(encode_action(a)), a);
}

TEST(ActionEncoding, Imm2OverflowThrows)
{
    Action a;
    a.op = Opcode::Setab;
    a.imm = 4096;
    EXPECT_THROW(encode_action(a), UdpError);
    a.imm = 0;
    a.imm1 = 16;
    EXPECT_THROW(encode_action(a), UdpError);
}

TEST(ActionEncoding, RegisterIndexLimit)
{
    Action a = act_imm(Opcode::Addi, 16, 0, 0);
    EXPECT_THROW(encode_action(a), UdpError);
}

TEST(ActionEncoding, UndefinedOpcodeThrowsOnDecode)
{
    // Opcode 127 is unused.
    const Word raw = make_bits(127, 25, 7);
    EXPECT_THROW(decode_action(raw), UdpError);
    EXPECT_FALSE(opcode_valid(127));
}

TEST(OpcodeNames, RoundTrip)
{
    for (Word v = 0; v < 128; ++v) {
        if (!opcode_valid(v))
            continue;
        const auto op = static_cast<Opcode>(v);
        const auto name = opcode_name(op);
        const auto back = opcode_from_name(name);
        ASSERT_TRUE(back.has_value()) << name;
        EXPECT_EQ(*back, op);
    }
    EXPECT_FALSE(opcode_from_name("no-such-op").has_value());
}

TEST(OpcodeNames, CoversAtLeastFiftyActions)
{
    // The paper's lane ISA has ~50 actions; make sure we did not shrink.
    unsigned count = 0;
    for (Word v = 0; v < 128; ++v)
        count += opcode_valid(v) ? 1 : 0;
    EXPECT_GE(count, 50u);
}

TEST(TransitionNames, AllSevenTypes)
{
    EXPECT_EQ(transition_type_name(TransitionType::Labeled), "labeled");
    EXPECT_EQ(transition_type_name(TransitionType::Majority), "majority");
    EXPECT_EQ(transition_type_name(TransitionType::Default), "default");
    EXPECT_EQ(transition_type_name(TransitionType::Epsilon), "epsilon");
    EXPECT_EQ(transition_type_name(TransitionType::Common), "common");
    EXPECT_EQ(transition_type_name(TransitionType::Flagged), "flagged");
    EXPECT_EQ(transition_type_name(TransitionType::Refill), "refill");
}

} // namespace
} // namespace udp
