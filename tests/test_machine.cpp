/**
 * @file
 * Machine-level tests: 64-lane data-parallel kernels, bank-conflict
 * stalls under global addressing, window isolation under restricted
 * addressing, energy accounting, and failure injection.
 */
#include "assembler/builder.hpp"
#include "baselines/csv.hpp"
#include "kernels/csv.hpp"
#include "kernels/histogram.hpp"
#include "workloads/generators.hpp"

#include <gtest/gtest.h>

namespace udp {
namespace {

using namespace kernels;

Bytes
bytes_of(const std::string &s)
{
    return Bytes(s.begin(), s.end());
}

TEST(Machine64, ThirtyTwoLanesParseDisjointCsvChunks)
{
    // Split a CSV across 32 lanes on row boundaries; the sum of lane
    // counters must equal the single-parser result (the paper's
    // data-parallel deployment of Fig 13).
    const std::string text = workloads::crimes_csv(400);
    const Bytes data = bytes_of(text);
    const auto expect = baselines::parse_csv(data);

    Machine m(AddressingMode::Restricted);
    std::uint64_t fields = 0, rows = 0;
    Cycles wall = 0;
    std::size_t off = 0;
    unsigned lane = 0;
    std::uint64_t bytes_done = 0;
    while (off < data.size()) {
        std::size_t end = std::min(off + 12'000, data.size());
        if (end < data.size())
            while (end > off && data[end - 1] != '\n')
                --end;
        ASSERT_GT(end, off);
        const auto res = run_csv_kernel(
            m, lane % 32, BytesView(data).subspan(off, end - off),
            static_cast<ByteAddr>((lane % 32) * kCsvWindowBytes));
        fields += res.fields;
        rows += res.rows;
        wall = std::max(wall, res.stats.cycles);
        bytes_done += end - off;
        off = end;
        ++lane;
    }
    EXPECT_EQ(bytes_done, data.size());
    EXPECT_EQ(fields, expect.fields);
    EXPECT_EQ(rows, expect.rows);
}

TEST(Machine64, AllLanesRunHistogramShards)
{
    // 64 lanes x disjoint value shards; merged counts == CPU histogram.
    const auto xs = workloads::fp_values(64 * 500, 0);
    auto h = baselines::Histogram::uniform(10, 41.2, 42.5);
    h.add_all(xs);

    const Program prog = histogram_program(h.edges());
    Machine m(AddressingMode::Restricted);

    std::vector<Bytes> shards(kNumLanes);
    for (unsigned l = 0; l < kNumLanes; ++l) {
        const std::vector<double> part(xs.begin() + l * 500,
                                       xs.begin() + (l + 1) * 500);
        shards[l] = pack_fp_stream(part);
    }
    std::vector<JobSpec> jobs(kNumLanes);
    for (unsigned l = 0; l < kNumLanes; ++l) {
        jobs[l].program = &prog;
        jobs[l].input = shards[l];
        jobs[l].window_base = l * kBankBytes;
    }
    m.assign(std::move(jobs));
    const MachineResult res = m.run_parallel();
    EXPECT_EQ(res.active_lanes, kNumLanes);

    std::vector<std::uint64_t> merged(10, 0);
    for (unsigned l = 0; l < kNumLanes; ++l)
        for (unsigned b = 0; b < 10; ++b)
            merged[b] += m.memory().read32(l * kBankBytes + b * 4);
    EXPECT_EQ(merged, h.counts());

    // Aggregate throughput must exceed one lane's rate substantially.
    EXPECT_GT(res.throughput_mbps(), 20 * 500.0);
    EXPECT_GT(m.last_run_energy_j(), 0.0);
}

TEST(MachineLockstep, GlobalAddressingSerializesBankConflicts)
{
    // Two lanes hammering the same global bank must stall; the same
    // program on disjoint restricted windows must not.
    ProgramBuilder b;
    const StateId s = b.add_state();
    b.on_any(s, s, b.add_block({
                 act_imm(Opcode::Ldw, 1, 0, 0x100),
                 act_imm(Opcode::Stw, 1, 0, 0x104, true),
             }));
    b.set_entry(s);
    b.set_addressing(AddressingMode::Global);
    const Program prog = b.build();

    const Bytes input(256, 'x');

    Machine g(AddressingMode::Global);
    std::vector<JobSpec> jobs(4);
    for (auto &j : jobs) {
        j.program = &prog;
        j.input = input;
    }
    g.assign(jobs);
    const MachineResult gr = g.run_lockstep();
    EXPECT_GT(gr.total.stall_cycles, 0u);

    Machine r(AddressingMode::Restricted);
    for (unsigned i = 0; i < 4; ++i)
        jobs[i].window_base = i * kBankBytes;
    r.assign(jobs);
    const MachineResult rr = r.run_lockstep();
    EXPECT_EQ(rr.total.stall_cycles, 0u);
    // Same work, less time without contention.
    EXPECT_LE(rr.wall_cycles, gr.wall_cycles);
    // Global references also cost more energy per access (Fig 11c).
    EXPECT_GT(g.last_run_energy_j(), r.last_run_energy_j());
}

TEST(MachineFailure, BadProgramsSurfaceAsFaults)
{
    Machine m;
    // More jobs than lanes is host API misuse: still a throw.
    std::vector<JobSpec> too_many(kNumLanes + 1);
    EXPECT_THROW(m.assign(std::move(too_many)), UdpError);

    // A lane escaping its restricted window is a *lane* fault: trapped
    // and recorded, never thrown (docs/ROBUSTNESS.md).
    ProgramBuilder b;
    const StateId s = b.add_state();
    b.on_any(s, s, b.add_block({act_imm(Opcode::Ldw, 1, 0, 0, true)}));
    b.set_entry(s);
    const Program prog = b.build();
    Lane &lane = m.lane(0);
    lane.load(prog);
    const Bytes input(4, 'x');
    lane.set_input(input);
    lane.set_window_base(kLocalMemBytes - 2); // window beyond memory end
    EXPECT_EQ(lane.run(), LaneStatus::Faulted);
    EXPECT_EQ(lane.fault().code, FaultCode::FetchOutOfRange);
    EXPECT_EQ(lane.fault().lane, 0u);
    EXPECT_FALSE(lane.fault().detail.empty());
}

TEST(MachineFailure, CorruptDispatchImageFaultsTheLane)
{
    ProgramBuilder b;
    const StateId s = b.add_state();
    b.on_symbol(s, 'a', s);
    b.set_entry(s);
    Program prog = b.build();

    // Point the arc at a non-state target: the lane must detect it.
    Transition t = decode_transition(prog.dispatch[prog.states[0].base +
                                                   'a']);
    t.target = static_cast<DispatchAddr>(
        (prog.states[0].base + 200) % kDispatchWords);
    prog.dispatch[prog.states[0].base + 'a'] = encode_transition(t);

    LocalMemory mem;
    Lane lane(0, mem);
    lane.load(prog);
    const Bytes input = bytes_of("aa");
    lane.set_input(input);
    EXPECT_EQ(lane.run(), LaneStatus::Faulted);
    EXPECT_EQ(lane.fault().code, FaultCode::BadDispatch);
    // The record pins where the lane trapped.
    EXPECT_NE(lane.fault().describe().find("bad-dispatch"),
              std::string::npos);
}

TEST(MachineFailure, RunParallelContainsOneFaultyLane)
{
    // One corrupt program among many: run_parallel records the fault in
    // MachineResult::faults and the healthy lanes finish untouched.
    ProgramBuilder good;
    const StateId gs = good.add_state();
    good.on_symbol(gs, 'a', gs);
    good.set_entry(gs);
    const Program good_prog = good.build();

    Program bad_prog = good_prog;
    for (Word &w : bad_prog.dispatch)
        w = Word{7u} << 8; // reserved transition type: BadDispatch

    const Bytes input(64, 'a');
    Machine m;
    std::vector<JobSpec> jobs(8);
    for (unsigned i = 0; i < jobs.size(); ++i) {
        jobs[i].program = i == 3 ? &bad_prog : &good_prog;
        jobs[i].input = input;
        jobs[i].window_base = i * kBankBytes;
    }
    m.assign(std::move(jobs));
    const MachineResult res = m.run_parallel();

    EXPECT_EQ(res.faulted_lanes(), 1u);
    EXPECT_EQ(res.status[3], LaneStatus::Faulted);
    EXPECT_EQ(res.faults[3].code, FaultCode::BadDispatch);
    EXPECT_EQ(res.faults[3].lane, 3u);
    for (unsigned i = 0; i < 8; ++i) {
        if (i == 3)
            continue;
        EXPECT_EQ(res.status[i], LaneStatus::Done);
        EXPECT_EQ(res.faults[i].code, FaultCode::None);
        EXPECT_EQ(m.lane(i).stats().input_bytes(), double(input.size()));
    }
}

TEST(MachineFailure, DeprecatedRethrowHatchSurfacesEveryFault)
{
    ProgramBuilder b;
    const StateId s = b.add_state();
    b.on_symbol(s, 'a', s);
    b.set_entry(s);
    const Program good_prog = b.build();
    Program bad_prog = good_prog;
    for (Word &w : bad_prog.dispatch)
        w = Word{7u} << 8;

    const Bytes input(8, 'a');
    Machine m;
    std::vector<JobSpec> jobs(4);
    for (unsigned i = 0; i < jobs.size(); ++i) {
        jobs[i].program = i >= 2 ? &bad_prog : &good_prog;
        jobs[i].input = input;
        jobs[i].window_base = i * kBankBytes;
    }
    m.assign(std::move(jobs));
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    m.set_rethrow_faults(true);
#pragma GCC diagnostic pop
    try {
        m.run_parallel();
        FAIL() << "expected the rethrow hatch to throw";
    } catch (const UdpFaultError &e) {
        EXPECT_EQ(e.code(), FaultCode::BadDispatch);
        // Both faulty lanes are reported, not just the first.
        const std::string what = e.what();
        EXPECT_NE(what.find("lane 2"), std::string::npos);
        EXPECT_NE(what.find("lane 3"), std::string::npos);
    }
}

TEST(MachineEnergy, EnergyScalesWithActiveLanes)
{
    const Program prog = [] {
        ProgramBuilder b;
        const StateId s = b.add_state();
        b.on_majority(s, s);
        b.set_entry(s);
        return b.build();
    }();
    const Bytes input(4096, 'q');

    auto run_with = [&](unsigned lanes) {
        Machine m;
        std::vector<JobSpec> jobs(lanes);
        for (auto &j : jobs) {
            j.program = &prog;
            j.input = input;
        }
        m.assign(std::move(jobs));
        m.run_parallel();
        return m.last_run_energy_j();
    };
    const double e1 = run_with(1);
    const double e32 = run_with(32);
    EXPECT_GT(e32, e1); // more active lanes, more energy
}

} // namespace
} // namespace udp
