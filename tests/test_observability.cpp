/**
 * @file
 * Observability-layer tests: the tracer's event counts against the
 * LaneStats counters, ring-buffer retention semantics, Chrome trace
 * export, the JSON writer/validator round-trip, and the profiler's
 * attribution + disassembler-matched state labels.
 */
#include "assembler/builder.hpp"
#include "assembler/disasm.hpp"
#include "core/machine.hpp"
#include "core/metrics_json.hpp"
#include "core/profile.hpp"
#include "core/trace.hpp"
#include "kernels/csv.hpp"
#include "workloads/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace udp {
namespace {

using namespace kernels;

/// A traced + profiled CSV-kernel run on a small synthetic file.
struct TracedCsvRun {
    Tracer tracer;
    Profiler profiler;
    LaneStats stats;

    TracedCsvRun()
    {
        const std::string text = workloads::crimes_csv(12);
        const Bytes data(text.begin(), text.end());
        Machine m(AddressingMode::Restricted);
        m.set_tracer(&tracer);
        m.set_profiler(&profiler);
        const auto res = run_csv_kernel(m, 0, data, 0);
        stats = res.stats;
    }
};

TEST(Trace, EventCountsMatchLaneStatsCounters)
{
    TracedCsvRun run;
    const Tracer &t = run.tracer;
    const LaneStats &s = run.stats;
    ASSERT_GT(s.dispatches, 0u);

    EXPECT_EQ(t.count(0, TraceEventKind::Dispatch), s.dispatches);
    EXPECT_EQ(t.count(0, TraceEventKind::SigMiss), s.sig_misses);
    EXPECT_EQ(t.count(0, TraceEventKind::Action), s.actions);
    EXPECT_EQ(t.count(0, TraceEventKind::MemRead), s.mem_reads);
    EXPECT_EQ(t.count(0, TraceEventKind::MemWrite), s.mem_writes);
    EXPECT_EQ(t.count(0, TraceEventKind::Accept), s.accepts);
    // No arbiter in run_parallel mode: no stalls, no stall events.
    EXPECT_EQ(t.count(0, TraceEventKind::Stall), 0u);
    EXPECT_EQ(s.stall_cycles, 0u);

    EXPECT_EQ(t.active_lanes(), std::vector<unsigned>{0u});
    // Event timestamps never exceed the final cycle count and arrive
    // oldest-first.
    Cycles prev = 0;
    for (const TraceEvent &ev : t.events(0)) {
        EXPECT_LE(prev, ev.cycle);
        EXPECT_LE(ev.cycle, s.cycles);
        prev = ev.cycle;
    }
}

TEST(Trace, StallEventsCarryTheArbiterCharges)
{
    // Lockstep lanes contending on one global bank: the traced stall
    // events must sum to each lane's stall_cycles counter.
    ProgramBuilder b;
    const StateId s = b.add_state();
    b.on_any(s, s, b.add_block({
                 act_imm(Opcode::Ldw, 1, 0, 0x100),
                 act_imm(Opcode::Stw, 1, 0, 0x104, true),
             }));
    b.set_entry(s);
    b.set_addressing(AddressingMode::Global);
    const Program prog = b.build();

    Tracer tracer;
    Machine m(AddressingMode::Global);
    m.set_tracer(&tracer);
    const Bytes input(64, 'x');
    std::vector<JobSpec> jobs(2);
    for (auto &j : jobs) {
        j.program = &prog;
        j.input = input;
    }
    m.assign(jobs);
    const MachineResult res = m.run_lockstep();
    ASSERT_GT(res.total.stall_cycles, 0u);

    for (unsigned lane = 0; lane < 2; ++lane) {
        std::uint64_t traced_stalls = 0;
        for (const TraceEvent &ev : tracer.events(lane))
            if (ev.kind == TraceEventKind::Stall)
                traced_stalls += ev.b;
        EXPECT_EQ(traced_stalls, m.lane(lane).stats().stall_cycles);
    }
}

TEST(Trace, RingRetainsNewestButCountsEverything)
{
    Tracer t(8);
    for (unsigned i = 0; i < 20; ++i)
        t.record(3, TraceEventKind::Dispatch, i + 1, i, 0);

    EXPECT_EQ(t.total(3), 20u);
    EXPECT_EQ(t.dropped(3), 12u);
    EXPECT_EQ(t.count(3, TraceEventKind::Dispatch), 20u);

    const auto evs = t.events(3);
    ASSERT_EQ(evs.size(), 8u);
    // Oldest retained is cycle 13, newest cycle 20.
    EXPECT_EQ(evs.front().cycle, 13u);
    EXPECT_EQ(evs.back().cycle, 20u);

    t.clear();
    EXPECT_EQ(t.total(3), 0u);
    EXPECT_TRUE(t.events(3).empty());
    EXPECT_TRUE(t.active_lanes().empty());
}

TEST(Trace, ChromeExportIsWellFormedJson)
{
    TracedCsvRun run;
    std::ostringstream os;
    write_chrome_trace(os, run.tracer);
    const std::string text = os.str();

    EXPECT_TRUE(json_parse_ok(text)) << text.substr(0, 200);
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
    // One thread-name metadata record for the one active lane.
    EXPECT_NE(text.find("\"lane 0\""), std::string::npos);
}

TEST(Json, WriterRoundTripsThroughValidator)
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/true);
    w.begin_object();
    w.field("name", "bench \"quoted\"\n\t");
    w.field("pi", 3.141592653589793);
    w.field("neg", std::int64_t{-42});
    w.field("big", std::uint64_t{18446744073709551615ull});
    w.field("flag", true);
    w.key("nan_is_null").value(std::nan(""));
    w.key("nested").begin_array();
    w.begin_object().field("x", 1).end_object();
    w.value(2.5).null();
    w.end_array();
    w.end_object();
    ASSERT_TRUE(w.done());

    EXPECT_TRUE(json_parse_ok(os.str())) << os.str();
    EXPECT_NE(os.str().find("null"), std::string::npos);
}

TEST(Json, NonFiniteDoublesSerializeAsNull)
{
    // JSON has no NaN/Inf: every non-finite double must land as null —
    // at top level, as an array element, and as an object field (the
    // telemetry registry relies on this for empty-histogram means).
    const double bads[] = {std::nan(""), INFINITY, -INFINITY};
    for (const double bad : bads) {
        std::ostringstream os;
        JsonWriter w(os, /*pretty=*/false);
        w.begin_object();
        w.field("scalar", bad);
        w.key("arr").begin_array().value(bad).value(1.5).end_array();
        w.end_object();
        ASSERT_TRUE(w.done());
        const std::string text = os.str();
        EXPECT_TRUE(json_parse_ok(text)) << text;
        EXPECT_NE(text.find("\"scalar\":null"), std::string::npos) << text;
        EXPECT_EQ(text.find("nan"), std::string::npos) << text;
        EXPECT_EQ(text.find("inf"), std::string::npos) << text;
    }
}

TEST(Json, KeysWithQuotesAndBackslashesRoundTrip)
{
    // Metric names are user-controlled (kernel names land in registry
    // keys); hostile characters must be escaped, not emitted raw.
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/false);
    w.begin_object();
    w.field("quo\"ted", 1);
    w.field("back\\slash", 2);
    w.field("ctrl\x01\n\t", 3);
    w.end_object();
    ASSERT_TRUE(w.done());
    const std::string text = os.str();
    EXPECT_TRUE(json_parse_ok(text)) << text;
    EXPECT_NE(text.find("\"quo\\\"ted\""), std::string::npos);
    EXPECT_NE(text.find("\"back\\\\slash\""), std::string::npos);
    EXPECT_NE(text.find("\\u0001"), std::string::npos);
    EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(Json, ValidatorRejectsMalformedText)
{
    EXPECT_TRUE(json_parse_ok("{}"));
    EXPECT_TRUE(json_parse_ok(" [1, 2.5e3, \"x\", null, true] "));
    EXPECT_FALSE(json_parse_ok(""));
    EXPECT_FALSE(json_parse_ok("{"));
    EXPECT_FALSE(json_parse_ok("[1,]"));
    EXPECT_FALSE(json_parse_ok("{\"a\":}"));
    EXPECT_FALSE(json_parse_ok("{\"a\":1,}"));
    EXPECT_FALSE(json_parse_ok("01"));
    EXPECT_FALSE(json_parse_ok("\"unterminated"));
    EXPECT_FALSE(json_parse_ok("\"bad \\q escape\""));
    EXPECT_FALSE(json_parse_ok("{} extra"));
    EXPECT_FALSE(json_parse_ok("nul"));
}

TEST(Json, WriterMisuseThrowsInsteadOfEmittingGarbage)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    EXPECT_THROW(w.value(1), UdpError);      // value without a key
    EXPECT_THROW(w.end_array(), UdpError);   // mismatched close
    w.key("k");
    EXPECT_THROW(w.key("k2"), UdpError);     // key while key pending
}

TEST(Json, LaneStatsSerializationCarriesEveryCounter)
{
    LaneStats s;
    s.cycles = 1;
    s.dispatches = 2;
    s.sig_misses = 3;
    s.actions = 4;
    s.mem_reads = 5;
    s.mem_writes = 6;
    s.dispatch_reads = 7;
    s.stall_cycles = 8;
    s.stream_bits = 80;
    s.output_bytes = 10;
    s.accepts = 11;

    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/false);
    write_lane_stats(w, s);
    const std::string text = os.str();
    EXPECT_TRUE(json_parse_ok(text)) << text;
    for (const char *k :
         {"cycles", "dispatches", "sig_misses", "actions", "mem_reads",
          "mem_writes", "dispatch_reads", "stall_cycles", "stream_bits",
          "output_bytes", "accepts", "input_bytes", "rate_mbps"})
        EXPECT_NE(text.find(std::string("\"") + k + "\""),
                  std::string::npos)
            << k;
}

TEST(Profile, AttributionSumsToLaneStats)
{
    TracedCsvRun run;
    const Profiler &p = run.profiler;
    const LaneStats &s = run.stats;

    // Every cycle the lane charged is attributed to exactly one state.
    EXPECT_EQ(p.total_state_cycles(), s.cycles);

    std::uint64_t visits = 0, misses = 0, stalls = 0;
    for (const auto &[base, sp] : p.states()) {
        visits += sp.visits;
        misses += sp.sig_misses;
        stalls += sp.stall_cycles;
    }
    EXPECT_EQ(visits, s.dispatches);
    EXPECT_EQ(misses, s.sig_misses);
    EXPECT_EQ(stalls, s.stall_cycles);

    std::uint64_t action_count = 0;
    for (const auto &[op, ap] : p.actions())
        action_count += ap.count;
    EXPECT_EQ(action_count, s.actions);
}

TEST(Profile, HotStateLabelsMatchTheDisassembler)
{
    TracedCsvRun run;
    const Program prog = csv_parser_program();
    const std::string listing = disassemble(prog);
    const StateSymbolizer sym = make_state_symbolizer(prog);

    const auto hot = run.profiler.hot_states(10);
    ASSERT_FALSE(hot.empty());
    for (const auto &[base, sp] : hot) {
        const std::string label = sym(base);
        // The profiler-reported name is exactly a line of the listing.
        EXPECT_NE(listing.find(label + "\n"), std::string::npos)
            << label;
        EXPECT_EQ(label, state_label(prog, base));
    }

    // The rendered report uses those labels and ranks by cycles.
    const std::string rep = run.profiler.report(10, sym);
    EXPECT_NE(rep.find("hot states"), std::string::npos);
    EXPECT_NE(rep.find(sym(hot.front().first)), std::string::npos);

    const auto hot_acts = run.profiler.hot_actions(10);
    ASSERT_FALSE(hot_acts.empty());
    for (std::size_t i = 1; i < hot.size(); ++i)
        EXPECT_GE(hot[i - 1].second.cycles, hot[i].second.cycles);
    for (std::size_t i = 1; i < hot_acts.size(); ++i)
        EXPECT_GE(hot_acts[i - 1].second.cycles,
                  hot_acts[i].second.cycles);
}

TEST(Profile, DetachedInstrumentationChangesNoCounters)
{
    // The same kernel run with and without instrumentation attached must
    // produce identical simulated statistics (the "zero simulated
    // overhead" contract behind the <2% host-time criterion).
    const std::string text = workloads::crimes_csv(12);
    const Bytes data(text.begin(), text.end());

    Machine plain(AddressingMode::Restricted);
    const auto r1 = run_csv_kernel(plain, 0, data, 0);

    TracedCsvRun run;
    EXPECT_EQ(r1.stats.cycles, run.stats.cycles);
    EXPECT_EQ(r1.stats.dispatches, run.stats.dispatches);
    EXPECT_EQ(r1.stats.sig_misses, run.stats.sig_misses);
    EXPECT_EQ(r1.stats.actions, run.stats.actions);
    EXPECT_EQ(r1.stats.mem_reads, run.stats.mem_reads);
    EXPECT_EQ(r1.stats.mem_writes, run.stats.mem_writes);
}

} // namespace
} // namespace udp
