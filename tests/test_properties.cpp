/**
 * @file
 * Parameterized property sweeps across the kernel/baseline pairs:
 * every (workload x configuration) cell must compute the same function
 * on both sides, for all entropy levels, block sizes, widths and FA
 * models.
 */
#include "baselines/huffman.hpp"
#include "baselines/snappy.hpp"
#include "baselines/trigger.hpp"
#include "kernels/huffman.hpp"
#include "kernels/pattern.hpp"
#include "kernels/snappy.hpp"
#include "kernels/trigger.hpp"
#include "workloads/generators.hpp"

#include <gtest/gtest.h>

namespace udp {
namespace {

using namespace kernels;

// --- Snappy round-trips over (entropy x block size) ------------------------

struct SnappyParam {
    double entropy;
    std::size_t size;
};

class SnappyProperty : public ::testing::TestWithParam<SnappyParam>
{
};

TEST_P(SnappyProperty, KernelCompressBaselineDecompress)
{
    const auto [entropy, size] = GetParam();
    const Bytes data = workloads::text_corpus(size, entropy, 1234);
    static const Program prog = snappy_compress_program();
    Machine m(AddressingMode::Restricted);
    const auto res = run_snappy_compress(m, 0, prog, data, 0);
    EXPECT_EQ(baselines::snappy_decompress(res.data), data);
}

TEST_P(SnappyProperty, BaselineCompressKernelDecompress)
{
    const auto [entropy, size] = GetParam();
    const Bytes data = workloads::text_corpus(size, entropy, 4321);
    const Bytes comp = baselines::snappy_compress(data);
    std::size_t pos = 0;
    while (comp[pos] & 0x80)
        ++pos;
    ++pos;
    static const Program prog = snappy_decompress_program();
    Machine m(AddressingMode::Restricted);
    const auto res = run_snappy_decompress(
        m, 0, prog, BytesView(comp).subspan(pos, comp.size() - pos), 0);
    EXPECT_EQ(res.data, data);
}

INSTANTIATE_TEST_SUITE_P(
    EntropyBySize, SnappyProperty,
    ::testing::Values(SnappyParam{0.0, 64}, SnappyParam{0.0, 4096},
                      SnappyParam{0.3, 1024}, SnappyParam{0.5, 8192},
                      SnappyParam{0.5, 12288}, SnappyParam{0.7, 2048},
                      SnappyParam{1.0, 512}, SnappyParam{1.0, 10000}),
    [](const auto &info) {
        return "e" + std::to_string(int(info.param.entropy * 10)) + "_n" +
               std::to_string(info.param.size);
    });

// --- Huffman designs over (design x entropy) -------------------------------

class HuffmanProperty
    : public ::testing::TestWithParam<std::tuple<VarSymDesign, double>>
{
};

TEST_P(HuffmanProperty, DecodeRoundTrips)
{
    const auto [design, entropy] = GetParam();
    const Bytes data = workloads::text_corpus(3000, entropy, 99);
    const auto code = baselines::build_huffman(data);
    Bytes enc = baselines::huffman_encode(data, code);
    enc.push_back(0);
    enc.push_back(0);

    const auto k = huffman_decoder(code, design);
    Machine m(AddressingMode::Restricted);
    Lane &lane = m.lane(0);
    if (!k.lut.empty())
        m.stage(0, k.lut);
    lane.load(k.program);
    lane.set_input(enc);
    lane.set_window_base(0);
    for (const auto &[r, v] : k.init_regs)
        lane.set_reg(r, v);
    lane.run();
    ASSERT_GE(lane.output().size(), data.size());
    EXPECT_TRUE(std::equal(data.begin(), data.end(),
                           lane.output().begin()))
        << var_sym_name(design) << " entropy " << entropy;
}

INSTANTIATE_TEST_SUITE_P(
    DesignByEntropy, HuffmanProperty,
    ::testing::Combine(::testing::Values(VarSymDesign::SsF,
                                         VarSymDesign::SsT,
                                         VarSymDesign::SsReg,
                                         VarSymDesign::SsRef),
                       ::testing::Values(0.0, 0.4, 0.8)),
    [](const auto &info) {
        return std::string(var_sym_name(std::get<0>(info.param))) + "_e" +
               std::to_string(int(std::get<1>(info.param) * 10));
    });

// --- Trigger widths ----------------------------------------------------------

class TriggerProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TriggerProperty, KernelMatchesBitwiseBaseline)
{
    const unsigned width = GetParam();
    const Bytes packed = workloads::waveform(30'000, 18, 70 + width);
    const Bytes samples = samples_from_bits(packed);

    const Program prog = trigger_program(width);
    Machine m(AddressingMode::Restricted);
    Lane &lane = m.lane(0);
    lane.load(prog);
    lane.set_input(samples);
    lane.run();
    EXPECT_EQ(lane.accept_count(),
              baselines::PulseTrigger(width).count_triggers_bitwise(
                  packed));
}

INSTANTIATE_TEST_SUITE_P(WidthsP1toP16, TriggerProperty,
                         ::testing::Range(1u, 17u));

// --- Pattern models over group counts ----------------------------------------

struct PatternParam {
    FaModel model;
    unsigned groups;
};

class PatternProperty : public ::testing::TestWithParam<PatternParam>
{
};

TEST_P(PatternProperty, PartitionedMatchesSumToSoftwareCount)
{
    const auto [model, ngroups] = GetParam();
    const auto pats = workloads::nids_patterns(12, model == FaModel::Nfa);
    const Bytes payload = workloads::packet_payloads(20'000, pats, 0.03);
    const auto groups = pattern_groups(pats, model, ngroups);

    Machine m(AddressingMode::Restricted);
    std::uint64_t udp_total = 0, sw_total = 0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        Lane &lane = m.lane(static_cast<unsigned>(g));
        lane.load(groups[g].program);
        lane.set_input(payload);
        if (groups[g].nfa_mode)
            lane.run_nfa();
        else
            lane.run();
        udp_total += lane.accept_count();
        sw_total += software_matches(groups[g].patterns, payload);
    }
    EXPECT_EQ(udp_total, sw_total);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsByGroups, PatternProperty,
    ::testing::Values(PatternParam{FaModel::Dfa, 1},
                      PatternParam{FaModel::Dfa, 4},
                      PatternParam{FaModel::Adfa, 1},
                      PatternParam{FaModel::Adfa, 6},
                      PatternParam{FaModel::Nfa, 2},
                      PatternParam{FaModel::Nfa, 12}),
    [](const auto &info) {
        return std::string(fa_model_name(info.param.model)) + "_g" +
               std::to_string(info.param.groups);
    });

} // namespace
} // namespace udp
