/**
 * @file
 * Host data-path ownership tests (runtime/arena.hpp; docs/PERFORMANCE.md
 * "Host data path & ownership").
 *
 * Pins the zero-copy job data path end to end: chunking slices a shared
 * InputArena instead of copying, a retried job re-pins the same arena,
 * the FaultInjector's input mutations are copy-on-write (sibling chunks
 * stay byte-identical views of the original), the scheduler's
 * BufferPool hands back cleared buffers with their capacity intact, the
 * pooled harvest path is bit-identical between serial and threaded
 * backends, and — via a global operator-new counter — the steady-state
 * wave loop's allocation count is O(jobs), not O(bytes).
 *
 * This file runs under the CI AddressSanitizer, ThreadSanitizer and
 * UndefinedBehaviorSanitizer jobs (`-R "Arena\."`).
 */
#include "kernels/csv.hpp"
#include "kernels/trigger.hpp"
#include "runtime/executor.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/kernel_spec.hpp"
#include "runtime/scheduler.hpp"
#include "workloads/generators.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

// --- Global allocation counter (Arena.SteadyStateAllocationBound) ----------
//
// Replaces the replaceable global allocation functions for this test
// binary so a test can snapshot the process-wide allocation count
// around a scheduler run.  Counting happens on the non-array unaligned
// form and its siblings alike; deallocation is not counted.

namespace {
std::atomic<std::uint64_t> g_alloc_calls{0};

void *
counted_alloc(std::size_t n)
{
    g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}
} // namespace

void *operator new(std::size_t n) { return counted_alloc(n); }
void *operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

// The nothrow forms must route through the same malloc/free pairing:
// libstdc++'s temporary buffers allocate nothrow but free through plain
// operator delete, and a half-replaced set trips ASan's
// alloc-dealloc-mismatch checker.
void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(n ? n : 1);
}
void *
operator new[](std::size_t n, const std::nothrow_t &) noexcept
{
    g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(n ? n : 1);
}
void operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace udp {
namespace {

using runtime::ArenaSlice;
using runtime::BufferPool;
using runtime::InputArena;

/// True when `view` lies inside the storage of `buf` (the zero-copy
/// proof: a borrowed slice's bytes are the caller's bytes).
bool
points_into(BytesView view, const Bytes &buf)
{
    return view.data() >= buf.data() &&
           view.data() + view.size() <= buf.data() + buf.size();
}

/// Byte-level equality of everything a job architecturally produced.
bool
same_result(const runtime::JobResult &a, const runtime::JobResult &b)
{
    if (a.status != b.status || !(a.stats == b.stats) ||
        a.regs != b.regs || a.output != b.output ||
        a.extracts != b.extracts || a.accepts.size() != b.accepts.size())
        return false;
    for (std::size_t i = 0; i < a.accepts.size(); ++i)
        if (a.accepts[i].stream_bit_pos != b.accepts[i].stream_bit_pos ||
            a.accepts[i].id != b.accepts[i].id)
            return false;
    return true;
}

/// The chunked trigger workload the scheduler tests share.
struct TriggerWorkload {
    Bytes samples;
    runtime::KernelSpec spec;

    explicit TriggerWorkload(std::size_t n = 100'000)
        : samples(kernels::samples_from_bits(workloads::waveform(n, 13))),
          spec(kernels::trigger_kernel_spec(6))
    {
    }

    std::vector<runtime::JobPlan> jobs() const {
        const std::size_t chunk = std::max<std::size_t>(
            1, (samples.size() + kNumLanes - 1) / kNumLanes);
        return runtime::chunk_jobs(spec, ArenaSlice::borrow(samples),
                                   chunk);
    }
};

runtime::SchedulerOptions
serial_opts()
{
    runtime::SchedulerOptions o;
    o.threads = 1;
    return o;
}

// --- Slicing ---------------------------------------------------------------

TEST(Arena, SlicingExactness)
{
    const std::string text = workloads::crimes_csv(400);
    const Bytes data(text.begin(), text.end());
    const std::size_t before = InputArena::live_count();

    const ArenaSlice whole = ArenaSlice::borrow(data);
    const auto jobs =
        runtime::chunk_jobs(kernels::csv_kernel_spec(), whole, 4 * 1024,
                            runtime::align_after_delim('\n'));
    ASSERT_GE(jobs.size(), 3u) << "workload too small to chunk";

    // One arena, many views: chunking allocated no payload bytes.
    EXPECT_EQ(InputArena::live_count(), before + 1);
    Bytes reassembled;
    for (const auto &pl : jobs) {
        EXPECT_EQ(pl.input.arena().get(), whole.arena().get());
        EXPECT_TRUE(points_into(pl.input.view(), data));
        EXPECT_EQ(pl.input[pl.input.size() - 1], std::uint8_t('\n'))
            << "chunk not row-aligned";
        reassembled.insert(reassembled.end(), pl.input.begin(),
                           pl.input.end());
    }
    EXPECT_EQ(reassembled, data) << "chunks must tile the input exactly";
}

TEST(Arena, BytesCompatibilityMaterializesPrivateArena)
{
    // The implicit Bytes -> ArenaSlice path (old-style call sites):
    // one move, a private arena, content intact.
    const std::size_t before = InputArena::live_count();
    Bytes payload(1024);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i * 7);
    const Bytes pristine = payload;
    const std::uint8_t *storage = payload.data();

    const ArenaSlice s = ArenaSlice::take(std::move(payload));
    EXPECT_EQ(InputArena::live_count(), before + 1);
    EXPECT_EQ(s.data(), storage) << "take() must adopt, not copy";
    EXPECT_TRUE(s == ArenaSlice::borrow(pristine));

    // copy_of really is a private copy.
    const ArenaSlice c = ArenaSlice::copy_of(pristine);
    EXPECT_NE(c.data(), pristine.data());
    EXPECT_TRUE(c == s);
}

TEST(Arena, SubsliceSharesPinAndChecksBounds)
{
    Bytes data(256);
    const ArenaSlice whole = ArenaSlice::borrow(data);
    const ArenaSlice mid = whole.subslice(64, 128);
    EXPECT_EQ(mid.arena().get(), whole.arena().get());
    EXPECT_EQ(mid.data(), whole.data() + 64);
    EXPECT_EQ(mid.subslice(10, 20).data(), whole.data() + 74);

    EXPECT_THROW(whole.subslice(0, 257), UdpError);
    EXPECT_THROW(mid.subslice(100, 64), UdpError);
    EXPECT_THROW(ArenaSlice(whole.arena(), 128, 200), UdpError);
    EXPECT_TRUE(whole.subslice(256, 0).empty());
}

// --- Enforced lifetime -----------------------------------------------------

TEST(Arena, CheckPinnedEnforcesPlanLifetime)
{
    const TriggerWorkload w(4'096);
    auto jobs = w.jobs();
    ASSERT_FALSE(jobs.empty());
    EXPECT_NO_THROW(jobs[0].input.check_pinned("test", jobs[0].name));

    // Moving a plan's input away leaves the view behind without its
    // pin — exactly the use-after-move bug class the canary check is
    // for.  stage_job must refuse to stream it.
    const ArenaSlice stolen = std::move(jobs[0].input);
    EXPECT_FALSE(jobs[0].input.pinned());
    EXPECT_THROW(jobs[0].input.check_pinned("test", jobs[0].name),
                 UdpError);
    Machine m(AddressingMode::Restricted);
    EXPECT_THROW(runtime::run_job_on(m, 0, 0, jobs[0]), UdpError);

    // The slice that *kept* the pin still works.
    jobs[0].input = stolen;
    EXPECT_NO_THROW(runtime::run_job_on(m, 0, 0, jobs[0]));
}

// --- BufferPool ------------------------------------------------------------

TEST(Arena, PoolReuseReturnsClearedBuffers)
{
    BufferPool pool(/*max_buffers=*/2);

    Bytes b = pool.acquire();
    EXPECT_TRUE(b.empty());
    b.assign(4096, 0xAB);
    const std::size_t cap = b.capacity();
    pool.release(std::move(b));
    EXPECT_EQ(pool.free_buffers(), 1u);

    // Reused: cleared, capacity intact — refilling it allocates nothing.
    Bytes r = pool.acquire();
    EXPECT_TRUE(r.empty());
    EXPECT_GE(r.capacity(), cap);
    const auto s1 = pool.stats();
    EXPECT_EQ(s1.acquired, 2u);
    EXPECT_EQ(s1.reused, 1u);

    // The cap bounds pool memory: the third release drops its buffer.
    pool.release(Bytes(16));
    pool.release(Bytes(16));
    pool.release(Bytes(16));
    EXPECT_EQ(pool.free_buffers(), 2u);
    EXPECT_EQ(pool.stats().dropped, 1u);
    EXPECT_EQ(pool.stats().released, 4u);
}

// --- Scheduler integration -------------------------------------------------

TEST(Arena, RetryRepinsSameArenaNoCopies)
{
    const TriggerWorkload w;
    const auto clean_jobs = w.jobs();
    runtime::Scheduler clean_sched(serial_opts());
    const auto clean = clean_sched.run(clean_jobs);

    auto jobs = w.jobs();
    const std::size_t victim = jobs.size() / 2;
    const InputArena *arena_before = jobs[victim].input.arena().get();
    runtime::FaultInjector inj(0xBEEFull);
    inj.force_trap(jobs[victim], 2'000, /*attempts=*/1);

    auto opts = serial_opts();
    opts.retry.max_attempts = 3;
    runtime::Scheduler sched(opts);
    const std::size_t live_before = InputArena::live_count();
    const auto rep = sched.run(jobs);

    // Retrying staged the victim's bytes twice from the *same* arena:
    // no arena (hence no payload copy) materialized anywhere in the run.
    EXPECT_EQ(InputArena::live_count(), live_before);
    EXPECT_EQ(jobs[victim].input.arena().get(), arena_before);
    EXPECT_EQ(rep.retries, 1u);
    EXPECT_EQ(rep.jobs[victim].attempts, 2u);

    // The recovered run is byte-identical to the clean one, job by job.
    ASSERT_EQ(rep.jobs.size(), clean.jobs.size());
    for (std::size_t i = 0; i < rep.jobs.size(); ++i)
        EXPECT_TRUE(same_result(rep.jobs[i], clean.jobs[i])) << "job " << i;
}

TEST(Arena, FaultInjectorCopyOnWrite)
{
    const TriggerWorkload w;
    const Bytes pristine = w.samples;
    auto jobs = w.jobs();
    ASSERT_GE(jobs.size(), 3u);
    const std::size_t victim = 1;
    const InputArena *shared_arena = jobs[0].input.arena().get();

    const Bytes orig(jobs[victim].input.begin(), jobs[victim].input.end());
    runtime::FaultInjector inj(0xF00Dull);
    // count=1: a single non-zero-mask XOR guarantees a byte changed.
    inj.corrupt_input(jobs[victim], /*count=*/1);

    // The poisoned job re-pinned a private mutated arena...
    EXPECT_NE(jobs[victim].input.arena().get(), shared_arena);
    EXPECT_FALSE(points_into(jobs[victim].input.view(), w.samples));
    EXPECT_FALSE(jobs[victim].input == ArenaSlice::borrow(orig));
    EXPECT_EQ(jobs[victim].input.size(), orig.size());

    // ...while every sibling still views the original, byte-identical
    // storage, and the source buffer itself is untouched.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (i == victim)
            continue;
        EXPECT_EQ(jobs[i].input.arena().get(), shared_arena);
        EXPECT_TRUE(points_into(jobs[i].input.view(), w.samples));
    }
    EXPECT_EQ(w.samples, pristine);

    // Truncation narrows the view in place: same arena, same storage,
    // zero bytes copied.
    const std::size_t keep = jobs[2].input.size() / 2;
    const std::uint8_t *data_before = jobs[2].input.data();
    inj.truncate_input(jobs[2], keep);
    EXPECT_EQ(jobs[2].input.arena().get(), shared_arena);
    EXPECT_EQ(jobs[2].input.data(), data_before);
    EXPECT_EQ(jobs[2].input.size(), keep);
}

TEST(Arena, ThreadedVsSerialBitIdenticalWithPooling)
{
    const TriggerWorkload w;
    const auto jobs = w.jobs();

    const auto run_twice = [&](unsigned threads) {
        runtime::SchedulerOptions o;
        o.threads = threads;
        runtime::Scheduler sched(o);
        // Warm the pool, recycle, and re-run so the compared report is
        // the pooled steady-state one.
        sched.recycle(sched.run(jobs));
        return sched.run(jobs);
    };
    const auto serial = run_twice(1);
    const auto pooled = run_twice(4);

    EXPECT_EQ(serial.wall_cycles, pooled.wall_cycles);
    ASSERT_EQ(serial.jobs.size(), pooled.jobs.size());
    for (std::size_t i = 0; i < serial.jobs.size(); ++i)
        EXPECT_TRUE(same_result(serial.jobs[i], pooled.jobs[i]))
            << "job " << i;
}

TEST(Arena, SchedulerPoolRecyclesAcrossRuns)
{
    // CSV jobs emit real output bytes (the extracted fields), so their
    // harvested buffers carry capacity worth recycling — a trigger
    // job's empty output would be dropped by recycle().
    const std::string text = workloads::crimes_csv(2'000);
    const Bytes data(text.begin(), text.end());
    const auto jobs = runtime::chunk_jobs(
        kernels::csv_kernel_spec(), ArenaSlice::borrow(data), 8 * 1024,
        runtime::align_after_delim('\n'));
    ASSERT_GE(jobs.size(), 2u);
    runtime::Scheduler sched(serial_opts());

    auto first = sched.run(jobs);
    EXPECT_EQ(sched.pool().stats().reused, 0u);
    sched.recycle(std::move(first));
    EXPECT_GT(sched.pool().free_buffers(), 0u);

    const auto second = sched.run(jobs);
    const auto st = sched.pool().stats();
    EXPECT_GE(st.reused, jobs.size())
        << "second run should harvest through recycled buffers";
    ASSERT_FALSE(second.jobs.empty());
    EXPECT_EQ(second.jobs[0].status, LaneStatus::Done);
}

TEST(Arena, SteadyStateAllocationBound)
{
    const TriggerWorkload w;
    const auto jobs = w.jobs();
    runtime::Scheduler sched(serial_opts());

    // Cold run: lanes grow their output buffers, the pool fills, the
    // decode cache warms.
    sched.recycle(sched.run(jobs));

    const auto count_run = [&] {
        const std::uint64_t before =
            g_alloc_calls.load(std::memory_order_relaxed);
        auto rep = sched.run(jobs);
        const std::uint64_t after =
            g_alloc_calls.load(std::memory_order_relaxed);
        sched.recycle(std::move(rep));
        return after - before;
    };
    const std::uint64_t run1 = count_run();
    const std::uint64_t run2 = count_run();

    // The steady-state wave loop allocates O(jobs), never O(bytes):
    // with ~1.3 MB of staged input, a per-byte (or even per-KB) copy
    // regime would blow through this bound by orders of magnitude.
    const std::uint64_t bound = 48 * jobs.size() + 512;
    EXPECT_LE(run1, bound) << jobs.size() << " jobs";
    EXPECT_LE(run2, bound) << jobs.size() << " jobs";
    // And recycling keeps it flat run over run (no slow leak of the
    // pool's benefit).
    EXPECT_LE(run2, run1 + run1 / 4);
}

} // namespace
} // namespace udp
