/**
 * @file
 * Tests for the textual assembler (.udpasm front-end).
 */
#include "assembler/textasm.hpp"
#include "core/lane.hpp"

#include <gtest/gtest.h>

namespace udp {
namespace {

struct AsmFixture : ::testing::Test {
    LocalMemory mem{AddressingMode::Restricted};
    Lane lane{0, mem};

    LaneStatus run(const Program &p, const std::string &input) {
        lane.load(p);
        input_bytes.assign(input.begin(), input.end());
        lane.set_input(input_bytes);
        return lane.run();
    }
    Bytes input_bytes;
};

TEST_F(AsmFixture, AssemblesAndRunsCounter)
{
    const Program p = assemble(R"(
        ; count 'a' bytes
        .symbits 8
        .entry start
        state start:
            'a' -> start { addi r1, r1, 1 }
            majority -> start
    )");
    EXPECT_EQ(run(p, "banana"), LaneStatus::Done);
    EXPECT_EQ(lane.reg(1), 3u);
}

TEST_F(AsmFixture, SupportsAllArcKindsAndActions)
{
    const Program p = assemble(R"(
        .symbits 8
        .entry s0
        state s0:
            'x' -> s1 { movi r1, 100 ; outb r1 }
            '\n' -> s0 { accept 5 }
            0x41 -> s0           ; 'A'
            majority -> s0
        state s1 [reg]:
            common -> s0 { outi 'Y' ; halt }
    )");
    EXPECT_EQ(run(p, "Ax\n"), LaneStatus::Done);
    ASSERT_EQ(lane.output().size(), 2u);
    EXPECT_EQ(lane.output()[0], 100);
    EXPECT_EQ(lane.output()[1], 'Y');
}

TEST_F(AsmFixture, RefillArcsParse)
{
    const Program p = assemble(R"(
        .symbits 3
        .entry root
        state root:
            0 -> root refill 1 { outi 'A' }
            1 -> root refill 1 { outi 'A' }
            2 -> root refill 1 { outi 'B' }
            3 -> root refill 1 { outi 'B' }
            4 -> root refill 1 { outi 'C' }
            5 -> root refill 1 { outi 'C' }
            6 -> root { outi 'D' }
            7 -> root { outi 'E' }
    )");
    // 00 01 10 110 111 -> ABCDE (Figure 7 code).
    const Bytes enc{0b00011011, 0b01110000};
    lane.load(p);
    lane.set_input(enc);
    lane.run();
    const std::string out(lane.output().begin(), lane.output().end());
    EXPECT_EQ(out.substr(0, 5), "ABCDE");
}

TEST_F(AsmFixture, RegActionFormsParse)
{
    const Program p = assemble(R"(
        .entry s
        state s:
            common -> s { movi r1, 6 ; movi r2, 7 ; mul r3, r1, r2 ; add r4, r3, r1 ; halt }
    )");
    run(p, "z");
    EXPECT_EQ(lane.reg(3), 42u);
    EXPECT_EQ(lane.reg(4), 48u);
}

TEST_F(AsmFixture, DiagnosticsCarryLineNumbers)
{
    try {
        assemble(".entry s\nstate s:\n    zzz -> s\n");
        FAIL() << "expected parse error";
    } catch (const UdpError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_THROW(assemble("state s:\n 'a' -> s\n"), UdpError); // no entry
    EXPECT_THROW(assemble(".entry s\nstate s:\n 'a' -> nowhere\n"),
                 UdpError);
    EXPECT_THROW(assemble(".entry s\n'a' -> s\nstate s:\n"), UdpError);
    EXPECT_THROW(
        assemble(".entry s\nstate s:\n 'a' -> s { bogusop r1 }\n"),
        UdpError);
    EXPECT_THROW(assemble(".entry s\nstate s:\nstate s:\n"), UdpError);
}

TEST_F(AsmFixture, CommentsAndLiteralsAreRobust)
{
    const Program p = assemble(R"(
        ; full-line comment with 'quotes' and -> arrows
        .symbits 8
        .entry s
        state s:
            ';' -> s { addi r1, r1, 1 }  ; semicolon symbol then comment
            0x20 -> s
            -0 -> s                       ; weird but legal zero
            majority -> s
    )");
    EXPECT_EQ(run(p, "; ;"), LaneStatus::Done);
    EXPECT_EQ(lane.reg(1), 2u);
}

TEST_F(AsmFixture, DirectivesApply)
{
    const Program p = assemble(R"(
        .symbits 4
        .addressing global
        .entry s
        state s:
            majority -> s
    )");
    EXPECT_EQ(p.initial_symbol_bits, 4u);
    EXPECT_EQ(p.addressing, AddressingMode::Global);
}

} // namespace
} // namespace udp
