/**
 * @file
 * Runtime layer tests: wave scheduling equivalences, >64-job runs,
 * threaded-backend determinism, instrumentation neutrality, and the
 * between-batches lane reset (docs/RUNTIME.md).
 */
#include "baselines/csv.hpp"
#include "baselines/dictionary.hpp"
#include "baselines/histogram.hpp"
#include "core/profile.hpp"
#include "core/trace.hpp"
#include "kernels/csv.hpp"
#include "kernels/dictionary.hpp"
#include "kernels/histogram.hpp"
#include "runtime/executor.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/kernel_spec.hpp"
#include "runtime/scheduler.hpp"
#include "workloads/generators.hpp"

#include <gtest/gtest.h>

using namespace udp;
using namespace udp::runtime;

namespace {

/// Field-by-field LaneStats equality (no operator== on the POD).
void
expect_stats_eq(const LaneStats &a, const LaneStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dispatches, b.dispatches);
    EXPECT_EQ(a.sig_misses, b.sig_misses);
    EXPECT_EQ(a.actions, b.actions);
    EXPECT_EQ(a.mem_reads, b.mem_reads);
    EXPECT_EQ(a.mem_writes, b.mem_writes);
    EXPECT_EQ(a.dispatch_reads, b.dispatch_reads);
    EXPECT_EQ(a.stall_cycles, b.stall_cycles);
    EXPECT_EQ(a.stream_bits, b.stream_bits);
    EXPECT_EQ(a.output_bytes, b.output_bytes);
    EXPECT_EQ(a.accepts, b.accepts);
}

/// Complete architectural equality of two job results.
void
expect_results_eq(const JobResult &a, const JobResult &b)
{
    EXPECT_EQ(a.status, b.status);
    expect_stats_eq(a.stats, b.stats);
    EXPECT_EQ(a.regs, b.regs);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.extracts, b.extracts);
    ASSERT_EQ(a.accepts.size(), b.accepts.size());
    for (std::size_t i = 0; i < a.accepts.size(); ++i)
        EXPECT_EQ(a.accepts[i].stream_bit_pos,
                  b.accepts[i].stream_bit_pos);
}

/// >64 single-bank histogram jobs over a shared fp stream.
std::vector<JobPlan>
histogram_fleet(const KernelSpec &spec, const Bytes &packed,
                std::size_t jobs_wanted)
{
    const std::size_t values = packed.size() / 8;
    const std::size_t shard =
        std::max<std::size_t>(1, ceil_div(values, jobs_wanted)) * 8;
    return chunk_jobs(spec, packed, shard);
}

} // namespace

TEST(Runtime, MultiWaveEqualsConcatenatedSingleWaves)
{
    const auto xs = workloads::fp_values(40'000, 3);
    const auto spec = kernels::histogram_kernel_spec(
        baselines::Histogram::uniform(10, 41.2, 42.5).edges());
    const Bytes packed = kernels::pack_fp_stream(xs);
    const auto jobs = histogram_fleet(spec, packed, 100);
    ASSERT_GT(jobs.size(), kNumLanes);

    Scheduler all_at_once;
    const ScheduleReport whole = all_at_once.run(jobs);
    ASSERT_EQ(whole.waves.size(), 2u);

    // The same jobs split at the wave boundary and run as two separate
    // scheduled batches must cost exactly the same machine time.
    const std::size_t cut = whole.waves[0].jobs;
    const std::vector<JobPlan> first(jobs.begin(), jobs.begin() + cut);
    const std::vector<JobPlan> second(jobs.begin() + cut, jobs.end());
    Scheduler split;
    const ScheduleReport ra = split.run(first);
    const ScheduleReport rb = split.run(second);
    EXPECT_EQ(whole.wall_cycles, ra.wall_cycles + rb.wall_cycles);
    EXPECT_DOUBLE_EQ(whole.energy_j, ra.energy_j + rb.energy_j);

    for (std::size_t i = 0; i < jobs.size(); ++i)
        expect_results_eq(whole.jobs[i], i < cut ? ra.jobs[i]
                                                 : rb.jobs[i - cut]);
}

TEST(Runtime, OverSixtyFourHistogramJobsMatchBaseline)
{
    const auto xs = workloads::fp_values(50'000, 7);
    auto h = baselines::Histogram::uniform(10, 41.2, 42.5);
    const auto spec = kernels::histogram_kernel_spec(h.edges());
    const auto jobs =
        histogram_fleet(spec, kernels::pack_fp_stream(xs), 150);
    ASSERT_GT(jobs.size(), 2 * std::size_t{kNumLanes});

    Scheduler sched;
    const ScheduleReport rep = sched.run(jobs);
    ASSERT_EQ(rep.waves.size(), 3u);
    EXPECT_EQ(rep.jobs[jobs.size() - 1].wave, 2u);

    std::vector<std::uint64_t> counts(10, 0);
    for (const JobResult &r : rep.jobs) {
        const auto res = kernels::decode_histogram_result(r);
        for (std::size_t b = 0; b < counts.size(); ++b)
            counts[b] += res.counts[b];
    }
    h.add_all(xs);
    EXPECT_EQ(counts, h.counts());
}

TEST(Runtime, OverSixtyFourCsvJobsMatchBaseline)
{
    // Two-bank windows: 32 jobs per wave, so ~70 chunks span 3 waves.
    const std::string text = workloads::crimes_csv(2500);
    const Bytes data(text.begin(), text.end());
    const auto jobs = chunk_jobs(
        kernels::csv_kernel_spec(), data,
        std::max<std::size_t>(1, ceil_div(data.size(), 70)),
        align_after_delim('\n'));
    ASSERT_GT(jobs.size(), 64u);

    Scheduler sched;
    const ScheduleReport rep = sched.run(jobs);
    EXPECT_GE(rep.waves.size(), 3u);

    std::uint64_t rows = 0, fields = 0;
    for (const JobResult &r : rep.jobs) {
        const auto res = kernels::decode_csv_result(r);
        rows += res.rows;
        fields += res.fields;
    }
    const auto base = baselines::parse_csv(data);
    EXPECT_EQ(rows, base.rows);
    EXPECT_EQ(fields, base.fields);
}

TEST(Runtime, ThreadCountDoesNotChangeResults)
{
    const std::string text = workloads::crimes_csv(1200);
    const Bytes data(text.begin(), text.end());
    const auto jobs = chunk_jobs(
        kernels::csv_kernel_spec(), data,
        std::max<std::size_t>(1, ceil_div(data.size(), 40)),
        align_after_delim('\n'));
    ASSERT_GT(jobs.size(), 32u); // at least two waves of 2-bank jobs

    auto run_with = [&](unsigned threads) {
        SchedulerOptions opts;
        opts.threads = threads;
        Scheduler sched(opts);
        return sched.run(jobs);
    };
    const ScheduleReport serial = run_with(1);
    for (const unsigned threads : {4u, 16u}) {
        const ScheduleReport pooled = run_with(threads);
        EXPECT_EQ(pooled.sim_threads, threads);
        EXPECT_EQ(serial.wall_cycles, pooled.wall_cycles);
        EXPECT_DOUBLE_EQ(serial.energy_j, pooled.energy_j);
        expect_stats_eq(serial.total, pooled.total);
        ASSERT_EQ(serial.jobs.size(), pooled.jobs.size());
        for (std::size_t i = 0; i < serial.jobs.size(); ++i)
            expect_results_eq(serial.jobs[i], pooled.jobs[i]);
    }
}

TEST(Runtime, TracerIsNeutralUnderThreads)
{
    const auto xs = workloads::fp_values(20'000, 9);
    const auto spec = kernels::histogram_kernel_spec(
        baselines::Histogram::uniform(10, 41.2, 42.5).edges());
    const auto jobs =
        histogram_fleet(spec, kernels::pack_fp_stream(xs), 64);

    Machine bare(AddressingMode::Restricted);
    Scheduler plain(bare, {.threads = 1});
    const ScheduleReport ref = plain.run(jobs);

    Machine instrumented(AddressingMode::Restricted);
    Tracer tracer;
    instrumented.set_tracer(&tracer);
    Scheduler traced(instrumented, {.threads = 4});
    const ScheduleReport rep = traced.run(jobs);

    EXPECT_EQ(rep.sim_threads, 4u);
    EXPECT_EQ(ref.wall_cycles, rep.wall_cycles);
    EXPECT_DOUBLE_EQ(ref.energy_j, rep.energy_j);
    expect_stats_eq(ref.total, rep.total);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        expect_results_eq(ref.jobs[i], rep.jobs[i]);
}

TEST(Runtime, ProfilerForcesSerialBackendAndStaysNeutral)
{
    const auto xs = workloads::fp_values(10'000, 11);
    const auto spec = kernels::histogram_kernel_spec(
        baselines::Histogram::uniform(10, 41.2, 42.5).edges());
    const auto jobs =
        histogram_fleet(spec, kernels::pack_fp_stream(xs), 32);

    Machine bare(AddressingMode::Restricted);
    Scheduler plain(bare, {.threads = 1});
    const ScheduleReport ref = plain.run(jobs);

    Machine profiled(AddressingMode::Restricted);
    Profiler profiler;
    profiled.set_profiler(&profiler);
    // Even when a pool is requested, a profiled machine must resolve to
    // the serial backend (shared aggregation maps).
    Scheduler sched(profiled, {.threads = 16});
    EXPECT_EQ(profiled.resolved_sim_threads(), 1u);
    const ScheduleReport rep = sched.run(jobs);
    EXPECT_EQ(rep.sim_threads, 1u);
    EXPECT_EQ(ref.wall_cycles, rep.wall_cycles);
    expect_stats_eq(ref.total, rep.total);
}

TEST(Runtime, AssignResetsStaleLaneState)
{
    // Batch 1: dictionary jobs on lanes 0 and 1 leave registers, output
    // and a non-trivial stream position behind.
    const std::vector<std::string> rows(200, "value");
    const auto base = baselines::dictionary_encode(rows);
    const auto spec = kernels::dictionary_kernel_spec(base.dict, false);
    const Bytes input = kernels::dict_input(rows);

    Machine m(AddressingMode::Restricted);
    Scheduler sched(m, {});
    const std::vector<JobPlan> batch1{spec.make_job(input),
                                      spec.make_job(input)};
    const ScheduleReport r1 = sched.run(batch1);
    ASSERT_EQ(r1.jobs[1].status, LaneStatus::Done);
    ASSERT_FALSE(r1.jobs[1].output.empty());

    // Batch 2 occupies lane 0 only; every other lane must come up from
    // architectural reset, not with wave-1 leftovers.
    std::vector<JobSpec> specs(1);
    const JobPlan plan = spec.make_job(input);
    specs[0].program = plan.program.get();
    specs[0].input = plan.input;
    m.assign(std::move(specs));

    const Lane &stale = m.lane(1);
    for (unsigned r = 0; r < kNumScalarRegs; ++r)
        EXPECT_EQ(stale.reg(r), 0u) << "reg " << r;
    EXPECT_TRUE(stale.output().empty());
    EXPECT_TRUE(stale.accepts().empty());
    EXPECT_EQ(stale.window_base(), 0u);
    EXPECT_EQ(stale.stats().cycles, 0u);
    EXPECT_EQ(stale.stats().stream_bits, 0u);
}

TEST(Runtime, ChunkJobsCoversInputExactlyAndRejectsNoSplit)
{
    const std::string text = workloads::crimes_csv(300);
    const Bytes data(text.begin(), text.end());
    const auto jobs = chunk_jobs(kernels::csv_kernel_spec(), data, 4096,
                                 align_after_delim('\n'));
    std::size_t covered = 0;
    Bytes glued;
    for (const JobPlan &j : jobs) {
        covered += j.input.size();
        glued.insert(glued.end(), j.input.begin(), j.input.end());
    }
    EXPECT_EQ(covered, data.size());
    EXPECT_EQ(glued, data);

    // A delimiter-free input cannot be split on row boundaries.
    const Bytes solid(256, 'a');
    EXPECT_THROW(chunk_jobs(kernels::csv_kernel_spec(), solid, 64,
                            align_after_delim('\n')),
                 UdpError);
}

TEST(Runtime, SchedulerRejectsOversizedWindowsAndBadWaveCap)
{
    const auto spec = kernels::csv_kernel_spec();
    JobPlan plan = spec.make_job(Bytes{'a', ',', 'b', '\n'});
    plan.window_bytes = (std::size_t{kNumBanks} + 1) * kBankBytes;
    Scheduler sched;
    EXPECT_THROW(sched.run({plan}), UdpError);

    SchedulerOptions opts;
    opts.max_jobs_per_wave = 0;
    Scheduler bad(opts);
    EXPECT_THROW(bad.run({spec.make_job(Bytes{'a', '\n'})}), UdpError);

    SchedulerOptions zero_retry;
    zero_retry.retry.max_attempts = 0;
    Scheduler bad_retry(zero_retry);
    EXPECT_THROW(bad_retry.run({spec.make_job(Bytes{'a', '\n'})}),
                 UdpError);
}

// --- Fault containment and recovery (docs/ROBUSTNESS.md) ------------------

namespace {

/// A small histogram fleet shared by the retry tests.
std::vector<JobPlan>
retry_jobs(std::size_t count)
{
    const auto xs = workloads::fp_values(8'000, 21);
    static const auto spec = kernels::histogram_kernel_spec(
        baselines::Histogram::uniform(10, 41.2, 42.5).edges());
    return histogram_fleet(spec, kernels::pack_fp_stream(xs), count);
}

} // namespace

TEST(Scheduler, TransientTrapRecoversOnRetry)
{
    auto jobs = retry_jobs(8);
    Scheduler clean_sched;
    const ScheduleReport clean = clean_sched.run(jobs);

    // Trap job 2 mid-run on its first attempt only.
    FaultInjector inj(7);
    inj.force_trap(jobs[2], 50, /*attempts=*/1);
    SchedulerOptions opts;
    opts.retry.max_attempts = 3;
    Scheduler sched(opts);
    const ScheduleReport rep = sched.run(jobs);

    EXPECT_EQ(rep.faulted_runs, 1u);
    EXPECT_EQ(rep.retries, 1u);
    EXPECT_EQ(rep.quarantined, 0u);
    ASSERT_EQ(rep.waves.size(), 2u); // retry lands in a second wave
    EXPECT_EQ(rep.waves[0].retried, 1u);
    EXPECT_EQ(rep.waves[1].completed, 1u);

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(rep.jobs[i].status, LaneStatus::Done) << "job " << i;
        EXPECT_FALSE(rep.jobs[i].quarantined);
        expect_results_eq(rep.jobs[i], clean.jobs[i]);
    }
    EXPECT_EQ(rep.jobs[2].attempts, 2u);
    EXPECT_EQ(rep.jobs[2].wave, 1u);
}

TEST(Scheduler, PermanentFaultQuarantinesAfterMaxAttempts)
{
    auto jobs = retry_jobs(8);
    Scheduler clean_sched;
    const ScheduleReport clean = clean_sched.run(jobs);

    FaultInjector inj(11);
    inj.poison_program(jobs[5]); // BadDispatch on every attempt
    SchedulerOptions opts;
    opts.retry.max_attempts = 3;
    Scheduler sched(opts);
    const ScheduleReport rep = sched.run(jobs);

    EXPECT_EQ(rep.faulted_runs, 3u);
    EXPECT_EQ(rep.retries, 2u);
    EXPECT_EQ(rep.quarantined, 1u);
    const JobResult &bad = rep.jobs[5];
    EXPECT_EQ(bad.status, LaneStatus::Faulted);
    EXPECT_EQ(bad.fault.code, FaultCode::BadDispatch);
    EXPECT_TRUE(bad.quarantined);
    EXPECT_EQ(bad.attempts, 3u);
    EXPECT_THROW(require_done(bad, "test"), UdpError);

    // Containment: every healthy job's result matches the clean run.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (i == 5)
            continue;
        expect_results_eq(rep.jobs[i], clean.jobs[i]);
    }
}

TEST(Scheduler, TimeoutRetryGrowsCycleBudget)
{
    auto jobs = retry_jobs(4);
    // Far below what a shard needs: every job must time out at least
    // once, then recover as the policy doubles the budget.
    SchedulerOptions opts;
    opts.max_cycles_per_lane = 64;
    opts.retry.max_attempts = 16;
    opts.retry.grow_cycle_budget = true;
    Scheduler sched(opts);
    const ScheduleReport rep = sched.run(jobs);

    EXPECT_GT(rep.faulted_runs, 0u);
    EXPECT_EQ(rep.quarantined, 0u);
    for (const JobResult &jr : rep.jobs) {
        EXPECT_EQ(jr.status, LaneStatus::Done);
        EXPECT_GT(jr.attempts, 1u);
    }

    // Without budget growth the same starvation budget quarantines as
    // TimedOut, carrying the watchdog fault record.
    SchedulerOptions fixed = opts;
    fixed.retry.max_attempts = 2;
    fixed.retry.grow_cycle_budget = false;
    Scheduler stuck(fixed);
    const ScheduleReport srep = stuck.run(jobs);
    EXPECT_EQ(srep.quarantined, unsigned(jobs.size()));
    for (const JobResult &jr : srep.jobs) {
        EXPECT_EQ(jr.status, LaneStatus::TimedOut);
        EXPECT_EQ(jr.fault.code, FaultCode::WatchdogTimeout);
        EXPECT_TRUE(jr.quarantined);
        EXPECT_EQ(jr.attempts, 2u);
    }
}

TEST(Scheduler, FaultFreeRunsIgnoreRetryPolicy)
{
    // With nothing faulting, a generous retry policy must be invisible:
    // identical packing, identical results, identical accounting.
    const auto jobs = retry_jobs(100);
    ASSERT_GT(jobs.size(), kNumLanes);

    Scheduler plain;
    const ScheduleReport a = plain.run(jobs);
    SchedulerOptions opts;
    opts.retry.max_attempts = 5;
    Scheduler retrying(opts);
    const ScheduleReport b = retrying.run(jobs);

    EXPECT_EQ(a.wall_cycles, b.wall_cycles);
    EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
    expect_stats_eq(a.total, b.total);
    ASSERT_EQ(a.waves.size(), b.waves.size());
    for (std::size_t w = 0; w < a.waves.size(); ++w) {
        EXPECT_EQ(a.waves[w].jobs, b.waves[w].jobs);
        EXPECT_EQ(a.waves[w].completed, b.waves[w].completed);
        EXPECT_EQ(b.waves[w].retried, 0u);
        EXPECT_EQ(b.waves[w].quarantined, 0u);
    }
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        expect_results_eq(a.jobs[i], b.jobs[i]);
        EXPECT_EQ(a.jobs[i].wave, b.jobs[i].wave);
        EXPECT_EQ(b.jobs[i].attempts, 1u);
    }
    EXPECT_EQ(b.faulted_runs, 0u);
    EXPECT_EQ(b.retries, 0u);
    EXPECT_EQ(b.quarantined, 0u);
}
