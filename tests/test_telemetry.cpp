/**
 * @file
 * Telemetry tests: metric primitives, log-bucketed histograms, registry
 * snapshots/merge/expositions, concurrent recording, and the scheduler
 * lifecycle instrumentation (docs/OBSERVABILITY.md).
 */
#include "baselines/histogram.hpp"
#include "core/metrics_json.hpp"
#include "kernels/csv.hpp"
#include "kernels/histogram.hpp"
#include "runtime/executor.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/kernel_spec.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/telemetry.hpp"
#include "workloads/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>

using namespace udp;
using namespace udp::runtime;

namespace {

/// >64 single-bank histogram jobs over a shared fp stream (the same
/// fleet shape test_runtime uses for its scheduling equivalences).
std::vector<JobPlan>
telemetry_fleet(std::size_t jobs_wanted)
{
    const auto xs = workloads::fp_values(8'000, 21);
    static const auto spec = kernels::histogram_kernel_spec(
        baselines::Histogram::uniform(10, 41.2, 42.5).edges());
    const Bytes packed = kernels::pack_fp_stream(xs);
    const std::size_t values = packed.size() / 8;
    const std::size_t shard =
        std::max<std::size_t>(1, ceil_div(values, jobs_wanted)) * 8;
    return chunk_jobs(spec, packed, shard);
}

/// Value of a named counter, 0 if the registry never made it.
std::uint64_t
counter_value(const MetricRegistry &reg, const std::string &name)
{
    for (const auto &[n, v] : reg.counters())
        if (n == name)
            return v;
    return 0;
}

/// Snapshot of a named histogram (empty snapshot if absent).
HistogramSnapshot
histogram_snap(const MetricRegistry &reg, const std::string &name)
{
    for (const auto &[n, s] : reg.histograms())
        if (n == name)
            return s;
    return {};
}

/// Complete architectural equality of two job results.
void
expect_results_eq(const JobResult &a, const JobResult &b)
{
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.dispatches, b.stats.dispatches);
    EXPECT_EQ(a.regs, b.regs);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.extracts, b.extracts);
    EXPECT_EQ(a.accepts.size(), b.accepts.size());
}

} // namespace

// --- Metric primitives ----------------------------------------------------

TEST(Telemetry, CounterAndGaugeBasics)
{
    MetricRegistry reg;
    Counter &c = reg.counter("events");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    // Same name resolves to the same metric (stable references).
    EXPECT_EQ(&reg.counter("events"), &c);
    EXPECT_EQ(counter_value(reg, "events"), 42u);

    Gauge &g = reg.gauge("occupancy");
    EXPECT_EQ(g.value(), 0.0);
    g.set(0.25);
    g.set(0.75); // last write wins
    EXPECT_EQ(reg.gauges().size(), 1u);
    EXPECT_DOUBLE_EQ(reg.gauges()[0].second, 0.75);

    // Counters, gauges and histograms are separate namespaces.
    reg.histogram("events");
    EXPECT_EQ(reg.counters().size(), 1u);
    EXPECT_EQ(reg.histograms().size(), 1u);
}

TEST(Telemetry, HistogramEmptyAndSingleSample)
{
    Histogram h;
    const HistogramSnapshot empty = h.snapshot();
    EXPECT_EQ(empty.count, 0u);
    EXPECT_EQ(empty.sum, 0u);
    EXPECT_TRUE(empty.buckets.empty());
    EXPECT_EQ(empty.percentile(0.5), 0u);
    EXPECT_EQ(empty.percentile(0.999), 0u);
    EXPECT_TRUE(std::isnan(empty.mean()));

    // A single sample is every percentile, min, max and mean.
    h.record(12345);
    const HistogramSnapshot one = h.snapshot();
    EXPECT_EQ(one.count, 1u);
    EXPECT_EQ(one.sum, 12345u);
    EXPECT_EQ(one.min, 12345u);
    EXPECT_EQ(one.max, 12345u);
    for (const double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0})
        EXPECT_EQ(one.percentile(q), 12345u) << "q=" << q;
    EXPECT_DOUBLE_EQ(one.mean(), 12345.0);
}

TEST(Telemetry, HistogramBucketBoundaries)
{
    // Values 0..7 get exact buckets.
    for (std::uint64_t v = 0; v < 8; ++v) {
        EXPECT_EQ(Histogram::bucket_index(v), unsigned(v));
        EXPECT_EQ(Histogram::bucket_upper(unsigned(v)), v);
    }

    const std::uint64_t probes[] = {
        8,    9,     15,         16,         17,        255,
        256,  1023,  1024,       1025,       (1u << 20) - 1,
        1u << 20,    (1u << 20) + 1,         ~std::uint64_t{0} >> 1,
        ~std::uint64_t{0}};
    for (const std::uint64_t v : probes) {
        const unsigned idx = Histogram::bucket_index(v);
        ASSERT_LT(idx, kHistogramBuckets) << "v=" << v;
        const std::uint64_t upper = Histogram::bucket_upper(idx);
        // v lands inside its bucket, and the bucket's bound round-trips
        // to the same bucket (the property registry merge relies on).
        EXPECT_LE(v, upper) << "v=" << v;
        EXPECT_EQ(Histogram::bucket_index(upper), idx) << "v=" << v;
        if (idx > 0) {
            EXPECT_LT(Histogram::bucket_upper(idx - 1), v) << "v=" << v;
        }
        // 8 sub-buckets per power of two bound quantization at 12.5%.
        EXPECT_LE(upper - v, v / 8 + 1) << "v=" << v;
    }

    // Bucket indices are monotone in the value.
    unsigned prev = 0;
    for (std::uint64_t v = 0; v < 100'000; v += 97) {
        const unsigned idx = Histogram::bucket_index(v);
        EXPECT_GE(idx, prev);
        prev = idx;
    }
}

TEST(Telemetry, HistogramPercentilesMonotoneAndExact)
{
    Histogram h;
    std::uint64_t x = 0x2545F4914F6CDD1Dull, sum = 0;
    const unsigned n = 10'000;
    for (unsigned i = 0; i < n; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const std::uint64_t v = x % 1'000'000;
        sum += v;
        h.record(v);
    }
    const HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, n);
    EXPECT_EQ(s.sum, sum);

    const std::uint64_t p50 = s.percentile(0.50);
    const std::uint64_t p90 = s.percentile(0.90);
    const std::uint64_t p99 = s.percentile(0.99);
    const std::uint64_t p999 = s.percentile(0.999);
    EXPECT_GE(p50, s.min);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_LE(p99, p999);
    EXPECT_LE(p999, s.max);
    // Uniform draws below 1e6: the median must sit near the middle
    // (generous bounds — this checks rank math, not the RNG).
    EXPECT_GT(p50, 350'000u);
    EXPECT_LT(p50, 650'000u);
}

TEST(Telemetry, RegistryMergeFoldsExactly)
{
    MetricRegistry a, b;
    a.counter("shared").add(10);
    b.counter("shared").add(32);
    b.counter("only_b").add(7);
    a.gauge("g").set(1.0);
    b.gauge("g").set(2.0);

    a.histogram("lat").record(10);
    a.histogram("lat").record(1000);
    b.histogram("lat").record(5);
    b.histogram("lat").record(500'000);
    b.histogram("only_b_h").record(3);

    a.merge(b);
    EXPECT_EQ(counter_value(a, "shared"), 42u);
    EXPECT_EQ(counter_value(a, "only_b"), 7u);
    EXPECT_DOUBLE_EQ(a.gauges()[0].second, 2.0); // last-writer-wins

    const HistogramSnapshot lat = histogram_snap(a, "lat");
    EXPECT_EQ(lat.count, 4u);
    EXPECT_EQ(lat.sum, 10u + 1000u + 5u + 500'000u);
    EXPECT_EQ(lat.min, 5u);
    EXPECT_EQ(lat.max, 500'000u);
    EXPECT_EQ(histogram_snap(a, "only_b_h").count, 1u);
    // b is untouched by the merge.
    EXPECT_EQ(counter_value(b, "shared"), 32u);
    EXPECT_EQ(histogram_snap(b, "lat").count, 2u);

    // Merging via snapshots loses no samples: merged quantiles stay
    // inside the widened range and monotone.
    EXPECT_GE(lat.percentile(0.5), lat.min);
    EXPECT_LE(lat.percentile(0.999), lat.max);
}

// --- Expositions ----------------------------------------------------------

TEST(Telemetry, JsonSnapshotIsValidAndEscaped)
{
    MetricRegistry reg;
    // Hostile metric names must survive the strict JSON validator.
    reg.counter("quoted\"name").add(1);
    reg.counter("back\\slash").add(2);
    reg.gauge("g").set(0.5);
    reg.histogram("empty"); // mean is NaN -> null, never bare NaN
    reg.histogram("lat").record(77);

    std::ostringstream os;
    JsonWriter w(os);
    reg.write_json(w);
    const std::string text = os.str();
    EXPECT_TRUE(w.done());
    EXPECT_TRUE(json_parse_ok(text)) << text;
    EXPECT_NE(text.find("quoted\\\"name"), std::string::npos);
    EXPECT_NE(text.find("back\\\\slash"), std::string::npos);
    EXPECT_NE(text.find("\"mean\": null"), std::string::npos);
    EXPECT_EQ(text.find("nan"), std::string::npos);
    EXPECT_EQ(text.find("inf"), std::string::npos);
}

TEST(Telemetry, WriteHistogramJsonHandlesNonFinite)
{
    // An empty snapshot has a NaN mean; the writer must emit null.
    HistogramSnapshot empty;
    std::ostringstream os;
    JsonWriter w(os);
    write_histogram_json(w, empty);
    const std::string text = os.str();
    EXPECT_TRUE(json_parse_ok(text)) << text;
    EXPECT_NE(text.find("null"), std::string::npos);
    EXPECT_EQ(text.find("nan"), std::string::npos);
}

TEST(Telemetry, PrometheusExpositionWellFormed)
{
    MetricRegistry reg;
    reg.counter("scheduler.runs").add(3);
    reg.gauge("wave.occupancy").set(0.5);
    reg.histogram("job.service_cycles").record(100);
    reg.histogram("job.service_cycles").record(200);
    reg.histogram("empty.hist");
    reg.counter("we\"ird name").add(1); // sanitized, not escaped

    const std::string text = reg.prometheus_text();
    EXPECT_NE(text.find("# TYPE udp_scheduler_runs counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("udp_scheduler_runs 3\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE udp_wave_occupancy gauge\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE udp_job_service_cycles summary\n"),
              std::string::npos);
    EXPECT_NE(text.find("udp_job_service_cycles{quantile=\"0.5\"}"),
              std::string::npos);
    EXPECT_NE(text.find("udp_job_service_cycles{quantile=\"0.999\"}"),
              std::string::npos);
    EXPECT_NE(text.find("udp_job_service_cycles_count 2\n"),
              std::string::npos);
    // Empty histograms expose only _sum/_count — no NaN samples.
    EXPECT_NE(text.find("udp_empty_hist_sum 0\n"), std::string::npos);
    EXPECT_NE(text.find("udp_empty_hist_count 0\n"), std::string::npos);
    EXPECT_EQ(text.find("udp_empty_hist{"), std::string::npos);
    EXPECT_EQ(text.find("udp_empty_hist_mean"), std::string::npos);
    // Sanitization: no quotes or spaces survive in a metric name.
    EXPECT_NE(text.find("udp_we_ird_name 1\n"), std::string::npos);
    EXPECT_EQ(text.find("nan"), std::string::npos);
}

TEST(Telemetry, PrometheusNameSanitization)
{
    EXPECT_EQ(prometheus_name("job.e2e_cycles"), "udp_job_e2e_cycles");
    EXPECT_EQ(prometheus_name("a b\"c\\d"), "udp_a_b_c_d");
    EXPECT_EQ(prometheus_name("0weird"), "udp_0weird"); // prefix guards
    EXPECT_EQ(prometheus_name(""), "udp_");
}

// --- Concurrency (TSan-exercised in CI) -----------------------------------

TEST(Telemetry, ConcurrentRecordingIsExact)
{
    MetricRegistry reg;
    Counter &runs = reg.counter("runs");
    Histogram &lat = reg.histogram("lat");

    constexpr unsigned kThreads = 8, kPer = 20'000;
    {
        std::vector<std::jthread> pool;
        for (unsigned t = 0; t < kThreads; ++t)
            pool.emplace_back([&, t] {
                for (unsigned i = 0; i < kPer; ++i) {
                    runs.add();
                    lat.record(t * kPer + i);
                }
            });
    }
    EXPECT_EQ(runs.value(), std::uint64_t{kThreads} * kPer);
    const HistogramSnapshot s = lat.snapshot();
    EXPECT_EQ(s.count, std::uint64_t{kThreads} * kPer);
    // Sum of 0 .. kThreads*kPer-1, exactly — no lost updates.
    const std::uint64_t n = std::uint64_t{kThreads} * kPer;
    EXPECT_EQ(s.sum, n * (n - 1) / 2);
    EXPECT_EQ(s.min, 0u);
    EXPECT_EQ(s.max, n - 1);
}

TEST(Telemetry, ConcurrentSinksMergeToFleetView)
{
    // One registry per "shard", merged into a fleet registry — the
    // scale-out pattern for the ROADMAP's rack-scale direction.
    constexpr unsigned kShards = 4, kPer = 1'000;
    std::vector<MetricRegistry> shards(kShards);
    {
        std::vector<std::jthread> pool;
        for (unsigned t = 0; t < kShards; ++t)
            pool.emplace_back([&shards, t] {
                RegistryTelemetry sink(shards[t]);
                for (unsigned i = 0; i < kPer; ++i) {
                    JobRunEvent ev;
                    ev.job_name = "csv";
                    ev.service_cycles = 100 + i;
                    ev.e2e_cycles = 150 + i;
                    ev.final_disposition = true;
                    sink.on_job_run(ev);
                }
            });
    }
    MetricRegistry fleet;
    for (const MetricRegistry &s : shards)
        fleet.merge(s);
    EXPECT_EQ(counter_value(fleet, "scheduler.runs"),
              std::uint64_t{kShards} * kPer);
    EXPECT_EQ(counter_value(fleet, "kernel.csv.runs"),
              std::uint64_t{kShards} * kPer);
    EXPECT_EQ(histogram_snap(fleet, "job.service_cycles").count,
              std::uint64_t{kShards} * kPer);
    EXPECT_EQ(histogram_snap(fleet, "job.e2e_cycles").min, 150u);
}

// --- Scheduler lifecycle instrumentation ----------------------------------

TEST(Telemetry, SchedulerLifecycleCountsMatchReport)
{
    // Fault-injected multi-wave run: >64 jobs (2+ waves) with one
    // transient trap, so retries, faults and multi-wave queue-wait all
    // appear in the registry.
    auto jobs = telemetry_fleet(100);
    ASSERT_GT(jobs.size(), std::size_t{kNumLanes});
    FaultInjector inj(7);
    inj.force_trap(jobs[2], 50, /*attempts=*/1);

    MetricRegistry reg;
    RegistryTelemetry sink(reg);
    SchedulerOptions opts;
    opts.retry.max_attempts = 3;
    opts.telemetry = &sink;
    Scheduler sched(opts);
    const ScheduleReport rep = sched.run(jobs);

    const std::uint64_t runs = jobs.size() + rep.retries;
    EXPECT_EQ(counter_value(reg, "scheduler.runs"), runs);
    EXPECT_EQ(counter_value(reg, "scheduler.runs.faulted"),
              rep.faulted_runs);
    EXPECT_EQ(counter_value(reg, "scheduler.jobs.completed"),
              runs - rep.faulted_runs);
    EXPECT_EQ(counter_value(reg, "scheduler.retries"), rep.retries);
    EXPECT_EQ(counter_value(reg, "scheduler.jobs.quarantined"),
              rep.quarantined);
    EXPECT_EQ(counter_value(reg, "scheduler.waves"), rep.waves.size());
    EXPECT_GT(rep.retries, 0u);

    // The forced trap lands in its per-FaultCode counter.
    const std::string trap_name =
        "scheduler.fault." +
        std::string(fault_code_name(FaultCode::ForcedTrap));
    EXPECT_EQ(counter_value(reg, trap_name), rep.faulted_runs);

    // Per-run latency samples: one per run; e2e only per final
    // disposition (exactly one per submitted job).
    EXPECT_EQ(histogram_snap(reg, "job.queue_wait_cycles").count, runs);
    EXPECT_EQ(histogram_snap(reg, "job.service_cycles").count, runs);
    EXPECT_EQ(histogram_snap(reg, "job.e2e_cycles").count, jobs.size());

    // Wave metrics: one sample per wave; walls sum to the report's.
    const HistogramSnapshot walls = histogram_snap(reg, "wave.wall_cycles");
    EXPECT_EQ(walls.count, rep.waves.size());
    EXPECT_EQ(walls.sum, rep.wall_cycles);
    const HistogramSnapshot occ =
        histogram_snap(reg, "wave.occupancy_lanes");
    EXPECT_EQ(occ.count, rep.waves.size());
    EXPECT_EQ(occ.max, std::uint64_t{rep.waves[0].jobs});

    // First-wave jobs waited zero; later waves waited the machine time
    // of everything before them.
    const HistogramSnapshot qw = histogram_snap(reg, "job.queue_wait_cycles");
    EXPECT_EQ(qw.min, 0u);
    EXPECT_GT(qw.max, 0u);

    // Per-kernel throughput: every run was the histogram kernel.
    EXPECT_EQ(counter_value(reg, "kernel." + jobs[0].name + ".runs"), runs);
}

TEST(Telemetry, SchedulerResultsBitIdenticalWithTelemetry)
{
    const auto jobs = telemetry_fleet(100);

    Scheduler plain;
    const ScheduleReport ref = plain.run(jobs);

    MetricRegistry reg;
    RegistryTelemetry sink(reg);
    SchedulerOptions opts;
    opts.telemetry = &sink;
    Scheduler observed(opts);
    const ScheduleReport rep = observed.run(jobs);

    EXPECT_EQ(ref.wall_cycles, rep.wall_cycles);
    EXPECT_DOUBLE_EQ(ref.energy_j, rep.energy_j);
    ASSERT_EQ(ref.jobs.size(), rep.jobs.size());
    for (std::size_t i = 0; i < ref.jobs.size(); ++i)
        expect_results_eq(ref.jobs[i], rep.jobs[i]);

    // No serial pinning: the threaded backend runs with telemetry
    // attached and stays bit-identical.
    MetricRegistry reg4;
    RegistryTelemetry sink4(reg4);
    SchedulerOptions threaded;
    threaded.threads = 4;
    threaded.telemetry = &sink4;
    Scheduler pooled(threaded);
    const ScheduleReport rep4 = pooled.run(jobs);
    EXPECT_EQ(rep4.sim_threads, 4u);
    EXPECT_EQ(ref.wall_cycles, rep4.wall_cycles);
    for (std::size_t i = 0; i < ref.jobs.size(); ++i)
        expect_results_eq(ref.jobs[i], rep4.jobs[i]);
    EXPECT_EQ(counter_value(reg4, "scheduler.runs"), jobs.size());
}

TEST(Telemetry, JobResultLatencyFieldsAreDeterministic)
{
    const auto jobs = telemetry_fleet(100);
    Scheduler sched;
    const ScheduleReport rep = sched.run(jobs);
    ASSERT_GE(rep.waves.size(), 2u);

    Cycles wave_start = 0;
    std::vector<Cycles> starts; // machine time each wave begins
    for (const WaveReport &w : rep.waves) {
        starts.push_back(wave_start);
        wave_start += w.wall_cycles;
    }
    for (const JobResult &jr : rep.jobs) {
        EXPECT_EQ(jr.queue_wait_cycles, starts[jr.wave]);
        EXPECT_EQ(jr.service_cycles, jr.stats.cycles);
        EXPECT_EQ(jr.e2e_cycles,
                  starts[jr.wave] + rep.waves[jr.wave].wall_cycles);
        EXPECT_LE(jr.service_cycles, rep.waves[jr.wave].wall_cycles);
    }

    const JobLatencySummary lat = summarize_job_latencies(rep.jobs);
    EXPECT_EQ(lat.queue_wait.count, rep.jobs.size());
    EXPECT_EQ(lat.service.count, rep.jobs.size());
    EXPECT_EQ(lat.e2e.count, rep.jobs.size());
    EXPECT_EQ(lat.queue_wait.min, 0u); // first wave starts immediately
    EXPECT_EQ(lat.e2e.max, rep.wall_cycles); // last wave's jobs
    EXPECT_LE(lat.service.max, lat.e2e.max);
}

TEST(Telemetry, RunJobOnEmitsSingleEvent)
{
    MetricRegistry reg;
    RegistryTelemetry sink(reg);

    const auto spec = kernels::csv_kernel_spec();
    const JobPlan plan = spec.make_job(Bytes{'a', ',', 'b', '\n'});
    Machine m;
    const JobResult res = run_job_on(m, 0, 0, plan,
                                     ~std::uint64_t{0}, &sink);
    EXPECT_EQ(res.status, LaneStatus::Done);
    EXPECT_EQ(res.queue_wait_cycles, 0u);
    EXPECT_EQ(res.service_cycles, res.stats.cycles);
    EXPECT_EQ(res.e2e_cycles, res.stats.cycles);

    EXPECT_EQ(counter_value(reg, "scheduler.runs"), 1u);
    EXPECT_EQ(counter_value(reg, "scheduler.jobs.completed"), 1u);
    EXPECT_EQ(counter_value(reg, "kernel." + plan.name + ".runs"), 1u);
    const HistogramSnapshot svc = histogram_snap(reg, "job.service_cycles");
    EXPECT_EQ(svc.count, 1u);
    EXPECT_EQ(svc.sum, res.stats.cycles);
    EXPECT_EQ(histogram_snap(reg, "job.e2e_cycles").count, 1u);
    EXPECT_EQ(histogram_snap(reg, "job.queue_wait_cycles").sum, 0u);

    // Without a sink the same run records nothing and matches exactly.
    Machine m2;
    const JobResult bare = run_job_on(m2, 0, 0, plan);
    expect_results_eq(res, bare);
}

TEST(Telemetry, QuarantineReachesRegistry)
{
    auto jobs = telemetry_fleet(8);
    FaultInjector inj(11);
    inj.poison_program(jobs[5]); // BadDispatch on every attempt

    MetricRegistry reg;
    RegistryTelemetry sink(reg);
    SchedulerOptions opts;
    opts.retry.max_attempts = 3;
    opts.telemetry = &sink;
    Scheduler sched(opts);
    const ScheduleReport rep = sched.run(jobs);

    EXPECT_EQ(rep.quarantined, 1u);
    EXPECT_EQ(counter_value(reg, "scheduler.jobs.quarantined"), 1u);
    EXPECT_EQ(counter_value(reg, "scheduler.retries"), 2u);
    const std::string bad_name =
        "scheduler.fault." +
        std::string(fault_code_name(FaultCode::BadDispatch));
    EXPECT_EQ(counter_value(reg, bad_name), 3u); // one per attempt
    // The quarantined job still contributes exactly one e2e sample.
    EXPECT_EQ(histogram_snap(reg, "job.e2e_cycles").count, jobs.size());

    // The whole registry round-trips both expositions.
    std::ostringstream os;
    JsonWriter w(os);
    reg.write_json(w);
    EXPECT_TRUE(json_parse_ok(os.str()));
    const std::string prom = reg.prometheus_text();
    EXPECT_NE(prom.find("udp_scheduler_fault_bad_dispatch 3\n"),
              std::string::npos);
}
