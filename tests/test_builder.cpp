/**
 * @file
 * Tests for ProgramBuilder: IR validation, action-block sharing, attach
 * addressing modes, and emitted Program invariants.
 */
#include "assembler/builder.hpp"
#include "assembler/disasm.hpp"

#include <gtest/gtest.h>

namespace udp {
namespace {

/// Two-state toggle over the binary alphabet.
Program
toggle_program()
{
    ProgramBuilder b;
    const StateId s0 = b.add_state();
    const StateId s1 = b.add_state();
    b.on_symbol(s0, 0, s0);
    b.on_symbol(s0, 1, s1);
    b.on_symbol(s1, 0, s1);
    b.on_symbol(s1, 1, s0);
    b.set_entry(s0);
    b.set_initial_symbol_bits(1);
    return b.build();
}

TEST(Builder, TogglesBuildAndValidate)
{
    const Program p = toggle_program();
    EXPECT_EQ(p.states.size(), 2u);
    EXPECT_EQ(p.layout.num_states, 2u);
    EXPECT_EQ(p.layout.num_transitions, 4u);
    EXPECT_GE(p.layout.used_words, 4u);
    EXPECT_EQ(p.initial_symbol_bits, 1u);
    // validate() ran inside build(); re-run explicitly.
    EXPECT_NO_THROW(p.validate());
}

TEST(Builder, DisassemblerProducesListing)
{
    const Program p = toggle_program();
    const std::string listing = disassemble(p);
    EXPECT_NE(listing.find("labeled"), std::string::npos);
    EXPECT_NE(listing.find("state @"), std::string::npos);
}

TEST(Builder, RejectsMalformedIR)
{
    ProgramBuilder b;
    const StateId s = b.add_state();
    EXPECT_THROW(b.on_symbol(s, 0, 99), UdpError);     // unknown target
    b.on_symbol(s, 0, s);
    EXPECT_THROW(b.on_symbol(s, 0, s), UdpError);      // duplicate symbol
    EXPECT_THROW(b.on_any(s, s), UdpError);            // common vs labeled
    EXPECT_THROW(b.build(), UdpError);                 // no entry
    b.set_entry(s);
    EXPECT_NO_THROW(b.build());
    EXPECT_THROW(b.set_initial_symbol_bits(0), UdpError);
    EXPECT_THROW(b.set_initial_symbol_bits(33), UdpError);
}

TEST(Builder, RefillBitsLimitedToThreeBits)
{
    ProgramBuilder b;
    const StateId s = b.add_state();
    EXPECT_THROW(b.on_symbol_refill(s, 0, s, 8), UdpError);
    EXPECT_NO_THROW(b.on_symbol_refill(s, 1, s, 7));
}

TEST(Builder, ActionBlocksAreShared)
{
    ProgramBuilder b;
    const StateId s = b.add_state();
    // Two identical blocks added separately must be merged in the image.
    const BlockId b1 = b.add_block({act_imm(Opcode::Addi, 1, 1, 1, true)});
    const BlockId b2 = b.add_block({act_imm(Opcode::Addi, 1, 1, 1, true)});
    b.on_symbol(s, 0, s, b1);
    b.on_symbol(s, 1, s, b2);
    b.set_entry(s);
    b.set_initial_symbol_bits(1);
    const Program p = b.build();
    EXPECT_EQ(p.actions.size(), 1u); // one shared word

    const Transition t0 =
        decode_transition(p.dispatch[p.states[0].base + 0]);
    const Transition t1 =
        decode_transition(p.dispatch[p.states[0].base + 1]);
    EXPECT_EQ(t0.attach, t1.attach);
    EXPECT_EQ(t0.attach_mode, AttachMode::Direct);
}

TEST(Builder, ManyBlocksSpillIntoScaledRegion)
{
    ProgramBuilder b;
    const StateId s = b.add_state();
    // 300 distinct one-action blocks cannot all fit direct refs (0..254).
    std::vector<StateId> targets;
    for (int i = 0; i < 300; ++i) {
        const StateId t = b.add_state();
        b.on_any(t, s);
        targets.push_back(t);
    }
    for (int i = 0; i < 300; ++i) {
        b.on_symbol(s, static_cast<Word>(i), targets[i],
                    b.add_block({act_imm(Opcode::Movi, 1, 0, i, true)}));
    }
    b.set_entry(s);
    b.set_initial_symbol_bits(16);
    const Program p = b.build();

    bool saw_scaled = false;
    const auto &meta = p.states[0];
    for (Word sym = 0; sym < 300; ++sym) {
        const Transition t = decode_transition(p.dispatch[meta.base + sym]);
        if (t.attach_mode == AttachMode::ScaledOffset)
            saw_scaled = true;
    }
    EXPECT_TRUE(saw_scaled);
    EXPECT_GT(p.actions.size(), 255u);
}

TEST(Builder, AuxChainOrderCommonMajorityDefault)
{
    ProgramBuilder b;
    const StateId s0 = b.add_state();
    const StateId s1 = b.add_state();
    b.on_symbol(s1, 0, s0);
    b.on_majority(s1, s0);
    b.on_default(s1, s1);
    b.on_symbol(s0, 0, s1);
    b.set_entry(s0);
    b.set_initial_symbol_bits(1);
    const Program p = b.build();

    const StateMeta *m1 = p.find_state(p.states[1].base);
    ASSERT_NE(m1, nullptr);
    EXPECT_EQ(m1->aux_count, 2u);
    const Transition a1 = decode_transition(p.dispatch[m1->base - 1]);
    const Transition a2 = decode_transition(p.dispatch[m1->base - 2]);
    EXPECT_EQ(a1.type, TransitionType::Majority);
    EXPECT_EQ(a2.type, TransitionType::Default);
}

TEST(Builder, FlaggedArcsComeFromRegSourceStates)
{
    ProgramBuilder b;
    const StateId r = b.add_state(/*reg_source=*/true);
    const StateId s = b.add_state();
    b.on_symbol(r, 3, s);
    b.on_symbol(s, 0, r);
    b.set_entry(r);
    b.set_initial_symbol_bits(4);
    const Program p = b.build();
    const StateMeta *mr = p.find_state(p.entry);
    ASSERT_NE(mr, nullptr);
    EXPECT_TRUE(mr->reg_source);
    const Transition t = decode_transition(p.dispatch[mr->base + 3]);
    EXPECT_EQ(t.type, TransitionType::Flagged);
}

} // namespace
} // namespace udp
