/**
 * @file
 * Integration tests: every UDP kernel computes the same function as its
 * CPU baseline (the core claim behind the paper's rate comparisons).
 */
#include "baselines/csv.hpp"
#include "baselines/dictionary.hpp"
#include "baselines/histogram.hpp"
#include "baselines/huffman.hpp"
#include "baselines/snappy.hpp"
#include "baselines/trigger.hpp"
#include "kernels/csv.hpp"
#include "kernels/dictionary.hpp"
#include "kernels/histogram.hpp"
#include "kernels/huffman.hpp"
#include "kernels/pattern.hpp"
#include "kernels/snappy.hpp"
#include "kernels/trigger.hpp"
#include "workloads/generators.hpp"

#include <gtest/gtest.h>

namespace udp {
namespace {

using namespace kernels;

Bytes
bytes_of(const std::string &s)
{
    return Bytes(s.begin(), s.end());
}

struct KernelFixture : ::testing::Test {
    Machine m{AddressingMode::Restricted};
};

// --- CSV ---------------------------------------------------------------

TEST_F(KernelFixture, CsvCountsMatchBaselineOnAllDatasets)
{
    for (const auto &text :
         {workloads::crimes_csv(60), workloads::taxi_csv(60),
          workloads::food_inspection_csv(12)}) {
        const Bytes data = bytes_of(text);
        ASSERT_LE(data.size(), kCsvOutBase);
        const auto base = baselines::parse_csv(data);
        const auto res = run_csv_kernel(m, 0, data, 0);
        EXPECT_EQ(res.rows, base.rows);
        EXPECT_EQ(res.fields, base.fields);
    }
}

TEST_F(KernelFixture, CsvFieldStreamReconstructsUnquotedFields)
{
    const Bytes data = bytes_of(workloads::crimes_csv(40));
    std::string expect;
    baselines::CsvParser p(
        [&](const char *d, std::size_t n) {
            expect.append(d, n);
            expect.push_back('\n');
        },
        [&] { expect.push_back(0x1E); });
    p.feed(data);
    p.finish();

    const auto res = run_csv_kernel(m, 0, data, 0);
    const std::string got(res.field_stream.begin(),
                          res.field_stream.end());
    EXPECT_EQ(got, expect);
}

TEST_F(KernelFixture, CsvQuotedAndCrlfEdgeCases)
{
    const Bytes data =
        bytes_of("\"a,b\",\"x\"\"y\"\r\nplain,,\"\"\r\nlast,row\n");
    const auto base = baselines::parse_csv(data);
    const auto res = run_csv_kernel(m, 0, data, 0);
    EXPECT_EQ(res.rows, base.rows);
    EXPECT_EQ(res.fields, base.fields);
}

TEST_F(KernelFixture, CsvDispatchDominatesCycles)
{
    // The hot path must be ~1 dispatch per byte (multi-way dispatch is
    // the paper's core claim for CSV).
    const Bytes data = bytes_of(workloads::crimes_csv(50));
    const auto res = run_csv_kernel(m, 0, data, 0);
    EXPECT_EQ(res.stats.dispatches, data.size());
    EXPECT_LT(res.stats.cycles, 4 * data.size());
}

// --- Huffman -------------------------------------------------------------

TEST_F(KernelFixture, HuffmanEncoderMatchesBaselineBitstream)
{
    const Bytes data = workloads::text_corpus(4096, 0.5);
    const auto code = baselines::build_huffman(data);
    const Bytes expect = baselines::huffman_encode(data, code);

    const Program prog = huffman_encoder(code);
    Lane &lane = m.lane(0);
    lane.load(prog);
    lane.set_input(data);
    EXPECT_EQ(lane.run(), LaneStatus::Done);
    lane.finish_output();
    EXPECT_EQ(lane.output(), expect);
}

TEST_F(KernelFixture, HuffmanDecodersRoundTripAllDesigns)
{
    const Bytes data = workloads::text_corpus(2048, 0.5);
    const auto code = baselines::build_huffman(data);
    Bytes enc = baselines::huffman_encode(data, code);
    enc.push_back(0); // pad so trailing symbols decode (see kernel docs)
    enc.push_back(0);

    for (const auto design : {VarSymDesign::SsF, VarSymDesign::SsT,
                              VarSymDesign::SsReg, VarSymDesign::SsRef}) {
        const HuffmanDecodeKernel k = huffman_decoder(code, design);
        Lane &lane = m.lane(0);
        if (!k.lut.empty())
            m.stage(0, k.lut);
        lane.load(k.program);
        lane.set_input(enc);
        lane.set_window_base(0);
        for (const auto &[r, v] : k.init_regs)
            lane.set_reg(r, v);
        const LaneStatus st = lane.run();
        EXPECT_NE(st, LaneStatus::Running);
        ASSERT_GE(lane.output().size(), data.size())
            << var_sym_name(design);
        const Bytes got(lane.output().begin(),
                        lane.output().begin() + data.size());
        EXPECT_EQ(got, data) << var_sym_name(design);
    }
}

TEST_F(KernelFixture, HuffmanDesignTradeoffsMatchFig8)
{
    const Bytes data = workloads::text_corpus(32 * 1024, 0.5);
    const auto code = baselines::build_huffman(data);

    const auto ssf = huffman_decoder(code, VarSymDesign::SsF);
    const auto sst = huffman_decoder(code, VarSymDesign::SsT);
    const auto ssreg = huffman_decoder(code, VarSymDesign::SsReg);
    const auto ssref = huffman_decoder(code, VarSymDesign::SsRef);

    // Code size: SsF explodes; the others are compact (Fig 8b).
    EXPECT_GT(ssf.code_bytes, 5 * sst.code_bytes);
    EXPECT_GT(ssf.code_bytes, 5 * ssref.code_bytes);

    // Parallelism is limited by code footprint.
    EXPECT_LT(achievable_parallelism(ssf.code_bytes),
              achievable_parallelism(ssref.code_bytes));
    EXPECT_EQ(achievable_parallelism(2000), 64u);
}

// --- Histogram -------------------------------------------------------------

TEST_F(KernelFixture, HistogramMatchesBaselineUniform)
{
    for (const unsigned kind : {0u, 1u, 2u}) {
        const auto xs = workloads::fp_values(4000, kind);
        const double lo = *std::min_element(xs.begin(), xs.end());
        const double hi = *std::max_element(xs.begin(), xs.end()) + 1e-9;
        const unsigned bins = kind == 2 ? 4 : 10;

        auto h = baselines::Histogram::uniform(bins, lo, hi);
        h.add_all(xs);

        const Program prog = histogram_program(h.edges());
        const Bytes packed = pack_fp_stream(xs);
        const auto res =
            run_histogram_kernel(m, 0, prog, packed, bins, 0);
        EXPECT_EQ(res.counts, h.counts()) << "kind " << kind;
    }
}

TEST_F(KernelFixture, HistogramMatchesBaselinePercentile)
{
    const auto xs = workloads::fp_values(6000, 2);
    auto h = baselines::Histogram::percentile(4, xs);
    h.add_all(xs);

    const Program prog = histogram_program(h.edges());
    const auto res =
        run_histogram_kernel(m, 0, prog, pack_fp_stream(xs), 4, 0);
    EXPECT_EQ(res.counts, h.counts());
}

TEST_F(KernelFixture, HistogramHandlesExactEdgeValues)
{
    const std::vector<double> edges = {0.0, 1.0, 2.0, 3.0};
    auto h = baselines::Histogram::uniform(3, 0.0, 3.0);
    const std::vector<double> xs = {-5, 0.0, 1.0, 1.5, 2.0, 2.999, 7.0};
    h.add_all(xs);
    const Program prog = histogram_program(h.edges());
    const auto res =
        run_histogram_kernel(m, 0, prog, pack_fp_stream(xs), 3, 0);
    EXPECT_EQ(res.counts, h.counts());
}

// --- Dictionary --------------------------------------------------------------

TEST_F(KernelFixture, DictionaryIdsMatchBaseline)
{
    const auto rows = workloads::zipf_attribute(2000, 40);
    const auto base = baselines::dictionary_encode(rows);

    const Program prog = dictionary_program(base.dict);
    const Bytes input = dict_input(rows);
    const auto res = run_dict_kernel(m, 0, prog, input, false);
    EXPECT_EQ(res.ids, base.ids);
}

TEST_F(KernelFixture, DictionaryRleRunsMatchBaseline)
{
    const auto rows = workloads::runny_attribute(3000, 30, 6.0);
    const auto base = baselines::dictionary_rle_encode(rows);

    const Program prog = dictionary_rle_program(base.dict);
    const Bytes input = dict_input(rows);
    const auto res = run_dict_kernel(m, 0, prog, input, true);
    EXPECT_EQ(res.runs, base.runs);
}

TEST_F(KernelFixture, DictionaryRleUsesFlaggedDispatch)
{
    const auto rows = workloads::runny_attribute(500, 10, 4.0);
    const auto base = baselines::dictionary_rle_encode(rows);
    const Program prog = dictionary_rle_program(base.dict);
    bool has_flagged = false;
    for (const Word w : prog.dispatch) {
        if (decode_transition(w).type == TransitionType::Flagged)
            has_flagged = true;
    }
    EXPECT_TRUE(has_flagged);
}

// --- Snappy -----------------------------------------------------------------

TEST_F(KernelFixture, SnappyKernelDecompressesBaselineStreams)
{
    for (const auto &f : workloads::corpus_suite(8 * 1024)) {
        if (f.data.size() > kSnapOutBase)
            continue;
        const Bytes comp = baselines::snappy_compress(f.data);
        // Strip the varint header for the kernel.
        std::size_t pos = 0;
        while (comp[pos] & 0x80)
            ++pos;
        ++pos;
        const BytesView block =
            BytesView(comp).subspan(pos, comp.size() - pos);

        static const Program prog = snappy_decompress_program();
        const auto res = run_snappy_decompress(m, 0, prog, block, 0);
        EXPECT_EQ(res.data, f.data) << f.name;
    }
}

TEST_F(KernelFixture, SnappyKernelCompressionIsBaselineDecodable)
{
    static const Program prog = snappy_compress_program();
    for (const double entropy : {0.05, 0.4, 0.7, 1.0}) {
        const Bytes data = workloads::text_corpus(12 * 1024, entropy, 77);
        const auto res = run_snappy_compress(m, 0, prog, data, 0);
        EXPECT_EQ(baselines::snappy_decompress(res.data), data)
            << "entropy " << entropy;
        if (entropy <= 0.05) {
            EXPECT_LT(res.data.size(), data.size() / 4);
        }
    }
}

TEST_F(KernelFixture, SnappyKernelsRoundTripTogether)
{
    static const Program comp_prog = snappy_compress_program();
    static const Program dec_prog = snappy_decompress_program();
    const Bytes data = workloads::text_corpus(10 * 1024, 0.5, 99);
    const auto comp = run_snappy_compress(m, 0, comp_prog, data, 0);

    std::size_t pos = 0;
    while (comp.data[pos] & 0x80)
        ++pos;
    ++pos;
    const BytesView block =
        BytesView(comp.data).subspan(pos, comp.data.size() - pos);
    const auto back =
        run_snappy_decompress(m, 1, dec_prog, block, kCsvWindowBytes);
    EXPECT_EQ(back.data, data);
}

// --- Trigger -----------------------------------------------------------------

TEST_F(KernelFixture, TriggerCountsMatchBaseline)
{
    const Bytes packed = workloads::waveform(40'000, 16);
    const Bytes samples = samples_from_bits(packed);
    for (unsigned w = 2; w <= 13; ++w) {
        const baselines::PulseTrigger base(w);
        const std::uint64_t expect =
            base.count_triggers_bitwise(packed);

        const Program prog = trigger_program(w);
        Lane &lane = m.lane(0);
        lane.load(prog);
        lane.set_input(samples);
        EXPECT_EQ(lane.run(), LaneStatus::Done);
        EXPECT_EQ(lane.accept_count(), expect) << "p" << w;
    }
}

// --- Pattern matching ---------------------------------------------------------

TEST_F(KernelFixture, PatternGroupsCoverAllPatternsAcrossLanes)
{
    const auto pats = workloads::nids_patterns(24, false);
    const Bytes payload = workloads::packet_payloads(30'000, pats, 0.02);

    for (const auto model : {FaModel::Adfa, FaModel::Nfa}) {
        const auto groups = pattern_groups(pats, model, 8);
        std::uint64_t udp_total = 0, sw_total = 0;
        for (std::size_t g = 0; g < groups.size(); ++g) {
            Lane &lane = m.lane(static_cast<unsigned>(g));
            lane.load(groups[g].program);
            lane.set_input(payload);
            const LaneStatus st = groups[g].nfa_mode
                                      ? lane.run_nfa()
                                      : lane.run();
            EXPECT_EQ(st, LaneStatus::Done);
            udp_total += lane.accept_count();
            sw_total += software_matches(groups[g].patterns, payload);
        }
        EXPECT_EQ(udp_total, sw_total) << fa_model_name(model);
        EXPECT_GT(udp_total, 0u);
    }
}

} // namespace
} // namespace udp
