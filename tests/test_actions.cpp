/**
 * @file
 * Semantic unit tests for every action opcode the kernels rely on,
 * executed through real programs on a lane (not by poking internals).
 */
#include "assembler/builder.hpp"
#include "core/lane.hpp"

#include <gtest/gtest.h>

namespace udp {
namespace {

/// Run a single action block to completion and return the lane.
struct ActionRunner {
    LocalMemory mem{AddressingMode::Restricted};
    Lane lane{0, mem};
    Bytes input{'x', 'y', 'z', 'w'};

    Lane &run(std::vector<Action> actions,
              std::vector<std::pair<unsigned, Word>> init = {}) {
        actions.push_back(act_imm(Opcode::Halt, 0, 0, 0, true));
        ProgramBuilder b;
        const StateId s = b.add_state();
        b.on_any(s, s, b.add_block(std::move(actions)));
        b.set_entry(s);
        prog = b.build();
        lane.load(prog);
        lane.set_input(input);
        for (const auto &[r, v] : init)
            lane.set_reg(r, v);
        EXPECT_EQ(lane.run(), LaneStatus::Done);
        return lane;
    }

    /// Variant for blocks that must trap: asserts the lane faults with
    /// the expected code instead of completing.
    Lane &run_faulting(std::vector<Action> actions, FaultCode expect) {
        actions.push_back(act_imm(Opcode::Halt, 0, 0, 0, true));
        ProgramBuilder b;
        const StateId s = b.add_state();
        b.on_any(s, s, b.add_block(std::move(actions)));
        b.set_entry(s);
        prog = b.build();
        lane.load(prog);
        lane.set_input(input);
        EXPECT_EQ(lane.run(), LaneStatus::Faulted);
        EXPECT_EQ(lane.fault().code, expect);
        return lane;
    }

    Program prog;
};

struct ActionsFixture : ::testing::Test, ActionRunner {
};

TEST_F(ActionsFixture, ArithmeticImmediates)
{
    run({
        act_imm(Opcode::Movi, 1, 0, -5),
        act_imm(Opcode::Addi, 2, 1, 15),   // 10
        act_imm(Opcode::Subi, 3, 2, 4),    // 6
        act_imm(Opcode::Muli, 4, 3, 7),    // 42
        act_imm(Opcode::Shli, 5, 4, 2),    // 168
        act_imm(Opcode::Shri, 6, 5, 3),    // 21
        act_imm(Opcode::Sari, 7, 1, 1),    // -5 >> 1 = -3 (arith)
    });
    EXPECT_EQ(lane.reg(2), 10u);
    EXPECT_EQ(lane.reg(3), 6u);
    EXPECT_EQ(lane.reg(4), 42u);
    EXPECT_EQ(lane.reg(5), 168u);
    EXPECT_EQ(lane.reg(6), 21u);
    EXPECT_EQ(static_cast<std::int32_t>(lane.reg(7)), -3);
}

TEST_F(ActionsFixture, LogicalAndComparisons)
{
    run({
        act_imm(Opcode::Movi, 1, 0, 0b1100),
        act_imm(Opcode::Andi, 2, 1, 0b1010), // 0b1000
        act_imm(Opcode::Ori, 3, 1, 0b0011),  // 0b1111
        act_imm(Opcode::Xori, 4, 1, 0b0101), // 0b1001
        act_imm(Opcode::Cmpeqi, 5, 1, 12),   // 1
        act_imm(Opcode::Cmplti, 6, 1, -1),   // signed: 12 < -1 = 0
        act_imm(Opcode::Cmpltui, 7, 1, 13),  // 1
        act_imm(Opcode::Lui, 8, 0, 0xABCD),  // high half
    });
    EXPECT_EQ(lane.reg(2), 0b1000u);
    EXPECT_EQ(lane.reg(3), 0b1111u);
    EXPECT_EQ(lane.reg(4), 0b1001u);
    EXPECT_EQ(lane.reg(5), 1u);
    EXPECT_EQ(lane.reg(6), 0u);
    EXPECT_EQ(lane.reg(7), 1u);
    EXPECT_EQ(lane.reg(8), 0xABCD0000u);
}

TEST_F(ActionsFixture, RegisterAluForms)
{
    run({
            act_imm(Opcode::Movi, 1, 0, 20),
            act_imm(Opcode::Movi, 2, 0, 6),
            act_reg(Opcode::Sub, 3, 1, 2),    // 14
            act_reg(Opcode::Mul, 4, 1, 2),    // 120
            act_reg(Opcode::Min, 5, 1, 2),    // 6
            act_reg(Opcode::Max, 6, 1, 2),    // 20
            act_reg(Opcode::Xor, 7, 1, 2),    // 18
            act_reg(Opcode::Not, 8, 0, 2),    // ~6
            act_reg(Opcode::Neg, 9, 0, 2),    // -6
            act_reg(Opcode::Shl, 10, 1, 2),   // 20<<6
            act_reg(Opcode::Shr, 11, 10, 2),  // back to 20
            act_reg(Opcode::Cmpeq, 12, 1, 1), // 1
            act_reg(Opcode::Cmplt, 13, 2, 1), // 6<20 = 1
        });
    EXPECT_EQ(lane.reg(3), 14u);
    EXPECT_EQ(lane.reg(4), 120u);
    EXPECT_EQ(lane.reg(5), 6u);
    EXPECT_EQ(lane.reg(6), 20u);
    EXPECT_EQ(lane.reg(7), 18u);
    EXPECT_EQ(lane.reg(8), ~6u);
    EXPECT_EQ(lane.reg(9), static_cast<Word>(-6));
    EXPECT_EQ(lane.reg(10), 20u << 6);
    EXPECT_EQ(lane.reg(11), 20u);
    EXPECT_EQ(lane.reg(12), 1u);
    EXPECT_EQ(lane.reg(13), 1u);
}

TEST_F(ActionsFixture, SelectIsConditionalMove)
{
    run({
        act_imm(Opcode::Movi, 1, 0, 111),
        act_imm(Opcode::Movi, 2, 0, 222),
        act_imm(Opcode::Movi, 3, 0, 1),      // condition true
        act_reg(Opcode::Select, 3, 1, 2),    // r3 = r3 ? r1 : r2 = 111
        act_imm(Opcode::Movi, 4, 0, 0),      // condition false
        act_reg(Opcode::Select, 4, 1, 2),    // 222
    });
    EXPECT_EQ(lane.reg(3), 111u);
    EXPECT_EQ(lane.reg(4), 222u);
}

TEST_F(ActionsFixture, MemoryOpsAndBininc)
{
    run({
        act_imm(Opcode::Movi, 1, 0, 0x1234),
        act_imm(Opcode::Stw, 1, 0, 0x80),
        act_imm(Opcode::Ldw, 2, 0, 0x80),
        act_imm(Opcode::Ldb, 3, 0, 0x80),   // low byte 0x34
        act_imm(Opcode::Movi, 4, 0, 0x7F),
        act_imm(Opcode::Stb, 4, 0, 0x90),
        act_imm(Opcode::Ldb, 5, 0, 0x90),
        act_imm(Opcode::Movi, 6, 0, 3),     // bin index 3
        act_imm(Opcode::Bininc, 0, 6, 0x100),
        act_imm(Opcode::Bininc, 0, 6, 0x100),
        act_imm(Opcode::Ldw, 7, 6, 0x100 - 3 * 4 + 3 * 4), // dummy calc
    });
    EXPECT_EQ(lane.reg(2), 0x1234u);
    EXPECT_EQ(lane.reg(3), 0x34u);
    EXPECT_EQ(lane.reg(5), 0x7Fu);
    EXPECT_EQ(mem.read32(0x100 + 3 * 4), 2u);
}

TEST_F(ActionsFixture, HashFamilyAndCrc)
{
    run({
        act_imm(Opcode::Movi, 1, 0, 777),
        act_imm(Opcode::Hash, 2, 1, 8),   // 8-bit range
        act_imm(Opcode::Movi, 3, 0, 888),
        act_reg(Opcode::Hash2, 4, 1, 3),
        act_imm(Opcode::Movi, 5, 0, 0),
        act_imm(Opcode::Movi, 6, 0, 'a'),
        act_reg(Opcode::Crc, 5, 0, 6),
    });
    EXPECT_LT(lane.reg(2), 256u);
    EXPECT_NE(lane.reg(4), 0u);
    EXPECT_NE(lane.reg(5), 0u); // CRC step of 'a' over 0

    const Word h1 = lane.reg(2);
    run({
        act_imm(Opcode::Movi, 1, 0, 777),
        act_imm(Opcode::Hash, 2, 1, 8),
    });
    EXPECT_EQ(lane.reg(2), h1); // deterministic
}

TEST_F(ActionsFixture, StreamOpsPeekReadSkipSetstream)
{
    run({
        act_imm(Opcode::Peek, 1, 0, 8),      // 'y' (x consumed by arc)
        act_imm(Opcode::Read, 2, 0, 8),      // 'y'
        act_imm(Opcode::Skip, 0, 0, 8),      // past 'z'
        act_imm(Opcode::Tell, 3, 0, 0),      // 24 bits
        act_imm(Opcode::Movi, 4, 0, 8),
        act_imm(Opcode::Setstream, 0, 4, 0), // back to bit 8
        act_imm(Opcode::Read, 5, 0, 8),      // 'y' again
        act_imm(Opcode::Lastsym, 6, 0, 0),   // dispatch symbol was 'x'
    });
    EXPECT_EQ(lane.reg(1), 'y');
    EXPECT_EQ(lane.reg(2), 'y');
    EXPECT_EQ(lane.reg(3), 24u);
    EXPECT_EQ(lane.reg(5), 'y');
    EXPECT_EQ(lane.reg(6), 'x');
}

TEST_F(ActionsFixture, SetssrAndOutbitsr)
{
    run({
            act_imm(Opcode::Movi, 1, 0, 4),
            act_imm(Opcode::Setssr, 0, 1, 0), // SSR = 4 (dynamic)
            act_imm(Opcode::Movi, 2, 0, 0b1011),
            act_imm(Opcode::Movi, 3, 0, 4),
            act_reg(Opcode::Outbitsr, 3, 0, 2), // 4 bits of r2
            act_reg(Opcode::Outbitsr, 3, 0, 2), // again -> one byte
        });
    ASSERT_EQ(lane.output().size(), 1u);
    EXPECT_EQ(lane.output()[0], 0b10111011u);
}

TEST_F(ActionsFixture, OutputFamily)
{
    run({
        act_imm(Opcode::Movi, 1, 0, 0x4241),
        act_imm(Opcode::Outb, 0, 1, 0),   // 'A'
        act_imm(Opcode::Outi, 0, 0, '!'),
        act_imm(Opcode::Outw, 0, 1, 0),   // 41 42 00 00 LE
    });
    const Bytes expect{'A', '!', 0x41, 0x42, 0x00, 0x00};
    EXPECT_EQ(lane.output(), expect);
}

TEST_F(ActionsFixture, GotoactChainsBlocks)
{
    // Block A jumps into shared code at a fixed action address.  The
    // tail's owning state is created first, so the backend interns the
    // tail block at action address 0 (stable layout order).
    ProgramBuilder b;
    const StateId t = b.add_state(true);
    const BlockId tail = b.add_block({
        act_imm(Opcode::Addi, 2, 2, 100),
        act_imm(Opcode::Halt, 0, 0, 0, true),
    });
    b.on_any(t, t, tail); // anchor the tail block in the image
    const StateId s = b.add_state();
    b.on_any(s, t, b.add_block({
                 act_imm(Opcode::Movi, 2, 0, 5),
                 act_imm(Opcode::Gotoact, 0, 0, 0, true), // jump to addr 0
             }));
    b.set_entry(s);
    const Program p = b.build();
    // Confirm the layout assumption before relying on it.
    ASSERT_EQ(decode_action(p.actions[0]).op, Opcode::Addi);

    lane.load(p);
    lane.set_input(input);
    EXPECT_EQ(lane.run(), LaneStatus::Done);
    EXPECT_EQ(lane.reg(2), 105u); // 5 + 100 via the shared tail
}

TEST_F(ActionsFixture, SetabRedirectsScaledBlocks)
{
    // Setab changes where scaled-offset attach refs resolve; verified
    // indirectly: a program whose action image exceeds the direct
    // region still runs correctly (builder emits Setab config).
    ProgramBuilder b;
    const StateId s = b.add_state();
    std::vector<StateId> sinks;
    for (int i = 0; i < 300; ++i) {
        const StateId t = b.add_state(true);
        b.on_any(t, s, b.add_block({act_imm(Opcode::Movi, 1, 0, i, true)}));
        sinks.push_back(t);
    }
    for (int i = 0; i < 300; ++i)
        b.on_symbol(s, static_cast<Word>(i), sinks[i]);
    b.set_entry(s);
    b.set_initial_symbol_bits(16);
    const Program p = b.build();
    EXPECT_GT(p.actions.size(), 255u);

    // Feed exactly one 16-bit MSB-first symbol (299); the stream then
    // exhausts so the sink's register write survives.
    const Bytes in16{static_cast<std::uint8_t>(299 >> 8),
                     static_cast<std::uint8_t>(299 & 0xFF)};
    lane.load(p);
    lane.set_input(in16);
    lane.run();
    EXPECT_EQ(lane.reg(1), 299u);
}

TEST_F(ActionsFixture, RefillActionRewindsStream)
{
    run({
        act_imm(Opcode::Read, 1, 0, 8),
        act_imm(Opcode::Refill, 0, 0, 8),
        act_imm(Opcode::Read, 2, 0, 8),
    });
    EXPECT_EQ(lane.reg(1), lane.reg(2));
}

TEST_F(ActionsFixture, FailStopsWithReject)
{
    ProgramBuilder b;
    const StateId s = b.add_state();
    b.on_any(s, s, b.add_block({act_imm(Opcode::Fail, 0, 0, 0, true)}));
    b.set_entry(s);
    const Program p = b.build();
    lane.load(p);
    lane.set_input(input);
    EXPECT_EQ(lane.run(), LaneStatus::Reject);
}

TEST_F(ActionsFixture, IllegalConfigurationsFaultTheLane)
{
    // Illegal action operands trap the lane with a structured fault
    // (docs/ROBUSTNESS.md) instead of escaping as host exceptions.
    run_faulting({act_imm(Opcode::Setss, 0, 0, 0)}, FaultCode::BadAction);
    run_faulting({act_imm(Opcode::Setss, 0, 0, 33)}, FaultCode::BadAction);
    run_faulting({act_imm(Opcode::Movi, 1, 0, 40),
                  act_imm(Opcode::Setssr, 0, 1, 0)},
                 FaultCode::BadAction);
    run_faulting({act_imm(Opcode::Skip, 0, 0, 1 << 14)},
                 FaultCode::FetchOutOfRange);
}

} // namespace
} // namespace udp
