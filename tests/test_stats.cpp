/**
 * @file
 * Stats-layer tests: the shared bytes_per_second clock math, LaneStats
 * accumulation over every counter, and lockstep stall accounting.
 */
#include "assembler/builder.hpp"
#include "core/machine.hpp"
#include "core/stats.hpp"

#include <gtest/gtest.h>

namespace udp {
namespace {

TEST(Stats, BytesPerSecondPinsOneGhzClockMath)
{
    // 1000 bytes in 1000 cycles at 1 GHz is exactly 1 GB/s.
    EXPECT_DOUBLE_EQ(bytes_per_second(1000.0, 1000), 1e9);
    // One byte per cycle = one byte per nanosecond.
    EXPECT_DOUBLE_EQ(bytes_per_second(1.0, 1), kClockHz);
    // Zero cycles must not divide by zero.
    EXPECT_DOUBLE_EQ(bytes_per_second(123.0, 0), 0.0);

    // LaneStats::rate_mbps goes through the same helper: 8000 stream
    // bits (1000 bytes) over 2000 cycles = 500 MB/s.
    LaneStats s;
    s.stream_bits = 8000;
    s.cycles = 2000;
    EXPECT_DOUBLE_EQ(s.rate_mbps(), 500.0);

    // MachineResult::throughput_mbps uses wall cycles, not summed lane
    // cycles: two lanes' bytes over the same wall clock add up.
    MachineResult r;
    r.total.stream_bits = 2 * 8000;
    r.wall_cycles = 2000;
    EXPECT_DOUBLE_EQ(r.throughput_mbps(), 1000.0);
}

TEST(Stats, LaneStatsAddCoversEveryField)
{
    LaneStats a;
    a.cycles = 1;
    a.dispatches = 2;
    a.sig_misses = 3;
    a.actions = 4;
    a.mem_reads = 5;
    a.mem_writes = 6;
    a.dispatch_reads = 7;
    a.stall_cycles = 8;
    a.stream_bits = 9;
    a.output_bytes = 10;
    a.accepts = 11;

    LaneStats b;
    b.cycles = 100;
    b.dispatches = 200;
    b.sig_misses = 300;
    b.actions = 400;
    b.mem_reads = 500;
    b.mem_writes = 600;
    b.dispatch_reads = 700;
    b.stall_cycles = 800;
    b.stream_bits = 900;
    b.output_bytes = 1000;
    b.accepts = 1100;

    a.add(b);
    EXPECT_EQ(a.cycles, 101u);
    EXPECT_EQ(a.dispatches, 202u);
    EXPECT_EQ(a.sig_misses, 303u);
    EXPECT_EQ(a.actions, 404u);
    EXPECT_EQ(a.mem_reads, 505u);
    EXPECT_EQ(a.mem_writes, 606u);
    EXPECT_EQ(a.dispatch_reads, 707u);
    EXPECT_EQ(a.stall_cycles, 808u);
    EXPECT_EQ(a.stream_bits, 909u);
    EXPECT_EQ(a.output_bytes, 1010u);
    EXPECT_EQ(a.accepts, 1111u);
}

TEST(Stats, LockstepStallCyclesPopulatedAndInsideWallCycles)
{
    // Four lanes hammering one global bank every dispatch step: the
    // arbiter must charge stalls, and those stalls must be part of both
    // the per-lane cycle counts and the machine wall clock.
    ProgramBuilder b;
    const StateId s = b.add_state();
    b.on_any(s, s, b.add_block({
                 act_imm(Opcode::Ldw, 1, 0, 0x100),
                 act_imm(Opcode::Stw, 1, 0, 0x104, true),
             }));
    b.set_entry(s);
    b.set_addressing(AddressingMode::Global);
    const Program prog = b.build();

    const Bytes input(128, 'x');
    std::vector<JobSpec> jobs(4);
    for (auto &j : jobs) {
        j.program = &prog;
        j.input = input;
    }

    Machine contended(AddressingMode::Global);
    contended.assign(jobs);
    const MachineResult cr = contended.run_lockstep();
    ASSERT_GT(cr.total.stall_cycles, 0u);

    // wall_cycles is the max over lanes, and each lane's cycle count
    // already contains the stalls it was charged.
    Cycles max_lane = 0;
    for (unsigned i = 0; i < 4; ++i)
        max_lane = std::max(max_lane, contended.lane(i).stats().cycles);
    EXPECT_EQ(cr.wall_cycles, max_lane);

    // The identical workload on disjoint restricted windows runs
    // stall-free; every contended lane is slower by exactly its stalls.
    Machine clean(AddressingMode::Restricted);
    for (unsigned i = 0; i < 4; ++i)
        jobs[i].window_base = i * kBankBytes;
    clean.assign(jobs);
    const MachineResult rr = clean.run_lockstep();
    ASSERT_EQ(rr.total.stall_cycles, 0u);
    for (unsigned i = 0; i < 4; ++i) {
        const LaneStats &c = contended.lane(i).stats();
        const LaneStats &n = clean.lane(i).stats();
        EXPECT_EQ(c.cycles, n.cycles + c.stall_cycles);
    }
    EXPECT_GT(cr.wall_cycles, rr.wall_cycles);
}

} // namespace
} // namespace udp
