/**
 * @file
 * Tests for the CPU baselines: CSV FSM semantics, Huffman round-trips,
 * Snappy format compatibility, dictionary/RLE round-trips, histogram
 * binning, pulse triggers, and the branch models.
 */
#include "baselines/branch_profile.hpp"
#include "baselines/csv.hpp"
#include "baselines/dictionary.hpp"
#include "baselines/histogram.hpp"
#include "baselines/huffman.hpp"
#include "baselines/snappy.hpp"
#include "baselines/trigger.hpp"
#include "workloads/generators.hpp"

#include <gtest/gtest.h>

#include <random>

namespace udp {
namespace {

using namespace baselines;

Bytes
bytes_of(const std::string &s)
{
    return Bytes(s.begin(), s.end());
}

// --- CSV -------------------------------------------------------------------

TEST(Csv, BasicRowsAndFields)
{
    const Bytes data = bytes_of("a,b,c\n1,2,3\n");
    const CsvCounts c = parse_csv(data);
    EXPECT_EQ(c.rows, 2u);
    EXPECT_EQ(c.fields, 6u);
    EXPECT_EQ(c.field_bytes, 6u);
}

TEST(Csv, QuotedFieldsWithEscapes)
{
    std::vector<std::string> fields;
    CsvParser p([&](const char *d, std::size_t n) {
                    fields.emplace_back(d, n);
                },
                [] {});
    const Bytes data = bytes_of("\"a,b\",\"say \"\"hi\"\"\",plain\n");
    p.feed(data);
    p.finish();
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0], "a,b");
    EXPECT_EQ(fields[1], "say \"hi\"");
    EXPECT_EQ(fields[2], "plain");
}

TEST(Csv, CrLfAndTrailingRow)
{
    const Bytes data = bytes_of("x,y\r\n1,2\r\n3,4"); // no final newline
    const CsvCounts c = parse_csv(data);
    EXPECT_EQ(c.rows, 3u);
    EXPECT_EQ(c.fields, 6u);
}

TEST(Csv, EmptyFieldsCount)
{
    const Bytes data = bytes_of(",,\na,,b\n");
    const CsvCounts c = parse_csv(data);
    EXPECT_EQ(c.rows, 2u);
    EXPECT_EQ(c.fields, 6u);
}

TEST(Csv, StreamingChunksEqualWhole)
{
    const std::string text =
        workloads::food_inspection_csv(50);
    const Bytes data = bytes_of(text);
    const CsvCounts whole = parse_csv(data);

    CsvCounts chunked;
    CsvParser p([&](const char *, std::size_t n) {
                    chunked.field_bytes += n;
                },
                [] {});
    for (std::size_t i = 0; i < data.size(); i += 7)
        p.feed(BytesView(data).subspan(i, std::min<std::size_t>(
                                              7, data.size() - i)));
    p.finish();
    chunked.fields = p.fields();
    chunked.rows = p.rows();
    EXPECT_EQ(chunked.rows, whole.rows);
    EXPECT_EQ(chunked.fields, whole.fields);
    EXPECT_EQ(chunked.field_bytes, whole.field_bytes);
}

TEST(Csv, GeneratorsProduceRectangularTables)
{
    for (const auto &text :
         {workloads::crimes_csv(30), workloads::taxi_csv(30),
          workloads::food_inspection_csv(30)}) {
        std::uint64_t row_fields = 0, first = 0;
        bool ok = true;
        CsvParser p([&](const char *, std::size_t) { ++row_fields; },
                    [&] {
                        if (first == 0)
                            first = row_fields;
                        else if (row_fields != first)
                            ok = false;
                        row_fields = 0;
                    });
        const Bytes data = bytes_of(text);
        p.feed(data);
        p.finish();
        EXPECT_TRUE(ok) << "ragged CSV";
        EXPECT_EQ(p.rows(), 31u); // header + 30
    }
}

// --- Huffman ---------------------------------------------------------------

TEST(Huffman, RoundTripOnCorpus)
{
    for (const auto &f : workloads::corpus_suite(8 * 1024)) {
        const HuffmanCode code = build_huffman(f.data);
        const Bytes enc = huffman_encode(f.data, code);
        const Bytes dec = huffman_decode(enc, f.data.size(), code);
        EXPECT_EQ(dec, f.data) << f.name;
        if (f.name.find("random") == std::string::npos) {
            EXPECT_LT(enc.size(), f.data.size()) << f.name;
        }
    }
}

TEST(Huffman, CanonicalCodesArePrefixFree)
{
    const Bytes data = workloads::text_corpus(4096, 0.5);
    const HuffmanCode code = build_huffman(data);
    for (int a = 0; a < 256; ++a) {
        if (!code.length[a])
            continue;
        for (int b = 0; b < 256; ++b) {
            if (a == b || !code.length[b] ||
                code.length[b] < code.length[a])
                continue;
            const unsigned shift = code.length[b] - code.length[a];
            EXPECT_NE(code.code[b] >> shift, code.code[a])
                << a << " prefixes " << b;
        }
    }
}

TEST(Huffman, SkewedInputGetsShortCodes)
{
    Bytes data(10000, 'e');
    for (int i = 0; i < 100; ++i)
        data[i * 97] = static_cast<std::uint8_t>('a' + i % 20);
    const HuffmanCode code = build_huffman(data);
    EXPECT_LE(code.length['e'], 2u);
    const Bytes enc = huffman_encode(data, code);
    EXPECT_LT(enc.size(), data.size() / 4);
}

TEST(Huffman, EmptyAndSingleSymbol)
{
    const Bytes empty;
    const HuffmanCode c0 = build_huffman(empty);
    EXPECT_EQ(huffman_encode(empty, c0).size(), 0u);

    const Bytes ones(64, 'x');
    const HuffmanCode c1 = build_huffman(ones);
    EXPECT_EQ(c1.length['x'], 1u);
    const Bytes enc = huffman_encode(ones, c1);
    EXPECT_EQ(enc.size(), 8u); // 64 one-bit codes
    EXPECT_EQ(huffman_decode(enc, 64, c1), ones);
}

// --- Snappy ----------------------------------------------------------------

TEST(Snappy, RoundTripOnCorpus)
{
    for (const auto &f : workloads::corpus_suite(16 * 1024)) {
        const Bytes comp = snappy_compress(f.data);
        const Bytes back = snappy_decompress(comp);
        EXPECT_EQ(back, f.data) << f.name;
    }
}

TEST(Snappy, CompressesRepetitiveDataWell)
{
    const Bytes data = workloads::text_corpus(64 * 1024, 0.05);
    const Bytes comp = snappy_compress(data);
    EXPECT_GT(compression_ratio(data.size(), comp.size()), 5.0);
}

TEST(Snappy, RandomDataExpandsOnlySlightly)
{
    const Bytes data = workloads::text_corpus(64 * 1024, 1.0);
    const Bytes comp = snappy_compress(data);
    EXPECT_LT(comp.size(), data.size() + data.size() / 16 + 16);
    EXPECT_EQ(snappy_decompress(comp), data);
}

TEST(Snappy, BlockSizeSweepsPreserveCorrectness)
{
    const Bytes data = workloads::text_corpus(100'000, 0.4);
    for (const std::size_t bs : {1u << 12, 1u << 14, 1u << 16}) {
        const Bytes comp = snappy_compress(data, bs);
        EXPECT_EQ(snappy_decompress(comp), data) << bs;
    }
    // Bigger blocks find longer matches: ratio must not degrade.
    const auto r12 = snappy_compress(data, 1u << 12).size();
    const auto r16 = snappy_compress(data, 1u << 16).size();
    EXPECT_LE(r16, r12 + r12 / 8);
}

TEST(Snappy, EdgeCases)
{
    EXPECT_EQ(snappy_decompress(snappy_compress(Bytes{})), Bytes{});
    const Bytes one{42};
    EXPECT_EQ(snappy_decompress(snappy_compress(one)), one);
    Bytes bad{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF};
    EXPECT_THROW(snappy_decompress(bad), UdpError);
}

// --- Dictionary ------------------------------------------------------------

TEST(Dictionary, EncodeDecodeRoundTrip)
{
    const auto rows = workloads::zipf_attribute(5000, 40);
    const DictEncoded enc = dictionary_encode(rows);
    EXPECT_EQ(enc.dict.size(), 40u);
    EXPECT_EQ(dictionary_decode(enc), rows);
}

TEST(Dictionary, RleCompressesRuns)
{
    const auto rows = workloads::runny_attribute(5000, 30, 8.0);
    const DictRleEncoded enc = dictionary_rle_encode(rows);
    EXPECT_LT(enc.runs.size(), rows.size() / 3);
    EXPECT_EQ(dictionary_rle_decode(enc), rows);
}

TEST(Dictionary, ZipfIsSkewed)
{
    const auto rows = workloads::zipf_attribute(10000, 50);
    const DictEncoded enc = dictionary_encode(rows);
    std::vector<std::uint64_t> freq(enc.dict.size(), 0);
    for (const auto id : enc.ids)
        ++freq[id];
    const auto top = *std::max_element(freq.begin(), freq.end());
    EXPECT_GT(top, rows.size() / 10); // head value dominates
}

// --- Histogram ---------------------------------------------------------------

TEST(Histogram, UniformBinsCountAll)
{
    Histogram h = Histogram::uniform(10, 0.0, 1.0);
    const std::vector<double> xs = {-1, 0, 0.05, 0.55, 0.999, 2.0};
    h.add_all(xs);
    EXPECT_EQ(h.total(), xs.size());
    EXPECT_EQ(h.counts()[0], 3u); // -1 clamped, 0, 0.05
    EXPECT_EQ(h.counts()[5], 1u);
    EXPECT_EQ(h.counts()[9], 2u); // 0.999 and clamped 2.0
}

TEST(Histogram, PercentileBinsBalancePopulation)
{
    const auto xs = workloads::fp_values(20000, 2); // heavy tail
    Histogram h = Histogram::percentile(4, xs);
    h.add_all(xs);
    for (const auto c : h.counts()) {
        EXPECT_GT(c, xs.size() / 8);
        EXPECT_LT(c, xs.size() / 2);
    }
}

TEST(Histogram, RejectsBadSpecs)
{
    EXPECT_THROW(Histogram::uniform(0, 0, 1), UdpError);
    EXPECT_THROW(Histogram::uniform(4, 1, 1), UdpError);
    EXPECT_THROW(Histogram::percentile(10, {1.0, 2.0}), UdpError);
}

// --- Trigger -----------------------------------------------------------------

TEST(Trigger, LutMatchesBitwise)
{
    const Bytes wave = workloads::waveform(80'000, 16);
    for (unsigned w = 2; w <= 13; ++w) {
        const PulseTrigger t(w);
        EXPECT_EQ(t.count_triggers_lut4(wave),
                  t.count_triggers_bitwise(wave))
            << "p" << w;
    }
}

TEST(Trigger, CountsExactWidthPulsesOnly)
{
    // 0 111 0 11 0 1111 0 -> widths 3, 2, 4.
    const Bytes wave{0b01110110, 0b11110000};
    EXPECT_EQ(PulseTrigger(3).count_triggers_bitwise(wave), 1u);
    EXPECT_EQ(PulseTrigger(2).count_triggers_bitwise(wave), 1u);
    EXPECT_EQ(PulseTrigger(4).count_triggers_bitwise(wave), 1u);
    EXPECT_EQ(PulseTrigger(5).count_triggers_bitwise(wave), 0u);
}

// --- Branch models -----------------------------------------------------------

TEST(BranchModel, MispredictionDominatesBranchyKernels)
{
    // Unpredictable 4-way FSM: random symbols, 4 targets.
    const auto ast = parse_regex("(ab|cd|ef|gh)+");
    const Nfa nfa = build_nfa(*ast);
    const Dfa dfa = minimize(determinize(nfa));

    std::mt19937 rng(3);
    Bytes input(50'000);
    const char alpha[] = "abcdefgh";
    for (auto &b : input)
        b = static_cast<std::uint8_t>(alpha[rng() % 8]);

    const BranchProfile bo = profile_bo(dfa, input);
    const BranchProfile bi = profile_bi(dfa, input);
    // Fig 5a range: 32% - 86% of cycles lost to misprediction.
    EXPECT_GT(bo.mispredict_fraction(), 0.30);
    EXPECT_LT(bo.mispredict_fraction(), 0.90);
    EXPECT_GT(bi.mispredict_fraction(), 0.30);
    EXPECT_LT(bi.mispredict_fraction(), 0.90);
}

TEST(BranchModel, PredictableInputMispredictsRarely)
{
    const auto ast = parse_regex("(ab)+");
    const Nfa nfa = build_nfa(*ast);
    const Dfa dfa = minimize(determinize(nfa));
    Bytes input;
    for (int i = 0; i < 20'000; ++i)
        input.push_back(i % 2 ? 'b' : 'a');
    const BranchProfile bi = profile_bi(dfa, input);
    // Alternating two-state pattern: BTB alternates too - but the bimodal
    // ladder of BO adapts. Keep a loose sanity bound.
    const BranchProfile bo = profile_bo(dfa, input);
    EXPECT_LT(bo.mispredict_fraction(), bi.mispredict_fraction() + 0.7);
    EXPECT_GT(bo.symbols, 0u);
}

TEST(BranchModel, CodeSizeOrdering)
{
    const auto ast = parse_regex("(GET|POST|HEAD) /[a-z]+");
    const Nfa nfa = build_nfa(*ast);
    const Dfa dfa = minimize(determinize(nfa));
    // BI tables dwarf BO ladders for sparse states.
    EXPECT_GT(code_size_bi(dfa), code_size_bo(dfa));
}

// --- Generators ---------------------------------------------------------------

TEST(Generators, Deterministic)
{
    EXPECT_EQ(workloads::crimes_csv(5, 9), workloads::crimes_csv(5, 9));
    EXPECT_EQ(workloads::text_corpus(256, 0.5, 1),
              workloads::text_corpus(256, 0.5, 1));
    EXPECT_NE(workloads::text_corpus(256, 0.5, 1),
              workloads::text_corpus(256, 0.5, 2));
}

TEST(Generators, EntropyOrderingUnderSnappy)
{
    const auto low = workloads::text_corpus(32 * 1024, 0.05);
    const auto mid = workloads::text_corpus(32 * 1024, 0.5);
    const auto high = workloads::text_corpus(32 * 1024, 1.0);
    const auto c_low = snappy_compress(low).size();
    const auto c_mid = snappy_compress(mid).size();
    const auto c_high = snappy_compress(high).size();
    EXPECT_LT(c_low, c_mid);
    EXPECT_LT(c_mid, c_high);
}

TEST(Generators, WaveformHasPulsesOfRequestedWidths)
{
    const Bytes wave = workloads::waveform(50'000, 12);
    std::uint64_t total = 0;
    for (unsigned w = 1; w <= 12; ++w)
        total += PulseTrigger(w).count_triggers_bitwise(wave);
    EXPECT_GT(total, 500u);
}

TEST(Generators, NidsPatternsParse)
{
    for (const bool complex : {false, true}) {
        const auto pats = workloads::nids_patterns(40, complex);
        EXPECT_EQ(pats.size(), 40u);
        for (const auto &p : pats)
            EXPECT_NO_THROW(parse_regex(p)) << p;
    }
}

TEST(Generators, PayloadsContainPlantedPatterns)
{
    const auto pats = workloads::nids_patterns(10, false);
    const Bytes payload = workloads::packet_payloads(200'000, pats, 0.05);
    std::vector<const RegexNode *> asts;
    std::vector<std::unique_ptr<RegexNode>> storage;
    for (const auto &p : pats) {
        storage.push_back(parse_regex(p));
        asts.push_back(storage.back().get());
    }
    const Nfa nfa = build_multi_nfa(asts);
    EXPECT_GT(nfa.count_matches(payload), 0u);
}

} // namespace
} // namespace udp
