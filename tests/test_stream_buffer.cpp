/**
 * @file
 * Unit and property tests for the stream buffer (variable-size symbols,
 * refill push-back; paper Section 3.2.2).
 */
#include "core/stream_buffer.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

namespace udp {
namespace {

Bytes
make_bytes(std::initializer_list<unsigned> v)
{
    Bytes b;
    for (unsigned x : v)
        b.push_back(static_cast<std::uint8_t>(x));
    return b;
}

TEST(StreamBuffer, ByteSymbolsMsbFirst)
{
    const Bytes data = make_bytes({0xAB, 0xCD});
    StreamBuffer sb;
    sb.attach(data);
    EXPECT_EQ(sb.read(8), 0xABu);
    EXPECT_EQ(sb.read(8), 0xCDu);
    EXPECT_TRUE(sb.exhausted(1));
}

TEST(StreamBuffer, SubByteSymbols)
{
    // 0b10110011 0b01000000
    const Bytes data = make_bytes({0xB3, 0x40});
    StreamBuffer sb;
    sb.attach(data);
    EXPECT_EQ(sb.read(1), 1u);
    EXPECT_EQ(sb.read(2), 0b01u);
    EXPECT_EQ(sb.read(3), 0b100u);
    EXPECT_EQ(sb.read(4), 0b1101u); // crosses the byte boundary
    EXPECT_EQ(sb.pos_bits(), 10u);
}

TEST(StreamBuffer, WideSymbolAcrossBytes)
{
    const Bytes data = make_bytes({0x12, 0x34, 0x56, 0x78, 0x9A});
    StreamBuffer sb;
    sb.attach(data);
    sb.skip(4);
    EXPECT_EQ(sb.read(32), 0x23456789u);
}

TEST(StreamBuffer, PeekDoesNotConsume)
{
    const Bytes data = make_bytes({0xF0});
    StreamBuffer sb;
    sb.attach(data);
    EXPECT_EQ(sb.peek(4), 0xFu);
    EXPECT_EQ(sb.peek(4), 0xFu);
    EXPECT_EQ(sb.read(8), 0xF0u);
}

TEST(StreamBuffer, RefillRestoresBits)
{
    const Bytes data = make_bytes({0b10110000});
    StreamBuffer sb;
    sb.attach(data);
    EXPECT_EQ(sb.read(3), 0b101u);
    sb.refill(2);
    EXPECT_EQ(sb.pos_bits(), 1u);
    EXPECT_EQ(sb.read(2), 0b01u);
}

TEST(StreamBuffer, ErrorsOnOverruns)
{
    const Bytes data = make_bytes({0xFF});
    StreamBuffer sb;
    sb.attach(data);
    EXPECT_THROW(sb.read(9), UdpError);
    sb.skip(8);
    EXPECT_THROW(sb.read(1), UdpError);
    EXPECT_THROW(sb.refill(9), UdpError);
    EXPECT_THROW(sb.seek_bits(9), UdpError);
    EXPECT_THROW(sb.read(0), UdpError);
    EXPECT_THROW(sb.read(33), UdpError);
}

/// Property: any split of a bit string into variable-size reads
/// concatenates back to the original bits.
TEST(StreamBufferProperty, VariableReadsPreserveContent)
{
    std::mt19937 rng(7);
    Bytes data(64);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng());

    for (int trial = 0; trial < 50; ++trial) {
        StreamBuffer sb;
        sb.attach(data);
        std::string got, want;
        while (!sb.exhausted(1)) {
            const unsigned w = 1 + rng() % 12;
            const unsigned take =
                std::min<std::uint64_t>(w, sb.remaining_bits());
            const Word v = sb.read(take);
            for (unsigned i = take; i-- > 0;)
                got.push_back(((v >> i) & 1) ? '1' : '0');
        }
        for (std::size_t i = 0; i < data.size() * 8; ++i)
            want.push_back((data[i / 8] >> (7 - i % 8)) & 1 ? '1' : '0');
        EXPECT_EQ(got, want);
    }
}

/// Property: read(k) then refill(k) is the identity.
TEST(StreamBufferProperty, ReadRefillIdentity)
{
    std::mt19937 rng(11);
    Bytes data(32);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng());
    StreamBuffer sb;
    sb.attach(data);
    sb.skip(13);
    for (int trial = 0; trial < 200; ++trial) {
        const unsigned w = 1 + rng() % 16;
        if (sb.remaining_bits() < w)
            break;
        const auto pos = sb.pos_bits();
        const Word v1 = sb.read(w);
        sb.refill(w);
        EXPECT_EQ(sb.pos_bits(), pos);
        EXPECT_EQ(sb.read(w), v1);
    }
}

} // namespace
} // namespace udp
