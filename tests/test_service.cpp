/**
 * @file
 * udp_service tests (docs/SERVICE.md): retry backoff determinism and
 * the backoff=0 bit-identity pin, JobControl cancellation at both
 * scheduler requeue points, admission control (token buckets, circuit
 * breakers, overflow policies), deadlines, graceful drain, per-tenant
 * labeled metrics and post-mortem routing — plus the cancellation-race
 * and concurrent-client coverage the sanitizer jobs run.
 */
#include "kernels/trigger.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/kernel_spec.hpp"
#include "runtime/scheduler.hpp"
#include "service/service.hpp"
#include "workloads/generators.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace udp;
using namespace udp::runtime;
using namespace udp::service;

namespace {

/// Complete architectural equality of two job results (the bench's
/// fault-containment definition: status, counters, registers, bytes).
void
expect_results_eq(const JobResult &a, const JobResult &b)
{
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.dispatches, b.stats.dispatches);
    EXPECT_EQ(a.stats.actions, b.stats.actions);
    EXPECT_EQ(a.stats.stream_bits, b.stats.stream_bits);
    EXPECT_EQ(a.stats.output_bytes, b.stats.output_bytes);
    EXPECT_EQ(a.regs, b.regs);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.extracts, b.extracts);
    ASSERT_EQ(a.accepts.size(), b.accepts.size());
    for (std::size_t i = 0; i < a.accepts.size(); ++i)
        EXPECT_EQ(a.accepts[i].stream_bit_pos,
                  b.accepts[i].stream_bit_pos);
}

/// Shared trigger-sample stream; static so the arena the chunks pin
/// outlives every scheduled run in this binary.
const Bytes &
samples()
{
    static const Bytes s =
        kernels::samples_from_bits(workloads::waveform(200'000, 13));
    return s;
}

/// `n` trigger jobs of >= 2 KB each (so a forced trap at cycle 300
/// always lands inside the run).
std::vector<JobPlan>
trigger_jobs(std::size_t n)
{
    const auto spec = kernels::trigger_kernel_spec(6);
    const std::size_t chunk =
        std::max<std::size_t>(2048, ceil_div(samples().size(), n));
    auto jobs = chunk_jobs(spec, ArenaSlice::borrow(samples()), chunk);
    jobs.resize(std::min(jobs.size(), n));
    return jobs;
}

/// One deliberately long job (the whole stream as a single chunk) —
/// parks the service run loop for a few tens of milliseconds so tests
/// can fill queues / expire deadlines / cancel before staging
/// deterministically.
JobPlan
slow_job()
{
    static const Bytes big =
        kernels::samples_from_bits(workloads::waveform(3'000'000, 13));
    return kernels::trigger_kernel_spec(6).make_job(
        ArenaSlice::borrow(big));
}

/// Telemetry sink that cancels `cancel_job` the moment `trigger_job`'s
/// run event is emitted (mid-harvest, same wave: the deterministic
/// cancel-mid-wave window).
struct JobCancelSink final : TelemetrySink {
    JobControl *control = nullptr;
    std::size_t trigger_job = ~std::size_t{0};
    std::size_t cancel_job = ~std::size_t{0};
    void on_job_run(const JobRunEvent &e) override {
        if (e.job_index == trigger_job)
            control->cancel(cancel_job);
    }
    void on_wave(const WaveEvent &) override {}
};

/// Telemetry sink that cancels `job` when wave `wave` closes — after
/// that wave's retries were requeued, before the next wave stages
/// (the deterministic cancel-while-queued-for-retry window).
struct WaveCancelSink final : TelemetrySink {
    JobControl *control = nullptr;
    unsigned wave = 0;
    std::size_t job = ~std::size_t{0};
    void on_wave(const WaveEvent &e) override {
        if (e.index == wave)
            control->cancel(job);
    }
    void on_job_run(const JobRunEvent &) override {}
};

} // namespace

// ---------------------------------------------------------------------------
// Scheduler: retry backoff.
// ---------------------------------------------------------------------------

TEST(Scheduler, BackoffZeroBitIdentical)
{
    // 65 jobs (two waves), two transient faulters recovered by retry.
    auto jobs = trigger_jobs(65);
    ASSERT_GT(jobs.size(), std::size_t{kNumLanes});
    FaultInjector inj(0xBEEF);
    inj.force_trap(jobs[3], 300, 1);
    inj.force_trap(jobs[40], 350, 1);

    SchedulerOptions a;
    a.retry.max_attempts = 3;
    Scheduler sa(a);
    const auto ra = sa.run(jobs);

    // backoff_waves == 0 must take the exact pre-backoff path no
    // matter what the other backoff knobs say.
    SchedulerOptions b;
    b.retry.max_attempts = 3;
    b.retry.backoff_waves = 0;
    b.retry.backoff_jitter = 7;       // ignored while backoff_waves == 0
    b.retry.backoff_seed = 0x12345;   // ignored while backoff_waves == 0
    Scheduler sb(b);
    const auto rb = sb.run(jobs);

    ASSERT_EQ(ra.jobs.size(), rb.jobs.size());
    EXPECT_EQ(ra.waves.size(), rb.waves.size());
    EXPECT_EQ(ra.wall_cycles, rb.wall_cycles);
    EXPECT_EQ(ra.retries, rb.retries);
    for (std::size_t i = 0; i < ra.jobs.size(); ++i) {
        expect_results_eq(ra.jobs[i], rb.jobs[i]);
        EXPECT_EQ(ra.jobs[i].wave, rb.jobs[i].wave);
        EXPECT_EQ(ra.jobs[i].attempts, rb.jobs[i].attempts);
    }
}

TEST(Scheduler, BackoffDelaysRetryToLaterWave)
{
    auto jobs = trigger_jobs(65);
    ASSERT_GT(jobs.size(), std::size_t{kNumLanes});
    FaultInjector inj(0xBEEF);
    inj.force_trap(jobs[10], 300, 1);

    SchedulerOptions imm;
    imm.retry.max_attempts = 3;
    Scheduler si(imm);
    const auto ri = si.run(jobs);
    // Immediate retry joins the leftover job in wave 1.
    ASSERT_EQ(ri.waves.size(), 2u);
    EXPECT_EQ(ri.jobs[10].status, LaneStatus::Done);
    EXPECT_EQ(ri.jobs[10].wave, 1u);

    SchedulerOptions back = imm;
    back.retry.backoff_waves = 1; // retry no earlier than wave 2
    Scheduler sb(back);
    const auto rb = sb.run(jobs);
    ASSERT_EQ(rb.waves.size(), 3u);
    EXPECT_EQ(rb.jobs[10].status, LaneStatus::Done);
    EXPECT_EQ(rb.jobs[10].wave, 2u);
    EXPECT_EQ(rb.jobs[10].attempts, 2u);
    // The delay is host scheduling only — no simulated-time padding
    // beyond the extra wave's own work.
    for (std::size_t i = 0; i < jobs.size(); ++i)
        if (i != 10)
            expect_results_eq(ri.jobs[i], rb.jobs[i]);
}

TEST(Scheduler, BackoffReleasesEarlyWhenQueueWouldIdle)
{
    // 3 jobs, one wave; the faulter's backoff of 50 waves would idle
    // the queue, so the retry is released immediately instead.
    auto jobs = trigger_jobs(3);
    ASSERT_EQ(jobs.size(), 3u);
    FaultInjector inj(0xBEEF);
    inj.force_trap(jobs[1], 300, 1);

    SchedulerOptions o;
    o.retry.max_attempts = 2;
    o.retry.backoff_waves = 50;
    Scheduler s(o);
    const auto r = s.run(jobs);
    EXPECT_EQ(r.waves.size(), 2u); // not 51
    EXPECT_EQ(r.jobs[1].status, LaneStatus::Done);
    EXPECT_EQ(r.jobs[1].attempts, 2u);
}

TEST(Scheduler, BackoffJitterDeterministic)
{
    auto jobs = trigger_jobs(65);
    FaultInjector inj(0xBEEF);
    inj.force_trap(jobs[3], 300, 1);
    inj.force_trap(jobs[40], 350, 1);

    SchedulerOptions o;
    o.retry.max_attempts = 4;
    o.retry.backoff_waves = 1;
    o.retry.backoff_jitter = 3;
    o.retry.backoff_seed = 0xD15EA5E;

    Scheduler s1(o), s2(o);
    const auto r1 = s1.run(jobs);
    const auto r2 = s2.run(jobs);
    EXPECT_EQ(r1.waves.size(), r2.waves.size());
    EXPECT_EQ(r1.wall_cycles, r2.wall_cycles);
    ASSERT_EQ(r1.jobs.size(), r2.jobs.size());
    for (std::size_t i = 0; i < r1.jobs.size(); ++i) {
        expect_results_eq(r1.jobs[i], r2.jobs[i]);
        EXPECT_EQ(r1.jobs[i].wave, r2.jobs[i].wave);
    }
    for (const auto &jr : r1.jobs)
        EXPECT_EQ(jr.status, LaneStatus::Done);
}

// ---------------------------------------------------------------------------
// Scheduler: JobControl cancellation.
// ---------------------------------------------------------------------------

TEST(Scheduler, IdleControlBitIdentical)
{
    const auto jobs = trigger_jobs(65);
    Scheduler plain;
    const auto ref = plain.run(jobs);

    JobControl control(jobs.size());
    SchedulerOptions o;
    o.control = &control;
    Scheduler s(o);
    const auto rep = s.run(jobs);

    ASSERT_EQ(ref.jobs.size(), rep.jobs.size());
    EXPECT_EQ(ref.wall_cycles, rep.wall_cycles);
    EXPECT_EQ(rep.cancelled, 0u);
    for (std::size_t i = 0; i < ref.jobs.size(); ++i)
        expect_results_eq(ref.jobs[i], rep.jobs[i]);
}

TEST(Scheduler, CancelBeforeStageSkipsJob)
{
    const auto jobs = trigger_jobs(8);
    Scheduler plain;
    const auto ref = plain.run(jobs);

    JobControl control(jobs.size());
    control.cancel(5); // before run(): never staged at all
    SchedulerOptions o;
    o.control = &control;
    Scheduler s(o);
    const auto rep = s.run(jobs);

    EXPECT_EQ(rep.cancelled, 1u);
    EXPECT_EQ(rep.jobs[5].status, LaneStatus::Cancelled);
    EXPECT_TRUE(rep.jobs[5].cancelled);
    EXPECT_EQ(rep.jobs[5].attempts, 0u); // counts only real runs
    EXPECT_TRUE(rep.jobs[5].output.empty());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        if (i != 5)
            expect_results_eq(ref.jobs[i], rep.jobs[i]);
}

TEST(Scheduler, CancelMidWaveDiscardsAttempt)
{
    const auto jobs = trigger_jobs(3);
    ASSERT_EQ(jobs.size(), 3u);
    Scheduler plain;
    const auto ref = plain.run(jobs);

    // Job 0's harvest event fires before job 1's harvest check: the
    // cancel lands after job 1 ran but before its payload is kept.
    JobControl control(jobs.size());
    JobCancelSink sink;
    sink.control = &control;
    sink.trigger_job = 0;
    sink.cancel_job = 1;
    SchedulerOptions o;
    o.control = &control;
    o.telemetry = &sink;
    Scheduler s(o);
    const auto rep = s.run(jobs);

    EXPECT_EQ(rep.cancelled, 1u);
    EXPECT_EQ(rep.waves.size(), 1u);
    EXPECT_EQ(rep.waves[0].cancelled, 1u);
    const auto &jr = rep.jobs[1];
    EXPECT_EQ(jr.status, LaneStatus::Cancelled);
    EXPECT_TRUE(jr.cancelled);
    EXPECT_EQ(jr.attempts, 1u); // it ran; the payload was discarded
    EXPECT_TRUE(jr.output.empty());
    EXPECT_TRUE(jr.extracts.empty());
    EXPECT_TRUE(jr.accepts.empty());
    expect_results_eq(ref.jobs[0], rep.jobs[0]);
    expect_results_eq(ref.jobs[2], rep.jobs[2]);
}

TEST(Scheduler, CancelWhileQueuedForRetryDropsRetry)
{
    auto jobs = trigger_jobs(3);
    FaultInjector inj(0xBEEF);
    inj.force_trap(jobs[1], 300, 1); // transient: a retry would succeed

    // Cancel job 1 when wave 0 closes — its retry is already queued,
    // and must be dropped at the next pack without staging.
    JobControl control(jobs.size());
    WaveCancelSink sink;
    sink.control = &control;
    sink.wave = 0;
    sink.job = 1;
    SchedulerOptions o;
    o.control = &control;
    o.telemetry = &sink;
    o.retry.max_attempts = 3;
    Scheduler s(o);
    const auto rep = s.run(jobs);

    EXPECT_EQ(rep.waves.size(), 1u); // the retry wave never materializes
    EXPECT_EQ(rep.cancelled, 1u);
    EXPECT_EQ(rep.jobs[1].status, LaneStatus::Cancelled);
    EXPECT_TRUE(rep.jobs[1].cancelled);
    EXPECT_EQ(rep.jobs[1].attempts, 1u); // the faulted first run only
    EXPECT_EQ(rep.jobs[0].status, LaneStatus::Done);
    EXPECT_EQ(rep.jobs[2].status, LaneStatus::Done);
}

// ---------------------------------------------------------------------------
// Admission primitives.
// ---------------------------------------------------------------------------

TEST(Admission, TokenBucketIsDeterministicWithScriptedClock)
{
    TokenBucket b(/*rate=*/2.0, /*burst=*/2.0, /*now=*/0.0);
    EXPECT_TRUE(b.try_take(0.0));
    EXPECT_TRUE(b.try_take(0.0));
    EXPECT_FALSE(b.try_take(0.0)); // burst exhausted
    EXPECT_NEAR(b.seconds_to_token(0.0), 0.5, 1e-9);
    EXPECT_TRUE(b.try_take(0.6)); // 0.6 s * 2/s = 1.2 tokens refilled
    EXPECT_FALSE(b.try_take(0.6));
    // rate == 0: a pure burst quota, never refills.
    TokenBucket q(0.0, 1.0, 0.0);
    EXPECT_TRUE(q.try_take(0.0));
    EXPECT_FALSE(q.try_take(1e6));
    EXPECT_GT(q.seconds_to_token(1e6), 1e6);
}

TEST(Admission, CircuitBreakerTripsAndCoolsDown)
{
    CircuitBreaker::Options o;
    o.window = 8;
    o.trip_quarantines = 2;
    o.cooldown_s = 1.0;
    CircuitBreaker br(o);
    EXPECT_FALSE(br.open(0.0));
    br.record(true, 0.0);
    EXPECT_FALSE(br.open(0.0));
    br.record(true, 0.1); // second quarantine in window: trip
    EXPECT_TRUE(br.open(0.1));
    EXPECT_EQ(br.trips(), 1u);
    EXPECT_NEAR(br.remaining(0.1), 1.0, 1e-9);
    EXPECT_FALSE(br.open(1.2)); // cooled down
    // The window was cleared on trip: one quarantine doesn't re-trip.
    br.record(true, 1.2);
    EXPECT_FALSE(br.open(1.2));
    br.record(true, 1.3);
    EXPECT_TRUE(br.open(1.3));
    EXPECT_EQ(br.trips(), 2u);
}

// ---------------------------------------------------------------------------
// Service.
// ---------------------------------------------------------------------------

namespace {

TenantOptions
open_tenant(const std::string &name)
{
    TenantOptions t;
    t.name = name;
    t.rate_jobs_per_s = 0;
    t.burst = 1e9; // effectively unthrottled
    t.queue_capacity = 1 << 12;
    return t;
}

} // namespace

TEST(Service, ResultsBitIdenticalToDirectScheduler)
{
    const auto jobs = trigger_jobs(40);
    Scheduler direct;
    const auto ref = direct.run(jobs);

    Service svc;
    auto client = svc.client(svc.register_tenant(open_tenant("alice")));
    std::vector<JobId> ids;
    for (const auto &j : jobs)
        ids.push_back(client.submit(j));
    for (std::size_t i = 0; i < ids.size(); ++i) {
        auto out = client.wait(ids[i], 60.0);
        ASSERT_TRUE(out.has_value());
        ASSERT_EQ(out->state, JobState::Done);
        EXPECT_GT(out->attempts, 0u);
        expect_results_eq(ref.jobs[i], out->result);
        svc.recycle(std::move(*out));
    }
    // Consumed: the ids are forgotten.
    EXPECT_FALSE(svc.poll(ids[0]).has_value());
}

TEST(Service, ShedsWhenOverRate)
{
    Service svc;
    TenantOptions t;
    t.name = "bursty";
    t.rate_jobs_per_s = 0; // no refill: a 4-job quota
    t.burst = 4;
    t.overflow = OverflowPolicy::Shed;
    auto client = svc.client(svc.register_tenant(t));

    const auto jobs = trigger_jobs(8);
    unsigned admitted = 0, rate_limited = 0;
    for (const auto &j : jobs) {
        auto out = svc.poll(client.submit(j));
        ASSERT_TRUE(out.has_value());
        if (out->state == JobState::Rejected) {
            EXPECT_EQ(out->reject, RejectReason::RateLimited);
            ++rate_limited;
        } else {
            ++admitted;
        }
    }
    EXPECT_EQ(admitted, 4u);
    EXPECT_EQ(rate_limited, 4u);
    const auto st = svc.stats();
    EXPECT_EQ(st.tenants[0].rejected_rate_limited, 4u);
    EXPECT_EQ(st.tenants[0].admitted, 4u);
}

TEST(Service, QueueFullShedsWhileLoopIsBusy)
{
    Service svc;
    TenantOptions t = open_tenant("filler");
    t.queue_capacity = 3;
    auto client = svc.client(svc.register_tenant(t));

    // Park the run loop on a long job, then overfill the queue.
    const JobId blocker = client.submit(slow_job());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const auto jobs = trigger_jobs(8);
    unsigned queue_full = 0;
    std::vector<JobId> ids;
    for (const auto &j : jobs) {
        const JobId id = client.submit(j);
        auto out = svc.poll(id);
        ASSERT_TRUE(out.has_value());
        if (out->state == JobState::Rejected) {
            EXPECT_EQ(out->reject, RejectReason::QueueFull);
            ++queue_full;
        } else {
            ids.push_back(id);
        }
    }
    EXPECT_GE(queue_full, 5u); // capacity 3 of 8 submissions
    for (auto id : ids)
        EXPECT_TRUE(client.wait(id, 60.0).has_value());
    EXPECT_TRUE(client.wait(blocker, 60.0).has_value());
}

TEST(Service, DegradeAdmitsOverflowWithSmallerBudget)
{
    Service svc;
    TenantOptions t;
    t.name = "elastic";
    t.rate_jobs_per_s = 0;
    t.burst = 2; // everything past 2 jobs is over-rate
    t.overflow = OverflowPolicy::Degrade;
    t.degraded_max_cycles = 1 << 22; // still plenty to finish
    auto client = svc.client(svc.register_tenant(t));

    const auto jobs = trigger_jobs(6);
    std::vector<JobId> ids;
    for (const auto &j : jobs)
        ids.push_back(client.submit(j));
    for (auto id : ids) {
        auto out = client.wait(id, 60.0);
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(out->state, JobState::Done); // degraded, not refused
    }
    const auto st = svc.stats();
    EXPECT_EQ(st.tenants[0].admitted, 6u);
    EXPECT_EQ(st.tenants[0].degraded, 4u);
    EXPECT_EQ(st.tenants[0].rejected_total(), 0u);
}

TEST(Service, DegradedBudgetActuallyLimitsCycles)
{
    Service svc;
    TenantOptions t;
    t.name = "starved";
    t.rate_jobs_per_s = 0;
    t.burst = 0; // every job is over-rate -> degraded
    t.overflow = OverflowPolicy::Degrade;
    t.degraded_max_cycles = 64; // far below what the job needs
    auto client = svc.client(svc.register_tenant(t));

    auto out = client.wait(client.submit(trigger_jobs(4)[0]), 60.0);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->state, JobState::Quarantined);
    EXPECT_EQ(out->result.status, LaneStatus::TimedOut);
}

TEST(Service, BlockPolicyTimesOut)
{
    Service svc;
    TenantOptions t;
    t.name = "patient";
    t.rate_jobs_per_s = 0;
    t.burst = 1;
    t.overflow = OverflowPolicy::Block;
    t.block_timeout_s = 0.05;
    auto client = svc.client(svc.register_tenant(t));

    const auto jobs = trigger_jobs(2);
    const JobId first = client.submit(jobs[0]);
    const auto t0 = std::chrono::steady_clock::now();
    const JobId second = client.submit(jobs[1]); // no token: blocks
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    auto out = svc.poll(second);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->state, JobState::Rejected);
    EXPECT_EQ(out->reject, RejectReason::Timeout);
    EXPECT_GE(waited, 0.04);
    EXPECT_TRUE(client.wait(first, 60.0).has_value());
}

TEST(Service, DeadlineExpiresQueuedJob)
{
    Service svc;
    auto client = svc.client(svc.register_tenant(open_tenant("dl")));
    const JobId blocker = client.submit(slow_job());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

    SubmitOptions so;
    so.deadline_s = 0.001; // expires while the blocker still runs
    auto out = client.wait(client.submit(trigger_jobs(4)[0], so), 60.0);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->state, JobState::Expired);
    EXPECT_EQ(out->attempts, 0u); // never ran
    EXPECT_TRUE(client.wait(blocker, 60.0).has_value());
    EXPECT_EQ(svc.stats().tenants[0].expired, 1u);
}

TEST(Service, CancelBeforeStage)
{
    Service svc;
    auto client = svc.client(svc.register_tenant(open_tenant("cx")));
    const JobId blocker = client.submit(slow_job());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

    const JobId id = client.submit(trigger_jobs(4)[0]);
    EXPECT_TRUE(client.cancel(id));
    auto out = client.wait(id, 60.0);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->state, JobState::Cancelled);
    EXPECT_EQ(out->attempts, 0u);
    EXPECT_TRUE(client.wait(blocker, 60.0).has_value());
}

TEST(Service, CancelAfterCompletionIsNoOp)
{
    Service svc;
    auto client = svc.client(svc.register_tenant(open_tenant("done")));
    const JobId id = client.submit(trigger_jobs(4)[0]);
    auto out = client.wait(id, 60.0);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->state, JobState::Done);
    EXPECT_FALSE(client.cancel(id));        // consumed: unknown id
    EXPECT_FALSE(client.cancel(id + 999));  // never existed
}

TEST(Service, ConcurrentCancelAndSubmit)
{
    Service svc;
    auto client = svc.client(svc.register_tenant(open_tenant("racy")));
    const auto jobs = trigger_jobs(8);

    constexpr unsigned kThreads = 4, kPerThread = 48;
    std::atomic<std::uint64_t> done{0}, cancelled{0}, other{0};
    std::vector<std::thread> ts;
    for (unsigned w = 0; w < kThreads; ++w) {
        ts.emplace_back([&, w] {
            for (unsigned i = 0; i < kPerThread; ++i) {
                const JobId id = client.submit(jobs[i % jobs.size()]);
                if ((i + w) % 3 == 0)
                    client.cancel(id); // races the run loop's staging
                auto out = client.wait(id, 60.0);
                if (!out)
                    continue;
                switch (out->state) {
                case JobState::Done:
                    done.fetch_add(1);
                    svc.recycle(std::move(*out));
                    break;
                case JobState::Cancelled:
                    cancelled.fetch_add(1);
                    break;
                default:
                    other.fetch_add(1);
                }
            }
        });
    }
    for (auto &t : ts)
        t.join();
    // Every submission resolved to exactly one terminal outcome.
    EXPECT_EQ(done + cancelled + other, kThreads * kPerThread);
    EXPECT_EQ(other.load(), 0u);
    EXPECT_GT(done.load(), 0u);
    EXPECT_GT(cancelled.load(), 0u);
    const auto st = svc.stats();
    EXPECT_EQ(st.tenants[0].submitted, kThreads * kPerThread);
    EXPECT_EQ(st.tenants[0].completed + st.tenants[0].cancelled,
              kThreads * kPerThread);
}

TEST(Service, BreakerIsolatesHostileTenant)
{
    Service svc;
    TenantOptions hostile = open_tenant("hostile");
    hostile.breaker.window = 8;
    hostile.breaker.trip_quarantines = 2;
    hostile.breaker.cooldown_s = 3600; // stays open for the test
    const TenantId h = svc.register_tenant(hostile);
    const TenantId g = svc.register_tenant(open_tenant("good"));
    auto hc = svc.client(h);
    auto gc = svc.client(g);

    FaultInjector inj(0xF01D);
    // Two sequential quarantines reach trip_quarantines exactly.
    for (unsigned i = 0; i < 2; ++i) {
        auto plan = trigger_jobs(4)[i];
        inj.force_trap(plan, 300); // faults on every attempt
        auto out = hc.wait(hc.submit(std::move(plan)), 60.0);
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(out->state, JobState::Quarantined);
        EXPECT_TRUE(out->result.fault);
    }

    // Tripped: further hostile submissions are refused outright...
    auto rejected = svc.poll(hc.submit(trigger_jobs(4)[0]));
    ASSERT_TRUE(rejected.has_value());
    EXPECT_EQ(rejected->state, JobState::Rejected);
    EXPECT_EQ(rejected->reject, RejectReason::BreakerOpen);
    EXPECT_GE(svc.stats().tenants[h].breaker_trips, 1u);

    // ...while the well-behaved tenant is untouched.
    auto out = gc.wait(gc.submit(trigger_jobs(4)[1]), 60.0);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->state, JobState::Done);
}

TEST(Service, PostmortemsRoutedPerTenant)
{
    Service svc;
    const TenantId h = svc.register_tenant(open_tenant("faulty"));
    const TenantId g = svc.register_tenant(open_tenant("clean"));
    auto hc = svc.client(h);
    auto gc = svc.client(g);

    FaultInjector inj(0xF01D);
    auto bad = trigger_jobs(4)[0];
    inj.force_trap(bad, 300); // faults on every attempt
    const JobId bad_id = hc.submit(std::move(bad));
    const JobId good_id = gc.submit(trigger_jobs(4)[1]);
    ASSERT_EQ(hc.wait(bad_id, 60.0)->state, JobState::Quarantined);
    ASSERT_EQ(gc.wait(good_id, 60.0)->state, JobState::Done);

    const auto hpm = svc.postmortems(h);
    ASSERT_FALSE(hpm.empty()); // the hostile tenant sees its own faults
    EXPECT_EQ(hpm.back().status, LaneStatus::Faulted);
    EXPECT_FALSE(hpm.back().disassembly.empty());
    EXPECT_TRUE(svc.postmortems(g).empty()); // and nobody else's
}

TEST(Service, DrainCompletesQueuedJobsAndRejectsNewOnes)
{
    Service svc;
    auto client = svc.client(svc.register_tenant(open_tenant("dr")));
    const auto jobs = trigger_jobs(32);
    std::vector<JobId> ids;
    for (const auto &j : jobs)
        ids.push_back(client.submit(j));
    svc.drain();

    EXPECT_TRUE(svc.stats().drained);
    for (auto id : ids) {
        auto out = svc.poll(id); // outcomes stay pollable after drain
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(out->state, JobState::Done); // work-conserving drain
    }
    auto late = svc.poll(client.submit(jobs[0]));
    ASSERT_TRUE(late.has_value());
    EXPECT_EQ(late->state, JobState::Rejected);
    EXPECT_EQ(late->reject, RejectReason::ShuttingDown);
}

TEST(Service, LabeledMetricsExposition)
{
    MetricRegistry reg;
    ServiceOptions so;
    so.registry = &reg;
    Service svc(so);
    auto client =
        svc.client(svc.register_tenant(open_tenant("al\"ice\\")));
    auto out = client.wait(client.submit(trigger_jobs(4)[0]), 60.0);
    ASSERT_TRUE(out.has_value());
    ASSERT_EQ(out->state, JobState::Done);

    const std::string text = svc.prometheus_text();
    // One TYPE line per family, label value escaped per the format.
    EXPECT_NE(text.find("# TYPE udp_service_jobs_submitted counter"),
              std::string::npos);
    EXPECT_NE(text.find("udp_service_jobs_submitted{tenant=\"al\\\"ice"
                        "\\\\\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("udp_service_e2e_host_us"), std::string::npos);
    EXPECT_EQ(text.find("# TYPE udp_service_jobs_submitted counter",
                        text.find("# TYPE udp_service_jobs_submitted "
                                  "counter") +
                            1),
              std::string::npos);

    const std::string json = svc.metrics_json();
    EXPECT_NE(json.find("\"tenants\""), std::string::npos);
    EXPECT_NE(json.find("\"service\""), std::string::npos);
}
