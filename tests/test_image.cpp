/**
 * @file
 * Tests for .udpbin serialization: round-trips, corruption detection,
 * and execution equivalence of reloaded programs.
 */
#include "assembler/textasm.hpp"
#include "core/image.hpp"
#include "core/lane.hpp"
#include "kernels/csv.hpp"
#include "workloads/generators.hpp"

#include <gtest/gtest.h>

namespace udp {
namespace {

Program
sample_program()
{
    return assemble(R"(
        .symbits 8
        .entry s
        state s:
            'a' -> t { addi r1, r1, 1 }
            majority -> s
        state t [reg]:
            common -> s { outi 'X' }
    )");
}

TEST(Image, RoundTripPreservesEverything)
{
    const Program p = sample_program();
    const Bytes img = save_program(p);
    const Program q = load_program(img);

    EXPECT_EQ(q.dispatch, p.dispatch);
    EXPECT_EQ(q.actions, p.actions);
    EXPECT_EQ(q.entry, p.entry);
    EXPECT_EQ(q.initial_symbol_bits, p.initial_symbol_bits);
    EXPECT_EQ(q.addressing, p.addressing);
    ASSERT_EQ(q.states.size(), p.states.size());
    for (std::size_t i = 0; i < p.states.size(); ++i) {
        EXPECT_EQ(q.states[i].base, p.states[i].base);
        EXPECT_EQ(q.states[i].reg_source, p.states[i].reg_source);
        EXPECT_EQ(q.states[i].aux_count, p.states[i].aux_count);
        EXPECT_EQ(q.states[i].max_symbol, p.states[i].max_symbol);
    }
}

TEST(Image, ReloadedProgramRunsIdentically)
{
    const Program p = kernels::csv_parser_program();
    const Program q = load_program(save_program(p));

    const std::string text = workloads::crimes_csv(20);
    const Bytes data(text.begin(), text.end());

    Machine m1(AddressingMode::Restricted);
    Machine m2(AddressingMode::Restricted);
    // Run the original and the reloaded program through the harness by
    // hand (run_csv_kernel builds its own static program).
    auto run = [&](Machine &m, const Program &prog) {
        m.stage(0, data);
        Lane &lane = m.lane(0);
        lane.load(prog);
        lane.set_input(data);
        lane.set_reg(5, kernels::kCsvOutBase);
        lane.run();
        return std::make_tuple(lane.reg(7), lane.reg(8),
                               lane.stats().cycles);
    };
    EXPECT_EQ(run(m1, p), run(m2, q));
}

TEST(Image, DetectsCorruption)
{
    const Program p = sample_program();
    Bytes img = save_program(p);

    Bytes flipped = img;
    flipped[20] ^= 0x40;
    EXPECT_THROW(load_program(flipped), UdpError);

    Bytes truncated(img.begin(), img.begin() + img.size() / 2);
    EXPECT_THROW(load_program(truncated), UdpError);

    Bytes bad_magic = img;
    bad_magic[0] ^= 0xFF;
    EXPECT_THROW(load_program(bad_magic), UdpError);

    EXPECT_THROW(load_program(Bytes{1, 2, 3}), UdpError);
}

TEST(Image, FileRoundTrip)
{
    const Program p = sample_program();
    const std::string path = "/tmp/udp_image_test.udpbin";
    save_program_file(p, path);
    const Program q = load_program_file(path);
    EXPECT_EQ(q.dispatch, p.dispatch);
    EXPECT_THROW(load_program_file("/nonexistent/x.udpbin"), UdpError);
}

} // namespace
} // namespace udp
