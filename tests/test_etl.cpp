/**
 * @file
 * Tests for the columnar store and the Figure 1 ETL loaders.
 */
#include "etl/loader.hpp"

#include <gtest/gtest.h>

namespace udp {
namespace {

using namespace etl;

TEST(Columnar, TypedAppendAndStats)
{
    Table t("t", {{"a", ColType::Int64},
                  {"b", ColType::Double},
                  {"c", ColType::Text},
                  {"d", ColType::Date}});
    t.append_raw({"42", "3.5", "hello", "01/15/2016"});
    t.append_raw({"-7", "0.25", "hello", "2016-01-15"});
    EXPECT_EQ(t.num_rows(), 2u);
    EXPECT_EQ(t.col(0).ints[1], -7);
    EXPECT_DOUBLE_EQ(t.col(1).doubles[0], 3.5);
    EXPECT_EQ(t.col(2).dict.size(), 1u); // dictionary-shared "hello"
    EXPECT_EQ(t.col(3).ints[0], t.col(3).ints[1]); // same date
    EXPECT_GT(t.bytes(), 0u);
}

TEST(Columnar, DeserializationValidates)
{
    Table t("t", {{"a", ColType::Int64}});
    EXPECT_THROW(t.append_raw({"12x"}), UdpError);
    EXPECT_THROW(t.append_raw({""}), UdpError);
    EXPECT_THROW(t.append_raw({"1", "2"}), UdpError);
    Table d("d", {{"a", ColType::Date}});
    EXPECT_THROW(d.append_raw({"13/40/2016"}), UdpError);
    EXPECT_THROW(d.append_raw({"not a date"}), UdpError);
}

TEST(Columnar, DateArithmetic)
{
    EXPECT_EQ(parse_date("1970-01-01"), 0);
    EXPECT_EQ(parse_date("1970-01-02"), 1);
    EXPECT_EQ(parse_date("01/01/1971"), 365);
    EXPECT_EQ(parse_date("1996-02-29"), parse_date("02/29/1996"));
}

TEST(EtlLoad, CpuPipelineLoadsLineitem)
{
    const std::string csv = lineitem_csv(0.05); // 300 rows
    const Bytes comp = compress_for_load(csv);
    EXPECT_LT(comp.size(), csv.size()); // compresses

    Table t("lineitem", lineitem_schema());
    const LoadBreakdown bd = load_cpu(comp, t);
    EXPECT_EQ(t.num_rows(), 300u);
    EXPECT_EQ(bd.rows, 300u);
    EXPECT_EQ(bd.csv_bytes, csv.size());
    EXPECT_GT(bd.cpu_seconds(), 0.0);
    // The paper's Fig 1b point: CPU time dwarfs modeled SSD time.
    EXPECT_GT(bd.cpu_seconds(), bd.io);
}

TEST(EtlLoad, UdpOffloadProducesIdenticalTable)
{
    const std::string csv = lineitem_csv(0.05);
    const Bytes comp = compress_for_load(csv);

    Table cpu_t("lineitem", lineitem_schema());
    load_cpu(comp, cpu_t);

    Machine m(AddressingMode::Restricted);
    Table udp_t("lineitem", lineitem_schema());
    const LoadBreakdown bd = load_udp_offload(m, comp, udp_t, 8);

    ASSERT_EQ(udp_t.num_rows(), cpu_t.num_rows());
    for (std::size_t c = 0; c < cpu_t.num_cols(); ++c) {
        EXPECT_EQ(udp_t.col(c).ints, cpu_t.col(c).ints) << c;
        EXPECT_EQ(udp_t.col(c).doubles, cpu_t.col(c).doubles) << c;
        EXPECT_EQ(udp_t.col(c).codes, cpu_t.col(c).codes) << c;
    }
    EXPECT_GT(bd.decompress, 0.0);
    EXPECT_GT(bd.parse, 0.0);
}

TEST(EtlLoad, OffloadScalesWithLanes)
{
    const std::string csv = lineitem_csv(0.1);
    const Bytes comp = compress_for_load(csv);
    Machine m(AddressingMode::Restricted);

    Table t1("l", lineitem_schema());
    const LoadBreakdown b1 = load_udp_offload(m, comp, t1, 1);
    Table t8("l", lineitem_schema());
    const LoadBreakdown b8 = load_udp_offload(m, comp, t8, 8);
    // 8 lanes should cut simulated accelerator time substantially.
    EXPECT_LT(b8.decompress, b1.decompress / 3);
    EXPECT_LT(b8.parse, b1.parse / 3);
}

} // namespace
} // namespace udp
