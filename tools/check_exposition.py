#!/usr/bin/env python3
"""Validate a Prometheus-style text exposition produced by
MetricRegistry::prometheus_text() (src/runtime/telemetry.cpp).

Checks, per docs/OBSERVABILITY.md:
  - every sample line parses as `name[{labels}] value`;
  - every metric family has exactly one `# TYPE` line, appearing
    before its first sample, with type counter|gauge|summary;
  - every value is finite (no NaN/Inf samples, ever);
  - counter values are non-negative integers;
  - summaries: quantile samples are monotone in the quantile and lie
    inside [_min, _max]; `_sum`/`_count` are present; empty summaries
    (_count 0) expose no quantile samples.

Usage: check_exposition.py FILE [--require-metric NAME]...
Exit status 0 on success; 1 with a diagnostic on the first failure.
"""

import argparse
import math
import re
import sys

SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$')
TYPE_RE = re.compile(
    r'^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary)$')
QUANTILE_RE = re.compile(r'^\{quantile="([0-9.]+)"\}$')
SUFFIXES = ('_min', '_max', '_mean', '_sum', '_count')


def family_of(name, types):
    """Metric family a sample belongs to (strips summary suffixes)."""
    if name in types:
        return name
    for suffix in SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def fail(lineno, line, why):
    sys.exit(f"check_exposition: line {lineno}: {why}\n  {line}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument('file')
    ap.add_argument('--require-metric', action='append', default=[],
                    help='fail unless this family has at least one sample')
    args = ap.parse_args()

    with open(args.file, encoding='utf-8') as f:
        lines = f.read().splitlines()

    types = {}          # family -> declared type
    samples = {}        # family -> [(suffix-or-quantile, value)]
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith('#'):
            m = TYPE_RE.match(line)
            if not m:
                fail(lineno, line, 'unparseable comment (expected # TYPE)')
            name, kind = m.groups()
            if name in types:
                fail(lineno, line, f'duplicate # TYPE for {name}')
            if name in samples:
                fail(lineno, line, f'# TYPE after samples of {name}')
            types[name] = kind
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            fail(lineno, line, 'unparseable sample line')
        name, labels, value = m.groups()
        family = family_of(name, types)
        if family is None:
            fail(lineno, line, f'sample {name} has no preceding # TYPE')
        try:
            v = float(value)
        except ValueError:
            fail(lineno, line, f'non-numeric value {value!r}')
        if not math.isfinite(v):
            fail(lineno, line, f'non-finite value {value}')
        kind = types[family]
        if kind == 'counter':
            if labels or name != family:
                fail(lineno, line, 'counter samples take no labels/suffix')
            if v < 0 or v != int(v):
                fail(lineno, line, f'counter value {value} not a count')
        elif kind == 'gauge':
            if labels or name != family:
                fail(lineno, line, 'gauge samples take no labels/suffix')
        else:  # summary
            if name == family:
                if not labels or not QUANTILE_RE.match(labels):
                    fail(lineno, line, 'summary sample needs quantile label')
                q = float(QUANTILE_RE.match(labels).group(1))
                samples.setdefault(family, []).append((q, v))
                continue
            suffix = name[len(family):]
            samples.setdefault(family, []).append((suffix, v))
            continue
        samples.setdefault(family, []).append((None, v))

    for family, kind in types.items():
        if kind != 'summary':
            if family not in samples:
                sys.exit(f'check_exposition: {family}: TYPE but no sample')
            continue
        entries = dict()
        quantiles = []
        for tag, v in samples.get(family, []):
            if isinstance(tag, float):
                quantiles.append((tag, v))
            else:
                entries[tag] = v
        if '_sum' not in entries or '_count' not in entries:
            sys.exit(f'check_exposition: {family}: missing _sum/_count')
        count = entries['_count']
        if count == 0 and quantiles:
            sys.exit(f'check_exposition: {family}: quantiles on an '
                     'empty summary')
        if count > 0:
            if not quantiles:
                sys.exit(f'check_exposition: {family}: populated summary '
                         'without quantile samples')
            quantiles.sort()
            vals = [v for _, v in quantiles]
            if vals != sorted(vals):
                sys.exit(f'check_exposition: {family}: quantile values '
                         f'not monotone: {quantiles}')
            lo, hi = entries.get('_min'), entries.get('_max')
            if lo is not None and hi is not None:
                if not all(lo <= v <= hi for v in vals):
                    sys.exit(f'check_exposition: {family}: quantile '
                             f'outside [{lo}, {hi}]: {quantiles}')

    for required in args.require_metric:
        if required not in samples:
            sys.exit(f'check_exposition: required metric {required} '
                     'missing from exposition')

    total = sum(len(v) for v in samples.values())
    print(f'check_exposition: OK ({len(types)} families, '
          f'{total} samples)')


if __name__ == '__main__':
    main()
