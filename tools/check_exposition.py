#!/usr/bin/env python3
"""Validate a Prometheus-style text exposition produced by
MetricRegistry::prometheus_text() (src/runtime/telemetry.cpp).

Checks, per docs/OBSERVABILITY.md:
  - every sample line parses as `name[{labels}] value` with a
    well-formed label block (`key="value"` pairs, escaped values);
  - every metric family has exactly one `# TYPE` line, appearing
    before its first sample, with type counter|gauge|summary;
  - every value is finite (no NaN/Inf samples, ever);
  - counter values are non-negative integers;
  - labeled series (udp_service's per-tenant metrics) keep one
    consistent label key set across every series of a family
    (`quantile` excepted on summaries), and no family mixes labeled
    and unlabeled samples;
  - summaries, per series: quantile samples are monotone in the
    quantile and lie inside [_min, _max]; `_sum`/`_count` are present;
    empty series (_count 0) expose no quantile samples.

Usage: check_exposition.py FILE [--require-metric NAME]...
Exit status 0 on success; 1 with a diagnostic on the first failure.
"""

import argparse
import math
import re
import sys

SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$')
TYPE_RE = re.compile(
    r'^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary)$')
LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"(,|$)')
SUFFIXES = ('_min', '_max', '_mean', '_sum', '_count')


def family_of(name, types):
    """Metric family a sample belongs to (strips summary suffixes)."""
    if name in types:
        return name
    for suffix in SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def parse_labels(block, lineno, line):
    """`{k="v",...}` -> dict; fails on malformed blocks."""
    if not block:
        return {}
    inner, pos, labels = block[1:-1], 0, {}
    while pos < len(inner):
        m = LABEL_RE.match(inner, pos)
        if not m:
            fail(lineno, line, f'malformed label block {block!r}')
        key, value, sep = m.groups()
        if key in labels:
            fail(lineno, line, f'duplicate label key {key!r}')
        labels[key] = value
        pos = m.end()
        if sep == '' and pos != len(inner):
            fail(lineno, line, f'malformed label block {block!r}')
    return labels


def series_key(labels, *, drop_quantile=False):
    items = [(k, v) for k, v in sorted(labels.items())
             if not (drop_quantile and k == 'quantile')]
    return tuple(items)


def fail(lineno, line, why):
    sys.exit(f"check_exposition: line {lineno}: {why}\n  {line}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument('file')
    ap.add_argument('--require-metric', action='append', default=[],
                    help='fail unless this family has at least one sample')
    args = ap.parse_args()

    with open(args.file, encoding='utf-8') as f:
        lines = f.read().splitlines()

    types = {}       # family -> declared type
    samples = {}     # family -> {series key -> [(tag, value)]}
    label_keys = {}  # family -> frozenset of label keys (quantile-less)
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith('#'):
            m = TYPE_RE.match(line)
            if not m:
                fail(lineno, line, 'unparseable comment (expected # TYPE)')
            name, kind = m.groups()
            if name in types:
                fail(lineno, line, f'duplicate # TYPE for {name}')
            if name in samples:
                fail(lineno, line, f'# TYPE after samples of {name}')
            types[name] = kind
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            fail(lineno, line, 'unparseable sample line')
        name, block, value = m.groups()
        family = family_of(name, types)
        if family is None:
            fail(lineno, line, f'sample {name} has no preceding # TYPE')
        labels = parse_labels(block, lineno, line)
        try:
            v = float(value)
        except ValueError:
            fail(lineno, line, f'non-numeric value {value!r}')
        if not math.isfinite(v):
            fail(lineno, line, f'non-finite value {value}')
        kind = types[family]

        # One label key set per family: a family either carries labels
        # on every series (same keys — udp_service's tenant label) or
        # none at all; `quantile` is the summary mechanism, not identity.
        keys = frozenset(k for k in labels if k != 'quantile')
        if family not in label_keys:
            label_keys[family] = keys
        elif label_keys[family] != keys:
            fail(lineno, line,
                 f'inconsistent label keys for {family}: '
                 f'{sorted(keys)} vs {sorted(label_keys[family])}')

        if kind == 'counter':
            if name != family or 'quantile' in labels:
                fail(lineno, line, 'counter samples take no suffix/quantile')
            if v < 0 or v != int(v):
                fail(lineno, line, f'counter value {value} not a count')
            tag = None
        elif kind == 'gauge':
            if name != family or 'quantile' in labels:
                fail(lineno, line, 'gauge samples take no suffix/quantile')
            tag = None
        else:  # summary
            if name == family:
                if 'quantile' not in labels:
                    fail(lineno, line, 'summary sample needs quantile label')
                try:
                    tag = float(labels['quantile'])
                except ValueError:
                    fail(lineno, line,
                         f'bad quantile {labels["quantile"]!r}')
            else:
                if 'quantile' in labels:
                    fail(lineno, line,
                         'quantile label on a summary suffix sample')
                tag = name[len(family):]
        key = series_key(labels, drop_quantile=True)
        series = samples.setdefault(family, {}).setdefault(key, [])
        if tag is None and any(t is None for t, _ in series):
            fail(lineno, line, f'duplicate sample for series {name}{block or ""}')
        series.append((tag, v))

    for family, kind in types.items():
        if family not in samples:
            sys.exit(f'check_exposition: {family}: TYPE but no sample')
        if kind != 'summary':
            continue
        for key, entries_list in samples[family].items():
            where = family + (
                '{' + ','.join(f'{k}="{v}"' for k, v in key) + '}'
                if key else '')
            entries, quantiles = {}, []
            for tag, v in entries_list:
                if isinstance(tag, float):
                    quantiles.append((tag, v))
                else:
                    entries[tag] = v
            if '_sum' not in entries or '_count' not in entries:
                sys.exit(f'check_exposition: {where}: missing _sum/_count')
            count = entries['_count']
            if count == 0 and quantiles:
                sys.exit(f'check_exposition: {where}: quantiles on an '
                         'empty summary')
            if count > 0:
                if not quantiles:
                    sys.exit(f'check_exposition: {where}: populated '
                             'summary without quantile samples')
                quantiles.sort()
                vals = [v for _, v in quantiles]
                if vals != sorted(vals):
                    sys.exit(f'check_exposition: {where}: quantile values '
                             f'not monotone: {quantiles}')
                lo, hi = entries.get('_min'), entries.get('_max')
                if lo is not None and hi is not None:
                    if not all(lo <= v <= hi for v in vals):
                        sys.exit(f'check_exposition: {where}: quantile '
                                 f'outside [{lo}, {hi}]: {quantiles}')

    for required in args.require_metric:
        if required not in samples:
            sys.exit(f'check_exposition: required metric {required} '
                     'missing from exposition')

    nseries = sum(len(s) for s in samples.values())
    total = sum(len(e) for s in samples.values() for e in s.values())
    print(f'check_exposition: OK ({len(types)} families, '
          f'{nseries} series, {total} samples)')


if __name__ == '__main__':
    main()
