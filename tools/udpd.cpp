/**
 * @file
 * udpd — the always-on UDP job service front-end (docs/SERVICE.md).
 *
 * Runs a `udp::service::Service` with N synthetic in-process tenants
 * submitting trigger-kernel jobs at a configured per-tenant rate for a
 * fixed duration, then drains gracefully and reports per-tenant
 * dispositions.  One tenant can be made *hostile* — submitting jobs
 * from the FaultInjector corpus (poisoned programs and forced traps) —
 * to demonstrate quarantine containment and the per-tenant circuit
 * breaker in a live service.
 *
 * Flags:
 *   --tenants N      well-behaved tenants (default 3)
 *   --seconds S      submission window (default 2.0)
 *   --rate R         per-tenant token rate, jobs/s (default 200)
 *   --burst B        token-bucket burst (default 64)
 *   --policy P       overflow policy: shed | block | degrade (default shed)
 *   --hostile        add one hostile tenant running the fault corpus
 *   --retries N      scheduler attempts per job (default 2)
 *   --batch N        max jobs per scheduler batch (default 64)
 *   --threads N      host simulation threads (0 = machine default)
 *   --metrics PATH   write the Prometheus-style exposition on exit
 *   --json PATH      write the metrics + service JSON dump on exit
 *   --seed X         arrival/corpus seed (default 42)
 */
#include "service/service.hpp"

#include "kernels/trigger.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/kernel_spec.hpp"
#include "workloads/generators.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace udp;

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/// Exponential inter-arrival draw (open-loop Poisson arrivals).
double
exp_draw(std::uint64_t &state, double rate_per_s)
{
    state = mix64(state);
    const double u =
        (double(state >> 11) + 0.5) * (1.0 / 9007199254740992.0);
    return -std::log(u) / rate_per_s;
}

struct TenantTally {
    std::uint64_t submitted = 0;
    std::uint64_t done = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t rejected = 0;
    std::uint64_t other = 0;
};

/// One tenant's submission loop: open-loop arrivals at `rate` for
/// `seconds`, opportunistically consuming (and recycling) finished
/// jobs, then waiting out the stragglers.
void
tenant_loop(service::ServiceClient client,
            const std::vector<runtime::JobPlan> &corpus, double rate,
            double seconds, bool hostile, std::uint64_t seed,
            TenantTally &tally)
{
    std::uint64_t rng = seed;
    runtime::FaultInjector inj(seed ^ 0xF01Dull);
    std::deque<service::JobId> outstanding;
    const auto start = std::chrono::steady_clock::now();
    const auto elapsed = [&] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    const auto consume = [&](service::JobId id, double timeout) {
        auto out = timeout < 0 ? client.poll(id) : client.wait(id, timeout);
        if (!out)
            return true; // consumed elsewhere (shouldn't happen here)
        switch (out->state) {
        case service::JobState::Queued:
        case service::JobState::Running:
            return false;
        case service::JobState::Done:
            ++tally.done;
            break;
        case service::JobState::Quarantined:
            ++tally.quarantined;
            break;
        case service::JobState::Rejected:
            ++tally.rejected;
            break;
        default:
            ++tally.other;
        }
        return true;
    };

    double next_arrival = 0;
    while (elapsed() < seconds) {
        const double now = elapsed();
        if (now < next_arrival) {
            std::this_thread::sleep_for(std::chrono::duration<double>(
                std::min(next_arrival - now, 0.01)));
        } else {
            next_arrival = now + exp_draw(rng, rate);
            runtime::JobPlan plan = corpus[tally.submitted % corpus.size()];
            if (hostile) {
                // The fault corpus: poisoned programs (permanent
                // quarantine) alternating with first-attempt traps.
                if (tally.submitted % 2 == 0)
                    inj.poison_program(plan);
                else
                    inj.force_trap(plan, 500 + inj.next_below(2000), 1);
            }
            outstanding.push_back(client.submit(std::move(plan)));
            ++tally.submitted;
        }
        while (!outstanding.empty() &&
               consume(outstanding.front(), -1.0))
            outstanding.pop_front();
    }
    while (!outstanding.empty()) {
        if (consume(outstanding.front(), 5.0))
            outstanding.pop_front();
        else
            break; // service wedged: leave the rest unconsumed
    }
}

const char *
arg_after(int argc, char **argv, const char *flag)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return argv[i + 1];
    return nullptr;
}

bool
has_flag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned tenants =
        arg_after(argc, argv, "--tenants")
            ? unsigned(std::atoi(arg_after(argc, argv, "--tenants")))
            : 3;
    const double seconds =
        arg_after(argc, argv, "--seconds")
            ? std::atof(arg_after(argc, argv, "--seconds"))
            : 2.0;
    const double rate = arg_after(argc, argv, "--rate")
                            ? std::atof(arg_after(argc, argv, "--rate"))
                            : 200.0;
    const double burst = arg_after(argc, argv, "--burst")
                             ? std::atof(arg_after(argc, argv, "--burst"))
                             : 64.0;
    const bool hostile = has_flag(argc, argv, "--hostile");
    const unsigned retries =
        arg_after(argc, argv, "--retries")
            ? unsigned(std::atoi(arg_after(argc, argv, "--retries")))
            : 2;
    const unsigned batch =
        arg_after(argc, argv, "--batch")
            ? unsigned(std::atoi(arg_after(argc, argv, "--batch")))
            : kNumLanes;
    const unsigned threads =
        arg_after(argc, argv, "--threads")
            ? unsigned(std::atoi(arg_after(argc, argv, "--threads")))
            : 0;
    const std::uint64_t seed =
        arg_after(argc, argv, "--seed")
            ? std::strtoull(arg_after(argc, argv, "--seed"), nullptr, 0)
            : 42;
    service::OverflowPolicy policy = service::OverflowPolicy::Shed;
    if (const char *p = arg_after(argc, argv, "--policy")) {
        if (std::strcmp(p, "block") == 0)
            policy = service::OverflowPolicy::Block;
        else if (std::strcmp(p, "degrade") == 0)
            policy = service::OverflowPolicy::Degrade;
    }

    // The shared corpus: trigger-kernel chunks over one pinned arena.
    const Bytes packed = workloads::waveform(200'000, 13);
    const Bytes samples = kernels::samples_from_bits(packed);
    const auto spec = kernels::trigger_kernel_spec(6);
    const auto corpus = runtime::chunk_jobs(
        spec, runtime::ArenaSlice::borrow(samples),
        std::max<std::size_t>(1, ceil_div(samples.size(), kNumLanes)));

    service::ServiceOptions sopts;
    sopts.sched.threads = threads;
    sopts.sched.retry.max_attempts = retries;
    sopts.max_batch_jobs = batch;
    service::Service svc(sopts);

    const unsigned total_tenants = tenants + (hostile ? 1 : 0);
    std::vector<service::ServiceClient> clients;
    for (unsigned i = 0; i < total_tenants; ++i) {
        service::TenantOptions topt;
        const bool is_hostile = hostile && i == total_tenants - 1;
        topt.name = is_hostile ? "hostile" : "tenant" + std::to_string(i);
        topt.rate_jobs_per_s = rate;
        topt.burst = burst;
        topt.overflow = policy;
        clients.push_back(svc.client(svc.register_tenant(topt)));
    }

    std::printf("udpd: %u tenant(s)%s, %.1f jobs/s each, %s overflow, "
                "%.1fs window\n",
                total_tenants, hostile ? " (1 hostile)" : "", rate,
                policy == service::OverflowPolicy::Block     ? "block"
                : policy == service::OverflowPolicy::Degrade ? "degrade"
                                                             : "shed",
                seconds);

    std::vector<TenantTally> tallies(total_tenants);
    std::vector<std::thread> workers;
    for (unsigned i = 0; i < total_tenants; ++i) {
        const bool is_hostile = hostile && i == total_tenants - 1;
        workers.emplace_back(tenant_loop, clients[i], std::cref(corpus),
                             rate, seconds, is_hostile,
                             seed ^ (std::uint64_t(i) << 32),
                             std::ref(tallies[i]));
    }
    for (auto &w : workers)
        w.join();
    svc.drain();

    const auto stats = svc.stats();
    std::printf("\n%-10s %9s %9s %9s %9s %9s %9s %6s\n", "tenant",
                "submitted", "done", "quarant.", "rejected", "expired",
                "cancelled", "trips");
    for (const auto &t : stats.tenants)
        std::printf("%-10s %9llu %9llu %9llu %9llu %9llu %9llu %6llu\n",
                    t.name.c_str(),
                    (unsigned long long)t.submitted,
                    (unsigned long long)t.completed,
                    (unsigned long long)t.quarantined,
                    (unsigned long long)t.rejected_total(),
                    (unsigned long long)t.expired,
                    (unsigned long long)t.cancelled,
                    (unsigned long long)t.breaker_trips);
    std::printf("\nbatches %llu, waves %llu, jobs run %llu, drained %s\n",
                (unsigned long long)stats.batches,
                (unsigned long long)stats.waves,
                (unsigned long long)stats.jobs_run,
                stats.drained ? "yes" : "no");

    if (const char *path = arg_after(argc, argv, "--metrics")) {
        std::ofstream os(path);
        os << svc.prometheus_text();
        std::printf("metrics exposition written to %s\n", path);
    }
    if (const char *path = arg_after(argc, argv, "--json")) {
        std::ofstream os(path);
        os << svc.metrics_json() << "\n";
        std::printf("json dump written to %s\n", path);
    }
    return stats.drained ? 0 : 1;
}
