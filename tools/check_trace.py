#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by
SpanTracer::write_chrome_trace() (src/runtime/spantrace.cpp) or the
core Tracer's write_chrome_trace() (src/core/trace.cpp).

Checks, per docs/OBSERVABILITY.md "Tracing & post-mortems":
  - the file parses as JSON with a traceEvents array;
  - every event has a one-char `ph` from the phases we emit
    (X, i, b, e, M) and integer `pid`/`tid`;
  - non-metadata events carry a finite, non-negative `ts`;
    "X" slices carry a finite, non-negative `dur`;
  - per (pid, tid) track, `ts` is monotone non-decreasing in array
    order (the exporter sorts; Perfetto relies on stable ordering of
    equal timestamps for nesting);
  - "X" slices nest per track: at equal start, enclosing slices come
    first (duration non-increasing), and no slice starts inside a
    prior sibling while ending outside it;
  - nestable async "b"/"e" events balance per (cat, id): every begin
    has one end at ts >= begin, no end without a begin, none left
    open (a job span and its attempt children share one id and nest
    as a stack);
  - metadata events are well-formed process_name/thread_name records.

With --postmortem, FILE is instead a FaultReport JSON written by
write_fault_report_file() (src/runtime/postmortem.cpp) and the schema
of that document is checked.

Usage: check_trace.py FILE [--postmortem]
           [--require-cat CAT]... [--min-events N]
Exit status 0 on success; 1 with a diagnostic on the first failure.
"""

import argparse
import json
import math
import sys

PHASES = {'X', 'i', 'b', 'e', 'M'}


def fail(index, ev, why):
    brief = json.dumps(ev)[:200]
    sys.exit(f"check_trace: event {index}: {why}\n  {brief}")


def check_number(index, ev, key, value):
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        fail(index, ev, f'{key} is not a number')
    if not math.isfinite(value):
        fail(index, ev, f'{key} is not finite')
    if value < 0:
        fail(index, ev, f'{key} is negative')
    return value


def check_trace(events, require_cats, min_events):
    last_ts = {}        # (pid, tid) -> last seen ts
    open_slices = {}    # (pid, tid) -> stack of (start, end)
    open_async = {}     # (cat, id) -> stack of begin ts (nestable)
    cats = set()
    substantive = 0
    for index, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(index, ev, 'event is not an object')
        ph = ev.get('ph')
        if ph not in PHASES:
            fail(index, ev, f'unexpected ph {ph!r}')
        for key in ('pid', 'tid'):
            if not isinstance(ev.get(key), int):
                fail(index, ev, f'{key} missing or not an integer')
        if ph == 'M':
            if ev.get('name') not in ('process_name', 'thread_name'):
                fail(index, ev, 'metadata event with unknown name')
            name = ev.get('args', {}).get('name')
            if not isinstance(name, str) or not name:
                fail(index, ev, 'metadata event without args.name')
            continue

        substantive += 1
        if not isinstance(ev.get('name'), str):
            fail(index, ev, 'name missing or not a string')
        cats.add(ev.get('cat', ''))
        ts = check_number(index, ev, 'ts', ev.get('ts'))
        track = (ev['pid'], ev['tid'])
        if ts < last_ts.get(track, 0):
            fail(index, ev,
                 f'ts {ts} goes backwards on track pid={track[0]} '
                 f'tid={track[1]} (last was {last_ts[track]})')
        last_ts[track] = ts

        if ph == 'X':
            dur = check_number(index, ev, 'dur', ev.get('dur'))
            stack = open_slices.setdefault(track, [])
            # Pop siblings this slice starts after; whatever remains
            # open must fully enclose the new slice.  Timestamps are
            # cycles converted to float microseconds, so adjacent
            # 1-cycle slices differ by ~1e-15 — compare with slack far
            # below one cycle (0.001 us).
            eps = 1e-9
            while stack and stack[-1][1] <= ts + eps:
                stack.pop()
            if stack and ts + dur > stack[-1][1] + eps:
                fail(index, ev,
                     f'slice [{ts}, {ts + dur}] overlaps but does not '
                     f'nest inside open slice {stack[-1]}')
            stack.append((ts, ts + dur))
        elif ph in ('b', 'e'):
            key = (ev.get('cat', ''), ev.get('id'))
            if not isinstance(key[1], str):
                fail(index, ev, 'async event without a string id')
            if ph == 'b':
                open_async.setdefault(key, []).append(ts)
            else:
                stack = open_async.get(key)
                if not stack:
                    fail(index, ev, f'async end without begin for {key}')
                if ts < stack[-1]:
                    fail(index, ev,
                         f'async end before its begin for {key}')
                stack.pop()
                if not stack:
                    del open_async[key]
        else:  # 'i'
            if ev.get('s') not in ('t', 'g', 'p', None):
                fail(index, ev, f"instant scope {ev.get('s')!r} invalid")

    if open_async:
        sys.exit(f'check_trace: {len(open_async)} async span(s) never '
                 f'ended, e.g. {next(iter(open_async))}')
    for cat in require_cats:
        if cat not in cats:
            sys.exit(f'check_trace: required category {cat!r} missing '
                     f'(saw {sorted(c for c in cats if c)})')
    if substantive < min_events:
        sys.exit(f'check_trace: only {substantive} events '
                 f'(need >= {min_events})')
    return substantive, len(last_ts)


def check_string(doc, key, allow_empty=True):
    v = doc.get(key)
    if not isinstance(v, str) or (not allow_empty and not v):
        sys.exit(f'check_trace: postmortem field {key!r} missing or '
                 'not a usable string')
    return v


def check_count(doc, key):
    v = doc.get(key)
    if not isinstance(v, int) or isinstance(v, bool) or v < 0:
        sys.exit(f'check_trace: postmortem field {key!r} missing or '
                 'not a count')
    return v


def check_postmortem(doc):
    if not isinstance(doc, dict):
        sys.exit('check_trace: postmortem document is not an object')
    check_string(doc, 'job', allow_empty=False)
    for key in ('job_index', 'trace_id', 'wave', 'attempt',
                'max_attempts', 'lane', 'queue_wait_cycles',
                'service_cycles', 'dropped_events'):
        check_count(doc, key)
    check_string(doc, 'status', allow_empty=False)
    for key in ('quarantined', 'will_retry'):
        if not isinstance(doc.get(key), bool):
            sys.exit(f'check_trace: postmortem field {key!r} missing '
                     'or not a bool')
    fault = doc.get('fault')
    if not isinstance(fault, dict):
        sys.exit('check_trace: postmortem has no fault object')
    check_string(fault, 'code', allow_empty=False)
    check_string(fault, 'describe', allow_empty=False)
    check_count(fault, 'state_base')
    check_count(fault, 'cycle')
    history = doc.get('attempt_history')
    if not isinstance(history, list):
        sys.exit('check_trace: attempt_history missing or not a list')
    for entry in history:
        check_count(entry, 'wave')
        check_count(entry, 'attempt')
        check_string(entry, 'status', allow_empty=False)
    events = doc.get('recent_events')
    if not isinstance(events, list):
        sys.exit('check_trace: recent_events missing or not a list')
    last = -1
    for entry in events:
        cycle = check_count(entry, 'cycle')
        check_string(entry, 'kind', allow_empty=False)
        if cycle < last:
            sys.exit('check_trace: recent_events cycles not monotone')
        last = cycle
    check_string(doc, 'disassembly', allow_empty=False)
    return len(events), len(history)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument('file')
    ap.add_argument('--postmortem', action='store_true',
                    help='FILE is a FaultReport JSON, not a trace')
    ap.add_argument('--require-cat', action='append', default=[],
                    help='fail unless some event carries this category')
    ap.add_argument('--min-events', type=int, default=1,
                    help='minimum non-metadata event count (default 1)')
    args = ap.parse_args()

    try:
        with open(args.file, encoding='utf-8') as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f'check_trace: {args.file}: {e}')

    if args.postmortem:
        events, history = check_postmortem(doc)
        print(f'check_trace: OK (postmortem, {events} recent events, '
              f'{history} prior attempts)')
        return

    if not isinstance(doc, dict) or \
            not isinstance(doc.get('traceEvents'), list):
        sys.exit('check_trace: no traceEvents array')
    events, tracks = check_trace(doc['traceEvents'],
                                 args.require_cat, args.min_events)
    print(f'check_trace: OK ({events} events on {tracks} tracks)')


if __name__ == '__main__':
    main()
