/**
 * @file
 * Figure 13: CSV file parsing - per-dataset CPU-thread rate vs UDP lane
 * rate, full-UDP throughput, and throughput/watt ratio.
 */
#include "support.hpp"

#include "baselines/csv.hpp"
#include "kernels/csv.hpp"
#include "workloads/generators.hpp"

int
main()
{
    using namespace udp;
    using namespace udp::bench;

    const UdpCostModel cost;
    struct Ds {
        const char *name;
        std::string text;
    };
    const Ds sets[] = {
        {"Crimes-like", workloads::crimes_csv(80)},
        {"Taxi-like", workloads::taxi_csv(70)},
        {"FoodInsp-like", workloads::food_inspection_csv(18)},
    };

    print_header("Figure 13: CSV Parsing",
                 {"dataset", "CPU MB/s", "UDP lane MB/s", "lane/thread",
                  "UDP32 MB/s", "TPut/W ratio"});

    for (const auto &ds : sets) {
        const Bytes data(ds.text.begin(), ds.text.end());
        WorkloadPerf p;
        p.cpu_mbps = time_cpu_mbps(
            [&] { baselines::parse_csv(data); }, data.size());
        Machine m(AddressingMode::Restricted);
        const auto res = kernels::run_csv_kernel(m, 0, data, 0);
        p.udp_lane_mbps = res.stats.rate_mbps();
        p.parallelism = 32; // two-bank windows

        print_row({ds.name, fmt(p.cpu_mbps), fmt(p.udp_lane_mbps),
                   fmt(p.udp_lane_mbps / p.cpu_mbps, 2),
                   fmt(p.udp64_mbps()),
                   fmt(p.perf_watt_ratio(cost), 0)});
    }
    std::printf("\npaper shape: one lane 195-222 MB/s, >4x one thread; "
                ">1000x TPut/W vs CPU\n");
    return 0;
}
