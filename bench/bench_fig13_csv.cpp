/**
 * @file
 * Figure 13: CSV file parsing - per-dataset CPU-thread rate vs UDP lane
 * rate, full-UDP throughput, and throughput/watt ratio.
 *
 * Observability flags (docs/OBSERVABILITY.md):
 *   --json <path>    machine-readable metrics
 *   --trace <path>   merged Chrome trace (shared bench flag; this bench
 *                    additionally instruments the first dataset's probe
 *                    run with the shared lane tracer)
 *   --profile        hot-state / hot-action report for the same run
 */
#include "support.hpp"

#include "assembler/disasm.hpp"
#include "baselines/csv.hpp"
#include "core/profile.hpp"
#include "core/trace.hpp"
#include "kernels/csv.hpp"
#include "workloads/generators.hpp"

#include <cstring>

int
main(int argc, char **argv)
{
    using namespace udp;
    using namespace udp::bench;

    MetricsRecorder rec("bench_fig13_csv", argc, argv);
    bool want_profile = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--profile") == 0)
            want_profile = true;

    const UdpCostModel cost;
    struct Ds {
        const char *name;
        std::string text;
    };
    const Ds sets[] = {
        {"Crimes-like", workloads::crimes_csv(80)},
        {"Taxi-like", workloads::taxi_csv(70)},
        {"FoodInsp-like", workloads::food_inspection_csv(18)},
    };

    print_header("Figure 13: CSV Parsing",
                 {"dataset", "CPU MB/s", "UDP lane MB/s", "lane/thread",
                  "UDP32 MB/s", "TPut/W ratio"});

    Profiler profiler;
    bool first = true;
    for (const auto &ds : sets) {
        const Bytes data(ds.text.begin(), ds.text.end());
        WorkloadPerf p;
        p.name = std::string("CSV ") + ds.name;
        p.cpu_mbps = time_cpu_mbps(
            [&] { baselines::parse_csv(data); }, data.size());
        // Instrument only the first dataset, on a separate machine, so
        // the flags never perturb the reported rates.  The lane tracer
        // is the shared --trace one: its events land in the merged
        // trace MetricsRecorder::finish() writes.
        if (first && (bench_lane_tracer() || want_profile)) {
            Machine probe(AddressingMode::Restricted);
            probe.set_tracer(bench_lane_tracer());
            probe.set_profiler(&profiler);
            kernels::run_csv_kernel(probe, 0, data, 0);
        }
        Machine m(AddressingMode::Restricted);
        const auto res = kernels::run_csv_kernel(m, 0, data, 0);
        p.udp_lane_mbps = res.stats.rate_mbps();
        p.parallelism = 32; // two-bank windows
        attach_sim(p, res.stats);

        print_row({ds.name, fmt(p.cpu_mbps), fmt(p.udp_lane_mbps),
                   fmt(p.udp_lane_mbps / p.cpu_mbps, 2),
                   fmt(p.udp64_mbps()),
                   fmt(p.perf_watt_ratio(cost), 0)});
        rec.add_workload(p);
        first = false;
    }
    std::printf("\npaper shape: one lane 195-222 MB/s, >4x one thread; "
                ">1000x TPut/W vs CPU\n");

    if (want_profile) {
        const Program prog = kernels::csv_parser_program();
        std::printf("\n%s",
                    profiler.report(10, make_state_symbolizer(prog))
                        .c_str());
    }
    return rec.finish();
}
