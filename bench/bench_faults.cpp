/**
 * @file
 * Fault containment and recovery overhead (docs/ROBUSTNESS.md).
 *
 * Three experiments on a 64-job trigger run (one job per lane):
 *
 *  1. Containment: poison one job's program (guaranteed BadDispatch on
 *     first dispatch) and prove the other 63 jobs' results are
 *     byte-identical to a fault-free run — output, accepts, registers
 *     and simulated counters — while the poisoned job quarantines.
 *  2. Transient recovery: arm forced traps on a few jobs for their
 *     first attempt only; the Scheduler's retry waves recover every
 *     job, and the wall-cycle/host-time overhead of recovery is
 *     reported against the clean baseline.
 *  3. Timeout growth: start every job with a starvation cycle budget
 *     and let the RetryPolicy double it per TimedOut attempt until the
 *     run completes.
 *
 * The containment check runs down both interpreter paths (predecoded
 * and legacy).  Flags: --json <path> (standard bench envelope; the
 * per-run fault counters land in workloads[] together with the per-job
 * `latency` block, the experiment scalars in metrics.*), --threads N,
 * --metrics <path> (Prometheus-style text exposition of the telemetry
 * registry, including per-FaultCode retry/quarantine counters;
 * docs/OBSERVABILITY.md), --trace <path> (merged runtime+lane Chrome
 * trace), and --postmortem <dir>: every faulted run — the containment
 * experiment's poisoned victim included — writes a structured
 * FaultReport JSON with the faulting lane's recent trace ring and the
 * trapped state's disassembly ("Tracing & post-mortems").
 */
#include "support.hpp"

#include "core/decoded_program.hpp"
#include "kernels/trigger.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/kernel_spec.hpp"
#include "workloads/generators.hpp"

namespace {

using namespace udp;
using namespace udp::bench;

/// Byte-level equality of everything a job architecturally produced.
bool
same_result(const runtime::JobResult &a, const runtime::JobResult &b)
{
    if (a.status != b.status || !(a.stats == b.stats) ||
        a.regs != b.regs || a.output != b.output ||
        a.extracts != b.extracts || a.accepts.size() != b.accepts.size())
        return false;
    for (std::size_t i = 0; i < a.accepts.size(); ++i)
        if (a.accepts[i].stream_bit_pos != b.accepts[i].stream_bit_pos ||
            a.accepts[i].id != b.accepts[i].id)
            return false;
    return true;
}

/// The 64-job workload every experiment starts from.  `samples` lives
/// in main() across every scheduled run, so the chunks borrow it; a
/// FaultInjector input mutation copy-on-writes a private arena for the
/// poisoned job only.
std::vector<runtime::JobPlan>
make_jobs(const runtime::KernelSpec &spec, const Bytes &samples)
{
    return runtime::chunk_jobs(
        spec, runtime::ArenaSlice::borrow(samples),
        std::max<std::size_t>(1, ceil_div(samples.size(), kNumLanes)));
}

} // namespace

int
main(int argc, char **argv)
{
    MetricsRecorder rec("bench_faults", argc, argv);

    const Bytes packed = workloads::waveform(400'000, 13);
    const Bytes samples = kernels::samples_from_bits(packed);
    const auto spec = kernels::trigger_kernel_spec(6);

    // --- Clean baseline --------------------------------------------------
    const auto clean_jobs = make_jobs(spec, samples);
    runtime::Scheduler clean_sched(sched_options());
    const auto clean = clean_sched.run(clean_jobs);

    WorkloadPerf base;
    base.name = "Trigger (clean)";
    attach_sim(base, clean.total, clean.wall_cycles, clean.waves[0].jobs);
    attach_schedule(base, clean, samples.size());
    rec.add_workload(base);

    // --- 1. Containment: one poisoned program among 64 -------------------
    const std::size_t victim = 17;
    bool contained_both_paths = true;
    for (const bool predecode : {true, false}) {
        set_predecode_enabled(predecode);
        auto jobs = make_jobs(spec, samples);
        // Plans resolve their decoded image at build time; the reference
        // run must use the same path as the poisoned run.
        runtime::Scheduler ref_sched(sched_options());
        const auto ref = ref_sched.run(jobs);

        runtime::FaultInjector inj(0xF01Dull);
        inj.poison_program(jobs[victim]);
        auto opts = sched_options();
        opts.retry.max_attempts = 2; // permanent fault: retries then gives up
        runtime::Scheduler sched(opts);
        const auto rep = sched.run(jobs);

        unsigned identical = 0;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (i == victim)
                continue;
            if (same_result(rep.jobs[i], ref.jobs[i]))
                ++identical;
        }
        const auto &vr = rep.jobs[victim];
        const bool ok = identical == jobs.size() - 1 &&
                        vr.status == LaneStatus::Faulted &&
                        vr.fault.code == FaultCode::BadDispatch &&
                        vr.quarantined && vr.attempts == 2 &&
                        rep.quarantined == 1;
        contained_both_paths = contained_both_paths && ok;

        print_header(std::string("Containment (") +
                         (predecode ? "predecode" : "legacy") + " path)",
                     {"healthy identical", "victim status", "fault",
                      "attempts"});
        print_row({std::to_string(identical) + "/63",
                   std::string(lane_status_name(vr.status)),
                   std::string(fault_code_name(vr.fault.code)),
                   std::to_string(vr.attempts)});
        if (predecode) {
            WorkloadPerf p;
            p.name = "Trigger (1 poisoned / 64)";
            attach_sim(p, rep.total, rep.wall_cycles, rep.waves[0].jobs);
            attach_schedule(p, rep, samples.size());
            rec.add_workload(p);
            // Post-mortem demo: the victim faulted once per attempt, so
            // with --postmortem the scheduler captured one report per
            // faulted run (queryable in memory, serialized to the dir).
            if (!bench_postmortem_dir().empty()) {
                const auto &pms = sched.postmortems();
                std::printf("\npostmortem: %u report(s) in %s "
                            "(victim state @0x%x, %u recent events)\n",
                            unsigned(pms.size()),
                            bench_postmortem_dir().c_str(),
                            pms.empty() ? 0u
                                        : pms.back().fault.state_base,
                            pms.empty()
                                ? 0u
                                : unsigned(pms.back().recent_events.size()));
                rec.add_metric("postmortems_captured",
                               double(pms.size()));
            }
        }
    }
    set_predecode_enabled(true);

    // --- 2. Transient faults: forced traps recovered by retry ------------
    {
        auto jobs = make_jobs(spec, samples);
        runtime::FaultInjector inj(0xBEEFull);
        unsigned injected = 0;
        for (const std::size_t j : {3u, 31u, 60u}) {
            // Trap a few thousand cycles in, first attempt only.
            inj.force_trap(jobs[j], 1000 + inj.next_below(4000),
                           /*attempts=*/1);
            ++injected;
        }
        auto opts = sched_options();
        opts.retry.max_attempts = 3;
        runtime::Scheduler sched(opts);
        const auto rep = sched.run(jobs);

        unsigned recovered = 0;
        for (const auto &jr : rep.jobs)
            if (jr.status == LaneStatus::Done)
                ++recovered;
        const double wall_overhead =
            clean.wall_cycles
                ? double(rep.wall_cycles) / double(clean.wall_cycles)
                : 0;

        print_header("Transient recovery (3 forced traps, retry x3)",
                     {"recovered", "faulted runs", "retries", "waves",
                      "wall overhead"});
        print_row({std::to_string(recovered) + "/64",
                   std::to_string(rep.faulted_runs),
                   std::to_string(rep.retries),
                   std::to_string(unsigned(rep.waves.size())),
                   fmt(wall_overhead, 2) + "x"});

        WorkloadPerf p;
        p.name = "Trigger (3 transient traps)";
        attach_sim(p, rep.total, rep.wall_cycles, rep.waves[0].jobs);
        attach_schedule(p, rep, samples.size());

        print_header("Per-job latency under faults (simulated cycles)",
                     {"metric", "p50", "p99", "max"});
        const auto lat_row = [](const char *name,
                                const runtime::HistogramSnapshot &h) {
            print_row({name, fmt(double(h.percentile(0.50)), 0),
                       fmt(double(h.percentile(0.99)), 0),
                       fmt(double(h.max), 0)});
        };
        lat_row("queue wait", p.latency.queue_wait);
        lat_row("service", p.latency.service);
        lat_row("end-to-end", p.latency.e2e);
        rec.add_workload(p);

        rec.add_metric("transient_injected", injected);
        rec.add_metric("transient_recovered", recovered);
        rec.add_metric("transient_wall_overhead", wall_overhead);
        rec.add_metric("transient_waves", double(rep.waves.size()));
    }

    // --- 3. Timeout recovery: budget growth ------------------------------
    {
        auto jobs = make_jobs(spec, samples);
        auto opts = sched_options();
        // Far below the per-job need; every job times out at least once
        // and the policy doubles the budget per retry.
        opts.max_cycles_per_lane = 1024;
        opts.retry.max_attempts = 16;
        opts.retry.grow_cycle_budget = true;
        runtime::Scheduler sched(opts);
        const auto rep = sched.run(jobs);

        unsigned done = 0, max_attempts = 0;
        for (const auto &jr : rep.jobs) {
            if (jr.status == LaneStatus::Done)
                ++done;
            max_attempts = std::max(max_attempts, jr.attempts);
        }
        print_header("Timeout recovery (budget 1024, doubled per retry)",
                     {"completed", "timeouts", "max attempts", "waves"});
        print_row({std::to_string(done) + "/64",
                   std::to_string(rep.faulted_runs),
                   std::to_string(max_attempts),
                   std::to_string(unsigned(rep.waves.size()))});

        rec.add_metric("timeout_completed", done);
        rec.add_metric("timeout_faulted_runs", rep.faulted_runs);
        rec.add_metric("timeout_max_attempts", max_attempts);
    }

    std::printf("\ncontainment (both interpreter paths): %s\n",
                contained_both_paths ? "OK" : "FAILED");
    rec.add_metric("containment_ok", contained_both_paths ? 1 : 0);
    rec.add_metric("clean_wall_cycles", double(clean.wall_cycles));

    const int rc = rec.finish();
    return contained_both_paths ? rc : 1;
}
