/**
 * @file
 * Figure 19: Snappy compression across the corpus suite (rate varies
 * with entropy, one lane roughly matching one CPU thread).
 */
#include "support.hpp"

#include "baselines/snappy.hpp"
#include "kernels/snappy.hpp"
#include "workloads/generators.hpp"

int
main(int argc, char **argv)
{
    using namespace udp;
    using namespace udp::bench;
    using namespace udp::kernels;

    MetricsRecorder rec("bench_fig19_snappy_comp", argc, argv);
    const UdpCostModel cost;
    static const Program prog = snappy_compress_program();

    print_header("Figure 19: Snappy Compression",
                 {"file", "CPU MB/s", "UDP lane MB/s", "ratio CPU",
                  "ratio UDP", "TPut/W ratio"});

    std::vector<double> ratios;
    for (const auto &f : workloads::corpus_suite(64 * 1024)) {
        const double cpu = time_cpu_mbps(
            [&] { baselines::snappy_compress(f.data); }, f.data.size());
        const Bytes cpu_out = baselines::snappy_compress(f.data);

        const Bytes block(f.data.begin(),
                          f.data.begin() +
                              std::min(f.data.size(), kSnapMaxInput));
        Machine m(AddressingMode::Restricted);
        const auto res = run_snappy_compress(m, 0, prog, block, 0);

        WorkloadPerf p;
        p.name = "snappy_comp " + f.name;
        p.cpu_mbps = cpu;
        p.udp_lane_mbps = res.stats.rate_mbps();
        p.parallelism = 32;
        attach_sim(p, res.stats);
        rec.add_workload(p);
        ratios.push_back(p.perf_watt_ratio(cost));
        print_row(
            {f.name, fmt(cpu), fmt(p.udp_lane_mbps),
             fmt(baselines::compression_ratio(f.data.size(),
                                              cpu_out.size()),
                 2),
             fmt(baselines::compression_ratio(block.size(),
                                              res.data.size()),
                 2),
             fmt(p.perf_watt_ratio(cost), 0)});
    }
    std::printf("\ngeomean TPut/W ratio: %.0fx (paper: 276x; lane rate "
                "70-400 MB/s tracking entropy)\n",
                geomean(ratios));
    rec.add_metric("geomean_tput_per_watt_ratio", geomean(ratios));
    return rec.finish();
}
