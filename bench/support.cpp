/**
 * @file
 * Benchmark support implementation.
 */
#include "support.hpp"

#include "core/metrics_json.hpp"

#include "baselines/csv.hpp"
#include "baselines/dictionary.hpp"
#include "baselines/histogram.hpp"
#include "baselines/huffman.hpp"
#include "baselines/snappy.hpp"
#include "baselines/trigger.hpp"
#include "kernels/csv.hpp"
#include "kernels/dictionary.hpp"
#include "kernels/histogram.hpp"
#include "kernels/huffman.hpp"
#include "kernels/pattern.hpp"
#include "kernels/snappy.hpp"
#include "kernels/trigger.hpp"
#include "workloads/generators.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace udp::bench {

using Clock = std::chrono::steady_clock;
using namespace kernels;

double
time_cpu_mbps(const std::function<void()> &fn, std::size_t bytes,
              int min_reps, double min_seconds)
{
    // Warm-up.
    fn();
    int reps = 0;
    const auto t0 = Clock::now();
    double elapsed = 0;
    do {
        fn();
        ++reps;
        elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
    } while (reps < min_reps || elapsed < min_seconds);
    return double(bytes) * reps / elapsed / 1e6;
}

double
geomean(const std::vector<double> &xs)
{
    double acc = 0;
    std::size_t n = 0;
    for (const double x : xs) {
        if (x > 0) {
            acc += std::log(x);
            ++n;
        }
    }
    return n ? std::exp(acc / double(n)) : 0.0;
}

void
print_header(const std::string &title, const std::vector<std::string> &cols)
{
    std::printf("\n== %s ==\n", title.c_str());
    for (const auto &c : cols)
        std::printf("%-18s", c.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < cols.size(); ++i)
        std::printf("%-18s", "----------------");
    std::printf("\n");
}

void
print_row(const std::vector<std::string> &cells)
{
    for (const auto &c : cells)
        std::printf("%-18s", c.c_str());
    std::printf("\n");
}

std::string
fmt(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

// ---------------------------------------------------------------------------
// Machine-readable metrics (--json).
// ---------------------------------------------------------------------------

void
attach_sim(WorkloadPerf &p, const LaneStats &stats, AddressingMode mode)
{
    attach_sim(p, stats, stats.cycles, 1, mode);
}

void
attach_sim(WorkloadPerf &p, const LaneStats &total, Cycles wall,
           unsigned active_lanes, AddressingMode mode)
{
    p.lane_stats = total;
    p.energy_j =
        run_energy_joules(UdpCostModel{}, total, wall, active_lanes, mode);
}

MetricsRecorder::MetricsRecorder(std::string bench, int argc, char **argv)
    : bench_(std::move(bench))
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --json requires a path\n",
                             bench_.c_str());
                std::exit(2);
            }
            path_ = argv[++i];
        }
    }
}

int
MetricsRecorder::finish() const
{
    if (path_.empty())
        return 0;

    std::ofstream os(path_);
    if (!os) {
        std::fprintf(stderr, "%s: cannot open %s for writing\n",
                     bench_.c_str(), path_.c_str());
        return 1;
    }

    JsonWriter w(os, /*pretty=*/true);
    w.begin_object();
    w.field("bench", bench_);
    w.field("clock_hz", kClockHz);

    LaneStats total;
    double energy_total = 0;
    w.key("workloads");
    w.begin_array();
    for (const auto &p : workloads_) {
        w.begin_object();
        w.field("name", p.name);
        w.field("cpu_mbps", p.cpu_mbps);
        w.field("udp_lane_mbps", p.udp_lane_mbps);
        w.field("parallelism", p.parallelism);
        w.field("udp64_mbps", p.udp64_mbps());
        w.field("speedup_vs_8t", p.speedup_vs_8t());
        w.field("tput_per_watt_ratio", p.perf_watt_ratio(UdpCostModel{}));
        w.field("energy_j", p.energy_j);
        w.key("lane_stats");
        write_lane_stats(w, p.lane_stats);
        w.end_object();
        total.add(p.lane_stats);
        energy_total += p.energy_j;
    }
    w.end_array();

    w.key("lane_stats_total");
    write_lane_stats(w, total);
    w.field("energy_j_total", energy_total);

    w.key("metrics");
    w.begin_object();
    for (const auto &[k, v] : metrics_)
        w.field(k, v);
    w.end_object();

    w.end_object();
    w.done();
    os << "\n";
    if (!os) {
        std::fprintf(stderr, "%s: write to %s failed\n", bench_.c_str(),
                     path_.c_str());
        return 1;
    }
    std::printf("\nmetrics: wrote %s\n", path_.c_str());
    return 0;
}

// ---------------------------------------------------------------------------
// Workload measurements.
// ---------------------------------------------------------------------------

namespace {

/// Simulated single-lane rate of a generic run (bytes over cycles).
double
lane_rate_mbps(const LaneStats &stats)
{
    return stats.rate_mbps();
}

} // namespace

WorkloadPerf
measure_csv_parsing()
{
    WorkloadPerf p;
    p.name = "CSV Parsing";
    const Bytes data = [] {
        const std::string text = workloads::crimes_csv(80);
        return Bytes(text.begin(), text.end());
    }();

    p.cpu_mbps = time_cpu_mbps(
        [&] {
            const auto c = baselines::parse_csv(data);
            if (c.rows == 0)
                throw UdpError("csv bench: empty");
        },
        data.size());

    Machine m(AddressingMode::Restricted);
    const auto res = run_csv_kernel(m, 0, data, 0);
    p.udp_lane_mbps = lane_rate_mbps(res.stats);
    p.parallelism = 32; // two-bank windows (input + field output)
    attach_sim(p, res.stats);
    return p;
}

WorkloadPerf
measure_huffman_encode()
{
    WorkloadPerf p;
    p.name = "Huffman Encoding";
    const Bytes data = workloads::text_corpus(192 * 1024, 0.5, 14);
    const auto code = baselines::build_huffman(data);

    p.cpu_mbps = time_cpu_mbps(
        [&] { baselines::huffman_encode(data, code); }, data.size());

    const Program prog = huffman_encoder(code);
    Machine m(AddressingMode::Restricted);
    Lane &lane = m.lane(0);
    lane.load(prog);
    lane.set_input(data);
    lane.run();
    p.udp_lane_mbps = lane_rate_mbps(lane.stats());
    attach_sim(p, lane.stats());
    return p;
}

WorkloadPerf
measure_huffman_decode()
{
    WorkloadPerf p;
    p.name = "Huffman Decoding";
    const Bytes data = workloads::text_corpus(192 * 1024, 0.5, 15);
    const auto code = baselines::build_huffman(data);
    Bytes enc = baselines::huffman_encode(data, code);

    p.cpu_mbps = time_cpu_mbps(
        [&] { baselines::huffman_decode(enc, data.size(), code); },
        enc.size());

    enc.push_back(0);
    enc.push_back(0);
    const auto k = huffman_decoder(code, VarSymDesign::SsRef);
    Machine m(AddressingMode::Restricted);
    Lane &lane = m.lane(0);
    lane.load(k.program);
    lane.set_input(enc);
    lane.run();
    p.udp_lane_mbps = lane_rate_mbps(lane.stats());
    p.parallelism = std::min(64u, achievable_parallelism(k.code_bytes));
    attach_sim(p, lane.stats());
    return p;
}

WorkloadPerf
measure_pattern_matching(bool complex_set)
{
    WorkloadPerf p;
    p.name = complex_set ? "Pattern Match (complex)"
                         : "Pattern Match (simple)";
    const auto pats = workloads::nids_patterns(48, complex_set);
    const Bytes payload = workloads::packet_payloads(256 * 1024, pats);

    // CPU: combined-pattern DFA table walk (the paper used Boost with a
    // single merged pattern; a table DFA is the stronger baseline).
    std::vector<std::unique_ptr<RegexNode>> storage;
    std::vector<const RegexNode *> asts;
    for (const auto &pat : pats) {
        storage.push_back(parse_regex(pat));
        asts.push_back(storage.back().get());
    }
    const Dfa dfa = minimize(determinize(build_multi_nfa(asts)));
    p.cpu_mbps = time_cpu_mbps([&] { dfa.count_matches(payload); },
                               payload.size());

    // UDP: patterns partitioned over 8 groups, aDFA model (Section 5.3).
    const auto groups =
        pattern_groups(pats,
        complex_set ? FaModel::Nfa : FaModel::Adfa,
        complex_set ? 16 : 8);
    Machine m(AddressingMode::Restricted);
    Cycles max_cycles = 0;
    std::uint64_t bytes = 0;
    LaneStats group_total;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        Lane &lane = m.lane(static_cast<unsigned>(g));
        lane.load(groups[g].program);
        lane.set_input(payload);
        if (groups[g].nfa_mode)
            lane.run_nfa();
        else
            lane.run();
        max_cycles = std::max(max_cycles, lane.stats().cycles);
        bytes += payload.size();
        group_total.add(lane.stats());
    }
    // Each group scans the whole stream; the partitioned set behaves as
    // one lane handling the stream at the slowest group's rate.
    p.udp_lane_mbps =
        double(payload.size()) / (double(max_cycles) / kClockHz) / 1e6;
    attach_sim(p, group_total, max_cycles,
               static_cast<unsigned>(groups.size()));
    return p;
}

WorkloadPerf
measure_dictionary(bool rle)
{
    WorkloadPerf p;
    p.name = rle ? "Dictionary-RLE" : "Dictionary";
    const auto rows = rle ? workloads::runny_attribute(60000, 48, 6.0)
                          : workloads::zipf_attribute(60000, 48);
    const Bytes input = dict_input(rows);

    if (rle) {
        p.cpu_mbps = time_cpu_mbps(
            [&] { baselines::dictionary_rle_encode(rows); }, input.size());
    } else {
        p.cpu_mbps = time_cpu_mbps(
            [&] { baselines::dictionary_encode(rows); }, input.size());
    }

    const auto base = baselines::dictionary_encode(rows);
    const Program prog = rle ? dictionary_rle_program(base.dict)
                             : dictionary_program(base.dict);
    Machine m(AddressingMode::Restricted);
    const auto res = run_dict_kernel(m, 0, prog, input, rle);
    p.udp_lane_mbps = lane_rate_mbps(res.stats);
    attach_sim(p, res.stats);
    return p;
}

WorkloadPerf
measure_histogram()
{
    WorkloadPerf p;
    p.name = "Histogram";
    const auto xs = workloads::fp_values(100'000, 0);
    auto h = baselines::Histogram::uniform(10, 41.2, 42.5);

    p.cpu_mbps = time_cpu_mbps(
        [&] {
            auto hh = h;
            hh.add_all(xs);
        },
        xs.size() * 8);

    const Program prog = histogram_program(h.edges());
    const Bytes packed = pack_fp_stream(xs);
    Machine m(AddressingMode::Restricted);
    const auto res = run_histogram_kernel(m, 0, prog, packed, 10, 0);
    p.udp_lane_mbps = lane_rate_mbps(res.stats);
    attach_sim(p, res.stats);
    return p;
}

WorkloadPerf
measure_snappy_compress()
{
    WorkloadPerf p;
    p.name = "Compression (Snappy)";
    const Bytes big = workloads::text_corpus(512 * 1024, 0.5, 16);
    p.cpu_mbps = time_cpu_mbps([&] { baselines::snappy_compress(big); },
                               big.size());

    static const Program prog = snappy_compress_program();
    const Bytes block = workloads::text_corpus(kSnapMaxInput, 0.5, 16);
    Machine m(AddressingMode::Restricted);
    const auto res = run_snappy_compress(m, 0, prog, block, 0);
    p.udp_lane_mbps = lane_rate_mbps(res.stats);
    p.parallelism = 32; // two-bank windows (input + hash table)
    attach_sim(p, res.stats);
    return p;
}

WorkloadPerf
measure_snappy_decompress()
{
    WorkloadPerf p;
    p.name = "Decompression (Snappy)";
    const Bytes big = workloads::text_corpus(512 * 1024, 0.5, 17);
    const Bytes comp_big = baselines::snappy_compress(big);
    p.cpu_mbps = time_cpu_mbps(
        [&] { baselines::snappy_decompress(comp_big); }, comp_big.size());

    static const Program prog = snappy_decompress_program();
    const Bytes block = workloads::text_corpus(12 * 1024, 0.5, 17);
    const Bytes comp = baselines::snappy_compress(block);
    std::size_t pos = 0;
    while (comp[pos] & 0x80)
        ++pos;
    ++pos;
    Machine m(AddressingMode::Restricted);
    const auto res = run_snappy_decompress(
        m, 0, prog, BytesView(comp).subspan(pos, comp.size() - pos), 0);
    p.udp_lane_mbps = lane_rate_mbps(res.stats);
    p.parallelism = 32; // two-bank windows (input + output)
    attach_sim(p, res.stats);
    return p;
}

WorkloadPerf
measure_trigger()
{
    WorkloadPerf p;
    p.name = "Signal Triggering";
    const Bytes packed = workloads::waveform(400'000, 13);
    const Bytes samples = samples_from_bits(packed);

    const baselines::PulseTrigger trig(6);
    p.cpu_mbps = time_cpu_mbps(
        [&] { trig.count_triggers_lut4(packed); }, samples.size());

    const Program prog = trigger_program(6);
    Machine m(AddressingMode::Restricted);
    Lane &lane = m.lane(0);
    lane.load(prog);
    lane.set_input(samples);
    lane.run();
    p.udp_lane_mbps = lane_rate_mbps(lane.stats());
    attach_sim(p, lane.stats());
    return p;
}

std::vector<WorkloadPerf>
measure_all()
{
    return {
        measure_csv_parsing(),      measure_huffman_encode(),
        measure_huffman_decode(),   measure_pattern_matching(false),
        measure_dictionary(false),  measure_dictionary(true),
        measure_histogram(),        measure_snappy_compress(),
        measure_snappy_decompress(), measure_trigger(),
    };
}

} // namespace udp::bench
