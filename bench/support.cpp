/**
 * @file
 * Benchmark support implementation.
 */
#include "support.hpp"

#include "core/decoded_program.hpp"
#include "core/metrics_json.hpp"

#include "baselines/csv.hpp"
#include "baselines/dictionary.hpp"
#include "baselines/histogram.hpp"
#include "baselines/huffman.hpp"
#include "baselines/snappy.hpp"
#include "baselines/trigger.hpp"
#include "kernels/csv.hpp"
#include "kernels/dictionary.hpp"
#include "kernels/histogram.hpp"
#include "kernels/huffman.hpp"
#include "kernels/pattern.hpp"
#include "kernels/snappy.hpp"
#include "kernels/trigger.hpp"
#include "runtime/executor.hpp"
#include "runtime/kernel_spec.hpp"
#include "workloads/generators.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace udp::bench {

using Clock = std::chrono::steady_clock;
using namespace kernels;

double
time_cpu_mbps(const std::function<void()> &fn, std::size_t bytes,
              int min_reps, double min_seconds)
{
    // Warm-up.
    fn();
    int reps = 0;
    const auto t0 = Clock::now();
    double elapsed = 0;
    do {
        fn();
        ++reps;
        elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
    } while (reps < min_reps || elapsed < min_seconds);
    return double(bytes) * reps / elapsed / 1e6;
}

double
geomean(const std::vector<double> &xs)
{
    double acc = 0;
    std::size_t n = 0;
    for (const double x : xs) {
        if (x > 0) {
            acc += std::log(x);
            ++n;
        }
    }
    return n ? std::exp(acc / double(n)) : 0.0;
}

void
print_header(const std::string &title, const std::vector<std::string> &cols)
{
    std::printf("\n== %s ==\n", title.c_str());
    for (const auto &c : cols)
        std::printf("%-18s", c.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < cols.size(); ++i)
        std::printf("%-18s", "----------------");
    std::printf("\n");
}

void
print_row(const std::vector<std::string> &cells)
{
    for (const auto &c : cells)
        std::printf("%-18s", c.c_str());
    std::printf("\n");
}

std::string
fmt(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

// ---------------------------------------------------------------------------
// Machine-readable metrics (--json).
// ---------------------------------------------------------------------------

namespace {

unsigned g_sim_threads = 0;
runtime::TelemetrySink *g_telemetry = nullptr;
runtime::SpanTracer *g_spans = nullptr;
runtime::FlightRecorder *g_recorder = nullptr;
Tracer *g_lane_tracer = nullptr;
std::string g_postmortem_dir;

/// Lane micro-event ring per lane for --trace.  Modest on purpose: the
/// Scheduler absorbs (and the SpanTracer caps) per wave, so a deep ring
/// only buys memory.
constexpr std::size_t kBenchTraceRing = 4096;

} // namespace

void
set_sim_threads(unsigned n)
{
    g_sim_threads = n;
}

unsigned
sim_threads_option()
{
    return g_sim_threads;
}

runtime::TelemetrySink *
bench_telemetry()
{
    return g_telemetry;
}

void
set_bench_telemetry(runtime::TelemetrySink *sink)
{
    g_telemetry = sink;
}

runtime::SpanTracer *
bench_spans()
{
    return g_spans;
}

runtime::FlightRecorder *
bench_recorder()
{
    return g_recorder;
}

Tracer *
bench_lane_tracer()
{
    return g_lane_tracer;
}

const std::string &
bench_postmortem_dir()
{
    return g_postmortem_dir;
}

runtime::SchedulerOptions
sched_options()
{
    runtime::SchedulerOptions opts;
    opts.threads = g_sim_threads;
    opts.telemetry = g_telemetry;
    opts.spans = g_spans;
    opts.recorder = g_recorder;
    opts.lane_tracer = g_lane_tracer;
    opts.postmortem.dir = g_postmortem_dir;
    if (!g_postmortem_dir.empty())
        opts.postmortem.keep_last = 16;
    return opts;
}

void
attach_schedule(WorkloadPerf &p, const runtime::ScheduleReport &rep,
                std::uint64_t bytes)
{
    p.udp64_real_mbps =
        bytes_per_second(bytes, rep.wall_cycles) / 1e6;
    p.waves = static_cast<unsigned>(rep.waves.size());
    p.sim_threads = rep.sim_threads;
    p.sim_host_seconds = rep.host_seconds;
    p.sim_host_mbps = rep.host_seconds > 0
                          ? double(bytes) / rep.host_seconds / 1e6
                          : 0;
    p.faulted_runs = rep.faulted_runs;
    p.retries = rep.retries;
    p.quarantined = rep.quarantined;
    p.latency = runtime::summarize_job_latencies(rep.jobs);
}

void
attach_sim(WorkloadPerf &p, const LaneStats &stats, AddressingMode mode)
{
    attach_sim(p, stats, stats.cycles, 1, mode);
}

void
attach_sim(WorkloadPerf &p, const LaneStats &total, Cycles wall,
           unsigned active_lanes, AddressingMode mode)
{
    p.lane_stats = total;
    p.energy_j =
        run_energy_joules(UdpCostModel{}, total, wall, active_lanes, mode);
}

MetricsRecorder::MetricsRecorder(std::string bench, int argc, char **argv)
    : bench_(std::move(bench)), sink_(registry_)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --json requires a path\n",
                             bench_.c_str());
                std::exit(2);
            }
            path_ = argv[++i];
        } else if (std::strcmp(argv[i], "--metrics") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --metrics requires a path\n",
                             bench_.c_str());
                std::exit(2);
            }
            metrics_path_ = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --threads requires a count\n",
                             bench_.c_str());
                std::exit(2);
            }
            const long n = std::strtol(argv[++i], nullptr, 10);
            if (n < 1 || n > 256) {
                std::fprintf(stderr, "%s: --threads wants 1..256\n",
                             bench_.c_str());
                std::exit(2);
            }
            set_sim_threads(static_cast<unsigned>(n));
        } else if (std::strcmp(argv[i], "--trace") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --trace requires a path\n",
                             bench_.c_str());
                std::exit(2);
            }
            trace_path_ = argv[++i];
        } else if (std::strcmp(argv[i], "--postmortem") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --postmortem requires a dir\n",
                             bench_.c_str());
                std::exit(2);
            }
            postmortem_dir_ = argv[++i];
        }
    }
    // Attach the registry sink to every sched_options() Scheduler only
    // when asked for — the default run stays telemetry-free.
    if (!metrics_path_.empty())
        set_bench_telemetry(&sink_);
    if (!trace_path_.empty()) {
        lane_tracer_ = std::make_unique<Tracer>(kBenchTraceRing);
        spans_ = std::make_unique<runtime::SpanTracer>();
        recorder_ = std::make_unique<runtime::FlightRecorder>();
        g_lane_tracer = lane_tracer_.get();
        g_spans = spans_.get();
        g_recorder = recorder_.get();
    }
    g_postmortem_dir = postmortem_dir_;
}

MetricsRecorder::~MetricsRecorder()
{
    if (bench_telemetry() == &sink_)
        set_bench_telemetry(nullptr);
    if (g_spans == spans_.get())
        g_spans = nullptr;
    if (g_recorder == recorder_.get())
        g_recorder = nullptr;
    if (g_lane_tracer == lane_tracer_.get())
        g_lane_tracer = nullptr;
    g_postmortem_dir.clear();
}

int
MetricsRecorder::finish() const
{
    if (!trace_path_.empty() && spans_) {
        // A bench may have driven a Machine directly with the shared
        // lane tracer (outside any Scheduler); lay those leftover
        // events out after everything already on the timeline before
        // exporting.
        if (lane_tracer_) {
            spans_->begin_schedule(0);
            spans_->absorb_lane_events(*lane_tracer_, 0);
            lane_tracer_->clear();
        }
        if (!spans_->write_file(trace_path_)) {
            std::fprintf(stderr, "%s: cannot write trace %s\n",
                         bench_.c_str(), trace_path_.c_str());
            return 1;
        }
        std::printf("\ntrace: wrote %s\n", trace_path_.c_str());
    }
    if (!metrics_path_.empty()) {
        std::ofstream os(metrics_path_);
        if (!os) {
            std::fprintf(stderr, "%s: cannot open %s for writing\n",
                         bench_.c_str(), metrics_path_.c_str());
            return 1;
        }
        os << registry_.prometheus_text();
        if (!os) {
            std::fprintf(stderr, "%s: write to %s failed\n",
                         bench_.c_str(), metrics_path_.c_str());
            return 1;
        }
        std::printf("\nmetrics: wrote %s\n", metrics_path_.c_str());
    }
    if (path_.empty())
        return 0;

    std::ofstream os(path_);
    if (!os) {
        std::fprintf(stderr, "%s: cannot open %s for writing\n",
                     bench_.c_str(), path_.c_str());
        return 1;
    }

    JsonWriter w(os, /*pretty=*/true);
    w.begin_object();
    w.field("bench", bench_);
    w.field("clock_hz", kClockHz);
    {
        // Resolve exactly as the simulation backend does (--threads has
        // already been folded into the bench option; else env/serial).
        Machine probe(AddressingMode::Restricted);
        probe.set_sim_threads(sim_threads_option());
        w.field("sim_threads", probe.resolved_sim_threads());
    }
    // Which interpreter tier produced these host-time numbers
    // (docs/PERFORMANCE.md; simulated counters are tier-independent).
    // `predecode` is the legacy boolean alias of the same toggle.
    w.field("predecode", predecode_enabled());
    w.field("backend", std::string(sim_backend_name(sim_backend())));

    LaneStats total;
    double energy_total = 0;
    unsigned faulted_total = 0, retries_total = 0, quarantined_total = 0;
    w.key("workloads");
    w.begin_array();
    for (const auto &p : workloads_) {
        w.begin_object();
        w.field("name", p.name);
        w.field("cpu_mbps", p.cpu_mbps);
        w.field("udp_lane_mbps", p.udp_lane_mbps);
        w.field("parallelism", p.parallelism);
        w.field("udp64_mbps", p.udp64_mbps());
        w.field("udp64_real_mbps", p.udp64_real_mbps);
        w.field("waves", p.waves);
        w.field("sim_threads", p.sim_threads);
        w.field("sim_host_seconds", p.sim_host_seconds);
        w.field("sim_host_mbps", p.sim_host_mbps);
        w.field("faulted_runs", p.faulted_runs);
        w.field("retries", p.retries);
        w.field("quarantined", p.quarantined);
        w.field("speedup_vs_8t", p.speedup_vs_8t());
        w.field("speedup_real_vs_8t", p.speedup_real_vs_8t());
        w.field("tput_per_watt_ratio", p.perf_watt_ratio(UdpCostModel{}));
        w.field("energy_j", p.energy_j);
        // Per-job latency distribution of the scheduled run, simulated
        // cycles (absent when the bench never ran the wave scheduler).
        if (p.latency.service.count > 0) {
            w.key("latency");
            w.begin_object();
            w.key("queue_wait_cycles");
            runtime::write_histogram_json(w, p.latency.queue_wait);
            w.key("service_cycles");
            runtime::write_histogram_json(w, p.latency.service);
            w.key("e2e_cycles");
            runtime::write_histogram_json(w, p.latency.e2e);
            w.end_object();
        }
        w.key("lane_stats");
        write_lane_stats(w, p.lane_stats);
        w.end_object();
        total.add(p.lane_stats);
        energy_total += p.energy_j;
        faulted_total += p.faulted_runs;
        retries_total += p.retries;
        quarantined_total += p.quarantined;
    }
    w.end_array();

    w.key("lane_stats_total");
    write_lane_stats(w, total);
    w.field("energy_j_total", energy_total);
    w.field("faulted_runs_total", faulted_total);
    w.field("retries_total", retries_total);
    w.field("quarantined_total", quarantined_total);

    w.key("metrics");
    w.begin_object();
    for (const auto &[k, v] : metrics_)
        w.field(k, v);
    w.end_object();

    w.end_object();
    w.done();
    os << "\n";
    if (!os) {
        std::fprintf(stderr, "%s: write to %s failed\n", bench_.c_str(),
                     path_.c_str());
        return 1;
    }
    std::printf("\nmetrics: wrote %s\n", path_.c_str());
    return 0;
}

// ---------------------------------------------------------------------------
// Workload measurements.
// ---------------------------------------------------------------------------

namespace {

/// Simulated single-lane rate of a generic run (bytes over cycles).
double
lane_rate_mbps(const LaneStats &stats)
{
    return stats.rate_mbps();
}

} // namespace

WorkloadPerf
measure_csv_parsing()
{
    WorkloadPerf p;
    p.name = "CSV Parsing";
    const Bytes data = [] {
        const std::string text = workloads::crimes_csv(80);
        return Bytes(text.begin(), text.end());
    }();

    p.cpu_mbps = time_cpu_mbps(
        [&] {
            const auto c = baselines::parse_csv(data);
            if (c.rows == 0)
                throw UdpError("csv bench: empty");
        },
        data.size());

    Machine m(AddressingMode::Restricted);
    const auto res = run_csv_kernel(m, 0, data, 0);
    p.udp_lane_mbps = lane_rate_mbps(res.stats);
    p.parallelism = 32; // two-bank windows (input + field output)
    attach_sim(p, res.stats);

    // Full machine: the same text row-chunked over all 32 two-bank
    // windows and run through the wave scheduler.  `data` outlives the
    // run, so the chunks borrow it — no per-chunk copies.
    const auto jobs = runtime::chunk_jobs(
        csv_kernel_spec(), runtime::ArenaSlice::borrow(data),
        std::max<std::size_t>(1, ceil_div(data.size(), 32)),
        runtime::align_after_delim('\n'));
    runtime::Scheduler sched(sched_options());
    attach_schedule(p, sched.run(jobs), data.size());
    return p;
}

WorkloadPerf
measure_huffman_encode()
{
    WorkloadPerf p;
    p.name = "Huffman Encoding";
    const Bytes data = workloads::text_corpus(192 * 1024, 0.5, 14);
    const auto code = baselines::build_huffman(data);

    p.cpu_mbps = time_cpu_mbps(
        [&] { baselines::huffman_encode(data, code); }, data.size());

    const auto spec = huffman_encoder_spec(code);
    Machine m(AddressingMode::Restricted);
    const auto res = runtime::run_job_on(m, 0, 0, spec.make_job(data));
    p.udp_lane_mbps = lane_rate_mbps(res.stats);
    attach_sim(p, res.stats);

    // Full machine: byte-chunk the corpus over all 64 lanes (borrowed:
    // `data` outlives the run).
    const auto jobs = runtime::chunk_jobs(
        spec, runtime::ArenaSlice::borrow(data),
        std::max<std::size_t>(1, ceil_div(data.size(), 64)));
    runtime::Scheduler sched(sched_options());
    attach_schedule(p, sched.run(jobs), data.size());
    return p;
}

WorkloadPerf
measure_huffman_decode()
{
    WorkloadPerf p;
    p.name = "Huffman Decoding";
    const Bytes data = workloads::text_corpus(192 * 1024, 0.5, 15);
    const auto code = baselines::build_huffman(data);
    Bytes enc = baselines::huffman_encode(data, code);

    p.cpu_mbps = time_cpu_mbps(
        [&] { baselines::huffman_decode(enc, data.size(), code); },
        enc.size());

    enc.push_back(0);
    enc.push_back(0);
    const auto spec = huffman_decoder_spec(code, VarSymDesign::SsRef);
    Machine m(AddressingMode::Restricted);
    const auto res =
        runtime::run_job_on(m, 0, 0, spec.make_job(std::move(enc)));
    p.udp_lane_mbps = lane_rate_mbps(res.stats);
    const auto window_banks =
        static_cast<unsigned>(ceil_div(spec.window_bytes, kBankBytes));
    p.parallelism = std::min(64u, kNumBanks / window_banks);
    attach_sim(p, res.stats);

    // Full machine: codes are bit-packed, so chunk the *plaintext* into
    // one piece per achievable window and encode each independently.
    std::vector<runtime::JobPlan> jobs;
    std::uint64_t sched_bytes = 0;
    const std::size_t piece =
        std::max<std::size_t>(1, ceil_div(data.size(), p.parallelism));
    for (std::size_t off = 0; off < data.size(); off += piece) {
        const std::size_t n = std::min(piece, data.size() - off);
        Bytes e = baselines::huffman_encode(
            BytesView(data).subspan(off, n), code);
        sched_bytes += e.size();
        e.push_back(0);
        e.push_back(0);
        jobs.push_back(spec.make_job(std::move(e)));
    }
    runtime::Scheduler sched(sched_options());
    attach_schedule(p, sched.run(jobs), sched_bytes);
    return p;
}

WorkloadPerf
measure_pattern_matching(bool complex_set)
{
    WorkloadPerf p;
    p.name = complex_set ? "Pattern Match (complex)"
                         : "Pattern Match (simple)";
    const auto pats = workloads::nids_patterns(48, complex_set);
    const Bytes payload = workloads::packet_payloads(256 * 1024, pats);

    // CPU: combined-pattern DFA table walk (the paper used Boost with a
    // single merged pattern; a table DFA is the stronger baseline).
    std::vector<std::unique_ptr<RegexNode>> storage;
    std::vector<const RegexNode *> asts;
    for (const auto &pat : pats) {
        storage.push_back(parse_regex(pat));
        asts.push_back(storage.back().get());
    }
    const Dfa dfa = minimize(determinize(build_multi_nfa(asts)));
    p.cpu_mbps = time_cpu_mbps([&] { dfa.count_matches(payload); },
                               payload.size());

    // UDP: patterns partitioned over 8 groups, aDFA model (Section 5.3).
    // One job per group over the full stream; the wave wall is the
    // slowest group, i.e. the partitioned set's effective lane rate.
    const auto specs = pattern_group_specs(
        pats, complex_set ? FaModel::Nfa : FaModel::Adfa,
        complex_set ? 16 : 8);
    // Every group scans the same payload: one borrowed arena, N pins —
    // the payload used to be copied once per group here.
    const auto payload_arena = runtime::ArenaSlice::borrow(payload);
    std::vector<runtime::JobPlan> set_jobs;
    for (const auto &s : specs)
        set_jobs.push_back(s.make_job(payload_arena));
    runtime::Scheduler sched(sched_options());
    const auto set_rep = sched.run(set_jobs);
    p.udp_lane_mbps =
        bytes_per_second(payload.size(), set_rep.wall_cycles) / 1e6;
    attach_sim(p, set_rep.total, set_rep.wall_cycles,
               static_cast<unsigned>(specs.size()));

    // Full machine: replicate the group set across the 64 lanes, each
    // replica scanning its own slice of the stream.
    const std::size_t sets =
        std::max<std::size_t>(1, kNumLanes / specs.size());
    const std::size_t piece =
        std::max<std::size_t>(1, ceil_div(payload.size(), sets));
    std::vector<runtime::JobPlan> jobs;
    for (std::size_t off = 0; off < payload.size(); off += piece) {
        const std::size_t n = std::min(piece, payload.size() - off);
        for (const auto &s : specs)
            jobs.push_back(s.make_job(payload_arena.subslice(off, n)));
    }
    attach_schedule(p, sched.run(jobs), payload.size());
    return p;
}

WorkloadPerf
measure_dictionary(bool rle)
{
    WorkloadPerf p;
    p.name = rle ? "Dictionary-RLE" : "Dictionary";
    const auto rows = rle ? workloads::runny_attribute(60000, 48, 6.0)
                          : workloads::zipf_attribute(60000, 48);
    const Bytes input = dict_input(rows);

    if (rle) {
        p.cpu_mbps = time_cpu_mbps(
            [&] { baselines::dictionary_rle_encode(rows); }, input.size());
    } else {
        p.cpu_mbps = time_cpu_mbps(
            [&] { baselines::dictionary_encode(rows); }, input.size());
    }

    const auto base = baselines::dictionary_encode(rows);
    const auto spec = dictionary_kernel_spec(base.dict, rle);
    Machine m(AddressingMode::Restricted);
    const auto res = runtime::run_job_on(m, 0, 0, spec.make_job(input));
    p.udp_lane_mbps = lane_rate_mbps(res.stats);
    attach_sim(p, res.stats);

    // Full machine: split the column row-wise into one slice per lane
    // (every slice gets its own end-of-stream sentinel).
    const std::size_t group =
        std::max<std::size_t>(1, ceil_div(rows.size(), 64));
    std::vector<runtime::JobPlan> jobs;
    std::uint64_t sched_bytes = 0;
    for (std::size_t r = 0; r < rows.size(); r += group) {
        const std::vector<std::string> slice(
            rows.begin() + r,
            rows.begin() + r + std::min(group, rows.size() - r));
        Bytes in = dict_input(slice);
        sched_bytes += in.size();
        jobs.push_back(spec.make_job(std::move(in)));
    }
    runtime::Scheduler sched(sched_options());
    attach_schedule(p, sched.run(jobs), sched_bytes);
    return p;
}

WorkloadPerf
measure_histogram()
{
    WorkloadPerf p;
    p.name = "Histogram";
    const auto xs = workloads::fp_values(100'000, 0);
    auto h = baselines::Histogram::uniform(10, 41.2, 42.5);

    p.cpu_mbps = time_cpu_mbps(
        [&] {
            auto hh = h;
            hh.add_all(xs);
        },
        xs.size() * 8);

    const auto spec = histogram_kernel_spec(h.edges());
    const Bytes packed = pack_fp_stream(xs);
    Machine m(AddressingMode::Restricted);
    const auto res = runtime::run_job_on(m, 0, 0, spec.make_job(packed));
    p.udp_lane_mbps = lane_rate_mbps(res.stats);
    attach_sim(p, res.stats);

    // Full machine: shard the packed stream (8 bytes per value) over
    // all 64 lanes; each lane fills its own bin table.
    const std::size_t values = packed.size() / 8;
    const std::size_t shard =
        std::max<std::size_t>(1, ceil_div(values, 64)) * 8;
    const auto jobs = runtime::chunk_jobs(
        spec, runtime::ArenaSlice::borrow(packed), shard);
    runtime::Scheduler sched(sched_options());
    attach_schedule(p, sched.run(jobs), packed.size());
    return p;
}

WorkloadPerf
measure_snappy_compress()
{
    WorkloadPerf p;
    p.name = "Compression (Snappy)";
    const Bytes big = workloads::text_corpus(512 * 1024, 0.5, 16);
    p.cpu_mbps = time_cpu_mbps([&] { baselines::snappy_compress(big); },
                               big.size());

    const auto spec = snappy_compress_spec();
    const Bytes block = workloads::text_corpus(kSnapMaxInput, 0.5, 16);
    Machine m(AddressingMode::Restricted);
    const auto res = runtime::run_job_on(m, 0, 0, spec.make_job(block));
    p.udp_lane_mbps = lane_rate_mbps(res.stats);
    p.parallelism = 32; // two-bank windows (input + hash table)
    attach_sim(p, res.stats);

    // Full machine: block-chunk the 512 KiB corpus; 33 max-size blocks
    // over 32 two-bank windows makes this a two-wave run.
    const auto jobs = runtime::chunk_jobs(
        spec, runtime::ArenaSlice::borrow(big), kSnapMaxInput);
    runtime::Scheduler sched(sched_options());
    attach_schedule(p, sched.run(jobs), big.size());
    return p;
}

WorkloadPerf
measure_snappy_decompress()
{
    WorkloadPerf p;
    p.name = "Decompression (Snappy)";
    const Bytes big = workloads::text_corpus(512 * 1024, 0.5, 17);
    const Bytes comp_big = baselines::snappy_compress(big);
    p.cpu_mbps = time_cpu_mbps(
        [&] { baselines::snappy_decompress(comp_big); }, comp_big.size());

    const auto spec = snappy_decompress_spec();
    const auto strip_varint = [](const Bytes &comp) {
        std::size_t pos = 0;
        while (comp[pos] & 0x80)
            ++pos;
        ++pos;
        return Bytes(comp.begin() + pos, comp.end());
    };
    const Bytes block = workloads::text_corpus(12 * 1024, 0.5, 17);
    Machine m(AddressingMode::Restricted);
    const auto res = runtime::run_job_on(
        m, 0, 0, spec.make_job(strip_varint(
                     baselines::snappy_compress(block))));
    p.udp_lane_mbps = lane_rate_mbps(res.stats);
    p.parallelism = 32; // two-bank windows (input + output)
    attach_sim(p, res.stats);

    // Full machine: compress the 512 KiB corpus in 12 KiB frames (one
    // decompression job per frame; ~43 jobs over 32 windows -> 2 waves).
    std::vector<runtime::JobPlan> jobs;
    std::uint64_t sched_bytes = 0;
    for (std::size_t off = 0; off < big.size(); off += 12 * 1024) {
        const std::size_t n = std::min<std::size_t>(12 * 1024,
                                                    big.size() - off);
        Bytes in = strip_varint(baselines::snappy_compress(
            BytesView(big).subspan(off, n)));
        sched_bytes += in.size();
        jobs.push_back(spec.make_job(std::move(in)));
    }
    runtime::Scheduler sched(sched_options());
    attach_schedule(p, sched.run(jobs), sched_bytes);
    return p;
}

WorkloadPerf
measure_trigger()
{
    WorkloadPerf p;
    p.name = "Signal Triggering";
    const Bytes packed = workloads::waveform(400'000, 13);
    const Bytes samples = samples_from_bits(packed);

    const baselines::PulseTrigger trig(6);
    p.cpu_mbps = time_cpu_mbps(
        [&] { trig.count_triggers_lut4(packed); }, samples.size());

    const auto spec = trigger_kernel_spec(6);
    Machine m(AddressingMode::Restricted);
    const auto res = runtime::run_job_on(m, 0, 0, spec.make_job(samples));
    p.udp_lane_mbps = lane_rate_mbps(res.stats);
    attach_sim(p, res.stats);

    // Full machine: sample-chunk the waveform over all 64 lanes.
    const auto jobs = runtime::chunk_jobs(
        spec, runtime::ArenaSlice::borrow(samples),
        std::max<std::size_t>(1, ceil_div(samples.size(), 64)));
    runtime::Scheduler sched(sched_options());
    attach_schedule(p, sched.run(jobs), samples.size());
    return p;
}

std::vector<WorkloadPerf>
measure_all()
{
    return {
        measure_csv_parsing(),      measure_huffman_encode(),
        measure_huffman_decode(),   measure_pattern_matching(false),
        measure_dictionary(false),  measure_dictionary(true),
        measure_histogram(),        measure_snappy_compress(),
        measure_snappy_decompress(), measure_trigger(),
    };
}

} // namespace udp::bench
