/**
 * @file
 * Figure 20: Snappy decompression across the corpus suite.
 */
#include "support.hpp"

#include "baselines/snappy.hpp"
#include "kernels/snappy.hpp"
#include "workloads/generators.hpp"

int
main(int argc, char **argv)
{
    using namespace udp;
    using namespace udp::bench;
    using namespace udp::kernels;

    MetricsRecorder rec("bench_fig20_snappy_decomp", argc, argv);
    const UdpCostModel cost;
    static const Program prog = snappy_decompress_program();

    print_header("Figure 20: Snappy Decompression",
                 {"file", "CPU MB/s", "UDP lane MB/s", "lane/thread",
                  "TPut/W ratio"});

    std::vector<double> ratios;
    for (const auto &f : workloads::corpus_suite(64 * 1024)) {
        const Bytes comp = baselines::snappy_compress(f.data);
        const double cpu = time_cpu_mbps(
            [&] { baselines::snappy_decompress(comp); }, comp.size());

        const Bytes block(f.data.begin(),
                          f.data.begin() +
                              std::min(f.data.size(), std::size_t{12288}));
        const Bytes bcomp = baselines::snappy_compress(block);
        std::size_t pos = 0;
        while (bcomp[pos] & 0x80)
            ++pos;
        ++pos;
        Machine m(AddressingMode::Restricted);
        const auto res = run_snappy_decompress(
            m, 0, prog, BytesView(bcomp).subspan(pos, bcomp.size() - pos),
            0);

        WorkloadPerf p;
        p.name = "snappy_decomp " + f.name;
        p.cpu_mbps = cpu;
        p.udp_lane_mbps = res.stats.rate_mbps();
        p.parallelism = 32;
        attach_sim(p, res.stats);
        rec.add_workload(p);
        ratios.push_back(p.perf_watt_ratio(cost));
        print_row({f.name, fmt(cpu), fmt(p.udp_lane_mbps),
                   fmt(p.udp_lane_mbps / cpu, 2),
                   fmt(p.perf_watt_ratio(cost), 0)});
    }
    std::printf("\ngeomean TPut/W ratio: %.0fx (paper: 327x; lane "
                "400-1450 MB/s, parity with one thread)\n",
                geomean(ratios));
    rec.add_metric("geomean_tput_per_watt_ratio", geomean(ratios));

    // Whole-machine aggregate: 512 KiB in 12 KiB frames waved over the
    // 32 two-bank windows (a real multi-wave scheduled run).
    const auto agg = measure_snappy_decompress();
    rec.add_workload(agg);
    std::printf("\n64-lane scheduled run: %.1f MB/s real vs %.1f MB/s "
                "extrapolated, %u waves, simulated on %u host thread(s) "
                "in %.1f ms\n",
                agg.udp64_real_mbps, agg.udp64_mbps(), agg.waves,
                agg.sim_threads, agg.sim_host_seconds * 1e3);
    return rec.finish();
}
