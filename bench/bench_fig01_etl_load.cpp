/**
 * @file
 * Figure 1: loading compressed CSV into the (mini) database across
 * scale factors - total load time (1a) and CPU-vs-IO split (1b) - plus
 * the UDP-offload counterpoint the paper motivates.
 */
#include "support.hpp"

#include "etl/loader.hpp"

int
main(int argc, char **argv)
{
    using namespace udp;
    using namespace udp::bench;
    using namespace udp::etl;

    MetricsRecorder rec("bench_fig01_etl_load", argc, argv);
    print_header("Figure 1a: ETL load time by scale factor "
                 "(rows = SF x 6000; paper SF x 6M)",
                 {"SF", "csv MB", "load s", "decomp s", "parse s",
                  "deser s", "io s"});

    std::vector<double> cpu_fracs;
    for (const double sf : {0.5, 1.0, 2.0, 4.0}) {
        const std::string csv = lineitem_csv(sf);
        const Bytes comp = compress_for_load(csv);
        Table t("lineitem", lineitem_schema());
        const LoadBreakdown bd = load_cpu(comp, t);
        cpu_fracs.push_back(bd.cpu_seconds() / bd.total_seconds());
        rec.add_metric("cpu_fraction_sf_" + fmt(sf, 1),
                       cpu_fracs.back());
        print_row({fmt(sf, 1), fmt(double(bd.csv_bytes) / 1e6, 2),
                   fmt(bd.total_seconds(), 3), fmt(bd.decompress, 3),
                   fmt(bd.parse, 3), fmt(bd.deserialize, 3),
                   fmt(bd.io, 4)});
    }

    print_header("Figure 1b: CPU vs IO fraction of wall-clock",
                 {"SF", "CPU %", "IO %"});
    int i = 0;
    for (const double sf : {0.5, 1.0, 2.0, 4.0}) {
        print_row({fmt(sf, 1), fmt(100 * cpu_fracs[i], 2),
                   fmt(100 * (1 - cpu_fracs[i]), 2)});
        ++i;
    }

    // The motivation payoff: offload decompress+parse to UDP lanes.
    const std::string csv = lineitem_csv(1.0);
    const Bytes comp = compress_for_load(csv);
    Table t1("lineitem", lineitem_schema());
    const LoadBreakdown cpu_bd = load_cpu(comp, t1);
    Machine m(AddressingMode::Restricted);
    Table t2("lineitem", lineitem_schema());
    const LoadBreakdown udp_bd = load_udp_offload(m, comp, t2, 32);

    print_header("UDP offload of decompress+parse (SF 1.0, 32 lanes)",
                 {"pipeline", "decomp s", "parse s", "deser s",
                  "accelerable s"});
    print_row({"CPU", fmt(cpu_bd.decompress, 4), fmt(cpu_bd.parse, 4),
               fmt(cpu_bd.deserialize, 4),
               fmt(cpu_bd.decompress + cpu_bd.parse, 4)});
    print_row({"UDP offload", fmt(udp_bd.decompress, 4),
               fmt(udp_bd.parse, 4), fmt(udp_bd.deserialize, 4),
               fmt(udp_bd.decompress + udp_bd.parse, 4)});
    std::printf("\npaper shape: >99.5%% of load wall-clock is CPU "
                "transformation, not IO\n");
    rec.add_metric("cpu_accelerable_s", cpu_bd.decompress + cpu_bd.parse);
    rec.add_metric("udp_accelerable_s", udp_bd.decompress + udp_bd.parse);
    return rec.finish();
}
