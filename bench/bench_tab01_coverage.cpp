/**
 * @file
 * Table 1: algorithm-coverage matrix of accelerators vs UDP - printed
 * with a *programmatic* verification column: this repository actually
 * builds and runs a UDP program for each capability it claims.
 */
#include "support.hpp"

#include "baselines/dictionary.hpp"
#include "baselines/huffman.hpp"
#include "kernels/csv.hpp"
#include "kernels/dictionary.hpp"
#include "kernels/histogram.hpp"
#include "kernels/huffman.hpp"
#include "kernels/pattern.hpp"
#include "kernels/snappy.hpp"
#include "workloads/generators.hpp"

int
main(int argc, char **argv)
{
    using namespace udp;
    using namespace udp::bench;
    using namespace udp::kernels;

    MetricsRecorder rec("bench_tab01_coverage", argc, argv);

    // Verify each claimed UDP capability by building the program.
    unsigned passed = 0, total = 0;
    auto check = [&](const char *name, auto &&fn) {
        ++total;
        try {
            fn();
            std::printf("  [ok] %s\n", name);
            ++passed;
            return true;
        } catch (const std::exception &e) {
            std::printf("  [FAIL] %s: %s\n", name, e.what());
            return false;
        }
    };

    std::printf("UDP capability self-check (programs built and laid "
                "out):\n");
    const Bytes text = workloads::text_corpus(4096, 0.5);
    const auto code = baselines::build_huffman(text);
    check("compression (Snappy comp+decomp)", [] {
        snappy_compress_program();
        snappy_decompress_program();
    });
    check("encoding: RLE + dictionary", [] {
        const auto rows = workloads::zipf_attribute(200, 10);
        const auto d = baselines::dictionary_encode(rows);
        dictionary_program(d.dict);
        dictionary_rle_program(d.dict);
    });
    check("encoding: Huffman (all 4 symbol designs)", [&] {
        for (const auto v : {VarSymDesign::SsF, VarSymDesign::SsT,
                             VarSymDesign::SsReg, VarSymDesign::SsRef})
            huffman_decoder(code, v);
        huffman_encoder(code);
    });
    check("parsing: CSV", [] { csv_parser_program(); });
    check("pattern matching: DFA/aDFA/NFA", [] {
        const auto pats = workloads::nids_patterns(8, true);
        pattern_groups(pats, FaModel::Dfa, 1);
        pattern_groups(pats, FaModel::Adfa, 1);
        pattern_groups(pats, FaModel::Nfa, 1);
    });
    check("histogram: fixed + variable bins", [] {
        histogram_program({0, 1, 2, 3});
        histogram_program({0, 0.1, 0.5, 2.5});
    });

    print_header("Table 1: coverage (paper matrix)",
                 {"accelerator", "compress", "encode", "parse",
                  "pattern", "histogram"});
    print_row({"UDP (this repo)", "all listed", "all listed", "CSV/...",
               "all FA models", "all listed"});
    print_row({"UAP", "-", "-", "-", "all FA models", "-"});
    print_row({"Intel 89xx", "DEFLATE", "-", "-", "-", "-"});
    print_row({"MS Xpress FPGA", "Xpress", "-", "-", "-", "-"});
    print_row({"Oracle DAX", "-", "RLE/Huff/Pack", "-", "-", "-"});
    print_row({"IBM PowerEN", "DEFLATE", "-", "XML", "DFA/D2FA", "-"});
    print_row({"Cadence TIE", "-", "-", "-", "-", "fixed bins"});
    print_row({"ETH FPGA hist", "-", "-", "-", "-", "all listed"});
    rec.add_metric("capability_checks_passed", passed);
    rec.add_metric("capability_checks_total", total);
    return rec.finish();
}
