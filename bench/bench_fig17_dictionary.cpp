/**
 * @file
 * Figure 17: dictionary and dictionary-RLE encoding on Zipf attribute
 * columns (Crimes.Arrest / District / LocationDescription-like).
 */
#include "support.hpp"

#include "baselines/dictionary.hpp"
#include "kernels/dictionary.hpp"
#include "workloads/generators.hpp"

int
main(int argc, char **argv)
{
    using namespace udp;
    using namespace udp::bench;
    using namespace udp::kernels;

    MetricsRecorder rec("bench_fig17_dictionary", argc, argv);
    const UdpCostModel cost;
    print_header("Figure 17: Dictionary / Dictionary-RLE",
                 {"attribute", "mode", "CPU MB/s", "UDP lane MB/s",
                  "lane/thread", "TPut/W ratio"});

    struct Attr {
        const char *name;
        std::size_t cardinality;
        double run;
    };
    const Attr attrs[] = {
        {"Arrest-like", 2, 3.0},
        {"District-like", 25, 4.0},
        {"LocationDesc-like", 120, 8.0},
    };

    for (const auto &a : attrs) {
        for (const bool rle : {false, true}) {
            const auto rows =
                rle ? workloads::runny_attribute(50000, a.cardinality,
                                                 a.run)
                    : workloads::zipf_attribute(50000, a.cardinality);
            const Bytes input = dict_input(rows);

            double cpu;
            if (rle)
                cpu = time_cpu_mbps(
                    [&] { baselines::dictionary_rle_encode(rows); },
                    input.size());
            else
                cpu = time_cpu_mbps(
                    [&] { baselines::dictionary_encode(rows); },
                    input.size());

            const auto base = baselines::dictionary_encode(rows);
            const Program prog = rle
                                     ? dictionary_rle_program(base.dict)
                                     : dictionary_program(base.dict);
            Machine m(AddressingMode::Restricted);
            const auto res = run_dict_kernel(m, 0, prog, input, rle);

            WorkloadPerf p;
            p.name = std::string(a.name) +
                     (rle ? " dict-RLE" : " dict");
            p.cpu_mbps = cpu;
            p.udp_lane_mbps = res.stats.rate_mbps();
            attach_sim(p, res.stats);
            rec.add_workload(p);
            print_row({a.name, rle ? "dict-RLE" : "dict", fmt(cpu),
                       fmt(p.udp_lane_mbps),
                       fmt(p.udp_lane_mbps / cpu, 2),
                       fmt(p.perf_watt_ratio(cost), 0)});
        }
    }
    std::printf("\npaper shape: ~6x rate per lane; >4190x (RLE) / "
                ">4440x (dict) TPut/W\n");
    return rec.finish();
}
