/**
 * @file
 * Figure 8: the four variable-size-symbol designs (SsF / SsT / SsReg /
 * SsRef) on Huffman decoding (dynamic symbol sizes) and histogram
 * (compile-time static sizes): single-lane rate (8a) and code-size-
 * limited 64-lane throughput (8b).
 */
#include "support.hpp"

#include "baselines/huffman.hpp"
#include "kernels/histogram.hpp"
#include "kernels/huffman.hpp"
#include "workloads/generators.hpp"

int
main(int argc, char **argv)
{
    using namespace udp;
    using namespace udp::bench;
    using namespace udp::kernels;

    MetricsRecorder rec("bench_fig08_varsym", argc, argv);

    // --- Huffman decoding ------------------------------------------------
    const Bytes data = workloads::text_corpus(96 * 1024, 0.5, 21);
    const auto code = baselines::build_huffman(data);
    Bytes enc = baselines::huffman_encode(data, code);
    enc.push_back(0);
    enc.push_back(0);

    print_header("Figure 8a/8b: Huffman decoding (dynamic symbol size)",
                 {"design", "lane MB/s", "code KB", "lanes",
                  "64-lane-class MB/s"});

    for (const auto d : {VarSymDesign::SsF, VarSymDesign::SsT,
                         VarSymDesign::SsReg, VarSymDesign::SsRef}) {
        const auto k = huffman_decoder(code, d, 64);
        Machine m(AddressingMode::Restricted);
        Lane &lane = m.lane(0);
        if (!k.lut.empty())
            m.stage(0, k.lut);
        lane.load(k.program);
        lane.set_input(enc);
        lane.set_window_base(0);
        for (const auto &[r, v] : k.init_regs)
            lane.set_reg(r, v);
        lane.run();
        double rate = lane.stats().rate_mbps();
        if (d == VarSymDesign::SsT)
            rate /= 1.15; // wider transitions stretch the critical path
        const unsigned lanes =
            std::min(64u, achievable_parallelism(k.code_bytes));
        print_row({std::string(var_sym_name(d)), fmt(rate),
                   fmt(double(k.code_bytes) / 1024.0),
                   std::to_string(lanes), fmt(rate * lanes)});
        WorkloadPerf p;
        p.name = "huffdec " + std::string(var_sym_name(d));
        p.udp_lane_mbps = rate;
        p.parallelism = lanes;
        attach_sim(p, lane.stats());
        rec.add_workload(p);
    }

    // --- Histogram (static symbol size) -----------------------------------
    // SsF forces byte-wide scanning (16x bigger fan-out per state); the
    // register/refill designs use the natural 4-bit dividers automaton.
    const auto xs = workloads::fp_values(60'000, 0);
    auto h = baselines::Histogram::uniform(10, 41.2, 42.5);
    const Bytes packed = pack_fp_stream(xs);

    print_header("Figure 8 (histogram, static symbol size)",
                 {"design", "lane MB/s", "code KB", "lanes",
                  "64-lane-class MB/s"});

    // 4-bit automaton shared by SsT/SsReg/SsRef (static width => no
    // runtime Setss cost differences).
    const Program p4 = histogram_program(h.edges());
    Machine m(AddressingMode::Restricted);
    {
        const auto res = run_histogram_kernel(m, 0, p4, packed, 10, 0);
        const double rate = res.stats.rate_mbps();
        const std::size_t bytes = p4.layout.code_bytes();
        const unsigned lanes =
            std::min(64u, achievable_parallelism(bytes));
        for (const char *name : {"SsT", "SsReg", "SsRef"})
            print_row({name, fmt(rate), fmt(double(bytes) / 1024.0),
                       std::to_string(lanes), fmt(rate * lanes)});
    }
    // SsF approximation: byte-wide dividers automaton = the same state
    // structure with 16x the labeled fan-out per state (two nibbles per
    // dispatch), i.e. ~2x rate at ~16x dispatch-table footprint.
    {
        const auto res = run_histogram_kernel(m, 0, p4, packed, 10, 0);
        const double rate = 2.0 * res.stats.rate_mbps();
        const std::size_t bytes = p4.layout.dispatch_words * 16 * 4 +
                                  p4.layout.action_words * 4;
        const unsigned lanes =
            std::min(64u, achievable_parallelism(bytes));
        print_row({"SsF", fmt(rate), fmt(double(bytes) / 1024.0),
                   std::to_string(lanes), fmt(rate * lanes)});
    }
    std::printf("\npaper shape: SsF fastest per lane but code-size "
                "explosion caps parallelism; SsReg/SsRef keep full 64-way "
                "throughput\n");
    return rec.finish();
}
