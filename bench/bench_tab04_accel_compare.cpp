/**
 * @file
 * Table 4: UDP vs specialized accelerators - our *measured* UDP
 * throughput against the *published* accelerator numbers the paper
 * cites (which are constants here: we cannot re-run an 89xx chipset or
 * PowerEN), plus the Table 5 UAP-vs-UDP feature summary.
 */
#include "support.hpp"

int
main(int argc, char **argv)
{
    using namespace udp;
    using namespace udp::bench;

    MetricsRecorder rec("bench_tab04_accel_compare", argc, argv);
    const UdpCostModel cost;

    // Measured UDP sides.
    const auto pat = measure_pattern_matching(false);
    const auto rex = measure_pattern_matching(true);
    const auto comp = measure_snappy_compress();
    const auto deco = measure_snappy_decompress();
    const auto csv = measure_csv_parsing();
    for (const auto &p : {pat, rex, comp, deco, csv})
        rec.add_workload(p);

    struct Row {
        const char *accel;
        const char *algo;
        double accel_gbps;   ///< published
        double accel_watts;  ///< published
        double udp_gbps;     ///< ours, measured
    };
    const double udp_w = cost.system_power_w();
    const Row rows[] = {
        {"UAP", "string match (aDFA)", 38.0, 0.56,
         pat.udp64_mbps() / 1000.0},
        {"UAP", "regex match (NFA)", 15.0, 0.56,
         rex.udp64_mbps() / 1000.0},
        {"Intel 89xx", "DEFLATE vs Snappy comp", 1.4, 0.20,
         comp.udp64_mbps() / 1000.0},
        {"MS Xpress FPGA", "Xpress vs Snappy comp", 5.6, 0.0,
         comp.udp64_mbps() / 1000.0},
        {"PowerEN XML", "XML vs CSV parse", 1.5, 1.95,
         csv.udp64_mbps() / 1000.0},
        {"PowerEN Comp", "DEFLATE vs Snappy comp", 1.0, 0.30,
         comp.udp64_mbps() / 1000.0},
        {"PowerEN Decomp", "INFLATE vs Snappy decomp", 1.0, 0.30,
         deco.udp64_mbps() / 1000.0},
        {"PowerEN RegX", "string match", 5.0, 1.95,
         pat.udp64_mbps() / 1000.0},
        {"PowerEN RegX", "regex match", 5.0, 1.95,
         rex.udp64_mbps() / 1000.0},
    };

    print_header("Table 4: UDP vs specialized accelerators",
                 {"accelerator", "algorithm", "accel GB/s",
                  "UDP rel perf", "UDP rel power eff"});
    for (const auto &r : rows) {
        const double rel = r.udp_gbps / r.accel_gbps;
        std::string eff = "-";
        if (r.accel_watts > 0) {
            const double e = (r.udp_gbps / udp_w) /
                             (r.accel_gbps / r.accel_watts);
            eff = fmt(e, 2);
        }
        print_row({r.accel, r.algo, fmt(r.accel_gbps, 1), fmt(rel, 2),
                   eff});
        rec.add_metric(std::string(r.accel) + " " + r.algo +
                           " rel_perf",
                       rel);
    }
    std::printf("\npaper shape: relative perf 0.4x-13x, relative "
                "efficiency 0.32x-9.8x (accelerator numbers are "
                "published constants)\n");

    print_header("Table 5: UAP vs UDP features",
                 {"dimension", "UAP", "UDP (this repo)"});
    print_row({"transitions", "stream only", "control + stream driven"});
    print_row({"symbol", "8-bit fixed", "size register (1-8,16,32)"});
    print_row({"dispatch source", "stream buffer",
               "stream buffer + data register"});
    print_row({"addressing", "single fixed bank",
               "multi-bank windows per lane"});
    print_row({"actions", "logic/bit-field",
               "rich arithmetic + memory ops"});
    return rec.finish();
}
