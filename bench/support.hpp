/**
 * @file
 * Shared benchmark support: CPU wall-clock measurement, UDP simulation
 * harnesses per workload, and table printing.
 *
 * Methodology mirrors the paper's Section 4.4:
 *  - "CPU thread" numbers are measured wall-clock on the host (a laptop-
 *    class core, not the paper's Xeon E5620 - absolute rates shift).
 *  - "8-thread CPU" is single-thread x8, the paper's own optimistic
 *    scaling assumption.
 *  - UDP rates come from the cycle-accurate simulation at 1 GHz; 64-lane
 *    throughput is lane rate x achievable parallelism (code-size bound).
 *  - Power: UDP system 0.864 W, CPU TDP 80 W (Table 3).
 */
#pragma once

#include "core/energy.hpp"
#include "core/machine.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/spantrace.hpp"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace udp::bench {

/// Measured performance of one workload.
struct WorkloadPerf {
    std::string name;
    double cpu_mbps = 0;       ///< one CPU thread, measured
    double udp_lane_mbps = 0;  ///< one UDP lane, simulated
    unsigned parallelism = 64; ///< lanes the program footprint allows
    LaneStats lane_stats;      ///< simulated lane counters (summed)
    double energy_j = 0;       ///< modeled energy of the simulated run

    // Full-machine run: the same total input chunked over the lanes and
    // executed through the wave Scheduler (docs/RUNTIME.md).
    double udp64_real_mbps = 0; ///< measured from the scheduled run
    unsigned waves = 0;         ///< scheduler waves of that run
    unsigned sim_threads = 0;   ///< host threads used to simulate it
    double sim_host_seconds = 0; ///< host wall-clock of the simulation
    double sim_host_mbps = 0;   ///< host simulation rate (input/host time)

    // Fault containment counters of the scheduled run
    // (docs/ROBUSTNESS.md); all zero on a healthy run.
    unsigned faulted_runs = 0; ///< job runs ending Faulted/TimedOut
    unsigned retries = 0;      ///< faulted runs requeued per RetryPolicy
    unsigned quarantined = 0;  ///< jobs given up on after max_attempts

    // Per-job latency distributions of the scheduled run (simulated
    // cycles; docs/OBSERVABILITY.md "latency" block).  Empty (count 0)
    // in benches that never run the wave scheduler.
    runtime::JobLatencySummary latency;

    /// Extrapolated 64-lane rate: lane rate x achievable parallelism.
    double udp64_mbps() const { return udp_lane_mbps * parallelism; }
    double speedup_vs_8t() const {
        return cpu_mbps > 0 ? udp64_mbps() / (8 * cpu_mbps) : 0;
    }
    double speedup_real_vs_8t() const {
        return cpu_mbps > 0 && udp64_real_mbps > 0
                   ? udp64_real_mbps / (8 * cpu_mbps)
                   : 0;
    }
    double perf_watt_ratio(const UdpCostModel &m) const {
        const double udp = udp64_mbps() / m.system_power_w();
        const double cpu = 8 * cpu_mbps / m.cpu_tdp_w;
        return cpu > 0 ? udp / cpu : 0;
    }
};

/**
 * Host simulation threads every bench Scheduler run uses.  0 (default)
 * defers to the machine (UDP_SIM_THREADS env, else serial).  Set from
 * `--threads N` by MetricsRecorder before any workload runs.
 */
void set_sim_threads(unsigned n);
unsigned sim_threads_option();

/**
 * The bench-wide telemetry sink (telemetry.hpp), attached to every
 * Scheduler via sched_options().  nullptr unless `--metrics <path>`
 * was given, preserving the zero-overhead default.
 */
runtime::TelemetrySink *bench_telemetry();
void set_bench_telemetry(runtime::TelemetrySink *sink);

/**
 * The bench-wide span tracer / flight recorder / lane tracer
 * (spantrace.hpp, core/trace.hpp), attached to every Scheduler via
 * sched_options().  All nullptr unless `--trace <path>` was given
 * (same zero-overhead default as --metrics).  Benches that drive a
 * Machine directly (outside the Scheduler) attach `bench_lane_tracer()`
 * themselves; MetricsRecorder::finish() absorbs whatever is left in
 * its rings before writing the merged trace file.
 */
runtime::SpanTracer *bench_spans();
runtime::FlightRecorder *bench_recorder();
Tracer *bench_lane_tracer();

/// The --postmortem directory ("" when the flag was absent).
const std::string &bench_postmortem_dir();

/// Scheduler options every bench run starts from (threads, telemetry,
/// span tracing and post-mortem capture prefilled from the flags).
runtime::SchedulerOptions sched_options();

/// Record a scheduled multi-lane run on `p`: real 64-lane throughput
/// over `bytes` of input, wave count, and host simulation cost.
void attach_schedule(WorkloadPerf &p, const runtime::ScheduleReport &rep,
                     std::uint64_t bytes);

/// Record simulated counters + modeled energy on `p` (single-lane run).
void attach_sim(WorkloadPerf &p, const LaneStats &stats,
                AddressingMode mode = AddressingMode::Restricted);

/// Multi-lane variant: `total` summed over lanes, `wall` the machine time.
void attach_sim(WorkloadPerf &p, const LaneStats &total, Cycles wall,
                unsigned active_lanes,
                AddressingMode mode = AddressingMode::Restricted);

/**
 * Machine-readable benchmark output (`--json <path>`).
 *
 * Every bench main constructs one from argv, feeds it the workloads /
 * scalar metrics it prints, and returns `finish()` as its exit code.
 * Without `--json` on the command line this is a no-op.  The schema is
 * documented in docs/OBSERVABILITY.md.
 *
 * Also parses `--threads N` (host simulation threads, see
 * set_sim_threads) — the resolved count lands in the JSON as the
 * top-level `sim_threads` field — and `--metrics <path>`: a
 * MetricRegistry + RegistryTelemetry sink is attached to every
 * Scheduler the bench runs (via sched_options()) and `finish()` dumps
 * the full registry as a Prometheus-style text exposition at <path>
 * (docs/OBSERVABILITY.md; validated by tools/check_exposition.py).
 *
 * `--trace <path>` attaches a SpanTracer + FlightRecorder + lane
 * Tracer to every Scheduler and `finish()` writes the merged
 * runtime+lane Chrome trace there (validated by tools/check_trace.py).
 * `--postmortem <dir>` enables post-mortem capture: every faulted run
 * writes a structured FaultReport JSON into <dir>
 * (docs/OBSERVABILITY.md "Tracing & post-mortems").
 */
class MetricsRecorder
{
  public:
    MetricsRecorder(std::string bench, int argc, char **argv);
    ~MetricsRecorder();

    bool enabled() const { return !path_.empty(); }
    const std::string &path() const { return path_; }

    void add_workload(const WorkloadPerf &p) { workloads_.push_back(p); }
    void add_metric(const std::string &key, double value) {
        metrics_.emplace_back(key, value);
    }

    /// The registry behind --metrics (always usable; only attached to
    /// schedulers and dumped when --metrics was given).
    runtime::MetricRegistry &registry() { return registry_; }

    /// Write the JSON/exposition files for the flags that were given.
    /// Returns a main() exit code.
    int finish() const;

  private:
    std::string bench_;
    std::string path_;
    std::string metrics_path_;   ///< --metrics exposition dump
    std::string trace_path_;     ///< --trace merged Chrome trace
    std::string postmortem_dir_; ///< --postmortem report directory
    std::vector<WorkloadPerf> workloads_;
    std::vector<std::pair<std::string, double>> metrics_;
    runtime::MetricRegistry registry_;
    runtime::RegistryTelemetry sink_;
    // --trace machinery, created only when the flag is present.
    std::unique_ptr<Tracer> lane_tracer_;
    std::unique_ptr<runtime::SpanTracer> spans_;
    std::unique_ptr<runtime::FlightRecorder> recorder_;
};

/// Wall-clock MB/s of `fn` over `bytes` of input (repeats for stability).
double time_cpu_mbps(const std::function<void()> &fn, std::size_t bytes,
                     int min_reps = 3, double min_seconds = 0.05);

/// Geometric mean of positive values.
double geomean(const std::vector<double> &xs);

/// Simple fixed-width table printer.
void print_header(const std::string &title,
                  const std::vector<std::string> &cols);
void print_row(const std::vector<std::string> &cells);
std::string fmt(double v, int prec = 1);

// --- Per-workload measurement (used by Figs 13-22 and Table 4) ------------
// Each runs the CPU baseline (measured) and the UDP kernel (simulated)
// on the same synthetic dataset and returns both rates.

WorkloadPerf measure_csv_parsing();
WorkloadPerf measure_huffman_encode();
WorkloadPerf measure_huffman_decode();
WorkloadPerf measure_pattern_matching(bool complex_set);
WorkloadPerf measure_dictionary(bool rle);
WorkloadPerf measure_histogram();
WorkloadPerf measure_snappy_compress();
WorkloadPerf measure_snappy_decompress();
WorkloadPerf measure_trigger();

/// All nine headline workloads (Fig 21/22 order).
std::vector<WorkloadPerf> measure_all();

} // namespace udp::bench
