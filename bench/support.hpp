/**
 * @file
 * Shared benchmark support: CPU wall-clock measurement, UDP simulation
 * harnesses per workload, and table printing.
 *
 * Methodology mirrors the paper's Section 4.4:
 *  - "CPU thread" numbers are measured wall-clock on the host (a laptop-
 *    class core, not the paper's Xeon E5620 - absolute rates shift).
 *  - "8-thread CPU" is single-thread x8, the paper's own optimistic
 *    scaling assumption.
 *  - UDP rates come from the cycle-accurate simulation at 1 GHz; 64-lane
 *    throughput is lane rate x achievable parallelism (code-size bound).
 *  - Power: UDP system 0.864 W, CPU TDP 80 W (Table 3).
 */
#pragma once

#include "core/energy.hpp"
#include "core/machine.hpp"

#include <functional>
#include <string>
#include <vector>

namespace udp::bench {

/// Measured performance of one workload.
struct WorkloadPerf {
    std::string name;
    double cpu_mbps = 0;       ///< one CPU thread, measured
    double udp_lane_mbps = 0;  ///< one UDP lane, simulated
    unsigned parallelism = 64; ///< lanes the program footprint allows
    LaneStats lane_stats;      ///< simulated lane counters (summed)
    double energy_j = 0;       ///< modeled energy of the simulated run

    double udp64_mbps() const { return udp_lane_mbps * parallelism; }
    double speedup_vs_8t() const {
        return cpu_mbps > 0 ? udp64_mbps() / (8 * cpu_mbps) : 0;
    }
    double perf_watt_ratio(const UdpCostModel &m) const {
        const double udp = udp64_mbps() / m.system_power_w();
        const double cpu = 8 * cpu_mbps / m.cpu_tdp_w;
        return cpu > 0 ? udp / cpu : 0;
    }
};

/// Record simulated counters + modeled energy on `p` (single-lane run).
void attach_sim(WorkloadPerf &p, const LaneStats &stats,
                AddressingMode mode = AddressingMode::Restricted);

/// Multi-lane variant: `total` summed over lanes, `wall` the machine time.
void attach_sim(WorkloadPerf &p, const LaneStats &total, Cycles wall,
                unsigned active_lanes,
                AddressingMode mode = AddressingMode::Restricted);

/**
 * Machine-readable benchmark output (`--json <path>`).
 *
 * Every bench main constructs one from argv, feeds it the workloads /
 * scalar metrics it prints, and returns `finish()` as its exit code.
 * Without `--json` on the command line this is a no-op.  The schema is
 * documented in docs/OBSERVABILITY.md.
 */
class MetricsRecorder
{
  public:
    MetricsRecorder(std::string bench, int argc, char **argv);

    bool enabled() const { return !path_.empty(); }
    const std::string &path() const { return path_; }

    void add_workload(const WorkloadPerf &p) { workloads_.push_back(p); }
    void add_metric(const std::string &key, double value) {
        metrics_.emplace_back(key, value);
    }

    /// Write the JSON file if --json was given. Returns a main() exit code.
    int finish() const;

  private:
    std::string bench_;
    std::string path_;
    std::vector<WorkloadPerf> workloads_;
    std::vector<std::pair<std::string, double>> metrics_;
};

/// Wall-clock MB/s of `fn` over `bytes` of input (repeats for stability).
double time_cpu_mbps(const std::function<void()> &fn, std::size_t bytes,
                     int min_reps = 3, double min_seconds = 0.05);

/// Geometric mean of positive values.
double geomean(const std::vector<double> &xs);

/// Simple fixed-width table printer.
void print_header(const std::string &title,
                  const std::vector<std::string> &cols);
void print_row(const std::vector<std::string> &cells);
std::string fmt(double v, int prec = 1);

// --- Per-workload measurement (used by Figs 13-22 and Table 4) ------------
// Each runs the CPU baseline (measured) and the UDP kernel (simulated)
// on the same synthetic dataset and returns both rates.

WorkloadPerf measure_csv_parsing();
WorkloadPerf measure_huffman_encode();
WorkloadPerf measure_huffman_decode();
WorkloadPerf measure_pattern_matching(bool complex_set);
WorkloadPerf measure_dictionary(bool rle);
WorkloadPerf measure_histogram();
WorkloadPerf measure_snappy_compress();
WorkloadPerf measure_snappy_decompress();
WorkloadPerf measure_trigger();

/// All nine headline workloads (Fig 21/22 order).
std::vector<WorkloadPerf> measure_all();

} // namespace udp::bench
