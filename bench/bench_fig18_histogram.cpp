/**
 * @file
 * Figure 18: histogram on Crimes.Latitude / Crimes.Longitude (10
 * uniform bins) and Taxi.Fare (4 bins), plus percentile-bin variants.
 */
#include "support.hpp"

#include "baselines/histogram.hpp"
#include "kernels/histogram.hpp"
#include "workloads/generators.hpp"

int
main(int argc, char **argv)
{
    using namespace udp;
    using namespace udp::bench;
    using namespace udp::kernels;

    MetricsRecorder rec("bench_fig18_histogram", argc, argv);
    const UdpCostModel cost;
    print_header("Figure 18: Histogram",
                 {"column", "bins", "CPU MB/s", "UDP lane MB/s",
                  "lane/thread", "TPut/W ratio"});

    struct Col {
        const char *name;
        unsigned kind;
        unsigned bins;
    };
    const Col cols[] = {
        {"Crimes.Latitude", 0, 10},
        {"Crimes.Longitude", 1, 10},
        {"Taxi.Fare", 2, 4},
    };

    for (const auto &c : cols) {
        const auto xs = workloads::fp_values(120'000, c.kind);
        for (const bool percentile : {false, true}) {
            baselines::Histogram h = [&] {
                if (percentile)
                    return baselines::Histogram::percentile(c.bins, xs);
                const double lo = *std::min_element(xs.begin(), xs.end());
                const double hi =
                    *std::max_element(xs.begin(), xs.end()) + 1e-9;
                return baselines::Histogram::uniform(c.bins, lo, hi);
            }();

            const double cpu = time_cpu_mbps(
                [&] {
                    auto hh = h;
                    hh.add_all(xs);
                },
                xs.size() * 8);

            const Program prog = histogram_program(h.edges());
            const Bytes packed = pack_fp_stream(xs);
            Machine m(AddressingMode::Restricted);
            const auto res =
                run_histogram_kernel(m, 0, prog, packed, c.bins, 0);

            WorkloadPerf p;
            p.name = std::string(c.name) +
                     (percentile ? " (pct)" : " (uni)");
            p.cpu_mbps = cpu;
            p.udp_lane_mbps = res.stats.rate_mbps();
            attach_sim(p, res.stats);
            rec.add_workload(p);
            print_row({std::string(c.name) +
                           (percentile ? " (pct)" : " (uni)"),
                       std::to_string(c.bins), fmt(cpu),
                       fmt(p.udp_lane_mbps),
                       fmt(p.udp_lane_mbps / cpu, 2),
                       fmt(p.perf_watt_ratio(cost), 0)});
        }
    }
    std::printf("\npaper shape: one lane ~400 MB/s, parity with one "
                "thread; 876x TPut/W\n");
    return rec.finish();
}
