/**
 * @file
 * Figure 22: overall UDP throughput/watt vs the CPU across workloads
 * (UDP at 0.864 W system power, CPU at 80 W TDP).
 */
#include "support.hpp"

int
main(int argc, char **argv)
{
    using namespace udp;
    using namespace udp::bench;

    MetricsRecorder rec("bench_fig22_perf_watt", argc, argv);
    const UdpCostModel cost;
    const auto all = measure_all();
    for (const auto &p : all)
        rec.add_workload(p);

    print_header("Figure 22: throughput per watt vs CPU",
                 {"workload", "UDP MB/s/W", "CPU MB/s/W", "ratio"});
    std::vector<double> ratios;
    for (const auto &p : all) {
        const double udp = p.udp64_mbps() / cost.system_power_w();
        const double cpu = 8 * p.cpu_mbps / cost.cpu_tdp_w;
        ratios.push_back(p.perf_watt_ratio(cost));
        print_row({p.name, fmt(udp, 0), fmt(cpu, 1),
                   fmt(p.perf_watt_ratio(cost), 0)});
    }
    std::printf("\ngeomean TPut/W ratio: %.0fx (paper: 1900x, range "
                "276x-18300x)\n",
                geomean(ratios));
    rec.add_metric("geomean_tput_per_watt_ratio", geomean(ratios));
    return rec.finish();
}
