/**
 * @file
 * Figure 15: Huffman decoding across corpus files (SsRef design).
 * Includes the paper's "craw" effect: large trees need two banks per
 * lane, halving parallelism.
 */
#include "support.hpp"

#include "baselines/huffman.hpp"
#include "kernels/huffman.hpp"
#include "workloads/generators.hpp"

int
main(int argc, char **argv)
{
    using namespace udp;
    using namespace udp::bench;

    MetricsRecorder rec("bench_fig15_huffdec", argc, argv);
    const UdpCostModel cost;
    print_header("Figure 15: Huffman Decoding (SsRef)",
                 {"file", "CPU MB/s", "UDP lane MB/s", "lanes",
                  "UDPfull MB/s", "TPut/W ratio"});

    std::vector<double> ratios;
    for (const auto &f : workloads::corpus_suite(64 * 1024)) {
        const auto code = baselines::build_huffman(f.data);
        Bytes enc = baselines::huffman_encode(f.data, code);

        WorkloadPerf p;
        p.name = "huffdec " + f.name;
        p.cpu_mbps = time_cpu_mbps(
            [&] { baselines::huffman_decode(enc, f.data.size(), code); },
            enc.size());

        enc.push_back(0);
        enc.push_back(0);
        const auto k =
            kernels::huffman_decoder(code, kernels::VarSymDesign::SsRef);
        Machine m(AddressingMode::Restricted);
        Lane &lane = m.lane(0);
        lane.load(k.program);
        lane.set_input(enc);
        lane.run();
        p.udp_lane_mbps = lane.stats().rate_mbps();
        p.parallelism = std::min(
            64u, kernels::achievable_parallelism(k.code_bytes));
        attach_sim(p, lane.stats());
        rec.add_workload(p);

        ratios.push_back(p.perf_watt_ratio(cost));
        print_row({f.name, fmt(p.cpu_mbps), fmt(p.udp_lane_mbps),
                   std::to_string(p.parallelism), fmt(p.udp64_mbps()),
                   fmt(p.perf_watt_ratio(cost), 0)});
    }
    std::printf("\ngeomean TPut/W ratio: %.0fx (paper: ~18300x at 366 "
                "MB/s/lane, 24x one thread)\n",
                geomean(ratios));
    rec.add_metric("geomean_tput_per_watt_ratio", geomean(ratios));
    return rec.finish();
}
