/**
 * @file
 * Figure 14: Huffman encoding across corpus files.
 */
#include "support.hpp"

#include "baselines/huffman.hpp"
#include "kernels/huffman.hpp"
#include "workloads/generators.hpp"

int
main(int argc, char **argv)
{
    using namespace udp;
    using namespace udp::bench;

    MetricsRecorder rec("bench_fig14_huffenc", argc, argv);
    const UdpCostModel cost;
    print_header("Figure 14: Huffman Encoding",
                 {"file", "CPU MB/s", "UDP lane MB/s", "lane/thread",
                  "UDP64 MB/s", "TPut/W ratio"});

    std::vector<double> ratios;
    for (const auto &f : workloads::corpus_suite(64 * 1024)) {
        const auto code = baselines::build_huffman(f.data);
        WorkloadPerf p;
        p.name = "huffenc " + f.name;
        p.cpu_mbps = time_cpu_mbps(
            [&] { baselines::huffman_encode(f.data, code); },
            f.data.size());

        const Program prog = kernels::huffman_encoder(code);
        Machine m(AddressingMode::Restricted);
        Lane &lane = m.lane(0);
        lane.load(prog);
        lane.set_input(f.data);
        lane.run();
        p.udp_lane_mbps = lane.stats().rate_mbps();
        attach_sim(p, lane.stats());
        rec.add_workload(p);

        ratios.push_back(p.perf_watt_ratio(cost));
        print_row({f.name, fmt(p.cpu_mbps), fmt(p.udp_lane_mbps),
                   fmt(p.udp_lane_mbps / p.cpu_mbps, 2),
                   fmt(p.udp64_mbps()),
                   fmt(p.perf_watt_ratio(cost), 0)});
    }
    std::printf("\ngeomean TPut/W ratio: %.0fx (paper: ~6000x at 112 "
                "MB/s/lane, 11x one thread)\n",
                geomean(ratios));
    rec.add_metric("geomean_tput_per_watt_ratio", geomean(ratios));
    return rec.finish();
}
