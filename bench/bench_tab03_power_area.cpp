/**
 * @file
 * Table 3: UDP power and area breakdown (the analytical model
 * calibrated to the paper's 28nm synthesis + CACTI results), with the
 * derived comparisons of Section 6.
 */
#include "support.hpp"

int
main(int argc, char **argv)
{
    using namespace udp;
    using namespace udp::bench;

    MetricsRecorder rec("bench_tab03_power_area", argc, argv);
    const UdpCostModel m;
    rec.add_metric("system_mw", m.system_mw);
    rec.add_metric("system_mm2", m.system_mm2);
    rec.add_metric("lane_total_mw", m.lane_total_mw);
    rec.add_metric("lane_total_mm2", m.lane_total_mm2);
    rec.add_metric("local_mem_mw", m.local_mem_mw);
    rec.add_metric("clock_ghz", m.clock_ghz);
    print_header("Table 3: UDP lane breakdown",
                 {"component", "power mW", "frac %", "area mm2",
                  "frac %"});
    const auto lane_rows = m.lane_breakdown();
    for (const auto &r : lane_rows) {
        print_row({r.name, fmt(r.power_mw, 2),
                   fmt(100 * r.power_mw / m.lane_total_mw),
                   fmt(r.area_mm2, 3),
                   fmt(100 * r.area_mm2 / m.lane_total_mm2)});
    }

    print_header("Table 3: UDP system breakdown",
                 {"component", "power mW", "frac %", "area mm2",
                  "frac %"});
    for (const auto &r : m.system_breakdown()) {
        print_row({r.name, fmt(r.power_mw, 2),
                   fmt(100 * r.power_mw / m.system_mw),
                   fmt(r.area_mm2, 3),
                   fmt(100 * r.area_mm2 / m.system_mm2)});
    }

    print_header("Section 6 derived claims", {"claim", "value"});
    print_row({"clock", fmt(m.clock_ghz, 2) + " GHz"});
    print_row({"system power",
               fmt(m.system_mw, 1) + " mW (memory " +
                   fmt(100 * m.local_mem_mw / m.system_mw, 1) + "%)"});
    print_row({"vs x86 core+L1 power",
               fmt(m.cpu_core_l1_mw / m.system_mw, 1) + "x lower"});
    print_row({"vs x86 core+L1 area",
               fmt(m.cpu_core_l1_mm2 / m.system_mm2, 2) + "x smaller"});
    print_row({"64-lane logic",
               fmt(m.lanes64_mw, 1) + " mW / " + fmt(m.lanes64_mm2, 2) +
                   " mm2"});
    return rec.finish();
}
