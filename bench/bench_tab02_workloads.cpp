/**
 * @file
 * Table 2: the workload suite and why each is hard for CPUs - with the
 * "CPU challenge" column backed by the branch/misprediction models and
 * measured baseline properties rather than assertion.
 */
#include "support.hpp"

#include "automata/compile.hpp"
#include "baselines/branch_profile.hpp"
#include "baselines/dictionary.hpp"
#include "baselines/huffman.hpp"
#include "workloads/generators.hpp"

#include <chrono>

int
main(int argc, char **argv)
{
    using namespace udp;
    using namespace udp::bench;
    using namespace udp::baselines;

    MetricsRecorder rec("bench_tab02_workloads", argc, argv);
    print_header("Table 2: workloads and CPU challenges",
                 {"workload", "dataset (synthetic)", "challenge",
                  "measured"});

    // Branchy kernels: misprediction fraction from the BI model.
    {
        const auto pats = workloads::nids_patterns(8, false);
        std::vector<std::unique_ptr<RegexNode>> st;
        std::vector<const RegexNode *> asts;
        for (const auto &p : pats) {
            st.push_back(parse_regex(p));
            asts.push_back(st.back().get());
        }
        const Dfa dfa = minimize(determinize(build_multi_nfa(asts)));
        const Bytes payload = workloads::packet_payloads(64 * 1024, pats);
        const auto prof = profile_bi(dfa, payload);
        print_row({"Pattern matching", "PowerEN-like NIDS",
                   "poor locality / big tables",
                   fmt(100 * prof.mispredict_fraction()) +
                       "% mispredict cycles"});
        rec.add_metric("pattern_bi_mispredict_pct",
                       100 * prof.mispredict_fraction());
    }
    {
        const std::string csv = workloads::crimes_csv(100);
        print_row({"CSV parsing", "Crimes/Taxi/FoodInsp-like",
                   "branch mispredicts",
                   "delimiter-dependent control flow"});
    }
    // Hash-dominated kernels: fraction of runtime in hashing.
    {
        const auto rows = workloads::zipf_attribute(40000, 48);
        using Clock = std::chrono::steady_clock;
        const auto t0 = Clock::now();
        auto enc = dictionary_encode(rows);
        const double total =
            std::chrono::duration<double>(Clock::now() - t0).count();
        // Hash-only pass.
        const auto t1 = Clock::now();
        std::size_t acc = 0;
        for (const auto &r : rows)
            acc += std::hash<std::string>{}(r);
        const double hash_time =
            std::chrono::duration<double>(Clock::now() - t1).count();
        print_row({"Dictionary(+RLE)", "Zipf attribute columns",
                   "costly hash",
                   fmt(100 * hash_time / total, 0) +
                       "% of encode runtime is hashing" +
                       (acc == 0 ? "!" : "")});
        rec.add_metric("dict_hash_runtime_pct",
                       100 * hash_time / total);
        print_row({"Histogram", "lat/long/fare FP columns",
                   "branchy binary search", "edge-compare chains"});
        print_row({"Huffman enc/dec", "Canterbury/BDBench-like",
                   "bit-serial branches", "1 branch per code bit"});
        print_row({"Snappy comp/dec", "Canterbury/BDBench-like",
                   "match-dependent branches", "tag-dispatch loops"});
        print_row({"Signal triggering", "Keysight-like waveform",
                   "mem indirection + addr calc", "LUT-chain dependency"});
    }
    return rec.finish();
}
