/**
 * @file
 * Figure 16: pattern matching on NIDS-like sets - "simple" (string
 * matching, aDFA) and "complex" (regexes, NFA) - plus an FA-model
 * ablation (program size and rate for DFA / aDFA / NFA).
 */
#include "support.hpp"

#include "kernels/pattern.hpp"
#include "workloads/generators.hpp"

int
main(int argc, char **argv)
{
    using namespace udp;
    using namespace udp::bench;
    using namespace udp::kernels;

    MetricsRecorder rec("bench_fig16_pattern", argc, argv);
    const UdpCostModel cost;
    print_header("Figure 16: Pattern Matching",
                 {"set", "CPU MB/s", "UDP lane MB/s", "lane/thread",
                  "UDP64 MB/s", "TPut/W ratio"});

    for (const bool complex_set : {false, true}) {
        const WorkloadPerf p = measure_pattern_matching(complex_set);
        rec.add_workload(p);
        print_row({complex_set ? "complex (NFA)" : "simple (aDFA)",
                   fmt(p.cpu_mbps), fmt(p.udp_lane_mbps),
                   fmt(p.udp_lane_mbps / p.cpu_mbps, 2),
                   fmt(p.udp64_mbps()),
                   fmt(p.perf_watt_ratio(cost), 0)});
    }

    // FA-model ablation: size/rate of one 16-pattern group per model.
    const auto pats = workloads::nids_patterns(8, false);
    const Bytes payload = workloads::packet_payloads(128 * 1024, pats);
    print_header("FA model ablation (8 patterns, one lane)",
                 {"model", "code bytes", "UDP lane MB/s", "matches"});
    for (const auto model : {FaModel::Dfa, FaModel::Adfa, FaModel::Nfa}) {
        const auto groups = pattern_groups(pats, model, 1);
        Machine m(AddressingMode::Restricted);
        Lane &lane = m.lane(0);
        lane.load(groups[0].program);
        lane.set_input(payload);
        if (groups[0].nfa_mode)
            lane.run_nfa();
        else
            lane.run();
        print_row({std::string(fa_model_name(model)),
                   std::to_string(groups[0].program.layout.code_bytes()),
                   fmt(lane.stats().rate_mbps()),
                   std::to_string(lane.accept_count())});
        rec.add_metric(std::string(fa_model_name(model)) +
                           "_lane_mbps",
                       lane.stats().rate_mbps());
        rec.add_metric(std::string(fa_model_name(model)) +
                           "_code_bytes",
                       double(groups[0].program.layout.code_bytes()));
    }
    std::printf("\npaper shape: 1 lane ~7x one thread, 800-350 MB/s; "
                "~1780x TPut/W; aDFA small+fast, NFA smallest, DFA "
                "largest\n");
    return rec.finish();
}
