/**
 * @file
 * udp_service under load: admission control, backpressure and fault
 * isolation in the always-on multi-tenant service (docs/SERVICE.md).
 *
 * Methodology: first a closed-loop calibration run measures the
 * service's capacity (jobs/s through the wave scheduler for the
 * trigger-kernel corpus on this host).  Then three open-loop scenarios
 * run Poisson arrivals over N well-behaved tenant threads plus one
 * *hostile* tenant submitting the FaultInjector corpus (poisoned
 * programs and forced traps), at 0.5x, 1x and 2x of measured capacity.
 * Every tenant's token bucket is pinned at capacity/N either way, so
 * the overload scenario must shed (RateLimited/QueueFull) rather than
 * collapse, the hostile tenant's quarantines trip its circuit breaker,
 * and well-behaved goodput at 2x should hold within ~10% of the 1x
 * run — the degradation contract CI gates on.
 *
 * Reported per scenario: goodput (well-behaved completions/s), shed /
 * cancelled / quarantined / expired counts, and p50/p99/p999 e2e host
 * latency of well-behaved jobs.  A slice of well-behaved submissions is
 * cancelled right after submit to exercise the cancellation path under
 * load.
 *
 * Flags: --json <path> (metrics.* carries the per-scenario numbers the
 * CI gate reads), --metrics <path> (Prometheus exposition of the
 * shared registry, including the per-tenant labeled series; validated
 * by tools/check_exposition.py), --threads N, --tenants N (default 3),
 * --window S (seconds per scenario, default 1.0).
 */
#include "support.hpp"

#include "kernels/trigger.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/kernel_spec.hpp"
#include "service/service.hpp"
#include "workloads/generators.hpp"

#include <cmath>
#include <cstring>
#include <thread>

namespace {

using namespace udp;
using namespace udp::bench;

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

double
exp_draw(std::uint64_t &state, double rate_per_s)
{
    state = mix64(state);
    const double u =
        (double(state >> 11) + 0.5) * (1.0 / 9007199254740992.0);
    return -std::log(u) / rate_per_s;
}

double
elapsed_s(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         since)
        .count();
}

/// Closed-loop capacity probe: one unthrottled tenant, `jobs` jobs,
/// measured from first submission to last completion.
double
calibrate_capacity(const std::vector<runtime::JobPlan> &corpus,
                   runtime::MetricRegistry &reg, unsigned jobs)
{
    service::ServiceOptions so;
    so.sched = sched_options();
    so.registry = &reg;
    service::Service svc(so);
    service::TenantOptions topt;
    topt.name = "calibrate";
    topt.rate_jobs_per_s = 0; // no refill...
    topt.burst = jobs;        // ...burst covers the whole probe
    topt.queue_capacity = jobs;
    auto client = svc.client(svc.register_tenant(topt));

    const auto start = std::chrono::steady_clock::now();
    std::vector<service::JobId> ids;
    ids.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        ids.push_back(client.submit(corpus[i % corpus.size()]));
    for (auto id : ids) {
        auto out = client.wait(id, 60.0);
        if (out && out->state == service::JobState::Done)
            svc.recycle(std::move(*out));
    }
    const double secs = elapsed_s(start);
    svc.drain();
    return secs > 0 ? jobs / secs : 0;
}

struct ScenarioResult {
    std::uint64_t submitted = 0;
    std::uint64_t done = 0;      ///< all tenants
    std::uint64_t good_done = 0; ///< well-behaved tenants only
    std::uint64_t shed = 0;      ///< rejections, all reasons
    std::uint64_t cancelled = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t expired = 0;
    std::uint64_t breaker_trips = 0;
    double goodput_jps = 0; ///< good_done / window
    std::uint64_t p50_us = 0, p99_us = 0, p999_us = 0;
};

/// One open-loop scenario: `n_good` well-behaved tenants at
/// `arrival_rate` each plus one hostile tenant, token buckets pinned
/// at `token_rate`, for `window` seconds.
ScenarioResult
run_scenario(const std::vector<runtime::JobPlan> &corpus,
             runtime::MetricRegistry &reg, unsigned n_good,
             double arrival_rate, double token_rate, double window,
             std::uint64_t seed)
{
    service::ServiceOptions so;
    so.sched = sched_options();
    so.sched.retry.max_attempts = 2;
    so.registry = &reg;
    service::Service svc(so);

    std::vector<service::ServiceClient> clients;
    for (unsigned i = 0; i <= n_good; ++i) {
        const bool is_hostile = i == n_good;
        service::TenantOptions topt;
        topt.name = is_hostile ? "hostile" : "tenant" + std::to_string(i);
        topt.rate_jobs_per_s = token_rate;
        topt.burst = 16;
        topt.queue_capacity = 256;
        topt.overflow = service::OverflowPolicy::Shed;
        clients.push_back(svc.client(svc.register_tenant(topt)));
    }

    runtime::Histogram good_e2e_us;
    std::mutex hist_mu; // Histogram::record is lock-free; merge isn't needed

    std::vector<std::thread> workers;
    for (unsigned i = 0; i <= n_good; ++i) {
        const bool is_hostile = i == n_good;
        workers.emplace_back([&, i, is_hostile] {
            auto client = clients[i];
            std::uint64_t rng = seed ^ (std::uint64_t(i + 1) << 32);
            runtime::FaultInjector inj(rng ^ 0xF01Dull);
            std::vector<service::JobId> ids;
            unsigned n = 0;
            const auto start = std::chrono::steady_clock::now();
            double next_arrival = 0;
            while (elapsed_s(start) < window) {
                const double now = elapsed_s(start);
                if (now < next_arrival) {
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(
                            std::min(next_arrival - now, 0.005)));
                    continue;
                }
                next_arrival = now + exp_draw(rng, arrival_rate);
                runtime::JobPlan plan = corpus[n % corpus.size()];
                if (is_hostile) {
                    if (n % 2 == 0)
                        inj.poison_program(plan);
                    else
                        inj.force_trap(plan, 500 + inj.next_below(2000), 1);
                }
                const auto id = client.submit(std::move(plan));
                // Exercise cancellation under load: a slice of the
                // well-behaved stream is cancelled right after submit.
                if (!is_hostile && n % 16 == 7)
                    client.cancel(id);
                ids.push_back(id);
                ++n;
            }
            for (auto id : ids) {
                auto out = client.wait(id, 60.0);
                if (!out)
                    continue;
                if (!is_hostile && out->state == service::JobState::Done) {
                    good_e2e_us.record(
                        std::uint64_t(out->e2e_seconds * 1e6));
                    svc.recycle(std::move(*out));
                }
            }
        });
    }
    for (auto &w : workers)
        w.join();
    svc.drain();

    ScenarioResult r;
    const auto stats = svc.stats();
    for (std::size_t i = 0; i < stats.tenants.size(); ++i) {
        const auto &t = stats.tenants[i];
        const bool is_hostile = i == n_good;
        r.submitted += t.submitted;
        r.done += t.completed;
        if (!is_hostile)
            r.good_done += t.completed;
        r.shed += t.rejected_total();
        r.cancelled += t.cancelled;
        r.quarantined += t.quarantined;
        r.expired += t.expired;
        r.breaker_trips += t.breaker_trips;
    }
    r.goodput_jps = r.good_done / window;
    const auto h = good_e2e_us.snapshot();
    r.p50_us = h.percentile(0.50);
    r.p99_us = h.percentile(0.99);
    r.p999_us = h.percentile(0.999);
    return r;
}

const char *
arg_after(int argc, char **argv, const char *flag)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return argv[i + 1];
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    MetricsRecorder rec("bench_service", argc, argv);
    const unsigned n_good =
        arg_after(argc, argv, "--tenants")
            ? unsigned(std::atoi(arg_after(argc, argv, "--tenants")))
            : 3;
    const double window =
        arg_after(argc, argv, "--window")
            ? std::atof(arg_after(argc, argv, "--window"))
            : 1.0;

    const Bytes packed = workloads::waveform(200'000, 13);
    const Bytes samples = kernels::samples_from_bits(packed);
    const auto spec = kernels::trigger_kernel_spec(6);
    const auto corpus = runtime::chunk_jobs(
        spec, runtime::ArenaSlice::borrow(samples),
        std::max<std::size_t>(1, ceil_div(samples.size(), kNumLanes)));

    const double capacity =
        calibrate_capacity(corpus, rec.registry(), 512);
    std::printf("calibrated capacity: %.0f jobs/s (closed loop)\n\n",
                capacity);
    rec.add_metric("capacity_jps", capacity);

    // Token buckets always cap each tenant at its fair share of
    // capacity; only the arrival rate scales with the load factor.
    const double token_rate = capacity / (n_good + 1);

    print_header("udp_service under open-loop load (" +
                     std::to_string(n_good) + " tenants + 1 hostile)",
                 {"load", "goodput j/s", "shed", "cancelled", "quarant.",
                  "trips", "p50 us", "p99 us", "p999 us"});

    const struct {
        double factor;
        const char *tag;
    } scenarios[] = {{0.5, "x0_5"}, {1.0, "x1"}, {2.0, "x2"}};
    double goodput_1x = 0;
    ScenarioResult last;
    for (const auto &sc : scenarios) {
        const double arrival = sc.factor * capacity / (n_good + 1);
        const auto r = run_scenario(corpus, rec.registry(), n_good,
                                    arrival, token_rate, window,
                                    0xBADCAB1Eull * (sc.factor * 2));
        if (sc.factor == 1.0)
            goodput_1x = r.goodput_jps;
        print_row({fmt(sc.factor, 1) + "x", fmt(r.goodput_jps, 0),
                   std::to_string(r.shed), std::to_string(r.cancelled),
                   std::to_string(r.quarantined),
                   std::to_string(r.breaker_trips),
                   std::to_string(r.p50_us), std::to_string(r.p99_us),
                   std::to_string(r.p999_us)});
        const std::string tag = sc.tag;
        rec.add_metric(tag + "_goodput_jps", r.goodput_jps);
        rec.add_metric(tag + "_submitted", double(r.submitted));
        rec.add_metric(tag + "_done", double(r.done));
        rec.add_metric(tag + "_shed", double(r.shed));
        rec.add_metric(tag + "_cancelled", double(r.cancelled));
        rec.add_metric(tag + "_quarantined", double(r.quarantined));
        rec.add_metric(tag + "_expired", double(r.expired));
        rec.add_metric(tag + "_breaker_trips", double(r.breaker_trips));
        rec.add_metric(tag + "_p50_us", double(r.p50_us));
        rec.add_metric(tag + "_p99_us", double(r.p99_us));
        rec.add_metric(tag + "_p999_us", double(r.p999_us));
        last = r;
    }

    // The degradation contract (also asserted by CI on the JSON dump):
    // overload sheds instead of collapsing, and well-behaved goodput
    // holds within ~10% of the at-capacity run.
    const bool sheds = last.shed > 0 && last.quarantined > 0;
    const bool holds =
        goodput_1x > 0 && last.goodput_jps >= 0.9 * goodput_1x;
    std::printf("\noverload sheds + quarantines: %s\n"
                "goodput at 2x >= 90%% of 1x:   %s (%.0f vs %.0f j/s)\n",
                sheds ? "OK" : "FAILED", holds ? "OK" : "FAILED",
                last.goodput_jps, goodput_1x);
    rec.add_metric("overload_sheds", sheds ? 1 : 0);
    rec.add_metric("goodput_holds", holds ? 1 : 0);

    const int rc = rec.finish();
    return sheds && holds ? rc : 1;
}
