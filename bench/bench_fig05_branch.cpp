/**
 * @file
 * Figure 5: branch behavior of ETL kernels on CPUs vs UDP multi-way
 * dispatch.
 *   5a - fraction of cycles lost to branch misprediction (BO and BI);
 *   5b - effective branch rate normalized to BO (higher = faster);
 *   5c - code size for BO / BI(dispatch tables) / UDP naive / UDP
 *        EffCLiP+shared-action layouts.
 */
#include "support.hpp"

#include "assembler/builder.hpp"
#include "automata/compile.hpp"
#include "baselines/branch_profile.hpp"
#include "baselines/snappy.hpp"
#include "kernels/csv.hpp"
#include "workloads/generators.hpp"

namespace {

using namespace udp;

/// The CSV FSM expressed as a DFA over bytes (for the branch models).
Dfa
csv_fsm_dfa()
{
    // States: 0 row/field start, 1 unquoted, 2 quoted, 3 quote-in-quoted.
    Dfa d;
    d.next.resize(4);
    d.accept.assign(4, -1);
    for (auto &row : d.next)
        row.fill(kNoState);
    for (unsigned c = 0; c < 256; ++c) {
        d.next[0][c] = 1;
        d.next[1][c] = 1;
        d.next[2][c] = 2;
        d.next[3][c] = 1;
    }
    d.next[0][','] = 0;
    d.next[0]['\n'] = 0;
    d.next[0]['"'] = 2;
    d.next[1][','] = 0;
    d.next[1]['\n'] = 0;
    d.next[2]['"'] = 3;
    d.next[3]['"'] = 2;
    d.next[3][','] = 0;
    d.next[3]['\n'] = 0;
    d.start = 0;
    return d;
}

Dfa
pattern_dfa()
{
    const auto pats = workloads::nids_patterns(12, false);
    std::vector<std::unique_ptr<RegexNode>> storage;
    std::vector<const RegexNode *> asts;
    for (const auto &p : pats) {
        storage.push_back(parse_regex(p));
        asts.push_back(storage.back().get());
    }
    return minimize(determinize(build_multi_nfa(asts)));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace udp;
    using namespace udp::bench;
    using namespace udp::baselines;

    MetricsRecorder rec("bench_fig05_branch", argc, argv);
    struct KernelCase {
        std::string name;
        Dfa dfa;
        Bytes input;
    };
    std::vector<KernelCase> cases;
    {
        const std::string csv = workloads::crimes_csv(150);
        cases.push_back(
            {"CSV parse", csv_fsm_dfa(), Bytes(csv.begin(), csv.end())});
        const auto pats = workloads::nids_patterns(12, false);
        cases.push_back({"Pattern match", pattern_dfa(),
                         workloads::packet_payloads(64 * 1024, pats)});
        // Snappy tag dispatch modeled as a 4-class FSM over tag bytes.
        const Bytes text = workloads::text_corpus(64 * 1024, 0.5);
        const Bytes comp = snappy_compress(text);
        Dfa tags;
        tags.next.resize(4);
        tags.accept.assign(4, -1);
        for (unsigned s = 0; s < 4; ++s)
            for (unsigned c = 0; c < 256; ++c)
                tags.next[s][c] = c & 3;
        cases.push_back({"Snappy tags", tags, comp});
    }

    print_header("Figure 5a: % cycles lost to branch misprediction",
                 {"kernel", "BO %", "BI %"});
    for (const auto &c : cases) {
        const BranchProfile bo = profile_bo(c.dfa, c.input);
        const BranchProfile bi = profile_bi(c.dfa, c.input);
        print_row({c.name, fmt(100 * bo.mispredict_fraction()),
                   fmt(100 * bi.mispredict_fraction())});
        rec.add_metric(c.name + " bo_mispredict_pct",
                       100 * bo.mispredict_fraction());
        rec.add_metric(c.name + " bi_mispredict_pct",
                       100 * bi.mispredict_fraction());
    }

    print_header("Figure 5b: effective branch rate (normalized to BO; "
                 "higher is faster)",
                 {"kernel", "BO", "BI", "UDP MWD"});
    for (const auto &c : cases) {
        const BranchProfile bo = profile_bo(c.dfa, c.input);
        const BranchProfile bi = profile_bi(c.dfa, c.input);
        // UDP: run the compiled DFA program and use its cycles/symbol.
        const Program prog = compile_dfa(c.dfa);
        LocalMemory mem(AddressingMode::Restricted);
        Lane lane(0, mem);
        lane.load(prog);
        lane.set_input(c.input);
        lane.run();
        const double udp_cps =
            double(lane.stats().cycles) / double(c.input.size());
        print_row({c.name, fmt(1.0, 2),
                   fmt(bo.cycles_per_symbol() / bi.cycles_per_symbol(), 2),
                   fmt(bo.cycles_per_symbol() / udp_cps, 2)});
        rec.add_metric(c.name + " mwd_branch_rate_vs_bo",
                       bo.cycles_per_symbol() / udp_cps);
    }

    print_header("Figure 5c: code size (bytes)",
                 {"kernel", "BO", "BI table", "UDP naive", "UDP EffCLiP"});
    for (const auto &c : cases) {
        DfaCompileOptions packed;
        DfaCompileOptions naive;
        naive.layout.naive_tables = true;
        naive.layout.max_windows = 64;
        naive.majority_threshold = 0;
        const Program p1 = compile_dfa(c.dfa, packed);
        const Program p2 = compile_dfa(c.dfa, naive);
        print_row({c.name, std::to_string(code_size_bo(c.dfa)),
                   std::to_string(code_size_bi(c.dfa)),
                   std::to_string(p2.layout.code_bytes()),
                   std::to_string(p1.layout.code_bytes())});
    }
    std::printf("\npaper shape: 32-86%% mispredict cycles; MWD 2-12x "
                "effective branch rate; MWD code far smaller than "
                "BI tables\n");
    return rec.finish();
}
