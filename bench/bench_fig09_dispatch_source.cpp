/**
 * @file
 * Figure 9: dispatch-source ablation. Stream-buffer-only dispatch (the
 * UAP model) covers the streaming kernels; adding scalar-register
 * (flagged) dispatch unlocks dictionary/dict-RLE/compression, raising
 * the geomean speedup across the workload suite.
 */
#include "support.hpp"

int
main(int argc, char **argv)
{
    using namespace udp;
    using namespace udp::bench;

    MetricsRecorder rec("bench_fig09_dispatch_source", argc, argv);
    const auto all = measure_all();
    for (const auto &p : all)
        rec.add_workload(p);
    // Kernels whose UDP programs require scalar-register dispatch.
    const auto needs_scalar = [](const WorkloadPerf &p) {
        return p.name == "Dictionary-RLE" ||
               p.name == "Compression (Snappy)";
    };

    std::vector<double> stream_only, with_scalar;
    print_header("Figure 9: dispatch sources",
                 {"workload", "speedup vs 8T", "needs scalar?"});
    for (const auto &p : all) {
        const double s = p.speedup_vs_8t();
        with_scalar.push_back(s);
        // Stream-only UDP cannot run scalar-dispatch kernels at all:
        // those fall back to the CPU (speedup 1x candidates).
        stream_only.push_back(needs_scalar(p) ? 1.0 : s);
        print_row({p.name, fmt(s, 2), needs_scalar(p) ? "yes" : "no"});
    }

    std::printf("\ngeomean speedup, stream buffer only : %.1fx\n",
                geomean(stream_only));
    std::printf("geomean speedup, stream + scalar reg: %.1fx\n",
                geomean(with_scalar));
    std::printf("\npaper shape: adding the scalar dispatch source "
                "dramatically improves the geomean by covering the "
                "memory/hash-based kernels\n");
    rec.add_metric("geomean_speedup_stream_only", geomean(stream_only));
    rec.add_metric("geomean_speedup_with_scalar", geomean(with_scalar));
    return rec.finish();
}
