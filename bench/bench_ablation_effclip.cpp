/**
 * @file
 * Ablation: EffCLiP packing (DESIGN.md §7) - dispatch-memory footprint
 * and fill ratio of coupled linear packing vs naive per-state tables,
 * and the effect of majority-threshold folding, across automaton sizes.
 */
#include "support.hpp"

#include "automata/compile.hpp"
#include "workloads/generators.hpp"

int
main(int argc, char **argv)
{
    using namespace udp;
    using namespace udp::bench;

    MetricsRecorder rec("bench_ablation_effclip", argc, argv);
    print_header("EffCLiP vs naive tables (NIDS DFAs)",
                 {"patterns", "DFA states", "naive KB", "EffCLiP KB",
                  "ratio", "fill %"});

    for (const unsigned npat : {4u, 8u, 16u, 24u}) {
        const auto pats = workloads::nids_patterns(npat, false);
        std::vector<std::unique_ptr<RegexNode>> st;
        std::vector<const RegexNode *> asts;
        for (const auto &p : pats) {
            st.push_back(parse_regex(p));
            asts.push_back(st.back().get());
        }
        const Dfa dfa = minimize(determinize(build_multi_nfa(asts)));

        DfaCompileOptions packed;
        DfaCompileOptions naive;
        naive.layout.naive_tables = true;
        naive.layout.max_windows = 64;
        naive.majority_threshold = 0;
        const Program p1 = compile_dfa(dfa, packed);
        const Program p2 = compile_dfa(dfa, naive);
        print_row({std::to_string(npat), std::to_string(dfa.size()),
                   fmt(double(p2.layout.code_bytes()) / 1024.0, 1),
                   fmt(double(p1.layout.code_bytes()) / 1024.0, 1),
                   fmt(double(p2.layout.code_bytes()) /
                           double(p1.layout.code_bytes()),
                       1),
                   fmt(100 * p1.layout.fill_ratio(), 0)});
        rec.add_metric("naive_over_effclip_" + std::to_string(npat) +
                           "pat",
                       double(p2.layout.code_bytes()) /
                           double(p1.layout.code_bytes()));
    }

    print_header("Majority-threshold sweep (8-pattern DFA)",
                 {"threshold", "code KB", "lane MB/s"});
    const auto pats = workloads::nids_patterns(8, false);
    const Bytes payload = workloads::packet_payloads(96 * 1024, pats);
    std::vector<std::unique_ptr<RegexNode>> st;
    std::vector<const RegexNode *> asts;
    for (const auto &p : pats) {
        st.push_back(parse_regex(p));
        asts.push_back(st.back().get());
    }
    const Dfa dfa = minimize(determinize(build_multi_nfa(asts)));
    for (const unsigned thr : {0u, 2u, 32u, 128u}) {
        DfaCompileOptions opts;
        opts.majority_threshold = thr;
        if (thr == 0) {
            opts.layout.max_windows = 16; // full tables need room
        }
        const Program p = compile_dfa(dfa, opts);
        LocalMemory mem(AddressingMode::Restricted);
        Lane lane(0, mem);
        lane.load(p);
        lane.set_input(payload);
        lane.run();
        print_row({std::to_string(thr),
                   fmt(double(p.layout.code_bytes()) / 1024.0, 1),
                   fmt(lane.stats().rate_mbps())});
        rec.add_metric("majority_thr_" + std::to_string(thr) +
                           "_lane_mbps",
                       lane.stats().rate_mbps());
    }
    std::printf("\ntakeaway: majority folding trades a signature-miss "
                "cycle on cold symbols for an order-of-magnitude code "
                "reduction - the enabler of 64-lane parallelism\n");
    return rec.finish();
}
