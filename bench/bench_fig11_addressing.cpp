/**
 * @file
 * Figure 11: the three addressing models.
 *   11a - Snappy compression rate vs block size (bigger windows = more
 *         match history = better ratio; only flexible addressing can
 *         trade lanes for block size);
 *   11b - net benefit (rate x compression ratio);
 *   11c - memory reference energy per model (CACTI-calibrated).
 */
#include "support.hpp"

#include "baselines/snappy.hpp"
#include "kernels/snappy.hpp"
#include "workloads/generators.hpp"

int
main(int argc, char **argv)
{
    using namespace udp;
    using namespace udp::bench;
    using namespace udp::kernels;

    MetricsRecorder rec("bench_fig11_addressing", argc, argv);
    static const Program prog = snappy_compress_program();
    const Bytes text = workloads::text_corpus(16 * 1024, 0.45, 31);

    print_header("Figure 11a/11b: Snappy compression vs block size",
                 {"block KB", "lane MB/s", "comp ratio", "rate x ratio",
                  "lanes possible"});

    for (const std::size_t kb : {1, 2, 4, 8, 16}) {
        const std::size_t n = std::min(kb * 1024 - 8, text.size());
        const Bytes block(text.begin(), text.begin() + n);
        Machine m(AddressingMode::Restricted);
        const auto res = run_snappy_compress(m, 0, prog, block, 0);
        const double rate = res.stats.rate_mbps();
        const double ratio =
            baselines::compression_ratio(block.size(), res.data.size());
        // A lane needs input + hash-table banks: ceil((block+4K)/16K)+1.
        const unsigned banks = static_cast<unsigned>(
            1 + ceil_div(block.size() + 4096, kBankBytes));
        print_row({std::to_string(kb), fmt(rate), fmt(ratio, 3),
                   fmt(rate * ratio), std::to_string(64 / banks)});
        WorkloadPerf p;
        p.name = "snappy_comp_block_" + std::to_string(kb) + "kb";
        p.udp_lane_mbps = rate;
        p.parallelism = 64 / banks;
        attach_sim(p, res.stats);
        rec.add_workload(p);
    }

    print_header("Figure 11c: memory reference energy (1MB, 64 banks)",
                 {"model", "pJ/ref"});
    for (const auto mode :
         {AddressingMode::Local, AddressingMode::Restricted,
          AddressingMode::Global}) {
        print_row({std::string(addressing_mode_name(mode)),
                   fmt(memory_ref_energy_pj(mode), 1)});
        rec.add_metric(std::string(addressing_mode_name(mode)) +
                           "_ref_energy_pj",
                       memory_ref_energy_pj(mode));
    }
    std::printf("\npaper shape: ratio rises with block size (net "
                "benefit can differ ~50%%); local/restricted 4.3 pJ/ref "
                "vs global 8.8\n");
    return rec.finish();
}
