/**
 * @file
 * Figure 21 (+ Section 5.7): overall UDP speedup vs 8 CPU threads
 * across all workloads, with the geometric mean, plus the signal-
 * triggering rate study (p2..p13).
 */
#include "support.hpp"

#include "baselines/trigger.hpp"
#include "kernels/trigger.hpp"
#include "workloads/generators.hpp"

int
main(int argc, char **argv)
{
    using namespace udp;
    using namespace udp::bench;

    MetricsRecorder rec("bench_fig21_overall", argc, argv);
    const auto all = measure_all();
    for (const auto &p : all)
        rec.add_workload(p);
    print_header("Figure 21: UDP (full) speedup vs 8 CPU threads",
                 {"workload", "CPU 8T MB/s", "UDP MB/s", "speedup"});
    std::vector<double> speedups;
    for (const auto &p : all) {
        speedups.push_back(p.speedup_vs_8t());
        print_row({p.name, fmt(8 * p.cpu_mbps), fmt(p.udp64_mbps()),
                   fmt(p.speedup_vs_8t(), 2)});
    }
    std::printf("\ngeomean speedup: %.1fx (paper: 20x, range 8-197x)\n",
                geomean(speedups));
    rec.add_metric("geomean_speedup_vs_8t", geomean(speedups));

    // Section 5.7: constant trigger rate across p2..p13.
    print_header("Section 5.7: signal triggering p2..p13 (one lane)",
                 {"FSM", "UDP lane MB/s", "CPU MB/s", "triggers"});
    const Bytes packed = workloads::waveform(200'000, 13);
    const Bytes samples = kernels::samples_from_bits(packed);
    for (unsigned w = 2; w <= 13; ++w) {
        const Program prog = kernels::trigger_program(w);
        Machine m(AddressingMode::Restricted);
        Lane &lane = m.lane(0);
        lane.load(prog);
        lane.set_input(samples);
        lane.run();
        const baselines::PulseTrigger trig(w);
        const double cpu = time_cpu_mbps(
            [&] { trig.count_triggers_lut4(packed); }, samples.size(), 2,
            0.01);
        print_row({"p" + std::to_string(w),
                   fmt(lane.stats().rate_mbps()), fmt(cpu),
                   std::to_string(lane.accept_count())});
        rec.add_metric("trigger_p" + std::to_string(w) + "_lane_mbps",
                       lane.stats().rate_mbps());
    }
    std::printf("\npaper shape: constant ~1055 MB/s per lane across "
                "p2-p13, ~4x the 275 MB/s CPU\n");
    return rec.finish();
}
