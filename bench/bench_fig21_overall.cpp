/**
 * @file
 * Figure 21 (+ Section 5.7): overall UDP speedup vs 8 CPU threads
 * across all workloads, with the geometric mean, plus the signal-
 * triggering rate study (p2..p13).
 */
#include "support.hpp"

#include "baselines/histogram.hpp"
#include "baselines/trigger.hpp"
#include "kernels/histogram.hpp"
#include "kernels/trigger.hpp"
#include "workloads/generators.hpp"

#include <thread>

int
main(int argc, char **argv)
{
    using namespace udp;
    using namespace udp::bench;

    MetricsRecorder rec("bench_fig21_overall", argc, argv);
    const auto all = measure_all();
    for (const auto &p : all)
        rec.add_workload(p);
    print_header("Figure 21: UDP (full) speedup vs 8 CPU threads",
                 {"workload", "CPU 8T MB/s", "UDP64 extrap", "UDP64 real",
                  "waves", "speedup(real)"});
    std::vector<double> speedups, real_speedups;
    for (const auto &p : all) {
        speedups.push_back(p.speedup_vs_8t());
        real_speedups.push_back(p.speedup_real_vs_8t());
        print_row({p.name, fmt(8 * p.cpu_mbps), fmt(p.udp64_mbps()),
                   fmt(p.udp64_real_mbps), std::to_string(p.waves),
                   fmt(p.speedup_real_vs_8t(), 2)});
    }
    std::printf("\ngeomean speedup: %.1fx real / %.1fx extrapolated "
                "(paper: 20x, range 8-197x)\n",
                geomean(real_speedups), geomean(speedups));
    std::printf("extrapolated = lane rate x achievable parallelism; real "
                "= the same input chunked over the lanes and run through "
                "the wave scheduler (docs/RUNTIME.md)\n");
    rec.add_metric("geomean_speedup_vs_8t", geomean(speedups));
    rec.add_metric("geomean_speedup_real_vs_8t", geomean(real_speedups));

    // Host simulation scaling: the same 64-shard histogram run, serial
    // vs the requested thread pool (results are bit-identical; only the
    // host wall-clock moves).
    {
        // Large enough that per-wave pool spin-up is noise (the >=2x
        // speedup assertion on 4 CI threads needs headroom).
        const auto xs = workloads::fp_values(600'000, 21);
        const auto spec = kernels::histogram_kernel_spec(
            baselines::Histogram::uniform(10, 41.2, 42.5).edges());
        const Bytes packed = kernels::pack_fp_stream(xs);
        const auto jobs = runtime::chunk_jobs(
            spec, runtime::ArenaSlice::borrow(packed),
            ceil_div(packed.size() / 8, 64) * 8);
        const unsigned pool =
            sim_threads_option()
                ? sim_threads_option()
                : std::max(1u, std::thread::hardware_concurrency());
        auto run_with = [&](unsigned threads) {
            runtime::SchedulerOptions opts;
            opts.threads = threads;
            runtime::Scheduler sched(opts);
            return sched.run(jobs);
        };
        const auto serial = run_with(1);
        const auto pooled = run_with(pool);
        const double speedup = pooled.host_seconds > 0
                                   ? serial.host_seconds /
                                         pooled.host_seconds
                                   : 0;
        print_header("Host simulation backend (same simulated result)",
                     {"backend", "host ms", "sim wall cycles"});
        print_row({"serial", fmt(serial.host_seconds * 1e3, 2),
                   std::to_string(serial.wall_cycles)});
        print_row({std::to_string(pool) + " threads",
                   fmt(pooled.host_seconds * 1e3, 2),
                   std::to_string(pooled.wall_cycles)});
        std::printf("host speedup: %.2fx on %u threads (simulated cycles "
                    "identical: %s)\n",
                    speedup, pool,
                    serial.wall_cycles == pooled.wall_cycles ? "yes"
                                                             : "NO");
        rec.add_metric("host_sim_seconds_serial", serial.host_seconds);
        rec.add_metric("host_sim_seconds_pool", pooled.host_seconds);
        rec.add_metric("host_sim_pool_threads", pool);
        rec.add_metric("host_sim_speedup", speedup);
    }

    // Section 5.7: constant trigger rate across p2..p13.
    print_header("Section 5.7: signal triggering p2..p13 (one lane)",
                 {"FSM", "UDP lane MB/s", "CPU MB/s", "triggers"});
    const Bytes packed = workloads::waveform(200'000, 13);
    const Bytes samples = kernels::samples_from_bits(packed);
    for (unsigned w = 2; w <= 13; ++w) {
        const Program prog = kernels::trigger_program(w);
        Machine m(AddressingMode::Restricted);
        Lane &lane = m.lane(0);
        lane.load(prog);
        lane.set_input(samples);
        lane.run();
        const baselines::PulseTrigger trig(w);
        const double cpu = time_cpu_mbps(
            [&] { trig.count_triggers_lut4(packed); }, samples.size(), 2,
            0.01);
        print_row({"p" + std::to_string(w),
                   fmt(lane.stats().rate_mbps()), fmt(cpu),
                   std::to_string(lane.accept_count())});
        rec.add_metric("trigger_p" + std::to_string(w) + "_lane_mbps",
                       lane.stats().rate_mbps());
    }
    std::printf("\npaper shape: constant ~1055 MB/s per lane across "
                "p2-p13, ~4x the 275 MB/s CPU\n");
    return rec.finish();
}
