/**
 * @file
 * Host simulation speed: predecoded fast path vs. the legacy
 * decode-per-step interpreter (docs/PERFORMANCE.md).
 *
 * This bench tracks the *simulator's* performance trajectory, not the
 * modeled hardware's: it runs the Figure 13 CSV workload (scaled up so
 * the interpreter loop dominates host time) through the wave scheduler
 * serially, once per interpreter path, and reports host MB/s for each.
 * Simulated counters are asserted bit-identical between the paths —
 * the same invariant tests/test_predecode.cpp pins per kernel.
 *
 * Flags: --json <path> (BENCH_simspeed.json schema: the standard bench
 * envelope plus metrics.sim_host_mbps_predecode / _legacy /
 * .predecode_speedup), --metrics <path> (Prometheus-style text
 * exposition of the full telemetry registry — every scheduled run in
 * the bench feeds it; docs/OBSERVABILITY.md).
 */
#include "support.hpp"

#include "core/decoded_program.hpp"
#include "kernels/csv.hpp"
#include "runtime/kernel_spec.hpp"
#include "workloads/generators.hpp"

#include <chrono>

int
main(int argc, char **argv)
{
    using namespace udp;
    using namespace udp::bench;
    using Clock = std::chrono::steady_clock;

    MetricsRecorder rec("bench_simspeed", argc, argv);
    set_sim_threads(1); // serial: measure the interpreter, not the pool

    // ~3.8 MB of CSV so one measured run simulates a few million cycles.
    const std::string text = workloads::crimes_csv(20'000);
    const Bytes data(text.begin(), text.end());
    const auto spec = kernels::csv_kernel_spec();

    // 8 KiB rows-aligned chunks: half the per-job input cap, so the
    // extracted field region cannot overflow the output half-window.
    // ~240 jobs over 32 windows -> a multi-wave serial run.
    const std::size_t chunk = 8 * 1024;

    struct PathResult {
        double host_seconds = 0; ///< best-of-reps simulation time
        double host_mbps = 0;
        LaneStats total;
        Cycles wall = 0;
    };
    const auto measure = [&](bool predecode) {
        set_predecode_enabled(predecode);
        PathResult r;
        const int reps = 5; // best-of-5 absorbs host scheduling noise
        for (int i = 0; i < reps; ++i) {
            // Rebuild the jobs inside the toggle so JobPlan::decoded
            // reflects the path under test.
            const auto jobs = runtime::chunk_jobs(
                spec, data, chunk, runtime::align_after_delim('\n'));
            runtime::Scheduler sched(sched_options());
            const auto rep = sched.run(jobs);
            if (i == 0 || rep.host_seconds < r.host_seconds)
                r.host_seconds = rep.host_seconds;
            r.total = rep.total;
            r.wall = rep.wall_cycles;
        }
        r.host_mbps = r.host_seconds > 0
                          ? double(data.size()) / r.host_seconds / 1e6
                          : 0;
        return r;
    };

    // Warm both paths (decode cache, page faults) before timing.
    measure(true);
    measure(false);
    const auto pre = measure(true);
    const auto leg = measure(false);
    set_predecode_enabled(true); // restore the default for finish()

    if (pre.total != leg.total || pre.wall != leg.wall)
        throw UdpError("bench_simspeed: simulated counters diverge "
                       "between interpreter paths");

    const double speedup =
        leg.host_mbps > 0 ? pre.host_mbps / leg.host_mbps : 0;

    print_header("Host simulation speed (serial, CSV x20000 rows)",
                 {"path", "host MB/s", "host s/run", "sim cycles"});
    print_row({"predecode", fmt(pre.host_mbps), fmt(pre.host_seconds, 4),
               fmt(double(pre.wall), 0)});
    print_row({"legacy", fmt(leg.host_mbps), fmt(leg.host_seconds, 4),
               fmt(double(leg.wall), 0)});
    std::printf("\npredecode speedup: %.2fx (host time; simulated "
                "counters bit-identical)\n",
                speedup);

    rec.add_metric("input_bytes", double(data.size()));
    rec.add_metric("sim_cycles", double(pre.wall));
    rec.add_metric("sim_host_mbps_predecode", pre.host_mbps);
    rec.add_metric("sim_host_mbps_legacy", leg.host_mbps);
    rec.add_metric("predecode_speedup", speedup);
    return rec.finish();
}
