/**
 * @file
 * Host simulation speed: the three interpreter tiers — threaded-code,
 * predecoded, and the legacy decode-per-step loop
 * (docs/PERFORMANCE.md, "Backend tiers").
 *
 * This bench tracks the *simulator's* performance trajectory, not the
 * modeled hardware's: it runs the Figure 13 CSV workload (scaled up so
 * the interpreter loop dominates host time) through the wave scheduler
 * serially, once per backend, and reports host MB/s for each.
 * Simulated counters are asserted bit-identical between the tiers —
 * the same invariant tests/test_predecode.cpp and
 * tests/test_threaded.cpp pin per kernel.
 *
 * The threaded tier pays a one-time compile (DecodedProgram lowering to
 * the flat micro-op stream): `compile_seconds` measures a cold build,
 * and the amortization study converts it into the input bytes a lane
 * must stream before the faster loop has paid for the compile — with
 * the shared image cache, the whole multi-wave run pays it once.
 *
 * It also tracks the *host data path* (docs/PERFORMANCE.md, "Host
 * data path & ownership"): the scheduler's per-wave phase breakdown
 * (setup / simulate / harvest host seconds) and a job-construction
 * study that rebuilds the same chunked workload twice — once slicing a
 * shared input arena (the current zero-copy model) and once deep-
 * copying every chunk into a private arena (the pre-arena owned-Bytes
 * model) — to show chunking cost is O(jobs), not O(bytes).
 *
 * Flags: --json <path> (BENCH_simspeed.json schema: the standard bench
 * envelope plus metrics.sim_host_mbps_threaded / _predecode / _legacy,
 * .threaded_speedup (threaded vs predecode), .predecode_speedup
 * (predecode vs legacy), .compile_seconds / .compile_amortize_kib, the
 * phase breakdown metrics.host_{setup,simulate,harvest}_seconds /
 * .host_setup_share, and the setup study
 * metrics.host_setup_{arena,copy}_seconds / .setup_speedup),
 * --metrics <path> (Prometheus-style text exposition of the full
 * telemetry registry; docs/OBSERVABILITY.md), --dump-compiled (print
 * the threaded-code image of the CSV kernel — the flat micro-op stream
 * and resolved arc tables next to the disassembler's per-state listing
 * — then exit).
 */
#include "support.hpp"

#include "assembler/disasm.hpp"
#include "core/decoded_program.hpp"
#include "core/threaded_program.hpp"
#include "kernels/csv.hpp"
#include "runtime/kernel_spec.hpp"
#include "workloads/generators.hpp"

#include <chrono>
#include <cstring>

int
main(int argc, char **argv)
{
    using namespace udp;
    using namespace udp::bench;
    using Clock = std::chrono::steady_clock;

    const auto spec = kernels::csv_kernel_spec();

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dump-compiled") == 0) {
            // Debug view: the compiled image, eyeballable next to the
            // source-level state listing when backends diverge.
            const auto cp = shared_compiled(*spec.program);
            std::printf("== threaded-code image: %s ==\n%s\n",
                        spec.name.c_str(),
                        disassemble_compiled(*cp).c_str());
            std::printf("== source state @entry (disassemble_state) ==\n%s",
                        disassemble_state(*spec.program,
                                          spec.program->entry)
                            .c_str());
            return 0;
        }
    }

    MetricsRecorder rec("bench_simspeed", argc, argv);
    set_sim_threads(1); // serial: measure the interpreter, not the pool

    // ~3.8 MB of CSV so one measured run simulates a few million cycles.
    const std::string text = workloads::crimes_csv(20'000);
    const Bytes data(text.begin(), text.end());

    // 8 KiB rows-aligned chunks: half the per-job input cap, so the
    // extracted field region cannot overflow the output half-window.
    // ~240 jobs over 32 windows -> a multi-wave serial run.
    const std::size_t chunk = 8 * 1024;

    struct PathResult {
        double host_seconds = 0; ///< best-of-reps simulation time
        double host_mbps = 0;
        double setup_seconds = 0;   ///< best run: stage+assign phase
        double simulate_seconds = 0; ///< best run: lane interpreter phase
        double harvest_seconds = 0; ///< best run: unstage+bookkeeping
        LaneStats total;
        Cycles wall = 0;
    };
    const auto measure = [&](SimBackend backend) {
        set_sim_backend(backend);
        PathResult r;
        const int reps = 5; // best-of-5 absorbs host scheduling noise
        for (int i = 0; i < reps; ++i) {
            // Rebuild the jobs inside the toggle so the plans' resolved
            // images (JobPlan::decoded/compiled) reflect the tier under
            // test.
            const auto jobs = runtime::chunk_jobs(
                spec, runtime::ArenaSlice::borrow(data), chunk,
                runtime::align_after_delim('\n'));
            runtime::Scheduler sched(sched_options());
            const auto rep = sched.run(jobs);
            if (i == 0 || rep.host_seconds < r.host_seconds) {
                r.host_seconds = rep.host_seconds;
                r.setup_seconds = rep.host_setup_seconds;
                r.simulate_seconds = rep.host_simulate_seconds;
                r.harvest_seconds = rep.host_harvest_seconds;
            }
            r.total = rep.total;
            r.wall = rep.wall_cycles;
        }
        r.host_mbps = r.host_seconds > 0
                          ? double(data.size()) / r.host_seconds / 1e6
                          : 0;
        return r;
    };

    // Warm every tier (image caches, page faults) before timing.
    measure(SimBackend::Threaded);
    measure(SimBackend::Predecode);
    measure(SimBackend::Legacy);
    const auto thr = measure(SimBackend::Threaded);
    const auto pre = measure(SimBackend::Predecode);
    const auto leg = measure(SimBackend::Legacy);
    set_sim_backend(SimBackend::Threaded); // restore default for finish()

    if (thr.total != pre.total || thr.wall != pre.wall ||
        pre.total != leg.total || pre.wall != leg.wall)
        throw UdpError("bench_simspeed: simulated counters diverge "
                       "between interpreter tiers");

    const double pre_speedup =
        leg.host_mbps > 0 ? pre.host_mbps / leg.host_mbps : 0;
    const double thr_speedup =
        pre.host_mbps > 0 ? thr.host_mbps / pre.host_mbps : 0;

    print_header("Host simulation speed (serial, CSV x20000 rows)",
                 {"backend", "host MB/s", "host s/run", "sim cycles"});
    print_row({"threaded", fmt(thr.host_mbps), fmt(thr.host_seconds, 4),
               fmt(double(thr.wall), 0)});
    print_row({"predecode", fmt(pre.host_mbps), fmt(pre.host_seconds, 4),
               fmt(double(pre.wall), 0)});
    print_row({"legacy", fmt(leg.host_mbps), fmt(leg.host_seconds, 4),
               fmt(double(leg.wall), 0)});
    std::printf("\nthreaded speedup:  %.2fx over predecode (host time; "
                "simulated counters bit-identical)\n"
                "predecode speedup: %.2fx over legacy\n",
                thr_speedup, pre_speedup);

    // --- Compile cost and its amortization -------------------------------
    // A cold threaded-code build: Program -> DecodedProgram -> flat
    // micro-op stream + resolved arc tables (no caches involved).  The
    // shared_compiled() cache pays this once per program content; every
    // lane, wave and rep above reused one image.
    double compile_s = 0;
    for (int i = 0; i < 5; ++i) {
        const auto t0 = Clock::now();
        const CompiledProgram cold(*spec.program, nullptr);
        const double s =
            std::chrono::duration<double>(Clock::now() - t0).count();
        if (i == 0 || s < compile_s)
            compile_s = s;
    }
    // Input bytes at which the faster loop has repaid the compile:
    // compile_s == bytes * (1/thr_rate - 1/pre_rate).
    const double rate_gain =
        thr.host_seconds > 0 && pre.host_seconds > 0
            ? (pre.host_seconds - thr.host_seconds) / double(data.size())
            : 0;
    const double amortize_kib =
        rate_gain > 0 ? compile_s / rate_gain / 1024.0 : 0;
    print_header("Threaded-code compile cost (cold, best of 5)",
                 {"metric", "value"});
    print_row({"compile ms", fmt(compile_s * 1e3, 3)});
    print_row({"amortized after KiB", fmt(amortize_kib, 1)});
    print_row({"this run's input KiB", fmt(data.size() / 1024.0, 1)});
    std::printf("\none compile serves all lanes and waves via the "
                "shared image cache\n");

    // --- Host phase breakdown (best threaded run) ------------------------
    // Setup = pack + validate + stage + assign; simulate = the lane
    // interpreter; harvest = unstage + result bookkeeping.  With the
    // arena data path, setup must stay a small share of the wave loop.
    const double phase_total =
        thr.setup_seconds + thr.simulate_seconds + thr.harvest_seconds;
    const double setup_share =
        phase_total > 0 ? thr.setup_seconds / phase_total : 0;
    print_header("Host wave-loop phase breakdown (threaded backend)",
                 {"phase", "host ms", "share"});
    const auto phase_row = [&](const char *name, double s) {
        print_row({name, fmt(s * 1e3, 3),
                   fmt(phase_total > 0 ? 100 * s / phase_total : 0, 1) +
                       "%"});
    };
    phase_row("setup (stage+assign)", thr.setup_seconds);
    phase_row("simulate", thr.simulate_seconds);
    phase_row("harvest", thr.harvest_seconds);

    // --- Setup study: arena slicing vs per-chunk deep copies -------------
    // Same chunked workload, built two ways.  The arena path pins one
    // shared InputArena and hands out sub-slices; the copy path
    // materializes a private arena per chunk — exactly what the old
    // owned-Bytes JobPlan model paid.  A bigger corpus so the copied
    // bytes dominate fixed per-plan overhead.
    {
        const std::string big_text = workloads::crimes_csv(80'000);
        const Bytes big(big_text.begin(), big_text.end());
        const auto build_arena = [&] {
            return runtime::chunk_jobs(
                spec, runtime::ArenaSlice::borrow(big), chunk,
                runtime::align_after_delim('\n'));
        };
        const auto build_copy = [&] {
            auto jobs = build_arena();
            for (auto &pl : jobs) {
                // The owned-Bytes model deep-copied every chunk into
                // its plan *and* again into the CSV prepare hook's
                // staged region ({0, p.input} was a Bytes copy).
                pl.input = runtime::ArenaSlice::take(
                    Bytes(pl.input.begin(), pl.input.end()));
                for (auto &st : pl.stages)
                    st.data = runtime::ArenaSlice::take(
                        Bytes(st.data.begin(), st.data.end()));
            }
            return jobs;
        };
        const auto time_build = [&](const auto &build) {
            double best = 0;
            std::size_t jobs = 0;
            for (int i = 0; i < 7; ++i) { // best-of-7: pure host timing
                const auto t0 = Clock::now();
                const auto js = build();
                const double s =
                    std::chrono::duration<double>(Clock::now() - t0)
                        .count();
                jobs = js.size();
                if (i == 0 || s < best)
                    best = s;
            }
            return std::make_pair(best, jobs);
        };
        const auto [arena_s, njobs] = time_build(build_arena);
        const auto [copy_s, njobs2] = time_build(build_copy);
        (void)njobs2;
        const double setup_speedup = arena_s > 0 ? copy_s / arena_s : 0;

        print_header("Job construction: arena slices vs chunk copies",
                     {"data path", "host ms", "jobs", "MB chunked"});
        print_row({"arena slices", fmt(arena_s * 1e3, 3),
                   std::to_string(njobs), fmt(big.size() / 1e6, 1)});
        print_row({"per-chunk copies", fmt(copy_s * 1e3, 3),
                   std::to_string(njobs), fmt(big.size() / 1e6, 1)});
        std::printf("\nsetup speedup: %.2fx (chunking %zu jobs without "
                    "copying payload bytes)\n",
                    setup_speedup, njobs);
        rec.add_metric("host_setup_arena_seconds", arena_s);
        rec.add_metric("host_setup_copy_seconds", copy_s);
        rec.add_metric("setup_jobs", double(njobs));
        rec.add_metric("setup_speedup", setup_speedup);
    }

    rec.add_metric("input_bytes", double(data.size()));
    rec.add_metric("sim_cycles", double(thr.wall));
    rec.add_metric("sim_host_mbps_threaded", thr.host_mbps);
    rec.add_metric("sim_host_mbps_predecode", pre.host_mbps);
    rec.add_metric("sim_host_mbps_legacy", leg.host_mbps);
    rec.add_metric("threaded_speedup", thr_speedup);
    rec.add_metric("predecode_speedup", pre_speedup);
    rec.add_metric("compile_seconds", compile_s);
    rec.add_metric("compile_amortize_kib", amortize_kib);
    rec.add_metric("host_setup_seconds", thr.setup_seconds);
    rec.add_metric("host_simulate_seconds", thr.simulate_seconds);
    rec.add_metric("host_harvest_seconds", thr.harvest_seconds);
    rec.add_metric("host_setup_share", setup_share);
    return rec.finish();
}
