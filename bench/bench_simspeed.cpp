/**
 * @file
 * Host simulation speed: predecoded fast path vs. the legacy
 * decode-per-step interpreter (docs/PERFORMANCE.md).
 *
 * This bench tracks the *simulator's* performance trajectory, not the
 * modeled hardware's: it runs the Figure 13 CSV workload (scaled up so
 * the interpreter loop dominates host time) through the wave scheduler
 * serially, once per interpreter path, and reports host MB/s for each.
 * Simulated counters are asserted bit-identical between the paths —
 * the same invariant tests/test_predecode.cpp pins per kernel.
 *
 * It also tracks the *host data path* (docs/PERFORMANCE.md, "Host
 * data path & ownership"): the scheduler's per-wave phase breakdown
 * (setup / simulate / harvest host seconds) and a job-construction
 * study that rebuilds the same chunked workload twice — once slicing a
 * shared input arena (the current zero-copy model) and once deep-
 * copying every chunk into a private arena (the pre-arena owned-Bytes
 * model) — to show chunking cost is O(jobs), not O(bytes).
 *
 * Flags: --json <path> (BENCH_simspeed.json schema: the standard bench
 * envelope plus metrics.sim_host_mbps_predecode / _legacy /
 * .predecode_speedup, the phase breakdown
 * metrics.host_{setup,simulate,harvest}_seconds / .host_setup_share,
 * and the setup study metrics.host_setup_{arena,copy}_seconds /
 * .setup_speedup), --metrics <path> (Prometheus-style text exposition
 * of the full telemetry registry — every scheduled run in the bench
 * feeds it; docs/OBSERVABILITY.md).
 */
#include "support.hpp"

#include "core/decoded_program.hpp"
#include "kernels/csv.hpp"
#include "runtime/kernel_spec.hpp"
#include "workloads/generators.hpp"

#include <chrono>

int
main(int argc, char **argv)
{
    using namespace udp;
    using namespace udp::bench;
    using Clock = std::chrono::steady_clock;

    MetricsRecorder rec("bench_simspeed", argc, argv);
    set_sim_threads(1); // serial: measure the interpreter, not the pool

    // ~3.8 MB of CSV so one measured run simulates a few million cycles.
    const std::string text = workloads::crimes_csv(20'000);
    const Bytes data(text.begin(), text.end());
    const auto spec = kernels::csv_kernel_spec();

    // 8 KiB rows-aligned chunks: half the per-job input cap, so the
    // extracted field region cannot overflow the output half-window.
    // ~240 jobs over 32 windows -> a multi-wave serial run.
    const std::size_t chunk = 8 * 1024;

    struct PathResult {
        double host_seconds = 0; ///< best-of-reps simulation time
        double host_mbps = 0;
        double setup_seconds = 0;   ///< best run: stage+assign phase
        double simulate_seconds = 0; ///< best run: lane interpreter phase
        double harvest_seconds = 0; ///< best run: unstage+bookkeeping
        LaneStats total;
        Cycles wall = 0;
    };
    const auto measure = [&](bool predecode) {
        set_predecode_enabled(predecode);
        PathResult r;
        const int reps = 5; // best-of-5 absorbs host scheduling noise
        for (int i = 0; i < reps; ++i) {
            // Rebuild the jobs inside the toggle so JobPlan::decoded
            // reflects the path under test.
            const auto jobs = runtime::chunk_jobs(
                spec, runtime::ArenaSlice::borrow(data), chunk,
                runtime::align_after_delim('\n'));
            runtime::Scheduler sched(sched_options());
            const auto rep = sched.run(jobs);
            if (i == 0 || rep.host_seconds < r.host_seconds) {
                r.host_seconds = rep.host_seconds;
                r.setup_seconds = rep.host_setup_seconds;
                r.simulate_seconds = rep.host_simulate_seconds;
                r.harvest_seconds = rep.host_harvest_seconds;
            }
            r.total = rep.total;
            r.wall = rep.wall_cycles;
        }
        r.host_mbps = r.host_seconds > 0
                          ? double(data.size()) / r.host_seconds / 1e6
                          : 0;
        return r;
    };

    // Warm both paths (decode cache, page faults) before timing.
    measure(true);
    measure(false);
    const auto pre = measure(true);
    const auto leg = measure(false);
    set_predecode_enabled(true); // restore the default for finish()

    if (pre.total != leg.total || pre.wall != leg.wall)
        throw UdpError("bench_simspeed: simulated counters diverge "
                       "between interpreter paths");

    const double speedup =
        leg.host_mbps > 0 ? pre.host_mbps / leg.host_mbps : 0;

    print_header("Host simulation speed (serial, CSV x20000 rows)",
                 {"path", "host MB/s", "host s/run", "sim cycles"});
    print_row({"predecode", fmt(pre.host_mbps), fmt(pre.host_seconds, 4),
               fmt(double(pre.wall), 0)});
    print_row({"legacy", fmt(leg.host_mbps), fmt(leg.host_seconds, 4),
               fmt(double(leg.wall), 0)});
    std::printf("\npredecode speedup: %.2fx (host time; simulated "
                "counters bit-identical)\n",
                speedup);

    // --- Host phase breakdown (best predecode run) -----------------------
    // Setup = pack + validate + stage + assign; simulate = the lane
    // interpreter; harvest = unstage + result bookkeeping.  With the
    // arena data path, setup must stay a small share of the wave loop.
    const double phase_total =
        pre.setup_seconds + pre.simulate_seconds + pre.harvest_seconds;
    const double setup_share =
        phase_total > 0 ? pre.setup_seconds / phase_total : 0;
    print_header("Host wave-loop phase breakdown (predecode path)",
                 {"phase", "host ms", "share"});
    const auto phase_row = [&](const char *name, double s) {
        print_row({name, fmt(s * 1e3, 3),
                   fmt(phase_total > 0 ? 100 * s / phase_total : 0, 1) +
                       "%"});
    };
    phase_row("setup (stage+assign)", pre.setup_seconds);
    phase_row("simulate", pre.simulate_seconds);
    phase_row("harvest", pre.harvest_seconds);

    // --- Setup study: arena slicing vs per-chunk deep copies -------------
    // Same chunked workload, built two ways.  The arena path pins one
    // shared InputArena and hands out sub-slices; the copy path
    // materializes a private arena per chunk — exactly what the old
    // owned-Bytes JobPlan model paid.  A bigger corpus so the copied
    // bytes dominate fixed per-plan overhead.
    {
        const std::string big_text = workloads::crimes_csv(80'000);
        const Bytes big(big_text.begin(), big_text.end());
        const auto build_arena = [&] {
            return runtime::chunk_jobs(
                spec, runtime::ArenaSlice::borrow(big), chunk,
                runtime::align_after_delim('\n'));
        };
        const auto build_copy = [&] {
            auto jobs = build_arena();
            for (auto &pl : jobs) {
                // The owned-Bytes model deep-copied every chunk into
                // its plan *and* again into the CSV prepare hook's
                // staged region ({0, p.input} was a Bytes copy).
                pl.input = runtime::ArenaSlice::take(
                    Bytes(pl.input.begin(), pl.input.end()));
                for (auto &st : pl.stages)
                    st.data = runtime::ArenaSlice::take(
                        Bytes(st.data.begin(), st.data.end()));
            }
            return jobs;
        };
        const auto time_build = [&](const auto &build) {
            double best = 0;
            std::size_t jobs = 0;
            for (int i = 0; i < 7; ++i) { // best-of-7: pure host timing
                const auto t0 = Clock::now();
                const auto js = build();
                const double s =
                    std::chrono::duration<double>(Clock::now() - t0)
                        .count();
                jobs = js.size();
                if (i == 0 || s < best)
                    best = s;
            }
            return std::make_pair(best, jobs);
        };
        const auto [arena_s, njobs] = time_build(build_arena);
        const auto [copy_s, njobs2] = time_build(build_copy);
        (void)njobs2;
        const double setup_speedup = arena_s > 0 ? copy_s / arena_s : 0;

        print_header("Job construction: arena slices vs chunk copies",
                     {"data path", "host ms", "jobs", "MB chunked"});
        print_row({"arena slices", fmt(arena_s * 1e3, 3),
                   std::to_string(njobs), fmt(big.size() / 1e6, 1)});
        print_row({"per-chunk copies", fmt(copy_s * 1e3, 3),
                   std::to_string(njobs), fmt(big.size() / 1e6, 1)});
        std::printf("\nsetup speedup: %.2fx (chunking %zu jobs without "
                    "copying payload bytes)\n",
                    setup_speedup, njobs);
        rec.add_metric("host_setup_arena_seconds", arena_s);
        rec.add_metric("host_setup_copy_seconds", copy_s);
        rec.add_metric("setup_jobs", double(njobs));
        rec.add_metric("setup_speedup", setup_speedup);
    }

    rec.add_metric("input_bytes", double(data.size()));
    rec.add_metric("sim_cycles", double(pre.wall));
    rec.add_metric("sim_host_mbps_predecode", pre.host_mbps);
    rec.add_metric("sim_host_mbps_legacy", leg.host_mbps);
    rec.add_metric("predecode_speedup", speedup);
    rec.add_metric("host_setup_seconds", pre.setup_seconds);
    rec.add_metric("host_simulate_seconds", pre.simulate_seconds);
    rec.add_metric("host_harvest_seconds", pre.harvest_seconds);
    rec.add_metric("host_setup_share", setup_share);
    return rec.finish();
}
