/**
 * @file
 * Figure 7 tour: variable-size symbols on the UDP.
 *
 * Builds the paper's example code (00, 01, 10, 110, 111), shows how the
 * SsRef design encodes it (symbol-size register + refill transitions),
 * disassembles the program, and decodes a message while reporting the
 * refill activity.
 */
#include "assembler/disasm.hpp"
#include "baselines/huffman.hpp"
#include "core/machine.hpp"
#include "kernels/huffman.hpp"

#include <cstdio>
#include <string>

using namespace udp;

int
main()
{
    // Symbol frequencies shaped so the canonical code is the Figure 7
    // tree: A,B,C get 2-bit codes; D,E get 3-bit codes.
    Bytes sample;
    for (int i = 0; i < 9; ++i)
        sample.push_back('A');
    for (int i = 0; i < 8; ++i)
        sample.push_back('B');
    for (int i = 0; i < 7; ++i)
        sample.push_back('C');
    for (int i = 0; i < 3; ++i)
        sample.push_back('D');
    for (int i = 0; i < 2; ++i)
        sample.push_back('E');

    const auto code = baselines::build_huffman(sample);
    std::printf("canonical code (Figure 7):\n");
    for (const char c : std::string("ABCDE")) {
        const auto idx = static_cast<unsigned char>(c);
        std::printf("  %c : len %u, code ", c, code.length[idx]);
        for (int i = code.length[idx] - 1; i >= 0; --i)
            std::printf("%u", (code.code[idx] >> i) & 1);
        std::printf("\n");
    }

    const auto kernel =
        kernels::huffman_decoder(code, kernels::VarSymDesign::SsRef);
    std::printf("\nSsRef decoder program:\n%s\n",
                disassemble(kernel.program).c_str());

    const std::string msg = "ABBACDEAACD";
    const Bytes raw(msg.begin(), msg.end());
    Bytes enc = baselines::huffman_encode(raw, code);
    std::printf("message '%s' encodes to %zu bytes (%.2f bits/symbol)\n",
                msg.c_str(), enc.size(),
                8.0 * double(enc.size()) / double(msg.size()));
    enc.push_back(0); // pad so the tail decodes

    Machine m(AddressingMode::Restricted);
    Lane &lane = m.lane(0);
    lane.load(kernel.program);
    lane.set_input(enc);
    lane.run();

    const std::string got(lane.output().begin(),
                          lane.output().begin() + msg.size());
    std::printf("decoded: '%s' (%s)\n", got.c_str(),
                got == msg ? "round-trip ok" : "MISMATCH");
    std::printf("dispatches: %llu for %zu symbols "
                "(refill lets short codes share the wide dispatch)\n",
                static_cast<unsigned long long>(lane.stats().dispatches),
                msg.size());
    return 0;
}
