/**
 * @file
 * Intrusion-detection example: compile a NIDS-like pattern set to aDFA
 * programs partitioned across 8 UDP lanes, scan a packet stream, and
 * report matches, aggregate throughput and energy (Sections 2.1, 5.3).
 */
#include "core/machine.hpp"
#include "kernels/pattern.hpp"
#include "workloads/generators.hpp"

#include <cstdio>

using namespace udp;
using namespace udp::kernels;

int
main()
{
    const auto patterns = workloads::nids_patterns(32, /*complex=*/false);
    const Bytes payload =
        workloads::packet_payloads(512 * 1024, patterns, 0.01);

    std::printf("compiling %zu patterns into 8 aDFA lane groups...\n",
                patterns.size());
    const auto groups = pattern_groups(patterns, FaModel::Adfa, 8);

    Machine m(AddressingMode::Restricted);
    std::vector<JobSpec> jobs(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
        jobs[g].program = &groups[g].program;
        jobs[g].input = payload;
    }
    m.assign(std::move(jobs));
    const MachineResult res = m.run_parallel();

    std::uint64_t matches = 0;
    for (unsigned g = 0; g < groups.size(); ++g)
        matches += m.lane(g).accept_count();

    std::printf("\nscanned %.1f KB against %zu patterns on %u lanes\n",
                double(payload.size()) / 1024.0, patterns.size(),
                res.active_lanes);
    std::printf("matches     : %llu\n",
                static_cast<unsigned long long>(matches));
    std::printf("wall cycles : %llu\n",
                static_cast<unsigned long long>(res.wall_cycles));
    std::printf("stream rate : %.0f MB/s per lane group\n",
                double(payload.size()) /
                    (double(res.wall_cycles) / kClockHz) / 1e6);
    std::printf("energy      : %.3f mJ (restricted addressing)\n",
                1e3 * m.last_run_energy_j());

    // Show a few matched positions from lane 0.
    std::printf("\nfirst hits on lane 0:\n");
    const auto &hits = m.lane(0).accepts();
    for (std::size_t i = 0; i < std::min<std::size_t>(5, hits.size());
         ++i) {
        std::printf("  byte %llu, pattern #%u (%s)\n",
                    static_cast<unsigned long long>(
                        hits[i].stream_bit_pos / 8),
                    hits[i].id,
                    groups[0].patterns[hits[i].id].c_str());
    }
    return 0;
}
