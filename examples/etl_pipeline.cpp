/**
 * @file
 * ETL pipeline example: load a compressed TPC-H-like lineitem CSV into
 * the mini columnar store twice - CPU-only and with the UDP offloading
 * decompression + parsing - and compare the stage breakdowns
 * (the Figure 1 -> Figure 21 story in one program).
 */
#include "etl/loader.hpp"

#include <cstdio>

using namespace udp;
using namespace udp::etl;

int
main()
{
    const double sf = 2.0;
    std::printf("generating lineitem at SF %.1f (%zu rows)...\n", sf,
                static_cast<std::size_t>(sf * kRowsPerScale));
    const std::string csv = lineitem_csv(sf);
    const Bytes comp = compress_for_load(csv);
    std::printf("csv %.2f MB -> compressed %.2f MB\n\n",
                double(csv.size()) / 1e6, double(comp.size()) / 1e6);

    Table cpu_table("lineitem", lineitem_schema());
    const LoadBreakdown cpu = load_cpu(comp, cpu_table);

    Machine m(AddressingMode::Restricted);
    Table udp_table("lineitem", lineitem_schema());
    const LoadBreakdown udp = load_udp_offload(m, comp, udp_table, 32);

    auto show = [](const char *name, const LoadBreakdown &bd) {
        std::printf("%-12s io %.4fs | decompress %.4fs | parse %.4fs | "
                    "deserialize %.4fs | total %.4fs\n",
                    name, bd.io, bd.decompress, bd.parse, bd.deserialize,
                    bd.total_seconds());
    };
    show("CPU only", cpu);
    show("UDP offload", udp);

    std::printf("\nrows loaded  : %zu (identical: %s)\n",
                cpu_table.num_rows(),
                cpu_table.num_rows() == udp_table.num_rows() ? "yes"
                                                             : "NO");
    std::printf("table memory : %.2f MB (dictionary-encoded text)\n",
                double(cpu_table.bytes()) / 1e6);
    std::printf("CPU fraction of wall-clock (CPU-only run): %.1f%%\n",
                100 * cpu.cpu_seconds() / cpu.total_seconds());
    std::printf("accelerable work offloaded: %.4fs -> %.4fs (%.1fx)\n",
                cpu.decompress + cpu.parse, udp.decompress + udp.parse,
                (cpu.decompress + cpu.parse) /
                    (udp.decompress + udp.parse));
    return 0;
}
