/**
 * @file
 * Quickstart: build a small UDP program with the builder API, inspect
 * its EffCLiP layout, and run it on a lane.
 *
 * The program counts words and lines in a byte stream - a two-state
 * automaton exercising multi-way dispatch, majority arcs and actions.
 *
 * Build & run:  ./quickstart
 */
#include "assembler/builder.hpp"
#include "assembler/disasm.hpp"
#include "core/lane.hpp"

#include <cstdio>
#include <string>

using namespace udp;

int
main()
{
    // --- 1. Describe the automaton --------------------------------------
    ProgramBuilder b;
    const StateId gap = b.add_state();  // between words
    const StateId word = b.add_state(); // inside a word

    // r1 = word count, r2 = line count.
    const BlockId count_word =
        b.add_block({act_imm(Opcode::Addi, 1, 1, 1, true)});
    const BlockId count_line =
        b.add_block({act_imm(Opcode::Addi, 2, 2, 1, true)});

    b.on_symbol(gap, ' ', gap);
    b.on_symbol(gap, '\t', gap);
    b.on_symbol(gap, '\n', gap, count_line);
    b.on_majority(gap, word, count_word); // any other byte starts a word

    b.on_symbol(word, ' ', gap);
    b.on_symbol(word, '\t', gap);
    b.on_symbol(word, '\n', gap, count_line);
    b.on_majority(word, word);

    b.set_entry(gap);
    b.set_initial_symbol_bits(8);

    // --- 2. Assemble (EffCLiP layout + Figure 6 encoding) ----------------
    const Program prog = b.build();
    std::printf("%s\n", disassemble(prog).c_str());
    std::printf("layout: %zu dispatch words, %zu used (%.0f%% fill), "
                "%zu action words\n\n",
                prog.layout.dispatch_words, prog.layout.used_words,
                100 * prog.layout.fill_ratio(),
                prog.layout.action_words);

    // --- 3. Run on a lane -------------------------------------------------
    const std::string text =
        "the unstructured data processor\naccelerates ETL workloads\n"
        "and more\n";
    const Bytes input(text.begin(), text.end());

    LocalMemory mem(AddressingMode::Restricted);
    Lane lane(0, mem);
    lane.load(prog);
    lane.set_input(input);
    lane.run();

    std::printf("input bytes : %zu\n", input.size());
    std::printf("words       : %u\n", lane.reg(1));
    std::printf("lines       : %u\n", lane.reg(2));
    std::printf("cycles      : %llu (%.2f bytes/cycle)\n",
                static_cast<unsigned long long>(lane.stats().cycles),
                double(input.size()) / double(lane.stats().cycles));
    std::printf("lane rate   : %.0f MB/s at 1 GHz\n",
                lane.stats().rate_mbps());
    return 0;
}
