/**
 * @file
 * `udpasm_tool` - the command-line face of the UDP software stack:
 * assemble .udpasm sources to .udpbin images, disassemble images, and
 * run them on a simulated lane.
 *
 *   udpasm_tool asm  <in.udpasm> <out.udpbin>
 *   udpasm_tool dis  <in.udpbin>
 *   udpasm_tool run  <in.udpbin|in.udpasm> <input-file> [--nfa]
 */
#include "assembler/disasm.hpp"
#include "assembler/textasm.hpp"
#include "core/image.hpp"
#include "core/lane.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace udp;

namespace {

std::string
read_file(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw UdpError("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

Program
load_any(const std::string &path)
{
    if (path.size() > 7 &&
        path.compare(path.size() - 7, 7, ".udpbin") == 0)
        return load_program_file(path);
    return assemble(read_file(path));
}

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  udpasm_tool asm <in.udpasm> <out.udpbin>\n"
                 "  udpasm_tool dis <in.udpbin|in.udpasm>\n"
                 "  udpasm_tool run <program> <input-file> [--nfa]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc < 3)
            return usage();
        const std::string cmd = argv[1];

        if (cmd == "asm" && argc == 4) {
            const Program prog = assemble(read_file(argv[2]));
            save_program_file(prog, argv[3]);
            std::printf("%s: %zu states, %zu dispatch words (%.0f%% "
                        "fill), %zu action words -> %s\n",
                        argv[2], prog.states.size(),
                        prog.layout.dispatch_words,
                        100 * prog.layout.fill_ratio(),
                        prog.actions.size(), argv[3]);
            return 0;
        }
        if (cmd == "dis" && argc == 3) {
            std::printf("%s", disassemble(load_any(argv[2])).c_str());
            return 0;
        }
        if (cmd == "run" && (argc == 4 || argc == 5)) {
            const Program prog = load_any(argv[2]);
            const std::string text = read_file(argv[3]);
            const Bytes input(text.begin(), text.end());
            const bool nfa = argc == 5 && std::string(argv[4]) == "--nfa";

            LocalMemory mem(prog.addressing);
            Lane lane(0, mem);
            lane.load(prog);
            lane.set_input(input);
            const LaneStatus st = nfa ? lane.run_nfa() : lane.run();
            lane.finish_output();

            std::printf("status   : %s\n",
                        st == LaneStatus::Done ? "done" : "reject");
            std::printf("cycles   : %llu (%.0f MB/s at 1 GHz)\n",
                        static_cast<unsigned long long>(
                            lane.stats().cycles),
                        lane.stats().rate_mbps());
            std::printf("accepts  : %llu\n",
                        static_cast<unsigned long long>(
                            lane.accept_count()));
            std::printf("regs     :");
            for (unsigned r = 0; r < 8; ++r)
                std::printf(" r%u=%u", r, lane.reg(r));
            std::printf("\n");
            if (!lane.output().empty()) {
                std::printf("output   : %zu bytes: ",
                            lane.output().size());
                for (std::size_t i = 0;
                     i < std::min<std::size_t>(32, lane.output().size());
                     ++i) {
                    const std::uint8_t b = lane.output()[i];
                    std::printf(b >= 0x20 && b < 0x7F ? "%c" : "\\x%02x",
                                b);
                }
                std::printf("\n");
            }
            return 0;
        }
        return usage();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "udpasm_tool: %s\n", e.what());
        return 1;
    }
}
