/**
 * @file
 * Causal runtime tracing: job/wave spans merged with lane micro-events,
 * and an always-cheap flight recorder (docs/OBSERVABILITY.md).
 *
 * The telemetry layer (PR 6) aggregates; it cannot answer "why was
 * *this* job slow".  This layer records causality:
 *
 *  - `SpanTracer` is a TelemetrySink that turns Scheduler/executor
 *    lifecycle events into nested spans — job → attempt (retries are
 *    sibling attempts) → wave → lane-run — and interleaves them with
 *    the core Tracer's per-lane micro-events on one shared timeline.
 *    The export is Chrome `trace_event` JSON (Perfetto-loadable): one
 *    file shows the scheduler's decisions stacked directly above the
 *    micro-ops they caused.  Timestamps are deterministic *simulated*
 *    cycles (1 cycle = 1 ns at the nominal clock); per-wave host
 *    seconds ride along in span args as a secondary clock.
 *
 *  - `FlightRecorder` is a fixed-capacity ring of recent lifecycle
 *    events per worker thread, cheap enough to leave on in production:
 *    recording is lock-free (one relaxed atomic increment plus plain
 *    stores into a thread-owned ring), the hook in `run_parallel` is a
 *    single predicted-not-taken branch when detached, and simulated
 *    results are bit-identical with or without it.
 *
 * Both are purely observational, following the PR 6 sink discipline:
 * nullptr (the default) costs one branch and changes nothing.
 */
#pragma once

#include "core/machine.hpp"
#include "core/trace.hpp"
#include "runtime/telemetry.hpp"

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace udp::runtime {

// ---------------------------------------------------------------------------
// Span tracing.
// ---------------------------------------------------------------------------

/// One attempt of one job, placed on the shared timeline.
struct AttemptSpan {
    std::string job_name;       ///< copied: plans die before export
    std::uint64_t trace_id = 0; ///< unique per job across scheduler runs
    std::size_t job_index = 0;
    unsigned wave = 0;
    unsigned attempt = 1;
    unsigned lane = 0;
    LaneStatus status = LaneStatus::Done;
    FaultCode fault = FaultCode::None;
    Cycles submit = 0;  ///< global cycle the job was submitted
    Cycles start = 0;   ///< global cycle the attempt's wave opened
    Cycles service = 0; ///< lane cycles of this run
    Cycles end = 0;     ///< global cycle the result became visible
    bool final_disposition = false;
    bool quarantined = false;
};

/// One closed scheduler wave on the shared timeline.
struct WaveSpan {
    unsigned index = 0; ///< wave index within its scheduler run
    unsigned run = 0;   ///< 0-based scheduler-run ordinal within the trace
    unsigned jobs = 0;
    unsigned banks_used = 0;
    Cycles start = 0; ///< global cycle the wave opened
    Cycles wall = 0;
    double host_seconds = 0; ///< secondary (host) clock for this wave
};

/// Default cap on retained spans / absorbed lane micro-events; keep-first
/// with a dropped counter, bounding trace files in CI.
inline constexpr std::size_t kDefaultMaxSpans = std::size_t{1} << 16;
inline constexpr std::size_t kDefaultMaxLaneEvents = std::size_t{1} << 16;

/**
 * Builds one merged Chrome trace from scheduler lifecycle events and
 * lane micro-events.
 *
 * Lifecycle events arrive through the TelemetrySink interface, so a
 * SpanTracer drops into `SchedulerOptions::spans` or `run_job_on`'s
 * telemetry slot unchanged.  Lane cycle stamps are run-local (the
 * Tracer is cleared every wave); `absorb_lane_events` rebases them by
 * the wave's global start cycle so micro-ops land inside their
 * attempt's span.  Successive scheduler runs through one SpanTracer
 * lay out sequentially (`begin_schedule` advances the run base to the
 * current timeline end) and their trace ids stay globally unique.
 *
 * Not thread-safe: lifecycle events are emitted from the scheduler
 * caller's thread (telemetry.hpp); use one SpanTracer per run stream.
 */
class SpanTracer final : public TelemetrySink
{
  public:
    explicit SpanTracer(std::size_t max_spans = kDefaultMaxSpans,
                        std::size_t max_lane_events = kDefaultMaxLaneEvents);

    /// A scheduler run over `n_jobs` jobs is starting: lay it out after
    /// everything already recorded and reserve `n_jobs` trace ids.
    void begin_schedule(std::size_t n_jobs);

    /// Trace id of job `job_index` within the current scheduler run
    /// (ids stay unique across runs — see begin_schedule).
    std::uint64_t trace_id(std::size_t job_index) const {
        return run_trace_base_ + job_index;
    }

    // TelemetrySink: one attempt harvested / one wave closed.
    void on_job_run(const JobRunEvent &e) override;
    void on_wave(const WaveEvent &e) override;

    /// Pull the retained micro-events out of `t`, rebased so run-local
    /// cycle 0 lands at global cycle `wave_start` (the emitting wave's
    /// queue wait).  The caller clears the tracer afterwards — stamps
    /// restart per wave, so stale events would rebase wrongly.
    void absorb_lane_events(const Tracer &t, Cycles wave_start);

    /// Emit everything as one Chrome trace_event JSON document:
    /// scheduler pid (wave + job async tracks) above the machine pid
    /// (one track per lane: attempt slices over micro-events).
    void write_chrome_trace(std::ostream &os) const;

    /// Convenience: write the trace to a file; false on I/O failure.
    bool write_file(const std::string &path) const;

    /// Drop all recorded spans and events (the timeline restarts at 0).
    void clear();

    // Accessors for tests / capacity introspection.
    const std::vector<AttemptSpan> &attempts() const { return attempts_; }
    const std::vector<WaveSpan> &waves() const { return waves_; }
    std::size_t lane_event_count() const { return lane_events_.size(); }
    std::uint64_t dropped_spans() const { return dropped_spans_; }
    std::uint64_t dropped_lane_events() const { return dropped_lane_events_; }
    Cycles timeline_end() const { return timeline_end_; }

  private:
    struct PlacedEvent {
        TraceEvent ev;
        Cycles base = 0; ///< global cycle of the event's wave start
    };

    std::size_t max_spans_;
    std::size_t max_lane_events_;
    std::vector<AttemptSpan> attempts_;
    std::vector<WaveSpan> waves_;
    std::vector<PlacedEvent> lane_events_;
    std::uint64_t dropped_spans_ = 0;
    std::uint64_t dropped_lane_events_ = 0;
    Cycles run_base_ = 0;     ///< global cycle this scheduler run starts at
    Cycles run_wall_ = 0;     ///< wall cycles of closed waves in this run
    Cycles timeline_end_ = 0; ///< latest global cycle seen
    std::uint64_t next_trace_id_ = 0;
    std::uint64_t run_trace_base_ = 0; ///< first trace id of this run
    unsigned run_ordinal_ = 0;         ///< begin_schedule count
};

// ---------------------------------------------------------------------------
// Flight recorder.
// ---------------------------------------------------------------------------

/// What a flight-recorder entry records.
enum class FlightEventKind : std::uint8_t {
    LaneStart = 0, ///< lane run began (RunObserver, worker thread)
    LaneEnd,       ///< lane run finished; a = status, b = lane cycles
    JobRun,        ///< attempt harvested; a = status, b = attempt
    WaveClose,     ///< wave closed; a = jobs, b = wall cycles
    Quarantine,    ///< job gave up after max attempts; a = fault code
};

/// Printable kind name ("lane_start", ...).
std::string_view flight_event_kind_name(FlightEventKind k);

/// One recorded lifecycle event.
struct FlightEvent {
    std::uint64_t seq = 0; ///< global order across all threads
    std::uint64_t a = 0;   ///< kind-specific payload
    std::uint64_t b = 0;   ///< kind-specific payload
    FlightEventKind kind = FlightEventKind::LaneStart;
    std::uint8_t lane = 0; ///< lane (or job slot) the event concerns
};

/// Default events retained per worker-thread ring.
inline constexpr std::size_t kDefaultFlightRingCapacity = 256;

/// Worker-thread slots a FlightRecorder can serve concurrently.
inline constexpr unsigned kFlightRecorderSlots = 64;

/**
 * Always-cheap ring of recent lifecycle events, one ring per recording
 * thread.
 *
 * Thread model: the first record() from a thread claims a slot under a
 * mutex and caches it in a thread_local; every subsequent record() is
 * lock-free — one relaxed fetch_add for the global sequence number plus
 * plain stores into the ring the thread owns.  A thread releases its
 * slot when it exits (the jthread pool is created and joined inside
 * every run_parallel call, so pool slots recycle between runs; the
 * join gives the release a happens-before edge, keeping the threaded
 * backend TSan-clean).  Rings are not cleared on slot reuse: the
 * recorder deliberately keeps the *recent past* across runs.
 *
 * `snapshot()` requires quiescence — no concurrent record() calls — the
 * same contract as the telemetry histograms' perfectly-consistent
 * snapshots.  In the Scheduler that always holds: workers are joined
 * before the wave is harvested.
 *
 * Implements RunObserver, so `Machine::set_run_observer(&recorder)`
 * captures lane start/end on the worker threads themselves.
 */
class FlightRecorder final : public RunObserver
{
  public:
    explicit FlightRecorder(
        std::size_t ring_capacity = kDefaultFlightRingCapacity);
    ~FlightRecorder() override;

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /// Record one event from the calling thread.  Lock-free after the
    /// thread's first call.
    void record(FlightEventKind kind, unsigned lane, std::uint64_t a = 0,
                std::uint64_t b = 0);

    // RunObserver: lane runs observed on the executing worker thread.
    void on_lane_start(unsigned lane) override;
    void on_lane_end(unsigned lane, LaneStatus status,
                     Cycles cycles) override;

    /// All retained events merged across thread rings, in global
    /// (sequence) order.  Requires quiescence.
    std::vector<FlightEvent> snapshot() const;

    /// Lifetime event count (not capped by the rings).
    std::uint64_t total() const {
        return seq_.load(std::memory_order_relaxed);
    }

    /// Events evicted from rings (total - retained).  Quiescence only.
    std::uint64_t dropped() const;

    std::size_t ring_capacity() const { return capacity_; }

  private:
    struct Slot {
        std::vector<FlightEvent> buf; ///< grows to capacity, then wraps
        std::size_t next = 0;         ///< overwrite cursor once full
        std::uint64_t total = 0;
        bool in_use = false;
    };

    friend struct FlightRecorderTls;
    unsigned acquire_slot();
    void release_slot(unsigned slot);

    std::size_t capacity_;
    std::atomic<std::uint64_t> seq_{0};
    mutable std::mutex slots_mu_; ///< guards slot claim/release only
    std::array<Slot, kFlightRecorderSlots> slots_;
};

} // namespace udp::runtime
