/**
 * @file
 * Deterministic fault injection for the wave runtime
 * (docs/ROBUSTNESS.md).
 *
 * The containment machinery (LaneFault, Scheduler retry/quarantine)
 * must itself be testable, so `FaultInjector` corrupts JobPlans in
 * reproducible ways: every mutation is driven by a seeded splitmix64
 * stream, so the same seed over the same plans produces the same
 * faults — in tests, in bench_faults, under any thread count.
 *
 * Program mutations copy-on-write: the plan gets its own mutated
 * `Program` (and a freshly resolved predecoded image, keyed by the new
 * content fingerprint), so other plans sharing the original program are
 * untouched — which is exactly what the containment proof measures.
 *
 * Input mutations follow the same discipline against the arena model
 * (runtime/arena.hpp): arenas are immutable and shared by sibling
 * chunks, so `corrupt_input` materializes a *private* mutated arena for
 * the poisoned job only, and `truncate_input` just narrows the view
 * (same arena, no copy).  Sibling slices stay byte-identical — pinned
 * by Arena.FaultInjectorCopyOnWrite.
 */
#pragma once

#include "runtime/job.hpp"

namespace udp::runtime {

class FaultInjector
{
  public:
    explicit FaultInjector(std::uint64_t seed) : state_(seed) {}

    /// Next raw 64-bit value of the deterministic stream (splitmix64).
    std::uint64_t next();

    /// Uniform value in [0, bound); bound must be > 0.
    std::uint64_t next_below(std::uint64_t bound);

    /**
     * Overwrite every dispatch word with a reserved-transition-type
     * encoding: the decoded image still builds (lenient sentinels), but
     * the very first dispatch faults with FaultCode::BadDispatch on
     * both interpreter paths.  The guaranteed-fault probe.
     */
    void poison_program(JobPlan &plan);

    /// Overwrite one dispatch word (reserved type → BadDispatch if the
    /// slot is ever fetched).
    void poison_dispatch_word(JobPlan &plan, std::size_t slot);

    /// Overwrite one action word with an undefined opcode (BadAction if
    /// the word is ever fetched).
    void poison_action_word(JobPlan &plan, std::size_t addr);

    /**
     * Flip one seeded-random bit of the dispatch image (a soft-error
     * model).  May or may not fault — the containment contract is that
     * the wave always survives either way.  Returns the flipped word's
     * index.
     */
    std::size_t flip_program_bit(JobPlan &plan);

    /// XOR `count` seeded-random input bytes with seeded-random masks.
    void corrupt_input(JobPlan &plan, unsigned count = 1);

    /// Truncate the input window to its first `keep_bytes` bytes.
    void truncate_input(JobPlan &plan, std::size_t keep_bytes);

    /**
     * Arm a forced trap (FaultCode::ForcedTrap) at simulated cycle `at`
     * for the job's first `attempts` scheduler attempts.  With
     * `attempts` below the RetryPolicy's max_attempts this models a
     * *transient* fault: the retry runs clean.
     */
    void force_trap(JobPlan &plan, Cycles at, unsigned attempts = ~0u);

  private:
    /// Copy-on-write: give `plan` its own Program and re-resolve the
    /// predecoded image after mutation.
    std::shared_ptr<Program> own_program(JobPlan &plan);
    void refresh_decoded(JobPlan &plan);

    std::uint64_t state_;
};

} // namespace udp::runtime
