/**
 * @file
 * Deterministic fault injector implementation.
 */
#include "fault_injection.hpp"

#include "core/decoded_program.hpp"
#include "core/threaded_program.hpp"

namespace udp::runtime {

namespace {

/// Reserved transition type 7 in the low type field: decodes to the
/// invalid-dispatch sentinel, so fetching it faults with BadDispatch.
constexpr Word kPoisonDispatchWord = Word{7u} << 8;

/// Undefined opcode 0x7F in the opcode field: fetching it faults with
/// BadAction on both interpreter paths.
constexpr Word kPoisonActionWord = Word{0x7Fu} << 25;

} // namespace

std::uint64_t
FaultInjector::next()
{
    // splitmix64: tiny, seedable, and identical on every platform.
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
FaultInjector::next_below(std::uint64_t bound)
{
    if (bound == 0)
        throw UdpError("FaultInjector: next_below bound must be > 0");
    return next() % bound;
}

std::shared_ptr<Program>
FaultInjector::own_program(JobPlan &plan)
{
    if (!plan.program)
        throw UdpError("FaultInjector: job '" + plan.name +
                       "' has no program to corrupt");
    auto owned = std::make_shared<Program>(*plan.program);
    plan.program = owned;
    return owned;
}

void
FaultInjector::refresh_decoded(JobPlan &plan)
{
    // The shared images are keyed by program content; after a mutation
    // the plan must not keep running the stale (clean) ones.
    const SimBackend backend = sim_backend();
    plan.compiled = backend == SimBackend::Threaded
                        ? shared_compiled(*plan.program)
                        : nullptr;
    plan.decoded = backend == SimBackend::Legacy
                       ? nullptr
                       : (plan.compiled ? plan.compiled->decoded_shared()
                                        : shared_decoded(*plan.program));
}

void
FaultInjector::poison_program(JobPlan &plan)
{
    auto owned = own_program(plan);
    for (Word &w : owned->dispatch)
        w = kPoisonDispatchWord;
    refresh_decoded(plan);
}

void
FaultInjector::poison_dispatch_word(JobPlan &plan, std::size_t slot)
{
    auto owned = own_program(plan);
    if (slot >= owned->dispatch.size())
        throw UdpError("FaultInjector: dispatch slot out of range");
    owned->dispatch[slot] = kPoisonDispatchWord;
    refresh_decoded(plan);
}

void
FaultInjector::poison_action_word(JobPlan &plan, std::size_t addr)
{
    auto owned = own_program(plan);
    if (addr >= owned->actions.size())
        throw UdpError("FaultInjector: action address out of range");
    owned->actions[addr] = kPoisonActionWord;
    refresh_decoded(plan);
}

std::size_t
FaultInjector::flip_program_bit(JobPlan &plan)
{
    auto owned = own_program(plan);
    if (owned->dispatch.empty())
        throw UdpError("FaultInjector: program has no dispatch words");
    const std::size_t slot = next_below(owned->dispatch.size());
    const unsigned bit = static_cast<unsigned>(next_below(32));
    owned->dispatch[slot] ^= Word{1u} << bit;
    refresh_decoded(plan);
    return slot;
}

void
FaultInjector::corrupt_input(JobPlan &plan, unsigned count)
{
    if (plan.input.empty())
        throw UdpError("FaultInjector: job '" + plan.name +
                       "' has no input to corrupt");
    // Copy-on-write: arenas are immutable and shared by sibling chunks,
    // so the poisoned job materializes a private mutated arena and
    // re-pins; every other slice of the original stays byte-identical.
    Bytes mutated(plan.input.begin(), plan.input.end());
    for (unsigned i = 0; i < count; ++i) {
        const std::size_t at = next_below(mutated.size());
        // Non-zero mask so every pick really changes the byte.
        const auto mask =
            static_cast<std::uint8_t>(1 + next_below(255));
        mutated[at] = static_cast<std::uint8_t>(mutated[at] ^ mask);
    }
    plan.input = ArenaSlice::take(std::move(mutated));
}

void
FaultInjector::truncate_input(JobPlan &plan, std::size_t keep_bytes)
{
    // Truncation needs no copy at all: a shorter view of the same
    // arena, same pin.
    if (keep_bytes < plan.input.size())
        plan.input = plan.input.subslice(0, keep_bytes);
}

void
FaultInjector::force_trap(JobPlan &plan, Cycles at, unsigned attempts)
{
    plan.force_trap_cycle = at;
    plan.trap_attempts = attempts;
}

} // namespace udp::runtime
