/**
 * @file
 * The runtime job model (docs/RUNTIME.md).
 *
 * A `JobPlan` is everything needed to run one kernel invocation on one
 * lane: the program, a *non-owning* view of the input bytes pinned by
 * its `InputArena` (runtime/arena.hpp), the size of the local-memory
 * window the job occupies, regions to stage into that window before the
 * run (`MemStage`), registers to initialize, and regions to read back
 * after the run (`MemExtract`).  Kernels build plans once (see
 * runtime/kernel_spec.hpp) instead of open-coding a
 * load/set_input/run/unstage harness per call site.
 *
 * Ownership rules: a plan never owns payload bytes.  `input` (and every
 * `MemStage::data`) is an `ArenaSlice` — a view plus the shared_ptr
 * lifetime token that keeps the backing arena alive.  Chunking a stream
 * slices one arena instead of copying per chunk, retries re-pin the
 * same arena, and copying a plan copies pointers, never payloads.  The
 * lanes stream straight from arena memory, so the arena must stay
 * pinned until the run is harvested — enforced (not just documented) by
 * the `check_pinned` canary check in `stage_job`/`harvest_job`.
 *
 * A `JobResult` is the complete architectural outcome of one job: the
 * terminal status, the simulated counters, the final scalar registers,
 * the lane output buffer, recorded accepts, and the extracted memory
 * regions.  Results are host-side values only; they never alias machine
 * state, so a result stays valid after the lane is reassigned to the
 * next wave.  Result buffers may come from (and return to) a
 * `BufferPool`, so steady-state serving loops recycle instead of
 * reallocating (see Scheduler::recycle).
 */
#pragma once

#include "core/decoded_program.hpp"
#include "core/lane.hpp"
#include "core/threaded_program.hpp"
#include "core/program.hpp"
#include "core/stats.hpp"
#include "core/types.hpp"
#include "runtime/arena.hpp"

#include <array>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace udp::runtime {

/// Bytes staged into the job's window before the run (host/DLT side).
/// The data is an arena slice: staging the job's own input (the common
/// `{0, p.input}` pattern) pins the same arena instead of copying it.
struct MemStage {
    ByteAddr offset = 0; ///< window-relative byte offset
    ArenaSlice data;
};

/// A window region read back after the run.
struct MemExtract {
    ByteAddr offset = 0;  ///< window-relative byte offset
    std::size_t len = 0;  ///< fixed length (when end_reg < 0)
    int end_reg = -1;     ///< when >= 0: length = reg(end_reg) - offset
};

/// One schedulable kernel invocation.
struct JobPlan {
    std::string name;
    std::shared_ptr<const Program> program;
    /// Shared predecoded image of `program`, resolved once per job (not
    /// once per lane) by KernelSpec::make_job; null on the legacy path.
    std::shared_ptr<const DecodedProgram> decoded;
    /// Shared threaded-code image (core/threaded_program.hpp), resolved
    /// the same way; null unless the Threaded backend is active.
    std::shared_ptr<const CompiledProgram> compiled;
    /// Stream contents: a non-owning view pinned by its InputArena.
    /// Assigning a `Bytes` materializes a private arena (one move).
    ArenaSlice input;
    std::size_t window_bytes = kBankBytes;  ///< local-memory footprint
    bool nfa_mode = false;                  ///< run with Lane::run_nfa
    std::vector<std::pair<unsigned, Word>> init_regs;
    std::vector<MemStage> stages;
    std::vector<MemExtract> extracts;

    /// Per-job cycle budget: overrides the scheduler-wide
    /// `max_cycles_per_lane` when nonzero (0, the default, inherits it).
    /// How udp_service degrades overloaded tenants to smaller budgets
    /// without touching other tenants' jobs (docs/SERVICE.md).
    std::uint64_t max_cycles = 0;

    // Deterministic fault injection (runtime/fault_injection.hpp): arm
    // a ForcedTrap at this simulated cycle (0 = off), for the first
    // `trap_attempts` scheduler attempts only — so a transient fault is
    // one that succeeds once the Scheduler retries past that count.
    Cycles force_trap_cycle = 0;
    unsigned trap_attempts = ~0u; ///< default: trap on every attempt

    /// Local-memory banks the job's window occupies (>= 1).
    unsigned banks() const {
        return static_cast<unsigned>(
            ceil_div(window_bytes ? window_bytes : 1, kBankBytes));
    }
};

/// Architectural outcome of one job.
struct JobResult {
    LaneStatus status = LaneStatus::Done;
    LaneStats stats;
    std::array<Word, kNumScalarRegs> regs{};
    Bytes output;                     ///< lane output buffer (flushed)
    std::vector<AcceptEvent> accepts;
    std::vector<Bytes> extracts;      ///< one per JobPlan::extracts entry
    unsigned lane = 0;                ///< lane that ran the job
    unsigned wave = 0;                ///< wave of the final attempt
    /// Trap record of the final attempt (code == None on success).
    LaneFault fault;
    unsigned attempts = 1;    ///< runs the Scheduler gave this job
    bool quarantined = false; ///< faulted on every attempt; gave up
    /// Ended by JobControl::cancel: either never staged (attempts
    /// counts only real runs) or its last run's payload was discarded.
    /// When set, `status` is LaneStatus::Cancelled.
    bool cancelled = false;

    // Latency of the final attempt, in *simulated* cycles — so the
    // numbers are deterministic and independent of host thread count
    // (docs/OBSERVABILITY.md).  Submission happens at machine time 0;
    // a wave is a barrier, so a job's result becomes visible when its
    // wave closes.
    Cycles queue_wait_cycles = 0; ///< machine time of all earlier waves
    Cycles service_cycles = 0;    ///< this run's own lane cycles
    Cycles e2e_cycles = 0;        ///< queue wait + its wave's wall clock
};

/// Throw unless `r` completed cleanly.  Guards harnesses that used to
/// accept a truncated (TimedOut) or trapped run as success: the error
/// carries the terminal status and the lane's fault diagnosis.
inline void
require_done(const JobResult &r, const std::string &who)
{
    if (r.status == LaneStatus::Done)
        return;
    std::string msg = who + ": job did not complete (status ";
    msg += lane_status_name(r.status);
    msg += ")";
    if (r.fault)
        msg += " — " + r.fault.describe();
    throw UdpError(msg);
}

} // namespace udp::runtime
