/**
 * @file
 * Wave scheduler implementation.
 *
 * Waves are packed from a pending queue instead of all upfront: the
 * queue starts as the submission order (reproducing the original greedy
 * packing bit for bit when nothing faults) and faulted jobs re-enter at
 * the back, so retries land in later waves without perturbing the
 * placement of first-attempt jobs.
 */
#include "scheduler.hpp"

#include "assembler/disasm.hpp"
#include "executor.hpp"
#include "spantrace.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>

namespace udp::runtime {

namespace {

/// One job's slot within a wave.
struct Placement {
    std::size_t job = 0;     ///< index into the submitted plan vector
    unsigned start_bank = 0; ///< first bank (also the lane index)
    unsigned attempt = 1;    ///< 1-based attempt number of this run
    std::uint64_t budget = ~std::uint64_t{0}; ///< cycle budget of this run
};

/// A queued (re)run of one job.
struct Pending {
    std::size_t job = 0;
    unsigned attempt = 1;
    std::uint64_t budget = ~std::uint64_t{0};
};

/// A retry held back by RetryPolicy::backoff_waves: eligible to rejoin
/// the pending queue once `not_before` waves have closed.
struct Delayed {
    Pending pending;
    unsigned not_before = 0;
};

/// splitmix64 step (same generator family as runtime/FaultInjector):
/// deterministic backoff jitter from (seed, job, attempt).
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/// Detaches the flight recorder from the machine on scope exit, so a
/// borrowed machine never keeps observing after run() returns (or
/// throws).
struct ObserverGuard {
    Machine *m = nullptr;
    ~ObserverGuard() {
        if (m)
            m->set_run_observer(nullptr);
    }
};

} // namespace

Scheduler::Scheduler(SchedulerOptions opts)
    : opts_(opts), owned_(std::make_unique<Machine>(opts.mode)),
      machine_(owned_.get())
{
    if (opts_.threads)
        machine_->set_sim_threads(opts_.threads);
    if (opts_.lane_tracer)
        machine_->set_tracer(opts_.lane_tracer);
}

Scheduler::Scheduler(Machine &m, SchedulerOptions opts)
    : opts_(opts), machine_(&m)
{
    if (opts_.threads)
        machine_->set_sim_threads(opts_.threads);
    if (opts_.lane_tracer)
        machine_->set_tracer(opts_.lane_tracer);
}

ScheduleReport
Scheduler::run(const std::vector<JobPlan> &jobs)
{
    if (opts_.max_jobs_per_wave == 0 ||
        opts_.max_jobs_per_wave > kNumLanes)
        throw UdpError("Scheduler: max_jobs_per_wave must be 1..64");
    if (opts_.retry.max_attempts == 0)
        throw UdpError("Scheduler: retry.max_attempts must be >= 1");

    ScheduleReport report;
    report.jobs.resize(jobs.size());
    report.sim_threads = machine_->resolved_sim_threads();
    if (jobs.empty())
        return report;

    // Validate footprints before any wave runs (as the upfront packing
    // used to), so an oversized window cannot fail a run midway.
    for (const JobPlan &plan : jobs)
        if (plan.banks() > kNumBanks)
            throw UdpError("Scheduler: job '" + plan.name +
                           "' window exceeds local memory");

    std::deque<Pending> pending;
    for (std::size_t i = 0; i < jobs.size(); ++i)
        pending.push_back({i, 1,
                           jobs[i].max_cycles ? jobs[i].max_cycles
                                              : opts_.max_cycles_per_lane});
    // Retries serving a backoff delay (RetryPolicy::backoff_waves).
    std::vector<Delayed> delayed;

    if (opts_.spans)
        opts_.spans->begin_schedule(jobs.size());
    ObserverGuard observer_guard;
    if (opts_.recorder) {
        machine_->set_run_observer(opts_.recorder);
        observer_guard.m = machine_;
    }
    const bool capture_postmortems =
        opts_.postmortem.keep_last > 0 || !opts_.postmortem.dir.empty();
    // Faulted attempts of each job, oldest first, feeding the next
    // report's attempt history.  Only populated while capturing.
    std::map<std::size_t, std::vector<AttemptOutcome>> fault_history;
    std::size_t postmortem_files_written = 0;

    // Move delayed retries whose backoff has elapsed (<= `upto` waves)
    // back into the pending queue, preserving insertion order.
    const auto release_delayed = [&](unsigned upto) {
        for (auto it = delayed.begin(); it != delayed.end();) {
            if (it->not_before <= upto) {
                pending.push_back(it->pending);
                it = delayed.erase(it);
            } else {
                ++it;
            }
        }
    };

    const auto t0 = std::chrono::steady_clock::now();
    unsigned wave_index = 0;
    while (!pending.empty() || !delayed.empty()) {
        if (!delayed.empty()) {
            release_delayed(wave_index);
            if (pending.empty()) {
                // The queue would idle waiting out a backoff: release
                // the earliest delayed group instead — empty waves do
                // not exist, so the delay has no simulated-time cost.
                unsigned lo = delayed.front().not_before;
                for (const Delayed &d : delayed)
                    lo = std::min(lo, d.not_before);
                release_delayed(lo);
            }
        }
        const auto t_wave = std::chrono::steady_clock::now();
        // Machine time already spent on earlier waves: the queue wait
        // of every job running in this wave (submission is at t = 0).
        const Cycles queue_wait = report.wall_cycles;
        // Pack the next wave greedily from the queue head: consecutive
        // banks until the memory (64 banks) or lane budget is exhausted.
        std::vector<Placement> wave;
        unsigned cum_banks = 0;
        while (!pending.empty()) {
            const Pending &p = pending.front();
            if (opts_.control && opts_.control->cancelled(p.job)) {
                // Cancel-before-stage: drop the (re)run without staging
                // it.  attempts counts only runs the job actually got.
                JobResult jr;
                jr.status = LaneStatus::Cancelled;
                jr.cancelled = true;
                jr.attempts = p.attempt - 1;
                jr.queue_wait_cycles = report.wall_cycles;
                jr.e2e_cycles = report.wall_cycles;
                ++report.cancelled;
                recycle(std::move(report.jobs[p.job]));
                report.jobs[p.job] = std::move(jr);
                pending.pop_front();
                continue;
            }
            const unsigned banks = jobs[p.job].banks();
            if (!wave.empty() &&
                (cum_banks + banks > kNumBanks ||
                 wave.size() >= opts_.max_jobs_per_wave))
                break;
            wave.push_back({p.job, cum_banks, p.attempt, p.budget});
            cum_banks += banks;
            pending.pop_front();
        }
        if (wave.empty())
            continue; // every queued entry was cancelled

        // Stage and assign: lane index == the window's first bank.
        std::vector<JobSpec> specs(wave.back().start_bank + 1);
        for (const Placement &pl : wave) {
            const JobPlan &plan = jobs[pl.job];
            const ByteAddr base =
                static_cast<ByteAddr>(pl.start_bank) *
                static_cast<ByteAddr>(kBankBytes);
            validate_job(plan, base);
            for (const MemStage &s : plan.stages)
                machine_->stage(base + s.offset, s.data);
            JobSpec &js = specs[pl.start_bank];
            js.program = plan.program.get();
            js.input = plan.input;
            js.window_base = base;
            js.nfa_mode = plan.nfa_mode;
            js.init_regs = plan.init_regs;
            js.max_cycles = pl.budget;
            // An injected trap is transient: it only fires while the
            // attempt is within the plan's trap window.
            js.trap_cycle = pl.attempt <= plan.trap_attempts
                                ? plan.force_trap_cycle
                                : Cycles{0};
        }
        machine_->assign(std::move(specs));
        const auto t_staged = std::chrono::steady_clock::now();
        // Budgets are carried per JobSpec (they grow per retry), so the
        // machine-wide cap stays wide open here.
        const MachineResult mr = machine_->run_parallel();
        const auto t_simulated = std::chrono::steady_clock::now();

        WaveReport wr;
        wr.jobs = static_cast<unsigned>(wave.size());
        wr.active_lanes = mr.active_lanes;
        wr.banks_used = cum_banks;
        wr.wall_cycles = mr.wall_cycles;
        wr.energy_j = machine_->last_run_energy_j();
        wr.total = mr.total;

        for (const Placement &pl : wave) {
            const JobPlan &plan = jobs[pl.job];
            const ByteAddr base =
                static_cast<ByteAddr>(pl.start_bank) *
                static_cast<ByteAddr>(kBankBytes);
            JobResult jr = harvest_job(*machine_, pl.start_bank, base,
                                       plan, mr.status[pl.start_bank],
                                       &pool_);
            jr.wave = wave_index;
            jr.attempts = pl.attempt;
            jr.queue_wait_cycles = queue_wait;
            jr.service_cycles = jr.stats.cycles;
            jr.e2e_cycles = queue_wait + wr.wall_cycles;

            bool retried_now = false;
            const bool cancelled_now =
                opts_.control && opts_.control->cancelled(pl.job);
            const bool faulted = !cancelled_now &&
                                 (jr.status == LaneStatus::Faulted ||
                                  jr.status == LaneStatus::TimedOut);
            if (cancelled_now) {
                // Cancel-mid-wave: the attempt ran, but its payload is
                // discarded (buffers recycled) and any retry it would
                // have earned is suppressed.  Counters stay for
                // accounting; architectural outputs do not survive.
                if (jr.output.capacity() > 0)
                    pool_.release(std::move(jr.output));
                for (Bytes &e : jr.extracts)
                    if (e.capacity() > 0)
                        pool_.release(std::move(e));
                jr.output = Bytes{};
                jr.extracts.clear();
                jr.accepts.clear();
                jr.regs = {};
                jr.status = LaneStatus::Cancelled;
                jr.cancelled = true;
                jr.fault = LaneFault{};
                ++wr.cancelled;
                ++report.cancelled;
            } else if (faulted) {
                ++report.faulted_runs;
                if (pl.attempt < opts_.retry.max_attempts) {
                    // Requeue into a later wave, growing the watchdog
                    // budget for timeouts when the policy says so.
                    std::uint64_t budget = pl.budget;
                    if (jr.status == LaneStatus::TimedOut &&
                        opts_.retry.grow_cycle_budget &&
                        budget != ~std::uint64_t{0}) {
                        budget = budget > (~std::uint64_t{0} >> 1)
                                     ? ~std::uint64_t{0}
                                     : budget * 2;
                    }
                    // Exponential backoff (RetryPolicy::backoff_waves):
                    // attempt n's retry waits backoff << (n-1) waves,
                    // plus deterministic seeded jitter, before it may
                    // rejoin the queue.  delay 0 requeues immediately —
                    // the bit-identical pre-backoff behavior.
                    std::uint64_t delay = 0;
                    if (opts_.retry.backoff_waves) {
                        const unsigned shift =
                            pl.attempt > 16 ? 16u : pl.attempt - 1;
                        delay = std::uint64_t{opts_.retry.backoff_waves}
                                << shift;
                        if (opts_.retry.backoff_jitter)
                            delay +=
                                mix64(opts_.retry.backoff_seed ^
                                      (std::uint64_t(pl.job) << 20) ^
                                      pl.attempt) %
                                (std::uint64_t{
                                     opts_.retry.backoff_jitter} +
                                 1);
                    }
                    const Pending next{pl.job, pl.attempt + 1, budget};
                    if (delay == 0)
                        pending.push_back(next);
                    else
                        delayed.push_back(
                            {next,
                             wave_index + 1 +
                                 static_cast<unsigned>(std::min<
                                     std::uint64_t>(delay, 1u << 20))});
                    retried_now = true;
                    ++wr.retried;
                    ++report.retries;
                } else {
                    jr.quarantined = true;
                    ++wr.quarantined;
                    ++report.quarantined;
                }
            } else {
                ++wr.completed;
            }
            if (faulted && capture_postmortems) {
                const std::uint64_t tid =
                    opts_.spans ? opts_.spans->trace_id(pl.job) : 0;
                FaultReport fr;
                fr.job_name = plan.name;
                fr.job_index = pl.job;
                fr.trace_id = tid;
                fr.wave = wave_index;
                fr.attempt = pl.attempt;
                fr.max_attempts = opts_.retry.max_attempts;
                fr.lane = pl.start_bank;
                fr.status = jr.status;
                fr.fault = jr.fault;
                fr.quarantined = jr.quarantined;
                fr.will_retry = retried_now;
                fr.queue_wait_cycles = queue_wait;
                fr.service_cycles = jr.service_cycles;
                fr.attempt_history = fault_history[pl.job];
                // The lane's recent micro-events — rings still hold this
                // wave's run (they are cleared only after harvesting).
                if (const Tracer *t = machine_->tracer()) {
                    fr.recent_events = t->events(pl.start_bank);
                    fr.dropped_events = t->dropped(pl.start_bank);
                }
                fr.disassembly = disassemble_state(*plan.program,
                                                   jr.fault.state_base);
                if (!opts_.postmortem.dir.empty() &&
                    postmortem_files_written < opts_.postmortem.max_files) {
                    write_fault_report_file(opts_.postmortem.dir + "/" +
                                                postmortem_filename(fr),
                                            fr);
                    ++postmortem_files_written;
                }
                if (opts_.postmortem.keep_last > 0) {
                    postmortems_.push_back(std::move(fr));
                    while (postmortems_.size() >
                           opts_.postmortem.keep_last)
                        postmortems_.pop_front();
                }
            }
            if (faulted && capture_postmortems)
                fault_history[pl.job].push_back({wave_index, pl.attempt,
                                                 jr.status, jr.fault.code,
                                                 jr.fault.cycle});
            if (opts_.telemetry || opts_.spans || opts_.recorder) {
                JobRunEvent ev;
                ev.job_name = plan.name;
                ev.job_index = pl.job;
                ev.wave = wave_index;
                ev.attempt = pl.attempt;
                ev.lane = pl.start_bank;
                ev.status = jr.status;
                ev.fault = jr.fault.code;
                ev.queue_wait_cycles = jr.queue_wait_cycles;
                ev.service_cycles = jr.service_cycles;
                ev.e2e_cycles = jr.e2e_cycles;
                ev.input_bytes =
                    static_cast<std::uint64_t>(jr.stats.input_bytes());
                ev.final_disposition = !retried_now;
                ev.retried = retried_now;
                ev.quarantined = jr.quarantined;
                ev.cancelled = jr.cancelled;
                if (opts_.telemetry)
                    opts_.telemetry->on_job_run(ev);
                if (opts_.spans)
                    opts_.spans->on_job_run(ev);
                if (opts_.recorder) {
                    opts_.recorder->record(
                        FlightEventKind::JobRun, ev.lane,
                        static_cast<std::uint64_t>(ev.status),
                        ev.attempt);
                    if (ev.quarantined)
                        opts_.recorder->record(
                            FlightEventKind::Quarantine, ev.lane,
                            static_cast<std::uint64_t>(ev.fault),
                            ev.attempt);
                }
            }
            // Always the latest attempt's result; a retried job's entry
            // is overwritten when its final attempt lands — its buffers
            // go back to the pool instead of being freed.
            recycle(std::move(report.jobs[pl.job]));
            report.jobs[pl.job] = std::move(jr);
        }

        report.wall_cycles += wr.wall_cycles;
        report.energy_j += wr.energy_j;
        report.total.add(wr.total);
        const auto t_done = std::chrono::steady_clock::now();
        wr.host_seconds =
            std::chrono::duration<double>(t_done - t_wave).count();
        wr.host_setup_seconds =
            std::chrono::duration<double>(t_staged - t_wave).count();
        wr.host_simulate_seconds =
            std::chrono::duration<double>(t_simulated - t_staged).count();
        wr.host_harvest_seconds =
            std::chrono::duration<double>(t_done - t_simulated).count();
        report.host_setup_seconds += wr.host_setup_seconds;
        report.host_simulate_seconds += wr.host_simulate_seconds;
        report.host_harvest_seconds += wr.host_harvest_seconds;
        if (opts_.telemetry || opts_.spans || opts_.recorder) {
            WaveEvent ev;
            ev.index = wave_index;
            ev.jobs = wr.jobs;
            ev.banks_used = wr.banks_used;
            ev.completed = wr.completed;
            ev.retried = wr.retried;
            ev.quarantined = wr.quarantined;
            ev.cancelled = wr.cancelled;
            ev.wall_cycles = wr.wall_cycles;
            ev.host_seconds = wr.host_seconds;
            if (opts_.telemetry)
                opts_.telemetry->on_wave(ev);
            if (opts_.spans)
                opts_.spans->on_wave(ev);
            if (opts_.recorder)
                opts_.recorder->record(FlightEventKind::WaveClose,
                                       wave_index & 0xFF, ev.jobs,
                                       ev.wall_cycles);
        }
        if (opts_.spans) {
            // Merge this wave's lane micro-events onto the shared
            // timeline, then clear the rings: lane cycle stamps restart
            // every wave (Machine::assign hard-resets lanes), so stale
            // events would rebase against the wrong wave start.
            if (Tracer *t = machine_->tracer()) {
                opts_.spans->absorb_lane_events(*t, queue_wait);
                t->clear();
            }
        }
        report.waves.push_back(std::move(wr));
        ++wave_index;
    }
    report.host_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    return report;
}

void
Scheduler::recycle(JobResult &&r)
{
    if (r.output.capacity() > 0)
        pool_.release(std::move(r.output));
    for (Bytes &e : r.extracts)
        if (e.capacity() > 0)
            pool_.release(std::move(e));
    r.extracts.clear();
}

void
Scheduler::recycle(ScheduleReport &&rep)
{
    for (JobResult &jr : rep.jobs)
        recycle(std::move(jr));
}

JobLatencySummary
summarize_job_latencies(const std::vector<JobResult> &jobs)
{
    Histogram queue_wait, service, e2e;
    for (const JobResult &jr : jobs) {
        queue_wait.record(jr.queue_wait_cycles);
        service.record(jr.service_cycles);
        e2e.record(jr.e2e_cycles);
    }
    return {queue_wait.snapshot(), service.snapshot(), e2e.snapshot()};
}

} // namespace udp::runtime
