/**
 * @file
 * Wave scheduler implementation.
 */
#include "scheduler.hpp"

#include "executor.hpp"

#include <chrono>

namespace udp::runtime {

namespace {

/// One job's slot within a wave.
struct Placement {
    std::size_t job = 0;     ///< index into the submitted plan vector
    unsigned start_bank = 0; ///< first bank (also the lane index)
};

} // namespace

Scheduler::Scheduler(SchedulerOptions opts)
    : opts_(opts), owned_(std::make_unique<Machine>(opts.mode)),
      machine_(owned_.get())
{
    if (opts_.threads)
        machine_->set_sim_threads(opts_.threads);
}

Scheduler::Scheduler(Machine &m, SchedulerOptions opts)
    : opts_(opts), machine_(&m)
{
    if (opts_.threads)
        machine_->set_sim_threads(opts_.threads);
}

ScheduleReport
Scheduler::run(const std::vector<JobPlan> &jobs)
{
    if (opts_.max_jobs_per_wave == 0 ||
        opts_.max_jobs_per_wave > kNumLanes)
        throw UdpError("Scheduler: max_jobs_per_wave must be 1..64");

    ScheduleReport report;
    report.jobs.resize(jobs.size());
    report.sim_threads = machine_->resolved_sim_threads();
    if (jobs.empty())
        return report;

    // Pack jobs into waves in submission order: consecutive banks until
    // the memory (64 banks) or lane budget of the wave is exhausted.
    std::vector<std::vector<Placement>> waves;
    unsigned cum_banks = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const unsigned banks = jobs[i].banks();
        if (banks > kNumBanks)
            throw UdpError("Scheduler: job '" + jobs[i].name +
                           "' window exceeds local memory");
        if (waves.empty() || cum_banks + banks > kNumBanks ||
            waves.back().size() >= opts_.max_jobs_per_wave) {
            waves.emplace_back();
            cum_banks = 0;
        }
        waves.back().push_back({i, cum_banks});
        cum_banks += banks;
    }

    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t w = 0; w < waves.size(); ++w) {
        const auto &wave = waves[w];

        // Stage and assign: lane index == the window's first bank.
        std::vector<JobSpec> specs(wave.back().start_bank + 1);
        for (const Placement &pl : wave) {
            const JobPlan &plan = jobs[pl.job];
            const ByteAddr base =
                static_cast<ByteAddr>(pl.start_bank) *
                static_cast<ByteAddr>(kBankBytes);
            validate_job(plan, base);
            for (const MemStage &s : plan.stages)
                machine_->stage(base + s.offset, s.data);
            JobSpec &js = specs[pl.start_bank];
            js.program = plan.program.get();
            js.input = plan.input;
            js.window_base = base;
            js.nfa_mode = plan.nfa_mode;
            js.init_regs = plan.init_regs;
        }
        machine_->assign(std::move(specs));
        const MachineResult mr =
            machine_->run_parallel(opts_.max_cycles_per_lane);

        WaveReport wr;
        wr.jobs = static_cast<unsigned>(wave.size());
        wr.active_lanes = mr.active_lanes;
        wr.wall_cycles = mr.wall_cycles;
        wr.energy_j = machine_->last_run_energy_j();
        wr.total = mr.total;

        for (const Placement &pl : wave) {
            const JobPlan &plan = jobs[pl.job];
            const ByteAddr base =
                static_cast<ByteAddr>(pl.start_bank) *
                static_cast<ByteAddr>(kBankBytes);
            JobResult jr = harvest_job(*machine_, pl.start_bank, base,
                                       plan, mr.status[pl.start_bank]);
            jr.wave = static_cast<unsigned>(w);
            report.jobs[pl.job] = std::move(jr);
        }

        report.wall_cycles += wr.wall_cycles;
        report.energy_j += wr.energy_j;
        report.total.add(wr.total);
        report.waves.push_back(std::move(wr));
    }
    report.host_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    return report;
}

} // namespace udp::runtime
