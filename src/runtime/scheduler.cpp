/**
 * @file
 * Wave scheduler implementation.
 *
 * Waves are packed from a pending queue instead of all upfront: the
 * queue starts as the submission order (reproducing the original greedy
 * packing bit for bit when nothing faults) and faulted jobs re-enter at
 * the back, so retries land in later waves without perturbing the
 * placement of first-attempt jobs.
 */
#include "scheduler.hpp"

#include "executor.hpp"

#include <chrono>
#include <deque>

namespace udp::runtime {

namespace {

/// One job's slot within a wave.
struct Placement {
    std::size_t job = 0;     ///< index into the submitted plan vector
    unsigned start_bank = 0; ///< first bank (also the lane index)
    unsigned attempt = 1;    ///< 1-based attempt number of this run
    std::uint64_t budget = ~std::uint64_t{0}; ///< cycle budget of this run
};

/// A queued (re)run of one job.
struct Pending {
    std::size_t job = 0;
    unsigned attempt = 1;
    std::uint64_t budget = ~std::uint64_t{0};
};

} // namespace

Scheduler::Scheduler(SchedulerOptions opts)
    : opts_(opts), owned_(std::make_unique<Machine>(opts.mode)),
      machine_(owned_.get())
{
    if (opts_.threads)
        machine_->set_sim_threads(opts_.threads);
}

Scheduler::Scheduler(Machine &m, SchedulerOptions opts)
    : opts_(opts), machine_(&m)
{
    if (opts_.threads)
        machine_->set_sim_threads(opts_.threads);
}

ScheduleReport
Scheduler::run(const std::vector<JobPlan> &jobs)
{
    if (opts_.max_jobs_per_wave == 0 ||
        opts_.max_jobs_per_wave > kNumLanes)
        throw UdpError("Scheduler: max_jobs_per_wave must be 1..64");
    if (opts_.retry.max_attempts == 0)
        throw UdpError("Scheduler: retry.max_attempts must be >= 1");

    ScheduleReport report;
    report.jobs.resize(jobs.size());
    report.sim_threads = machine_->resolved_sim_threads();
    if (jobs.empty())
        return report;

    // Validate footprints before any wave runs (as the upfront packing
    // used to), so an oversized window cannot fail a run midway.
    for (const JobPlan &plan : jobs)
        if (plan.banks() > kNumBanks)
            throw UdpError("Scheduler: job '" + plan.name +
                           "' window exceeds local memory");

    std::deque<Pending> pending;
    for (std::size_t i = 0; i < jobs.size(); ++i)
        pending.push_back({i, 1, opts_.max_cycles_per_lane});

    const auto t0 = std::chrono::steady_clock::now();
    unsigned wave_index = 0;
    while (!pending.empty()) {
        const auto t_wave = std::chrono::steady_clock::now();
        // Machine time already spent on earlier waves: the queue wait
        // of every job running in this wave (submission is at t = 0).
        const Cycles queue_wait = report.wall_cycles;
        // Pack the next wave greedily from the queue head: consecutive
        // banks until the memory (64 banks) or lane budget is exhausted.
        std::vector<Placement> wave;
        unsigned cum_banks = 0;
        while (!pending.empty()) {
            const Pending &p = pending.front();
            const unsigned banks = jobs[p.job].banks();
            if (!wave.empty() &&
                (cum_banks + banks > kNumBanks ||
                 wave.size() >= opts_.max_jobs_per_wave))
                break;
            wave.push_back({p.job, cum_banks, p.attempt, p.budget});
            cum_banks += banks;
            pending.pop_front();
        }

        // Stage and assign: lane index == the window's first bank.
        std::vector<JobSpec> specs(wave.back().start_bank + 1);
        for (const Placement &pl : wave) {
            const JobPlan &plan = jobs[pl.job];
            const ByteAddr base =
                static_cast<ByteAddr>(pl.start_bank) *
                static_cast<ByteAddr>(kBankBytes);
            validate_job(plan, base);
            for (const MemStage &s : plan.stages)
                machine_->stage(base + s.offset, s.data);
            JobSpec &js = specs[pl.start_bank];
            js.program = plan.program.get();
            js.input = plan.input;
            js.window_base = base;
            js.nfa_mode = plan.nfa_mode;
            js.init_regs = plan.init_regs;
            js.max_cycles = pl.budget;
            // An injected trap is transient: it only fires while the
            // attempt is within the plan's trap window.
            js.trap_cycle = pl.attempt <= plan.trap_attempts
                                ? plan.force_trap_cycle
                                : Cycles{0};
        }
        machine_->assign(std::move(specs));
        // Budgets are carried per JobSpec (they grow per retry), so the
        // machine-wide cap stays wide open here.
        const MachineResult mr = machine_->run_parallel();

        WaveReport wr;
        wr.jobs = static_cast<unsigned>(wave.size());
        wr.active_lanes = mr.active_lanes;
        wr.banks_used = cum_banks;
        wr.wall_cycles = mr.wall_cycles;
        wr.energy_j = machine_->last_run_energy_j();
        wr.total = mr.total;

        for (const Placement &pl : wave) {
            const JobPlan &plan = jobs[pl.job];
            const ByteAddr base =
                static_cast<ByteAddr>(pl.start_bank) *
                static_cast<ByteAddr>(kBankBytes);
            JobResult jr = harvest_job(*machine_, pl.start_bank, base,
                                       plan, mr.status[pl.start_bank]);
            jr.wave = wave_index;
            jr.attempts = pl.attempt;
            jr.queue_wait_cycles = queue_wait;
            jr.service_cycles = jr.stats.cycles;
            jr.e2e_cycles = queue_wait + wr.wall_cycles;

            bool retried_now = false;
            const bool faulted = jr.status == LaneStatus::Faulted ||
                                 jr.status == LaneStatus::TimedOut;
            if (faulted) {
                ++report.faulted_runs;
                if (pl.attempt < opts_.retry.max_attempts) {
                    // Requeue into a later wave, growing the watchdog
                    // budget for timeouts when the policy says so.
                    std::uint64_t budget = pl.budget;
                    if (jr.status == LaneStatus::TimedOut &&
                        opts_.retry.grow_cycle_budget &&
                        budget != ~std::uint64_t{0}) {
                        budget = budget > (~std::uint64_t{0} >> 1)
                                     ? ~std::uint64_t{0}
                                     : budget * 2;
                    }
                    pending.push_back({pl.job, pl.attempt + 1, budget});
                    retried_now = true;
                    ++wr.retried;
                    ++report.retries;
                } else {
                    jr.quarantined = true;
                    ++wr.quarantined;
                    ++report.quarantined;
                }
            } else {
                ++wr.completed;
            }
            if (opts_.telemetry) {
                JobRunEvent ev;
                ev.job_name = plan.name;
                ev.job_index = pl.job;
                ev.wave = wave_index;
                ev.attempt = pl.attempt;
                ev.lane = pl.start_bank;
                ev.status = jr.status;
                ev.fault = jr.fault.code;
                ev.queue_wait_cycles = jr.queue_wait_cycles;
                ev.service_cycles = jr.service_cycles;
                ev.e2e_cycles = jr.e2e_cycles;
                ev.input_bytes =
                    static_cast<std::uint64_t>(jr.stats.input_bytes());
                ev.final_disposition = !retried_now;
                ev.retried = retried_now;
                ev.quarantined = jr.quarantined;
                opts_.telemetry->on_job_run(ev);
            }
            // Always the latest attempt's result; a retried job's entry
            // is overwritten when its final attempt lands.
            report.jobs[pl.job] = std::move(jr);
        }

        report.wall_cycles += wr.wall_cycles;
        report.energy_j += wr.energy_j;
        report.total.add(wr.total);
        wr.host_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t_wave)
                              .count();
        if (opts_.telemetry) {
            WaveEvent ev;
            ev.index = wave_index;
            ev.jobs = wr.jobs;
            ev.banks_used = wr.banks_used;
            ev.completed = wr.completed;
            ev.retried = wr.retried;
            ev.quarantined = wr.quarantined;
            ev.wall_cycles = wr.wall_cycles;
            ev.host_seconds = wr.host_seconds;
            opts_.telemetry->on_wave(ev);
        }
        report.waves.push_back(std::move(wr));
        ++wave_index;
    }
    report.host_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    return report;
}

JobLatencySummary
summarize_job_latencies(const std::vector<JobResult> &jobs)
{
    Histogram queue_wait, service, e2e;
    for (const JobResult &jr : jobs) {
        queue_wait.record(jr.queue_wait_cycles);
        service.record(jr.service_cycles);
        e2e.record(jr.e2e_cycles);
    }
    return {queue_wait.snapshot(), service.snapshot(), e2e.snapshot()};
}

} // namespace udp::runtime
