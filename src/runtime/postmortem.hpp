/**
 * @file
 * Post-mortem fault reports (docs/ROBUSTNESS.md, docs/OBSERVABILITY.md).
 *
 * Aggregate fault counters (PR 6) say *how often* lanes trap; a
 * post-mortem says what lane 37 was doing in the cycles before it did.
 * When a scheduled run ends Faulted or TimedOut the Scheduler snapshots
 * a `FaultReport`: the structured LaneFault, the job's attempt history,
 * the lane's recent micro-event ring (when a Tracer is attached), and a
 * defensive disassembly of the state the automaton trapped in.  Reports
 * are serialized via `metrics_json` to a `--postmortem <dir>` path and
 * the Scheduler keeps the last N queryable in memory — the future
 * `udpd` `/debug` endpoint reads that deque.
 */
#pragma once

#include "core/fault.hpp"
#include "core/lane.hpp"
#include "core/trace.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace udp {
class JsonWriter;
}

namespace udp::runtime {

/// Outcome of one earlier attempt of the same job (newest last).
struct AttemptOutcome {
    unsigned wave = 0;
    unsigned attempt = 1;
    LaneStatus status = LaneStatus::Done;
    FaultCode fault = FaultCode::None;
    Cycles cycle = 0; ///< simulated cycle of that attempt's trap
};

/// Structured snapshot of one faulted job run.
struct FaultReport {
    std::string job_name;
    std::size_t job_index = 0;
    std::uint64_t trace_id = 0; ///< matches the trace file's job span
    unsigned wave = 0;
    unsigned attempt = 1;       ///< attempt this report describes
    unsigned max_attempts = 1;  ///< the retry policy's cap
    unsigned lane = 0;
    LaneStatus status = LaneStatus::Faulted;
    LaneFault fault;            ///< what/where/when the lane trapped
    bool quarantined = false;   ///< final disposition (won't rerun)
    bool will_retry = false;    ///< requeued into a later wave
    Cycles queue_wait_cycles = 0;
    Cycles service_cycles = 0;
    /// Prior faulted attempts of the same job, oldest first.
    std::vector<AttemptOutcome> attempt_history;
    /// The lane's recent micro-events at the moment of capture (empty
    /// when no Tracer was attached), oldest first.
    std::vector<TraceEvent> recent_events;
    std::uint64_t dropped_events = 0; ///< evicted from the ring before capture
    /// Listing of the state the automaton trapped in (never throws on
    /// poisoned programs — see disassemble_state).
    std::string disassembly;
};

/// Emit one report as a JSON object under the writer's current position.
void write_fault_report_json(JsonWriter &w, const FaultReport &r);

/// Write one report as a standalone JSON document; false on I/O failure.
bool write_fault_report_file(const std::string &path, const FaultReport &r);

/// Deterministic filename for a report within a --postmortem dir:
/// "postmortem-job<index>-attempt<N>.json".
std::string postmortem_filename(const FaultReport &r);

/// Post-mortem capture knobs (SchedulerOptions::postmortem).
struct PostmortemPolicy {
    /// Directory reports are written to ("" = don't write files;
    /// in-memory capture still happens when `keep_last` > 0).  Created
    /// on first write if missing.
    std::string dir;
    /// Reports the Scheduler keeps queryable in memory, oldest evicted
    /// (0 = none).  Capture is fully off — one branch per faulted run —
    /// when this is 0 and `dir` is empty (the default).
    std::size_t keep_last = 0;
    /// Cap on report *files* one scheduler run writes into `dir` (a
    /// mass-timeout run can fault hundreds of times; the first reports
    /// carry the diagnosis).  In-memory capture ignores this cap.
    /// Filenames are deterministic per (job, attempt), so successive
    /// runs into the same dir overwrite matching reports.
    std::size_t max_files = 64;
};

} // namespace udp::runtime
