/**
 * @file
 * Telemetry implementation: histogram bucket math, registry
 * snapshots/merge, JSON and Prometheus-style expositions, and the
 * registry-backed lifecycle sink.
 */
#include "telemetry.hpp"

#include "core/metrics_json.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

namespace udp::runtime {

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

unsigned
Histogram::bucket_index(std::uint64_t v)
{
    if (v < kSubBuckets)
        return static_cast<unsigned>(v);
    // Power-of-two group of the MSB, split into 8 linear sub-buckets.
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
    const unsigned group = msb - kSubBits + 1; // >= 1
    const unsigned sub =
        static_cast<unsigned>((v >> (msb - kSubBits)) & (kSubBuckets - 1));
    return (group << kSubBits) | sub;
}

std::uint64_t
Histogram::bucket_upper(unsigned index)
{
    if (index < kSubBuckets)
        return index;
    const unsigned group = index >> kSubBits;
    const unsigned sub = index & (kSubBuckets - 1);
    const unsigned shift = group - 1;
    // Upper bound is one below the next sub-bucket's lower bound.
    const std::uint64_t next =
        (std::uint64_t{kSubBuckets} + sub + 1) << shift;
    return next - 1;
}

void
Histogram::record(std::uint64_t v)
{
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed))
        ;
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed))
        ;
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot s;
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    if (s.count) {
        s.min = min_.load(std::memory_order_relaxed);
        s.max = max_.load(std::memory_order_relaxed);
    }
    for (unsigned i = 0; i < kHistogramBuckets; ++i) {
        const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
        if (n)
            s.buckets.emplace_back(bucket_upper(i), n);
    }
    return s;
}

double
HistogramSnapshot::mean() const
{
    if (count == 0)
        return std::nan("");
    return double(sum) / double(count);
}

std::uint64_t
HistogramSnapshot::percentile(double q) const
{
    if (count == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the q-quantile sample, 1-based, exact-count.
    std::uint64_t rank =
        static_cast<std::uint64_t>(std::ceil(q * double(count)));
    if (rank < 1)
        rank = 1;
    if (rank > count)
        rank = count;
    std::uint64_t seen = 0;
    for (const auto &[upper, n] : buckets) {
        seen += n;
        if (seen >= rank) {
            // Clamp the bucket bound into the observed range so a
            // single sample reports itself and p999 never exceeds max.
            std::uint64_t v = upper;
            if (v < min)
                v = min;
            if (v > max)
                v = max;
            return v;
        }
    }
    return max; // unreachable when buckets are consistent with count
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

Counter &
MetricRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_[name];
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    return gauges_[name];
}

Histogram &
MetricRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

void
Histogram::merge(const HistogramSnapshot &s)
{
    if (s.count == 0)
        return;
    count_.fetch_add(s.count, std::memory_order_relaxed);
    sum_.fetch_add(s.sum, std::memory_order_relaxed);
    // A bucket's upper bound maps back to the same bucket index, so
    // bucket counts transfer exactly.
    for (const auto &[upper, n] : s.buckets)
        buckets_[bucket_index(upper)].fetch_add(n,
                                                std::memory_order_relaxed);
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (s.min < cur && !min_.compare_exchange_weak(
                              cur, s.min, std::memory_order_relaxed))
        ;
    cur = max_.load(std::memory_order_relaxed);
    while (s.max > cur && !max_.compare_exchange_weak(
                              cur, s.max, std::memory_order_relaxed))
        ;
}

void
MetricRegistry::merge(const MetricRegistry &other)
{
    for (const auto &[name, v] : other.counters())
        counter(name).add(v);
    for (const auto &[name, v] : other.gauges())
        gauge(name).set(v);
    for (const auto &[name, snap] : other.histograms())
        histogram(name).merge(snap);
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricRegistry::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        out.emplace_back(name, c.value());
    return out;
}

std::vector<std::pair<std::string, double>>
MetricRegistry::gauges() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, double>> out;
    out.reserve(gauges_.size());
    for (const auto &[name, g] : gauges_)
        out.emplace_back(name, g.value());
    return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricRegistry::histograms() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, HistogramSnapshot>> out;
    out.reserve(histograms_.size());
    for (const auto &[name, h] : histograms_)
        out.emplace_back(name, h->snapshot());
    return out;
}

void
write_histogram_json(JsonWriter &w, const HistogramSnapshot &h)
{
    w.begin_object();
    w.field("count", h.count);
    w.field("sum", h.sum);
    w.field("min", h.count ? h.min : 0);
    w.field("max", h.max);
    w.field("mean", h.mean()); // NaN (empty) serializes as null
    w.field("p50", h.percentile(0.50));
    w.field("p90", h.percentile(0.90));
    w.field("p99", h.percentile(0.99));
    w.field("p999", h.percentile(0.999));
    w.end_object();
}

void
MetricRegistry::write_json(JsonWriter &w) const
{
    w.begin_object();
    w.key("counters");
    w.begin_object();
    for (const auto &[name, v] : counters())
        w.field(name, v);
    w.end_object();
    w.key("gauges");
    w.begin_object();
    for (const auto &[name, v] : gauges())
        w.field(name, v);
    w.end_object();
    w.key("histograms");
    w.begin_object();
    for (const auto &[name, snap] : histograms()) {
        w.key(name);
        write_histogram_json(w, snap);
    }
    w.end_object();
    w.end_object();
}

std::string
prometheus_name(std::string_view name)
{
    std::string out = "udp_";
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

namespace {

/// Shortest-round-trip double for exposition lines.
std::string
fmt_double(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/// A registry name split at its optional label block: `base{k="v"}` →
/// family `base` (sanitized for the exposition) + labels `k="v"`
/// (emitted verbatim).  Labeled series of one family share one # TYPE
/// line (tools/check_exposition.py verifies label-set consistency).
struct SplitName {
    std::string family; ///< prometheus_name() of the part before '{'
    std::string labels; ///< inner label list, "" when unlabeled
};

SplitName
split_name(const std::string &name)
{
    const std::size_t brace = name.find('{');
    if (brace == std::string::npos || name.back() != '}')
        return {prometheus_name(name), ""};
    return {prometheus_name(std::string_view(name).substr(0, brace)),
            name.substr(brace + 1, name.size() - brace - 2)};
}

/// `{a="b"}` / `{a="b",quantile="0.5"}` / `{quantile="0.5"}` / ``.
std::string
label_block(const std::string &labels, const char *quantile = nullptr)
{
    if (labels.empty() && !quantile)
        return "";
    std::string out = "{" + labels;
    if (quantile) {
        if (!labels.empty())
            out += ',';
        out += "quantile=\"";
        out += quantile;
        out += '"';
    }
    return out + "}";
}

/// Families in first-seen order with their samples grouped, so every
/// family gets exactly one # TYPE line ahead of all its series.
class FamilyWriter
{
  public:
    explicit FamilyWriter(std::ostringstream &os) : os_(os) {}

    void type_line(const std::string &family, const char *kind) {
        if (seen_.insert(family).second)
            os_ << "# TYPE " << family << ' ' << kind << '\n';
    }

  private:
    std::ostringstream &os_;
    std::set<std::string> seen_;
};

} // namespace

std::string
MetricRegistry::prometheus_text() const
{
    // Group each kind's samples by family so labeled series (one
    // registry entry per label set) emit contiguously under one # TYPE.
    std::ostringstream os;
    FamilyWriter fams(os);

    std::map<std::string, std::vector<std::string>> counter_rows;
    for (const auto &[name, v] : counters()) {
        const SplitName sn = split_name(name);
        counter_rows[sn.family].push_back(sn.family +
                                          label_block(sn.labels) + ' ' +
                                          std::to_string(v));
    }
    for (const auto &[family, rows] : counter_rows) {
        fams.type_line(family, "counter");
        for (const std::string &r : rows)
            os << r << '\n';
    }

    std::map<std::string, std::vector<std::string>> gauge_rows;
    for (const auto &[name, v] : gauges()) {
        const SplitName sn = split_name(name);
        gauge_rows[sn.family].push_back(sn.family + label_block(sn.labels) +
                                        ' ' + fmt_double(v));
    }
    for (const auto &[family, rows] : gauge_rows) {
        fams.type_line(family, "gauge");
        for (const std::string &r : rows)
            os << r << '\n';
    }

    std::map<std::string, std::vector<std::string>> summary_rows;
    for (const auto &[name, h] : histograms()) {
        const SplitName sn = split_name(name);
        auto &rows = summary_rows[sn.family];
        const std::string &n = sn.family;
        if (h.count) {
            static constexpr std::pair<const char *, double> kQuantiles[] = {
                {"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}, {"0.999", 0.999}};
            for (const auto &[label, q] : kQuantiles)
                rows.push_back(n + label_block(sn.labels, label) + ' ' +
                               std::to_string(h.percentile(q)));
            rows.push_back(n + "_min" + label_block(sn.labels) + ' ' +
                           std::to_string(h.min));
            rows.push_back(n + "_max" + label_block(sn.labels) + ' ' +
                           std::to_string(h.max));
            rows.push_back(n + "_mean" + label_block(sn.labels) + ' ' +
                           fmt_double(h.mean()));
        }
        rows.push_back(n + "_sum" + label_block(sn.labels) + ' ' +
                       std::to_string(h.sum));
        rows.push_back(n + "_count" + label_block(sn.labels) + ' ' +
                       std::to_string(h.count));
    }
    for (const auto &[family, rows] : summary_rows) {
        fams.type_line(family, "summary");
        for (const std::string &r : rows)
            os << r << '\n';
    }
    return os.str();
}

// ---------------------------------------------------------------------------
// Registry-backed lifecycle sink.
// ---------------------------------------------------------------------------

RegistryTelemetry::RegistryTelemetry(MetricRegistry &reg)
    : reg_(reg),
      runs_(reg.counter("scheduler.runs")),
      runs_faulted_(reg.counter("scheduler.runs.faulted")),
      jobs_completed_(reg.counter("scheduler.jobs.completed")),
      jobs_quarantined_(reg.counter("scheduler.jobs.quarantined")),
      jobs_cancelled_(reg.counter("scheduler.jobs.cancelled")),
      retries_(reg.counter("scheduler.retries")),
      waves_(reg.counter("scheduler.waves")),
      occupancy_(reg.gauge("wave.occupancy")),
      queue_wait_(reg.histogram("job.queue_wait_cycles")),
      service_(reg.histogram("job.service_cycles")),
      e2e_(reg.histogram("job.e2e_cycles")),
      wave_occupancy_(reg.histogram("wave.occupancy_lanes")),
      wave_banks_(reg.histogram("wave.banks_used")),
      wave_wall_(reg.histogram("wave.wall_cycles"))
{
    for (unsigned c = 1; c < kNumFaultCodes; ++c)
        fault_counters_[c] = &reg.counter(
            "scheduler.fault." +
            std::string(fault_code_name(static_cast<FaultCode>(c))));
}

RegistryTelemetry::KernelCounters &
RegistryTelemetry::kernel(std::string_view name)
{
    std::lock_guard<std::mutex> lock(kernels_mu_);
    const auto it = kernels_.find(name);
    if (it != kernels_.end())
        return it->second;
    KernelCounters kc;
    const std::string key(name);
    kc.runs = &reg_.counter("kernel." + key + ".runs");
    kc.input_bytes = &reg_.counter("kernel." + key + ".input_bytes");
    return kernels_.emplace(key, kc).first->second;
}

void
RegistryTelemetry::on_job_run(const JobRunEvent &e)
{
    runs_.add();
    queue_wait_.record(e.queue_wait_cycles);
    service_.record(e.service_cycles);
    if (e.cancelled)
        jobs_cancelled_.add();
    else if (e.status == LaneStatus::Done)
        jobs_completed_.add();
    else
        runs_faulted_.add();
    if (e.retried)
        retries_.add();
    if (e.quarantined)
        jobs_quarantined_.add();
    if (e.final_disposition)
        e2e_.record(e.e2e_cycles);
    const unsigned code = static_cast<unsigned>(e.fault);
    if (code != 0 && code < kNumFaultCodes)
        fault_counters_[code]->add();
    KernelCounters &kc = kernel(e.job_name);
    kc.runs->add();
    kc.input_bytes->add(e.input_bytes);
}

void
RegistryTelemetry::on_wave(const WaveEvent &e)
{
    waves_.add();
    wave_occupancy_.record(e.jobs);
    wave_banks_.record(e.banks_used);
    wave_wall_.record(e.wall_cycles);
    occupancy_.set(double(e.jobs) / double(kNumLanes));
}

} // namespace udp::runtime
