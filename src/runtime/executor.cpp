/**
 * @file
 * Single-job executor implementation.
 */
#include "executor.hpp"

#include "telemetry.hpp"

namespace udp::runtime {

void
validate_job(const JobPlan &plan, ByteAddr window_base)
{
    if (!plan.program)
        throw UdpError("runtime: job '" + plan.name + "' has no program");
    if (std::uint64_t{window_base} + plan.window_bytes > kLocalMemBytes)
        throw UdpError("runtime: job '" + plan.name +
                       "' window escapes local memory");
    for (const MemStage &s : plan.stages)
        if (std::uint64_t{s.offset} + s.data.size() > plan.window_bytes)
            throw UdpError("runtime: job '" + plan.name +
                           "' stages outside its window");
}

void
stage_job(Machine &m, unsigned lane, ByteAddr window_base,
          const JobPlan &plan)
{
    validate_job(plan, window_base);
    // The lane streams straight from arena memory: enforce the pin now,
    // before any bytes are read (see executor.hpp lifetime contract).
    plan.input.check_pinned("stage_job", plan.name);
    for (const MemStage &s : plan.stages) {
        s.data.check_pinned("stage_job", plan.name);
        m.stage(window_base + s.offset, s.data);
    }
    Lane &ln = m.lane(lane);
    ln.load(*plan.program, plan.decoded, plan.compiled);
    ln.set_input(plan.input);
    ln.set_window_base(window_base);
    // Single-lane runs are always "attempt 1" of the plan's trap window.
    ln.set_forced_trap(plan.trap_attempts != 0 ? plan.force_trap_cycle
                                               : Cycles{0});
    for (const auto &[r, v] : plan.init_regs)
        ln.set_reg(r, v);
}

JobResult
harvest_job(Machine &m, unsigned lane, ByteAddr window_base,
            const JobPlan &plan, LaneStatus status, BufferPool *pool)
{
    // The lane streamed from the plan's arena for the whole run; catch
    // a pin that was dropped between staging and harvesting.
    plan.input.check_pinned("harvest_job", plan.name);
    Lane &ln = m.lane(lane);
    ln.finish_output();

    JobResult res;
    res.status = status;
    res.fault = ln.fault();
    res.stats = ln.stats();
    for (unsigned r = 0; r < kNumScalarRegs; ++r)
        res.regs[r] = ln.reg(r);
    if (pool) {
        // Pooled buffers retain capacity across waves: the assign below
        // copies bytes but — once the pool is warm — allocates nothing.
        res.output = pool->acquire();
        res.output.assign(ln.output().begin(), ln.output().end());
    } else {
        res.output = ln.output();
    }
    res.accepts = ln.accepts();
    res.lane = lane;

    res.extracts.reserve(plan.extracts.size());
    for (const MemExtract &e : plan.extracts) {
        std::uint64_t len = e.len;
        if (e.end_reg >= 0) {
            const Word end = ln.reg(static_cast<unsigned>(e.end_reg));
            if (end < e.offset)
                throw UdpError("runtime: job '" + plan.name +
                               "' extract cursor before its base");
            len = end - e.offset;
        }
        if (std::uint64_t{e.offset} + len > plan.window_bytes)
            throw UdpError("runtime: job '" + plan.name +
                           "' extract outside its window");
        Bytes buf = pool ? pool->acquire() : Bytes{};
        m.unstage(window_base + e.offset, static_cast<std::size_t>(len),
                  buf);
        res.extracts.push_back(std::move(buf));
    }
    return res;
}

JobResult
run_job_on(Machine &m, unsigned lane, ByteAddr window_base,
           const JobPlan &plan, std::uint64_t max_cycles,
           TelemetrySink *telemetry)
{
    stage_job(m, lane, window_base, plan);
    Lane &ln = m.lane(lane);
    const LaneStatus st = plan.nfa_mode ? ln.run_nfa(max_cycles)
                                        : ln.run(max_cycles);
    JobResult res = harvest_job(m, lane, window_base, plan, st);
    res.service_cycles = res.stats.cycles;
    res.e2e_cycles = res.stats.cycles; // no queue ahead of a direct run
    if (telemetry) {
        JobRunEvent ev;
        ev.job_name = plan.name;
        ev.lane = lane;
        ev.status = res.status;
        ev.fault = res.fault.code;
        ev.service_cycles = res.service_cycles;
        ev.e2e_cycles = res.e2e_cycles;
        ev.input_bytes =
            static_cast<std::uint64_t>(res.stats.input_bytes());
        ev.final_disposition = true;
        telemetry->on_job_run(ev);
    }
    return res;
}

} // namespace udp::runtime
