/**
 * @file
 * Wave scheduler: run an arbitrary number of JobPlans on the 64-lane
 * machine (docs/RUNTIME.md).
 *
 * Jobs are packed in submission order into *waves*.  Within a wave every
 * job gets a disjoint local-memory window (consecutive banks) and runs
 * on the lane owning the window's first bank; a wave closes when the 64
 * banks (or `max_jobs_per_wave` lanes) are exhausted.  Waves execute one
 * after another — stage, run_parallel, harvest — and the report's wall
 * clock is the *sum* of per-wave walls, so an N-wave run costs exactly
 * what N concatenated single-wave runs cost (pinned by test_runtime).
 *
 * The simulation backend (serial or host-threaded, see
 * Machine::set_sim_threads) is bit-exact either way, so scheduling
 * results never depend on the thread count.
 *
 * Faults are contained per job: a run that ends Faulted or TimedOut is
 * retried into later waves per `RetryPolicy`, then quarantined with its
 * LaneFault (docs/ROBUSTNESS.md).  Fault-free runs are packed and
 * executed exactly as before the retry layer existed — bit-identical
 * reports (pinned by test_runtime).
 *
 * Host data path (runtime/arena.hpp): job inputs are arena-pinned views
 * — staging and retrying never copy payload bytes (a retry re-pins the
 * same arena via the plan it re-reads) — and results are harvested
 * through the scheduler's BufferPool, so recycled steady-state loops
 * allocate O(jobs) per wave, not O(bytes).  Each WaveReport breaks its
 * host time into setup / simulate / harvest phases.
 */
#pragma once

#include "core/machine.hpp"
#include "runtime/job.hpp"
#include "runtime/postmortem.hpp"
#include "runtime/telemetry.hpp"

#include <deque>
#include <memory>

namespace udp::runtime {

class SpanTracer;      // spantrace.hpp
class FlightRecorder;  // spantrace.hpp

/**
 * Fault recovery policy (docs/ROBUSTNESS.md).  A job whose run ends
 * Faulted or TimedOut is requeued into a later wave until it has been
 * given `max_attempts` runs; after that it is *quarantined*: reported
 * with its LaneFault, never run again, and never blocking other jobs.
 * With the default max_attempts == 1 nothing is ever retried, and
 * fault-free runs are bit-identical whatever the policy says.
 */
struct RetryPolicy {
    unsigned max_attempts = 1; ///< total runs per job (>= 1)
    /// Double the per-lane cycle budget on each TimedOut retry (only
    /// meaningful when max_cycles_per_lane is finite).
    bool grow_cycle_budget = true;
};

/// Scheduler construction knobs.
struct SchedulerOptions {
    /// Host simulation threads: 0 = machine default (UDP_SIM_THREADS
    /// env, else serial); 1 = serial; N = thread pool of N.
    unsigned threads = 0;
    /// Cap on concurrent jobs per wave (models a partial deployment).
    unsigned max_jobs_per_wave = kNumLanes;
    AddressingMode mode = AddressingMode::Restricted;
    std::uint64_t max_cycles_per_lane = ~std::uint64_t{0};
    RetryPolicy retry;
    /// Lifecycle-event receiver (telemetry.hpp).  nullptr (the default)
    /// costs one branch per job/wave — the Tracer's zero-overhead
    /// discipline — and never changes simulated results either way.
    TelemetrySink *telemetry = nullptr;
    /// Span tracer (spantrace.hpp): receives the same lifecycle events
    /// plus wave boundaries, and absorbs the machine Tracer's lane
    /// micro-events each wave (the Scheduler clears the Tracer per wave
    /// so run-local cycle stamps rebase onto the shared timeline).
    /// Same nullptr-default/one-branch/bit-identical contract.
    SpanTracer *spans = nullptr;
    /// Flight recorder (spantrace.hpp): attached to the machine as its
    /// RunObserver for the duration of run(), so lane start/end land in
    /// per-worker-thread rings; also fed job/wave lifecycle events from
    /// the scheduling thread.  Same contract.
    FlightRecorder *recorder = nullptr;
    /// Post-mortem capture on faulted runs (postmortem.hpp).  Off by
    /// default (keep_last == 0, empty dir).
    PostmortemPolicy postmortem;
    /// Lane micro-event tracer to attach to the scheduler's machine at
    /// construction (core/trace.hpp) — how benches route one shared
    /// Tracer into schedulers that own their machines.  The Scheduler
    /// clears it every wave while `spans` absorbs, and post-mortems snapshot
    /// the faulting lane's ring from it.  nullptr leaves the machine's
    /// existing attachment (if any) untouched.
    Tracer *lane_tracer = nullptr;
};

/// Accounting for one wave.
struct WaveReport {
    unsigned jobs = 0;
    unsigned active_lanes = 0;
    unsigned banks_used = 0; ///< local-memory banks the wave occupied
    Cycles wall_cycles = 0; ///< machine time of this wave
    double energy_j = 0;
    double host_seconds = 0; ///< host time to stage+simulate+harvest it
    // Host-side phase breakdown of host_seconds (docs/PERFORMANCE.md,
    // "Host data path & ownership"): where the wave's wall time went.
    double host_setup_seconds = 0;    ///< pack + validate + stage + assign
    double host_simulate_seconds = 0; ///< run_parallel
    double host_harvest_seconds = 0;  ///< harvest + retry bookkeeping
    LaneStats total;        ///< summed lane counters of this wave
    unsigned completed = 0;   ///< jobs that finished cleanly this wave
    unsigned retried = 0;     ///< faulted jobs requeued into later waves
    unsigned quarantined = 0; ///< faulted jobs that exhausted retries
};

/// Accounting for a whole scheduled run.
struct ScheduleReport {
    std::vector<JobResult> jobs; ///< in submission order
    std::vector<WaveReport> waves;
    Cycles wall_cycles = 0;      ///< sum over waves (incl. retry waves)
    LaneStats total;             ///< summed over all runs (incl. retries)
    double energy_j = 0;         ///< summed over waves
    unsigned sim_threads = 1;    ///< host threads the backend used
    double host_seconds = 0;     ///< host wall-clock of the simulation
    // Summed per-wave phase breakdown (see WaveReport): at steady state
    // setup should be a small share — the arena data path stages views,
    // it never copies job payloads on the host (runtime/arena.hpp).
    double host_setup_seconds = 0;
    double host_simulate_seconds = 0;
    double host_harvest_seconds = 0;
    unsigned faulted_runs = 0;   ///< job runs that ended Faulted/TimedOut
    unsigned retries = 0;        ///< faulted runs requeued per policy
    unsigned quarantined = 0;    ///< jobs given up on (JobResult::fault)

    /// Aggregate simulated throughput in MB/s at the nominal clock.
    double throughput_mbps() const {
        return bytes_per_second(total.input_bytes(), wall_cycles) / 1e6;
    }
};

/// Maps N jobs onto ≤64-lane waves and runs them.
class Scheduler
{
  public:
    explicit Scheduler(SchedulerOptions opts = {});

    /// Borrow an existing machine (caller keeps ownership; its memory,
    /// tracer and profiler attachments are used as-is).
    explicit Scheduler(Machine &m, SchedulerOptions opts = {});

    Machine &machine() { return *machine_; }

    /// Run all jobs; plans (and the arenas their inputs pin) must stay
    /// alive until this returns — enforced per job by the executor's
    /// arena canary check (runtime/arena.hpp).
    ScheduleReport run(const std::vector<JobPlan> &jobs);

    /// The last-N post-mortem reports captured across runs, oldest
    /// first (see PostmortemPolicy::keep_last) — the in-memory query
    /// surface the future `udpd` `/debug` endpoint will expose.
    const std::deque<FaultReport> &postmortems() const {
        return postmortems_;
    }

    /// The output/extract buffer pool this scheduler harvests through.
    /// Warm across run() calls: a steady-state serving loop that
    /// recycles its results makes the wave loop's allocation count
    /// O(jobs), not O(bytes) (pinned by Arena.SteadyStateAllocationBound).
    BufferPool &pool() { return pool_; }

    /// Hand a consumed result's buffers back for reuse by later waves.
    void recycle(JobResult &&r);

    /// Recycle every result buffer of a consumed report.
    void recycle(ScheduleReport &&rep);

  private:
    SchedulerOptions opts_;
    std::unique_ptr<Machine> owned_;
    Machine *machine_;
    std::deque<FaultReport> postmortems_;
    BufferPool pool_;
};

/**
 * Summarize the per-job latency fields of a scheduled run as
 * histograms (the benches' `--json` latency block).  Exact-count
 * percentiles over `jobs`' queue-wait / service / end-to-end cycles.
 */
JobLatencySummary summarize_job_latencies(const std::vector<JobResult> &jobs);

} // namespace udp::runtime
