/**
 * @file
 * Wave scheduler: run an arbitrary number of JobPlans on the 64-lane
 * machine (docs/RUNTIME.md).
 *
 * Jobs are packed in submission order into *waves*.  Within a wave every
 * job gets a disjoint local-memory window (consecutive banks) and runs
 * on the lane owning the window's first bank; a wave closes when the 64
 * banks (or `max_jobs_per_wave` lanes) are exhausted.  Waves execute one
 * after another — stage, run_parallel, harvest — and the report's wall
 * clock is the *sum* of per-wave walls, so an N-wave run costs exactly
 * what N concatenated single-wave runs cost (pinned by test_runtime).
 *
 * The simulation backend (serial or host-threaded, see
 * Machine::set_sim_threads) is bit-exact either way, so scheduling
 * results never depend on the thread count.
 *
 * Faults are contained per job: a run that ends Faulted or TimedOut is
 * retried into later waves per `RetryPolicy`, then quarantined with its
 * LaneFault (docs/ROBUSTNESS.md).  Fault-free runs are packed and
 * executed exactly as before the retry layer existed — bit-identical
 * reports (pinned by test_runtime).
 *
 * Host data path (runtime/arena.hpp): job inputs are arena-pinned views
 * — staging and retrying never copy payload bytes (a retry re-pins the
 * same arena via the plan it re-reads) — and results are harvested
 * through the scheduler's BufferPool, so recycled steady-state loops
 * allocate O(jobs) per wave, not O(bytes).  Each WaveReport breaks its
 * host time into setup / simulate / harvest phases.
 */
#pragma once

#include "core/machine.hpp"
#include "runtime/job.hpp"
#include "runtime/postmortem.hpp"
#include "runtime/telemetry.hpp"

#include <deque>
#include <memory>

namespace udp::runtime {

class SpanTracer;      // spantrace.hpp
class FlightRecorder;  // spantrace.hpp

/**
 * Fault recovery policy (docs/ROBUSTNESS.md).  A job whose run ends
 * Faulted or TimedOut is requeued into a later wave until it has been
 * given `max_attempts` runs; after that it is *quarantined*: reported
 * with its LaneFault, never run again, and never blocking other jobs.
 * With the default max_attempts == 1 nothing is ever retried, and
 * fault-free runs are bit-identical whatever the policy says.
 */
struct RetryPolicy {
    unsigned max_attempts = 1; ///< total runs per job (>= 1)
    /// Double the per-lane cycle budget on each TimedOut retry (only
    /// meaningful when max_cycles_per_lane is finite).
    bool grow_cycle_budget = true;
    /**
     * Exponential retry backoff in *waves*: a job whose attempt n
     * faults re-enters the queue no earlier than `backoff_waves << (n-1)`
     * waves after the failing one (plus jitter, below), so one tenant's
     * transient-fault retries stop clustering in the very next wave.
     * 0 (the default) requeues immediately — bit-identical to the
     * pre-backoff scheduler (pinned by Scheduler.BackoffZeroBitIdentical).
     * When the queue would otherwise go idle, the earliest delayed
     * group is released early: waves only exist while jobs run, so an
     * empty-machine delay has no simulated-time meaning.
     */
    unsigned backoff_waves = 0;
    /// Max extra delay waves added per retry, drawn deterministically
    /// from `backoff_seed`, the job index and the attempt number
    /// (splitmix64) — same seed, same plans, same schedule.  Inert
    /// while `backoff_waves` is 0: jitter modifies a backoff, it never
    /// introduces one.
    unsigned backoff_jitter = 0;
    std::uint64_t backoff_seed = 0x9E3779B97F4A7C15ull;
};

/**
 * Thread-safe cancellation handle for one Scheduler::run batch
 * (docs/SERVICE.md).  Any thread may cancel a job by its submission
 * index at any time; the Scheduler checks the flag at its two requeue
 * points:
 *
 *  - before staging (initial dispatch or retry): the job is dropped
 *    from the queue without running and its JobResult comes back with
 *    status LaneStatus::Cancelled and `cancelled == true`;
 *  - after a wave it ran in: the attempt's payload is discarded
 *    (buffers recycled) and any retry it would have earned is
 *    suppressed — the result is Cancelled even if the run completed.
 *
 * A null SchedulerOptions::control (the default) costs one branch per
 * job and leaves results bit-identical.
 */
class JobControl
{
  public:
    explicit JobControl(std::size_t jobs)
        : flags_(std::make_unique<std::atomic<std::uint8_t>[]>(jobs)),
          size_(jobs)
    {
        for (std::size_t i = 0; i < jobs; ++i)
            flags_[i].store(0, std::memory_order_relaxed);
    }

    /// Request cancellation of job `job` (idempotent; out-of-range is
    /// ignored so racing a late cancel against a smaller batch is safe).
    void cancel(std::size_t job) {
        if (job < size_)
            flags_[job].store(1, std::memory_order_release);
    }

    bool cancelled(std::size_t job) const {
        return job < size_ &&
               flags_[job].load(std::memory_order_acquire) != 0;
    }

    /// Re-arm the handle for a new batch (clears every flag).  Must not
    /// race a Scheduler::run that is still reading the flags — callers
    /// reset between runs (udp_service does so under its own mutex).
    void reset() {
        for (std::size_t i = 0; i < size_; ++i)
            flags_[i].store(0, std::memory_order_relaxed);
    }

    std::size_t size() const { return size_; }

  private:
    std::unique_ptr<std::atomic<std::uint8_t>[]> flags_;
    std::size_t size_;
};

/// Scheduler construction knobs.
struct SchedulerOptions {
    /// Host simulation threads: 0 = machine default (UDP_SIM_THREADS
    /// env, else serial); 1 = serial; N = thread pool of N.
    unsigned threads = 0;
    /// Cap on concurrent jobs per wave (models a partial deployment).
    unsigned max_jobs_per_wave = kNumLanes;
    AddressingMode mode = AddressingMode::Restricted;
    /// Default per-lane cycle budget; a plan's own `JobPlan::max_cycles`
    /// (when nonzero) overrides it per job.
    std::uint64_t max_cycles_per_lane = ~std::uint64_t{0};
    RetryPolicy retry;
    /// Cancellation handle shared with submitting threads (see
    /// JobControl).  nullptr (the default) costs one branch per job and
    /// never changes results.
    JobControl *control = nullptr;
    /// Lifecycle-event receiver (telemetry.hpp).  nullptr (the default)
    /// costs one branch per job/wave — the Tracer's zero-overhead
    /// discipline — and never changes simulated results either way.
    TelemetrySink *telemetry = nullptr;
    /// Span tracer (spantrace.hpp): receives the same lifecycle events
    /// plus wave boundaries, and absorbs the machine Tracer's lane
    /// micro-events each wave (the Scheduler clears the Tracer per wave
    /// so run-local cycle stamps rebase onto the shared timeline).
    /// Same nullptr-default/one-branch/bit-identical contract.
    SpanTracer *spans = nullptr;
    /// Flight recorder (spantrace.hpp): attached to the machine as its
    /// RunObserver for the duration of run(), so lane start/end land in
    /// per-worker-thread rings; also fed job/wave lifecycle events from
    /// the scheduling thread.  Same contract.
    FlightRecorder *recorder = nullptr;
    /// Post-mortem capture on faulted runs (postmortem.hpp).  Off by
    /// default (keep_last == 0, empty dir).
    PostmortemPolicy postmortem;
    /// Lane micro-event tracer to attach to the scheduler's machine at
    /// construction (core/trace.hpp) — how benches route one shared
    /// Tracer into schedulers that own their machines.  The Scheduler
    /// clears it every wave while `spans` absorbs, and post-mortems snapshot
    /// the faulting lane's ring from it.  nullptr leaves the machine's
    /// existing attachment (if any) untouched.
    Tracer *lane_tracer = nullptr;
};

/// Accounting for one wave.
struct WaveReport {
    unsigned jobs = 0;
    unsigned active_lanes = 0;
    unsigned banks_used = 0; ///< local-memory banks the wave occupied
    Cycles wall_cycles = 0; ///< machine time of this wave
    double energy_j = 0;
    double host_seconds = 0; ///< host time to stage+simulate+harvest it
    // Host-side phase breakdown of host_seconds (docs/PERFORMANCE.md,
    // "Host data path & ownership"): where the wave's wall time went.
    double host_setup_seconds = 0;    ///< pack + validate + stage + assign
    double host_simulate_seconds = 0; ///< run_parallel
    double host_harvest_seconds = 0;  ///< harvest + retry bookkeeping
    LaneStats total;        ///< summed lane counters of this wave
    unsigned completed = 0;   ///< jobs that finished cleanly this wave
    unsigned retried = 0;     ///< faulted jobs requeued into later waves
    unsigned quarantined = 0; ///< faulted jobs that exhausted retries
    unsigned cancelled = 0;   ///< runs of this wave discarded by cancel
};

/// Accounting for a whole scheduled run.
struct ScheduleReport {
    std::vector<JobResult> jobs; ///< in submission order
    std::vector<WaveReport> waves;
    Cycles wall_cycles = 0;      ///< sum over waves (incl. retry waves)
    LaneStats total;             ///< summed over all runs (incl. retries)
    double energy_j = 0;         ///< summed over waves
    unsigned sim_threads = 1;    ///< host threads the backend used
    double host_seconds = 0;     ///< host wall-clock of the simulation
    // Summed per-wave phase breakdown (see WaveReport): at steady state
    // setup should be a small share — the arena data path stages views,
    // it never copies job payloads on the host (runtime/arena.hpp).
    double host_setup_seconds = 0;
    double host_simulate_seconds = 0;
    double host_harvest_seconds = 0;
    unsigned faulted_runs = 0;   ///< job runs that ended Faulted/TimedOut
    unsigned retries = 0;        ///< faulted runs requeued per policy
    unsigned quarantined = 0;    ///< jobs given up on (JobResult::fault)
    unsigned cancelled = 0;      ///< jobs ended by JobControl::cancel

    /// Aggregate simulated throughput in MB/s at the nominal clock.
    double throughput_mbps() const {
        return bytes_per_second(total.input_bytes(), wall_cycles) / 1e6;
    }
};

/// Maps N jobs onto ≤64-lane waves and runs them.
class Scheduler
{
  public:
    explicit Scheduler(SchedulerOptions opts = {});

    /// Borrow an existing machine (caller keeps ownership; its memory,
    /// tracer and profiler attachments are used as-is).
    explicit Scheduler(Machine &m, SchedulerOptions opts = {});

    Machine &machine() { return *machine_; }

    /// Run all jobs; plans (and the arenas their inputs pin) must stay
    /// alive until this returns — enforced per job by the executor's
    /// arena canary check (runtime/arena.hpp).
    ScheduleReport run(const std::vector<JobPlan> &jobs);

    /// The last-N post-mortem reports captured across runs, oldest
    /// first (see PostmortemPolicy::keep_last) — the in-memory query
    /// surface the future `udpd` `/debug` endpoint will expose.
    const std::deque<FaultReport> &postmortems() const {
        return postmortems_;
    }

    /// The output/extract buffer pool this scheduler harvests through.
    /// Warm across run() calls: a steady-state serving loop that
    /// recycles its results makes the wave loop's allocation count
    /// O(jobs), not O(bytes) (pinned by Arena.SteadyStateAllocationBound).
    BufferPool &pool() { return pool_; }

    /// Hand a consumed result's buffers back for reuse by later waves.
    void recycle(JobResult &&r);

    /// Recycle every result buffer of a consumed report.
    void recycle(ScheduleReport &&rep);

  private:
    SchedulerOptions opts_;
    std::unique_ptr<Machine> owned_;
    Machine *machine_;
    std::deque<FaultReport> postmortems_;
    BufferPool pool_;
};

/**
 * Summarize the per-job latency fields of a scheduled run as
 * histograms (the benches' `--json` latency block).  Exact-count
 * percentiles over `jobs`' queue-wait / service / end-to-end cycles.
 */
JobLatencySummary summarize_job_latencies(const std::vector<JobResult> &jobs);

} // namespace udp::runtime
