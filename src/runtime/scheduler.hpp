/**
 * @file
 * Wave scheduler: run an arbitrary number of JobPlans on the 64-lane
 * machine (docs/RUNTIME.md).
 *
 * Jobs are packed in submission order into *waves*.  Within a wave every
 * job gets a disjoint local-memory window (consecutive banks) and runs
 * on the lane owning the window's first bank; a wave closes when the 64
 * banks (or `max_jobs_per_wave` lanes) are exhausted.  Waves execute one
 * after another — stage, run_parallel, harvest — and the report's wall
 * clock is the *sum* of per-wave walls, so an N-wave run costs exactly
 * what N concatenated single-wave runs cost (pinned by test_runtime).
 *
 * The simulation backend (serial or host-threaded, see
 * Machine::set_sim_threads) is bit-exact either way, so scheduling
 * results never depend on the thread count.
 */
#pragma once

#include "core/machine.hpp"
#include "runtime/job.hpp"

#include <memory>

namespace udp::runtime {

/// Scheduler construction knobs.
struct SchedulerOptions {
    /// Host simulation threads: 0 = machine default (UDP_SIM_THREADS
    /// env, else serial); 1 = serial; N = thread pool of N.
    unsigned threads = 0;
    /// Cap on concurrent jobs per wave (models a partial deployment).
    unsigned max_jobs_per_wave = kNumLanes;
    AddressingMode mode = AddressingMode::Restricted;
    std::uint64_t max_cycles_per_lane = ~std::uint64_t{0};
};

/// Accounting for one wave.
struct WaveReport {
    unsigned jobs = 0;
    unsigned active_lanes = 0;
    Cycles wall_cycles = 0; ///< machine time of this wave
    double energy_j = 0;
    LaneStats total;        ///< summed lane counters of this wave
};

/// Accounting for a whole scheduled run.
struct ScheduleReport {
    std::vector<JobResult> jobs; ///< in submission order
    std::vector<WaveReport> waves;
    Cycles wall_cycles = 0;      ///< sum over waves
    LaneStats total;             ///< summed over all jobs
    double energy_j = 0;         ///< summed over waves
    unsigned sim_threads = 1;    ///< host threads the backend used
    double host_seconds = 0;     ///< host wall-clock of the simulation

    /// Aggregate simulated throughput in MB/s at the nominal clock.
    double throughput_mbps() const {
        return bytes_per_second(total.input_bytes(), wall_cycles) / 1e6;
    }
};

/// Maps N jobs onto ≤64-lane waves and runs them.
class Scheduler
{
  public:
    explicit Scheduler(SchedulerOptions opts = {});

    /// Borrow an existing machine (caller keeps ownership; its memory,
    /// tracer and profiler attachments are used as-is).
    explicit Scheduler(Machine &m, SchedulerOptions opts = {});

    Machine &machine() { return *machine_; }

    /// Run all jobs; plans must stay alive until this returns.
    ScheduleReport run(const std::vector<JobPlan> &jobs);

  private:
    SchedulerOptions opts_;
    std::unique_ptr<Machine> owned_;
    Machine *machine_;
};

} // namespace udp::runtime
