/**
 * @file
 * KernelSpec implementation: job construction and input chunking.
 */
#include "kernel_spec.hpp"

#include <algorithm>

namespace udp::runtime {

JobPlan
KernelSpec::make_job(ArenaSlice input) const
{
    if (!program)
        throw UdpError("KernelSpec '" + name + "': no program");
    if (max_input_bytes && input.size() > max_input_bytes)
        throw UdpError("KernelSpec '" + name +
                       "': input exceeds the per-job cap");
    JobPlan p;
    p.name = name;
    p.program = program;
    // Resolve the shared images once per job; every lane the scheduler
    // assigns this job to reuses them without a cache lookup.
    const SimBackend backend = sim_backend();
    p.compiled = backend == SimBackend::Threaded ? shared_compiled(*program)
                                                 : nullptr;
    p.decoded = backend == SimBackend::Legacy
                    ? nullptr
                    : (p.compiled ? p.compiled->decoded_shared()
                                  : shared_decoded(*program));
    p.input = std::move(input);
    p.window_bytes = window_bytes;
    p.nfa_mode = nfa_mode;
    p.init_regs = init_regs;
    if (prepare)
        prepare(p);
    return p;
}

ChunkAlign
align_after_delim(std::uint8_t delim)
{
    return [delim](BytesView data, std::size_t begin, std::size_t end) {
        while (end > begin && data[end - 1] != delim)
            --end;
        return end;
    };
}

std::vector<JobPlan>
chunk_jobs(const KernelSpec &spec, ArenaSlice input, std::size_t chunk_bytes,
           const ChunkAlign &align)
{
    if (chunk_bytes == 0)
        throw UdpError("chunk_jobs: zero chunk size");
    if (spec.max_input_bytes)
        chunk_bytes = std::min(chunk_bytes, spec.max_input_bytes);

    std::vector<JobPlan> jobs;
    std::size_t off = 0;
    while (off < input.size()) {
        std::size_t end = std::min(off + chunk_bytes, input.size());
        if (align && end < input.size()) {
            end = align(input.view(), off, end);
            if (end <= off)
                throw UdpError("chunk_jobs: no legal split point in '" +
                               spec.name + "' chunk");
        }
        // A chunk is a sub-slice of the shared arena, not a copy.
        jobs.push_back(spec.make_job(input.subslice(off, end - off)));
        off = end;
    }
    return jobs;
}

std::shared_ptr<const Program>
borrow_program(const Program &prog)
{
    return std::shared_ptr<const Program>(std::shared_ptr<const Program>{},
                                          &prog);
}

} // namespace udp::runtime
