/**
 * @file
 * Single-job executor: drive one JobPlan on one lane of a Machine.
 *
 * This is the shared bottom half of the runtime: the legacy per-kernel
 * harnesses (`run_csv_kernel`, ...) and the wave Scheduler both funnel
 * through `stage_job` / `harvest_job`, so the staging and extraction
 * rules live in exactly one place.
 */
#pragma once

#include "core/machine.hpp"
#include "runtime/job.hpp"

namespace udp::runtime {

class TelemetrySink;

/// Check a plan is self-consistent and its window fits local memory at
/// `window_base`; throws UdpError otherwise.
void validate_job(const JobPlan &plan, ByteAddr window_base);

/**
 * Stage the plan's memory regions and bind the lane: load the program,
 * attach the input, set the window base and initial registers.
 *
 * Lifetime: the lane streams *directly from the plan's arena memory*
 * (no copy), so the arena pinned by `plan.input` must stay alive until
 * the run is harvested.  This is enforced, not assumed: staging runs an
 * arena generation/canary check (`ArenaSlice::check_pinned`) on the
 * input and every stage slice, and `harvest_job` re-checks after the
 * run — a plan (or arena) that died mid-run throws UdpError instead of
 * silently streaming freed memory.
 */
void stage_job(Machine &m, unsigned lane, ByteAddr window_base,
               const JobPlan &plan);

/**
 * Collect the JobResult of a lane that finished running `plan` at
 * `window_base` with terminal status `status`.  Flushes the output
 * bitstream and copies registers, output, accepts and extract regions.
 *
 * When `pool` is non-null the result's output and extract buffers are
 * acquired from it, so a recycled steady state copies into retained
 * capacity instead of allocating per attempt (runtime/arena.hpp).
 * Contents are byte-identical either way.
 */
JobResult harvest_job(Machine &m, unsigned lane, ByteAddr window_base,
                      const JobPlan &plan, LaneStatus status,
                      BufferPool *pool = nullptr);

/**
 * Convenience: stage + run + harvest one job on `lane`, without touching
 * any other lane's state (unlike Machine::assign, which resets all
 * lanes).  Used by the legacy single-lane kernel harnesses.
 *
 * Interpreter errors and watchdog expiry do not throw: they surface as
 * `JobResult::status` Faulted / TimedOut with the diagnosis in
 * `JobResult::fault`.  Callers that need a clean completion must check
 * the status (or call `require_done`) — a run cut short by `max_cycles`
 * is *not* a success.
 *
 * When `telemetry` is non-null the run is reported as one JobRunEvent
 * (wave 0, attempt 1, zero queue wait — a single-lane run starts
 * immediately); null costs one branch (telemetry.hpp).
 */
JobResult run_job_on(Machine &m, unsigned lane, ByteAddr window_base,
                     const JobPlan &plan,
                     std::uint64_t max_cycles = ~std::uint64_t{0},
                     TelemetrySink *telemetry = nullptr);

} // namespace udp::runtime
