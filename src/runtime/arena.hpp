/**
 * @file
 * Host data-path ownership model: input arenas, pinned slices, and the
 * reusable output buffer pool (docs/PERFORMANCE.md, "Host data path &
 * ownership").
 *
 * Before this layer, every JobPlan owned its input bytes: chunking a
 * stream copied each chunk out of the source buffer, a retried job
 * re-carried its owned payload, and every harvested JobResult
 * heap-allocated fresh output/extract buffers.  At wave rates those
 * host-side copies — not the simulation — start to dominate.  The model
 * here makes the steady-state wave loop's allocation count O(jobs)
 * instead of O(bytes):
 *
 *  - `InputArena` — an immutable, ref-counted byte region.  Created
 *    once per source stream (`take` moves a buffer in, `copy` copies a
 *    view once, `borrow` wraps caller-guaranteed storage), then sliced
 *    arbitrarily many times without touching the bytes.
 *  - `ArenaSlice` — a non-owning `BytesView` plus the `shared_ptr`
 *    lifetime pin that keeps its arena alive.  This is what a JobPlan
 *    carries: chunking is slicing, retrying re-pins the same arena, and
 *    copying a plan copies a pointer, never the payload.
 *  - `BufferPool` — recycles output/extract `Bytes` across waves: a
 *    harvested buffer returned via `release` is handed out again by
 *    `acquire` (cleared, capacity intact), so a steady-state serving
 *    loop stops allocating per attempt.
 *
 * Lifetime enforcement: each arena carries a generation-keyed canary
 * word.  `ArenaSlice::check_pinned` verifies — on every `stage_job` /
 * `harvest_job` — that a non-empty view is still pinned by a live arena
 * that contains it, turning "plan must outlive the run" from a comment
 * into a checked invariant (tests/test_arena.cpp).
 */
#pragma once

#include "core/types.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

namespace udp::runtime {

/// Immutable ref-counted input bytes; create via take/copy/borrow.
class InputArena
{
    struct Private {};

  public:
    InputArena(Private, Bytes owned, BytesView borrowed);
    ~InputArena();
    InputArena(const InputArena &) = delete;
    InputArena &operator=(const InputArena &) = delete;

    /// Adopt `bytes` (no copy; the arena owns them from here on).
    static std::shared_ptr<const InputArena> take(Bytes &&bytes);

    /// Copy `bytes` once into a new arena.
    static std::shared_ptr<const InputArena> copy(BytesView bytes);

    /**
     * Wrap caller-owned storage without copying.  The caller guarantees
     * the storage outlives every slice of this arena — the same
     * contract (and idiom) as `borrow_program`.  Use for single-call
     * harnesses where the input demonstrably outlives the run.
     */
    static std::shared_ptr<const InputArena> borrow(BytesView bytes);

    BytesView view() const { return view_; }
    std::size_t size() const { return view_.size(); }

    /// Monotone creation stamp (process-global); canary key.
    std::uint64_t generation() const { return generation_; }

    /// True while the canary matches — i.e. the arena has not been
    /// destroyed (best-effort use-after-free tripwire).
    bool alive() const { return canary_ == expected_canary(generation_); }

    /// Arenas currently alive in the process (tests).
    static std::size_t live_count();

  private:
    static std::uint64_t expected_canary(std::uint64_t gen);

    Bytes owned_;            ///< empty for borrowed arenas
    BytesView view_;         ///< the arena's full extent
    std::uint64_t generation_;
    std::uint64_t canary_;
};

/// A non-owning view of job input bytes pinned by its arena.
class ArenaSlice
{
  public:
    ArenaSlice() = default;

    /// Materialize a private single-use arena from owned bytes.  This
    /// is the compatibility path for call sites that hand over a
    /// `Bytes` they built for one job: one move (or one copy from an
    /// lvalue), exactly what the old owned-input JobPlan cost.
    ArenaSlice(Bytes owned);

    /// The whole arena.
    explicit ArenaSlice(std::shared_ptr<const InputArena> arena);

    /// A sub-range of `arena` ([offset, offset+len) must be in range).
    ArenaSlice(std::shared_ptr<const InputArena> arena, std::size_t offset,
               std::size_t len);

    /// One-copy wrap of a view whose ownership stays with the caller.
    static ArenaSlice copy_of(BytesView bytes);

    /// Adopt owned bytes (no copy).
    static ArenaSlice take(Bytes &&bytes);

    /// Zero-copy wrap of caller-guaranteed storage (InputArena::borrow).
    static ArenaSlice borrow(BytesView bytes);

    BytesView view() const { return view_; }
    operator BytesView() const { return view_; }

    const std::uint8_t *data() const { return view_.data(); }
    std::size_t size() const { return view_.size(); }
    bool empty() const { return view_.empty(); }
    auto begin() const { return view_.begin(); }
    auto end() const { return view_.end(); }
    std::uint8_t operator[](std::size_t i) const { return view_[i]; }

    /// A narrower view of the same arena — same pin, no bytes touched.
    ArenaSlice subslice(std::size_t offset, std::size_t len) const;

    /// The lifetime token (null only for a default-constructed slice).
    const std::shared_ptr<const InputArena> &arena() const { return arena_; }

    /// True when the view is empty or backed by a live arena that
    /// contains it.
    bool pinned() const;

    /// Throw UdpError naming `who`/`job` unless pinned() — the enforced
    /// form of the old "plan must outlive the run" comment.  Cost: a
    /// couple of compares per job, never per byte.
    void check_pinned(const char *who, const std::string &job) const;

    /// Byte-wise content equality (slices of different arenas compare
    /// equal when their bytes match).
    friend bool operator==(const ArenaSlice &a, const ArenaSlice &b) {
        return a.view_.size() == b.view_.size() &&
               std::equal(a.view_.begin(), a.view_.end(), b.view_.begin());
    }

  private:
    std::shared_ptr<const InputArena> arena_;
    BytesView view_;
};

/// Recycles output/extract buffers across waves (thread-safe).
class BufferPool
{
  public:
    /// `max_buffers` caps the free list so a burst can't hold memory
    /// forever; excess releases drop their buffer.
    explicit BufferPool(std::size_t max_buffers = 1024)
        : max_buffers_(max_buffers) {}

    /// A cleared buffer — recycled (capacity intact) when the free list
    /// has one, freshly constructed otherwise.
    Bytes acquire();

    /// Return a buffer to the pool for reuse.
    void release(Bytes &&b);

    struct Stats {
        std::uint64_t acquired = 0; ///< total acquire() calls
        std::uint64_t reused = 0;   ///< acquires served from the free list
        std::uint64_t released = 0; ///< buffers returned
        std::uint64_t dropped = 0;  ///< releases past the cap
    };
    Stats stats() const;

    std::size_t free_buffers() const;

  private:
    mutable std::mutex mu_;
    std::vector<Bytes> free_;
    std::size_t max_buffers_;
    Stats stats_;
};

} // namespace udp::runtime
