/**
 * @file
 * FaultReport serialization.
 */
#include "postmortem.hpp"

#include "core/metrics_json.hpp"

#include <filesystem>
#include <fstream>

namespace udp::runtime {

void
write_fault_report_json(JsonWriter &w, const FaultReport &r)
{
    w.begin_object();
    w.field("job", r.job_name);
    w.field("job_index", std::uint64_t{r.job_index});
    w.field("trace_id", r.trace_id);
    w.field("wave", r.wave);
    w.field("attempt", r.attempt);
    w.field("max_attempts", r.max_attempts);
    w.field("lane", r.lane);
    w.field("status", lane_status_name(r.status));
    w.field("quarantined", r.quarantined);
    w.field("will_retry", r.will_retry);
    w.field("queue_wait_cycles", std::uint64_t{r.queue_wait_cycles});
    w.field("service_cycles", std::uint64_t{r.service_cycles});

    w.key("fault").begin_object();
    w.field("code", fault_code_name(r.fault.code));
    w.field("state_base", std::uint64_t{r.fault.state_base});
    w.field("cycle", std::uint64_t{r.fault.cycle});
    w.field("detail", r.fault.detail);
    w.field("describe", r.fault.describe());
    w.end_object();

    w.key("attempt_history").begin_array();
    for (const AttemptOutcome &a : r.attempt_history) {
        w.begin_object();
        w.field("wave", a.wave);
        w.field("attempt", a.attempt);
        w.field("status", lane_status_name(a.status));
        w.field("fault", fault_code_name(a.fault));
        w.field("cycle", std::uint64_t{a.cycle});
        w.end_object();
    }
    w.end_array();

    // The lane's flight path: its recent micro-event ring, oldest first,
    // cycle stamps run-local to the faulting wave.
    w.key("recent_events").begin_array();
    for (const TraceEvent &ev : r.recent_events) {
        w.begin_object();
        w.field("cycle", std::uint64_t{ev.cycle});
        w.field("kind", trace_event_kind_name(ev.kind));
        w.field("a", std::uint64_t{ev.a});
        w.field("b", std::uint64_t{ev.b});
        w.end_object();
    }
    w.end_array();
    w.field("dropped_events", r.dropped_events);

    w.field("disassembly", r.disassembly);
    w.end_object();
}

bool
write_fault_report_file(const std::string &path, const FaultReport &r)
{
    std::error_code ec;
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty())
        std::filesystem::create_directories(parent, ec); // best effort
    std::ofstream os(path);
    if (!os)
        return false;
    JsonWriter w(os, /*pretty=*/true);
    write_fault_report_json(w, r);
    os << "\n";
    os.flush();
    return bool(os);
}

std::string
postmortem_filename(const FaultReport &r)
{
    return "postmortem-job" + std::to_string(r.job_index) + "-attempt" +
           std::to_string(r.attempt) + ".json";
}

} // namespace udp::runtime
