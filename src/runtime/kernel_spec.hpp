/**
 * @file
 * KernelSpec: a kernel's reusable description of how to turn input bytes
 * into a JobPlan.
 *
 * Each kernel states once — program, window footprint, per-job input
 * cap, static register initialization, and a `prepare` hook for
 * input-dependent staging/extraction — and every harness (tests,
 * benches, the ETL loader, the wave Scheduler) derives its jobs from
 * that single description via `make_job` or `chunk_jobs`.
 */
#pragma once

#include "runtime/job.hpp"

#include <functional>

namespace udp::runtime {

/// How one kernel maps input bytes onto lane jobs.
struct KernelSpec {
    std::string name;
    std::shared_ptr<const Program> program;
    std::size_t window_bytes = kBankBytes;
    std::size_t max_input_bytes = 0; ///< per-job input cap (0 = none)
    bool nfa_mode = false;
    std::vector<std::pair<unsigned, Word>> init_regs;

    /// Input-dependent setup, run after the plan's input is set: push
    /// MemStage / MemExtract entries, add input-derived init registers.
    std::function<void(JobPlan &)> prepare;

    /// Build one job over `input` (throws when the cap is exceeded).
    /// Takes an ArenaSlice — a pinned view, cheap to pass by value.
    /// `Bytes` still converts implicitly (a private single-job arena is
    /// materialized from it), but multi-job call sites should build one
    /// arena and slice it: the bytes are then never copied at all.
    JobPlan make_job(ArenaSlice input) const;
};

/**
 * Chunk-boundary adjuster: given the whole input and a tentative chunk
 * [begin, end), return a new end in (begin, end] that is a legal split
 * point.  Returning `begin` means no legal split exists (error).
 */
using ChunkAlign =
    std::function<std::size_t(BytesView data, std::size_t begin,
                              std::size_t end)>;

/// ChunkAlign that shrinks `end` to just past the last `delim` byte.
ChunkAlign align_after_delim(std::uint8_t delim);

/**
 * Split `input` into jobs of at most `chunk_bytes` each (clamped to the
 * spec's per-job cap), aligning every split with `align` when given.
 * Chunks cover the input exactly, in order.
 *
 * Zero-copy: every chunk is a sub-slice pinning `input`'s arena — no
 * chunk ever copies payload bytes.  Callers with a view they do not
 * own wrap it first (`ArenaSlice::copy_of` — one copy total — or
 * `ArenaSlice::borrow` when the storage provably outlives the jobs).
 */
std::vector<JobPlan> chunk_jobs(const KernelSpec &spec, ArenaSlice input,
                                std::size_t chunk_bytes,
                                const ChunkAlign &align = nullptr);

/// Non-owning shared_ptr view of a caller-owned program (the caller
/// guarantees the program outlives every job built from it).
std::shared_ptr<const Program> borrow_program(const Program &prog);

} // namespace udp::runtime
