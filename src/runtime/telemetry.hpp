/**
 * @file
 * Runtime telemetry: metric registry, latency histograms, and job/wave
 * lifecycle events (docs/OBSERVABILITY.md).
 *
 * The core simulator's Tracer/Profiler answer "what did one lane do?".
 * This layer answers the service-level question the ROADMAP's `udpd`
 * front-end and rack-scale items need: "what did thousands of jobs
 * flowing through the Scheduler look like?" — p50/p99/p999 queue-wait
 * and service latency, wave occupancy, per-FaultCode retry/quarantine
 * rates, per-kernel throughput.
 *
 * Three pieces, all dependency-free:
 *
 *  - Metric primitives: `Counter` (monotone u64), `Gauge` (latest
 *    double) and `Histogram` (log-bucketed u64 distribution with
 *    exact-count percentiles).  All updates are lock-free atomics, so
 *    metrics can be recorded concurrently — including from inside the
 *    `std::jthread` simulation backend — with *exact* totals and no
 *    Profiler-style serial pinning.
 *  - `MetricRegistry`: named metrics, created on first use, stable
 *    references (hot paths look up once and keep the reference).
 *    Snapshotable to JSON (via `JsonWriter`) and to a Prometheus-style
 *    text exposition; `merge()` folds one registry into another — the
 *    scale-out primitive for per-shard registries.
 *  - Lifecycle events: the Scheduler and the single-job executor emit
 *    `JobRunEvent` / `WaveEvent` records to an optional
 *    `TelemetrySink`.  `RegistryTelemetry` is the standard sink that
 *    turns those events into registry metrics.  With no sink attached
 *    (the default) the hooks are a single null check — the same
 *    zero-overhead discipline as the core Tracer — and simulated
 *    results are bit-identical either way.
 */
#pragma once

#include "core/fault.hpp"
#include "core/lane.hpp"
#include "core/types.hpp"

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace udp {
class JsonWriter;
}

namespace udp::runtime {

// ---------------------------------------------------------------------------
// Metric primitives.
// ---------------------------------------------------------------------------

/// Monotonically increasing event count.  Lock-free; exact under
/// concurrent adds from any number of threads.
class Counter
{
  public:
    void add(std::uint64_t n = 1) {
        v_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/// Last-written scalar (occupancy fraction, thread count, ...).
class Gauge
{
  public:
    void set(double v) { v_.store(v, std::memory_order_relaxed); }
    double value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> v_{0.0};
};

/// Number of log buckets a Histogram tracks (see Histogram).
inline constexpr unsigned kHistogramBuckets = 496;

/**
 * Read-only copy of one histogram's state, decoupled from the live
 * atomics: counts per non-empty bucket plus exact count/sum/min/max.
 * Percentiles are *exact-count*: the value reported for quantile q is
 * the upper bound of the bucket containing the ceil(q*count)-th sample
 * (clamped into [min, max]), so a single-sample histogram reports that
 * sample for every quantile and chains p50 <= p90 <= p99 <= p999 <= max
 * always hold.
 */
struct HistogramSnapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0; ///< meaningless when count == 0
    std::uint64_t max = 0;
    /// (bucket upper bound, samples in bucket), ascending, non-empty only.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;

    /// Arithmetic mean; NaN when empty (serialized as JSON null).
    double mean() const;

    /// Exact-count quantile, q in [0, 1].  0 when empty.
    std::uint64_t percentile(double q) const;
};

/**
 * Log-bucketed distribution of u64 samples (latencies in cycles, sizes
 * in bytes, ...).  Values 0..7 get exact buckets; above that each
 * power-of-two range is split into 8 sub-buckets, bounding the relative
 * quantization error at 12.5% over the full u64 range in ~4 KB.
 * `record` is lock-free (one relaxed fetch_add per of count/sum/bucket
 * plus min/max CAS), so lanes or schedulers on different threads can
 * share one histogram with exact count/sum.
 */
class Histogram
{
  public:
    void record(std::uint64_t v);

    /// Consistent-enough copy for reporting: taken metric-at-a-time
    /// (quiesce writers for a perfectly consistent snapshot).
    HistogramSnapshot snapshot() const;

    /// Fold a snapshot in: bucket counts and sum add exactly, min/max
    /// widen.  The merge primitive for per-shard registries.
    void merge(const HistogramSnapshot &s);

    /// Bucket index a value lands in (exposed for boundary tests).
    static unsigned bucket_index(std::uint64_t v);
    /// Largest value mapping to `index` (inverse of bucket_index).
    static std::uint64_t bucket_upper(unsigned index);

  private:
    static constexpr unsigned kSubBits = 3;
    static constexpr unsigned kSubBuckets = 1u << kSubBits;

    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max_{0};
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
};

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

/**
 * Named metrics, created on first use.  Lookup takes a mutex; the
 * returned references are stable for the registry's lifetime, so hot
 * paths resolve once and update lock-free after that.  Counters,
 * gauges and histograms live in separate namespaces (prefer distinct
 * names anyway — the expositions emit all three side by side).
 */
class MetricRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /**
     * Fold `other` into this registry (the scale-out primitive: one
     * registry per shard/machine, merged for the fleet view).
     * Counters and histogram buckets add; min/max widen; a gauge takes
     * `other`'s latest value (last-writer-wins).
     */
    void merge(const MetricRegistry &other);

    /**
     * Emit the registry as one JSON object under the writer's current
     * position: {"counters": {...}, "gauges": {...}, "histograms":
     * {name: {count,sum,min,max,mean,p50,p90,p99,p999}}}.  Non-finite
     * doubles (e.g. the mean of an empty histogram) become null.
     */
    void write_json(JsonWriter &w) const;

    /**
     * Prometheus-style text exposition.  Names are prefixed `udp_` and
     * sanitized to [a-zA-Z0-9_:].  Counters/gauges get `# TYPE` lines;
     * histograms are exposed as summaries: `{quantile="0.5|0.9|0.99|
     * 0.999"}` sample lines (monotone by construction) plus `_min`,
     * `_max`, `_sum` and `_count`.  Empty histograms emit only
     * `_sum 0` / `_count 0` — never a NaN sample.
     *
     * Labeled series: a registry name may carry a trailing label block
     * — `service.jobs.submitted{tenant="alice"}` — one registry entry
     * per label set.  The part before '{' is the metric *family*:
     * every series of a family emits under a single `# TYPE` line,
     * with the label block passed through verbatim (summary quantile
     * labels are merged into it).  Families should keep one consistent
     * label key set across their series — udp_service does, and
     * tools/check_exposition.py enforces it.
     */
    std::string prometheus_text() const;

    /// Snapshot accessors for tests/tools (copies, alphabetical).
    std::vector<std::pair<std::string, std::uint64_t>> counters() const;
    std::vector<std::pair<std::string, double>> gauges() const;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms() const;

  private:
    mutable std::mutex mu_; ///< guards map shape only, not metric values
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    // Histogram holds a large atomic array; node-allocated map keeps
    // references stable without making Histogram movable.
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Sanitize an arbitrary metric name for the text exposition
/// ([a-zA-Z0-9_:], leading digit guarded by '_').
std::string prometheus_name(std::string_view name);

// ---------------------------------------------------------------------------
// Job / wave lifecycle events.
// ---------------------------------------------------------------------------

/**
 * One run (attempt) of one job, emitted by the Scheduler as each wave
 * is harvested and by `run_job_on` for single-lane runs.  Latencies are
 * *simulated* cycles, so they are deterministic and thread-count
 * independent: queue-wait is the machine time of every wave that ran
 * before this one (submission happens at t = 0), service is the lane's
 * own cycle count, end-to-end is queue-wait plus the wave's wall (a
 * wave is a barrier — results become visible when it closes).
 */
struct JobRunEvent {
    std::string_view job_name;  ///< JobPlan::name (the kernel's name)
    std::size_t job_index = 0;  ///< submission-order index
    unsigned wave = 0;          ///< wave of this run
    unsigned attempt = 1;       ///< 1-based attempt number
    unsigned lane = 0;          ///< lane the run executed on
    LaneStatus status = LaneStatus::Done;
    FaultCode fault = FaultCode::None;
    Cycles queue_wait_cycles = 0;
    Cycles service_cycles = 0;
    Cycles e2e_cycles = 0;
    std::uint64_t input_bytes = 0;  ///< input consumed by this run
    bool final_disposition = false; ///< completed or quarantined (won't rerun)
    bool retried = false;           ///< requeued into a later wave
    bool quarantined = false;       ///< gave up after max_attempts
    bool cancelled = false;         ///< run discarded by JobControl::cancel
};

/// One closed scheduler wave.
struct WaveEvent {
    unsigned index = 0;
    unsigned jobs = 0;       ///< jobs packed into the wave (= busy lanes)
    unsigned banks_used = 0; ///< local-memory banks occupied (<= 64)
    unsigned completed = 0;
    unsigned retried = 0;
    unsigned quarantined = 0;
    unsigned cancelled = 0;  ///< runs discarded mid-wave by cancellation
    Cycles wall_cycles = 0;
    double host_seconds = 0; ///< host time to stage+simulate+harvest it
};

/**
 * Receiver for lifecycle events.  Implementations must tolerate calls
 * from whichever thread drives the Scheduler (the Scheduler itself
 * emits from its caller's thread; the atomic registry sink below is
 * safe from any number of threads).
 */
class TelemetrySink
{
  public:
    virtual ~TelemetrySink() = default;
    virtual void on_job_run(const JobRunEvent &e) = 0;
    virtual void on_wave(const WaveEvent &e) = 0;
};

/**
 * The standard sink: maps lifecycle events onto a MetricRegistry.
 *
 * Well-known names (see docs/OBSERVABILITY.md):
 *   counters   scheduler.runs, scheduler.runs.faulted,
 *              scheduler.jobs.completed, scheduler.jobs.quarantined,
 *              scheduler.jobs.cancelled,
 *              scheduler.retries, scheduler.waves,
 *              scheduler.fault.<code> (one per FaultCode),
 *              kernel.<name>.runs, kernel.<name>.input_bytes
 *   gauges     wave.occupancy (last wave's busy-lane fraction, 0..1)
 *   histograms job.queue_wait_cycles, job.service_cycles (per run),
 *              job.e2e_cycles (final dispositions only),
 *              wave.occupancy_lanes, wave.banks_used, wave.wall_cycles
 *
 * All fixed-name metrics are resolved once at construction; per-kernel
 * counters are resolved on first sight of each kernel name.
 */
class RegistryTelemetry final : public TelemetrySink
{
  public:
    explicit RegistryTelemetry(MetricRegistry &reg);

    void on_job_run(const JobRunEvent &e) override;
    void on_wave(const WaveEvent &e) override;

    MetricRegistry &registry() { return reg_; }

  private:
    struct KernelCounters {
        Counter *runs = nullptr;
        Counter *input_bytes = nullptr;
    };
    KernelCounters &kernel(std::string_view name);

    MetricRegistry &reg_;
    Counter &runs_;
    Counter &runs_faulted_;
    Counter &jobs_completed_;
    Counter &jobs_quarantined_;
    Counter &jobs_cancelled_;
    Counter &retries_;
    Counter &waves_;
    std::array<Counter *, kNumFaultCodes> fault_counters_{};
    Gauge &occupancy_;
    Histogram &queue_wait_;
    Histogram &service_;
    Histogram &e2e_;
    Histogram &wave_occupancy_;
    Histogram &wave_banks_;
    Histogram &wave_wall_;
    std::mutex kernels_mu_;
    std::map<std::string, KernelCounters, std::less<>> kernels_;
};

// ---------------------------------------------------------------------------
// Latency summaries for bench --json (docs/OBSERVABILITY.md).
// ---------------------------------------------------------------------------

/// Queue-wait / service / end-to-end distributions of one scheduled run.
struct JobLatencySummary {
    HistogramSnapshot queue_wait;
    HistogramSnapshot service;
    HistogramSnapshot e2e;
};

/// Write one snapshot as {count,min,max,mean,sum,p50,p90,p99,p999}.
void write_histogram_json(JsonWriter &w, const HistogramSnapshot &h);

} // namespace udp::runtime
