/**
 * @file
 * SpanTracer / FlightRecorder implementation.
 */
#include "spantrace.hpp"

#include "core/metrics_json.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <set>

namespace udp::runtime {

// ---------------------------------------------------------------------------
// SpanTracer.
// ---------------------------------------------------------------------------

SpanTracer::SpanTracer(std::size_t max_spans, std::size_t max_lane_events)
    : max_spans_(max_spans), max_lane_events_(max_lane_events)
{
    if (max_spans_ == 0 || max_lane_events_ == 0)
        throw UdpError("SpanTracer: capacities must be positive");
}

void
SpanTracer::begin_schedule(std::size_t n_jobs)
{
    // Lay this run out after everything already on the timeline, so a
    // bench that schedules several times produces one sequential trace.
    run_base_ = timeline_end_;
    run_wall_ = 0;
    run_trace_base_ = next_trace_id_;
    next_trace_id_ += n_jobs;
    ++run_ordinal_;
}

void
SpanTracer::on_job_run(const JobRunEvent &e)
{
    if (attempts_.size() >= max_spans_) {
        ++dropped_spans_;
        return;
    }
    AttemptSpan s;
    s.job_name = std::string(e.job_name);
    s.trace_id = run_trace_base_ + e.job_index;
    s.job_index = e.job_index;
    s.wave = e.wave;
    s.attempt = e.attempt;
    s.lane = e.lane;
    s.status = e.status;
    s.fault = e.fault;
    s.submit = run_base_;
    s.start = run_base_ + e.queue_wait_cycles;
    s.service = e.service_cycles;
    s.end = run_base_ + e.e2e_cycles;
    s.final_disposition = e.final_disposition;
    s.quarantined = e.quarantined;
    timeline_end_ = std::max(timeline_end_, s.end);
    attempts_.push_back(std::move(s));
}

void
SpanTracer::on_wave(const WaveEvent &e)
{
    if (waves_.size() >= max_spans_) {
        ++dropped_spans_;
        return;
    }
    WaveSpan s;
    s.index = e.index;
    // 0-based run ordinal (begin_schedule pre-increments; waves seen
    // before any begin_schedule count as run 0).
    s.run = run_ordinal_ ? run_ordinal_ - 1 : 0;
    s.jobs = e.jobs;
    s.banks_used = e.banks_used;
    s.start = run_base_ + run_wall_;
    s.wall = e.wall_cycles;
    s.host_seconds = e.host_seconds;
    run_wall_ += e.wall_cycles;
    timeline_end_ = std::max(timeline_end_, s.start + s.wall);
    waves_.push_back(s);
}

void
SpanTracer::absorb_lane_events(const Tracer &t, Cycles wave_start)
{
    const Cycles base = run_base_ + wave_start;
    for (const unsigned lane : t.active_lanes()) {
        dropped_lane_events_ += t.dropped(lane); // evicted before absorb
        for (const TraceEvent &ev : t.events(lane)) {
            if (lane_events_.size() >= max_lane_events_) {
                ++dropped_lane_events_;
                continue;
            }
            lane_events_.push_back({ev, base});
            timeline_end_ =
                std::max(timeline_end_, base + ev.cycle);
        }
    }
}

void
SpanTracer::clear()
{
    attempts_.clear();
    waves_.clear();
    lane_events_.clear();
    dropped_spans_ = 0;
    dropped_lane_events_ = 0;
    run_base_ = run_wall_ = timeline_end_ = 0;
    next_trace_id_ = run_trace_base_ = 0;
    run_ordinal_ = 0;
}

namespace {

/// Cycle stamp -> microseconds at the nominal clock (1 cycle = 1 ns).
double
cycles_to_us(Cycles c)
{
    return double(c) * (1e6 / kClockHz);
}

/// Process ids of the merged trace: the machine's lane tracks sit under
/// pid 0 (matching the core exporter), the scheduler above them.
constexpr int kMachinePid = 0;
constexpr int kSchedulerPid = 1;
constexpr std::uint64_t kWaveTid = 0;
constexpr std::uint64_t kJobTid = 1;

/// One sortable record of the merged emission.  Records are sorted by
/// (pid, tid, ts, rank, -dur) so every track's timestamps come out
/// monotone and, at equal timestamps, enclosing slices precede enclosed
/// ones ("b" before children, longer "X" first, "e" closes inner-out).
struct Rec {
    enum class Type : std::uint8_t {
        Micro,        ///< lane micro-event (write_trace_event)
        AttemptSlice, ///< X slice on the lane track
        WaveSlice,    ///< X slice on the scheduler wave track
        JobBegin,     ///< async b on the scheduler job track
        JobEnd,       ///< async e
        AttemptBegin, ///< async b nested inside the job span
        AttemptEnd,   ///< async e
    };
    int pid = 0;
    std::uint64_t tid = 0;
    Cycles ts = 0;
    int rank = 500;
    Cycles dur = 0;
    Type type = Type::Micro;
    std::size_t idx = 0; ///< into attempts_ / waves_ / lane_events_

    bool operator<(const Rec &o) const {
        if (pid != o.pid) return pid < o.pid;
        if (tid != o.tid) return tid < o.tid;
        if (ts != o.ts) return ts < o.ts;
        if (rank != o.rank) return rank < o.rank;
        return dur > o.dur; // longer slice first => proper nesting
    }
};

void
write_process_metadata(JsonWriter &w, int pid, const char *name)
{
    w.begin_object();
    w.field("name", "process_name");
    w.field("ph", "M");
    w.field("pid", pid);
    w.field("tid", std::uint64_t{0});
    w.key("args").begin_object();
    w.field("name", name);
    w.end_object();
    w.end_object();
}

void
write_thread_metadata(JsonWriter &w, int pid, std::uint64_t tid,
                      const std::string &name)
{
    w.begin_object();
    w.field("name", "thread_name");
    w.field("ph", "M");
    w.field("pid", pid);
    w.field("tid", tid);
    w.key("args").begin_object();
    w.field("name", name);
    w.end_object();
    w.end_object();
}

std::string
trace_id_string(std::uint64_t id)
{
    return "job-" + std::to_string(id);
}

} // namespace

void
SpanTracer::write_chrome_trace(std::ostream &os) const
{
    JsonWriter w(os, /*pretty=*/false);
    w.begin_object();
    w.key("traceEvents").begin_array();

    // Track metadata first: process names, scheduler tracks, and one
    // thread_name per lane that appears anywhere in the trace.
    write_process_metadata(w, kSchedulerPid, "udp scheduler");
    write_process_metadata(w, kMachinePid, "udp machine");
    write_thread_metadata(w, kSchedulerPid, kWaveTid, "waves");
    write_thread_metadata(w, kSchedulerPid, kJobTid, "jobs");
    std::set<unsigned> lanes;
    for (const AttemptSpan &a : attempts_)
        lanes.insert(a.lane);
    for (const PlacedEvent &pe : lane_events_)
        lanes.insert(pe.ev.lane);
    for (const unsigned lane : lanes)
        write_lane_track_metadata(w, lane);

    // Build the sortable record list.
    std::vector<Rec> recs;
    recs.reserve(lane_events_.size() + attempts_.size() * 4 +
                 waves_.size());
    for (std::size_t i = 0; i < lane_events_.size(); ++i) {
        const PlacedEvent &pe = lane_events_[i];
        // Mirror write_trace_event's stamp math so sort order matches
        // the emitted ts exactly.
        const bool slice = pe.ev.kind == TraceEventKind::Dispatch ||
                           pe.ev.kind == TraceEventKind::Action ||
                           pe.ev.kind == TraceEventKind::Stall;
        const Cycles dur = pe.ev.kind == TraceEventKind::Stall
                               ? Cycles{pe.ev.b}
                               : Cycles{1};
        Rec r;
        r.pid = kMachinePid;
        r.tid = pe.ev.lane;
        r.ts = slice ? pe.base +
                           (pe.ev.cycle >= dur ? pe.ev.cycle - dur : 0)
                     : pe.base + pe.ev.cycle;
        r.dur = slice ? dur : 0;
        r.type = Rec::Type::Micro;
        r.idx = i;
        recs.push_back(r);
    }
    for (std::size_t i = 0; i < attempts_.size(); ++i) {
        const AttemptSpan &a = attempts_[i];
        // The lane-track slice: the lane was busy [start, start+service].
        recs.push_back({kMachinePid, a.lane, a.start, 400, a.service,
                        Rec::Type::AttemptSlice, i});
        // The job-track async span: b/e per attempt, nested inside the
        // job span for final dispositions.
        recs.push_back({kSchedulerPid, kJobTid, a.start, 1, 0,
                        Rec::Type::AttemptBegin, i});
        recs.push_back({kSchedulerPid, kJobTid, a.start + a.service, 900,
                        0, Rec::Type::AttemptEnd, i});
        if (a.final_disposition) {
            recs.push_back({kSchedulerPid, kJobTid, a.submit, 0, 0,
                            Rec::Type::JobBegin, i});
            recs.push_back({kSchedulerPid, kJobTid, a.end, 901, 0,
                            Rec::Type::JobEnd, i});
        }
    }
    for (std::size_t i = 0; i < waves_.size(); ++i) {
        const WaveSpan &ws = waves_[i];
        recs.push_back({kSchedulerPid, kWaveTid, ws.start, 500, ws.wall,
                        Rec::Type::WaveSlice, i});
    }
    std::sort(recs.begin(), recs.end());

    for (const Rec &r : recs) {
        switch (r.type) {
          case Rec::Type::Micro: {
            const PlacedEvent &pe = lane_events_[r.idx];
            write_trace_event(w, pe.ev, pe.base);
            break;
          }
          case Rec::Type::AttemptSlice: {
            const AttemptSpan &a = attempts_[r.idx];
            w.begin_object();
            w.field("name", a.job_name + "#" +
                                std::to_string(a.job_index) + " attempt " +
                                std::to_string(a.attempt));
            w.field("cat", "udp.attempt");
            w.field("ph", "X");
            w.field("ts", cycles_to_us(a.start));
            w.field("dur", cycles_to_us(a.service));
            w.field("pid", kMachinePid);
            w.field("tid", std::uint64_t{a.lane});
            w.key("args").begin_object();
            w.field("trace_id", a.trace_id);
            w.field("job", a.job_name);
            w.field("wave", a.wave);
            w.field("attempt", a.attempt);
            w.field("status", lane_status_name(a.status));
            if (a.fault != FaultCode::None)
                w.field("fault", fault_code_name(a.fault));
            w.field("queue_wait_cycles",
                    std::uint64_t{a.start - a.submit});
            w.field("service_cycles", std::uint64_t{a.service});
            w.end_object();
            w.end_object();
            break;
          }
          case Rec::Type::WaveSlice: {
            const WaveSpan &ws = waves_[r.idx];
            w.begin_object();
            w.field("name", "wave " + std::to_string(ws.index));
            w.field("cat", "udp.wave");
            w.field("ph", "X");
            w.field("ts", cycles_to_us(ws.start));
            w.field("dur", cycles_to_us(ws.wall));
            w.field("pid", kSchedulerPid);
            w.field("tid", kWaveTid);
            w.key("args").begin_object();
            w.field("run", ws.run);
            w.field("jobs", ws.jobs);
            w.field("banks_used", ws.banks_used);
            // Host wall-clock of the wave: the secondary clock next to
            // the deterministic simulated-cycle timeline.
            w.field("host_seconds", ws.host_seconds);
            w.end_object();
            w.end_object();
            break;
          }
          case Rec::Type::JobBegin:
          case Rec::Type::JobEnd: {
            const AttemptSpan &a = attempts_[r.idx];
            w.begin_object();
            w.field("name",
                    "job " + a.job_name + "#" +
                        std::to_string(a.job_index));
            w.field("cat", "udp.job");
            w.field("ph", r.type == Rec::Type::JobBegin ? "b" : "e");
            w.field("id", trace_id_string(a.trace_id));
            w.field("ts", cycles_to_us(r.ts));
            w.field("pid", kSchedulerPid);
            w.field("tid", kJobTid);
            w.key("args").begin_object();
            if (r.type == Rec::Type::JobEnd) {
                w.field("status", lane_status_name(a.status));
                w.field("attempts", a.attempt);
                w.field("quarantined", a.quarantined);
                w.field("e2e_cycles", std::uint64_t{a.end - a.submit});
            } else {
                w.field("trace_id", a.trace_id);
            }
            w.end_object();
            w.end_object();
            break;
          }
          case Rec::Type::AttemptBegin:
          case Rec::Type::AttemptEnd: {
            const AttemptSpan &a = attempts_[r.idx];
            w.begin_object();
            w.field("name", "attempt " + std::to_string(a.attempt));
            w.field("cat", "udp.job");
            w.field("ph", r.type == Rec::Type::AttemptBegin ? "b" : "e");
            w.field("id", trace_id_string(a.trace_id));
            w.field("ts", cycles_to_us(r.ts));
            w.field("pid", kSchedulerPid);
            w.field("tid", kJobTid);
            w.key("args").begin_object();
            if (r.type == Rec::Type::AttemptBegin) {
                w.field("wave", a.wave);
                w.field("lane", a.lane);
            } else {
                w.field("status", lane_status_name(a.status));
            }
            w.end_object();
            w.end_object();
            break;
          }
        }
    }

    // Surface capped data loss in the trace itself rather than silently
    // truncating the timeline.
    if (dropped_spans_ || dropped_lane_events_) {
        w.begin_object();
        w.field("name", "trace data dropped");
        w.field("cat", "udp");
        w.field("ph", "i");
        w.field("ts", cycles_to_us(timeline_end_));
        w.field("s", "g");
        w.field("pid", kSchedulerPid);
        w.field("tid", kWaveTid);
        w.key("args").begin_object();
        w.field("dropped_spans", dropped_spans_);
        w.field("dropped_lane_events", dropped_lane_events_);
        w.end_object();
        w.end_object();
    }

    w.end_array();
    w.field("displayTimeUnit", "ns");
    w.end_object();
}

bool
SpanTracer::write_file(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    write_chrome_trace(os);
    os.flush();
    return bool(os);
}

// ---------------------------------------------------------------------------
// FlightRecorder.
// ---------------------------------------------------------------------------

std::string_view
flight_event_kind_name(FlightEventKind k)
{
    switch (k) {
      case FlightEventKind::LaneStart: return "lane_start";
      case FlightEventKind::LaneEnd: return "lane_end";
      case FlightEventKind::JobRun: return "job_run";
      case FlightEventKind::WaveClose: return "wave_close";
      case FlightEventKind::Quarantine: return "quarantine";
    }
    return "?";
}

namespace {

/// Registry of live recorders, so a thread-exit release can tell whether
/// the recorder its cached slot points at still exists (a TLS holder can
/// outlive the FlightRecorder it last recorded to).
std::mutex &
live_recorders_mu()
{
    static std::mutex mu;
    return mu;
}

std::set<const void *> &
live_recorders()
{
    static std::set<const void *> live;
    return live;
}

} // namespace

/// Per-thread slot cache.  One per thread (thread_local); releases the
/// slot back to its recorder when the thread exits — under the registry
/// mutex, so a destroyed recorder is never touched.
struct FlightRecorderTls {
    FlightRecorder *owner = nullptr;
    unsigned slot = 0;

    ~FlightRecorderTls() { release(); }

    void release() {
        if (!owner)
            return;
        std::lock_guard<std::mutex> lk(live_recorders_mu());
        if (live_recorders().count(owner))
            owner->release_slot(slot);
        owner = nullptr;
    }
};

namespace {
thread_local FlightRecorderTls g_flight_tls;
} // namespace

FlightRecorder::FlightRecorder(std::size_t ring_capacity)
    : capacity_(ring_capacity)
{
    if (capacity_ == 0)
        throw UdpError("FlightRecorder: ring capacity must be positive");
    std::lock_guard<std::mutex> lk(live_recorders_mu());
    live_recorders().insert(this);
}

FlightRecorder::~FlightRecorder()
{
    std::lock_guard<std::mutex> lk(live_recorders_mu());
    live_recorders().erase(this);
    // The calling thread's own cached slot would dangle the moment this
    // returns; drop it (other threads' caches are guarded by the
    // registry check above).
    if (g_flight_tls.owner == this)
        g_flight_tls.owner = nullptr;
}

unsigned
FlightRecorder::acquire_slot()
{
    std::lock_guard<std::mutex> lk(slots_mu_);
    for (unsigned i = 0; i < kFlightRecorderSlots; ++i) {
        if (!slots_[i].in_use) {
            slots_[i].in_use = true;
            return i;
        }
    }
    throw UdpError("FlightRecorder: more concurrent recording threads "
                   "than slots");
}

void
FlightRecorder::release_slot(unsigned slot)
{
    std::lock_guard<std::mutex> lk(slots_mu_);
    // Retained events survive the release: the ring keeps the recent
    // past; only the write cursor ownership moves to the next thread.
    slots_[slot].in_use = false;
}

void
FlightRecorder::record(FlightEventKind kind, unsigned lane,
                       std::uint64_t a, std::uint64_t b)
{
    if (g_flight_tls.owner != this) {
        // First record from this thread (or it last recorded elsewhere):
        // claim a slot under the mutex, then cache it.  Everything past
        // this branch is lock-free.
        g_flight_tls.release();
        g_flight_tls.slot = acquire_slot();
        g_flight_tls.owner = this;
    }
    Slot &s = slots_[g_flight_tls.slot];
    FlightEvent ev;
    ev.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    ev.a = a;
    ev.b = b;
    ev.kind = kind;
    ev.lane = static_cast<std::uint8_t>(lane);
    if (s.buf.size() < capacity_) {
        s.buf.push_back(ev);
    } else {
        s.buf[s.next] = ev;
        s.next = (s.next + 1) % capacity_;
    }
    ++s.total;
}

void
FlightRecorder::on_lane_start(unsigned lane)
{
    record(FlightEventKind::LaneStart, lane);
}

void
FlightRecorder::on_lane_end(unsigned lane, LaneStatus status, Cycles cycles)
{
    record(FlightEventKind::LaneEnd, lane,
           static_cast<std::uint64_t>(status), cycles);
}

std::vector<FlightEvent>
FlightRecorder::snapshot() const
{
    std::vector<FlightEvent> out;
    {
        std::lock_guard<std::mutex> lk(slots_mu_);
        for (const Slot &s : slots_)
            out.insert(out.end(), s.buf.begin(), s.buf.end());
    }
    std::sort(out.begin(), out.end(),
              [](const FlightEvent &x, const FlightEvent &y) {
                  return x.seq < y.seq;
              });
    return out;
}

std::uint64_t
FlightRecorder::dropped() const
{
    std::lock_guard<std::mutex> lk(slots_mu_);
    std::uint64_t retained = 0;
    for (const Slot &s : slots_)
        retained += s.buf.size();
    return seq_.load(std::memory_order_relaxed) - retained;
}

} // namespace udp::runtime
