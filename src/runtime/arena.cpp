/**
 * @file
 * Input arenas, pinned slices and the output buffer pool.
 */
#include "arena.hpp"

namespace udp::runtime {

namespace {

std::atomic<std::uint64_t> g_arena_generation{1};
std::atomic<std::size_t> g_live_arenas{0};

} // namespace

InputArena::InputArena(Private, Bytes owned, BytesView borrowed)
    : owned_(std::move(owned)),
      view_(owned_.empty() ? borrowed : BytesView(owned_)),
      generation_(g_arena_generation.fetch_add(1,
                                               std::memory_order_relaxed)),
      canary_(expected_canary(generation_))
{
    g_live_arenas.fetch_add(1, std::memory_order_relaxed);
}

InputArena::~InputArena()
{
    // Scramble the canary so a slice outliving its arena trips
    // check_pinned instead of silently streaming freed memory.
    canary_ = 0;
    g_live_arenas.fetch_sub(1, std::memory_order_relaxed);
}

std::shared_ptr<const InputArena>
InputArena::take(Bytes &&bytes)
{
    return std::make_shared<InputArena>(Private{}, std::move(bytes),
                                        BytesView{});
}

std::shared_ptr<const InputArena>
InputArena::copy(BytesView bytes)
{
    return take(Bytes(bytes.begin(), bytes.end()));
}

std::shared_ptr<const InputArena>
InputArena::borrow(BytesView bytes)
{
    return std::make_shared<InputArena>(Private{}, Bytes{}, bytes);
}

std::size_t
InputArena::live_count()
{
    return g_live_arenas.load(std::memory_order_relaxed);
}

std::uint64_t
InputArena::expected_canary(std::uint64_t gen)
{
    // Generation-keyed so a stale canary from a dead arena's reused
    // storage cannot accidentally satisfy a different arena's check.
    return gen ^ 0xA11E'AC5E'BADC'0DEFull;
}

ArenaSlice::ArenaSlice(Bytes owned)
    : arena_(InputArena::take(std::move(owned))), view_(arena_->view())
{
}

ArenaSlice::ArenaSlice(std::shared_ptr<const InputArena> arena)
    : arena_(std::move(arena)), view_(arena_ ? arena_->view() : BytesView{})
{
}

ArenaSlice::ArenaSlice(std::shared_ptr<const InputArena> arena,
                       std::size_t offset, std::size_t len)
    : arena_(std::move(arena))
{
    if (!arena_)
        throw UdpError("ArenaSlice: null arena");
    if (offset + len > arena_->size())
        throw UdpError("ArenaSlice: slice escapes its arena");
    view_ = arena_->view().subspan(offset, len);
}

ArenaSlice
ArenaSlice::copy_of(BytesView bytes)
{
    return ArenaSlice(InputArena::copy(bytes));
}

ArenaSlice
ArenaSlice::take(Bytes &&bytes)
{
    return ArenaSlice(InputArena::take(std::move(bytes)));
}

ArenaSlice
ArenaSlice::borrow(BytesView bytes)
{
    return ArenaSlice(InputArena::borrow(bytes));
}

ArenaSlice
ArenaSlice::subslice(std::size_t offset, std::size_t len) const
{
    if (offset + len > view_.size())
        throw UdpError("ArenaSlice: subslice out of range");
    ArenaSlice s;
    s.arena_ = arena_;
    s.view_ = view_.subspan(offset, len);
    return s;
}

bool
ArenaSlice::pinned() const
{
    if (view_.empty())
        return true;
    if (!arena_ || !arena_->alive())
        return false;
    const BytesView whole = arena_->view();
    return view_.data() >= whole.data() &&
           view_.data() + view_.size() <= whole.data() + whole.size();
}

void
ArenaSlice::check_pinned(const char *who, const std::string &job) const
{
    if (pinned())
        return;
    throw UdpError(std::string(who) + ": job '" + job +
                   "' input is not pinned by a live arena (the plan — or "
                   "the arena backing it — died before the run finished)");
}

Bytes
BufferPool::acquire()
{
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.acquired;
    if (free_.empty())
        return Bytes{};
    ++stats_.reused;
    Bytes b = std::move(free_.back());
    free_.pop_back();
    b.clear(); // cleared, capacity intact
    return b;
}

void
BufferPool::release(Bytes &&b)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.released;
    if (free_.size() >= max_buffers_) {
        ++stats_.dropped;
        return; // let it free; the pool is full
    }
    free_.push_back(std::move(b));
}

BufferPool::Stats
BufferPool::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

std::size_t
BufferPool::free_buffers() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
}

} // namespace udp::runtime
