/**
 * @file
 * UDP signal-triggering kernel (paper Section 5.7): the pulse-width
 * transition-localization FSM pN over 8-bit oscilloscope samples.
 *
 * One multi-way dispatch per sample: samples below the threshold (MSB
 * clear) take labeled arcs, samples above it take the state's majority
 * arc - "multi-way dispatch for efficient FSM traversal".  A pulse of
 * exactly N high samples ending in a low sample fires an Accept.
 */
#pragma once

#include "core/machine.hpp"
#include "core/program.hpp"
#include "runtime/kernel_spec.hpp"

namespace udp::kernels {

/// Build the pN trigger program (threshold = sample MSB).
Program trigger_program(unsigned width);

/// Runtime description (docs/RUNTIME.md): no data memory, one sample
/// chunk per job; trigger count = JobResult::stats.accepts.
runtime::KernelSpec trigger_kernel_spec(unsigned width);

/// 8-bit sample waveform generator companion: expand a bit-packed
/// waveform (workloads::waveform) into one byte per sample.
Bytes samples_from_bits(BytesView packed, std::uint8_t high = 200,
                        std::uint8_t low = 40);

} // namespace udp::kernels
