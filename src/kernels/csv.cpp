/**
 * @file
 * CSV kernel builder (libcsv FSM on UDP multi-way dispatch).
 */
#include "csv.hpp"

#include "assembler/builder.hpp"
#include "runtime/executor.hpp"

namespace udp::kernels {

namespace {

// Register plan (see header).
constexpr unsigned rFieldStart = 4;
constexpr unsigned rOut = 5;
constexpr unsigned rLen = 6;
constexpr unsigned rFields = 7;
constexpr unsigned rRows = 8;
constexpr unsigned rScratch = 9;

/// Field begins at the just-consumed character.
std::vector<Action>
start_field()
{
    return {
        act_reg(Opcode::Mov, rFieldStart, 0, kRegStreamIdx),
        act_imm(Opcode::Subi, rFieldStart, rFieldStart, 1),
    };
}

/// Field begins after the just-consumed opening quote.
std::vector<Action>
start_quoted()
{
    return {act_reg(Opcode::Mov, rFieldStart, 0, kRegStreamIdx)};
}

/// Close a field whose content ends `back` bytes before the cursor:
/// loop-copy the span into the output region, terminate with '\n'.
std::vector<Action>
end_field(unsigned back)
{
    return {
        act_reg(Opcode::Mov, rLen, 0, kRegStreamIdx),
        act_imm(Opcode::Subi, rLen, rLen, static_cast<std::int32_t>(back)),
        act_reg(Opcode::Sub, rLen, rLen, rFieldStart),
        act_reg(Opcode::Loopcpy, rLen, rOut, rFieldStart),
        act_reg(Opcode::Add, rOut, rOut, rLen),
        act_imm(Opcode::Movi, rScratch, 0, '\n'),
        act_imm(Opcode::Stb, rScratch, rOut, 0),
        act_imm(Opcode::Addi, rOut, rOut, 1),
        act_imm(Opcode::Addi, rFields, rFields, 1),
    };
}

/// Close an empty field (no span to copy).
std::vector<Action>
end_empty_field()
{
    return {
        act_imm(Opcode::Movi, rScratch, 0, '\n'),
        act_imm(Opcode::Stb, rScratch, rOut, 0),
        act_imm(Opcode::Addi, rOut, rOut, 1),
        act_imm(Opcode::Addi, rFields, rFields, 1),
    };
}

/// Close a row: write the 0x1E row mark.
std::vector<Action>
end_row()
{
    return {
        act_imm(Opcode::Movi, rScratch, 0, 0x1E),
        act_imm(Opcode::Stb, rScratch, rOut, 0),
        act_imm(Opcode::Addi, rOut, rOut, 1),
        act_imm(Opcode::Addi, rRows, rRows, 1),
    };
}

std::vector<Action>
cat(std::vector<Action> a, const std::vector<Action> &b)
{
    a.insert(a.end(), b.begin(), b.end());
    return a;
}

} // namespace

Program
csv_parser_program()
{
    ProgramBuilder b;
    const StateId R = b.add_state(); // row start (row not open)
    const StateId F = b.add_state(); // field start (after a comma)
    const StateId U = b.add_state(); // unquoted field body
    const StateId Q = b.add_state(); // quoted field body
    const StateId E = b.add_state(); // quote seen inside quoted field
    const StateId C = b.add_state(); // after CR (swallow one LF)

    const BlockId kStart = b.add_block(start_field());
    const BlockId kQStart = b.add_block(start_quoted());
    const BlockId kEmpty = b.add_block(end_empty_field());
    const BlockId kEmptyRow = b.add_block(cat(end_empty_field(), end_row()));
    const BlockId kEnd1 = b.add_block(end_field(1));
    const BlockId kEnd1Row = b.add_block(cat(end_field(1), end_row()));
    const BlockId kEnd2 = b.add_block(end_field(2));
    const BlockId kEnd2Row = b.add_block(cat(end_field(2), end_row()));

    // Row start: blank lines are ignored.
    b.on_symbol(R, ',', F, kEmpty);
    b.on_symbol(R, '"', Q, kQStart);
    b.on_symbol(R, '\n', R);
    b.on_symbol(R, '\r', C);
    b.on_majority(R, U, kStart);

    // Field start after a comma: the row is open.
    b.on_symbol(F, ',', F, kEmpty);
    b.on_symbol(F, '"', Q, kQStart);
    b.on_symbol(F, '\n', R, kEmptyRow);
    b.on_symbol(F, '\r', C, kEmptyRow);
    b.on_majority(F, U, kStart);

    // Unquoted body: the majority self-loop is the hot path.
    b.on_symbol(U, ',', F, kEnd1);
    b.on_symbol(U, '\n', R, kEnd1Row);
    b.on_symbol(U, '\r', C, kEnd1Row);
    b.on_majority(U, U);

    // Quoted body.
    b.on_symbol(Q, '"', E);
    b.on_majority(Q, Q);

    // Quote inside a quoted field: "" escape or field close.
    b.on_symbol(E, '"', Q);
    b.on_symbol(E, ',', F, kEnd2);
    b.on_symbol(E, '\n', R, kEnd2Row);
    b.on_symbol(E, '\r', C, kEnd2Row);
    b.on_majority(E, U); // lenient, like libcsv

    // After CR: swallow one LF, otherwise behave like row start.
    b.on_symbol(C, '\n', R);
    b.on_symbol(C, ',', F, kEmpty);
    b.on_symbol(C, '"', Q, kQStart);
    b.on_symbol(C, '\r', C);
    b.on_majority(C, U, kStart);

    b.set_entry(R);
    b.set_initial_symbol_bits(8);
    return b.build();
}

runtime::KernelSpec
csv_kernel_spec()
{
    static const auto prog =
        std::make_shared<const Program>(csv_parser_program());
    runtime::KernelSpec spec;
    spec.name = "csv";
    spec.program = prog;
    spec.window_bytes = kCsvWindowBytes;
    spec.max_input_bytes = kCsvOutBase;
    spec.init_regs = {{rOut, kCsvOutBase}};
    spec.prepare = [](runtime::JobPlan &p) {
        p.stages.push_back({0, p.input});
        p.extracts.push_back({kCsvOutBase, 0, rOut});
    };
    return spec;
}

CsvKernelResult
decode_csv_result(const runtime::JobResult &r)
{
    if (r.status == LaneStatus::Reject)
        throw UdpError("csv kernel: parser rejected input");
    runtime::require_done(r, "csv kernel");
    CsvKernelResult res;
    res.fields = r.regs[rFields];
    res.rows = r.regs[rRows];
    res.stats = r.stats;
    res.field_stream = r.extracts.at(0);
    return res;
}

CsvKernelResult
run_csv_kernel(Machine &m, unsigned lane_idx, BytesView data,
               ByteAddr window_base)
{
    // `data` outlives this call, so the single-lane harness borrows it
    // instead of copying (runtime/arena.hpp).
    const runtime::JobPlan job =
        csv_kernel_spec().make_job(runtime::ArenaSlice::borrow(data));
    return decode_csv_result(
        runtime::run_job_on(m, lane_idx, window_base, job));
}

} // namespace udp::kernels
