/**
 * @file
 * UDP dictionary and dictionary-RLE encoding kernels (paper Section 5.4,
 * Figure 17).
 *
 * The paper's kernel "performs encoding, using a defined dictionary": the
 * dictionary is compiled into the program as a byte trie walked with
 * multi-way dispatch (one cycle per input byte); value-terminating '\n'
 * arcs emit the 32-bit id.  The RLE variant additionally tracks runs with
 * a *flagged* (scalar-register) dispatch: after each value, r0 is set to
 * "same id as previous?" and a register-sourced state branches to either
 * a run-increment or a flush block - the paper's "flexible dispatch
 * sources are used".
 *
 * Input format: values separated by '\n', terminated by a 0x00 sentinel
 * byte (appended by the harness) so the last run flushes.
 * Output: 8-byte records (id u32 LE, run u32 LE); records with run 0 are
 * start-up artifacts and are skipped by the harness.  The plain
 * dictionary kernel emits 4-byte id records.
 */
#pragma once

#include "baselines/dictionary.hpp"
#include "core/machine.hpp"
#include "core/program.hpp"
#include "runtime/kernel_spec.hpp"

namespace udp::kernels {

/// Compile a trie-encoder for `dict` (plain: one u32 id per value).
Program dictionary_program(const baselines::Dictionary &dict);

/// Compile the dictionary-RLE variant (id,run u32 pairs).
Program dictionary_rle_program(const baselines::Dictionary &dict);

/// Input stream for the kernels: '\n'-joined values + 0x00 sentinel.
Bytes dict_input(const std::vector<std::string> &rows);

/// Decoded kernel output.
struct DictKernelResult {
    std::vector<std::uint32_t> ids;  ///< plain variant
    std::vector<std::pair<std::uint32_t, std::uint32_t>> runs; ///< RLE
    LaneStats stats;
};

DictKernelResult run_dict_kernel(Machine &m, unsigned lane,
                                 const Program &prog, BytesView input,
                                 bool rle);

/**
 * Runtime description (docs/RUNTIME.md): one-bank window (the trie
 * lives in dispatch memory, not data memory); one '\n'-joined,
 * 0x00-terminated value block per job (see dict_input).
 */
runtime::KernelSpec dictionary_kernel_spec(
    const baselines::Dictionary &dict, bool rle);

/// Unpack id / (id,run) records from a runtime JobResult.
DictKernelResult decode_dict_result(const runtime::JobResult &r, bool rle);

} // namespace udp::kernels
