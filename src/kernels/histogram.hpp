/**
 * @file
 * UDP histogram kernel (paper Sections 4.1 and 5.5, Figure 18).
 *
 * "The dividers are compiled into automata scans of 4 bits a time, with
 * acceptance states updating the appropriate bin."
 *
 * IEEE-754 doubles are mapped to order-preserving 64-bit keys and
 * streamed big-endian; the kernel dispatches one nibble per cycle,
 * tracking which bin edges still straddle the scanned prefix.  When a
 * single bin remains, the acceptance action performs the fused
 * bin-increment (Bininc) and skips the value's remaining nibbles.
 * The bin table lives at offset 0 of the lane window (one 32-bit counter
 * per bin).
 */
#pragma once

#include "baselines/histogram.hpp"
#include "core/machine.hpp"
#include "core/program.hpp"
#include "runtime/kernel_spec.hpp"

namespace udp::kernels {

/// Order-preserving key of a double (sign-flipped IEEE bits).
std::uint64_t fp_key(double x);

/// Pack values as big-endian keys (the kernel's stream format).
Bytes pack_fp_stream(const std::vector<double> &values);

/// Build the divider automaton for the given ascending bin edges
/// (size = bins+1 as in baselines::Histogram).
Program histogram_program(const std::vector<double> &edges);

/// Single-lane harness: runs the kernel and returns per-bin counts.
struct HistKernelResult {
    std::vector<std::uint64_t> counts;
    LaneStats stats;
};
HistKernelResult run_histogram_kernel(Machine &m, unsigned lane,
                                      const Program &prog,
                                      BytesView packed, unsigned bins,
                                      ByteAddr window_base);

/**
 * Runtime description (docs/RUNTIME.md): one-bank window holding the
 * zero-staged bin table at offset 0; one packed-value shard per job.
 * Shard counts merge by addition.
 */
runtime::KernelSpec histogram_kernel_spec(const std::vector<double> &edges);

/// Unpack per-bin counts from a runtime JobResult.
HistKernelResult decode_histogram_result(const runtime::JobResult &r);

} // namespace udp::kernels
