/**
 * @file
 * UDP Huffman kernels (paper Sections 3.2.2, 5.2; Figures 7, 8, 14, 15).
 *
 * Decoding: the canonical code tree becomes a UDP dispatch tree.  All
 * four variable-size-symbol designs of Section 3.2.2 are implemented so
 * Fig 8 can be regenerated:
 *
 *  - SsF   fixed 8-bit dispatch; the tree is unrolled across byte
 *          boundaries into (node, phase) states with per-chunk emit
 *          tables in local memory (the wide-LUT realization the paper
 *          attributes to hardwired decoders [39]).  Highest rate,
 *          exploding code size.
 *  - SsT   per-transition symbol size; realized as depth-k dispatch with
 *          put-back of excess bits on each transition.  Fast, but each
 *          transition carries a size field (footprint modeled as +1 word
 *          per state, per the paper's "increased encoding bits").
 *  - SsReg symbol size in a register; layer-by-layer dispatch with
 *          explicit Setss actions on internal moves (runtime overhead,
 *          small code).
 *  - SsRef symbol-size register + refill transitions: widest dispatch
 *          per node with hardware put-back (the UDP design point).
 *
 * Encoding: scalar-register-free design - a single 8-bit dispatch state
 * whose 256 arcs emit the (code,length) pair via Outbits.
 */
#pragma once

#include "baselines/huffman.hpp"
#include "core/program.hpp"
#include "runtime/kernel_spec.hpp"

namespace udp::kernels {

/// The four Section-3.2.2 design points.
enum class VarSymDesign { SsF, SsT, SsReg, SsRef };

/// Printable name ("SsF", ...).
std::string_view var_sym_name(VarSymDesign d);

/// A built decode kernel: the program plus its memory plan.
struct HuffmanDecodeKernel {
    Program program;
    /// SsF only: emit-LUT bytes to stage at the lane window base.
    Bytes lut;
    /// Register initialization: r11 = LUT base (SsF).
    std::vector<std::pair<unsigned, Word>> init_regs;
    /// Total code footprint in bytes (dispatch + actions + LUT), the
    /// quantity that limits lane parallelism in Fig 8b.
    std::size_t code_bytes = 0;
};

/**
 * Build a decode kernel for `code` under the given design.
 * Throws UdpError (layout failure) when the design does not fit the
 * allowed windows - the SsF failure mode of Fig 8.
 */
HuffmanDecodeKernel huffman_decoder(const baselines::HuffmanCode &code,
                                    VarSymDesign design,
                                    unsigned max_windows = 16);

/// Build the encode kernel for `code`.
Program huffman_encoder(const baselines::HuffmanCode &code);

/// Achievable lane parallelism for a kernel footprint: each lane needs
/// ceil(footprint/16KiB) banks of the 64 (Fig 8b's code-size limit).
unsigned achievable_parallelism(std::size_t code_bytes);

/**
 * Runtime descriptions (docs/RUNTIME.md).  The encoder touches no data
 * memory (one bank).  The decoder's window spans the banks its code
 * footprint requires (Fig 8b's parallelism limit falls out of wave
 * packing); the SsF emit LUT is staged at the window base.  Decoder
 * inputs must carry 2 trailing zero pad bytes, as for manual harnesses.
 */
runtime::KernelSpec huffman_encoder_spec(const baselines::HuffmanCode &code);
runtime::KernelSpec huffman_decoder_spec(const baselines::HuffmanCode &code,
                                         VarSymDesign design,
                                         unsigned max_windows = 16);

} // namespace udp::kernels
