/**
 * @file
 * Huffman kernel builders.
 */
#include "huffman.hpp"

#include "assembler/builder.hpp"

#include <algorithm>
#include <map>

namespace udp::kernels {

using baselines::HuffmanCode;
using baselines::HuffTree;

namespace {

/// Walk `nbits` bits of `chunk` (MSB first) from tree node `n`,
/// appending decoded symbols; returns the final node (or -leaf-1 if the
/// walk is impossible, which cannot happen in full canonical trees).
std::int32_t
walk(const HuffTree &t, std::int32_t n, Word chunk, unsigned nbits,
     Bytes *emitted)
{
    for (unsigned i = nbits; i-- > 0;) {
        const unsigned bit = (chunk >> i) & 1;
        const std::int32_t next = t.nodes[n][bit];
        if (next < 0) {
            if (emitted)
                emitted->push_back(static_cast<std::uint8_t>(-next - 1));
            n = 0;
        } else if (next == 0) {
            // Missing child (degenerate single-symbol trees): restart.
            n = 0;
        } else {
            n = next;
        }
    }
    return n;
}

/// Depth of the shallowest leaf under node `n`.
unsigned
min_leaf_depth(const HuffTree &t, std::int32_t n)
{
    unsigned best = 32;
    for (const unsigned bit : {0u, 1u}) {
        const std::int32_t c = t.nodes[n][bit];
        if (c < 0)
            return 1;
        if (c > 0)
            best = std::min(best, 1 + min_leaf_depth(t, c));
    }
    return best;
}

/// Depth of the deepest leaf under node `n`.
unsigned
max_leaf_depth(const HuffTree &t, std::int32_t n)
{
    unsigned best = 0;
    for (const unsigned bit : {0u, 1u}) {
        const std::int32_t c = t.nodes[n][bit];
        if (c < 0)
            best = std::max(best, 1u);
        else if (c > 0)
            best = std::max(best, 1 + max_leaf_depth(t, c));
    }
    return best;
}

/// Outcome of walking exactly `width` bits from a node without crossing
/// a symbol boundary more than once (used by SsRef/SsReg/SsT builders,
/// which dispatch within one code).
struct CodeStep {
    bool is_leaf = false;
    std::uint8_t symbol = 0;
    unsigned used_bits = 0;     ///< bits consumed by the code
    std::int32_t node = 0;      ///< internal node when !is_leaf
};

CodeStep
step_code(const HuffTree &t, std::int32_t n, Word value, unsigned width)
{
    CodeStep out;
    for (unsigned i = width; i-- > 0;) {
        const std::int32_t next = t.nodes[n][(value >> i) & 1];
        ++out.used_bits;
        if (next < 0) {
            out.is_leaf = true;
            out.symbol = static_cast<std::uint8_t>(-next - 1);
            return out;
        }
        n = next;
    }
    out.node = n;
    return out;
}

} // namespace

std::string_view
var_sym_name(VarSymDesign d)
{
    switch (d) {
      case VarSymDesign::SsF: return "SsF";
      case VarSymDesign::SsT: return "SsT";
      case VarSymDesign::SsReg: return "SsReg";
      case VarSymDesign::SsRef: return "SsRef";
    }
    return "<bad>";
}

unsigned
achievable_parallelism(std::size_t code_bytes)
{
    const unsigned banks_needed = static_cast<unsigned>(
        std::max<std::size_t>(1, ceil_div(code_bytes, kBankBytes)));
    if (banks_needed > kNumBanks)
        return 0;
    return kNumBanks / banks_needed;
}

// ---------------------------------------------------------------------------
// SsF: fixed 8-bit dispatch over (node) states + Emitlut tables.
// ---------------------------------------------------------------------------

static HuffmanDecodeKernel
build_ssf(const HuffmanCode &code, unsigned max_windows)
{
    const HuffTree tree = baselines::build_tree(code);
    const std::size_t nodes = tree.nodes.size();
    if (nodes > 255)
        throw UdpError("SsF: too many tree nodes for Emitlut indices");

    ProgramBuilder b;
    std::vector<StateId> ids(nodes);
    for (std::size_t n = 0; n < nodes; ++n)
        ids[n] = b.add_state();

    HuffmanDecodeKernel k;
    k.lut.assign(nodes * 256 * 16, 0);

    for (std::size_t n = 0; n < nodes; ++n) {
        const BlockId blk = b.add_block({act_imm(
            Opcode::Emitlut, 0, 11, static_cast<std::int32_t>(n), true)});
        for (Word chunk = 0; chunk < 256; ++chunk) {
            Bytes emitted;
            const std::int32_t end =
                walk(tree, static_cast<std::int32_t>(n), chunk, 8,
                     &emitted);
            if (emitted.size() > 8)
                throw UdpError("SsF: more than 8 symbols per chunk");
            std::uint8_t *entry =
                k.lut.data() + (n * 256 + chunk) * 16;
            entry[0] = static_cast<std::uint8_t>(emitted.size());
            std::copy(emitted.begin(), emitted.end(), entry + 1);
            b.on_symbol(ids[n], chunk, ids[end < 0 ? 0 : end], blk);
        }
    }
    b.set_entry(ids[0]);
    b.set_initial_symbol_bits(8);

    LayoutOptions opts;
    opts.max_windows = max_windows;
    k.program = b.build(opts);
    k.init_regs.emplace_back(11u, Word{0}); // LUT at window offset 0
    k.code_bytes = k.program.layout.code_bytes() + k.lut.size();
    return k;
}

// ---------------------------------------------------------------------------
// SsRef / SsT: widest-useful dispatch per node, refill of excess bits.
// SsReg: shallowest-leaf dispatch per node with Setss on internal arcs.
// ---------------------------------------------------------------------------

static HuffmanDecodeKernel
build_refill_family(const HuffmanCode &code, VarSymDesign design,
                    unsigned max_windows)
{
    const HuffTree tree = baselines::build_tree(code);
    const bool layered = design == VarSymDesign::SsReg;

    ProgramBuilder b;

    // Dispatch states are created lazily per reachable tree node.
    std::map<std::int32_t, StateId> node_state;
    std::map<std::int32_t, unsigned> node_width;
    // Emit states (refilled leaves), one per symbol.
    std::map<unsigned, StateId> emit_state;
    // Shared [Setss w] blocks (SsReg) and [Outi sym (+Setss)] blocks.
    std::map<unsigned, BlockId> setss_block;

    const unsigned root_width =
        layered ? min_leaf_depth(tree, 0)
                : std::min(8u, max_leaf_depth(tree, 0));

    std::vector<std::int32_t> work{0};
    node_state[0] = b.add_state();
    node_width[0] = root_width;

    auto get_node_state = [&](std::int32_t n, unsigned parent_width)
        -> StateId {
        (void)parent_width;
        auto it = node_state.find(n);
        if (it != node_state.end())
            return it->second;
        const StateId s = b.add_state();
        node_state[n] = s;
        // SsRef/SsT keep one symbol size for the whole program (the
        // symbol-size register is set once); SsReg re-tunes it per node
        // to the shallowest leaf below.
        node_width[n] = layered ? min_leaf_depth(tree, n) : root_width;
        work.push_back(n);
        return s;
    };

    auto emit_block = [&](unsigned sym, unsigned next_width) -> BlockId {
        std::vector<Action> acts{
            act_imm(Opcode::Outi, 0, 0, static_cast<std::int32_t>(sym))};
        if (layered && next_width != 0)
            acts.push_back(act_imm(Opcode::Setss, 0, 0,
                                   static_cast<std::int32_t>(next_width)));
        return b.add_block(std::move(acts));
    };

    auto get_emit_state = [&](unsigned sym) -> StateId {
        auto it = emit_state.find(sym);
        if (it != emit_state.end())
            return it->second;
        // Register-source state with a common arc: consumes nothing,
        // emits the byte, returns to the root.
        const StateId s = b.add_state(/*reg_source=*/true);
        emit_state[sym] = s;
        b.on_any(s, node_state[0], emit_block(sym, 0));
        return s;
    };

    while (!work.empty()) {
        const std::int32_t n = work.back();
        work.pop_back();
        const StateId s = node_state[n];
        const unsigned w = node_width[n];

        for (Word v = 0; v < (Word{1} << w); ++v) {
            const CodeStep st = step_code(tree, n, v, w);
            if (!st.is_leaf) {
                const StateId t = get_node_state(st.node, w);
                BlockId blk = kNoBlock;
                // Retune the symbol-size register when the target state
                // dispatches a different width than this one.
                if (layered && node_width[st.node] != w) {
                    auto it = setss_block.find(node_width[st.node]);
                    if (it == setss_block.end()) {
                        it = setss_block
                                 .emplace(node_width[st.node],
                                          b.add_block({act_imm(
                                              Opcode::Setss, 0, 0,
                                              static_cast<std::int32_t>(
                                                  node_width[st.node]),
                                              true)}))
                                 .first;
                    }
                    blk = it->second;
                }
                b.on_symbol(s, v, t, blk);
                continue;
            }
            // Leaf after st.used_bits of the w dispatched.
            const unsigned excess = w - st.used_bits;
            if (excess == 0) {
                // Exact fit: emit inline, return to root; in layered
                // mode restore the root width when it differs.
                const unsigned restore =
                    (layered && w != node_width[0]) ? node_width[0] : 0;
                b.on_symbol(s, v, node_state[0],
                            emit_block(st.symbol, restore));
            } else {
                // Refill the excess and emit via the shared emit state.
                b.on_symbol_refill(s, v, get_emit_state(st.symbol),
                                   excess);
            }
        }
    }

    b.set_entry(node_state[0]);
    b.set_initial_symbol_bits(root_width);

    LayoutOptions opts;
    opts.max_windows = max_windows;

    HuffmanDecodeKernel k;
    k.program = b.build(opts);
    k.code_bytes = k.program.layout.code_bytes();
    if (design == VarSymDesign::SsT) {
        // Per-transition symbol-size fields widen every transition word
        // (32 -> 40 bits): the paper's "increased encoding bits".
        k.code_bytes = k.program.layout.dispatch_words * 5 +
                       k.program.layout.action_words * 4;
    }
    return k;
}

HuffmanDecodeKernel
huffman_decoder(const HuffmanCode &code, VarSymDesign design,
                unsigned max_windows)
{
    switch (design) {
      case VarSymDesign::SsF:
        return build_ssf(code, max_windows);
      case VarSymDesign::SsT:
      case VarSymDesign::SsReg:
      case VarSymDesign::SsRef:
        return build_refill_family(code, design, max_windows);
    }
    throw UdpError("huffman_decoder: bad design");
}

Program
huffman_encoder(const HuffmanCode &code)
{
    ProgramBuilder b;
    const StateId s = b.add_state();
    for (int sym = 0; sym < 256; ++sym) {
        const unsigned len = code.length[sym];
        if (!len)
            continue;
        // Movi sign-extends; Outbits uses only the low `len` bits.
        const auto pattern = static_cast<std::int32_t>(
            static_cast<std::int16_t>(code.code[sym]));
        const BlockId blk = b.add_block({
            act_imm(Opcode::Movi, 1, 0, pattern),
            act_imm(Opcode::Outbits, 0, 1,
                    static_cast<std::int32_t>(len), true),
        });
        b.on_symbol(s, static_cast<Word>(sym), s, blk);
    }
    b.set_entry(s);
    b.set_initial_symbol_bits(8);
    return b.build();
}

runtime::KernelSpec
huffman_encoder_spec(const HuffmanCode &code)
{
    runtime::KernelSpec spec;
    spec.name = "huffman-encode";
    spec.program = std::make_shared<const Program>(huffman_encoder(code));
    return spec;
}

runtime::KernelSpec
huffman_decoder_spec(const HuffmanCode &code, VarSymDesign design,
                     unsigned max_windows)
{
    auto kernel = std::make_shared<HuffmanDecodeKernel>(
        huffman_decoder(code, design, max_windows));
    runtime::KernelSpec spec;
    spec.name = std::string("huffman-decode-") +
                std::string(var_sym_name(design));
    // Alias into the shared kernel so the program and LUT share one
    // lifetime with every job built from this spec.
    spec.program = std::shared_ptr<const Program>(kernel, &kernel->program);
    spec.window_bytes =
        std::max<std::size_t>(1, ceil_div(kernel->code_bytes, kBankBytes)) *
        kBankBytes;
    spec.init_regs = kernel->init_regs;
    spec.prepare = [kernel](runtime::JobPlan &p) {
        if (!kernel->lut.empty())
            p.stages.push_back({0, kernel->lut});
    };
    return spec;
}

} // namespace udp::kernels
