/**
 * @file
 * UDP CSV-parsing kernel (paper Section 5.1, Figure 13).
 *
 * Implements the libcsv parsing FSM with multi-way dispatch (one 8-bit
 * dispatch per input byte; majority arcs cover the "regular character"
 * bulk), and uses the loop-copy action at field boundaries to copy the
 * field span into the output region of the lane's memory window - the
 * paper's "loop-copy action for efficient field copy".
 *
 * Memory plan (per lane window, restricted addressing):
 *   [0, input_size)        staged input bytes
 *   [out_base, ...)        extracted fields, each terminated by '\n',
 *                          rows separated by an extra 0x1E byte
 * Registers: r4 = field start, r5 = output cursor, r7 = field count,
 * r8 = row count, r10 = input base (0), r6 = scratch length.
 *
 * Quoted fields are copied as their raw inner span ("" escapes are kept
 * verbatim; unescaping would be a per-byte action chain, which the
 * paper's rate figures exclude as well).
 */
#pragma once

#include "core/machine.hpp"
#include "core/program.hpp"
#include "runtime/kernel_spec.hpp"

namespace udp::kernels {

/// Output area offset within the lane window.  The kernel uses a
/// two-bank (32 KiB) window per lane - input in the first bank, field
/// output in the second - trading lane parallelism for memory exactly as
/// the paper's flexible addressing allows (Section 3.2.4, Section 5.2).
inline constexpr ByteAddr kCsvOutBase = 16 * 1024;
inline constexpr std::size_t kCsvWindowBytes = 32 * 1024;

/// Build the CSV parsing program.
Program csv_parser_program();

/// Result of running the kernel on one buffer.
struct CsvKernelResult {
    std::uint64_t fields = 0;
    std::uint64_t rows = 0;
    Bytes field_stream;   ///< '\n'-terminated fields, 0x1E row marks
    LaneStats stats;
};

/**
 * Runtime description of the kernel (docs/RUNTIME.md): two-bank window,
 * input staged at offset 0, fields extracted from [kCsvOutBase, rOut).
 * One chunk of CSV text (split on row boundaries) per job.
 */
runtime::KernelSpec csv_kernel_spec();

/// Unpack counters and the field stream from a runtime JobResult
/// (throws UdpError when the parser rejected the input).
CsvKernelResult decode_csv_result(const runtime::JobResult &r);

/**
 * Convenience single-lane harness: stages `data` into the lane window,
 * runs, and unpacks counters (used by tests and benches).
 */
CsvKernelResult run_csv_kernel(Machine &m, unsigned lane, BytesView data,
                               ByteAddr window_base);

} // namespace udp::kernels
