/**
 * @file
 * UDP pattern-matching kernel front-end (paper Section 5.3, Figure 16).
 *
 * "The collection of patterns are partitioned across UDP lanes" - this
 * wrapper splits a NIDS pattern set into per-lane groups, compiles each
 * group with the chosen finite-automata model (aDFA for string-matching
 * sets, NFA for complex regex sets, plain DFA as reference), and reports
 * aggregate program footprints.
 */
#pragma once

#include "automata/compile.hpp"
#include "core/program.hpp"
#include "runtime/kernel_spec.hpp"

#include <string>
#include <vector>

namespace udp::kernels {

/// FA models of the paper's evaluation.
enum class FaModel { Dfa, Adfa, Nfa };

std::string_view fa_model_name(FaModel m);

/// One compiled lane group.
struct PatternGroup {
    Program program;
    std::vector<std::string> patterns; ///< patterns in this group
    bool nfa_mode = false;             ///< run with Lane::run_nfa
};

/**
 * Partition `patterns` into `groups` round-robin and compile each.
 *
 * @throws UdpError when a group's automaton does not fit a lane window.
 */
std::vector<PatternGroup> pattern_groups(
    const std::vector<std::string> &patterns, FaModel model,
    unsigned groups);

/**
 * Runtime descriptions (docs/RUNTIME.md): one spec per compiled lane
 * group, `nfa_mode` set per the FA model.  Every group must scan the
 * same stream, so a full-set scan is one job per group over one input
 * chunk; match ids arrive as AcceptEvents in the JobResult.
 */
std::vector<runtime::KernelSpec> pattern_group_specs(
    const std::vector<std::string> &patterns, FaModel model,
    unsigned groups);

/// Software match count for one group (oracle for tests/benches).
std::uint64_t software_matches(const std::vector<std::string> &patterns,
                               BytesView input);

} // namespace udp::kernels
