/**
 * @file
 * Snappy kernel builders.
 */
#include "snappy.hpp"

#include "assembler/builder.hpp"
#include "runtime/executor.hpp"

namespace udp::kernels {

namespace {

// Register plan (both kernels).
// r1 cur 4 bytes | r2 hash slot | r3 candidate | r4 lit start / copy src
// r5 out cursor  | r6 length    | r7 offset    | r8 scan pos
// r9, r11, r12 scratch | r10 scan limit | r14 input size | r0 flag.

/// Advance the stream to byte position (reg[a] + reg[b]) via r9.
std::vector<Action>
seek_to_sum(unsigned a, unsigned b)
{
    return {
        act_reg(Opcode::Add, 9, a, b),
        act_imm(Opcode::Shli, 9, 9, 3),
        act_imm(Opcode::Setstream, 0, 9, 0),
    };
}

std::vector<Action>
cat(std::vector<Action> x, const std::vector<Action> &y)
{
    x.insert(x.end(), y.begin(), y.end());
    return x;
}

} // namespace

Program
snappy_decompress_program()
{
    ProgramBuilder b;
    const StateId tag = b.add_state();

    // Shared literal tail: r6 = length; copy from the stream position to
    // the output cursor, then skip the stream past the literal.
    const std::vector<Action> lit_tail = cat(
        {
            act_reg(Opcode::Mov, 4, 0, kRegStreamIdx), // src = input pos
            act_reg(Opcode::Loopcpy, 6, 5, 4),
            act_reg(Opcode::Add, 5, 5, 6),
        },
        seek_to_sum(4, 6));

    // Short literal: len = (tag >> 2) + 1.
    const BlockId short_lit = b.add_block(cat(
        {
            act_imm(Opcode::Lastsym, 6, 0, 0),
            act_imm(Opcode::Shri, 6, 6, 2),
            act_imm(Opcode::Addi, 6, 6, 1),
        },
        lit_tail));

    // One-byte length literal (tag 60): len = next byte + 1.
    const BlockId lit61 = b.add_block(cat(
        {
            act_imm(Opcode::Read, 6, 0, 8),
            act_imm(Opcode::Addi, 6, 6, 1),
        },
        lit_tail));

    // Two-byte length literal (tag 61): len = LE16 + 1.
    const BlockId lit62 = b.add_block(cat(
        {
            act_imm(Opcode::Read, 6, 0, 8),
            act_imm(Opcode::Read, 7, 0, 8),
            act_imm(Opcode::Shli, 7, 7, 8),
            act_reg(Opcode::Or, 6, 6, 7),
            act_imm(Opcode::Addi, 6, 6, 1),
        },
        lit_tail));

    // Copy with 1-byte offset: len = ((tag>>2)&7)+4, off = (tag>>5)<<8|b.
    const BlockId copy1 = b.add_block({
        act_imm(Opcode::Lastsym, 6, 0, 0),
        act_imm(Opcode::Shri, 6, 6, 2),
        act_imm(Opcode::Andi, 6, 6, 7),
        act_imm(Opcode::Addi, 6, 6, 4),
        act_imm(Opcode::Lastsym, 7, 0, 0),
        act_imm(Opcode::Shri, 7, 7, 5),
        act_imm(Opcode::Shli, 7, 7, 8),
        act_imm(Opcode::Read, 8, 0, 8),
        act_reg(Opcode::Add, 7, 7, 8),
        act_reg(Opcode::Sub, 4, 5, 7), // src = out - offset
        act_reg(Opcode::Loopcpy, 6, 5, 4),
        act_reg(Opcode::Add, 5, 5, 6, true),
    });

    // Copy with 2-byte offset: len = (tag>>2)+1, off = LE16.
    const BlockId copy2 = b.add_block({
        act_imm(Opcode::Lastsym, 6, 0, 0),
        act_imm(Opcode::Shri, 6, 6, 2),
        act_imm(Opcode::Addi, 6, 6, 1),
        act_imm(Opcode::Read, 8, 0, 8),
        act_imm(Opcode::Read, 7, 0, 8),
        act_imm(Opcode::Shli, 7, 7, 8),
        act_reg(Opcode::Add, 7, 7, 8),
        act_reg(Opcode::Sub, 4, 5, 7),
        act_reg(Opcode::Loopcpy, 6, 5, 4),
        act_reg(Opcode::Add, 5, 5, 6, true),
    });

    // Unsupported forms (4-byte literals/copies never appear in <=64 KiB
    // blocks).
    const BlockId bad = b.add_block({act_imm(Opcode::Fail, 0, 0, 0, true)});

    for (Word t = 0; t < 256; ++t) {
        BlockId blk;
        switch (t & 3) {
          case 0:
            blk = (t >> 2) < 60 ? short_lit
                  : (t >> 2) == 60 ? lit61
                  : (t >> 2) == 61 ? lit62
                                   : bad;
            break;
          case 1: blk = copy1; break;
          case 2: blk = copy2; break;
          default: blk = bad; break;
        }
        b.on_symbol(tag, t, tag, blk);
    }

    b.set_entry(tag);
    b.set_initial_symbol_bits(8);
    return b.build();
}

Program
snappy_compress_program()
{
    ProgramBuilder b;

    const StateId scan = b.add_state();           // stream, common
    const StateId sw = b.add_state(true);         // flagged 0/1/2
    const StateId match = b.add_state(true);      // literal-pending check
    const StateId wl = b.add_state(true);         // flagged 0/1
    const StateId lit = b.add_state(true);        // emit pending literal
    const StateId copy = b.add_state(true);       // extend + start copies
    const StateId cl = b.add_state(true);         // flagged: len > 64?
    const StateId c64 = b.add_state(true);        // emit a 64-byte copy
    const StateId cfin = b.add_state(true);       // emit the last copy
    const StateId fin = b.add_state(true);        // tail-literal check
    const StateId fw = b.add_state(true);         // flagged 0/1
    const StateId flit = b.add_state(true);       // emit tail + halt
    const StateId fhalt = b.add_state(true);      // halt

    // --- scan: one consumed byte per dispatch ---------------------------
    b.on_any(scan, sw, b.add_block({
        act_reg(Opcode::Mov, 8, 0, kRegStreamIdx),
        act_imm(Opcode::Subi, 8, 8, 1),            // pos
        act_imm(Opcode::Ldw, 1, 8, 0),             // 4 bytes at pos
        act_imm(Opcode::Hash, 2, 1, 10),           // table index
        act_imm(Opcode::Shli, 2, 2, 2),
        act_imm(Opcode::Addi, 2, 2,
                static_cast<std::int32_t>(kSnapHashBase)),
        act_imm(Opcode::Ldw, 3, 2, 0),             // candidate pos
        act_imm(Opcode::Stw, 8, 2, 0),             // table[h] = pos
        act_imm(Opcode::Ldw, 6, 3, 0),             // candidate bytes
        act_reg(Opcode::Cmpeq, 7, 6, 1),           // content match
        act_reg(Opcode::Cmplt, 9, 3, 8),           // candidate < pos
        act_reg(Opcode::And, 0, 7, 9),             // r0 = match
        act_reg(Opcode::Cmplt, 11, 10, 8),         // pos > limit ?
        act_imm(Opcode::Shli, 11, 11, 1),
        act_reg(Opcode::Max, 0, 0, 11, true),      // finish overrides
    }));
    b.on_symbol(sw, 0, scan);
    b.on_symbol(sw, 1, match);
    b.on_symbol(sw, 2, fin);

    // --- match path ------------------------------------------------------
    b.on_any(match, wl, b.add_block({
        act_reg(Opcode::Sub, 6, 8, 4),             // pending literal len
        act_imm(Opcode::Cmpeqi, 0, 6, 0),
        act_imm(Opcode::Xori, 0, 0, 1, true),      // r0 = (len != 0)
    }));
    b.on_symbol(wl, 0, copy);
    b.on_symbol(wl, 1, lit);

    // Emit the pending literal with the 2-byte length form.
    b.on_any(lit, copy, b.add_block({
        act_imm(Opcode::Outi, 0, 0, 61 << 2),
        act_imm(Opcode::Subi, 7, 6, 1),
        act_imm(Opcode::Outb, 0, 7, 0),
        act_imm(Opcode::Shri, 7, 7, 8),
        act_imm(Opcode::Outb, 0, 7, 0),
        act_reg(Opcode::Loopcpyo, 6, 0, 4, true),  // bytes from input
    }));

    // Extend the match, reposition the stream, prepare the copy loop.
    b.on_any(copy, cl, b.add_block({
        act_reg(Opcode::Sub, 12, 14, 8),
        act_imm(Opcode::Subi, 12, 12, 4),          // extension bound
        act_imm(Opcode::Addi, 9, 3, 4),
        act_imm(Opcode::Addi, 11, 8, 4),
        act_reg(Opcode::Loopcmp, 12, 9, 11),       // extra matched
        act_imm(Opcode::Addi, 12, 12, 4),          // total length
        act_reg(Opcode::Sub, 7, 8, 3),             // offset
        act_reg(Opcode::Add, 9, 8, 12),            // new scan position
        act_reg(Opcode::Mov, 4, 0, 9),             // lit start = new pos
        act_imm(Opcode::Shli, 9, 9, 3),
        act_imm(Opcode::Setstream, 0, 9, 0),
        act_imm(Opcode::Movi, 9, 0, 64),
        act_reg(Opcode::Cmplt, 0, 9, 12, true),    // len > 64 ?
    }));
    b.on_symbol(cl, 0, cfin);
    b.on_symbol(cl, 1, c64);

    b.on_any(c64, cl, b.add_block({
        act_imm(Opcode::Outi, 0, 0, 2 | ((64 - 1) << 2)),
        act_imm(Opcode::Outb, 0, 7, 0),
        act_imm(Opcode::Shri, 11, 7, 8),
        act_imm(Opcode::Outb, 0, 11, 0),
        act_imm(Opcode::Subi, 12, 12, 64),
        act_imm(Opcode::Movi, 9, 0, 64),
        act_reg(Opcode::Cmplt, 0, 9, 12, true),
    }));

    b.on_any(cfin, scan, b.add_block({
        act_imm(Opcode::Subi, 9, 12, 1),
        act_imm(Opcode::Shli, 9, 9, 2),
        act_imm(Opcode::Ori, 9, 9, 2),
        act_imm(Opcode::Outb, 0, 9, 0),
        act_imm(Opcode::Outb, 0, 7, 0),
        act_imm(Opcode::Shri, 11, 7, 8),
        act_imm(Opcode::Outb, 0, 11, 0, true),
    }));

    // --- finish path ------------------------------------------------------
    b.on_any(fin, fw, b.add_block({
        act_reg(Opcode::Sub, 6, 14, 4),            // tail literal length
        act_imm(Opcode::Cmpeqi, 0, 6, 0),
        act_imm(Opcode::Xori, 0, 0, 1, true),
    }));
    b.on_symbol(fw, 0, fhalt);
    b.on_symbol(fw, 1, flit);
    b.on_any(flit, fhalt, b.add_block({
        act_imm(Opcode::Outi, 0, 0, 61 << 2),
        act_imm(Opcode::Subi, 7, 6, 1),
        act_imm(Opcode::Outb, 0, 7, 0),
        act_imm(Opcode::Shri, 7, 7, 8),
        act_imm(Opcode::Outb, 0, 7, 0),
        act_reg(Opcode::Loopcpyo, 6, 0, 4, true),
    }));
    b.on_any(fhalt, fhalt,
             b.add_block({act_imm(Opcode::Halt, 0, 0, 0, true)}));

    b.set_entry(scan);
    b.set_initial_symbol_bits(8);
    return b.build();
}

// ---------------------------------------------------------------------------
// Harnesses.
// ---------------------------------------------------------------------------

runtime::KernelSpec
snappy_decompress_spec()
{
    static const auto prog =
        std::make_shared<const Program>(snappy_decompress_program());
    runtime::KernelSpec spec;
    spec.name = "snappy-decompress";
    spec.program = prog;
    spec.window_bytes = 2 * kBankBytes;
    spec.max_input_bytes = kSnapOutBase;
    spec.init_regs = {{5, kSnapOutBase}}; // output cursor
    spec.prepare = [](runtime::JobPlan &p) {
        p.stages.push_back({0, p.input});
        p.extracts.push_back({kSnapOutBase, 0, 5});
    };
    return spec;
}

runtime::KernelSpec
snappy_compress_spec()
{
    static const auto prog =
        std::make_shared<const Program>(snappy_compress_program());
    runtime::KernelSpec spec;
    spec.name = "snappy-compress";
    spec.program = prog;
    spec.window_bytes = 2 * kBankBytes;
    spec.max_input_bytes = kSnapMaxInput;
    spec.prepare = [](runtime::JobPlan &p) {
        if (p.input.size() < 8)
            throw UdpError("snappy-compress: input too small");
        p.stages.push_back({0, p.input});
        p.stages.push_back(
            {kSnapHashBase, Bytes(4096, 0)}); // 1024-entry hash table
        p.init_regs.emplace_back(
            10, static_cast<Word>(p.input.size() - 4)); // scan limit
        p.init_regs.emplace_back(14, static_cast<Word>(p.input.size()));
    };
    return spec;
}

SnapKernelResult
decode_snappy_decompress_result(const runtime::JobResult &r)
{
    if (r.status == LaneStatus::Reject)
        throw UdpError("snappy-decompress: bad element stream");
    runtime::require_done(r, "snappy-decompress");
    SnapKernelResult res;
    res.stats = r.stats;
    res.data = r.extracts.at(0);
    return res;
}

SnapKernelResult
decode_snappy_compress_result(const runtime::JobResult &r)
{
    if (r.status == LaneStatus::Reject)
        throw UdpError("snappy-compress: kernel rejected");
    runtime::require_done(r, "snappy-compress");
    SnapKernelResult res;
    res.stats = r.stats;
    // Prepend the varint header for format compatibility.  r14 holds
    // the raw input size (initialized by the spec, read-only in the
    // kernel).
    std::uint32_t v = r.regs[14];
    while (v >= 0x80) {
        res.data.push_back(static_cast<std::uint8_t>(v | 0x80));
        v >>= 7;
    }
    res.data.push_back(static_cast<std::uint8_t>(v));
    res.data.insert(res.data.end(), r.output.begin(), r.output.end());
    return res;
}

SnapKernelResult
run_snappy_decompress(Machine &m, unsigned lane_idx, const Program &prog,
                      BytesView block, ByteAddr window_base)
{
    runtime::KernelSpec spec = snappy_decompress_spec();
    spec.program = runtime::borrow_program(prog);
    // Caller-owned block outlives the run: borrow, don't copy.
    const runtime::JobPlan job =
        spec.make_job(runtime::ArenaSlice::borrow(block));
    return decode_snappy_decompress_result(
        runtime::run_job_on(m, lane_idx, window_base, job));
}

SnapKernelResult
run_snappy_compress(Machine &m, unsigned lane_idx, const Program &prog,
                    BytesView input, ByteAddr window_base)
{
    runtime::KernelSpec spec = snappy_compress_spec();
    spec.program = runtime::borrow_program(prog);
    // Caller-owned input outlives the run: borrow, don't copy.
    const runtime::JobPlan job =
        spec.make_job(runtime::ArenaSlice::borrow(input));
    return decode_snappy_compress_result(
        runtime::run_job_on(m, lane_idx, window_base, job));
}

} // namespace udp::kernels
