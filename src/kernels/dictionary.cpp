/**
 * @file
 * Dictionary kernel builders: compiled byte trie + flagged-dispatch RLE.
 */
#include "dictionary.hpp"

#include "assembler/builder.hpp"
#include "runtime/executor.hpp"

#include <map>

namespace udp::kernels {

namespace {

/// Build the value trie; returns (root, map prefix-node -> StateId).
/// Nodes are created on demand; `leaf_arc` is invoked for each complete
/// value to attach its '\n' transition.
struct TrieBuilder {
    ProgramBuilder &b;
    StateId root;
    std::map<std::string, StateId> nodes;

    explicit TrieBuilder(ProgramBuilder &builder) : b(builder) {
        root = b.add_state();
        nodes.emplace("", root);
    }

    StateId node(const std::string &prefix) {
        auto it = nodes.find(prefix);
        if (it != nodes.end())
            return it->second;
        const StateId parent = node(prefix.substr(0, prefix.size() - 1));
        const StateId s = b.add_state();
        nodes.emplace(prefix, s);
        b.on_symbol(parent, static_cast<std::uint8_t>(prefix.back()), s);
        return s;
    }
};

} // namespace

Bytes
dict_input(const std::vector<std::string> &rows)
{
    Bytes out = baselines::column_bytes(rows);
    out.push_back(0x00); // end-of-stream sentinel flushes the last run
    return out;
}

Program
dictionary_program(const baselines::Dictionary &dict)
{
    ProgramBuilder b;
    TrieBuilder trie(b);
    for (std::uint32_t id = 0; id < dict.values.size(); ++id) {
        const StateId leaf = trie.node(dict.values[id]);
        // '\n' completes the value: emit the id (2 actions).
        const BlockId blk = b.add_block({
            act_imm(Opcode::Movi, 1, 0,
                    static_cast<std::int32_t>(
                        static_cast<std::int16_t>(id))),
            act_imm(Opcode::Outw, 0, 1, 0, true),
        });
        b.on_symbol(leaf, '\n', trie.root, blk);
    }
    // Sentinel ends the stream.
    const StateId done = b.add_state(true);
    b.on_any(done, done, b.add_block({act_imm(Opcode::Halt, 0, 0, 0, true)}));
    b.on_symbol(trie.root, 0x00, done);
    b.set_entry(trie.root);
    b.set_initial_symbol_bits(8);
    return b.build();
}

Program
dictionary_rle_program(const baselines::Dictionary &dict)
{
    // Registers: r1 = current id, r2 = previous id, r3 = run length.
    ProgramBuilder b;
    TrieBuilder trie(b);

    // Flagged switch on r0 = (current == previous).
    const StateId sw = b.add_state(/*reg_source=*/true);
    const StateId inc = b.add_state(/*reg_source=*/true);
    const StateId flush = b.add_state(/*reg_source=*/true);
    const StateId done = b.add_state(/*reg_source=*/true);

    b.on_symbol(sw, 1, inc);
    b.on_symbol(sw, 0, flush);
    b.on_any(inc, trie.root,
             b.add_block({act_imm(Opcode::Addi, 3, 3, 1, true)}));
    b.on_any(flush, trie.root, b.add_block({
                 act_imm(Opcode::Outw, 0, 2, 0),  // previous id
                 act_imm(Opcode::Outw, 0, 3, 0),  // run length
                 act_reg(Opcode::Mov, 2, 0, 1),   // prev = current
                 act_imm(Opcode::Movi, 3, 0, 1, true),
             }));
    b.on_any(done, done, b.add_block({
                 act_imm(Opcode::Outw, 0, 2, 0),
                 act_imm(Opcode::Outw, 0, 3, 0),
                 act_imm(Opcode::Halt, 0, 0, 0, true),
             }));

    for (std::uint32_t id = 0; id < dict.values.size(); ++id) {
        const StateId leaf = trie.node(dict.values[id]);
        // '\n': r1 = id; r0 = (r1 == r2); branch via the flagged state.
        const BlockId blk = b.add_block({
            act_imm(Opcode::Movi, 1, 0,
                    static_cast<std::int32_t>(
                        static_cast<std::int16_t>(id))),
            act_reg(Opcode::Cmpeq, 0, 1, 2, true),
        });
        b.on_symbol(leaf, '\n', sw, blk);
    }
    b.on_symbol(trie.root, 0x00, done);

    b.set_entry(trie.root);
    b.set_initial_symbol_bits(8);
    return b.build();
}

namespace {

/// Register initialization of the RLE variant (sentinel id, empty run).
std::vector<std::pair<unsigned, Word>>
dict_init_regs(bool rle)
{
    if (!rle)
        return {};
    return {{2, 0xFFFFFFFFu}, {3, 0}};
}

} // namespace

runtime::KernelSpec
dictionary_kernel_spec(const baselines::Dictionary &dict, bool rle)
{
    runtime::KernelSpec spec;
    spec.name = rle ? "dictionary-rle" : "dictionary";
    spec.program = std::make_shared<const Program>(
        rle ? dictionary_rle_program(dict) : dictionary_program(dict));
    spec.init_regs = dict_init_regs(rle);
    return spec;
}

DictKernelResult
decode_dict_result(const runtime::JobResult &r, bool rle)
{
    if (r.status == LaneStatus::Reject)
        throw UdpError("dictionary kernel: value not in dictionary");
    runtime::require_done(r, "dictionary kernel");
    DictKernelResult res;
    res.stats = r.stats;
    const Bytes &out = r.output;
    auto u32_at = [&](std::size_t i) {
        return Word{out[i]} | (Word{out[i + 1]} << 8) |
               (Word{out[i + 2]} << 16) | (Word{out[i + 3]} << 24);
    };
    if (rle) {
        for (std::size_t i = 0; i + 8 <= out.size(); i += 8) {
            const Word id = u32_at(i), run = u32_at(i + 4);
            if (run != 0)
                res.runs.emplace_back(id, run);
        }
    } else {
        for (std::size_t i = 0; i + 4 <= out.size(); i += 4)
            res.ids.push_back(u32_at(i));
    }
    return res;
}

DictKernelResult
run_dict_kernel(Machine &m, unsigned lane_idx, const Program &prog,
                BytesView input, bool rle)
{
    runtime::KernelSpec spec;
    spec.name = rle ? "dictionary-rle" : "dictionary";
    spec.program = runtime::borrow_program(prog);
    spec.init_regs = dict_init_regs(rle);
    // Caller-owned column outlives the run: borrow, don't copy.
    const runtime::JobPlan job =
        spec.make_job(runtime::ArenaSlice::borrow(input));
    return decode_dict_result(
        runtime::run_job_on(m, lane_idx, 0, job), rle);
}

} // namespace udp::kernels
