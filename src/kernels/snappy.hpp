/**
 * @file
 * UDP Snappy kernels (paper Sections 5.6, Figures 19/20 and 11a/11b).
 *
 * Both kernels are "block compatible" with the Snappy format (and with
 * `baselines::snappy_*`).
 *
 * Decompression: the tag byte drives one multi-way dispatch; the symbol
 * value parameterizes a handful of *shared* action blocks (via the
 * latched dispatch symbol), which decode lengths/offsets and use
 * loop-copy for literal and match copies - "multi-way dispatch to deal
 * with complex pattern detection ... efficient hash, loop-compare and
 * loop-copy actions".
 *
 * Compression: a scan state consumes one byte per dispatch and computes
 * hash-table candidate + end-of-input conditions into r0; *flagged*
 * (register) dispatch branches among continue / emit-match / finish,
 * with loop-compare extending matches and loop-copy-to-output emitting
 * literals.  Literals always use the 2-byte length form (valid Snappy,
 * marginally less compact).
 *
 * Memory plan (two-bank 32 KiB window per lane):
 *   decompress: input block at 0, output at kSnapOutBase.
 *   compress:   input block at 0, 4 KiB hash table at kSnapHashBase.
 */
#pragma once

#include "core/machine.hpp"
#include "core/program.hpp"
#include "runtime/kernel_spec.hpp"

namespace udp::kernels {

inline constexpr ByteAddr kSnapOutBase = 16 * 1024;
inline constexpr ByteAddr kSnapHashBase = 16 * 1024;
inline constexpr std::size_t kSnapMaxInput = 16 * 1024 - 8;

/// Build the decompressor (expects the varint header already stripped).
Program snappy_decompress_program();

/// Build the compressor (emits the element stream, no varint header).
Program snappy_compress_program();

/// Harness: decompress `block` (no varint) on one lane; returns output.
struct SnapKernelResult {
    Bytes data;
    LaneStats stats;
};
SnapKernelResult run_snappy_decompress(Machine &m, unsigned lane,
                                       const Program &prog,
                                       BytesView block,
                                       ByteAddr window_base);

/// Harness: compress `input` on one lane; returns a full Snappy stream
/// (varint header + elements) decodable by baselines::snappy_decompress.
SnapKernelResult run_snappy_compress(Machine &m, unsigned lane,
                                     const Program &prog, BytesView input,
                                     ByteAddr window_base);

/**
 * Runtime descriptions (docs/RUNTIME.md): two-bank windows; one Snappy
 * block per job.  Decompress expects the varint header already stripped;
 * compress wants 8..kSnapMaxInput raw bytes.
 */
runtime::KernelSpec snappy_decompress_spec();
runtime::KernelSpec snappy_compress_spec();

/// Unpack the decompressed block from a runtime JobResult.
SnapKernelResult decode_snappy_decompress_result(
    const runtime::JobResult &r);

/// Unpack a full Snappy stream (varint header re-attached).
SnapKernelResult decode_snappy_compress_result(const runtime::JobResult &r);

} // namespace udp::kernels
