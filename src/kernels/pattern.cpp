/**
 * @file
 * Pattern kernel front-end implementation.
 */
#include "pattern.hpp"

namespace udp::kernels {

std::string_view
fa_model_name(FaModel m)
{
    switch (m) {
      case FaModel::Dfa: return "DFA";
      case FaModel::Adfa: return "aDFA";
      case FaModel::Nfa: return "NFA";
    }
    return "<bad>";
}

std::vector<PatternGroup>
pattern_groups(const std::vector<std::string> &patterns, FaModel model,
               unsigned groups)
{
    if (groups == 0)
        throw UdpError("pattern_groups: need at least one group");
    std::vector<PatternGroup> out(std::min<std::size_t>(groups,
                                                        patterns.size()));
    for (std::size_t i = 0; i < patterns.size(); ++i)
        out[i % out.size()].patterns.push_back(patterns[i]);

    for (auto &g : out) {
        std::vector<std::unique_ptr<RegexNode>> storage;
        std::vector<const RegexNode *> asts;
        for (const auto &p : g.patterns) {
            storage.push_back(parse_regex(p));
            asts.push_back(storage.back().get());
        }
        const Nfa nfa = build_multi_nfa(asts);
        switch (model) {
          case FaModel::Dfa: {
            const Dfa dfa = minimize(determinize(nfa));
            g.program = compile_dfa(dfa);
            break;
          }
          case FaModel::Adfa: {
            const Dfa dfa = minimize(determinize(nfa));
            g.program = compile_adfa(build_adfa(dfa));
            break;
          }
          case FaModel::Nfa: {
            g.program = compile_nfa(eliminate_epsilon(nfa));
            g.nfa_mode = true;
            break;
          }
        }
    }
    return out;
}

std::uint64_t
software_matches(const std::vector<std::string> &patterns, BytesView input)
{
    std::vector<std::unique_ptr<RegexNode>> storage;
    std::vector<const RegexNode *> asts;
    for (const auto &p : patterns) {
        storage.push_back(parse_regex(p));
        asts.push_back(storage.back().get());
    }
    const Nfa nfa = build_multi_nfa(asts);
    return nfa.count_matches(input);
}

std::vector<runtime::KernelSpec>
pattern_group_specs(const std::vector<std::string> &patterns,
                    FaModel model, unsigned groups)
{
    auto compiled = pattern_groups(patterns, model, groups);
    std::vector<runtime::KernelSpec> specs;
    specs.reserve(compiled.size());
    for (std::size_t g = 0; g < compiled.size(); ++g) {
        runtime::KernelSpec spec;
        spec.name = "pattern/g" + std::to_string(g);
        spec.program = std::make_shared<const Program>(
            std::move(compiled[g].program));
        spec.nfa_mode = compiled[g].nfa_mode;
        specs.push_back(std::move(spec));
    }
    return specs;
}

} // namespace udp::kernels
