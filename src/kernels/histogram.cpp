/**
 * @file
 * Histogram kernel builder: digital-comparison automaton over nibbles.
 */
#include "histogram.hpp"

#include "assembler/builder.hpp"
#include "runtime/executor.hpp"

#include <algorithm>
#include <cstring>
#include <map>

namespace udp::kernels {

std::uint64_t
fp_key(double x)
{
    std::uint64_t bits;
    std::memcpy(&bits, &x, 8);
    if (bits >> 63)
        return ~bits; // negative: reverse order
    return bits | (std::uint64_t{1} << 63);
}

Bytes
pack_fp_stream(const std::vector<double> &values)
{
    Bytes out;
    out.reserve(values.size() * 8);
    for (const double v : values) {
        const std::uint64_t k = fp_key(v);
        for (int i = 7; i >= 0; --i)
            out.push_back(static_cast<std::uint8_t>(k >> (8 * i)));
    }
    return out;
}

Program
histogram_program(const std::vector<double> &edges)
{
    if (edges.size() < 2)
        throw UdpError("histogram_program: need at least 2 edges");
    // Internal dividers e_1..e_{k-1} as nibble strings.
    std::vector<std::uint64_t> keys;
    for (std::size_t i = 1; i + 1 < edges.size(); ++i)
        keys.push_back(fp_key(edges[i]));
    std::sort(keys.begin(), keys.end());

    const auto nibble = [&](std::size_t edge, unsigned d) -> Word {
        return static_cast<Word>((keys[edge] >> (60 - 4 * d)) & 0xF);
    };

    ProgramBuilder b;
    // Accept blocks keyed by (bin, nibbles consumed).
    std::map<std::pair<unsigned, unsigned>, BlockId> accepts;
    auto accept_block = [&](unsigned bin, unsigned used) -> BlockId {
        auto it = accepts.find({bin, used});
        if (it != accepts.end())
            return it->second;
        std::vector<Action> acts{
            act_imm(Opcode::Movi, 1, 0, static_cast<std::int32_t>(bin)),
            act_imm(Opcode::Bininc, 0, 1, 0),
        };
        if (used < 16)
            acts.push_back(act_imm(Opcode::Skip, 0, 0,
                                   static_cast<std::int32_t>(
                                       (16 - used) * 4)));
        const BlockId blk = b.add_block(std::move(acts));
        accepts.emplace(std::make_pair(bin, used), blk);
        return blk;
    };

    // Memoized (depth, straddling interval) states.
    std::map<std::tuple<unsigned, std::size_t, std::size_t>, StateId> memo;
    StateId root = kNoState;

    // Recursive construction with an explicit work list.
    struct Item {
        unsigned d;
        std::size_t lo, hi;
        StateId id;
    };
    std::vector<Item> work;

    auto get_state = [&](unsigned d, std::size_t lo, std::size_t hi)
        -> StateId {
        const auto key = std::make_tuple(d, lo, hi);
        auto it = memo.find(key);
        if (it != memo.end())
            return it->second;
        const StateId s = b.add_state();
        memo.emplace(key, s);
        work.push_back({d, lo, hi, s});
        return s;
    };

    root = get_state(0, 0, keys.size());

    while (!work.empty()) {
        const Item item = work.back();
        work.pop_back();
        for (Word v = 0; v < 16; ++v) {
            // Partition straddling edges by their nibble at depth d.
            std::size_t lt = item.lo;
            while (lt < item.hi && nibble(lt, item.d) < v)
                ++lt;
            std::size_t eq = lt;
            while (eq < item.hi && nibble(eq, item.d) == v)
                ++eq;
            const unsigned used = item.d + 1;
            if (item.d == 15) {
                // Last nibble: remaining equal edges compare <= value.
                b.on_symbol(item.id, v, root, accept_block(
                    static_cast<unsigned>(eq), used));
            } else if (lt == eq) {
                // No straddler left: the bin is decided.
                b.on_symbol(item.id, v, root,
                            accept_block(static_cast<unsigned>(lt), used));
            } else {
                b.on_symbol(item.id, v, get_state(used, lt, eq));
            }
        }
    }

    b.set_entry(root);
    b.set_initial_symbol_bits(4);
    return b.build();
}

namespace {

/// Zero-stage the bin table at offset 0 and extract it after the run.
void
prepare_histogram_job(runtime::JobPlan &p, unsigned bins)
{
    p.stages.push_back({0, Bytes(bins * 4, 0)});
    p.extracts.push_back({0, bins * 4u, -1});
}

} // namespace

runtime::KernelSpec
histogram_kernel_spec(const std::vector<double> &edges)
{
    if (edges.size() < 2)
        throw UdpError("histogram_kernel_spec: need at least one bin");
    runtime::KernelSpec spec;
    spec.name = "histogram";
    spec.program =
        std::make_shared<const Program>(histogram_program(edges));
    const unsigned bins = static_cast<unsigned>(edges.size() - 1);
    spec.prepare = [bins](runtime::JobPlan &p) {
        prepare_histogram_job(p, bins);
    };
    return spec;
}

HistKernelResult
decode_histogram_result(const runtime::JobResult &r)
{
    if (r.status == LaneStatus::Reject)
        throw UdpError("histogram kernel: automaton rejected input");
    runtime::require_done(r, "histogram kernel");
    HistKernelResult res;
    res.stats = r.stats;
    const Bytes &table = r.extracts.at(0);
    res.counts.resize(table.size() / 4);
    for (std::size_t i = 0; i < res.counts.size(); ++i)
        res.counts[i] = Word{table[i * 4]} | (Word{table[i * 4 + 1]} << 8) |
                        (Word{table[i * 4 + 2]} << 16) |
                        (Word{table[i * 4 + 3]} << 24);
    return res;
}

HistKernelResult
run_histogram_kernel(Machine &m, unsigned lane_idx, const Program &prog,
                     BytesView packed, unsigned bins,
                     ByteAddr window_base)
{
    runtime::KernelSpec spec;
    spec.name = "histogram";
    spec.program = runtime::borrow_program(prog);
    spec.prepare = [bins](runtime::JobPlan &p) {
        prepare_histogram_job(p, bins);
    };
    // Caller-owned stream outlives the run: borrow, don't copy.
    const runtime::JobPlan job =
        spec.make_job(runtime::ArenaSlice::borrow(packed));
    return decode_histogram_result(
        runtime::run_job_on(m, lane_idx, window_base, job));
}

} // namespace udp::kernels
