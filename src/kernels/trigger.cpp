/**
 * @file
 * Trigger kernel builder.
 */
#include "trigger.hpp"

#include "assembler/builder.hpp"

namespace udp::kernels {

Program
trigger_program(unsigned width)
{
    if (width == 0 || width > 30)
        throw UdpError("trigger_program: width must be 1..30");

    ProgramBuilder b;
    // States 0..width+1: counting consecutive high samples; width+1 =
    // overlong pulse (waits for a low sample).
    std::vector<StateId> st(width + 2);
    for (auto &s : st)
        s = b.add_state();

    const BlockId hit =
        b.add_block({act_imm(Opcode::Accept, 0, 0, 1, true)});

    for (unsigned s = 0; s < st.size(); ++s) {
        // High samples (MSB set, 128 symbols) ride the majority arc.
        const unsigned next_high = s >= width ? width + 1 : s + 1;
        b.on_majority(st[s], st[next_high]);
        // Low samples take labeled arcs; exact-width pulses trigger.
        const BlockId blk = (s == width) ? hit : kNoBlock;
        for (Word sym = 0; sym < 128; ++sym)
            b.on_symbol(st[s], sym, st[0], blk);
    }

    b.set_entry(st[0]);
    b.set_initial_symbol_bits(8);
    return b.build();
}

Bytes
samples_from_bits(BytesView packed, std::uint8_t high, std::uint8_t low)
{
    Bytes out;
    out.reserve(packed.size() * 8);
    for (const std::uint8_t byte : packed)
        for (int i = 7; i >= 0; --i)
            out.push_back((byte >> i) & 1 ? high : low);
    return out;
}

runtime::KernelSpec
trigger_kernel_spec(unsigned width)
{
    runtime::KernelSpec spec;
    spec.name = "trigger-p" + std::to_string(width);
    spec.program =
        std::make_shared<const Program>(trigger_program(width));
    return spec;
}

} // namespace udp::kernels
