/**
 * @file
 * libcsv-style CSV FSM implementation.
 */
#include "csv.hpp"

namespace udp::baselines {

void
CsvParser::end_field()
{
    on_field_(field_.data(), field_.size());
    ++fields_;
    field_.clear();
}

void
CsvParser::end_row()
{
    on_row_();
    ++rows_;
    row_open_ = false;
}

void
CsvParser::feed(BytesView chunk)
{
    for (const std::uint8_t b : chunk) {
        const char c = static_cast<char>(b);

        // CRLF: the LF after a row-ending CR is silent.
        if (eat_lf_) {
            eat_lf_ = false;
            if (c == '\n')
                continue;
        }
        const bool is_eol = (c == '\n' || c == '\r');

        switch (state_) {
          case State::FieldStart:
            if (c == '"') {
                row_open_ = true;
                state_ = State::Quoted;
            } else if (c == ',') {
                row_open_ = true;
                end_field();
            } else if (is_eol) {
                if (row_open_) { // empty trailing field
                    end_field();
                    end_row();
                }
                eat_lf_ = (c == '\r');
            } else {
                row_open_ = true;
                field_.push_back(c);
                state_ = State::Unquoted;
            }
            break;

          case State::Unquoted:
            if (c == ',') {
                end_field();
                state_ = State::FieldStart;
            } else if (is_eol) {
                end_field();
                end_row();
                state_ = State::FieldStart;
                eat_lf_ = (c == '\r');
            } else {
                field_.push_back(c);
            }
            break;

          case State::Quoted:
            if (c == '"')
                state_ = State::QuoteInQuoted;
            else
                field_.push_back(c);
            break;

          case State::QuoteInQuoted:
            if (c == '"') { // "" escape
                field_.push_back('"');
                state_ = State::Quoted;
            } else if (c == ',') {
                end_field();
                state_ = State::FieldStart;
            } else if (is_eol) {
                end_field();
                end_row();
                state_ = State::FieldStart;
                eat_lf_ = (c == '\r');
            } else {
                // libcsv is lenient: stray byte after a closing quote.
                field_.push_back(c);
                state_ = State::Unquoted;
            }
            break;
        }
    }
}

void
CsvParser::finish()
{
    if (row_open_ || !field_.empty() || state_ == State::Unquoted ||
        state_ == State::Quoted || state_ == State::QuoteInQuoted) {
        end_field();
        end_row();
    }
    state_ = State::FieldStart;
    eat_lf_ = false;
}

CsvCounts
parse_csv(BytesView data)
{
    CsvCounts counts;
    CsvParser parser(
        [&](const char *, std::size_t len) { counts.field_bytes += len; },
        [] {});
    parser.feed(data);
    parser.finish();
    counts.fields = parser.fields();
    counts.rows = parser.rows();
    return counts;
}

} // namespace udp::baselines
