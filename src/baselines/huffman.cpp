/**
 * @file
 * Canonical Huffman construction, encoder and tree-walking decoder.
 */
#include "huffman.hpp"

#include <algorithm>
#include <queue>

namespace udp::baselines {

unsigned
HuffmanCode::max_length() const
{
    unsigned m = 0;
    for (const auto l : length)
        m = std::max<unsigned>(m, l);
    return m;
}

unsigned
HuffmanCode::alphabet_size() const
{
    unsigned n = 0;
    for (const auto l : length)
        n += l ? 1 : 0;
    return n;
}

HuffmanCode
build_huffman(BytesView data)
{
    std::array<std::uint64_t, 256> freq{};
    for (const std::uint8_t b : data)
        ++freq[b];

    // Package-merge would be exact; we use the classic trick of flattening
    // frequencies until the tree depth fits 16 (rarely needed below 1 MiB).
    std::array<std::uint8_t, 256> length{};
    for (int attempt = 0; attempt < 20; ++attempt) {
        // Build the tree over present symbols with a priority queue.
        using Item = std::pair<std::uint64_t, int>; // (freq, node)
        struct Node {
            int left = -1, right = -1;
            int sym = -1;
        };
        std::vector<Node> nodes;
        std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
        for (int s = 0; s < 256; ++s) {
            if (freq[s] == 0)
                continue;
            nodes.push_back({-1, -1, s});
            pq.emplace(freq[s], static_cast<int>(nodes.size() - 1));
        }
        if (nodes.empty()) { // empty input: give byte 0 a 1-bit code
            HuffmanCode c;
            c.length[0] = 1;
            c.code[0] = 0;
            return c;
        }
        if (nodes.size() == 1) {
            HuffmanCode c;
            c.length[nodes[0].sym] = 1;
            c.code[nodes[0].sym] = 0;
            return c;
        }
        while (pq.size() > 1) {
            const auto [fa, a] = pq.top();
            pq.pop();
            const auto [fb, bn] = pq.top();
            pq.pop();
            nodes.push_back({a, bn, -1});
            pq.emplace(fa + fb, static_cast<int>(nodes.size() - 1));
        }
        // Depth-assign lengths.
        length.fill(0);
        unsigned max_len = 0;
        std::vector<std::pair<int, unsigned>> stack{
            {pq.top().second, 0}};
        while (!stack.empty()) {
            const auto [n, d] = stack.back();
            stack.pop_back();
            if (nodes[n].sym >= 0) {
                length[nodes[n].sym] =
                    static_cast<std::uint8_t>(std::max(1u, d));
                max_len = std::max(max_len, std::max(1u, d));
            } else {
                stack.push_back({nodes[n].left, d + 1});
                stack.push_back({nodes[n].right, d + 1});
            }
        }
        if (max_len <= 16)
            break;
        // Flatten and retry.
        for (auto &f : freq)
            if (f)
                f = (f >> 2) + 1;
    }

    // Canonicalize: sort by (length, symbol) and assign increasing codes.
    std::vector<int> symbols;
    for (int s = 0; s < 256; ++s)
        if (length[s])
            symbols.push_back(s);
    std::sort(symbols.begin(), symbols.end(), [&](int a, int b) {
        return length[a] != length[b] ? length[a] < length[b] : a < b;
    });

    HuffmanCode c;
    c.length = length;
    std::uint32_t next = 0;
    unsigned prev_len = 0;
    for (const int s : symbols) {
        next <<= (length[s] - prev_len);
        prev_len = length[s];
        c.code[s] = static_cast<std::uint16_t>(next);
        ++next;
    }
    return c;
}

Bytes
huffman_encode(BytesView data, const HuffmanCode &code)
{
    Bytes out;
    out.reserve(data.size() / 2 + 8);
    std::uint32_t acc = 0;
    unsigned nbits = 0;
    for (const std::uint8_t b : data) {
        const unsigned len = code.length[b];
        if (len == 0)
            throw UdpError("huffman_encode: symbol without a code");
        acc = (acc << len) | code.code[b];
        nbits += len;
        while (nbits >= 8) {
            out.push_back(
                static_cast<std::uint8_t>(acc >> (nbits - 8)));
            nbits -= 8;
        }
    }
    if (nbits)
        out.push_back(static_cast<std::uint8_t>(acc << (8 - nbits)));
    return out;
}

HuffTree
build_tree(const HuffmanCode &code)
{
    HuffTree t;
    t.nodes.push_back({0, 0});
    for (int s = 0; s < 256; ++s) {
        const unsigned len = code.length[s];
        if (!len)
            continue;
        std::int32_t n = 0;
        for (unsigned i = len; i-- > 0;) {
            const unsigned bit = (code.code[s] >> i) & 1;
            if (i == 0) {
                t.nodes[n][bit] = -(s + 1);
            } else {
                if (t.nodes[n][bit] <= 0) {
                    t.nodes.push_back({0, 0});
                    t.nodes[n][bit] =
                        static_cast<std::int32_t>(t.nodes.size() - 1);
                }
                n = t.nodes[n][bit];
            }
        }
    }
    return t;
}

Bytes
huffman_decode(BytesView bits, std::size_t count, const HuffmanCode &code)
{
    const HuffTree tree = build_tree(code);
    Bytes out;
    out.reserve(count);
    std::int32_t n = tree.root;
    std::size_t bitpos = 0;
    const std::size_t nbits = bits.size() * 8;
    while (out.size() < count) {
        if (bitpos >= nbits)
            throw UdpError("huffman_decode: truncated stream");
        const unsigned bit =
            (bits[bitpos / 8] >> (7 - bitpos % 8)) & 1;
        ++bitpos;
        const std::int32_t next = tree.nodes[n][bit];
        if (next < 0) {
            out.push_back(static_cast<std::uint8_t>(-next - 1));
            n = tree.root;
        } else {
            n = next;
        }
    }
    return out;
}

} // namespace udp::baselines
