/**
 * @file
 * Pulse-width trigger baseline.
 */
#include "trigger.hpp"

#include <array>

namespace udp::baselines {

PulseTrigger::PulseTrigger(unsigned width) : width_(width)
{
    if (width == 0 || width > 30)
        throw UdpError("PulseTrigger: width must be 1..30");
    build_lut();
}

unsigned
PulseTrigger::next_state(unsigned state, unsigned bit, bool *trigger) const
{
    // States: 0 = idle/low; 1..width = counting a high run of that
    // length; width+1 = pulse too long (waits for low).
    *trigger = false;
    if (bit) {
        if (state >= width_)
            return width_ + 1;
        return state + 1;
    }
    if (state == width_)
        *trigger = true; // exact-width pulse just ended
    return 0;
}

void
PulseTrigger::build_lut()
{
    const unsigned n = num_states();
    lut_.assign(n, {});
    for (unsigned s = 0; s < n; ++s) {
        for (unsigned nib = 0; nib < 16; ++nib) {
            unsigned cur = s;
            unsigned trig = 0;
            for (int b = 3; b >= 0; --b) {
                bool t = false;
                cur = next_state(cur, (nib >> b) & 1, &t);
                trig += t ? 1 : 0;
            }
            lut_[s][nib] =
                static_cast<std::uint16_t>(cur | (trig << 8));
        }
    }
}

std::uint64_t
PulseTrigger::count_triggers_bitwise(BytesView packed) const
{
    std::uint64_t count = 0;
    unsigned state = 0;
    for (const std::uint8_t byte : packed) {
        for (int b = 7; b >= 0; --b) {
            bool t = false;
            state = next_state(state, (byte >> b) & 1, &t);
            count += t ? 1 : 0;
        }
    }
    return count;
}

std::uint64_t
PulseTrigger::count_triggers_lut4(BytesView packed) const
{
    std::uint64_t count = 0;
    unsigned state = 0;
    for (const std::uint8_t byte : packed) {
        const std::uint16_t hi = lut_[state][byte >> 4];
        state = hi & 0xFF;
        count += hi >> 8;
        const std::uint16_t lo = lut_[state][byte & 0xF];
        state = lo & 0xFF;
        count += lo >> 8;
    }
    return count;
}

} // namespace udp::baselines
