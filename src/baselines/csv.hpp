/**
 * @file
 * CPU CSV parser baseline, faithful to libcsv's streaming FSM semantics
 * (paper Section 4.1: "UDP implements the parsing finite-state machine
 * used in libcsv"): RFC-4180 quoting, "" escapes, CR/LF/CRLF row ends,
 * per-field and per-row callbacks.
 */
#pragma once

#include "core/types.hpp"

#include <functional>
#include <string>
#include <vector>

namespace udp::baselines {

/// Streaming CSV parser (libcsv-flavored three-state FSM).
class CsvParser
{
  public:
    using FieldFn = std::function<void(const char *data, std::size_t len)>;
    using RowFn = std::function<void()>;

    CsvParser(FieldFn on_field, RowFn on_row)
        : on_field_(std::move(on_field)), on_row_(std::move(on_row))
    {
    }

    /// Feed a chunk; may be called repeatedly (streaming).
    void feed(BytesView chunk);

    /// Signal end of input (flushes a trailing unterminated row).
    void finish();

    std::uint64_t fields() const { return fields_; }
    std::uint64_t rows() const { return rows_; }

  private:
    enum class State { FieldStart, Unquoted, Quoted, QuoteInQuoted };

    void end_field();
    void end_row();

    FieldFn on_field_;
    RowFn on_row_;
    State state_ = State::FieldStart;
    std::string field_;
    std::uint64_t fields_ = 0;
    std::uint64_t rows_ = 0;
    bool row_open_ = false;
    bool eat_lf_ = false;
};

/// Convenience: parse a whole buffer, returning (fields, rows) and
/// accumulating total field bytes (defeats dead-code elimination).
struct CsvCounts {
    std::uint64_t fields = 0;
    std::uint64_t rows = 0;
    std::uint64_t field_bytes = 0;
};
CsvCounts parse_csv(BytesView data);

} // namespace udp::baselines
