/**
 * @file
 * CPU signal-triggering baseline (paper Section 5.7 and [53]): pulse-
 * width transition localization over a binarized waveform.
 *
 * The FSM "pN" triggers when a high pulse of exactly N consecutive
 * samples ends (falls back to idle).  The CPU implementation follows the
 * paper's description: the FSM is unrolled into a lookup table processing
 * 4 symbols (samples) per step - the memory-indirection-bound code whose
 * 9-cycle dependency chain Table 2 cites.
 */
#pragma once

#include "core/types.hpp"

#include <array>
#include <vector>

namespace udp::baselines {

/// Pulse-width trigger FSM for width-N pulses over 1-bit samples.
class PulseTrigger
{
  public:
    /// @param width  exact pulse width N (paper sweeps p2..p13)
    explicit PulseTrigger(unsigned width);

    /// Reference bit-at-a-time run (ground truth for tests).
    std::uint64_t count_triggers_bitwise(BytesView packed_samples) const;

    /// Lookup-table run, 4 samples per table access (the product-style
    /// implementation the paper compares against).
    std::uint64_t count_triggers_lut4(BytesView packed_samples) const;

    unsigned width() const { return width_; }
    unsigned num_states() const { return width_ + 2; }

    /// FSM next-state function (exposed for the UDP kernel compiler):
    /// states 0..width+1; state w+1 = "overlong pulse".
    unsigned next_state(unsigned state, unsigned bit, bool *trigger) const;

  private:
    void build_lut();

    unsigned width_;
    /// lut_[state][nibble] = (next_state, triggers_in_nibble<<8)
    std::vector<std::array<std::uint16_t, 16>> lut_;
};

} // namespace udp::baselines
