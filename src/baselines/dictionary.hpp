/**
 * @file
 * CPU dictionary / dictionary-RLE encoding baseline (Parquet's C++
 * dictionary encoder flavor: hash-map string -> id, fixed-width id
 * output; the RLE variant adds run-length pairs).  Table 2 attributes
 * the CPU cost to hashing (54-67% of runtime).
 */
#pragma once

#include "core/types.hpp"

#include <string>
#include <unordered_map>
#include <vector>

namespace udp::baselines {

/// Dictionary built over a value column.
struct Dictionary {
    std::vector<std::string> values;             ///< id -> value
    std::unordered_map<std::string, std::uint32_t> ids;

    std::uint32_t intern(const std::string &v);
    std::size_t size() const { return values.size(); }
};

/// Plain dictionary encoding: one 32-bit id per row.
struct DictEncoded {
    Dictionary dict;
    std::vector<std::uint32_t> ids;
    std::size_t input_bytes = 0;
};
DictEncoded dictionary_encode(const std::vector<std::string> &rows);

/// Dictionary + run-length encoding: (id, run) pairs.
struct DictRleEncoded {
    Dictionary dict;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> runs;
    std::size_t input_bytes = 0;
};
DictRleEncoded dictionary_rle_encode(const std::vector<std::string> &rows);

/// Decoders (round-trip validation).
std::vector<std::string> dictionary_decode(const DictEncoded &enc);
std::vector<std::string> dictionary_rle_decode(const DictRleEncoded &enc);

/// Serialize a column to the newline-separated byte stream the UDP
/// kernel consumes.
Bytes column_bytes(const std::vector<std::string> &rows);

} // namespace udp::baselines
