/**
 * @file
 * Snappy block-format codec.
 */
#include "snappy.hpp"

#include <algorithm>
#include <cstring>

namespace udp::baselines {

namespace {

void
put_varint32(Bytes &out, std::uint32_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t
get_varint32(BytesView in, std::size_t &pos)
{
    std::uint32_t v = 0;
    unsigned shift = 0;
    for (;;) {
        if (pos >= in.size() || shift > 28)
            throw UdpError("snappy: bad varint");
        const std::uint8_t b = in[pos++];
        v |= std::uint32_t{b & 0x7Fu} << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
    }
}

void
emit_literal(Bytes &out, const std::uint8_t *data, std::size_t len)
{
    if (len == 0)
        return;
    const std::size_t n = len - 1;
    if (n < 60) {
        out.push_back(static_cast<std::uint8_t>(n << 2));
    } else if (n < (1u << 8)) {
        out.push_back(60 << 2);
        out.push_back(static_cast<std::uint8_t>(n));
    } else if (n < (1u << 16)) {
        out.push_back(61 << 2);
        out.push_back(static_cast<std::uint8_t>(n));
        out.push_back(static_cast<std::uint8_t>(n >> 8));
    } else {
        throw UdpError("snappy: literal too long for one block");
    }
    out.insert(out.end(), data, data + len);
}

void
emit_copy(Bytes &out, std::size_t offset, std::size_t len)
{
    // Longer copies are chunked by the caller to <= 64.
    if (len >= 4 && len <= 11 && offset < 2048) {
        out.push_back(static_cast<std::uint8_t>(
            1 | ((len - 4) << 2) | ((offset >> 8) << 5)));
        out.push_back(static_cast<std::uint8_t>(offset));
    } else {
        out.push_back(static_cast<std::uint8_t>(2 | ((len - 1) << 2)));
        out.push_back(static_cast<std::uint8_t>(offset));
        out.push_back(static_cast<std::uint8_t>(offset >> 8));
    }
}

std::uint32_t
load32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

std::uint32_t
hash32(std::uint32_t v, unsigned shift)
{
    return (v * 0x1E35A7BDu) >> shift;
}

void
compress_block(Bytes &out, const std::uint8_t *base, std::size_t len)
{
    constexpr unsigned kTableLog = 12;
    constexpr unsigned kShift = 32 - kTableLog;
    std::vector<std::uint16_t> table(1u << kTableLog, 0);

    std::size_t ip = 0;
    std::size_t lit_start = 0;

    if (len >= 15) {
        const std::size_t ip_limit = len - 4;
        ip = 1;
        while (ip < ip_limit) {
            // Skip acceleration as in the library: advance faster while
            // no matches are found.
            std::size_t skip = 32;
            std::size_t candidate;
            for (;;) {
                const std::uint32_t h = hash32(load32(base + ip), kShift);
                candidate = table[h];
                table[h] = static_cast<std::uint16_t>(ip);
                if (candidate < ip &&
                    load32(base + candidate) == load32(base + ip))
                    break;
                ip += (skip++ >> 5);
                if (ip >= ip_limit)
                    goto tail;
            }
            // Literal run up to the match.
            emit_literal(out, base + lit_start, ip - lit_start);
            // Extend the match.
            std::size_t matched = 4;
            while (ip + matched < len &&
                   base[candidate + matched] == base[ip + matched])
                ++matched;
            const std::size_t offset = ip - candidate;
            std::size_t remaining = matched;
            while (remaining > 64) {
                emit_copy(out, offset, 64);
                remaining -= 64;
            }
            if (remaining > 0)
                emit_copy(out, offset, remaining);
            ip += matched;
            lit_start = ip;
        }
    }
tail:
    if (lit_start < len)
        emit_literal(out, base + lit_start, len - lit_start);
}

} // namespace

Bytes
snappy_compress(BytesView input, std::size_t block_size)
{
    Bytes out;
    out.reserve(input.size() / 2 + 16);
    put_varint32(out, static_cast<std::uint32_t>(input.size()));
    for (std::size_t off = 0; off < input.size(); off += block_size) {
        const std::size_t n = std::min(block_size, input.size() - off);
        compress_block(out, input.data() + off, n);
    }
    return out; // empty input yields just the varint header
}

Bytes
snappy_decompress(BytesView input)
{
    std::size_t pos = 0;
    const std::uint32_t total = get_varint32(input, pos);
    Bytes out;
    out.reserve(total);

    while (pos < input.size()) {
        const std::uint8_t tag = input[pos++];
        const unsigned kind = tag & 3;
        if (kind == 0) { // literal
            std::size_t len = (tag >> 2) + 1;
            if (len > 60) {
                const unsigned extra = static_cast<unsigned>(len - 60);
                if (extra > 4 || pos + extra > input.size())
                    throw UdpError("snappy: bad literal tag");
                len = 0;
                for (unsigned i = 0; i < extra; ++i)
                    len |= std::size_t{input[pos + i]} << (8 * i);
                len += 1;
                pos += extra;
            }
            if (pos + len > input.size())
                throw UdpError("snappy: literal overruns input");
            out.insert(out.end(), input.begin() + pos,
                       input.begin() + pos + len);
            pos += len;
        } else {
            std::size_t len, offset;
            if (kind == 1) {
                if (pos >= input.size())
                    throw UdpError("snappy: truncated copy1");
                len = ((tag >> 2) & 7) + 4;
                offset = (std::size_t{tag} >> 5 << 8) | input[pos++];
            } else if (kind == 2) {
                if (pos + 2 > input.size())
                    throw UdpError("snappy: truncated copy2");
                len = (tag >> 2) + 1;
                offset = input[pos] | (std::size_t{input[pos + 1]} << 8);
                pos += 2;
            } else {
                if (pos + 4 > input.size())
                    throw UdpError("snappy: truncated copy4");
                len = (tag >> 2) + 1;
                offset = input[pos] | (std::size_t{input[pos + 1]} << 8) |
                         (std::size_t{input[pos + 2]} << 16) |
                         (std::size_t{input[pos + 3]} << 24);
                pos += 4;
            }
            if (offset == 0 || offset > out.size())
                throw UdpError("snappy: copy before start");
            const std::size_t start = out.size() - offset;
            for (std::size_t i = 0; i < len; ++i) // overlap-safe
                out.push_back(out[start + i]);
        }
    }
    if (out.size() != total)
        throw UdpError("snappy: length mismatch");
    return out;
}

double
compression_ratio(std::size_t in_bytes, std::size_t out_bytes)
{
    return out_bytes ? double(in_bytes) / double(out_bytes) : 0.0;
}

} // namespace udp::baselines
