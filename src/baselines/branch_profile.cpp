/**
 * @file
 * Branch-model implementation: bimodal predictor for ladder branches,
 * last-target BTB for indirect dispatch.
 */
#include "branch_profile.hpp"

#include <algorithm>
#include <unordered_map>

namespace udp::baselines {

namespace {

/// Distinct (target) groups of a state's outgoing arcs, in first-symbol
/// order - the order a compiler's ladder would test them.
std::vector<StateId>
arc_groups(const Dfa &dfa, StateId s)
{
    std::vector<StateId> groups;
    for (unsigned c = 0; c < 256; ++c) {
        const StateId t = dfa.next[s][c];
        if (t == kNoState)
            continue;
        if (std::find(groups.begin(), groups.end(), t) == groups.end())
            groups.push_back(t);
    }
    return groups;
}

/// 2-bit saturating counter.
struct Bimodal {
    std::uint8_t state = 1; // weakly not-taken
    bool predict() const { return state >= 2; }
    void update(bool taken) {
        if (taken && state < 3)
            ++state;
        else if (!taken && state > 0)
            --state;
    }
};

} // namespace

BranchProfile
profile_bo(const Dfa &dfa, BytesView input, const BranchModel &model)
{
    // Pre-compute ladders.
    std::vector<std::vector<StateId>> ladders(dfa.size());
    for (StateId s = 0; s < dfa.size(); ++s)
        ladders[s] = arc_groups(dfa, s);

    // One bimodal entry per (state, ladder position).
    std::unordered_map<std::uint64_t, Bimodal> table;

    BranchProfile p;
    StateId s = dfa.start;
    for (const std::uint8_t c : input) {
        ++p.symbols;
        p.cycles += model.work_per_symbol;
        const StateId t =
            dfa.next[s][c] == kNoState ? dfa.start : dfa.next[s][c];
        const auto &ladder = ladders[s];
        for (std::size_t i = 0; i < ladder.size(); ++i) {
            const bool taken = ladder[i] == t;
            ++p.branches;
            ++p.cycles;
            Bimodal &b = table[(std::uint64_t{s} << 16) | i];
            if (b.predict() != taken) {
                ++p.mispredicts;
                p.cycles += model.mispredict_penalty;
                p.mispredict_cycles += model.mispredict_penalty;
            }
            b.update(taken);
            if (taken)
                break;
        }
        s = t;
    }
    return p;
}

BranchProfile
profile_bi(const Dfa &dfa, BytesView input, const BranchModel &model)
{
    BranchProfile p;
    StateId s = dfa.start;
    StateId btb = dfa.start; // last indirect target
    for (const std::uint8_t c : input) {
        ++p.symbols;
        // Load table entry + indexing + the indirect jump itself.
        p.cycles += model.work_per_symbol + 1;
        ++p.branches;
        ++p.cycles;
        const StateId t =
            dfa.next[s][c] == kNoState ? dfa.start : dfa.next[s][c];
        if (t != btb) {
            ++p.mispredicts;
            p.cycles += model.mispredict_penalty;
            p.mispredict_cycles += model.mispredict_penalty;
        }
        btb = t;
        s = t;
    }
    return p;
}

std::size_t
code_size_bo(const Dfa &dfa)
{
    // Per ladder entry: compare + conditional branch (2 x 4 bytes), plus
    // a state prologue (load symbol, bounds) of ~12 bytes.
    std::size_t bytes = 0;
    for (StateId s = 0; s < dfa.size(); ++s)
        bytes += 12 + 8 * arc_groups(dfa, s).size();
    return bytes;
}

std::size_t
code_size_bi(const Dfa &dfa)
{
    // Per state: a 256-entry 4-byte target table plus ~8 bytes of
    // dispatch code.
    return dfa.size() * (256 * 4 + 8);
}

} // namespace udp::baselines
