/**
 * @file
 * Dictionary / dictionary-RLE baseline implementation.
 */
#include "dictionary.hpp"

namespace udp::baselines {

std::uint32_t
Dictionary::intern(const std::string &v)
{
    const auto it = ids.find(v);
    if (it != ids.end())
        return it->second;
    const auto id = static_cast<std::uint32_t>(values.size());
    values.push_back(v);
    ids.emplace(v, id);
    return id;
}

DictEncoded
dictionary_encode(const std::vector<std::string> &rows)
{
    DictEncoded enc;
    enc.ids.reserve(rows.size());
    for (const auto &r : rows) {
        enc.ids.push_back(enc.dict.intern(r));
        enc.input_bytes += r.size() + 1;
    }
    return enc;
}

DictRleEncoded
dictionary_rle_encode(const std::vector<std::string> &rows)
{
    DictRleEncoded enc;
    std::uint32_t prev = ~0u;
    for (const auto &r : rows) {
        const std::uint32_t id = enc.dict.intern(r);
        enc.input_bytes += r.size() + 1;
        if (!enc.runs.empty() && id == prev) {
            ++enc.runs.back().second;
        } else {
            enc.runs.emplace_back(id, 1);
            prev = id;
        }
    }
    return enc;
}

std::vector<std::string>
dictionary_decode(const DictEncoded &enc)
{
    std::vector<std::string> out;
    out.reserve(enc.ids.size());
    for (const auto id : enc.ids)
        out.push_back(enc.dict.values.at(id));
    return out;
}

std::vector<std::string>
dictionary_rle_decode(const DictRleEncoded &enc)
{
    std::vector<std::string> out;
    for (const auto &[id, run] : enc.runs)
        for (std::uint32_t i = 0; i < run; ++i)
            out.push_back(enc.dict.values.at(id));
    return out;
}

Bytes
column_bytes(const std::vector<std::string> &rows)
{
    Bytes out;
    for (const auto &r : rows) {
        out.insert(out.end(), r.begin(), r.end());
        out.push_back('\n');
    }
    return out;
}

} // namespace udp::baselines
