/**
 * @file
 * Histogram baseline implementation.
 */
#include "histogram.hpp"

#include <algorithm>
#include <cmath>

namespace udp::baselines {

Histogram
Histogram::uniform(unsigned bins, double lo, double hi)
{
    if (bins == 0 || !(lo < hi))
        throw UdpError("Histogram: bad uniform spec");
    Histogram h;
    h.edges_.resize(bins + 1);
    for (unsigned i = 0; i <= bins; ++i)
        h.edges_[i] = lo + (hi - lo) * i / bins;
    h.counts_.assign(bins, 0);
    return h;
}

Histogram
Histogram::percentile(unsigned bins, const std::vector<double> &sample)
{
    if (bins == 0 || sample.size() < bins + 1)
        throw UdpError("Histogram: sample too small for percentile bins");
    std::vector<double> sorted = sample;
    std::sort(sorted.begin(), sorted.end());
    Histogram h;
    h.edges_.resize(bins + 1);
    for (unsigned i = 0; i <= bins; ++i) {
        const std::size_t idx =
            std::min(sorted.size() - 1, i * sorted.size() / bins);
        h.edges_[i] = sorted[idx];
    }
    // De-duplicate degenerate edges.
    for (unsigned i = 1; i <= bins; ++i)
        if (h.edges_[i] <= h.edges_[i - 1])
            h.edges_[i] = std::nextafter(h.edges_[i - 1], 1e308);
    h.counts_.assign(bins, 0);
    return h;
}

void
Histogram::add(double x)
{
    // gsl_histogram_increment does a binary search over edges; clamp
    // out-of-range values to the edge bins.
    if (x < edges_.front()) {
        ++counts_.front();
        return;
    }
    if (x >= edges_.back()) {
        ++counts_.back();
        return;
    }
    const auto it =
        std::upper_bound(edges_.begin(), edges_.end(), x) - 1;
    const std::size_t bin =
        std::min<std::size_t>(it - edges_.begin(), counts_.size() - 1);
    ++counts_[bin];
}

std::uint64_t
Histogram::total() const
{
    std::uint64_t t = 0;
    for (const auto c : counts_)
        t += c;
    return t;
}

} // namespace udp::baselines
