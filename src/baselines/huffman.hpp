/**
 * @file
 * CPU Huffman coding baseline (libhuffman-flavored: byte-frequency tree,
 * bit-at-a-time tree-walking decoder - the branchy code path whose
 * mispredictions Table 2 documents).
 *
 * The code table is canonical so that the UDP kernel and the baseline
 * interoperate: either side can decode the other's stream.
 */
#pragma once

#include "core/types.hpp"

#include <array>
#include <vector>

namespace udp::baselines {

/// A canonical Huffman code for the byte alphabet.
struct HuffmanCode {
    /// Per-symbol code length (0 = symbol absent); max length 16.
    std::array<std::uint8_t, 256> length{};
    /// Per-symbol code value, MSB-first in the low `length` bits.
    std::array<std::uint16_t, 256> code{};

    unsigned max_length() const;
    /// Number of symbols with non-zero length.
    unsigned alphabet_size() const;
};

/// Build a canonical code from the byte frequencies of `data`.
/// Lengths are capped at 16 by construction (frequency flattening).
HuffmanCode build_huffman(BytesView data);

/// Encode: bit stream, MSB-first. Throws if a byte has no code.
Bytes huffman_encode(BytesView data, const HuffmanCode &code);

/**
 * Decode `count` symbols by walking the code tree bit-by-bit
 * (libhuffman's loop). The tree is rebuilt from the canonical code.
 */
Bytes huffman_decode(BytesView bits, std::size_t count,
                     const HuffmanCode &code);

/// Decoding tree node (exposed for the UDP kernel compiler).
struct HuffTree {
    /// Children for bit 0 / bit 1: positive = node index, negative-1 =
    /// leaf symbol (entry -(sym+1)), 0 only valid as root marker.
    std::vector<std::array<std::int32_t, 2>> nodes;
    std::int32_t root = 0;
};
HuffTree build_tree(const HuffmanCode &code);

} // namespace udp::baselines
