/**
 * @file
 * CPU branch-behavior models for symbol-dispatch loops (paper Section
 * 3.2.1, Figures 4 and 5).
 *
 * Today's CPUs run FSM kernels one of two ways:
 *   - Branch-with-offset (BO): a switch() compiled into a compare/branch
 *     ladder; many cheap branches, each predicted by a bimodal table.
 *   - Branch-indirect (BI): a computed jump through a dispatch table;
 *     one indirect branch whose target the BTB predicts as
 *     "same as last time".
 *
 * `profile_bo` / `profile_bi` interpret an FSM trace under these models
 * with a misprediction penalty (default 15 cycles, a Westmere-class
 * pipeline refill) and report where the cycles went - reproducing the
 * 32-86% misprediction fractions of Fig 5a and the effective branch
 * rates of Fig 5b.  `code_size_*` model the Fig 5c footprint comparison.
 */
#pragma once

#include "automata/dfa.hpp"
#include "core/types.hpp"

namespace udp::baselines {

/// Outcome of one modeled run.
struct BranchProfile {
    std::uint64_t symbols = 0;
    std::uint64_t branches = 0;        ///< executed branch instructions
    std::uint64_t mispredicts = 0;
    std::uint64_t cycles = 0;          ///< total modeled cycles
    std::uint64_t mispredict_cycles = 0;

    double mispredict_fraction() const {
        return cycles ? double(mispredict_cycles) / double(cycles) : 0.0;
    }
    /// Cycles per input symbol.
    double cycles_per_symbol() const {
        return symbols ? double(cycles) / double(symbols) : 0.0;
    }
};

/// Model parameters.
struct BranchModel {
    unsigned mispredict_penalty = 15; ///< pipeline refill cycles
    unsigned work_per_symbol = 2;     ///< non-branch work (load, index)
};

/// Compare/branch-ladder (switch) execution of the DFA over `input`.
BranchProfile profile_bo(const Dfa &dfa, BytesView input,
                         const BranchModel &model = {});

/// Dispatch-table + branch-indirect execution.
BranchProfile profile_bi(const Dfa &dfa, BytesView input,
                         const BranchModel &model = {});

/// Code bytes for the BO lowering (cmp+br per distinct arc group).
std::size_t code_size_bo(const Dfa &dfa);

/// Code bytes for the BI lowering (per-state 256-entry target tables).
std::size_t code_size_bi(const Dfa &dfa);

} // namespace udp::baselines
