/**
 * @file
 * CPU histogram baseline (GSL-flavored gsl_histogram: explicit bin
 * edges, branchy binary-search increment), with uniform and
 * percentile-sampled non-uniform bin construction (paper Section 4.1:
 * Crimes.Latitude/Longitude and Taxi.Fare with 10/10/4 bins).
 */
#pragma once

#include "core/types.hpp"

#include <vector>

namespace udp::baselines {

/// gsl_histogram-like fixed-edge histogram.
class Histogram
{
  public:
    /// Uniform bins over [lo, hi).
    static Histogram uniform(unsigned bins, double lo, double hi);

    /// Percentile bins from a sample (equal-population edges).
    static Histogram percentile(unsigned bins,
                                const std::vector<double> &sample);

    /// Increment the bin containing x (values outside range are
    /// clamped to the edge bins, matching the UDP kernel's behavior).
    void add(double x);

    void add_all(const std::vector<double> &xs) {
        for (const double x : xs)
            add(x);
    }

    const std::vector<std::uint64_t> &counts() const { return counts_; }
    const std::vector<double> &edges() const { return edges_; }
    std::uint64_t total() const;

  private:
    std::vector<double> edges_;  ///< bins+1 ascending edges
    std::vector<std::uint64_t> counts_;
};

} // namespace udp::baselines
