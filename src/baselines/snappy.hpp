/**
 * @file
 * CPU Snappy baseline: a from-scratch, format-compatible implementation
 * of the Snappy block format (the paper uses Google's snappy library;
 * ours emits/consumes the same tag stream so the UDP kernels are
 * "block compatible" as the paper requires).
 *
 * Format: varint32 uncompressed length, then elements tagged by the low
 * two bits: 00 literal, 01 copy with 1-byte offset, 10 copy with 2-byte
 * offset, 11 copy with 4-byte offset.
 */
#pragma once

#include "core/types.hpp"

namespace udp::baselines {

/// Compress one block (block-based like the library; default 64 KiB).
Bytes snappy_compress(BytesView input, std::size_t block_size = 1u << 16);

/// Decompress a full stream produced by snappy_compress.
Bytes snappy_decompress(BytesView input);

/// Compression ratio helper (input/output).
double compression_ratio(std::size_t in_bytes, std::size_t out_bytes);

} // namespace udp::baselines
