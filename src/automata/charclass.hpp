/**
 * @file
 * Byte character classes for the automata library.
 */
#pragma once

#include "core/types.hpp"

#include <bitset>

namespace udp {

/// A set over the byte alphabet.
class CharClass
{
  public:
    CharClass() = default;

    static CharClass single(std::uint8_t c) {
        CharClass cc;
        cc.bits_.set(c);
        return cc;
    }
    static CharClass range(std::uint8_t lo, std::uint8_t hi) {
        CharClass cc;
        for (unsigned c = lo; c <= hi; ++c)
            cc.bits_.set(c);
        return cc;
    }
    static CharClass any() {
        CharClass cc;
        cc.bits_.set();
        return cc;
    }

    void add(std::uint8_t c) { bits_.set(c); }
    void add_range(std::uint8_t lo, std::uint8_t hi) {
        for (unsigned c = lo; c <= hi; ++c)
            bits_.set(c);
    }
    void negate() { bits_.flip(); }
    void unite(const CharClass &o) { bits_ |= o.bits_; }

    bool test(std::uint8_t c) const { return bits_.test(c); }
    bool empty() const { return bits_.none(); }
    std::size_t count() const { return bits_.count(); }

    bool operator==(const CharClass &o) const { return bits_ == o.bits_; }

  private:
    std::bitset<256> bits_;
};

} // namespace udp
