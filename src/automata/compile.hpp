/**
 * @file
 * Compilers from finite-automata models to UDP programs (the pattern-
 * matching path of the paper: DFA, aDFA and NFA models, Section 5.3).
 *
 * Accept semantics: an `accept` action (id = pattern id) is attached to
 * every arc entering an accepting state, so lane `accept_count()` equals
 * the number of unanchored matches.
 */
#pragma once

#include "adfa.hpp"
#include "assembler/builder.hpp"
#include "core/program.hpp"
#include "dfa.hpp"
#include "nfa.hpp"

namespace udp {

/// Options for the DFA compiler.
struct DfaCompileOptions {
    /**
     * Fold each state's most-popular target into a `majority` transition
     * when it covers at least this many symbols (0 disables majority
     * compression and emits all 256 labeled arcs).
     */
    unsigned majority_threshold = 2;
    LayoutOptions layout;
};

/// Compile a (total) DFA to a UDP program (labeled + majority arcs).
Program compile_dfa(const Dfa &dfa, const DfaCompileOptions &opts = {});

/// Compile an aDFA: residual labeled arcs plus non-consuming `default`
/// arcs realized with a refill action.
Program compile_adfa(const Adfa &adfa, const LayoutOptions &layout = {});

/// Compile an epsilon-eliminated NFA for `run_nfa` execution; multi-
/// target symbols go through epsilon split states.
Program compile_nfa(const Nfa &nfa, const LayoutOptions &layout = {});

} // namespace udp
