/**
 * @file
 * Recursive-descent regex parser.
 */
#include "regex.hpp"

namespace udp {

namespace {

using NodePtr = std::unique_ptr<RegexNode>;

NodePtr
make_node(RegexNode::Kind k)
{
    auto n = std::make_unique<RegexNode>();
    n->kind = k;
    return n;
}

NodePtr
make_class(CharClass cc)
{
    auto n = make_node(RegexNode::Kind::Class);
    n->cls = cc;
    return n;
}

class Parser
{
  public:
    explicit Parser(const std::string &s) : s_(s) {}

    NodePtr parse() {
        NodePtr n = alternation();
        if (pos_ != s_.size())
            fail("trailing characters");
        return n;
    }

  private:
    [[noreturn]] void fail(const std::string &msg) const {
        throw UdpError("regex: " + msg + " at position " +
                       std::to_string(pos_) + " in \"" + s_ + "\"");
    }

    bool eof() const { return pos_ >= s_.size(); }
    char peek() const { return s_[pos_]; }
    char next() {
        if (eof())
            fail("unexpected end");
        return s_[pos_++];
    }

    NodePtr alternation() {
        NodePtr lhs = concat();
        if (eof() || peek() != '|')
            return lhs;
        auto alt = make_node(RegexNode::Kind::Alt);
        alt->children.push_back(std::move(lhs));
        while (!eof() && peek() == '|') {
            ++pos_;
            alt->children.push_back(concat());
        }
        return alt;
    }

    NodePtr concat() {
        auto seq = make_node(RegexNode::Kind::Concat);
        while (!eof() && peek() != '|' && peek() != ')')
            seq->children.push_back(repetition());
        if (seq->children.empty())
            return make_node(RegexNode::Kind::Empty);
        if (seq->children.size() == 1)
            return std::move(seq->children.front());
        return seq;
    }

    NodePtr repetition() {
        NodePtr atom_node = atom();
        while (!eof()) {
            const char c = peek();
            int min = 0, max = -1;
            if (c == '*') {
                ++pos_;
            } else if (c == '+') {
                ++pos_;
                min = 1;
            } else if (c == '?') {
                ++pos_;
                max = 1;
            } else if (c == '{') {
                ++pos_;
                min = number();
                max = min;
                if (!eof() && peek() == ',') {
                    ++pos_;
                    max = (!eof() && peek() == '}') ? -1 : number();
                }
                if (eof() || next() != '}')
                    fail("expected '}'");
                if (max >= 0 && max < min)
                    fail("bad repetition bounds");
                if (max > 64 || min > 64)
                    fail("repetition bound too large (limit 64)");
            } else {
                break;
            }
            auto rep = make_node(RegexNode::Kind::Repeat);
            rep->min = min;
            rep->max = max;
            rep->children.push_back(std::move(atom_node));
            atom_node = std::move(rep);
        }
        return atom_node;
    }

    int number() {
        if (eof() || !isdigit(static_cast<unsigned char>(peek())))
            fail("expected number");
        int v = 0;
        while (!eof() && isdigit(static_cast<unsigned char>(peek()))) {
            v = v * 10 + (next() - '0');
            if (v > 9999)
                fail("number too large");
        }
        return v;
    }

    NodePtr atom() {
        const char c = next();
        switch (c) {
          case '(': {
            NodePtr inner = alternation();
            if (eof() || next() != ')')
                fail("expected ')'");
            return inner;
          }
          case '[': return make_class(char_class());
          case '.': return make_class(CharClass::any());
          case '\\': return make_class(escape());
          case '*':
          case '+':
          case '?':
            fail("quantifier with nothing to repeat");
          default:
            return make_class(
                CharClass::single(static_cast<std::uint8_t>(c)));
        }
    }

    CharClass escape() {
        const char c = next();
        CharClass cc;
        switch (c) {
          case 'n': return CharClass::single('\n');
          case 'r': return CharClass::single('\r');
          case 't': return CharClass::single('\t');
          case '0': return CharClass::single(0);
          case 'd': return CharClass::range('0', '9');
          case 'D':
            cc = CharClass::range('0', '9');
            cc.negate();
            return cc;
          case 'w':
            cc = CharClass::range('a', 'z');
            cc.unite(CharClass::range('A', 'Z'));
            cc.unite(CharClass::range('0', '9'));
            cc.add('_');
            return cc;
          case 'W':
            cc = escape_named('w');
            cc.negate();
            return cc;
          case 's':
            cc.add(' ');
            cc.add('\t');
            cc.add('\n');
            cc.add('\r');
            cc.add('\f');
            cc.add(0x0B);
            return cc;
          case 'S':
            cc = escape_named('s');
            cc.negate();
            return cc;
          case 'x': {
            const int hi = hex_digit();
            const int lo = hex_digit();
            return CharClass::single(
                static_cast<std::uint8_t>(hi * 16 + lo));
          }
          default:
            // Escaped metacharacter (\., \[, \\, ...).
            return CharClass::single(static_cast<std::uint8_t>(c));
        }
    }

    CharClass escape_named(char c) {
        // Reuse escape() logic for \w / \s bodies without re-consuming.
        CharClass cc;
        if (c == 'w') {
            cc = CharClass::range('a', 'z');
            cc.unite(CharClass::range('A', 'Z'));
            cc.unite(CharClass::range('0', '9'));
            cc.add('_');
        } else {
            cc.add(' ');
            cc.add('\t');
            cc.add('\n');
            cc.add('\r');
            cc.add('\f');
            cc.add(0x0B);
        }
        return cc;
    }

    int hex_digit() {
        const char c = next();
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        fail("bad hex digit");
    }

    CharClass char_class() {
        CharClass cc;
        bool negated = false;
        if (!eof() && peek() == '^') {
            ++pos_;
            negated = true;
        }
        bool first = true;
        while (true) {
            if (eof())
                fail("unterminated character class");
            char c = peek();
            if (c == ']' && !first) {
                ++pos_;
                break;
            }
            first = false;
            ++pos_;
            CharClass atom_cc;
            if (c == '\\') {
                --pos_;
                ++pos_; // consume backslash position marker
                atom_cc = escape();
            } else {
                atom_cc = CharClass::single(static_cast<std::uint8_t>(c));
            }
            // Range a-b (only for single-char atoms).
            if (!eof() && peek() == '-' && pos_ + 1 < s_.size() &&
                s_[pos_ + 1] != ']' && atom_cc.count() == 1 && c != '\\') {
                ++pos_; // '-'
                const char hi = next();
                if (static_cast<std::uint8_t>(hi) <
                    static_cast<std::uint8_t>(c))
                    fail("reversed class range");
                atom_cc = CharClass::range(static_cast<std::uint8_t>(c),
                                           static_cast<std::uint8_t>(hi));
            }
            cc.unite(atom_cc);
        }
        if (negated)
            cc.negate();
        if (cc.empty())
            fail("empty character class");
        return cc;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

} // namespace

std::unique_ptr<RegexNode>
parse_regex(const std::string &pattern)
{
    return Parser(pattern).parse();
}

std::unique_ptr<RegexNode>
literal_regex(const std::string &text)
{
    auto seq = std::make_unique<RegexNode>();
    seq->kind = RegexNode::Kind::Concat;
    for (const char c : text) {
        auto n = std::make_unique<RegexNode>();
        n->kind = RegexNode::Kind::Class;
        n->cls = CharClass::single(static_cast<std::uint8_t>(c));
        seq->children.push_back(std::move(n));
    }
    if (seq->children.empty())
        seq->kind = RegexNode::Kind::Empty;
    return seq;
}

} // namespace udp
