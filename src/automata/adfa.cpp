/**
 * @file
 * aDFA construction: maximum-weight default-parent forest with bounded
 * depth (greedy Kruskal-style, in the spirit of D2FA space reduction).
 */
#include "adfa.hpp"

#include <algorithm>
#include <numeric>

namespace udp {

std::size_t
Adfa::arc_count() const
{
    std::size_t n = 0;
    for (const auto &s : states)
        n += s.arcs.size();
    return n;
}

std::uint64_t
Adfa::count_matches(BytesView input) const
{
    std::uint64_t count = 0;
    StateId s = start;
    for (const std::uint8_t c : input) {
        StateId cur = s;
        StateId nxt = kNoState;
        for (;;) {
            const auto &st = states[cur];
            const auto it = std::lower_bound(
                st.arcs.begin(), st.arcs.end(), c,
                [](const auto &a, std::uint8_t b) { return a.first < b; });
            if (it != st.arcs.end() && it->first == c) {
                nxt = it->second;
                break;
            }
            if (st.deflt == kNoState)
                break;
            cur = st.deflt; // follow default without consuming
        }
        s = (nxt == kNoState) ? start : nxt;
        if (s != kNoState && states[s].accept >= 0)
            ++count;
    }
    return count;
}

Adfa
build_adfa(const Dfa &dfa, unsigned max_depth)
{
    const std::size_t n = dfa.size();

    // Shared-transition weight between two states.
    auto shared = [&](StateId a, StateId b) {
        unsigned w = 0;
        for (unsigned c = 0; c < 256; ++c)
            if (dfa.next[a][c] == dfa.next[b][c] &&
                dfa.next[a][c] != kNoState)
                ++w;
        return w;
    };

    // Greedy forest: evaluate candidate parents in descending shared
    // weight; O(n^2) pair scan, fine for the evaluation's DFA sizes.
    struct Edge {
        unsigned w;
        StateId a, b;
    };
    std::vector<Edge> edges;
    const std::size_t pair_cap = 4'000'000; // keep builds bounded
    if (n * n <= pair_cap) {
        for (StateId a = 0; a < n; ++a)
            for (StateId b = a + 1; b < n; ++b) {
                const unsigned w = shared(a, b);
                if (w >= 16)
                    edges.push_back({w, a, b});
            }
    } else {
        // Large DFAs: compare each state against a window of neighbors
        // (states created close together are similar in practice).
        const unsigned window = 64;
        for (StateId a = 0; a < n; ++a)
            for (StateId b = a + 1; b < std::min<std::size_t>(n, a + window);
                 ++b) {
                const unsigned w = shared(a, b);
                if (w >= 16)
                    edges.push_back({w, a, b});
            }
    }
    std::stable_sort(edges.begin(), edges.end(),
                     [](const Edge &x, const Edge &y) { return x.w > y.w; });

    std::vector<StateId> parent(n, kNoState);
    std::vector<unsigned> depth(n, 0);

    auto root_depth = [&](StateId s) {
        unsigned d = 0;
        while (parent[s] != kNoState) {
            s = parent[s];
            ++d;
        }
        return d;
    };

    for (const Edge &e : edges) {
        // Try to hang the deeper-candidate under the other, keeping the
        // depth bound and acyclicity (forest by construction: a node gets
        // at most one parent and we never parent an ancestor).
        for (const auto &[child, par] :
             {std::pair{e.a, e.b}, std::pair{e.b, e.a}}) {
            if (parent[child] != kNoState || child == dfa.start)
                continue;
            // Ancestry check (prevents cycles).
            bool anc = false;
            for (StateId s = par; s != kNoState; s = parent[s])
                if (s == child) {
                    anc = true;
                    break;
                }
            if (anc)
                continue;
            if (root_depth(par) + 1 > max_depth)
                continue;
            parent[child] = par;
            break;
        }
    }
    (void)depth;

    Adfa out;
    out.start = dfa.start;
    out.states.resize(n);
    for (StateId s = 0; s < n; ++s) {
        AdfaState &st = out.states[s];
        st.accept = dfa.accept[s];
        st.deflt = parent[s];
        for (unsigned c = 0; c < 256; ++c) {
            const StateId t = dfa.next[s][c];
            if (t == kNoState)
                continue;
            if (parent[s] != kNoState &&
                dfa.next[parent[s]][c] == t)
                continue; // covered by the default parent
            st.arcs.emplace_back(static_cast<std::uint8_t>(c), t);
        }
    }
    return out;
}

} // namespace udp
