/**
 * @file
 * aDFA: DFA with default-transition compression (the D2FA-flavored
 * "ADFA [66]" model the paper's pattern-matching evaluation uses).
 *
 * Each state keeps only the byte transitions that differ from its default
 * parent; a miss follows the default arc *without consuming the symbol*
 * (realized on the UDP with a `default` transition whose action refills
 * the symbol).  Compression trades memory for extra dispatches per
 * symbol, bounded by the chosen maximum default-chain depth.
 */
#pragma once

#include "dfa.hpp"

namespace udp {

/// aDFA state: residual arcs plus a default parent.
struct AdfaState {
    /// Explicit arcs: (byte, target). Sorted by byte.
    std::vector<std::pair<std::uint8_t, StateId>> arcs;
    StateId deflt = kNoState; ///< default parent (kNoState = none)
    std::int32_t accept = -1;
};

struct Adfa {
    std::vector<AdfaState> states;
    StateId start = 0;

    std::size_t size() const { return states.size(); }
    /// Total explicit arcs (the memory the compression saves).
    std::size_t arc_count() const;
    /// Matching (CPU model); identical results to the source DFA.
    std::uint64_t count_matches(BytesView input) const;
};

/**
 * Build an aDFA from a DFA.
 *
 * @param max_depth  bound on default-chain length (root depth 0);
 *                   2-4 are typical sweet spots.
 */
Adfa build_adfa(const Dfa &dfa, unsigned max_depth = 3);

} // namespace udp
