/**
 * @file
 * Nondeterministic finite automata: Thompson construction from regex
 * ASTs, multi-pattern union, epsilon elimination, and matching (used both
 * as a CPU baseline component and as input to DFA construction and the
 * UDP NFA compiler).
 */
#pragma once

#include "charclass.hpp"
#include "regex.hpp"

#include <vector>

namespace udp {

/// One NFA state.
struct NfaState {
    /// Byte transitions: (class, target).
    std::vector<std::pair<CharClass, StateId>> arcs;
    /// Epsilon transitions.
    std::vector<StateId> eps;
    /// Accepting pattern id, or -1.
    std::int32_t accept = -1;
};

/// Thompson-style NFA.
struct Nfa {
    std::vector<NfaState> states;
    StateId start = 0;

    std::size_t size() const { return states.size(); }

    /// Epsilon-closure of `set` (sorted, deduplicated), appended in place.
    void closure(std::vector<StateId> &set) const;

    /// Match positions: returns the number of (unanchored) matches and
    /// optionally collects the pattern id per match-end offset.
    std::uint64_t count_matches(
        BytesView input,
        std::vector<std::pair<std::size_t, std::int32_t>> *hits =
            nullptr) const;
};

/**
 * Build an NFA for one pattern. The automaton is implicitly unanchored:
 * the start state self-loops on every byte ("/.*pattern/" semantics).
 */
Nfa build_nfa(const RegexNode &ast, std::int32_t pattern_id = 0,
              bool unanchored = true);

/// Union of several patterns into one NFA (shared unanchored start).
Nfa build_multi_nfa(const std::vector<const RegexNode *> &asts,
                    bool unanchored = true);

/**
 * Epsilon-eliminated copy: every state's arcs go directly to byte states;
 * states unreachable afterwards are dropped.  Multi-target-per-symbol is
 * preserved (the compiler introduces split states for the UDP).
 */
Nfa eliminate_epsilon(const Nfa &nfa);

} // namespace udp
