/**
 * @file
 * Deterministic finite automata: subset construction, Moore minimization,
 * and table-driven matching (the CPU pattern-matching baseline and input
 * to the UDP DFA/aDFA compilers).
 */
#pragma once

#include "nfa.hpp"

#include <array>
#include <vector>

namespace udp {

/// Dense-table DFA over the byte alphabet.
struct Dfa {
    /// next[state][byte]; kNoState = dead (reject).
    std::vector<std::array<StateId, 256>> next;
    /// Accepting pattern id per state, or -1.
    std::vector<std::int32_t> accept;
    StateId start = 0;

    std::size_t size() const { return next.size(); }

    /// Count unanchored matches (one per input position whose state
    /// accepts); table-walk per byte, the classic lookup-table approach
    /// whose poor locality Table 2 documents.
    std::uint64_t count_matches(BytesView input) const;
};

/// Subset construction (handles epsilon via NFA closure).
Dfa determinize(const Nfa &nfa, std::size_t max_states = 1u << 16);

/// Moore partition-refinement minimization (distinguishes pattern ids).
Dfa minimize(const Dfa &dfa);

} // namespace udp
