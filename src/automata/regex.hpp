/**
 * @file
 * A small regular-expression parser for the pattern-matching workloads
 * (paper Sections 2.1 and 5.3; substitutes for Boost.Regex on the CPU
 * side and feeds the NFA/DFA/aDFA pipeline on the UDP side).
 *
 * Supported syntax: literals, '\\' escapes (\n \r \t \0 \xHH \d \D \w \W
 * \s \S), '.', character classes [a-z0-9^-], alternation '|', grouping
 * '()', and the quantifiers '*', '+', '?', '{m}', '{m,}', '{m,n}'.
 * Matching is unanchored byte matching (NIDS style).
 */
#pragma once

#include "charclass.hpp"
#include "core/types.hpp"

#include <memory>
#include <string>
#include <vector>

namespace udp {

/// Regex AST node.
struct RegexNode {
    enum class Kind {
        Class,   ///< one symbol from `cls`
        Concat,  ///< children in sequence
        Alt,     ///< one of the children
        Repeat,  ///< child repeated min..max times (max<0 = unbounded)
        Empty,   ///< epsilon
    };

    Kind kind = Kind::Empty;
    CharClass cls;
    std::vector<std::unique_ptr<RegexNode>> children;
    int min = 0, max = 0;
};

/// Parse `pattern`; throws UdpError with a position on syntax errors.
std::unique_ptr<RegexNode> parse_regex(const std::string &pattern);

/// Convenience: a regex AST matching the literal string exactly.
std::unique_ptr<RegexNode> literal_regex(const std::string &text);

} // namespace udp
