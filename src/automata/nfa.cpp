/**
 * @file
 * NFA construction and simulation.
 */
#include "nfa.hpp"

#include <algorithm>
#include <map>

namespace udp {

namespace {

/// Thompson fragment: entry state and a list of dangling exits that the
/// caller patches to the next fragment's entry (via epsilon).
struct Frag {
    StateId entry;
    std::vector<StateId> exits; ///< states whose eps list gets the next id
};

class Builder
{
  public:
    explicit Builder(Nfa &nfa) : nfa_(nfa) {}

    StateId new_state() {
        nfa_.states.emplace_back();
        return static_cast<StateId>(nfa_.states.size() - 1);
    }

    void patch(const Frag &f, StateId to) {
        for (const StateId s : f.exits)
            nfa_.states[s].eps.push_back(to);
    }

    Frag build(const RegexNode &n) {
        switch (n.kind) {
          case RegexNode::Kind::Empty: {
            const StateId s = new_state();
            return {s, {s}};
          }
          case RegexNode::Kind::Class: {
            const StateId a = new_state();
            const StateId b = new_state();
            nfa_.states[a].arcs.emplace_back(n.cls, b);
            return {a, {b}};
          }
          case RegexNode::Kind::Concat: {
            Frag first = build(*n.children.front());
            Frag cur = first;
            for (std::size_t i = 1; i < n.children.size(); ++i) {
                Frag nxt = build(*n.children[i]);
                patch(cur, nxt.entry);
                cur = nxt;
            }
            return {first.entry, cur.exits};
          }
          case RegexNode::Kind::Alt: {
            const StateId fork = new_state();
            Frag out{fork, {}};
            for (const auto &c : n.children) {
                Frag f = build(*c);
                nfa_.states[fork].eps.push_back(f.entry);
                out.exits.insert(out.exits.end(), f.exits.begin(),
                                 f.exits.end());
            }
            return out;
          }
          case RegexNode::Kind::Repeat: {
            // Expand {m,n} by duplication; '*' as a loop node.
            const int min = n.min;
            const int max = n.max;
            const RegexNode &child = *n.children.front();

            const StateId entry = new_state();
            Frag cur{entry, {entry}};
            for (int i = 0; i < min; ++i) {
                Frag f = build(child);
                patch(cur, f.entry);
                cur = f;
            }
            if (max < 0) {
                // Unbounded tail: loop fragment.
                const StateId loop = new_state();
                patch(cur, loop);
                Frag body = build(child);
                nfa_.states[loop].eps.push_back(body.entry);
                patch(body, loop);
                return {entry, {loop}};
            }
            std::vector<StateId> exits = cur.exits;
            for (int i = min; i < max; ++i) {
                Frag f = build(child);
                patch(cur, f.entry);
                cur = f;
                exits.insert(exits.end(), f.exits.begin(), f.exits.end());
            }
            return {entry, exits};
          }
        }
        throw UdpError("NFA: bad regex node");
    }

  private:
    Nfa &nfa_;
};

} // namespace

void
Nfa::closure(std::vector<StateId> &set) const
{
    std::vector<bool> seen(states.size(), false);
    for (const StateId s : set)
        seen[s] = true;
    for (std::size_t i = 0; i < set.size(); ++i) {
        for (const StateId t : states[set[i]].eps) {
            if (!seen[t]) {
                seen[t] = true;
                set.push_back(t);
            }
        }
    }
    std::sort(set.begin(), set.end());
}

std::uint64_t
Nfa::count_matches(
    BytesView input,
    std::vector<std::pair<std::size_t, std::int32_t>> *hits) const
{
    std::uint64_t count = 0;
    std::vector<StateId> cur{start}, nxt;
    closure(cur);
    std::vector<std::uint32_t> stamp(states.size(), 0);
    std::uint32_t gen = 0;

    for (std::size_t pos = 0; pos < input.size(); ++pos) {
        const std::uint8_t c = input[pos];
        nxt.clear();
        ++gen;
        for (const StateId s : cur) {
            for (const auto &[cls, t] : states[s].arcs) {
                if (cls.test(c) && stamp[t] != gen) {
                    stamp[t] = gen;
                    nxt.push_back(t);
                }
            }
        }
        closure(nxt);
        for (const StateId s : nxt)
            stamp[s] = gen; // keep stamps consistent after closure
        cur = nxt;
        for (const StateId s : cur) {
            if (states[s].accept >= 0) {
                ++count;
                if (hits)
                    hits->emplace_back(pos + 1, states[s].accept);
            }
        }
        if (cur.empty())
            break; // anchored automata can die
    }
    return count;
}

Nfa
build_nfa(const RegexNode &ast, std::int32_t pattern_id, bool unanchored)
{
    Nfa nfa;
    Builder b(nfa);
    const StateId start = b.new_state();
    nfa.start = start;
    if (unanchored)
        nfa.states[start].arcs.emplace_back(CharClass::any(), start);
    Frag f = b.build(ast);
    nfa.states[start].eps.push_back(f.entry);
    const StateId acc = b.new_state();
    nfa.states[acc].accept = pattern_id;
    b.patch(f, acc);
    return nfa;
}

Nfa
build_multi_nfa(const std::vector<const RegexNode *> &asts, bool unanchored)
{
    Nfa nfa;
    Builder b(nfa);
    const StateId start = b.new_state();
    nfa.start = start;
    if (unanchored)
        nfa.states[start].arcs.emplace_back(CharClass::any(), start);
    for (std::size_t i = 0; i < asts.size(); ++i) {
        Frag f = b.build(*asts[i]);
        nfa.states[start].eps.push_back(f.entry);
        const StateId acc = b.new_state();
        nfa.states[acc].accept = static_cast<std::int32_t>(i);
        b.patch(f, acc);
    }
    return nfa;
}

Nfa
eliminate_epsilon(const Nfa &in)
{
    // For each state: arcs = union over closure(state) of byte arcs;
    // accept = any accept in closure.
    const std::size_t n = in.states.size();
    std::vector<std::vector<StateId>> clo(n);
    for (StateId s = 0; s < n; ++s) {
        clo[s] = {s};
        in.closure(clo[s]);
    }

    Nfa out;
    out.states.resize(n);
    out.start = in.start;
    for (StateId s = 0; s < n; ++s) {
        auto &st = out.states[s];
        for (const StateId c : clo[s]) {
            if (in.states[c].accept >= 0 &&
                (st.accept < 0 || in.states[c].accept < st.accept))
                st.accept = in.states[c].accept;
            for (const auto &arc : in.states[c].arcs)
                st.arcs.push_back(arc);
        }
    }

    // Drop states unreachable through byte arcs from the start.
    std::vector<StateId> order;
    std::vector<StateId> remap(n, kNoState);
    order.push_back(out.start);
    remap[out.start] = 0;
    for (std::size_t i = 0; i < order.size(); ++i) {
        for (const auto &[cls, t] : out.states[order[i]].arcs) {
            (void)cls;
            if (remap[t] == kNoState) {
                remap[t] = static_cast<StateId>(order.size());
                order.push_back(t);
            }
        }
    }

    Nfa packed;
    packed.start = 0;
    packed.states.resize(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        const NfaState &src = out.states[order[i]];
        NfaState &dst = packed.states[i];
        dst.accept = src.accept;
        for (const auto &[cls, t] : src.arcs)
            dst.arcs.emplace_back(cls, remap[t]);
    }
    return packed;
}

} // namespace udp
