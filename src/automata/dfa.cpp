/**
 * @file
 * Subset construction and minimization.
 */
#include "dfa.hpp"

#include <algorithm>
#include <map>
#include <numeric>

namespace udp {

std::uint64_t
Dfa::count_matches(BytesView input) const
{
    std::uint64_t count = 0;
    StateId s = start;
    for (const std::uint8_t c : input) {
        s = next[s][c];
        if (s == kNoState)
            s = start; // unanchored automata are total in practice
        else if (accept[s] >= 0)
            ++count;
    }
    return count;
}

Dfa
determinize(const Nfa &nfa, std::size_t max_states)
{
    Dfa dfa;
    std::map<std::vector<StateId>, StateId> ids;

    std::vector<StateId> start_set{nfa.start};
    nfa.closure(start_set);

    std::vector<std::vector<StateId>> work;
    ids.emplace(start_set, 0);
    work.push_back(start_set);
    dfa.next.emplace_back();
    dfa.next.back().fill(kNoState);
    dfa.accept.push_back(-1);

    auto accept_of = [&](const std::vector<StateId> &set) {
        std::int32_t best = -1;
        for (const StateId s : set) {
            const auto a = nfa.states[s].accept;
            if (a >= 0 && (best < 0 || a < best))
                best = a;
        }
        return best;
    };
    dfa.accept[0] = accept_of(start_set);

    for (std::size_t w = 0; w < work.size(); ++w) {
        const std::vector<StateId> set = work[w];
        // Group targets per byte.
        std::array<std::vector<StateId>, 256> tgt;
        for (const StateId s : set) {
            for (const auto &[cls, t] : nfa.states[s].arcs)
                for (unsigned c = 0; c < 256; ++c)
                    if (cls.test(static_cast<std::uint8_t>(c)))
                        tgt[c].push_back(t);
        }
        for (unsigned c = 0; c < 256; ++c) {
            auto &v = tgt[c];
            if (v.empty())
                continue;
            std::sort(v.begin(), v.end());
            v.erase(std::unique(v.begin(), v.end()), v.end());
            nfa.closure(v);
            v.erase(std::unique(v.begin(), v.end()), v.end());
            auto [it, inserted] =
                ids.emplace(v, static_cast<StateId>(dfa.next.size()));
            if (inserted) {
                if (dfa.next.size() >= max_states)
                    throw UdpError("determinize: state explosion (over " +
                                   std::to_string(max_states) + ")");
                dfa.next.emplace_back();
                dfa.next.back().fill(kNoState);
                dfa.accept.push_back(accept_of(v));
                work.push_back(v);
            }
            dfa.next[w][c] = it->second;
        }
    }
    return dfa;
}

Dfa
minimize(const Dfa &in)
{
    const std::size_t n = in.size();
    // Initial partition by accept id (dead state handled via kNoState).
    std::vector<std::int32_t> cls(n);
    std::map<std::int32_t, std::int32_t> accept_cls;
    std::int32_t num_cls = 0;
    for (std::size_t s = 0; s < n; ++s) {
        auto [it, inserted] = accept_cls.emplace(in.accept[s], num_cls);
        if (inserted)
            ++num_cls;
        cls[s] = it->second;
    }

    // Moore refinement until stable.
    for (;;) {
        std::map<std::vector<std::int32_t>, std::int32_t> sig_ids;
        std::vector<std::int32_t> next_cls(n);
        std::int32_t next_num = 0;
        for (std::size_t s = 0; s < n; ++s) {
            std::vector<std::int32_t> sig;
            sig.reserve(257);
            sig.push_back(cls[s]);
            for (unsigned c = 0; c < 256; ++c) {
                const StateId t = in.next[s][c];
                sig.push_back(t == kNoState ? -1 : cls[t]);
            }
            auto [it, inserted] = sig_ids.emplace(std::move(sig), next_num);
            if (inserted)
                ++next_num;
            next_cls[s] = it->second;
        }
        if (next_num == num_cls) {
            cls = std::move(next_cls);
            break;
        }
        cls = std::move(next_cls);
        num_cls = next_num;
    }

    // Rebuild with start's class first.
    std::vector<StateId> rep(num_cls, kNoState);
    for (std::size_t s = 0; s < n; ++s)
        if (rep[cls[s]] == kNoState)
            rep[cls[s]] = static_cast<StateId>(s);

    // Remap classes so that the start state is state 0.
    std::vector<StateId> order(num_cls);
    std::iota(order.begin(), order.end(), 0);
    std::swap(order[0], order[cls[in.start]]);
    std::vector<StateId> pos(num_cls);
    for (std::int32_t i = 0; i < num_cls; ++i)
        pos[order[i]] = static_cast<StateId>(i);

    Dfa out;
    out.start = 0;
    out.next.resize(num_cls);
    out.accept.resize(num_cls);
    for (std::int32_t k = 0; k < num_cls; ++k) {
        const StateId s = rep[order[k]];
        out.accept[k] = in.accept[s];
        for (unsigned c = 0; c < 256; ++c) {
            const StateId t = in.next[s][c];
            out.next[k][c] =
                t == kNoState ? kNoState : pos[cls[t]];
        }
    }
    return out;
}

} // namespace udp
