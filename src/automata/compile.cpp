/**
 * @file
 * FA -> UDP program compilers.
 */
#include "compile.hpp"

#include <algorithm>
#include <map>

namespace udp {

namespace {

/// Accept-action block for a pattern id (deduplicated by the builder).
BlockId
accept_block(ProgramBuilder &b, std::int32_t id,
             std::map<std::int32_t, BlockId> &cache)
{
    auto it = cache.find(id);
    if (it != cache.end())
        return it->second;
    const BlockId blk =
        b.add_block({act_imm(Opcode::Accept, 0, 0, id, true)});
    cache.emplace(id, blk);
    return blk;
}

} // namespace

Program
compile_dfa(const Dfa &dfa, const DfaCompileOptions &opts)
{
    ProgramBuilder b;
    std::vector<StateId> ids(dfa.size());
    for (std::size_t s = 0; s < dfa.size(); ++s)
        ids[s] = b.add_state();

    std::map<std::int32_t, BlockId> acc_blocks;

    for (std::size_t s = 0; s < dfa.size(); ++s) {
        // Count (target, accept-id) popularity for majority folding.
        std::map<StateId, unsigned> popularity;
        for (unsigned c = 0; c < 256; ++c) {
            const StateId t = dfa.next[s][c];
            if (t != kNoState)
                ++popularity[t];
        }
        StateId maj = kNoState;
        unsigned maj_count = 0;
        if (opts.majority_threshold > 0) {
            for (const auto &[t, n] : popularity) {
                if (n > maj_count) {
                    maj = t;
                    maj_count = n;
                }
            }
            if (maj_count < opts.majority_threshold)
                maj = kNoState;
        }

        auto arc_block = [&](StateId t) {
            return dfa.accept[t] >= 0
                       ? accept_block(b, dfa.accept[t], acc_blocks)
                       : kNoBlock;
        };

        for (unsigned c = 0; c < 256; ++c) {
            const StateId t = dfa.next[s][c];
            if (t == kNoState || t == maj)
                continue;
            b.on_symbol(ids[s], c, ids[t], arc_block(t));
        }
        if (maj != kNoState)
            b.on_majority(ids[s], ids[maj], arc_block(maj));
    }

    b.set_entry(ids[dfa.start]);
    b.set_initial_symbol_bits(8);
    return b.build(opts.layout);
}

Program
compile_adfa(const Adfa &adfa, const LayoutOptions &layout)
{
    ProgramBuilder b;
    std::vector<StateId> ids(adfa.size());
    for (std::size_t s = 0; s < adfa.size(); ++s)
        ids[s] = b.add_state();

    std::map<std::int32_t, BlockId> acc_blocks;
    // Non-consuming default: push the 8-bit symbol back, then the parent
    // re-dispatches it (one shared block).
    const BlockId push_back =
        b.add_block({act_imm(Opcode::Refill, 0, 0, 8, true)});

    for (std::size_t s = 0; s < adfa.size(); ++s) {
        const AdfaState &st = adfa.states[s];
        for (const auto &[c, t] : st.arcs) {
            const BlockId blk =
                adfa.states[t].accept >= 0
                    ? accept_block(b, adfa.states[t].accept, acc_blocks)
                    : kNoBlock;
            b.on_symbol(ids[s], c, ids[t], blk);
        }
        if (st.deflt != kNoState)
            b.on_default(ids[s], ids[st.deflt], push_back);
    }

    b.set_entry(ids[adfa.start]);
    b.set_initial_symbol_bits(8);
    return b.build(layout);
}

Program
compile_nfa(const Nfa &nfa, const LayoutOptions &layout)
{
    ProgramBuilder b;
    std::vector<StateId> ids(nfa.size());
    for (std::size_t s = 0; s < nfa.size(); ++s)
        ids[s] = b.add_state();

    std::map<std::int32_t, BlockId> acc_blocks;
    // Split states shared by target set.
    std::map<std::vector<StateId>, StateId> splits;

    auto arc_accept = [&](StateId t) {
        return nfa.states[t].accept >= 0
                   ? accept_block(b, nfa.states[t].accept, acc_blocks)
                   : kNoBlock;
    };

    for (std::size_t s = 0; s < nfa.size(); ++s) {
        // Gather per-byte target sets.
        std::array<std::vector<StateId>, 256> tgt;
        for (const auto &[cls, t] : nfa.states[s].arcs)
            for (unsigned c = 0; c < 256; ++c)
                if (cls.test(static_cast<std::uint8_t>(c)))
                    tgt[c].push_back(t);

        for (unsigned c = 0; c < 256; ++c) {
            auto &v = tgt[c];
            if (v.empty())
                continue;
            std::sort(v.begin(), v.end());
            v.erase(std::unique(v.begin(), v.end()), v.end());
            if (v.size() == 1) {
                b.on_symbol(ids[s], c, ids[v[0]], arc_accept(v[0]));
                continue;
            }
            auto [it, inserted] = splits.emplace(v, kNoState);
            if (inserted) {
                const StateId sp = b.add_state();
                it->second = sp;
                for (const StateId t : v)
                    b.on_epsilon(sp, ids[t], arc_accept(t));
            }
            b.on_symbol(ids[s], c, it->second);
        }
    }

    b.set_entry(ids[nfa.start]);
    b.set_initial_symbol_bits(8);
    return b.build(layout);
}

} // namespace udp
