/**
 * @file
 * Loaded UDP program image.
 *
 * A program is a dispatch-memory image (32-bit transition words laid out by
 * EffCLiP), an action-memory image (32-bit action words), and a *state
 * directory*.  The directory is the loader-side equivalent of the type
 * information the UDP assembler back-propagates along dispatch arcs
 * (Section 3.2.1): per state it records the dispatch source (stream buffer
 * vs scalar register r0) and the extent of the state's auxiliary transition
 * chain.  It is derived at assembly time and carries no information that is
 * not also recoverable from the memory image plus arc back-propagation.
 *
 * Layout ABI (produced by EffCLiP, consumed by the Lane):
 *  - A state is identified by the word address `base` of its labeled table.
 *  - Labeled (and refill-labeled) transitions live at `base + symbol`.
 *  - The state's expected signature is `base & 0xFF`; EffCLiP guarantees
 *    that any two states whose slot ranges overlap have different
 *    signatures, making `base + symbol` a perfect hash with an 8-bit check.
 *  - Auxiliary transitions (majority, default, common, epsilon) occupy
 *    `base-1 .. base-aux_count`, highest priority first.
 */
#pragma once

#include "isa.hpp"
#include "local_memory.hpp"
#include "types.hpp"

#include <cstdint>
#include <vector>

namespace udp {

/// Per-state metadata (the back-propagated arc information).
///
/// `base` is the *full* word address of the labeled-table origin.  In the
/// 12-bit `target` field of encoded transitions, the window-relative value
/// `base - dispatch_window_base` is stored; the lane adds its dispatch
/// window base back when following the arc (multi-bank programs switch
/// windows with the Setbase action, paper Section 5.7).
struct StateMeta {
    std::uint32_t base = 0;  ///< full word address of the labeled table
    bool reg_source = false; ///< dispatch symbol comes from r0, not stream
    std::uint8_t aux_count = 0; ///< words in the auxiliary chain at base-1..
    std::uint16_t max_symbol = 255; ///< largest labeled slot offset in use
};

/// Expected signature for a state at full word address `base`.
inline std::uint8_t
state_signature(std::uint32_t base)
{
    return static_cast<std::uint8_t>(base & 0xFF);
}

/// Statistics the assembler records about the layout (Fig 5c, Fig 8).
struct LayoutStats {
    std::size_t dispatch_words = 0;  ///< total laid-out dispatch extent
    std::size_t used_words = 0;      ///< occupied transition slots
    std::size_t action_words = 0;    ///< action-memory footprint
    std::size_t num_states = 0;
    std::size_t num_transitions = 0; ///< logical transitions (pre-layout)

    /// Total code bytes (dispatch + action words, 4 bytes each).
    std::size_t code_bytes() const {
        return 4 * (dispatch_words + action_words);
    }
    /// Packing density of the dispatch region.
    double fill_ratio() const {
        return dispatch_words ? double(used_words) / dispatch_words : 1.0;
    }
};

/**
 * A complete loadable UDP program.
 */
struct Program {
    std::vector<Word> dispatch;   ///< transition words (EffCLiP layout)
    std::vector<Word> actions;    ///< action words; direct refs hit 0..254
    std::vector<StateMeta> states;
    std::uint32_t entry = 0;      ///< full base of the start state
    unsigned initial_symbol_bits = 8;
    AddressingMode addressing = AddressingMode::Restricted;
    LayoutStats layout;

    /// Loader-applied lane configuration (the assembler's init block):
    /// scaled-offset action window and the entry state's dispatch window.
    std::uint32_t init_action_base = 0;  ///< action words
    unsigned init_action_scale = 0;
    std::uint32_t init_dispatch_base = 0; ///< dispatch words

    /// Validate internal consistency; throws UdpError with a reason.
    void validate() const;

    /// Lookup of state metadata by base address; nullptr when unknown.
    const StateMeta *find_state(std::size_t base) const;

    /// Build the base -> state index (called by validate()/loaders).
    void index_states();

  private:
    std::vector<std::int32_t> by_base_; ///< base -> index into states
};

} // namespace udp
