/**
 * @file
 * Execution statistics for lanes and the whole UDP.
 *
 * The cycle model (calibrated to the paper's 1 GHz lane, Section 6):
 *   - 1 cycle per multi-way dispatch;
 *   - +1 cycle when the labeled-slot signature check fails and the
 *     auxiliary chain is consulted (majority/default fallback);
 *   - 1 cycle per action; loop-compare / loop-copy cost 1 + ceil(n/8)
 *     (8-byte lane datapath);
 *   - local-memory accesses add bank-conflict stalls as arbitrated.
 */
#pragma once

#include "types.hpp"

namespace udp {

/**
 * Bytes/second implied by processing `bytes` in `cycles` at the nominal
 * 1 GHz clock (kClockHz).  Shared by LaneStats::rate_mbps() and
 * MachineResult::throughput_mbps() so the clock math lives in one place.
 */
inline double
bytes_per_second(double bytes, Cycles cycles)
{
    if (cycles == 0)
        return 0.0;
    return bytes / (double(cycles) / kClockHz);
}

/// Counters for one lane (reset per run).
struct LaneStats {
    Cycles cycles = 0;
    std::uint64_t dispatches = 0;
    std::uint64_t sig_misses = 0;   ///< aux-chain fallbacks taken
    std::uint64_t actions = 0;
    std::uint64_t mem_reads = 0;    ///< local-memory data references
    std::uint64_t mem_writes = 0;
    std::uint64_t dispatch_reads = 0; ///< transition/action word fetches
    std::uint64_t stall_cycles = 0; ///< bank-conflict stalls
    std::uint64_t stream_bits = 0;  ///< input consumed
    std::uint64_t output_bytes = 0;
    std::uint64_t accepts = 0;

    /// Field-wise equality (the predecode equivalence contract).
    bool operator==(const LaneStats &) const = default;

    void add(const LaneStats &o) {
        cycles += o.cycles;
        dispatches += o.dispatches;
        sig_misses += o.sig_misses;
        actions += o.actions;
        mem_reads += o.mem_reads;
        mem_writes += o.mem_writes;
        dispatch_reads += o.dispatch_reads;
        stall_cycles += o.stall_cycles;
        stream_bits += o.stream_bits;
        output_bytes += o.output_bytes;
        accepts += o.accepts;
    }

    /// Input bytes consumed.
    double input_bytes() const { return double(stream_bits) / 8.0; }

    /// Single-stream processing rate in MB/s at the nominal clock.
    double rate_mbps() const {
        return bytes_per_second(input_bytes(), cycles) / 1e6;
    }
};

} // namespace udp
