/**
 * @file
 * Stream buffer implementation.
 */
#include "stream_buffer.hpp"

#include "fault.hpp"

namespace udp {

void
StreamBuffer::attach(BytesView data)
{
    data_ = data;
    size_bits_ = static_cast<std::uint64_t>(data.size()) * 8;
    pos_bits_ = 0;
}

Word
StreamBuffer::read(unsigned width)
{
    const Word v = peek(width);
    pos_bits_ += width;
    return v;
}

Word
StreamBuffer::peek(unsigned width) const
{
    if (width == 0 || width > 32)
        throw UdpFaultError(FaultCode::BadAction,
                            "StreamBuffer: symbol width must be 1..32");
    if (remaining_bits() < width)
        throw UdpFaultError(FaultCode::FetchOutOfRange,
                            "StreamBuffer: read past end of stream");

    // MSB-first within the byte stream: bit 0 of the stream is the MSB of
    // byte 0.  Gather up to 5 bytes covering [pos, pos+width).
    Word out = 0;
    std::uint64_t p = pos_bits_;
    unsigned need = width;
    while (need > 0) {
        const std::uint64_t byte = p / 8;
        const unsigned bit_in_byte = static_cast<unsigned>(p % 8);
        const unsigned avail = 8 - bit_in_byte;
        const unsigned take = avail < need ? avail : need;
        const unsigned shift = avail - take;
        const Word chunk = (data_[byte] >> shift) & ((1u << take) - 1);
        out = (out << take) | chunk;
        p += take;
        need -= take;
    }
    return out;
}

void
StreamBuffer::skip(std::uint64_t nbits)
{
    if (remaining_bits() < nbits)
        throw UdpFaultError(FaultCode::FetchOutOfRange,
                            "StreamBuffer: skip past end of stream");
    pos_bits_ += nbits;
}

void
StreamBuffer::refill(std::uint64_t nbits)
{
    if (nbits > pos_bits_)
        throw UdpFaultError(FaultCode::FetchOutOfRange,
                            "StreamBuffer: refill past start of stream");
    pos_bits_ -= nbits;
}

void
StreamBuffer::seek_bits(std::uint64_t bit_pos)
{
    if (bit_pos > size_bits_)
        throw UdpFaultError(FaultCode::FetchOutOfRange,
                            "StreamBuffer: seek past end of stream");
    pos_bits_ = bit_pos;
}

} // namespace udp
