/**
 * @file
 * Machine implementation: job assignment and the two run harnesses.
 */
#include "machine.hpp"

#include "profile.hpp"
#include "trace.hpp"

#include <algorithm>

namespace udp {

Machine::Machine(AddressingMode mode) : mem_(mode)
{
    lanes_.reserve(kNumLanes);
    for (unsigned i = 0; i < kNumLanes; ++i)
        lanes_.push_back(std::make_unique<Lane>(i, mem_));
}

Lane &
Machine::lane(unsigned idx)
{
    if (idx >= lanes_.size())
        throw UdpError("Machine: lane index out of range");
    return *lanes_[idx];
}

void
Machine::set_tracer(Tracer *t)
{
    tracer_ = t;
    for (auto &ln : lanes_)
        ln->set_tracer(t);
}

void
Machine::set_profiler(Profiler *p)
{
    profiler_ = p;
    for (auto &ln : lanes_)
        ln->set_profiler(p);
}

void
Machine::stage(ByteAddr phys, BytesView data)
{
    if (std::uint64_t{phys} + data.size() > mem_.raw().size())
        throw UdpError("Machine: stage outside local memory");
    std::copy(data.begin(), data.end(), mem_.raw().begin() + phys);
}

Bytes
Machine::unstage(ByteAddr phys, std::size_t len) const
{
    if (std::uint64_t{phys} + len > mem_.raw().size())
        throw UdpError("Machine: unstage outside local memory");
    return Bytes(mem_.raw().begin() + phys,
                 mem_.raw().begin() + phys + len);
}

void
Machine::assign(std::vector<JobSpec> jobs)
{
    if (jobs.size() > kNumLanes)
        throw UdpError("Machine: more jobs than lanes");
    jobs_ = std::move(jobs);
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        const JobSpec &j = jobs_[i];
        if (!j.program)
            continue;
        Lane &ln = *lanes_[i];
        ln.load(*j.program);
        ln.set_input(j.input);
        ln.set_window_base(j.window_base);
        for (const auto &[r, v] : j.init_regs)
            ln.set_reg(r, v);
    }
}

MachineResult
Machine::collect(Cycles wall)
{
    MachineResult res;
    res.wall_cycles = wall;
    res.status.resize(jobs_.size(), LaneStatus::Done);
    AddressingMode mode = mem_.mode();
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        if (!jobs_[i].program)
            continue;
        res.total.add(lanes_[i]->stats());
        ++res.active_lanes;
    }
    last_energy_j_ = run_energy_joules(cost_, res.total, wall,
                                       res.active_lanes, mode);
    return res;
}

MachineResult
Machine::run_parallel(std::uint64_t max_cycles_per_lane)
{
    Cycles wall = 0;
    std::vector<LaneStatus> status(jobs_.size(), LaneStatus::Done);
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        const JobSpec &j = jobs_[i];
        if (!j.program)
            continue;
        Lane &ln = *lanes_[i];
        ln.set_arbiter(nullptr); // disjoint windows: no contention
        status[i] = j.nfa_mode ? ln.run_nfa(max_cycles_per_lane)
                               : ln.run(max_cycles_per_lane);
        wall = std::max(wall, ln.stats().cycles);
    }
    MachineResult res = collect(wall);
    res.status = std::move(status);
    return res;
}

MachineResult
Machine::run_lockstep(std::uint64_t max_rounds)
{
    BankArbiter arbiter;
    std::vector<bool> done(jobs_.size(), true);
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        if (!jobs_[i].program)
            continue;
        if (jobs_[i].nfa_mode)
            throw UdpError("Machine: lockstep NFA mode is unsupported");
        done[i] = false;
        lanes_[i]->set_arbiter(
            [&arbiter](unsigned bank, bool is_write) {
                return arbiter.request(bank, is_write);
            });
    }

    std::vector<LaneStatus> status(jobs_.size(), LaneStatus::Done);
    std::uint64_t rounds = 0;
    bool any = true;
    while (any && rounds < max_rounds) {
        any = false;
        arbiter.begin_cycle();
        for (std::size_t i = 0; i < jobs_.size(); ++i) {
            if (done[i])
                continue;
            const LaneStatus st = lanes_[i]->run_steps(1);
            if (st != LaneStatus::Running) {
                done[i] = true;
                status[i] = st;
            } else {
                any = true;
            }
        }
        ++rounds;
    }

    Cycles wall = 0;
    for (std::size_t i = 0; i < jobs_.size(); ++i)
        if (jobs_[i].program)
            wall = std::max(wall, lanes_[i]->stats().cycles);

    MachineResult res = collect(wall);
    res.status = std::move(status);
    return res;
}

} // namespace udp
