/**
 * @file
 * Machine implementation: job assignment and the two run harnesses.
 */
#include "machine.hpp"

#include "profile.hpp"
#include "threaded_program.hpp"
#include "trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

namespace udp {

Machine::Machine(AddressingMode mode) : mem_(mode)
{
    lanes_.reserve(kNumLanes);
    for (unsigned i = 0; i < kNumLanes; ++i)
        lanes_.push_back(std::make_unique<Lane>(i, mem_));
}

Lane &
Machine::lane(unsigned idx)
{
    if (idx >= lanes_.size())
        throw UdpError("Machine: lane index out of range");
    return *lanes_[idx];
}

void
Machine::set_tracer(Tracer *t)
{
    tracer_ = t;
    for (auto &ln : lanes_)
        ln->set_tracer(t);
}

void
Machine::set_profiler(Profiler *p)
{
    profiler_ = p;
    for (auto &ln : lanes_)
        ln->set_profiler(p);
}

void
Machine::stage(ByteAddr phys, BytesView data)
{
    if (std::uint64_t{phys} + data.size() > mem_.raw().size())
        throw UdpError("Machine: stage outside local memory");
    std::copy(data.begin(), data.end(), mem_.raw().begin() + phys);
}

Bytes
Machine::unstage(ByteAddr phys, std::size_t len) const
{
    Bytes out;
    unstage(phys, len, out);
    return out;
}

void
Machine::unstage(ByteAddr phys, std::size_t len, Bytes &out) const
{
    if (std::uint64_t{phys} + len > mem_.raw().size())
        throw UdpError("Machine: unstage outside local memory");
    out.assign(mem_.raw().begin() + phys, mem_.raw().begin() + phys + len);
}

unsigned
Machine::resolved_sim_threads() const
{
    // The Profiler aggregates into maps shared by all lanes, so a
    // profiled run is pinned to the serial backend (docs/RUNTIME.md);
    // the Tracer's per-lane rings need no such fallback.
    if (profiler_)
        return 1;
    unsigned n = sim_threads_;
    if (n == 0) {
        if (const char *env = std::getenv("UDP_SIM_THREADS")) {
            const long v = std::strtol(env, nullptr, 10);
            if (v > 0)
                n = static_cast<unsigned>(std::min<long>(v, 256));
        }
    }
    return n ? n : 1;
}

void
Machine::assign(std::vector<JobSpec> jobs)
{
    if (jobs.size() > kNumLanes)
        throw UdpError("Machine: more jobs than lanes");
    jobs_ = std::move(jobs);
    // A batch starts from architectural reset on every lane, including
    // idle ones: wave N+1 must not observe wave N's registers, stream
    // position, accepts or window bases.
    for (auto &ln : lanes_)
        ln->hard_reset();
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        const JobSpec &j = jobs_[i];
        if (!j.program)
            continue;
        Lane &ln = *lanes_[i];
        ln.load(*j.program);
        ln.set_input(j.input);
        ln.set_window_base(j.window_base);
        ln.set_forced_trap(j.trap_cycle);
        for (const auto &[r, v] : j.init_regs)
            ln.set_reg(r, v);
    }
}

MachineResult
Machine::collect(Cycles wall)
{
    MachineResult res;
    res.wall_cycles = wall;
    res.status.resize(jobs_.size(), LaneStatus::Done);
    res.faults.resize(jobs_.size());
    AddressingMode mode = mem_.mode();
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        if (!jobs_[i].program)
            continue;
        res.total.add(lanes_[i]->stats());
        res.faults[i] = lanes_[i]->fault();
        ++res.active_lanes;
    }
    last_energy_j_ = run_energy_joules(cost_, res.total, wall,
                                       res.active_lanes, mode);
    return res;
}

void
Machine::rethrow_collected_faults(const MachineResult &res) const
{
    // Deprecated pre-trap-model behavior (set_rethrow_faults): one
    // exception carrying *every* lane fault, lowest lane first — the
    // old harness rethrew only the first collected exception.
    std::string msg;
    FaultCode first = FaultCode::None;
    for (const LaneFault &f : res.faults) {
        if (f.code == FaultCode::None)
            continue;
        if (first == FaultCode::None)
            first = f.code;
        else
            msg += "; ";
        msg += f.describe();
    }
    if (first != FaultCode::None)
        throw UdpFaultError(first, msg);
}

MachineResult
Machine::run_parallel(std::uint64_t max_cycles_per_lane)
{
    std::vector<LaneStatus> status(jobs_.size(), LaneStatus::Done);
    std::vector<std::size_t> runnable;
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        if (!jobs_[i].program)
            continue;
        lanes_[i]->set_arbiter(nullptr); // disjoint windows: no contention
        runnable.push_back(i);
    }

    auto run_lane = [&](std::size_t i) {
        Lane &ln = *lanes_[i];
        const std::uint64_t budget =
            std::min(max_cycles_per_lane, jobs_[i].max_cycles);
        const unsigned id = static_cast<unsigned>(i);
        if (run_observer_)
            run_observer_->on_lane_start(id);
        status[i] = jobs_[i].nfa_mode ? ln.run_nfa(budget)
                                      : ln.run(budget);
        if (run_observer_)
            run_observer_->on_lane_end(id, status[i], ln.stats().cycles);
    };

    unsigned threads = resolved_sim_threads();
    threads = std::min<unsigned>(
        threads, static_cast<unsigned>(std::max<std::size_t>(
                     runnable.size(), 1)));
    if (threads <= 1) {
        // Batch the block-eligible lanes (threaded image bound, DFA
        // mode, no per-lane instrumentation or observer hooks) through
        // the struct-of-arrays runner; everything else runs per-lane.
        LaneBlock blk;
        std::vector<std::size_t> rest;
        for (const std::size_t i : runnable) {
            Lane &ln = *lanes_[i];
            if (!run_observer_ && !jobs_[i].nfa_mode && ln.compiled() &&
                !ln.tracer() && !ln.profiler()) {
                blk.add(&ln, static_cast<std::uint32_t>(i),
                        std::min(max_cycles_per_lane,
                                 jobs_[i].max_cycles),
                        ln.forced_trap_cycle());
            } else {
                rest.push_back(i);
            }
        }
        if (blk.size() != 0)
            ThreadedEngine::run_block(blk);
        for (std::size_t k = 0; k < blk.size(); ++k)
            status[blk.slot[k]] = blk.status[k];
        for (const std::size_t i : rest)
            run_lane(i);
    } else {
        // Lanes are trace-independent and their windows disjoint, so
        // any work distribution yields bit-identical per-lane results.
        // Interpreter faults never unwind out of Lane::run — they land
        // in the per-lane fault record — so an exception here is a
        // host-side bug; it is rethrown lowest-lane-first.
        std::atomic<std::size_t> next{0};
        std::vector<std::exception_ptr> errors(runnable.size());
        {
            std::vector<std::jthread> pool;
            pool.reserve(threads);
            for (unsigned t = 0; t < threads; ++t)
                pool.emplace_back([&] {
                    for (;;) {
                        const std::size_t k =
                            next.fetch_add(1, std::memory_order_relaxed);
                        if (k >= runnable.size())
                            return;
                        try {
                            run_lane(runnable[k]);
                        } catch (...) {
                            errors[k] = std::current_exception();
                        }
                    }
                });
        }
        for (const std::exception_ptr &e : errors)
            if (e)
                std::rethrow_exception(e);
    }

    Cycles wall = 0;
    for (const std::size_t i : runnable)
        wall = std::max(wall, lanes_[i]->stats().cycles);
    MachineResult res = collect(wall);
    res.status = std::move(status);
    if (rethrow_faults_)
        rethrow_collected_faults(res);
    return res;
}

MachineResult
Machine::run_lockstep(std::uint64_t max_rounds)
{
    BankArbiter arbiter;
    std::vector<bool> done(jobs_.size(), true);
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        if (!jobs_[i].program)
            continue;
        if (jobs_[i].nfa_mode)
            throw UdpError("Machine: lockstep NFA mode is unsupported");
        done[i] = false;
        lanes_[i]->set_arbiter(
            [&arbiter](unsigned bank, bool is_write) {
                return arbiter.request(bank, is_write);
            });
    }

    std::vector<LaneStatus> status(jobs_.size(), LaneStatus::Done);
    std::uint64_t rounds = 0;
    bool any = true;
    while (any && rounds < max_rounds) {
        any = false;
        arbiter.begin_cycle();
        for (std::size_t i = 0; i < jobs_.size(); ++i) {
            if (done[i])
                continue;
            // step_once caches the decoded entry of the next state
            // between rounds, so lockstep skips the per-round lookup.
            const LaneStatus st = lanes_[i]->step_once();
            if (st != LaneStatus::Running) {
                done[i] = true;
                status[i] = st;
            } else {
                any = true;
            }
        }
        ++rounds;
    }

    // Lanes still running when the round budget expired timed out —
    // distinguishable from a clean halt, with a populated fault record.
    for (std::size_t i = 0; i < jobs_.size(); ++i)
        if (!done[i])
            status[i] = lanes_[i]->trip_watchdog(
                "Lane: lockstep round budget (" +
                std::to_string(max_rounds) + ") exhausted");

    Cycles wall = 0;
    for (std::size_t i = 0; i < jobs_.size(); ++i)
        if (jobs_[i].program)
            wall = std::max(wall, lanes_[i]->stats().cycles);

    MachineResult res = collect(wall);
    res.status = std::move(status);
    if (rethrow_faults_)
        rethrow_collected_faults(res);
    return res;
}

} // namespace udp
