/**
 * @file
 * DecodedProgram construction and the shared decode cache.
 */
#include "decoded_program.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

namespace udp {

namespace {

/// Non-throwing decode: reserved transition kind 7 becomes the invalid
/// sentinel instead of an exception, because a predecode pass visits
/// every word — including garbage the interpreter would never fetch.
Transition
decode_transition_lenient(Word raw)
{
    const Word kind = bits(raw, 8, 4) & 0x7;
    if (kind >= kNumTransitionTypes) {
        Transition t;
        t.type = kInvalidTransitionType;
        return t;
    }
    return decode_transition(raw);
}

/// Non-throwing action decode (undefined opcode -> sentinel).
Action
decode_action_lenient(Word raw)
{
    if (!opcode_valid(bits(raw, 25, 7))) {
        Action a;
        a.op = kInvalidOpcode;
        return a;
    }
    return decode_action(raw);
}

/// FNV-1a 64-bit over a word stream.
struct Fnv64 {
    std::uint64_t h = 0xCBF29CE484222325ull;
    void mix(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xFF;
            h *= 0x100000001B3ull;
        }
    }
};

} // namespace

std::uint64_t
program_fingerprint(const Program &prog)
{
    Fnv64 f;
    f.mix(prog.dispatch.size());
    f.mix(prog.actions.size());
    f.mix(prog.states.size());
    f.mix(prog.entry);
    f.mix(prog.initial_symbol_bits);
    f.mix(static_cast<std::uint64_t>(prog.addressing));
    f.mix(prog.init_action_base);
    f.mix(prog.init_action_scale);
    f.mix(prog.init_dispatch_base);
    for (const Word w : prog.dispatch)
        f.mix(w);
    for (const Word w : prog.actions)
        f.mix(w);
    for (const StateMeta &s : prog.states) {
        f.mix(s.base);
        f.mix((std::uint64_t{s.reg_source} << 32) |
              (std::uint64_t{s.aux_count} << 16) | s.max_symbol);
    }
    return f.h;
}

DecodedProgram::DecodedProgram(const Program &prog)
{
    fingerprint_ = program_fingerprint(prog);

    transitions_.reserve(prog.dispatch.size());
    for (const Word w : prog.dispatch)
        transitions_.push_back(decode_transition_lenient(w));

    actions_.reserve(prog.actions.size());
    for (const Word w : prog.actions)
        actions_.push_back(decode_action_lenient(w));

    slot_state_.assign(prog.dispatch.size(), -1);
    states_.reserve(prog.states.size());
    for (const StateMeta &s : prog.states) {
        if (s.base >= prog.dispatch.size())
            throw UdpError("DecodedProgram: state base outside image");
        if (slot_state_[s.base] != -1)
            throw UdpError("DecodedProgram: duplicate state base");

        DecodedState d;
        d.base = s.base;
        d.max_symbol = s.max_symbol;
        d.signature = state_signature(s.base);
        d.reg_source = s.reg_source;

        // An undecodable aux word can only occur in a program that never
        // passed Program::validate(); treat it as a signature mismatch
        // (chain terminator) rather than failing the whole build.
        const unsigned aux =
            static_cast<unsigned>(std::min<std::uint32_t>(
                s.aux_count, s.base));
        auto chain_word = [&](unsigned k) -> const Transition & {
            return transitions_[s.base - k];
        };

        // `common` scan: first signature-matching common transition; the
        // per-step scan does not stop at signature mismatches.
        for (unsigned k = 1; k <= aux && !d.has_common; ++k) {
            const Transition &t = chain_word(k);
            if (t.type == TransitionType::Common &&
                t.signature == d.signature) {
                d.common = t;
                d.has_common = true;
            }
        }

        // DFA miss walk: charge one dispatch read per word examined,
        // stop at the first signature mismatch or majority/default hit.
        for (unsigned k = 1; k <= aux; ++k) {
            const Transition &t = chain_word(k);
            ++d.miss_reads;
            if (t.type == kInvalidTransitionType ||
                t.signature != d.signature)
                break;
            if (t.type == TransitionType::Majority ||
                t.type == TransitionType::Default) {
                d.miss = t;
                d.has_miss = true;
                break;
            }
        }

        // NFA miss walk: same, but `common` is also an accepted fallback.
        for (unsigned k = 1; k <= aux; ++k) {
            const Transition &t = chain_word(k);
            ++d.miss_nfa_reads;
            if (t.type == kInvalidTransitionType ||
                t.signature != d.signature)
                break;
            if (t.type == TransitionType::Majority ||
                t.type == TransitionType::Default ||
                t.type == TransitionType::Common) {
                d.miss_nfa = t;
                d.has_miss_nfa = true;
                break;
            }
        }

        // Epsilon activations, in chain (priority) order.
        d.eps_begin = static_cast<std::uint32_t>(epsilons_.size());
        for (unsigned k = 1; k <= aux; ++k) {
            const Transition &t = chain_word(k);
            if (t.type == TransitionType::Epsilon &&
                t.signature == d.signature)
                epsilons_.push_back(t);
        }
        d.eps_end = static_cast<std::uint32_t>(epsilons_.size());

        slot_state_[s.base] =
            static_cast<std::int32_t>(states_.size());
        states_.push_back(d);
    }
}

// ---------------------------------------------------------------------------
// Backend switch and the shared cache.
// ---------------------------------------------------------------------------

namespace {

// 0 = unresolved (consult the environment), else 1 + SimBackend value.
std::atomic<int> g_backend{0};

} // namespace

std::string_view
sim_backend_name(SimBackend b)
{
    switch (b) {
      case SimBackend::Legacy: return "legacy";
      case SimBackend::Predecode: return "predecode";
      case SimBackend::Threaded: return "threaded";
    }
    return "<bad>";
}

SimBackend
sim_backend()
{
    int v = g_backend.load(std::memory_order_relaxed);
    if (v == 0) {
        SimBackend b = SimBackend::Threaded;
        if (const char *env = std::getenv("UDP_SIM_BACKEND")) {
            const std::string_view s(env);
            if (s == "legacy")
                b = SimBackend::Legacy;
            else if (s == "predecode")
                b = SimBackend::Predecode;
            else if (s == "threaded")
                b = SimBackend::Threaded;
        } else if (std::getenv("UDP_SIM_NO_PREDECODE")) {
            b = SimBackend::Legacy; // the PR 3 spelling of "legacy"
        }
        v = 1 + static_cast<int>(b);
        g_backend.store(v, std::memory_order_relaxed);
    }
    return static_cast<SimBackend>(v - 1);
}

void
set_sim_backend(SimBackend b)
{
    g_backend.store(1 + static_cast<int>(b), std::memory_order_relaxed);
}

bool
predecode_enabled()
{
    return sim_backend() != SimBackend::Legacy;
}

void
set_predecode_enabled(bool on)
{
    set_sim_backend(on ? SimBackend::Predecode : SimBackend::Legacy);
}

std::shared_ptr<const DecodedProgram>
shared_decoded(const Program &prog)
{
    static std::mutex mu;
    static std::unordered_map<std::uint64_t,
                              std::shared_ptr<const DecodedProgram>>
        cache;

    const std::uint64_t key = program_fingerprint(prog);
    {
        std::lock_guard<std::mutex> lk(mu);
        const auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }
    // Build outside the lock: decode cost scales with the image, and
    // concurrent builders of the same program are harmless (the first
    // one inserted wins; both results are equivalent).
    auto dec = std::make_shared<const DecodedProgram>(prog);
    std::lock_guard<std::mutex> lk(mu);
    if (cache.size() >= 128)
        cache.clear(); // crude bound; lanes re-decode after a burst
    return cache.emplace(key, std::move(dec)).first->second;
}

} // namespace udp
