/**
 * @file
 * UDP lane: a 32-bit symbol/branch engine (paper Sections 3.2 and 6).
 *
 * A lane couples three units (Figure 23):
 *   - Dispatch unit: multi-way dispatch `slot = base + symbol` with an
 *     8-bit signature check (the EffCLiP perfect-hash contract), auxiliary
 *     majority/default/common fallbacks, flagged (register-sourced)
 *     dispatch and refill transitions;
 *   - Stream-buffer/prefetch unit: bit-granular input with a symbol-size
 *     register (1..8, 16, 32 bits);
 *   - Action unit: executes chained 32-bit actions over 16 scalar
 *     registers, window-addressed local memory and an output buffer.
 *
 * The lane supports two execution modes:
 *   - `run()`: single active state (DFA-style programs; all the ETL
 *     kernels);
 *   - `run_nfa()`: a set of active states advanced per input symbol with
 *     epsilon activation (UAP-style NFA execution); cycle cost scales with
 *     the number of dispatches, as on the real hardware.
 *
 * Host-side interpretation runs on one of two paths (docs/PERFORMANCE.md):
 *   - the fast path over a shared read-only `DecodedProgram` (the
 *     default), with instrumented/uninstrumented inner-loop variants so
 *     detached tracer/profiler hooks cost nothing per cycle;
 *   - the legacy decode-per-step path (`UDP_SIM_NO_PREDECODE=1`), kept
 *     as the bit-identical equivalence reference.
 * Simulated counters and event streams never depend on the path taken.
 */
#pragma once

#include "fault.hpp"
#include "local_memory.hpp"
#include "program.hpp"
#include "stats.hpp"
#include "stream_buffer.hpp"
#include "types.hpp"

#include <array>
#include <functional>
#include <memory>

namespace udp {

class Tracer;          // trace.hpp
class Profiler;        // profile.hpp
class DecodedProgram;  // decoded_program.hpp
struct DecodedState;
class CompiledProgram; // threaded_program.hpp
class ThreadedEngine;  // threaded_program.hpp

/// Terminal status of a lane run.
enum class LaneStatus : std::uint8_t {
    Done,     ///< consumed the whole stream, or executed Halt
    Reject,   ///< no matching transition / Fail action
    Running,  ///< still active (used internally)
    Faulted,  ///< trapped on an interpreter fault (see Lane::fault())
    TimedOut, ///< watchdog: cycle budget exhausted before completion
    /// Host-side disposition, never produced by the interpreter: the
    /// run's owner cancelled the job (runtime JobControl / udp_service)
    /// before it was staged or while its wave was in flight.
    Cancelled,
};

/// Stable lower-case name of a lane status ("done", "timed-out", ...).
std::string_view lane_status_name(LaneStatus st);

/// One recorded acceptance (Accept action).
struct AcceptEvent {
    std::uint64_t stream_bit_pos; ///< stream position at acceptance
    Word id;                      ///< Accept immediate (pattern id, bin, ..)
};

/**
 * A single UDP lane bound to a program, an input stream, and the shared
 * local memory.
 */
class Lane
{
  public:
    /**
     * @param id    lane index (0..63), selects the bank in local mode
     * @param mem   shared local memory (may outlive many runs)
     */
    Lane(unsigned id, LocalMemory &mem);

    /// Bind the program (kept by reference; caller owns it).  Fetches
    /// the shared predecoded/compiled images from the process-wide
    /// caches as the active backend requires (see sim_backend()).
    void load(const Program &prog);

    /// Bind the program together with an already-resolved predecoded
    /// image (the runtime's JobPlan path, which looks it up once per
    /// job instead of once per lane).  `decoded` may be null.
    void load(const Program &prog,
              std::shared_ptr<const DecodedProgram> decoded);

    /// Bind the program with both shared images pre-resolved (the
    /// runtime's JobPlan path under the Threaded backend).  Either may
    /// be null; images the active backend does not need are dropped.
    void load(const Program &prog,
              std::shared_ptr<const DecodedProgram> decoded,
              std::shared_ptr<const CompiledProgram> compiled);

    /// The predecoded image in use (null on the legacy path).
    const DecodedProgram *decoded() const { return decoded_.get(); }

    /// The threaded-code image in use (null unless the Threaded
    /// backend was active at load()).
    const CompiledProgram *compiled() const { return compiled_.get(); }

    /// Attach the input stream (not copied).
    void set_input(BytesView data);

    /// Window base register for restricted addressing (byte address).
    void set_window_base(ByteAddr base) { window_base_ = base; }
    ByteAddr window_base() const { return window_base_; }

    /// Dispatch-window word base (programs larger than 4096 words).
    void set_dispatch_base(std::size_t words) { dispatch_base_ = words; }

    /// Scalar register access (r15 reads give the stream byte index).
    Word reg(unsigned idx) const;
    void set_reg(unsigned idx, Word value);

    /// Execute in single-active-state mode until stream end / halt.
    LaneStatus run(std::uint64_t max_cycles = ~std::uint64_t{0});

    /// Execute up to `n` dispatch steps, preserving position between
    /// calls (lockstep machine mode). Returns Running while work remains.
    LaneStatus run_steps(std::uint64_t n);

    /// Resumable single dispatch step: exactly `run_steps(1)`, but the
    /// decoded entry of the next state is carried across calls so
    /// lockstep rounds skip the per-call state lookup.
    LaneStatus step_once();

    /// Execute in NFA mode (multi-state activation via epsilon).
    LaneStatus run_nfa(std::uint64_t max_cycles = ~std::uint64_t{0});

    const LaneStats &stats() const { return stats_; }
    const Bytes &output() const { return output_; }

    /**
     * The structured record of the last trap (docs/ROBUSTNESS.md).
     * `fault().code == FaultCode::None` for a healthy lane.  Populated
     * whenever a run entry returns Faulted or TimedOut; cleared by
     * reset().  Interpreter errors never escape run()/run_steps()/
     * step_once()/run_nfa() as exceptions — they land here.
     */
    const LaneFault &fault() const { return fault_; }

    /**
     * Arm a deterministic trap: the lane faults with
     * FaultCode::ForcedTrap at the first dispatch-step boundary at or
     * after simulated cycle `at` (0 disarms; the default).  Fault
     * injection only — no hardware analogue.  Cleared by hard_reset().
     */
    void set_forced_trap(Cycles at) { trap_cycle_ = at; }
    Cycles forced_trap_cycle() const { return trap_cycle_; }

    /// Record a watchdog fault and halt the lane (the machine's lockstep
    /// harness calls this when its round budget expires with the lane
    /// still running).  Returns LaneStatus::TimedOut.
    LaneStatus trip_watchdog(std::string detail);

    /// Byte-align the output bitstream from the host side (reading back
    /// the staging buffer after the lane finished).
    void finish_output() { out_flush(); }
    const std::vector<AcceptEvent> &accepts() const { return accepts_; }
    std::uint64_t accept_count() const { return stats_.accepts; }

    /// Cap on stored AcceptEvents (counts keep accumulating past it).
    void set_accept_capacity(std::size_t n) { accept_capacity_ = n; }

    /// Reset registers, stats, output and stream position.
    void reset();

    /// Full architectural reset between job batches: reset() plus the
    /// window base, dispatch window and attached input, so a reassigned
    /// lane cannot observe any state from the previous wave.  Run
    /// configuration (tracer, profiler, arbiter, accept capacity) and
    /// the program binding survive, as for reset().
    void hard_reset();

    /// Hook invoked for each memory reference: (bank, is_write) -> stalls.
    using ArbiterHook = std::function<Cycles(unsigned bank, bool is_write)>;
    void set_arbiter(ArbiterHook hook) { arbiter_ = std::move(hook); }

    /// Attach an event tracer (nullptr = off, the default; survives
    /// reset()/load() like the arbiter — it is run configuration).
    void set_tracer(Tracer *t) { tracer_ = t; }
    Tracer *tracer() const { return tracer_; }

    /// Attach a profiling aggregator (nullptr = off, the default).
    void set_profiler(Profiler *p) { profiler_ = p; }
    Profiler *profiler() const { return profiler_; }

  private:
    /// The threaded-code backend is the lane's inner loop when a
    /// compiled image is bound (core/threaded_program.hpp).
    friend class ThreadedEngine;

    // Dispatch outcome for one step of one active state.
    struct StepResult {
        bool took_transition = false;
        bool consumed_symbol = false;
        DispatchAddr next_base = 0;
        LaneStatus status = LaneStatus::Running;
    };

    /// Legacy decode-per-step dispatch: fetch+check the labeled slot,
    /// walk the aux chain, fire actions.
    StepResult step(const StateMeta &meta);

    /// Fast-path dispatch over the predecoded state.  `Instrumented`
    /// compiles the tracer/profiler hooks in or out of the loop.
    template <bool Instrumented>
    StepResult step_fast(const DecodedState &ds);

    /// One fast-path step plus halt/transition bookkeeping and profiler
    /// attribution (shared by run_steps_fast and step_once).
    template <bool Instrumented>
    LaneStatus advance_one(const DecodedState &ds);

    template <bool Instrumented>
    LaneStatus run_steps_fast(std::uint64_t n);

    template <bool Instrumented>
    LaneStatus run_nfa_fast(std::uint64_t max_cycles);

    LaneStatus run_steps_legacy(std::uint64_t n);
    LaneStatus run_nfa_legacy(std::uint64_t max_cycles);

    /// Execute the action chain at action-memory word address `addr`.
    /// `Predecoded` selects the micro-op source (decoded image vs
    /// per-word decode); both charge identical simulated costs.
    template <bool Instrumented, bool Predecoded>
    LaneStatus exec_actions_impl(std::size_t addr);

    /// Legacy entry (runtime instrumentation checks, per-word decode).
    LaneStatus exec_actions(std::size_t addr);

    /// Record `fault_`, halt the lane and return the terminal status
    /// (TimedOut for WatchdogTimeout, Faulted otherwise).
    LaneStatus trap(FaultCode code, std::string detail);

    /// Run `body` converting tagged interpreter errors into faults at
    /// the run-loop boundary (shared by all four run entries).
    template <typename Body>
    LaneStatus run_guarded(Body &&body);

    /// Resolve an attach field to an action word address (or none).
    bool attach_addr(const Transition &t, std::size_t &addr) const;

    Word fetch_symbol_bits(unsigned width);
    Word dispatch_word(std::size_t word_addr);

    ByteAddr mem_translate(Word lane_addr) const;
    std::uint8_t mem_read8(Word lane_addr);
    void mem_write8(Word lane_addr, std::uint8_t v);
    Word mem_read32(Word lane_addr);
    void mem_write32(Word lane_addr, Word v);
    void charge_mem(ByteAddr phys, bool is_write);

    void out_byte(std::uint8_t b);
    void out_bits(Word value, unsigned nbits);
    void out_flush();

    unsigned id_;
    LocalMemory &mem_;
    const Program *prog_ = nullptr;
    std::shared_ptr<const DecodedProgram> decoded_; ///< null = legacy path
    std::shared_ptr<const CompiledProgram> compiled_; ///< threaded backend
    const DecodedState *resume_ds_ = nullptr; ///< step_once carry-over
    std::int32_t resume_cs_ = -2; ///< threaded step_once carry-over
                                  ///< (ThreadedEngine::kNoResume)
    StreamBuffer sb_;

    std::array<Word, kNumScalarRegs> regs_{};
    unsigned symbol_bits_ = 8;     ///< symbol-size register
    ByteAddr window_base_ = 0;     ///< data window (restricted addressing)
    std::size_t dispatch_base_ = 0;///< dispatch window (words)
    ByteAddr action_base_ = 0;     ///< scaled-offset action window (words)
    unsigned action_scale_ = 0;

    Word last_symbol_ = 0; ///< latched by the dispatch unit (Lastsym)
    LaneStats stats_;
    Bytes output_;
    Word out_bit_acc_ = 0;     ///< pending sub-byte output bits
    unsigned out_bit_count_ = 0;
    std::vector<AcceptEvent> accepts_;
    std::size_t accept_capacity_ = 1 << 16;
    ArbiterHook arbiter_;
    Tracer *tracer_ = nullptr;     ///< event sink; off when null
    Profiler *profiler_ = nullptr; ///< aggregation sink; off when null
    std::size_t cur_state_ = 0;   ///< full base of the active state
    bool started_ = false;
    bool halted_ = false;
    LaneStatus halt_status_ = LaneStatus::Done;
    LaneFault fault_;             ///< last trap record (None = healthy)
    Cycles trap_cycle_ = 0;       ///< forced-trap cycle (0 = disarmed)
};

} // namespace udp
