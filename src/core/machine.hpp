/**
 * @file
 * The full 64-lane UDP machine (paper Figure 3a) and its run harness.
 *
 * A `Machine` owns the shared local memory, the vector register file and
 * 64 lanes.  Work is described by a `JobSpec` per lane (program, input
 * view, memory window, initial registers).  Two run modes:
 *
 *  - `run_parallel()` — each lane runs to completion independently.  This
 *    is exact for the paper's data-parallel kernels, whose lanes touch
 *    disjoint memory windows (local or restricted addressing); machine
 *    time is the slowest lane.
 *  - `run_lockstep()` — lanes advance one dispatch step per round with a
 *    shared per-round bank arbiter, modeling the "detect and stall"
 *    contention of global/overlapping addressing.
 */
#pragma once

#include "energy.hpp"
#include "lane.hpp"
#include "local_memory.hpp"
#include "program.hpp"
#include "stats.hpp"
#include "vector_regfile.hpp"

#include <memory>
#include <optional>

namespace udp {

/// Work assignment for one lane.
struct JobSpec {
    const Program *program = nullptr; ///< nullptr = lane idle
    /// Stream contents.  Non-owning: the lane's StreamBuffer reads these
    /// bytes in place for the whole run, so the caller keeps the backing
    /// storage alive until the run's results are collected.  The runtime
    /// layer pins this with a ref-counted InputArena and checks the pin
    /// at stage/harvest time (runtime/arena.hpp).
    BytesView input{};
    ByteAddr window_base = 0;         ///< restricted-addressing window
    bool nfa_mode = false;            ///< run with multi-state activation
    std::vector<std::pair<unsigned, Word>> init_regs; ///< (reg, value)
    /// Per-lane watchdog budget; run_parallel uses the tighter of this
    /// and its own argument (the Scheduler's retry policy grows this).
    std::uint64_t max_cycles = ~std::uint64_t{0};
    /// Forced-trap cycle for deterministic fault injection (0 = off).
    Cycles trap_cycle = 0;
};

/// Result of a machine run.
struct MachineResult {
    Cycles wall_cycles = 0;      ///< max over lanes (+stalls in lockstep)
    LaneStats total;             ///< summed lane counters
    std::vector<LaneStatus> status;
    /// Per-lane trap records, parallel to `status` (code == None for a
    /// healthy lane).  One poisoned lane never takes down the wave: its
    /// fault lands here while the other lanes' results stay intact.
    std::vector<LaneFault> faults;
    unsigned active_lanes = 0;

    /// Lanes whose status is Faulted or TimedOut.
    unsigned faulted_lanes() const {
        unsigned n = 0;
        for (const LaneFault &f : faults)
            n += f.code != FaultCode::None;
        return n;
    }

    /// Aggregate throughput in MB/s at the nominal clock.
    double throughput_mbps() const {
        return bytes_per_second(total.input_bytes(), wall_cycles) / 1e6;
    }
};

/**
 * Observer for lane-run lifecycle in `run_parallel`.
 *
 * Callbacks fire on the thread that simulates the lane — a pool worker
 * under the threaded backend — immediately before the lane starts and
 * after it returns.  Implementations must therefore be safe to call
 * concurrently from multiple threads (the runtime FlightRecorder keeps
 * one ring per worker thread for exactly this reason).  `run_lockstep`
 * interleaves all lanes on the host thread and does not emit these
 * events.  With no observer attached (the default) the hook is a single
 * predicted-not-taken branch per lane run.
 */
class RunObserver
{
  public:
    virtual ~RunObserver() = default;
    /// Lane `lane` is about to run on the calling thread.
    virtual void on_lane_start(unsigned lane) = 0;
    /// Lane `lane` finished with `status` after `cycles` simulated cycles.
    virtual void on_lane_end(unsigned lane, LaneStatus status,
                             Cycles cycles) = 0;
};

/// The 64-lane UDP.
class Machine
{
  public:
    explicit Machine(AddressingMode mode = AddressingMode::Restricted);

    LocalMemory &memory() { return mem_; }
    const LocalMemory &memory() const { return mem_; }
    VectorRegFile &vregs() { return vregs_; }
    Lane &lane(unsigned idx);
    const UdpCostModel &cost_model() const { return cost_; }

    /// Stage bytes into local memory at a physical byte address (host /
    /// DLT-engine side, not charged to lane cycles).
    void stage(ByteAddr phys, BytesView data);

    /// Read back a region of local memory.
    Bytes unstage(ByteAddr phys, std::size_t len) const;

    /// Read back a region of local memory into `out`, replacing its
    /// contents but retaining its capacity — the allocation-free path
    /// the runtime's BufferPool recycling uses (runtime/arena.hpp).
    void unstage(ByteAddr phys, std::size_t len, Bytes &out) const;

    /// Assign one job per lane (at most kNumLanes entries).  Every lane
    /// — assigned or idle — is architecturally hard-reset first, so a
    /// batch can never inherit registers, stream position, accepts or
    /// window state from the previous one.
    void assign(std::vector<JobSpec> jobs);

    /**
     * Run all assigned lanes to completion, independently.
     *
     * Executes on the configured simulation backend: serial, or a host
     * thread pool (`set_sim_threads`).  Parallel-mode lanes touch
     * disjoint memory windows, so the threaded backend is *exact*:
     * LaneStats, wall cycles and energy are bit-identical to the serial
     * backend for any thread count.  A run with an attached Profiler
     * falls back to serial (its aggregation is shared across lanes);
     * the Tracer's per-lane rings are safe under threads: every lane
     * records only into its own ring (each `tracer_->record(id_, ...)`
     * site passes the recording lane's id), so worker threads never
     * share a ring — pinned byte-for-byte, under TSan in CI, by
     * `SpanTrace.TracerIsIdenticalUnderThreadedBackend`.
     */
    MachineResult run_parallel(std::uint64_t max_cycles_per_lane =
                                   ~std::uint64_t{0});

    /**
     * Host threads for run_parallel lane simulation.  0 (the default)
     * resolves from the UDP_SIM_THREADS environment variable, else 1
     * (serial).  Purely a host-performance knob — simulated results do
     * not depend on it.
     */
    void set_sim_threads(unsigned n) { sim_threads_ = n; }
    unsigned sim_threads() const { return sim_threads_; }

    /// The thread count run_parallel will actually use (>= 1; always 1
    /// while a Profiler is attached).
    unsigned resolved_sim_threads() const;

    /// Run with per-round shared bank arbitration.
    MachineResult run_lockstep(std::uint64_t max_rounds = ~std::uint64_t{0});

    /**
     * Legacy escape hatch: when enabled, run_parallel/run_lockstep
     * rethrow after a run with any faulted lane — one UdpFaultError
     * describing *every* lane fault (lowest lane first), not just the
     * first as the pre-trap-model harness did.
     *
     * @deprecated Inspect MachineResult::faults instead; rethrowing
     * forfeits the containment contract (docs/ROBUSTNESS.md).
     */
    [[deprecated("inspect MachineResult::faults instead")]]
    void set_rethrow_faults(bool on) { rethrow_faults_ = on; }
    bool rethrow_faults() const { return rethrow_faults_; }

    /// Energy of the last run, in joules (see run_energy_joules).
    double last_run_energy_j() const { return last_energy_j_; }

    /// Attach an event tracer to every lane (nullptr detaches; see
    /// core/trace.hpp).  Costs nothing when detached (the default).
    void set_tracer(Tracer *t);
    Tracer *tracer() const { return tracer_; }

    /// Attach a profiling aggregator to every lane (core/profile.hpp).
    void set_profiler(Profiler *p);
    Profiler *profiler() const { return profiler_; }

    /// Attach a lane-run observer (nullptr detaches; see RunObserver).
    /// Purely observational: simulated results are bit-identical with
    /// and without one attached.
    void set_run_observer(RunObserver *o) { run_observer_ = o; }
    RunObserver *run_observer() const { return run_observer_; }

  private:
    MachineResult collect(Cycles wall);
    void rethrow_collected_faults(const MachineResult &res) const;

    LocalMemory mem_;
    VectorRegFile vregs_;
    std::vector<std::unique_ptr<Lane>> lanes_;
    std::vector<JobSpec> jobs_;
    UdpCostModel cost_;
    unsigned sim_threads_ = 0; ///< 0 = resolve from UDP_SIM_THREADS
    bool rethrow_faults_ = false; ///< deprecated pre-trap-model behavior
    double last_energy_j_ = 0.0;
    Tracer *tracer_ = nullptr;
    Profiler *profiler_ = nullptr;
    RunObserver *run_observer_ = nullptr;
};

} // namespace udp
