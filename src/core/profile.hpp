/**
 * @file
 * Per-state and per-action profiling aggregator.
 *
 * A `Profiler` attached to lanes (`Lane::set_profiler`) accumulates, per
 * dispatch state (keyed by the state's full base word address), visits,
 * cycles spent (dispatch + attached actions + stalls), signature misses
 * and bank-conflict stall cycles; and per action opcode, execution counts
 * and cycles.  The aggregator answers the questions the paper's evaluation
 * asks of the micro-architecture: where do cycles go, which states fall
 * back to the auxiliary chain, which actions dominate a kernel.
 *
 * `hot_states()` ranks states by cycles; `report()` renders a "top-N hot
 * states" table, resolving state names through a caller-supplied
 * symbolizer (see `make_state_symbolizer` in assembler/disasm.hpp, which
 * reuses the disassembler's state labels).
 *
 * Like the tracer, the profiler costs nothing when not attached.
 */
#pragma once

#include "isa.hpp"
#include "types.hpp"

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace udp {

/// Aggregated counters for one dispatch state.
struct StateProfile {
    std::uint64_t visits = 0;       ///< dispatches into this state
    Cycles cycles = 0;              ///< dispatch + action + stall cycles
    std::uint64_t sig_misses = 0;   ///< aux-chain fallbacks taken here
    std::uint64_t stall_cycles = 0; ///< bank-conflict stalls charged here

    /// Fraction of visits that missed the labeled-slot signature check.
    double sig_miss_rate() const {
        return visits ? double(sig_misses) / double(visits) : 0.0;
    }
};

/// Aggregated counters for one action opcode.
struct ActionProfile {
    std::uint64_t count = 0; ///< executions
    Cycles cycles = 0;       ///< cycles charged (incl. loop/mem extras)
};

/// Resolves a state base address to a display name.
using StateSymbolizer = std::function<std::string(std::uint32_t base)>;

/// The profiling aggregator.  One per Machine; fed by attached lanes.
class Profiler
{
  public:
    /// Attribute one dispatch step (and its attached actions) to `base`.
    void record_state(std::uint32_t base, Cycles cycles,
                      std::uint64_t sig_misses, std::uint64_t stall_cycles);

    /// Attribute one executed action to its opcode.
    void record_action(Opcode op, Cycles cycles);

    const std::unordered_map<std::uint32_t, StateProfile> &states() const {
        return states_;
    }
    const std::map<Opcode, ActionProfile> &actions() const {
        return actions_;
    }

    /// Cycles attributed across all states.
    Cycles total_state_cycles() const;

    /// States ranked by cycles, descending; at most `top_n` entries.
    std::vector<std::pair<std::uint32_t, StateProfile>>
    hot_states(std::size_t top_n) const;

    /// Action opcodes ranked by cycles, descending; at most `top_n`.
    std::vector<std::pair<Opcode, ActionProfile>>
    hot_actions(std::size_t top_n) const;

    /**
     * Human-readable hot-state report (top `top_n` states and actions).
     * When `sym` is set, state rows carry its labels; otherwise the raw
     * "state @0x<base>" form.
     */
    std::string report(std::size_t top_n = 10,
                       const StateSymbolizer &sym = nullptr) const;

    void clear();

  private:
    std::unordered_map<std::uint32_t, StateProfile> states_;
    std::map<Opcode, ActionProfile> actions_;
};

} // namespace udp
