/**
 * @file
 * UDP lane ISA: transition and action formats (paper Figure 6).
 *
 * Transition word (32 bits):
 *     signature(8) | target(12) | type(4) | attach(8)
 *
 * The `type` field's low 3 bits select one of the seven transition kinds
 * (Section 3.2.1); bit 3 selects the attach addressing mode (direct vs
 * scaled-offset, the UDP improvement over UAP's offset addressing).
 *
 * Action words (32 bits, three formats distinguished by opcode):
 *     ImmAction  : opcode(7) | last(1) | dst(4) | src(4) | imm(16)
 *     Imm2Action : opcode(7) | last(1) | dst(4) | src(4) | imm1(4) | imm2(12)
 *     RegAction  : opcode(7) | last(1) | dst(4) | ref(4) | src(4) | unused(12)
 *
 * Actions attached to a transition are chained; `last` terminates the chain.
 */
#pragma once

#include "types.hpp"

#include <array>
#include <optional>
#include <string_view>

namespace udp {

/**
 * The seven transition kinds of the UDP multi-way dispatch (Section 3.2.1).
 *
 * - Labeled: a single specific-symbol transition; stored at base+symbol.
 * - Majority: one encoded transition standing for the set of outgoing
 *   transitions that share a destination from this source state; taken when
 *   the labeled-slot signature check fails (one extra cycle).
 * - Default: fallback shared *across* source states ("delta" storage);
 *   lowest priority.
 * - Epsilon: multi-state activation (NFA support); taken without consuming
 *   input, activating an additional state.
 * - Common: "don't care" - always taken whatever symbol arrives; replaces
 *   all labeled transitions of the source state.
 * - Flagged: control-flow driven dispatch - the symbol is read from scalar
 *   data register r0 instead of the stream buffer (Section 3.2.3).
 * - Refill: variable-size symbol support - pushes back the bits that should
 *   not have been consumed, per the attach field (SsRef, Section 3.2.2).
 */
enum class TransitionType : std::uint8_t {
    Labeled = 0,
    Majority = 1,
    Default = 2,
    Epsilon = 3,
    Common = 4,
    Flagged = 5,
    Refill = 6,
};

/// Number of transition kinds.
inline constexpr unsigned kNumTransitionTypes = 7;

/// Attach-field addressing mode (Section 3.2.1, Figure 5c).
enum class AttachMode : std::uint8_t {
    /// Action block address = attach (words 0..255 of the action region):
    /// global sharing of hot action blocks.
    Direct = 0,
    /// Action block address = action window base + (attach << scale):
    /// private per-state blocks beyond the 8-bit range.
    ScaledOffset = 1,
};

/// Sentinel attach value meaning "no actions on this transition".
inline constexpr std::uint8_t kNoActions = 0xFF;

/**
 * Action opcodes.  ~50 operations in arithmetic, logical, comparison,
 * memory, stream/configuration, specialized (hash, loop-compare,
 * loop-copy), output and control groups (Sections 3.1 and 3.2.5).
 *
 * Encoding format per opcode is fixed (see `action_format`).
 */
enum class Opcode : std::uint8_t {
    // --- ALU, immediate forms (ImmAction: dst, src, imm16 sign-extended) ---
    Addi = 0,   ///< dst = src + imm
    Subi,       ///< dst = src - imm
    Andi,       ///< dst = src & imm (zero-extended)
    Ori,        ///< dst = src | imm (zero-extended)
    Xori,       ///< dst = src ^ imm (zero-extended)
    Shli,       ///< dst = src << imm
    Shri,       ///< dst = src >> imm (logical)
    Sari,       ///< dst = src >> imm (arithmetic)
    Movi,       ///< dst = imm (sign-extended)
    Lui,        ///< dst = (dst & 0xFFFF) | (imm << 16)
    Cmpeqi,     ///< dst = (src == imm)
    Cmplti,     ///< dst = (src < imm), signed
    Cmpltui,    ///< dst = (src < imm), unsigned
    Muli,       ///< dst = src * imm

    // --- ALU, register forms (RegAction: dst, ref, src) ---
    Add = 20,   ///< dst = ref + src
    Sub,        ///< dst = ref - src
    And,        ///< dst = ref & src
    Or,         ///< dst = ref | src
    Xor,        ///< dst = ref ^ src
    Shl,        ///< dst = ref << (src & 31)
    Shr,        ///< dst = ref >> (src & 31), logical
    Mov,        ///< dst = src
    Not,        ///< dst = ~src
    Neg,        ///< dst = -src
    Mul,        ///< dst = ref * src
    Min,        ///< dst = min(ref, src), unsigned
    Max,        ///< dst = max(ref, src), unsigned
    Cmpeq,      ///< dst = (ref == src)
    Cmplt,      ///< dst = (ref < src), unsigned
    Select,     ///< dst = dst ? ref : src (conditional move)

    // --- Memory (ImmAction: address = reg[src] + imm, window-based) ---
    Ldw = 40,   ///< dst = mem32[src + imm]
    Stw,        ///< mem32[src + imm] = dst
    Ldb,        ///< dst = mem8[src + imm] (zero-extended)
    Stb,        ///< mem8[src + imm] = dst & 0xFF
    Bininc,     ///< mem32[src*4 + imm]++  (fused histogram-bin update)

    // --- Stream / configuration (ImmAction unless noted) ---
    Setss = 50, ///< symbol-size register = imm (1..8, 16, 32 bits)
    Setssr,     ///< symbol-size register = reg[src] (dynamic)
    Setbase,    ///< window base register = reg[src] + imm (restricted addr.)
    Setab,      ///< action window base = reg[src] + imm; scale = dst field
    Skip,       ///< advance stream by imm bits
    Refill,     ///< push back imm bits into the stream buffer
    Peek,       ///< dst = next imm bits of stream (not consumed)
    Read,       ///< dst = next imm bits of stream (consumed)
    Tell,       ///< dst = current stream *bit* position
    Setstream,  ///< stream cursor = bit position reg[src] + imm
    Lastsym,    ///< dst = the symbol value of the current dispatch (the
                ///< dispatch unit latches it; UAP actions likewise had a
                ///< symbol operand)

    // --- Specialized (Section 3.2.5) ---
    Emitlut = 68, ///< wide-LUT emit (the hardwired-decoder datapath [39],
                  ///< used by the SsF ablation): entry = mem[reg[src] +
                  ///< ((imm<<8 | lastsym) * 16)], laid out as
                  ///< [count][bytes...]; emits count bytes. 2 cycles.
    Hash = 70,  ///< dst = hash(reg[src]) mixed with imm seed (1 cycle)
    Hash2,      ///< dst = hash(reg[ref], reg[src]) (RegAction)
    Loopcmp,    ///< dst = match length of mem[ref] vs mem[src] (RegAction),
                ///< bounded by reg[dst] on entry; 1 + ceil(n/8) cycles
    Loopcpy,    ///< copy reg[dst] bytes mem[src] -> mem[ref]; 1 + ceil(n/8)
    Loopcpyo,   ///< copy reg[dst] bytes from mem[src] to the output stream
    Crc,        ///< dst = CRC32C step of (dst, src byte)

    // --- Output (per-lane output staging buffer) ---
    Outb = 80,  ///< append reg[src] low byte to output
    Outw,       ///< append reg[src] as 4 little-endian bytes
    Outbits,    ///< append low imm bits of reg[src] to the output bitstream
    Outflush,   ///< byte-align the output bitstream
    Outi,       ///< append imm low byte to output (immediate emit)
    Outbitsr,   ///< append low reg[dst]-count bits of reg[src] (dynamic)

    // --- Control ---
    Accept = 90, ///< record a match/acceptance (id = imm) at stream position
    Halt,        ///< stop this lane (status Done)
    Fail,        ///< stop this lane (status Reject)
    Gotoact,     ///< continue action chain at action address imm ("goto")
    Nop,
};

/// The three action encodings of Figure 6.
enum class ActionFormat : std::uint8_t { Imm, Imm2, Reg };

/// Encoding format used by an opcode.
ActionFormat action_format(Opcode op);

/// Printable mnemonic ("addi", "loopcpy", ...).
std::string_view opcode_name(Opcode op);

/// Parse a mnemonic; empty optional when unknown.
std::optional<Opcode> opcode_from_name(std::string_view name);

/// Printable transition-type name ("labeled", ...).
std::string_view transition_type_name(TransitionType t);

/// True when `op` is a defined opcode value.
bool opcode_valid(Word raw);

// ---------------------------------------------------------------------------
// Decoded (unpacked) representations and the 32-bit pack/unpack routines.
// ---------------------------------------------------------------------------

/// Decoded transition word.
struct Transition {
    std::uint8_t signature = 0;     ///< slot-validity check value
    DispatchAddr target = 0;        ///< base address of the next state
    TransitionType type = TransitionType::Labeled;
    AttachMode attach_mode = AttachMode::Direct;
    std::uint8_t attach = kNoActions; ///< action block ref / refill count

    bool operator==(const Transition &) const = default;
};

/// Decoded action word.
struct Action {
    Opcode op = Opcode::Nop;
    bool last = true;          ///< terminates the action chain
    std::uint8_t dst = 0;      ///< destination register (or scale for Setab)
    std::uint8_t ref = 0;      ///< RegAction second operand register
    std::uint8_t src = 0;      ///< source register
    std::int32_t imm = 0;      ///< Imm: imm16 (sign-ext); Imm2: imm2 (12b)
    std::int32_t imm1 = 0;     ///< Imm2Action only: 4-bit auxiliary field

    bool operator==(const Action &) const = default;
};

/// Pack a transition into its 32-bit encoding.
Word encode_transition(const Transition &t);

/// Unpack a 32-bit transition word.
Transition decode_transition(Word raw);

/// Pack an action into its 32-bit encoding. Throws UdpError when a field
/// does not fit its width (e.g. imm16 overflow in an ImmAction).
Word encode_action(const Action &a);

/// Unpack a 32-bit action word. Throws UdpError on an undefined opcode.
Action decode_action(Word raw);

/// Convenience constructors --------------------------------------------------

inline Action
act_imm(Opcode op, unsigned dst, unsigned src, std::int32_t imm,
        bool last = false)
{
    Action a;
    a.op = op;
    a.dst = static_cast<std::uint8_t>(dst);
    a.src = static_cast<std::uint8_t>(src);
    a.imm = imm;
    a.last = last;
    return a;
}

inline Action
act_reg(Opcode op, unsigned dst, unsigned ref, unsigned src,
        bool last = false)
{
    Action a;
    a.op = op;
    a.dst = static_cast<std::uint8_t>(dst);
    a.ref = static_cast<std::uint8_t>(ref);
    a.src = static_cast<std::uint8_t>(src);
    a.last = last;
    return a;
}

} // namespace udp
