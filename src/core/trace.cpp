/**
 * @file
 * Tracer implementation and the Chrome trace_event exporter.
 */
#include "trace.hpp"

#include "isa.hpp"
#include "metrics_json.hpp"

#include <fstream>
#include <ostream>

namespace udp {

std::string_view
trace_event_kind_name(TraceEventKind k)
{
    switch (k) {
      case TraceEventKind::Dispatch: return "dispatch";
      case TraceEventKind::SigMiss: return "sig_miss";
      case TraceEventKind::Action: return "action";
      case TraceEventKind::MemRead: return "mem_read";
      case TraceEventKind::MemWrite: return "mem_write";
      case TraceEventKind::Stall: return "stall";
      case TraceEventKind::Accept: return "accept";
    }
    return "?";
}

Tracer::Tracer(std::size_t ring_capacity) : capacity_(ring_capacity)
{
    if (capacity_ == 0)
        throw UdpError("Tracer: ring capacity must be positive");
}

void
Tracer::record(unsigned lane, TraceEventKind kind, Cycles cycle,
               std::uint32_t a, std::uint32_t b)
{
    if (lane >= kNumLanes)
        throw UdpError("Tracer: lane id out of range");
    LaneRing &r = rings_[lane];
    TraceEvent ev;
    ev.cycle = cycle;
    ev.a = a;
    ev.b = b;
    ev.kind = kind;
    ev.lane = static_cast<std::uint8_t>(lane);
    if (r.buf.size() < capacity_) {
        r.buf.push_back(ev);
    } else {
        r.buf[r.next] = ev;
        r.next = (r.next + 1) % capacity_;
    }
    ++r.total;
    ++r.by_kind[static_cast<unsigned>(kind)];
}

std::vector<TraceEvent>
Tracer::events(unsigned lane) const
{
    if (lane >= kNumLanes)
        throw UdpError("Tracer: lane id out of range");
    const LaneRing &r = rings_[lane];
    std::vector<TraceEvent> out;
    out.reserve(r.buf.size());
    // `next` is the oldest element once the ring has wrapped.
    for (std::size_t i = 0; i < r.buf.size(); ++i)
        out.push_back(r.buf[(r.next + i) % r.buf.size()]);
    return out;
}

std::uint64_t
Tracer::count(unsigned lane, TraceEventKind kind) const
{
    if (lane >= kNumLanes)
        throw UdpError("Tracer: lane id out of range");
    return rings_[lane].by_kind[static_cast<unsigned>(kind)];
}

std::uint64_t
Tracer::total(unsigned lane) const
{
    if (lane >= kNumLanes)
        throw UdpError("Tracer: lane id out of range");
    return rings_[lane].total;
}

std::uint64_t
Tracer::dropped(unsigned lane) const
{
    if (lane >= kNumLanes)
        throw UdpError("Tracer: lane id out of range");
    return rings_[lane].total - rings_[lane].buf.size();
}

std::vector<unsigned>
Tracer::active_lanes() const
{
    std::vector<unsigned> out;
    for (unsigned l = 0; l < kNumLanes; ++l)
        if (rings_[l].total != 0)
            out.push_back(l);
    return out;
}

void
Tracer::clear()
{
    for (auto &r : rings_) {
        r.buf.clear();
        r.next = 0;
        r.total = 0;
        r.by_kind.fill(0);
    }
}

// ---------------------------------------------------------------------------
// Chrome trace_event export.
// ---------------------------------------------------------------------------

namespace {

/// Cycle stamp -> microseconds at the nominal clock (1 cycle = 1 ns).
double
cycles_to_us(Cycles c)
{
    return double(c) * (1e6 / kClockHz);
}

} // namespace

void
write_trace_event(JsonWriter &w, const TraceEvent &ev, Cycles base)
{
    // Durationful kinds render as "X" (complete) slices; the rest as
    // instant events so chrome://tracing draws them as markers.
    const bool slice = ev.kind == TraceEventKind::Dispatch ||
                       ev.kind == TraceEventKind::Action ||
                       ev.kind == TraceEventKind::Stall;
    const Cycles dur =
        ev.kind == TraceEventKind::Stall ? Cycles{ev.b} : Cycles{1};

    w.begin_object();
    w.field("name", trace_event_kind_name(ev.kind));
    w.field("cat", "udp");
    w.field("ph", slice ? "X" : "i");
    // Events are stamped *after* the cycle charge; start the slice at the
    // cycle the work occupied (clamped into this run's window, so a
    // rebased slice can never start before its wave).
    const Cycles start = base + (ev.cycle >= dur ? ev.cycle - dur : 0);
    w.field("ts", cycles_to_us(slice ? start : base + ev.cycle));
    if (slice)
        w.field("dur", cycles_to_us(dur));
    else
        w.field("s", "t"); // thread-scoped instant
    w.field("pid", 0);
    w.field("tid", std::uint64_t{ev.lane});
    w.key("args").begin_object();
    switch (ev.kind) {
      case TraceEventKind::Dispatch:
      case TraceEventKind::SigMiss:
        w.field("state_base", std::uint64_t{ev.a});
        w.field("symbol", std::uint64_t{ev.b});
        break;
      case TraceEventKind::Action:
        w.field("addr", std::uint64_t{ev.a});
        if (opcode_valid(ev.b))
            w.field("op", opcode_name(static_cast<Opcode>(ev.b)));
        else
            w.field("op", std::uint64_t{ev.b});
        break;
      case TraceEventKind::MemRead:
      case TraceEventKind::MemWrite:
        w.field("addr", std::uint64_t{ev.a});
        break;
      case TraceEventKind::Stall:
        w.field("addr", std::uint64_t{ev.a});
        w.field("stall_cycles", std::uint64_t{ev.b});
        break;
      case TraceEventKind::Accept:
        w.field("id", std::uint64_t{ev.a});
        break;
    }
    w.end_object();
    w.field("cycle", std::uint64_t{base + ev.cycle});
    w.end_object();
}

void
write_lane_track_metadata(JsonWriter &w, unsigned lane)
{
    // Thread-name metadata so the track reads "lane N".
    w.begin_object();
    w.field("name", "thread_name");
    w.field("ph", "M");
    w.field("pid", 0);
    w.field("tid", std::uint64_t{lane});
    w.key("args").begin_object();
    w.field("name", "lane " + std::to_string(lane));
    w.end_object();
    w.end_object();
}

void
write_chrome_trace(std::ostream &os, const Tracer &tracer)
{
    JsonWriter w(os, /*pretty=*/false);
    w.begin_object();
    w.key("traceEvents").begin_array();
    for (const unsigned lane : tracer.active_lanes()) {
        write_lane_track_metadata(w, lane);
        for (const TraceEvent &ev : tracer.events(lane))
            write_trace_event(w, ev);
    }
    w.end_array();
    w.field("displayTimeUnit", "ns");
    w.end_object();
}

bool
write_chrome_trace_file(const std::string &path, const Tracer &tracer)
{
    std::ofstream os(path);
    if (!os)
        return false;
    write_chrome_trace(os, tracer);
    os.flush();
    return bool(os);
}

} // namespace udp
