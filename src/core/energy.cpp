/**
 * @file
 * Power/area/energy model implementation.
 */
#include "energy.hpp"

namespace udp {

std::vector<ComponentCost>
UdpCostModel::lane_breakdown() const
{
    return {
        {"Dispatch Unit", dispatch_unit_mw, dispatch_unit_mm2},
        {"SBP Unit", sbp_unit_mw, sbp_unit_mm2},
        {"Stream Buffer", stream_buffer_mw, stream_buffer_mm2},
        {"Action Unit", action_unit_mw, action_unit_mm2},
        {"UDP Lane", lane_total_mw, lane_total_mm2},
    };
}

std::vector<ComponentCost>
UdpCostModel::system_breakdown() const
{
    return {
        {"64 Lanes", lanes64_mw, lanes64_mm2},
        {"Vector Registers", vector_regs_mw, vector_regs_mm2},
        {"DLT Engine", dlt_engine_mw, dlt_engine_mm2},
        {"1MB Local Memory", local_mem_mw, local_mem_mm2},
        {"UDP System", system_mw, system_mm2},
    };
}

double
run_energy_joules(const UdpCostModel &model, const LaneStats &total,
                  Cycles wall_cycles, unsigned active_lanes,
                  AddressingMode mode)
{
    if (active_lanes == 0 || wall_cycles == 0)
        return 0.0;

    const double clock_hz = model.clock_ghz * 1e9;
    const double seconds = double(wall_cycles) / clock_hz;

    // Active lane logic: lane power prorated over busy cycles.
    const double lane_energy =
        (model.lane_total_mw / 1000.0) *
        (double(total.cycles) / clock_hz);

    // Memory references at the Fig 11c per-reference cost.  Program
    // (dispatch/action word) fetches hit the same banked memory.
    const double refs = double(total.mem_reads + total.mem_writes +
                               total.dispatch_reads);
    const double mem_energy = refs * memory_ref_energy_pj(mode) * 1e-12;

    // Shared infrastructure is always on (vector RF, DLT, memory leakage
    // fraction): charge the non-lane system power statically.
    const double shared_mw =
        model.system_mw - model.lanes64_mw;
    const double shared_energy = (shared_mw / 1000.0) * seconds;

    return lane_energy + mem_energy + shared_energy;
}

double
tput_per_watt(const UdpCostModel &model, double throughput_mbps)
{
    return throughput_mbps / model.system_power_w();
}

double
cpu_tput_per_watt(const UdpCostModel &model, double throughput_mbps)
{
    return throughput_mbps / model.cpu_tdp_w;
}

} // namespace udp
