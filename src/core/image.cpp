/**
 * @file
 * Program image serialization.
 */
#include "image.hpp"

#include <cstring>
#include <fstream>

namespace udp {

namespace {

constexpr Word kMagic = 0x31504455; // "UDP1"

Word
crc32c(BytesView data)
{
    Word crc = ~Word{0};
    for (const std::uint8_t b : data) {
        crc ^= b;
        for (int k = 0; k < 8; ++k)
            crc = (crc & 1) ? 0x82F63B78u ^ (crc >> 1) : (crc >> 1);
    }
    return ~crc;
}

void
put32(Bytes &out, Word v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

class Reader
{
  public:
    explicit Reader(BytesView in) : in_(in) {}

    Word get32() {
        if (pos_ + 4 > in_.size())
            throw UdpError("udpbin: truncated image");
        const Word v = Word{in_[pos_]} | (Word{in_[pos_ + 1]} << 8) |
                       (Word{in_[pos_ + 2]} << 16) |
                       (Word{in_[pos_ + 3]} << 24);
        pos_ += 4;
        return v;
    }
    std::size_t pos() const { return pos_; }

  private:
    BytesView in_;
    std::size_t pos_ = 0;
};

} // namespace

Bytes
save_program(const Program &prog)
{
    Bytes out;
    out.reserve(16 + 4 * (prog.dispatch.size() + prog.actions.size() +
                          2 * prog.states.size()));
    put32(out, kMagic);
    put32(out, prog.entry);
    put32(out, prog.initial_symbol_bits);
    put32(out, static_cast<Word>(prog.addressing));
    put32(out, prog.init_action_base);
    put32(out, prog.init_action_scale);
    put32(out, prog.init_dispatch_base);
    put32(out, static_cast<Word>(prog.dispatch.size()));
    put32(out, static_cast<Word>(prog.actions.size()));
    put32(out, static_cast<Word>(prog.states.size()));
    for (const Word w : prog.dispatch)
        put32(out, w);
    for (const Word w : prog.actions)
        put32(out, w);
    for (const StateMeta &s : prog.states) {
        put32(out, s.base);
        put32(out, (s.reg_source ? 1u : 0u) | (Word{s.aux_count} << 1) |
                       (Word{s.max_symbol} << 9));
    }
    put32(out, crc32c(out));
    return out;
}

Program
load_program(BytesView image)
{
    if (image.size() < 44 + 4)
        throw UdpError("udpbin: image too small");
    const Word stored_crc =
        Word{image[image.size() - 4]} |
        (Word{image[image.size() - 3]} << 8) |
        (Word{image[image.size() - 2]} << 16) |
        (Word{image[image.size() - 1]} << 24);
    if (crc32c(image.subspan(0, image.size() - 4)) != stored_crc)
        throw UdpError("udpbin: CRC mismatch (corrupt image)");

    Reader rd(image);
    if (rd.get32() != kMagic)
        throw UdpError("udpbin: bad magic");

    Program prog;
    prog.entry = rd.get32();
    prog.initial_symbol_bits = rd.get32();
    const Word mode = rd.get32();
    if (mode > 2)
        throw UdpError("udpbin: bad addressing mode");
    prog.addressing = static_cast<AddressingMode>(mode);
    prog.init_action_base = rd.get32();
    prog.init_action_scale = rd.get32();
    prog.init_dispatch_base = rd.get32();
    const Word nd = rd.get32();
    const Word na = rd.get32();
    const Word ns = rd.get32();
    if (std::uint64_t{nd} + na + 2 * std::uint64_t{ns} >
        (image.size() - rd.pos()) / 4)
        throw UdpError("udpbin: section sizes exceed image");

    prog.dispatch.reserve(nd);
    for (Word i = 0; i < nd; ++i)
        prog.dispatch.push_back(rd.get32());
    prog.actions.reserve(na);
    for (Word i = 0; i < na; ++i)
        prog.actions.push_back(rd.get32());
    prog.states.reserve(ns);
    for (Word i = 0; i < ns; ++i) {
        StateMeta s;
        s.base = rd.get32();
        const Word packed = rd.get32();
        s.reg_source = packed & 1;
        s.aux_count = static_cast<std::uint8_t>((packed >> 1) & 0xFF);
        s.max_symbol = static_cast<std::uint16_t>(packed >> 9);
        prog.states.push_back(s);
    }

    prog.layout.dispatch_words = prog.dispatch.size();
    prog.layout.action_words = prog.actions.size();
    prog.layout.num_states = prog.states.size();
    prog.index_states();
    prog.validate();
    return prog;
}

void
save_program_file(const Program &prog, const std::string &path)
{
    const Bytes data = save_program(prog);
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw UdpError("udpbin: cannot open " + path + " for writing");
    out.write(reinterpret_cast<const char *>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out)
        throw UdpError("udpbin: write failed for " + path);
}

Program
load_program_file(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw UdpError("udpbin: cannot open " + path);
    Bytes data((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
    return load_program(data);
}

} // namespace udp
