/**
 * @file
 * Multi-bank UDP local memory (paper Sections 3.1 and 3.2.4, Figure 10).
 *
 * 1 MiB organized as 64 banks x 16 KiB, each bank with one read and one
 * write port.  Three addressing models:
 *
 *  - Local: each lane is hard-wired to its own bank; a lane's addresses are
 *    offsets within that bank (UAP model).  No sharing hardware needed.
 *  - Global: every lane addresses the full 1 MiB; needs wider addresses and
 *    a crossbar, roughly doubling reference energy (Fig 11c: 8.8 pJ/ref vs
 *    4.3 pJ/ref).
 *  - Restricted: a per-lane base register opens a window; code is generated
 *    as if local, the base shifts the window (the UDP choice).
 *
 * Consistency: the UDP "detects and stalls" conflicting same-cycle
 * references; we model per-bank port contention by counting serialized
 * extra cycles (see `BankArbiter`).
 */
#pragma once

#include "types.hpp"

#include <array>

namespace udp {

/// Memory addressing model (Figure 10).
enum class AddressingMode : std::uint8_t { Local, Global, Restricted };

/// Printable name of an addressing mode.
std::string_view addressing_mode_name(AddressingMode m);

/// Per-reference access energy in picojoules (Fig 11c; CACTI 6.5 model).
double memory_ref_energy_pj(AddressingMode m);

/**
 * The shared 1 MiB local memory.
 *
 * Lanes access it through lane-relative addresses that are translated per
 * the addressing mode.  All accesses are bounds-checked; a lane escaping
 * its window is a program bug and raises UdpError.
 */
class LocalMemory
{
  public:
    explicit LocalMemory(AddressingMode mode = AddressingMode::Restricted);

    AddressingMode mode() const { return mode_; }
    void set_mode(AddressingMode m) { mode_ = m; }

    /// Raw backing store (tests, DMA-style staging by the host).
    Bytes &raw() { return mem_; }
    const Bytes &raw() const { return mem_; }

    /// Zero all contents.
    void clear();

    /**
     * Translate a lane-relative byte address to a physical byte address.
     *
     * @param lane       issuing lane id
     * @param addr       lane-relative byte address
     * @param base       lane's window base register (Restricted mode only)
     */
    ByteAddr translate(unsigned lane, ByteAddr addr, ByteAddr base) const;

    /// Bank holding a physical byte address.
    static unsigned bank_of(ByteAddr phys) {
        return static_cast<unsigned>(phys / kBankBytes);
    }

    std::uint8_t read8(ByteAddr phys) const;
    void write8(ByteAddr phys, std::uint8_t v);
    Word read32(ByteAddr phys) const;          ///< little-endian
    void write32(ByteAddr phys, Word v);

  private:
    void check(ByteAddr phys, std::size_t len) const;

    AddressingMode mode_;
    Bytes mem_;
};

/**
 * Per-cycle bank port arbiter.
 *
 * Each bank serves 1 read + 1 write per cycle; same-cycle excess requests
 * on a bank stall the requesting lanes (paper: "detects and stalls
 * conflicting references ... simple arbitration").  Usage per machine
 * cycle: `begin_cycle()`, then `request()` per access returning the number
 * of extra stall cycles that access experiences.
 */
class BankArbiter
{
  public:
    void begin_cycle();

    /// Register an access; returns stall cycles (0 when the port was free).
    Cycles request(unsigned bank, bool is_write);

    /// Total stall cycles handed out since construction.
    Cycles total_stalls() const { return total_stalls_; }

  private:
    std::array<std::uint8_t, kNumBanks> reads_{};
    std::array<std::uint8_t, kNumBanks> writes_{};
    Cycles total_stalls_ = 0;
};

} // namespace udp
