/**
 * @file
 * Threaded-code execution backend: compile once, dispatch flat.
 *
 * The predecoded fast path (decoded_program.hpp) removed per-step
 * decode, but still pays a per-micro-op `switch` in the action unit and
 * walks per-state structures per dispatch.  This layer lowers a
 * `DecodedProgram` once more, into a `CompiledProgram`:
 *
 *  - every action word becomes a `CompiledOp`: a function-pointer
 *    handler plus pre-extracted operands and a pre-resolved successor
 *    index, laid out in one contiguous stream (chains and Gotoact
 *    targets are just `next` links — no switch, no bounds check in the
 *    hot loop; out-of-range fetches land on a trap sentinel op);
 *  - every (state, symbol) pair becomes a `ResolvedArc`: the labeled
 *    slot probe, signature check, auxiliary miss walk and attach
 *    resolution collapse into one table entry holding the exact
 *    counter charges and the *compiled index* of the next state — no
 *    per-step pointer chasing.
 *
 * One compiled image is shared read-only by all 64 lanes and across
 * waves via `shared_compiled()`, the same content-fingerprint cache
 * discipline as `shared_decoded()`.
 *
 * `ThreadedEngine` interprets the compiled image for a single lane
 * (resumable, `step_once`-compatible) or for a whole `LaneBlock` — the
 * struct-of-arrays batch of resident lanes that `Machine::run_parallel`
 * steps in lockstep chunks on one host thread.
 *
 * Like predecoding, this tier is purely host-performance: simulated
 * counters, outputs, accepts, faults and trap cycles are bit-identical
 * to both interpreter paths (pinned by tests/test_threaded.cpp).
 * Select tiers with UDP_SIM_BACKEND=legacy|predecode|threaded or
 * `set_sim_backend()` (decoded_program.hpp).
 */
#pragma once

#include "decoded_program.hpp"
#include "lane.hpp"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace udp {

class CompiledProgram;
struct CompiledOp;

/// Per-chain-run scratch the op handlers accumulate into: local copies
/// of the hottest LaneStats counters (flushed to the lane at loop
/// boundaries and before any exception escapes) plus the compiled-image
/// geometry the chain walker needs.
struct ThreadedCtx {
    const CompiledOp *ops = nullptr;
    std::uint32_t nops = 0;     ///< real action words (sentinel excluded)
    std::uint32_t sentinel = 0; ///< index of the out-of-range trap op
    // Local accumulators (order-independent sums; see flush()).
    std::uint64_t cycles = 0;
    std::uint64_t dispatches = 0;
    std::uint64_t dispatch_reads = 0;
    std::uint64_t sig_misses = 0;
    std::uint64_t actions = 0;
    std::uint64_t stream_bits = 0; ///< wrapping (refills subtract)
};

/// Exit disposition of one compiled micro-op.
enum class OpExit : std::uint8_t { Next, Done, Reject };

using OpFn = OpExit (*)(Lane &, ThreadedCtx &, const CompiledOp &);

/// One lowered action word: handler + pre-extracted operands + the
/// pre-resolved successor index (chain fall-through or Gotoact target).
struct CompiledOp {
    OpFn fn = nullptr;
    std::uint32_t next = 0; ///< ops index to continue at when !last
    std::int32_t imm = 0;
    Word imm_w = 0;         ///< imm pre-cast to Word (the common use)
    std::uint8_t dst = 0;
    std::uint8_t ref = 0;
    std::uint8_t src = 0;
    std::uint8_t imm1 = 0;
    std::uint8_t last = 0;  ///< chain terminator (compiled 0 for Gotoact)
    Opcode op = Opcode::Nop; ///< for the disassembler
    Word raw = 0;           ///< source word (fetch-time re-decode on trap)
};

/// One fully resolved (state, symbol) dispatch outcome.
struct ResolvedArc {
    enum Kind : std::uint8_t {
        Reject = 0,  ///< no transition: lane rejects (after charges)
        Take = 1,    ///< follow `target` (running actions if any)
        Invalid = 2, ///< undecodable slot: re-decode `raw_slot` (throws)
    };
    std::uint8_t kind = Reject;
    std::uint8_t miss = 0;      ///< 1 = charge the sig-miss cycle+counter
    std::uint8_t refill_bits = 0; ///< Refill transitions: push-back bits
    std::uint8_t has_act = 0;
    std::uint8_t act_dynamic = 0; ///< resolve attach vs live action base
    std::uint8_t att_ref = 0;     ///< raw attach ref (dynamic resolution)
    /// Dispatch-word reads this arc charges (labeled probe + miss walk;
    /// up to 256, hence not uint8).
    std::uint16_t add_reads = 0;
    std::uint32_t target = 0;     ///< window-relative 12-bit target
    std::uint32_t act = 0;        ///< static ops index (sentinel-clamped)
    std::int32_t next_state = -1; ///< static compiled state ix (-1 unknown)
    std::uint32_t next_full = 0;  ///< init_dispatch_base + target
    std::uint32_t raw_slot = 0;   ///< Invalid: dispatch slot to re-decode
};

/// Per-state compiled metadata: a dense arc table over the symbol range
/// plus the precomputed common/miss arcs.
struct CompiledState {
    std::uint32_t base = 0;     ///< full word address of the state
    std::uint32_t arc_base = 0; ///< arcs()[arc_base + sym], sym<=max_symbol
    std::uint16_t max_symbol = 0;
    std::uint8_t reg_source = 0;
    std::uint8_t has_common = 0;
    ResolvedArc common_arc; ///< replaces the labeled table when present
    ResolvedArc miss_arc;   ///< sym > max_symbol (no labeled-slot read)
};

/**
 * The threaded-code image.  Built once per program from its
 * DecodedProgram; immutable after, so one instance is safely shared
 * read-only across lanes, waves and host threads.
 */
class CompiledProgram
{
  public:
    CompiledProgram(const Program &prog,
                    std::shared_ptr<const DecodedProgram> dec);

    const CompiledOp *ops() const { return ops_.data(); }
    /// Real action words; ops()[op_count()] is the trap sentinel.
    std::uint32_t op_count() const { return nops_; }
    std::uint32_t sentinel() const { return nops_; }

    const CompiledState &state(std::size_t ix) const { return states_[ix]; }
    std::size_t num_states() const { return states_.size(); }
    const ResolvedArc *arcs() const { return arcs_.data(); }

    /// Compiled state index for a full dispatch base; -1 when unknown.
    std::int32_t state_index(std::size_t full_base) const {
        return full_base < slot_state_.size() ? slot_state_[full_base] : -1;
    }

    /// True when any action rewrites the dispatch window base (Setbase
    /// with dst != 0): arc next-state links must resolve at run time.
    bool dyn_dispatch() const { return dyn_dispatch_; }
    /// True when any action rewrites the action window (Setab):
    /// scaled-offset attaches must resolve at run time.
    bool dyn_action() const { return dyn_action_; }
    std::uint32_t init_dispatch_base() const { return init_dispatch_base_; }

    /// The decoded image this was lowered from (kept alive for the NFA
    /// executor and the instrumented loops, which run on it).
    const std::shared_ptr<const DecodedProgram> &decoded_shared() const {
        return decoded_;
    }

    /// Content fingerprint of the source program (the cache key).
    std::uint64_t fingerprint() const { return fingerprint_; }

  private:
    ResolvedArc resolve_take(const Transition &t, std::uint8_t miss,
                             std::uint16_t add_reads) const;
    ResolvedArc resolve_miss(const DecodedState &d,
                             std::uint16_t extra_reads) const;

    std::vector<CompiledOp> ops_;
    std::vector<CompiledState> states_;
    std::vector<ResolvedArc> arcs_;
    std::vector<std::int32_t> slot_state_; ///< base -> index into states_
    std::shared_ptr<const DecodedProgram> decoded_;
    std::uint64_t fingerprint_ = 0;
    std::uint32_t nops_ = 0;
    std::uint32_t init_dispatch_base_ = 0;
    std::uint32_t init_action_base_ = 0;
    unsigned init_action_scale_ = 0;
    bool dyn_dispatch_ = false;
    bool dyn_action_ = false;
};

/**
 * Process-wide compiled-image cache: the shared CompiledProgram for
 * `prog`, built (via `shared_decoded`) on first use.  Keyed by content
 * fingerprint, same sharing/lifetime discipline as shared_decoded().
 * Thread-safe.
 */
std::shared_ptr<const CompiledProgram> shared_compiled(const Program &prog);

/// Human-readable listing of the flat micro-op stream and arc tables —
/// `--dump-compiled` renders this next to `disassemble_state` output
/// when backends diverge.
std::string disassemble_compiled(const CompiledProgram &cp);

/**
 * Struct-of-arrays hot state for a batch of resident lanes: one host
 * thread steps every live lane in lockstep chunks (run_block), keeping
 * the shared compiled image and the block bookkeeping hot instead of
 * re-deriving per-lane run state each chunk.
 */
struct LaneBlock {
    std::vector<Lane *> lanes;
    std::vector<std::uint32_t> slot;     ///< machine lane index
    std::vector<std::int32_t> state_ix;  ///< compiled resume state
    std::vector<std::uint64_t> budget;   ///< per-lane cycle budget
    std::vector<Cycles> trap_at;         ///< forced-trap cycle (0 = off)
    std::vector<std::uint8_t> live;
    std::vector<LaneStatus> status;

    void add(Lane *ln, std::uint32_t lane_slot, std::uint64_t cycles,
             Cycles trap_cycle);
    std::size_t size() const { return lanes.size(); }
};

/**
 * The threaded-code interpreter.  A friend of Lane/StreamBuffer: it
 * *is* the lane's inner loop for the Threaded backend, entered from
 * Lane::run_steps / Lane::step_once (single lane, resumable) or from
 * Machine::run_parallel (LaneBlock batches).
 */
class ThreadedEngine
{
  public:
    /// `carry` sentinel: resolve the compiled state from Lane::cur_state_.
    static constexpr std::int32_t kNoResume = -2;

    /// Up to `n` dispatch steps over the compiled image.  `carry` holds
    /// the compiled state index across calls (kNoResume = re-resolve);
    /// local counters are flushed to the lane's stats before returning
    /// or rethrowing.  Call inside Lane::run_guarded.
    static LaneStatus run_steps_body(Lane &ln, std::uint64_t n,
                                     std::int32_t &carry);

    /// Step every live lane of the block to completion in lockstep
    /// chunks, replicating Lane::run's chunk/trap/watchdog boundaries
    /// bit for bit.  Fills LaneBlock::status.
    static void run_block(LaneBlock &blk);

    /// Handler lookup for the compiler (CompiledProgram's ctor).
    static OpFn op_fn(Opcode op);
    static OpFn invalid_fn(); ///< undecodable word: fetch-time re-decode
    static OpFn oob_fn();     ///< out-of-range fetch trap sentinel

  private:
    struct Ops; // the op handler table (threaded_program.cpp)

    static LaneStatus exec_chain(Lane &ln, ThreadedCtx &c,
                                 std::uint32_t ix);
    static void flush(Lane &ln, ThreadedCtx &c);
    static Word read_sym(StreamBuffer &sb, unsigned width);
};

} // namespace udp
