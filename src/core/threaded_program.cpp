/**
 * @file
 * Threaded-code backend: the CompiledProgram lowering pass, the op
 * handler table, the single-lane resumable engine and the LaneBlock
 * batch runner.
 *
 * Equivalence discipline: every counter charge, fault message and
 * side-effect order below is transcribed from the reference interpreter
 * in lane.cpp (`step_fast` / `exec_actions_impl`).  The chain walker
 * charges the fetch costs unconditionally and the two trap ops
 * (undecodable word, out-of-range fetch) *undo* the charges the legacy
 * path would not have made before throwing the identical error —
 * keeping the hot loop free of per-op bounds and validity checks.
 */
#include "threaded_program.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <mutex>
#include <unordered_map>

namespace udp {

namespace {

/// CRC32-C (Castagnoli) byte-step table — same contents as the lane
/// interpreter's (the polynomial is the contract, not the object).
const std::array<Word, 256> &
crc32c_table()
{
    static const std::array<Word, 256> table = [] {
        std::array<Word, 256> t{};
        for (Word i = 0; i < 256; ++i) {
            Word c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : (c >> 1);
            t[i] = c;
        }
        return t;
    }();
    return table;
}

/// Snappy-style multiplicative hash (Section 3.2.5 "hash action").
Word
hash_mix(Word v, unsigned table_log2)
{
    const Word h = v * 0x1E35A7BDu;
    if (table_log2 == 0 || table_log2 >= 32)
        return h;
    return h >> (32 - table_log2);
}

} // namespace

// ---------------------------------------------------------------------------
// Op handlers.
//
// Each handler is one lowered `case` of Lane::exec_actions_impl's switch.
// They are members of a struct nested in ThreadedEngine so they inherit
// its friend access to Lane and StreamBuffer.
// ---------------------------------------------------------------------------

#define UDP_THREADED_OP(name)                                              \
    static OpExit name([[maybe_unused]] Lane &ln,                          \
                       [[maybe_unused]] ThreadedCtx &c,                    \
                       [[maybe_unused]] const CompiledOp &o)

struct ThreadedEngine::Ops {
    static Word rs(const Lane &ln, const CompiledOp &o) {
        return o.src == kRegStreamIdx
                   ? static_cast<Word>(ln.sb_.pos_bytes())
                   : ln.regs_[o.src];
    }
    static Word rr(const Lane &ln, const CompiledOp &o) {
        return o.ref == kRegStreamIdx
                   ? static_cast<Word>(ln.sb_.pos_bytes())
                   : ln.regs_[o.ref];
    }
    static void wr(Lane &ln, const CompiledOp &o, Word v) {
        // set_reg without the range check: decoded dst is a 4-bit field.
        if (o.dst == kRegStreamIdx) {
            ln.sb_.seek_bits(std::uint64_t{v} * 8);
            return;
        }
        ln.regs_[o.dst] = v;
    }

    // --- ALU, immediate forms ---
    UDP_THREADED_OP(addi) { wr(ln, o, rs(ln, o) + o.imm_w); return OpExit::Next; }
    UDP_THREADED_OP(subi) { wr(ln, o, rs(ln, o) - o.imm_w); return OpExit::Next; }
    UDP_THREADED_OP(andi) { wr(ln, o, rs(ln, o) & o.imm_w); return OpExit::Next; }
    UDP_THREADED_OP(ori) { wr(ln, o, rs(ln, o) | o.imm_w); return OpExit::Next; }
    UDP_THREADED_OP(xori) { wr(ln, o, rs(ln, o) ^ o.imm_w); return OpExit::Next; }
    UDP_THREADED_OP(shli) {
        wr(ln, o, rs(ln, o) << (o.imm & 31));
        return OpExit::Next;
    }
    UDP_THREADED_OP(shri) {
        wr(ln, o, rs(ln, o) >> (o.imm & 31));
        return OpExit::Next;
    }
    UDP_THREADED_OP(sari) {
        wr(ln, o,
           static_cast<Word>(static_cast<std::int32_t>(rs(ln, o)) >>
                             (o.imm & 31)));
        return OpExit::Next;
    }
    UDP_THREADED_OP(movi) { wr(ln, o, o.imm_w); return OpExit::Next; }
    UDP_THREADED_OP(lui) {
        wr(ln, o, (ln.regs_[o.dst] & 0xFFFFu) | (o.imm_w << 16));
        return OpExit::Next;
    }
    UDP_THREADED_OP(cmpeqi) {
        wr(ln, o, rs(ln, o) == o.imm_w);
        return OpExit::Next;
    }
    UDP_THREADED_OP(cmplti) {
        wr(ln, o, static_cast<std::int32_t>(rs(ln, o)) < o.imm);
        return OpExit::Next;
    }
    UDP_THREADED_OP(cmpltui) {
        wr(ln, o, rs(ln, o) < o.imm_w);
        return OpExit::Next;
    }
    UDP_THREADED_OP(muli) { wr(ln, o, rs(ln, o) * o.imm_w); return OpExit::Next; }

    // --- ALU, register forms ---
    UDP_THREADED_OP(add) { wr(ln, o, rr(ln, o) + rs(ln, o)); return OpExit::Next; }
    UDP_THREADED_OP(sub) { wr(ln, o, rr(ln, o) - rs(ln, o)); return OpExit::Next; }
    UDP_THREADED_OP(and_) { wr(ln, o, rr(ln, o) & rs(ln, o)); return OpExit::Next; }
    UDP_THREADED_OP(or_) { wr(ln, o, rr(ln, o) | rs(ln, o)); return OpExit::Next; }
    UDP_THREADED_OP(xor_) { wr(ln, o, rr(ln, o) ^ rs(ln, o)); return OpExit::Next; }
    UDP_THREADED_OP(shl) {
        wr(ln, o, rr(ln, o) << (rs(ln, o) & 31));
        return OpExit::Next;
    }
    UDP_THREADED_OP(shr) {
        wr(ln, o, rr(ln, o) >> (rs(ln, o) & 31));
        return OpExit::Next;
    }
    UDP_THREADED_OP(mov) { wr(ln, o, rs(ln, o)); return OpExit::Next; }
    UDP_THREADED_OP(not_) { wr(ln, o, ~rs(ln, o)); return OpExit::Next; }
    UDP_THREADED_OP(neg) { wr(ln, o, 0u - rs(ln, o)); return OpExit::Next; }
    UDP_THREADED_OP(mul) { wr(ln, o, rr(ln, o) * rs(ln, o)); return OpExit::Next; }
    UDP_THREADED_OP(min) {
        wr(ln, o, std::min(rr(ln, o), rs(ln, o)));
        return OpExit::Next;
    }
    UDP_THREADED_OP(max) {
        wr(ln, o, std::max(rr(ln, o), rs(ln, o)));
        return OpExit::Next;
    }
    UDP_THREADED_OP(cmpeq) {
        wr(ln, o, rr(ln, o) == rs(ln, o));
        return OpExit::Next;
    }
    UDP_THREADED_OP(cmplt) {
        wr(ln, o, rr(ln, o) < rs(ln, o));
        return OpExit::Next;
    }
    UDP_THREADED_OP(select) {
        wr(ln, o, ln.regs_[o.dst] ? rr(ln, o) : rs(ln, o));
        return OpExit::Next;
    }

    // --- Memory ---
    UDP_THREADED_OP(ldw) {
        wr(ln, o, ln.mem_read32(rs(ln, o) + o.imm_w));
        return OpExit::Next;
    }
    UDP_THREADED_OP(stw) {
        ln.mem_write32(rs(ln, o) + o.imm_w, ln.regs_[o.dst]);
        return OpExit::Next;
    }
    UDP_THREADED_OP(ldb) {
        wr(ln, o, ln.mem_read8(rs(ln, o) + o.imm_w));
        return OpExit::Next;
    }
    UDP_THREADED_OP(stb) {
        ln.mem_write8(rs(ln, o) + o.imm_w,
                      static_cast<std::uint8_t>(ln.regs_[o.dst]));
        return OpExit::Next;
    }
    UDP_THREADED_OP(bininc) {
        const Word addr_b = rs(ln, o) * 4 + o.imm_w;
        const Word v = ln.mem_read32(addr_b) + 1;
        ln.mem_write32(addr_b, v);
        return OpExit::Next;
    }

    // --- Stream / configuration ---
    UDP_THREADED_OP(setss) {
        if (o.imm < 1 || o.imm > 32)
            throw UdpFaultError(FaultCode::BadAction,
                                "Lane: setss width must be 1..32");
        ln.symbol_bits_ = static_cast<unsigned>(o.imm);
        return OpExit::Next;
    }
    UDP_THREADED_OP(setssr) {
        const Word v = rs(ln, o);
        if (v < 1 || v > 32)
            throw UdpFaultError(FaultCode::BadAction,
                                "Lane: setssr width must be 1..32");
        ln.symbol_bits_ = v;
        return OpExit::Next;
    }
    UDP_THREADED_OP(setbase) {
        if (o.dst == 0)
            ln.window_base_ = rs(ln, o) + o.imm_w;
        else
            ln.dispatch_base_ = rs(ln, o) + o.imm_w;
        return OpExit::Next;
    }
    UDP_THREADED_OP(setab) {
        ln.action_base_ = rs(ln, o) + o.imm_w;
        ln.action_scale_ = o.imm1;
        return OpExit::Next;
    }
    UDP_THREADED_OP(skip) {
        ln.sb_.skip(static_cast<std::uint64_t>(o.imm));
        c.stream_bits += static_cast<std::uint64_t>(o.imm);
        return OpExit::Next;
    }
    UDP_THREADED_OP(refill) {
        ln.sb_.refill(static_cast<std::uint64_t>(o.imm));
        c.stream_bits -= static_cast<std::uint64_t>(o.imm);
        return OpExit::Next;
    }
    UDP_THREADED_OP(peek) {
        wr(ln, o,
           ln.sb_.exhausted(static_cast<unsigned>(o.imm))
               ? 0u
               : ln.sb_.peek(static_cast<unsigned>(o.imm)));
        return OpExit::Next;
    }
    UDP_THREADED_OP(read) {
        // An action-unit read; does not disturb the dispatch unit's
        // latched symbol (Lastsym).
        c.stream_bits += static_cast<unsigned>(o.imm);
        wr(ln, o, ln.sb_.read(static_cast<unsigned>(o.imm)));
        return OpExit::Next;
    }
    UDP_THREADED_OP(tell) {
        wr(ln, o, static_cast<Word>(ln.sb_.pos_bits()));
        return OpExit::Next;
    }
    UDP_THREADED_OP(lastsym) {
        wr(ln, o, ln.last_symbol_);
        return OpExit::Next;
    }
    UDP_THREADED_OP(setstream) {
        const std::uint64_t bit_pos =
            std::uint64_t{rs(ln, o)} + static_cast<std::uint64_t>(o.imm);
        const std::uint64_t old = ln.sb_.pos_bits();
        ln.sb_.seek_bits(bit_pos);
        c.stream_bits += bit_pos - old; // net consumption delta
        return OpExit::Next;
    }

    // --- Specialized ---
    UDP_THREADED_OP(emitlut) {
        const Word entry =
            rs(ln, o) + ((o.imm_w << 8) | ln.last_symbol_) * 16;
        const std::uint8_t count = ln.mem_read8(entry);
        if (count > 15)
            throw UdpFaultError(FaultCode::BadAction,
                                "Lane: emitlut entry count exceeds 15");
        ++c.cycles; // table fetch pipeline stage
        for (unsigned i = 0; i < count; ++i)
            ln.out_byte(ln.mem_.read8(ln.mem_translate(entry + 1 + i)));
        ++ln.stats_.mem_reads; // one 8-byte-wide entry fetch
        return OpExit::Next;
    }
    UDP_THREADED_OP(hash) {
        wr(ln, o, hash_mix(rs(ln, o), static_cast<unsigned>(o.imm)));
        return OpExit::Next;
    }
    UDP_THREADED_OP(hash2) {
        wr(ln, o, hash_mix(rr(ln, o) ^ (rs(ln, o) * 0x85EBCA6Bu), 0));
        return OpExit::Next;
    }
    UDP_THREADED_OP(loopcmp) {
        const Word rrv = rr(ln, o);
        const Word rsv = rs(ln, o);
        const Word bound = ln.regs_[o.dst];
        Word n = 0;
        while (n < bound && ln.mem_read8(rrv + n) == ln.mem_read8(rsv + n))
            ++n;
        c.cycles += ceil_div(std::max<Word>(n, 1), 8) - 1;
        wr(ln, o, n);
        return OpExit::Next;
    }
    UDP_THREADED_OP(loopcpy) {
        const Word rrv = rr(ln, o);
        const Word rsv = rs(ln, o);
        const Word n = ln.regs_[o.dst];
        // Forward byte order: overlapping copies replicate the prefix.
        for (Word i = 0; i < n; ++i) {
            const std::uint8_t b = ln.mem_read8(rsv + i);
            ln.mem_write8(rrv + i, b);
        }
        c.cycles += n ? ceil_div(n, 8) - 1 : 0;
        return OpExit::Next;
    }
    UDP_THREADED_OP(loopcpyo) {
        const Word rsv = rs(ln, o);
        const Word n = ln.regs_[o.dst];
        for (Word i = 0; i < n; ++i)
            ln.out_byte(ln.mem_read8(rsv + i));
        c.cycles += n ? ceil_div(n, 8) - 1 : 0;
        return OpExit::Next;
    }
    UDP_THREADED_OP(crc) {
        wr(ln, o, crc32c_table()[(ln.regs_[o.dst] ^ rs(ln, o)) & 0xFF] ^
                      (ln.regs_[o.dst] >> 8));
        return OpExit::Next;
    }

    // --- Output ---
    UDP_THREADED_OP(outb) {
        ln.out_byte(static_cast<std::uint8_t>(rs(ln, o)));
        return OpExit::Next;
    }
    UDP_THREADED_OP(outw) {
        const Word v = rs(ln, o);
        ln.out_byte(static_cast<std::uint8_t>(v));
        ln.out_byte(static_cast<std::uint8_t>(v >> 8));
        ln.out_byte(static_cast<std::uint8_t>(v >> 16));
        ln.out_byte(static_cast<std::uint8_t>(v >> 24));
        return OpExit::Next;
    }
    UDP_THREADED_OP(outbits) {
        ln.out_bits(rs(ln, o), static_cast<unsigned>(o.imm));
        return OpExit::Next;
    }
    UDP_THREADED_OP(outflush) {
        ln.out_flush();
        return OpExit::Next;
    }
    UDP_THREADED_OP(outi) {
        ln.out_byte(static_cast<std::uint8_t>(o.imm));
        return OpExit::Next;
    }
    UDP_THREADED_OP(outbitsr) {
        const Word w = ln.regs_[o.dst];
        if (w >= 1 && w <= 32)
            ln.out_bits(rs(ln, o), w);
        else if (w != 0)
            throw UdpFaultError(FaultCode::BadAction,
                                "Lane: outbitsr width must be 0..32");
        return OpExit::Next;
    }

    // --- Control ---
    UDP_THREADED_OP(accept) {
        ++ln.stats_.accepts;
        if (ln.accepts_.size() < ln.accept_capacity_)
            ln.accepts_.push_back({ln.sb_.pos_bits(), o.imm_w});
        return OpExit::Next;
    }
    UDP_THREADED_OP(halt) { return OpExit::Done; }
    UDP_THREADED_OP(fail) { return OpExit::Reject; }
    UDP_THREADED_OP(gotoact) { return OpExit::Next; } // next = target
    UDP_THREADED_OP(nop) { return OpExit::Next; }

    // --- Trap ops ---

    /// Undecodable action word.  The chain walker charged the fetch
    /// unconditionally; the legacy path throws after charging only the
    /// dispatch read, so undo the action/cycle charges then re-decode
    /// the raw word to raise the identical error.
    UDP_THREADED_OP(invalid) {
        --c.actions;
        --c.cycles;
        decode_action(o.raw); // throws the legacy error
        throw UdpFaultError(FaultCode::BadAction,
                            "Lane: undecodable action word");
    }

    /// Out-of-range fetch sentinel: the legacy path throws before any
    /// charge, so undo all three.
    UDP_THREADED_OP(oob) {
        --c.dispatch_reads;
        --c.actions;
        --c.cycles;
        throw UdpFaultError(FaultCode::FetchOutOfRange,
                            "Lane: action fetch out of range");
    }

    /// Defined-but-unhandled opcode (legacy `default:` — charges stay).
    UDP_THREADED_OP(unimpl) {
        throw UdpFaultError(FaultCode::UnimplementedOpcode,
                            "Lane: unimplemented opcode");
    }

    static const std::array<OpFn, 128> &table();
};

#undef UDP_THREADED_OP

const std::array<OpFn, 128> &
ThreadedEngine::Ops::table()
{
    static const std::array<OpFn, 128> t = [] {
        std::array<OpFn, 128> a{};
        a.fill(&Ops::unimpl);
        const auto set = [&](Opcode op, OpFn f) {
            a[static_cast<std::size_t>(op)] = f;
        };
        set(Opcode::Addi, &Ops::addi);
        set(Opcode::Subi, &Ops::subi);
        set(Opcode::Andi, &Ops::andi);
        set(Opcode::Ori, &Ops::ori);
        set(Opcode::Xori, &Ops::xori);
        set(Opcode::Shli, &Ops::shli);
        set(Opcode::Shri, &Ops::shri);
        set(Opcode::Sari, &Ops::sari);
        set(Opcode::Movi, &Ops::movi);
        set(Opcode::Lui, &Ops::lui);
        set(Opcode::Cmpeqi, &Ops::cmpeqi);
        set(Opcode::Cmplti, &Ops::cmplti);
        set(Opcode::Cmpltui, &Ops::cmpltui);
        set(Opcode::Muli, &Ops::muli);
        set(Opcode::Add, &Ops::add);
        set(Opcode::Sub, &Ops::sub);
        set(Opcode::And, &Ops::and_);
        set(Opcode::Or, &Ops::or_);
        set(Opcode::Xor, &Ops::xor_);
        set(Opcode::Shl, &Ops::shl);
        set(Opcode::Shr, &Ops::shr);
        set(Opcode::Mov, &Ops::mov);
        set(Opcode::Not, &Ops::not_);
        set(Opcode::Neg, &Ops::neg);
        set(Opcode::Mul, &Ops::mul);
        set(Opcode::Min, &Ops::min);
        set(Opcode::Max, &Ops::max);
        set(Opcode::Cmpeq, &Ops::cmpeq);
        set(Opcode::Cmplt, &Ops::cmplt);
        set(Opcode::Select, &Ops::select);
        set(Opcode::Ldw, &Ops::ldw);
        set(Opcode::Stw, &Ops::stw);
        set(Opcode::Ldb, &Ops::ldb);
        set(Opcode::Stb, &Ops::stb);
        set(Opcode::Bininc, &Ops::bininc);
        set(Opcode::Setss, &Ops::setss);
        set(Opcode::Setssr, &Ops::setssr);
        set(Opcode::Setbase, &Ops::setbase);
        set(Opcode::Setab, &Ops::setab);
        set(Opcode::Skip, &Ops::skip);
        set(Opcode::Refill, &Ops::refill);
        set(Opcode::Peek, &Ops::peek);
        set(Opcode::Read, &Ops::read);
        set(Opcode::Tell, &Ops::tell);
        set(Opcode::Setstream, &Ops::setstream);
        set(Opcode::Lastsym, &Ops::lastsym);
        set(Opcode::Emitlut, &Ops::emitlut);
        set(Opcode::Hash, &Ops::hash);
        set(Opcode::Hash2, &Ops::hash2);
        set(Opcode::Loopcmp, &Ops::loopcmp);
        set(Opcode::Loopcpy, &Ops::loopcpy);
        set(Opcode::Loopcpyo, &Ops::loopcpyo);
        set(Opcode::Crc, &Ops::crc);
        set(Opcode::Outb, &Ops::outb);
        set(Opcode::Outw, &Ops::outw);
        set(Opcode::Outbits, &Ops::outbits);
        set(Opcode::Outflush, &Ops::outflush);
        set(Opcode::Outi, &Ops::outi);
        set(Opcode::Outbitsr, &Ops::outbitsr);
        set(Opcode::Accept, &Ops::accept);
        set(Opcode::Halt, &Ops::halt);
        set(Opcode::Fail, &Ops::fail);
        set(Opcode::Gotoact, &Ops::gotoact);
        set(Opcode::Nop, &Ops::nop);
        return a;
    }();
    return t;
}

OpFn
ThreadedEngine::op_fn(Opcode op)
{
    return Ops::table()[static_cast<std::size_t>(op) & 127];
}

OpFn
ThreadedEngine::invalid_fn()
{
    return &Ops::invalid;
}

OpFn
ThreadedEngine::oob_fn()
{
    return &Ops::oob;
}

// ---------------------------------------------------------------------------
// CompiledProgram: the lowering pass.
// ---------------------------------------------------------------------------

CompiledProgram::CompiledProgram(const Program &prog,
                                 std::shared_ptr<const DecodedProgram> dec)
    : decoded_(std::move(dec))
{
    if (!decoded_)
        decoded_ = std::make_shared<const DecodedProgram>(prog);
    const DecodedProgram &d = *decoded_;

    fingerprint_ = d.fingerprint();
    init_dispatch_base_ = prog.init_dispatch_base;
    init_action_base_ = prog.init_action_base;
    init_action_scale_ = prog.init_action_scale;
    nops_ = static_cast<std::uint32_t>(d.action_words());

    // Dynamic-base scan: a Setbase into the dispatch window invalidates
    // the compiled next-state links; a Setab invalidates static
    // scaled-offset attach resolution.  Either forces the (cheap)
    // run-time re-resolution for the whole program.
    for (std::size_t a = 0; a < d.action_words(); ++a) {
        const Action &act = d.action(a);
        if (act.op == kInvalidOpcode)
            continue;
        if (act.op == Opcode::Setbase && act.dst != 0)
            dyn_dispatch_ = true;
        else if (act.op == Opcode::Setab)
            dyn_action_ = true;
    }

    // Lower every action word into the flat op stream; one extra trap
    // sentinel terminates it so the chain walker needs no bounds check.
    ops_.resize(std::size_t{nops_} + 1);
    for (std::uint32_t a = 0; a < nops_; ++a) {
        const Action &act = d.action(a);
        CompiledOp &o = ops_[a];
        o.raw = prog.actions[a];
        if (act.op == kInvalidOpcode) {
            o.fn = ThreadedEngine::invalid_fn();
            o.op = kInvalidOpcode;
            o.last = 1;
            o.next = nops_;
            continue;
        }
        o.fn = ThreadedEngine::op_fn(act.op);
        o.op = act.op;
        o.dst = act.dst;
        o.ref = act.ref;
        o.src = act.src;
        o.imm = act.imm;
        o.imm_w = static_cast<Word>(act.imm);
        o.imm1 = static_cast<std::uint8_t>(act.imm1);
        if (act.op == Opcode::Gotoact) {
            // The jump is the `next` link; out-of-range targets fall on
            // the sentinel, raising the fetch fault at the right moment.
            const std::size_t t = static_cast<std::size_t>(act.imm);
            o.next = t < nops_ ? static_cast<std::uint32_t>(t) : nops_;
            o.last = 0;
        } else {
            o.last = act.last ? 1 : 0;
            o.next = a + 1; // == sentinel for the final word
        }
    }
    CompiledOp &s = ops_[nops_];
    s.fn = ThreadedEngine::oob_fn();
    s.op = kInvalidOpcode;
    s.last = 1;
    s.next = nops_;

    // Pass 1: the base -> compiled-index map (bases are unique; the
    // DecodedProgram constructor validated them).
    slot_state_.assign(prog.dispatch.size(), -1);
    for (std::size_t i = 0; i < prog.states.size(); ++i)
        slot_state_[prog.states[i].base] = static_cast<std::int32_t>(i);

    // Pass 2: per-state arc tables (forward next-state links resolve
    // against the complete map).
    states_.reserve(prog.states.size());
    for (const StateMeta &sm : prog.states) {
        const DecodedState &ds = *d.state_at(sm.base);
        CompiledState cs;
        cs.base = ds.base;
        cs.max_symbol = ds.max_symbol;
        cs.reg_source = ds.reg_source ? 1 : 0;
        cs.has_common = ds.has_common ? 1 : 0;
        cs.miss_arc = resolve_miss(ds, 0);
        cs.arc_base = static_cast<std::uint32_t>(arcs_.size());
        if (ds.has_common) {
            // Common replaces the labeled table: one arc, and the step
            // loop charges its single dispatch read explicitly.
            cs.common_arc = resolve_take(ds.common, 0, 0);
        } else {
            for (std::uint32_t sym = 0; sym <= ds.max_symbol; ++sym) {
                const std::size_t slot = std::size_t{ds.base} + sym;
                ResolvedArc arc;
                if (slot >= d.dispatch_words()) {
                    arc = resolve_miss(ds, 0);
                } else {
                    const Transition &t = d.transition(slot);
                    if (t.type == kInvalidTransitionType) {
                        arc.kind = ResolvedArc::Invalid;
                        arc.add_reads = 1; // charged before the re-decode
                        arc.raw_slot = static_cast<std::uint32_t>(slot);
                    } else if (t.signature == ds.signature &&
                               (t.type == TransitionType::Labeled ||
                                t.type == TransitionType::Refill ||
                                t.type == TransitionType::Flagged)) {
                        arc = resolve_take(t, 0, 1);
                    } else {
                        arc = resolve_miss(ds, 1);
                    }
                }
                arcs_.push_back(arc);
            }
        }
        states_.push_back(cs);
    }
}

ResolvedArc
CompiledProgram::resolve_take(const Transition &t, std::uint8_t miss,
                              std::uint16_t add_reads) const
{
    ResolvedArc r;
    r.kind = ResolvedArc::Take;
    r.miss = miss;
    r.add_reads = add_reads;
    r.target = t.target;
    r.next_full = init_dispatch_base_ + t.target;
    r.next_state = r.next_full < slot_state_.size()
                       ? slot_state_[r.next_full]
                       : -1;

    std::uint8_t ref = t.attach;
    bool none = false;
    if (t.type == TransitionType::Refill) {
        // Refill attach ABI: high 3 bits = push-back count, low 5 bits
        // = action ref (31 = none).
        r.refill_bits = static_cast<std::uint8_t>(t.attach >> 5);
        ref = t.attach & 0x1F;
        none = (ref == 0x1F);
    } else {
        none = (ref == kNoActions && t.attach_mode == AttachMode::Direct);
    }
    if (!none) {
        r.has_act = 1;
        if (t.attach_mode == AttachMode::Direct) {
            r.act = ref < nops_ ? ref : nops_;
        } else if (!dyn_action_) {
            const std::size_t addr =
                std::size_t{init_action_base_} +
                (std::size_t{ref} << init_action_scale_);
            r.act = addr < nops_ ? static_cast<std::uint32_t>(addr) : nops_;
        } else {
            r.act_dynamic = 1;
            r.att_ref = ref;
        }
    }
    return r;
}

ResolvedArc
CompiledProgram::resolve_miss(const DecodedState &d,
                              std::uint16_t extra_reads) const
{
    if (d.has_miss)
        return resolve_take(
            d.miss, 1,
            static_cast<std::uint16_t>(extra_reads + d.miss_reads));
    ResolvedArc r;
    r.kind = ResolvedArc::Reject;
    r.miss = 1;
    r.add_reads = static_cast<std::uint16_t>(extra_reads + d.miss_reads);
    return r;
}

// ---------------------------------------------------------------------------
// The engine.
// ---------------------------------------------------------------------------

void
ThreadedEngine::flush(Lane &ln, ThreadedCtx &c)
{
    ln.stats_.cycles += c.cycles;
    ln.stats_.dispatches += c.dispatches;
    ln.stats_.dispatch_reads += c.dispatch_reads;
    ln.stats_.sig_misses += c.sig_misses;
    ln.stats_.actions += c.actions;
    ln.stats_.stream_bits += c.stream_bits;
    c.cycles = 0;
    c.dispatches = 0;
    c.dispatch_reads = 0;
    c.sig_misses = 0;
    c.actions = 0;
    c.stream_bits = 0;
}

Word
ThreadedEngine::read_sym(StreamBuffer &sb, unsigned width)
{
    // Byte-aligned whole-byte symbols (the overwhelmingly common case)
    // skip the MSB-first bit-gather loop.  The caller already checked
    // exhausted(width).
    if (width == 8 && (sb.pos_bits_ & 7) == 0) {
        const Word v = sb.data_[static_cast<std::size_t>(sb.pos_bits_ >> 3)];
        sb.pos_bits_ += 8;
        return v;
    }
    return sb.read(width);
}

LaneStatus
ThreadedEngine::exec_chain(Lane &ln, ThreadedCtx &c, std::uint32_t ix)
{
    const CompiledOp *const ops = c.ops;
    for (;;) {
        const CompiledOp &o = ops[ix];
        // Fetch charges, unconditional: the trap ops undo what the
        // legacy path would not have charged.
        ++c.dispatch_reads;
        ++c.actions;
        ++c.cycles;
        const OpExit e = o.fn(ln, c, o);
        if (e == OpExit::Next) {
            if (o.last)
                return LaneStatus::Running;
            ix = o.next;
            continue;
        }
        return e == OpExit::Done ? LaneStatus::Done : LaneStatus::Reject;
    }
}

LaneStatus
ThreadedEngine::run_steps_body(Lane &ln, std::uint64_t n,
                               std::int32_t &carry)
{
    const CompiledProgram &cp = *ln.compiled_;
    const Program &prog = *ln.prog_;
    ThreadedCtx c;
    c.ops = cp.ops();
    c.nops = cp.op_count();
    c.sentinel = cp.sentinel();

    // With no base-rewriting actions and the architectural dispatch
    // base, every arc's compiled next-state link is valid as-is;
    // otherwise re-resolve against the live base each step.
    const bool static_next =
        !cp.dyn_dispatch() &&
        ln.dispatch_base_ == cp.init_dispatch_base();

    std::int32_t ix = carry;
    if (ix == kNoResume)
        ix = cp.state_index(ln.cur_state_);

    LaneStatus out = LaneStatus::Running;
    try {
        for (std::uint64_t i = 0; i < n; ++i) {
            if (ix < 0)
                throw UdpFaultError(
                    FaultCode::BadDispatch,
                    "Lane: dispatch into unknown state base " +
                        std::to_string(ln.cur_state_));
            const CompiledState &cs =
                cp.state(static_cast<std::size_t>(ix));
            const ResolvedArc *arc;
            if (cs.has_common) {
                if (!cs.reg_source) {
                    const unsigned width = ln.symbol_bits_;
                    if (ln.sb_.exhausted(width)) {
                        out = LaneStatus::Done;
                        ln.halted_ = true;
                        ln.halt_status_ = out;
                        break;
                    }
                    c.stream_bits += width;
                    ln.last_symbol_ = read_sym(ln.sb_, width);
                }
                ++c.dispatches;
                ++c.cycles;
                ++c.dispatch_reads;
                arc = &cs.common_arc;
            } else {
                const unsigned width = ln.symbol_bits_;
                Word sym;
                if (cs.reg_source) {
                    const Word mask = width >= 32
                                          ? ~Word{0}
                                          : ((Word{1} << width) - 1);
                    sym = ln.regs_[kRegDispatch] & mask;
                    ln.last_symbol_ = sym;
                } else {
                    if (ln.sb_.exhausted(width)) {
                        out = LaneStatus::Done;
                        ln.halted_ = true;
                        ln.halt_status_ = out;
                        break;
                    }
                    c.stream_bits += width;
                    sym = ln.last_symbol_ = read_sym(ln.sb_, width);
                }
                ++c.dispatches;
                ++c.cycles;
                arc = sym <= cs.max_symbol
                          ? cp.arcs() + (cs.arc_base + sym)
                          : &cs.miss_arc;
                c.cycles += arc->miss;
                c.sig_misses += arc->miss;
                c.dispatch_reads += arc->add_reads;
                if (arc->kind != ResolvedArc::Take) {
                    if (arc->kind == ResolvedArc::Invalid)
                        decode_transition(
                            prog.dispatch[arc->raw_slot]); // throws
                    out = LaneStatus::Reject;
                    ln.halted_ = true;
                    ln.halt_status_ = out;
                    break;
                }
            }

            // Refill: push back over-consumed bits before actions
            // observe r15.
            if (arc->refill_bits != 0) {
                ln.sb_.refill(arc->refill_bits);
                c.stream_bits -= arc->refill_bits;
            }

            if (arc->has_act) {
                std::uint32_t a0 = arc->act;
                if (arc->act_dynamic) {
                    const std::size_t addr =
                        static_cast<std::size_t>(ln.action_base_) +
                        (std::size_t{arc->att_ref} << ln.action_scale_);
                    a0 = addr < c.nops ? static_cast<std::uint32_t>(addr)
                                       : c.sentinel;
                }
                const LaneStatus st = exec_chain(ln, c, a0);
                if (st != LaneStatus::Running) {
                    out = st;
                    ln.halted_ = true;
                    ln.halt_status_ = st;
                    break;
                }
            }

            // 12-bit targets are window-relative; rebase into the
            // current dispatch window.
            if (static_next) {
                ln.cur_state_ = arc->next_full;
                ix = arc->next_state;
            } else {
                ln.cur_state_ = ln.dispatch_base_ + arc->target;
                ix = cp.state_index(ln.cur_state_);
            }
        }
    } catch (...) {
        // The fault record reads stats_.cycles at trap time.
        flush(ln, c);
        throw;
    }
    flush(ln, c);
    carry = ix;
    return out;
}

void
ThreadedEngine::run_block(LaneBlock &blk)
{
    // Replicates Lane::run's chunk/trap/watchdog boundaries per lane,
    // but interleaves the chunks across the whole block so one host
    // thread keeps every resident lane's hot state in play.
    std::size_t live = 0;
    for (std::size_t k = 0; k < blk.size(); ++k)
        live += blk.live[k];
    while (live != 0) {
        for (std::size_t k = 0; k < blk.size(); ++k) {
            if (!blk.live[k])
                continue;
            Lane &ln = *blk.lanes[k];
            LaneStatus st;
            if (ln.halted_) {
                st = ln.halt_status_;
            } else {
                if (!ln.started_) {
                    ln.cur_state_ = ln.prog_->entry;
                    ln.started_ = true;
                }
                ln.resume_ds_ = nullptr;
                ln.resume_cs_ = kNoResume;
                const std::uint64_t chunk =
                    blk.trap_at[k] != 0 ? 1 : 1024;
                // The same conversion boundary as Lane::run_guarded
                // (a private template; its catch order is the contract).
                try {
                    st = run_steps_body(ln, chunk, blk.state_ix[k]);
                } catch (const UdpFaultError &e) {
                    st = ln.trap(e.code(), e.what());
                } catch (const UdpError &e) {
                    st = ln.trap(FaultCode::BadAction, e.what());
                }
            }
            if (st == LaneStatus::Running) {
                if (blk.trap_at[k] != 0 &&
                    ln.stats_.cycles >= blk.trap_at[k]) {
                    st = ln.trap(FaultCode::ForcedTrap,
                                 "Lane: forced trap (fault injection)");
                } else if (ln.stats_.cycles >= blk.budget[k]) {
                    st = ln.trip_watchdog(
                        "Lane: cycle budget (" +
                        std::to_string(blk.budget[k]) +
                        ") exhausted before completion");
                }
            }
            if (st != LaneStatus::Running) {
                blk.live[k] = 0;
                blk.status[k] = st;
                --live;
            }
        }
    }
}

void
LaneBlock::add(Lane *ln, std::uint32_t lane_slot, std::uint64_t cycles,
               Cycles trap_cycle)
{
    lanes.push_back(ln);
    slot.push_back(lane_slot);
    state_ix.push_back(ThreadedEngine::kNoResume);
    budget.push_back(cycles);
    trap_at.push_back(trap_cycle);
    live.push_back(1);
    status.push_back(LaneStatus::Done);
}

// ---------------------------------------------------------------------------
// The shared compiled-image cache.
// ---------------------------------------------------------------------------

std::shared_ptr<const CompiledProgram>
shared_compiled(const Program &prog)
{
    static std::mutex mu;
    static std::unordered_map<std::uint64_t,
                              std::shared_ptr<const CompiledProgram>>
        cache;

    const std::uint64_t key = program_fingerprint(prog);
    {
        std::lock_guard<std::mutex> lk(mu);
        const auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }
    // Build outside the lock (same discipline as shared_decoded): the
    // lowering cost scales with the image, and concurrent builders of
    // the same program are harmless.
    auto cp = std::make_shared<const CompiledProgram>(prog,
                                                      shared_decoded(prog));
    std::lock_guard<std::mutex> lk(mu);
    if (cache.size() >= 128)
        cache.clear(); // crude bound; lanes recompile after a burst
    return cache.emplace(key, std::move(cp)).first->second;
}

// ---------------------------------------------------------------------------
// Disassembler (--dump-compiled).
// ---------------------------------------------------------------------------

namespace {

std::string
arc_desc(const ResolvedArc &a)
{
    char buf[160];
    switch (a.kind) {
      case ResolvedArc::Reject:
        std::snprintf(buf, sizeof buf, "reject (miss, +%u reads)",
                      unsigned{a.add_reads});
        return buf;
      case ResolvedArc::Invalid:
        std::snprintf(buf, sizeof buf,
                      "trap (undecodable slot 0x%x)", a.raw_slot);
        return buf;
      case ResolvedArc::Take:
      default:
        break;
    }
    std::string s;
    std::snprintf(buf, sizeof buf, "take -> @0x%x", a.next_full);
    s += buf;
    if (a.next_state < 0)
        s += " (unknown state)";
    if (a.miss)
        s += " via miss-chain";
    if (a.add_reads) {
        std::snprintf(buf, sizeof buf, " +%u reads", unsigned{a.add_reads});
        s += buf;
    }
    if (a.refill_bits) {
        std::snprintf(buf, sizeof buf, " refill %u bits",
                      unsigned{a.refill_bits});
        s += buf;
    }
    if (a.has_act) {
        if (a.act_dynamic)
            std::snprintf(buf, sizeof buf, " act dyn[ref=%u]",
                          unsigned{a.att_ref});
        else
            std::snprintf(buf, sizeof buf, " act [%u]", a.act);
        s += buf;
    }
    return s;
}

bool
same_arc(const ResolvedArc &a, const ResolvedArc &b)
{
    return a.kind == b.kind && a.miss == b.miss &&
           a.add_reads == b.add_reads && a.refill_bits == b.refill_bits &&
           a.has_act == b.has_act && a.act_dynamic == b.act_dynamic &&
           a.att_ref == b.att_ref && a.target == b.target &&
           a.act == b.act && a.raw_slot == b.raw_slot;
}

} // namespace

std::string
disassemble_compiled(const CompiledProgram &cp)
{
    std::string out;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "compiled image: %u micro-ops (+1 trap sentinel), "
                  "%zu states, dyn-dispatch=%d, dyn-action=%d\n",
                  cp.op_count(), cp.num_states(), cp.dyn_dispatch() ? 1 : 0,
                  cp.dyn_action() ? 1 : 0);
    out += buf;

    for (std::size_t s = 0; s < cp.num_states(); ++s) {
        const CompiledState &cs = cp.state(s);
        std::snprintf(buf, sizeof buf, "state @0x%x (ix %zu)%s:\n",
                      cs.base, s,
                      cs.reg_source ? " reg-source" : "");
        out += buf;
        if (cs.has_common) {
            out += "  common: " + arc_desc(cs.common_arc) + "\n";
        } else {
            // Collapse runs of identical consecutive arcs.
            const ResolvedArc *arcs = cp.arcs() + cs.arc_base;
            for (std::uint32_t lo = 0; lo <= cs.max_symbol;) {
                std::uint32_t hi = lo;
                while (hi + 1 <= cs.max_symbol &&
                       same_arc(arcs[hi + 1], arcs[lo]))
                    ++hi;
                if (lo == hi)
                    std::snprintf(buf, sizeof buf, "  sym 0x%02x: ", lo);
                else
                    std::snprintf(buf, sizeof buf, "  sym 0x%02x..0x%02x: ",
                                  lo, hi);
                out += buf;
                out += arc_desc(arcs[lo]) + "\n";
                lo = hi + 1;
            }
        }
        out += "  miss: " + arc_desc(cs.miss_arc) + "\n";
    }

    out += "ops:\n";
    for (std::uint32_t i = 0; i < cp.op_count(); ++i) {
        const CompiledOp &o = cp.ops()[i];
        if (o.op == kInvalidOpcode) {
            std::snprintf(buf, sizeof buf,
                          "  [%u] <undecodable 0x%08x>\n", i, o.raw);
            out += buf;
            continue;
        }
        std::snprintf(buf, sizeof buf,
                      "  [%u] %s dst=r%u ref=r%u src=r%u imm=%d imm1=%u",
                      i, std::string(opcode_name(o.op)).c_str(),
                      unsigned{o.dst}, unsigned{o.ref}, unsigned{o.src},
                      o.imm, unsigned{o.imm1});
        out += buf;
        if (o.op == Opcode::Gotoact) {
            std::snprintf(buf, sizeof buf, " ; goto [%u]\n", o.next);
            out += buf;
        } else if (o.last) {
            out += " ; last\n";
        } else {
            std::snprintf(buf, sizeof buf, " ; next [%u]\n", o.next);
            out += buf;
        }
    }
    std::snprintf(buf, sizeof buf, "  [%u] <trap: fetch out of range>\n",
                  cp.sentinel());
    out += buf;
    return out;
}

} // namespace udp
