/**
 * @file
 * Shared 64 x 2048-bit vector register file (paper Figure 3a).
 *
 * Vector registers are the staging path between the host and lane stream
 * buffers: the host (or the DLT engine) fills vector registers, and a lane
 * constructs its input stream from a private or shared register sequence
 * (Section 3.2.3 "Stream Buffer ... constructs streams from vector
 * registers; shared or private vector register coupling is supported").
 *
 * For simulation we expose the registers as 256-byte blocks plus a helper
 * that concatenates a register range into one contiguous stream image.
 */
#pragma once

#include "types.hpp"

#include <array>

namespace udp {

/// The UDP vector register file.
class VectorRegFile
{
  public:
    VectorRegFile() : regs_(kNumVectorRegs) {
        for (auto &r : regs_)
            r.fill(0);
    }

    using VReg = std::array<std::uint8_t, kVectorRegBytes>;

    VReg &operator[](unsigned idx) { return at(idx); }
    const VReg &operator[](unsigned idx) const {
        return const_cast<VectorRegFile *>(this)->at(idx);
    }

    /// Copy `data` into consecutive registers starting at `first`;
    /// throws when the data does not fit the file.
    void load(unsigned first, BytesView data);

    /// Concatenate registers [first, first+count) into a byte image.
    Bytes stream_image(unsigned first, unsigned count) const;

  private:
    VReg &at(unsigned idx) {
        if (idx >= kNumVectorRegs)
            throw UdpError("VectorRegFile: index out of range");
        return regs_[idx];
    }

    std::vector<VReg> regs_;
};

} // namespace udp
