/**
 * @file
 * Predecoded program images: decode once, run many.
 *
 * The packed 32-bit transition and action words of a `Program` are cheap
 * to decode once, but the interpreter used to decode them on *every*
 * simulated dispatch — and all 64 lanes of a wave repeat that identical
 * work on the same read-only image.  A `DecodedProgram` expands the whole
 * image up front:
 *
 *  - every dispatch word as a decoded `Transition`;
 *  - every action word as a decoded `Action` (micro-op stream);
 *  - per state: the signature, the auxiliary-chain walk results the
 *    interpreter would recompute per step (the `common` override, the
 *    DFA and NFA signature-miss fallbacks with their exact
 *    dispatch-read charge, and the epsilon activation list);
 *  - a dense slot→state table replacing `Program::find_state`.
 *
 * A DecodedProgram is immutable after construction and self-contained
 * (it never aliases the source Program), so one instance is safely
 * shared read-only across all 64 lanes, across waves, and across host
 * simulation threads.  `shared_decoded()` is the process-wide cache
 * keyed by program content; the runtime's KernelSpec/JobPlan path
 * threads its result through to the lanes so a 64-lane wave decodes the
 * program exactly once.
 *
 * Predecoding is purely a host-performance layer: simulated cycles,
 * dispatch reads, misses and stalls are charged bit-identically to the
 * decode-per-step interpreter (pinned by tests/test_predecode.cpp).
 * `UDP_SIM_NO_PREDECODE=1` (or `set_predecode_enabled(false)`) keeps the
 * legacy path available as the equivalence reference.
 */
#pragma once

#include "isa.hpp"
#include "program.hpp"

#include <memory>
#include <string_view>
#include <vector>

namespace udp {

/// Sentinel stored for a dispatch word that does not decode (reserved
/// transition kind 7).  The legacy path throws only if such a word is
/// actually fetched; the fast path re-decodes the raw word on fetch to
/// raise the identical error.
inline constexpr TransitionType kInvalidTransitionType =
    static_cast<TransitionType>(7);

/// Sentinel opcode for an action word that does not decode (undefined
/// opcode).  Same fetch-time error contract as kInvalidTransitionType.
inline constexpr Opcode kInvalidOpcode = static_cast<Opcode>(0x7F);

/**
 * Per-state predecoded metadata: everything `Lane::step` used to derive
 * from StateMeta plus per-step auxiliary-chain scans.
 */
struct DecodedState {
    std::uint32_t base = 0;         ///< full word address of the state
    std::uint16_t max_symbol = 255; ///< largest labeled slot offset
    std::uint8_t signature = 0;     ///< expected slot signature
    bool reg_source = false;        ///< dispatch symbol comes from r0

    /// First signature-matching `common` transition in the aux chain
    /// (replaces the whole labeled table when present).
    bool has_common = false;
    Transition common{};

    /// DFA signature-miss fallback: first majority/default hit of the
    /// chain walk.  `miss_reads` is the exact number of dispatch-word
    /// reads the legacy walk charges (including the terminating word).
    bool has_miss = false;
    std::uint8_t miss_reads = 0;
    Transition miss{};

    /// NFA-mode fallback walk (also accepts `common`).
    bool has_miss_nfa = false;
    std::uint8_t miss_nfa_reads = 0;
    Transition miss_nfa{};

    /// Epsilon activations, chain order: [eps_begin, eps_end) into
    /// DecodedProgram's flattened epsilon pool.
    std::uint32_t eps_begin = 0;
    std::uint32_t eps_end = 0;
};

/**
 * The predecoded image.  Built once per program; immutable after.
 */
class DecodedProgram
{
  public:
    explicit DecodedProgram(const Program &prog);

    std::size_t dispatch_words() const { return transitions_.size(); }
    std::size_t action_words() const { return actions_.size(); }

    const Transition &transition(std::size_t slot) const {
        return transitions_[slot];
    }
    const Action &action(std::size_t addr) const { return actions_[addr]; }

    /// Dense replacement for Program::find_state; nullptr when `base`
    /// is not a state.
    const DecodedState *state_at(std::size_t base) const {
        if (base >= slot_state_.size())
            return nullptr;
        const std::int32_t ix = slot_state_[base];
        return ix < 0 ? nullptr : &states_[static_cast<std::size_t>(ix)];
    }

    const Transition *eps_begin(const DecodedState &s) const {
        return epsilons_.data() + s.eps_begin;
    }
    const Transition *eps_end(const DecodedState &s) const {
        return epsilons_.data() + s.eps_end;
    }

    /// Content fingerprint of the source program (the cache key).
    std::uint64_t fingerprint() const { return fingerprint_; }

  private:
    std::vector<Transition> transitions_; ///< one per dispatch word
    std::vector<Action> actions_;         ///< one per action word
    std::vector<DecodedState> states_;
    std::vector<std::int32_t> slot_state_; ///< base -> index into states_
    std::vector<Transition> epsilons_;     ///< flattened per-state chains
    std::uint64_t fingerprint_ = 0;
};

/// 64-bit content fingerprint of a program (images, directory, init
/// configuration) — the identity key of the shared decode cache.
std::uint64_t program_fingerprint(const Program &prog);

/**
 * Process-wide decoded-image cache: returns the shared DecodedProgram
 * for `prog`, building it on first use.  Keyed by content fingerprint,
 * so 64 lanes loading the same program (or a copy of it) share one
 * image, and a mutated program gets a fresh one.  Thread-safe.
 */
std::shared_ptr<const DecodedProgram> shared_decoded(const Program &prog);

/**
 * Host interpreter tier (docs/PERFORMANCE.md, "Backend tiers").  Every
 * tier produces bit-identical simulated results; they differ only in
 * host speed:
 *  - Legacy: decode-per-step reference interpreter;
 *  - Predecode: shared DecodedProgram fast path;
 *  - Threaded: flat threaded-code micro-op stream compiled from the
 *    DecodedProgram (core/threaded_program.hpp).
 */
enum class SimBackend : std::uint8_t {
    Legacy = 0,
    Predecode = 1,
    Threaded = 2,
};

/// Stable lower-case backend name ("legacy", "predecode", "threaded").
std::string_view sim_backend_name(SimBackend b);

/// The active backend.  Defaults to Threaded; the UDP_SIM_BACKEND
/// environment variable (legacy|predecode|threaded) overrides the
/// default, and the older UDP_SIM_NO_PREDECODE=1 still selects Legacy
/// (both read once, on first query).
SimBackend sim_backend();

/// Process-wide override of the environment default (benches and the
/// equivalence tests toggle this around whole runs).
void set_sim_backend(SimBackend b);

/// Whether lanes predecode on load: sim_backend() != Legacy.  Kept as
/// the PR 3 API surface — the differential tests toggle this pair.
bool predecode_enabled();

/// set_sim_backend(Predecode) when `on`, set_sim_backend(Legacy)
/// otherwise — the PR 3 two-way toggle, now a view over the tiers.
void set_predecode_enabled(bool on);

} // namespace udp
