/**
 * @file
 * Fault-code names and LaneFault formatting.
 */
#include "fault.hpp"

namespace udp {

std::string_view
fault_code_name(FaultCode code)
{
    switch (code) {
      case FaultCode::None: return "none";
      case FaultCode::BadDispatch: return "bad-dispatch";
      case FaultCode::BadAction: return "bad-action";
      case FaultCode::FetchOutOfRange: return "fetch-out-of-range";
      case FaultCode::UnimplementedOpcode: return "unimplemented-opcode";
      case FaultCode::WatchdogTimeout: return "watchdog-timeout";
      case FaultCode::ForcedTrap: return "forced-trap";
    }
    return "<bad>";
}

std::string
LaneFault::describe() const
{
    if (code == FaultCode::None)
        return "no fault";
    std::string s = "lane " + std::to_string(lane) + ": ";
    s += fault_code_name(code);
    s += " @state " + std::to_string(state_base);
    s += ", cycle " + std::to_string(cycle);
    if (!detail.empty()) {
        s += ": ";
        s += detail;
    }
    return s;
}

} // namespace udp
