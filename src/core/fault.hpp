/**
 * @file
 * Structured lane faults (docs/ROBUSTNESS.md).
 *
 * The hardware UDP runs 64 independent lanes: one misbehaving stream
 * cannot stall the other 63.  The simulator mirrors that containment
 * contract by converting every interpreter error at the lane run-loop
 * boundary into a `LaneFault` record carried by the terminal
 * `LaneStatus::Faulted` / `LaneStatus::TimedOut`, instead of letting a
 * C++ exception unwind through `Machine::run_parallel` and kill the
 * whole wave.
 *
 * Throw sites inside the interpreter (dispatch unit, action unit,
 * stream buffer, local memory, packed-word decoders) tag their errors
 * with a `FaultCode` by throwing `UdpFaultError`; `Lane` catches at the
 * run-loop boundary and records the fault.  Host-side API misuse
 * (staging outside memory, bad lane index, no program loaded) keeps
 * throwing plain `UdpError` — those are caller bugs, not lane faults.
 */
#pragma once

#include "types.hpp"

#include <string>
#include <string_view>

namespace udp {

/// Why a lane trapped.  Stable names via fault_code_name().
enum class FaultCode : std::uint8_t {
    None = 0,            ///< no fault (healthy lane)
    BadDispatch,         ///< undecodable transition word / unknown state
    BadAction,           ///< undecodable action word / illegal operand
    FetchOutOfRange,     ///< dispatch/action/memory/stream fetch overrun
    UnimplementedOpcode, ///< decoded opcode the action unit lacks
    WatchdogTimeout,     ///< cycle budget exhausted (LaneStatus::TimedOut)
    ForcedTrap,          ///< deterministic fault injection (FaultInjector)
};

/// Number of FaultCode values (incl. None); enables dense per-code
/// tables (e.g. the telemetry layer's per-code fault counters).
inline constexpr unsigned kNumFaultCodes = 7;

/// Stable lower-case name of a fault code ("bad-dispatch", ...).
std::string_view fault_code_name(FaultCode code);

/**
 * The structured record of one lane trap: what happened, where the
 * automaton was, and when.  Default-constructed (code == None) for a
 * healthy lane.  Host-side value only — never aliases lane state.
 */
struct LaneFault {
    FaultCode code = FaultCode::None;
    unsigned lane = 0;            ///< lane that trapped
    std::uint32_t state_base = 0; ///< dispatch PC: active state word base
    Cycles cycle = 0;             ///< simulated cycle of the trap
    std::string detail;           ///< human-readable diagnosis

    /// True when this records an actual fault.
    explicit operator bool() const { return code != FaultCode::None; }

    /// One-line description: "lane 17: bad-dispatch @state 128, cycle 42: ...".
    std::string describe() const;
};

/**
 * An interpreter error tagged with its fault code.  Thrown by the
 * dispatch/action/stream/memory units; converted to a LaneFault at the
 * Lane run-loop boundary (both interpreter paths).  Still an UdpError,
 * so host-side callers that reach these units directly (tests, the
 * assembler round-trip) keep their existing catch sites.
 */
class UdpFaultError : public UdpError
{
  public:
    UdpFaultError(FaultCode code, const std::string &what)
        : UdpError(what), code_(code)
    {
    }

    FaultCode code() const { return code_; }

  private:
    FaultCode code_;
};

} // namespace udp
