/**
 * @file
 * Analytical power / area / energy model of the UDP implementation.
 *
 * The paper synthesizes the lane in 28 nm TSMC with Synopsys DC and models
 * memories with CACTI 6.5 (Section 6, Table 3).  We cannot re-run an ASIC
 * flow, so this module encodes the paper's reported component numbers as
 * model constants and derives every figure the evaluation needs from them:
 * system power for throughput-per-watt (Figs 13-22), the Table 3 breakdown,
 * and the Fig 11c per-reference memory energies.  The *derivations* (not
 * the constants) are what our tests validate.
 */
#pragma once

#include "local_memory.hpp"
#include "stats.hpp"
#include "types.hpp"

#include <string>
#include <vector>

namespace udp {

/// One row of the Table 3 breakdown.
struct ComponentCost {
    std::string name;
    double power_mw = 0;
    double area_mm2 = 0;
};

/// Power/area model constants (28 nm; Table 3 of the paper).
struct UdpCostModel {
    // Per-lane units.
    double dispatch_unit_mw = 0.71;
    double sbp_unit_mw = 0.24;
    double stream_buffer_mw = 0.22;
    double action_unit_mw = 0.68;
    double dispatch_unit_mm2 = 0.022;
    double sbp_unit_mm2 = 0.008;
    double stream_buffer_mm2 = 0.002;
    double action_unit_mm2 = 0.021;
    double lane_total_mw = 1.88;   // paper rounds the unit sum up
    double lane_total_mm2 = 0.054;

    // Shared infrastructure.
    double lanes64_mw = 120.56;
    double vector_regs_mw = 8.47;
    double dlt_engine_mw = 19.29;
    double local_mem_mw = 715.36;
    double system_mw = 863.68;
    double lanes64_mm2 = 3.430;
    double vector_regs_mm2 = 0.256;
    double dlt_engine_mm2 = 0.138;
    double local_mem_mm2 = 4.864;
    double system_mm2 = 8.688;

    // Reference CPU (Xeon E5620 Westmere-EP; Section 4.4 and Table 3).
    double cpu_tdp_w = 80.0;
    double cpu_core_l1_mw = 9700.0;
    double cpu_core_l1_mm2 = 19.0;

    double clock_ghz = 1.0;

    /// Whole-system power in watts (the paper's perf/W denominator).
    double system_power_w() const { return system_mw / 1000.0; }

    /// Logic-only power (excludes the 1 MiB local memory), watts.
    double logic_power_w() const {
        return (lanes64_mw + vector_regs_mw + dlt_engine_mw) / 1000.0;
    }

    /// Table 3 rows, in paper order.
    std::vector<ComponentCost> lane_breakdown() const;
    std::vector<ComponentCost> system_breakdown() const;
};

/**
 * Dynamic-energy estimate of a run, in joules: lane logic energy scales
 * with active cycles; memory energy with references at the Fig 11c cost of
 * the addressing mode; the remainder is static system power over the
 * wall-clock of the run.
 */
double run_energy_joules(const UdpCostModel &model, const LaneStats &total,
                         Cycles wall_cycles, unsigned active_lanes,
                         AddressingMode mode);

/// Throughput (MB/s) per watt of UDP system power.
double tput_per_watt(const UdpCostModel &model, double throughput_mbps);

/// Throughput (MB/s) per watt for the reference CPU at TDP.
double cpu_tput_per_watt(const UdpCostModel &model, double throughput_mbps);

} // namespace udp
