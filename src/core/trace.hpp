/**
 * @file
 * Zero-overhead-when-off event tracing for the UDP simulator.
 *
 * A `Tracer` owns one fixed-capacity ring buffer per lane.  When a lane
 * has a tracer attached (`Lane::set_tracer`), the interpreter records one
 * `TraceEvent` per micro-architectural event — multi-way dispatch,
 * signature miss (aux-chain fallback), action execution, local-memory
 * access, bank-conflict stall, and accept — stamped with the lane's cycle
 * counter.  With no tracer attached (the default) the hooks are a single
 * predicted-not-taken null check, so simulation rates are unaffected.
 *
 * The ring keeps the most recent `ring_capacity` events per lane; lifetime
 * per-kind counters keep counting past the capacity so totals always match
 * `LaneStats` even when old events have been overwritten.
 *
 * `write_chrome_trace` exports the buffers as Chrome `trace_event` JSON
 * (the chrome://tracing / Perfetto "JSON Array Format"): one track (tid)
 * per lane, timestamps in microseconds at the nominal 1 GHz clock, so one
 * cycle renders as 1 ns.
 */
#pragma once

#include "types.hpp"

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace udp {

class JsonWriter; // metrics_json.hpp

/// The event kinds the lane interpreter emits.
enum class TraceEventKind : std::uint8_t {
    Dispatch = 0, ///< multi-way dispatch; a = state base, b = symbol
    SigMiss,      ///< labeled-slot signature miss; a = state base, b = symbol
    Action,       ///< action executed; a = action word address, b = opcode
    MemRead,      ///< local-memory read; a = physical byte address
    MemWrite,     ///< local-memory write; a = physical byte address
    Stall,        ///< bank-conflict stall; a = address, b = stall cycles
    Accept,       ///< Accept action; a = accept id
};

/// Number of trace event kinds.
inline constexpr unsigned kNumTraceEventKinds = 7;

/// Printable kind name ("dispatch", "sig_miss", ...).
std::string_view trace_event_kind_name(TraceEventKind k);

/// One recorded event.
struct TraceEvent {
    Cycles cycle = 0;      ///< lane cycle counter at the event
    std::uint32_t a = 0;   ///< kind-specific payload (see TraceEventKind)
    std::uint32_t b = 0;   ///< kind-specific payload (symbol/opcode/stalls)
    TraceEventKind kind = TraceEventKind::Dispatch;
    std::uint8_t lane = 0;
};

/// Default per-lane ring capacity (events).
inline constexpr std::size_t kDefaultTraceRingCapacity = 1u << 16;

/**
 * Per-lane ring-buffered event recorder.  Not thread-safe: one Tracer per
 * Machine, recorded from the (single-threaded) simulation loop.
 */
class Tracer
{
  public:
    explicit Tracer(std::size_t ring_capacity = kDefaultTraceRingCapacity);

    /// Record one event (called from the lane hot loops).
    void record(unsigned lane, TraceEventKind kind, Cycles cycle,
                std::uint32_t a, std::uint32_t b);

    /// Events currently retained for `lane`, oldest first.
    std::vector<TraceEvent> events(unsigned lane) const;

    /// Lifetime count of `kind` events on `lane` (not capped by the ring).
    std::uint64_t count(unsigned lane, TraceEventKind kind) const;

    /// Lifetime count of all events on `lane`.
    std::uint64_t total(unsigned lane) const;

    /// Events evicted from `lane`'s ring (total - retained).
    std::uint64_t dropped(unsigned lane) const;

    /// Lanes that recorded at least one event.
    std::vector<unsigned> active_lanes() const;

    std::size_t ring_capacity() const { return capacity_; }

    /// Drop all recorded events and reset counters.
    void clear();

  private:
    struct LaneRing {
        std::vector<TraceEvent> buf; ///< grows to capacity, then wraps
        std::size_t next = 0;        ///< overwrite cursor once full
        std::uint64_t total = 0;
        std::array<std::uint64_t, kNumTraceEventKinds> by_kind{};
    };

    std::size_t capacity_;
    std::array<LaneRing, kNumLanes> rings_;
};

/// Serialize the retained events as Chrome trace_event JSON.
void write_chrome_trace(std::ostream &os, const Tracer &tracer);

/// Convenience: write a Chrome trace file; false on I/O failure.
bool write_chrome_trace_file(const std::string &path, const Tracer &tracer);

// --- Merged-timeline export hooks (runtime/spantrace.hpp) ------------------
// The runtime span tracer interleaves lane micro-events with its own
// scheduler spans in one traceEvents array.  Lane cycle stamps are
// run-local (they restart at 0 every wave), so the caller passes the
// wave's start cycle as `base` to place the event on the shared
// simulated-cycle timeline.

/// Emit one retained event into an already-open traceEvents array,
/// offsetting its cycle stamp by `base` machine cycles.
void write_trace_event(JsonWriter &w, const TraceEvent &ev,
                       Cycles base = 0);

/// Emit the thread-name metadata record that labels `lane`'s track.
void write_lane_track_metadata(JsonWriter &w, unsigned lane);

} // namespace udp
