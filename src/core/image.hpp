/**
 * @file
 * Binary program images (".udpbin"): serialize a laid-out Program so the
 * toolchain can hand it to a device (or another process) without
 * re-running the assembler - the "machine binaries" of Section 4.3.
 *
 * Format (little-endian u32 fields):
 *   magic 'UDP1' | entry | init_symbol_bits | addressing |
 *   init_action_base | init_action_scale | init_dispatch_base |
 *   n_dispatch | n_actions | n_states |
 *   dispatch words... | action words... |
 *   per state: base | packed(reg_source, aux_count, max_symbol)
 * followed by a CRC32C of everything before it.
 */
#pragma once

#include "program.hpp"

#include <string>

namespace udp {

/// Serialize to the .udpbin byte format.
Bytes save_program(const Program &prog);

/// Parse and validate a .udpbin image; throws UdpError on corruption.
Program load_program(BytesView image);

/// File convenience wrappers.
void save_program_file(const Program &prog, const std::string &path);
Program load_program_file(const std::string &path);

} // namespace udp
