/**
 * @file
 * Fundamental types and small helpers shared across the UDP simulator.
 *
 * The UDP (Unstructured Data Processor, Fang et al., MICRO-50 2017) is a
 * 64-lane accelerator for ETL-style data transformation.  Every lane is a
 * 32-bit engine; dispatch targets are 12-bit word addresses into the lane's
 * dispatch window, and actions generate 32-bit byte addresses.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace udp {

/// 32-bit machine word: the width of registers, transitions and actions.
using Word = std::uint32_t;

/// 12-bit dispatch-memory word address (the `target` field width).
using DispatchAddr = std::uint16_t;

/// Lane-local byte address produced by actions.
using ByteAddr = std::uint32_t;

/// Simulation time in lane clock cycles (1 GHz nominal clock).
using Cycles = std::uint64_t;

/// Identifier of a state in an (un-laid-out) automaton / UDP program.
using StateId = std::uint32_t;

/// Sentinel for "no state".
inline constexpr StateId kNoState = std::numeric_limits<StateId>::max();

/// Number of lanes in a full UDP (paper Figure 3a).
inline constexpr unsigned kNumLanes = 64;

/// Local-memory bank size in bytes (16 KiB; 64 banks = 1 MiB total).
inline constexpr std::size_t kBankBytes = 16 * 1024;

/// Number of local-memory banks.
inline constexpr unsigned kNumBanks = 64;

/// Total local memory (1 MiB).
inline constexpr std::size_t kLocalMemBytes = kBankBytes * kNumBanks;

/// Dispatch window size in 32-bit words addressable by a 12-bit target.
inline constexpr std::size_t kDispatchWords = 1u << 12;

/// Vector register file: 64 registers x 2048 bits (paper Figure 3a).
inline constexpr unsigned kNumVectorRegs = 64;
inline constexpr std::size_t kVectorRegBytes = 2048 / 8;

/// Number of scalar data registers per lane (r0..r15; r15 = stream index).
inline constexpr unsigned kNumScalarRegs = 16;

/// Register aliases with architectural meaning.
inline constexpr unsigned kRegDispatch = 0;   ///< r0: scalar dispatch source.
inline constexpr unsigned kRegStreamIdx = 15; ///< r15: stream byte index.

/// Nominal clock (Section 6: synthesized lane closes timing at ~1 GHz).
inline constexpr double kClockHz = 1.0e9;

/// Error raised on malformed programs or illegal machine operations.
class UdpError : public std::runtime_error
{
  public:
    explicit UdpError(const std::string &what) : std::runtime_error(what) {}
};

/// Byte buffer used for streams, memories and outputs.
using Bytes = std::vector<std::uint8_t>;

/// Read-only view over bytes.
using BytesView = std::span<const std::uint8_t>;

/// Extract bit field [lo, lo+width) from a word.
constexpr Word
bits(Word value, unsigned lo, unsigned width)
{
    return (value >> lo) & ((width >= 32) ? ~Word{0} : ((Word{1} << width) - 1));
}

/// Insert `field` into bits [lo, lo+width) of zero background.
constexpr Word
make_bits(Word field, unsigned lo, unsigned width)
{
    const Word mask = (width >= 32) ? ~Word{0} : ((Word{1} << width) - 1);
    return (field & mask) << lo;
}

/// Ceiling division for cycle-cost formulas.
constexpr std::uint64_t
ceil_div(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace udp
