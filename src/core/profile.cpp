/**
 * @file
 * Profiler implementation.
 */
#include "profile.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace udp {

void
Profiler::record_state(std::uint32_t base, Cycles cycles,
                       std::uint64_t sig_misses, std::uint64_t stall_cycles)
{
    StateProfile &p = states_[base];
    ++p.visits;
    p.cycles += cycles;
    p.sig_misses += sig_misses;
    p.stall_cycles += stall_cycles;
}

void
Profiler::record_action(Opcode op, Cycles cycles)
{
    ActionProfile &p = actions_[op];
    ++p.count;
    p.cycles += cycles;
}

Cycles
Profiler::total_state_cycles() const
{
    Cycles total = 0;
    for (const auto &[base, p] : states_)
        total += p.cycles;
    return total;
}

std::vector<std::pair<std::uint32_t, StateProfile>>
Profiler::hot_states(std::size_t top_n) const
{
    std::vector<std::pair<std::uint32_t, StateProfile>> out(
        states_.begin(), states_.end());
    std::sort(out.begin(), out.end(), [](const auto &x, const auto &y) {
        if (x.second.cycles != y.second.cycles)
            return x.second.cycles > y.second.cycles;
        return x.first < y.first; // deterministic order among ties
    });
    if (out.size() > top_n)
        out.resize(top_n);
    return out;
}

std::vector<std::pair<Opcode, ActionProfile>>
Profiler::hot_actions(std::size_t top_n) const
{
    std::vector<std::pair<Opcode, ActionProfile>> out(actions_.begin(),
                                                      actions_.end());
    std::sort(out.begin(), out.end(), [](const auto &x, const auto &y) {
        if (x.second.cycles != y.second.cycles)
            return x.second.cycles > y.second.cycles;
        return x.first < y.first;
    });
    if (out.size() > top_n)
        out.resize(top_n);
    return out;
}

std::string
Profiler::report(std::size_t top_n, const StateSymbolizer &sym) const
{
    std::ostringstream os;
    const double total = double(std::max<Cycles>(total_state_cycles(), 1));

    os << "hot states (top " << top_n << " of " << states_.size() << "):\n";
    char buf[160];
    std::snprintf(buf, sizeof(buf), "  %-32s %12s %6s %12s %9s %12s\n",
                  "state", "cycles", "cyc%", "visits", "miss%",
                  "stall cyc");
    os << buf;
    for (const auto &[base, p] : hot_states(top_n)) {
        std::string name;
        if (sym)
            name = sym(base);
        if (name.empty()) {
            std::snprintf(buf, sizeof(buf), "state @0x%x", base);
            name = buf;
        }
        std::snprintf(buf, sizeof(buf),
                      "  %-32s %12llu %5.1f%% %12llu %8.2f%% %12llu\n",
                      name.c_str(),
                      static_cast<unsigned long long>(p.cycles),
                      100.0 * double(p.cycles) / total,
                      static_cast<unsigned long long>(p.visits),
                      100.0 * p.sig_miss_rate(),
                      static_cast<unsigned long long>(p.stall_cycles));
        os << buf;
    }

    os << "hot actions (top " << top_n << " of " << actions_.size()
       << "):\n";
    std::snprintf(buf, sizeof(buf), "  %-32s %12s %12s\n", "opcode",
                  "cycles", "count");
    os << buf;
    for (const auto &[op, p] : hot_actions(top_n)) {
        std::snprintf(buf, sizeof(buf), "  %-32s %12llu %12llu\n",
                      std::string(opcode_name(op)).c_str(),
                      static_cast<unsigned long long>(p.cycles),
                      static_cast<unsigned long long>(p.count));
        os << buf;
    }
    return os.str();
}

void
Profiler::clear()
{
    states_.clear();
    actions_.clear();
}

} // namespace udp
